package sim

import (
	"time"

	"repro/internal/temporal"
)

// LaneBus is a lane-widened signal bus: one pair of double-buffered register
// files carrying N independent simulations' signals side by side, with a
// scalar *Bus view per lane.  Components bound to lane l's view read and
// write only lane l of every slot's contiguous lane group, so K component
// sets drive K trajectories through one shared state — and one Commit, still
// a single pointer-free plane memmove, publishes all lanes at once.
type LaneBus struct {
	schema  *temporal.Schema
	lanes   int
	current temporal.State
	pending temporal.State
	views   []*Bus
}

// NewLaneBus returns a lane bus of the given width (clamped up to 1) with a
// fresh shared schema.
func NewLaneBus(lanes int) *LaneBus {
	if lanes < 1 {
		lanes = 1
	}
	schema := temporal.NewSchema()
	lb := &LaneBus{
		schema:  schema,
		lanes:   lanes,
		current: temporal.NewStateWithLanes(schema, lanes),
		pending: temporal.NewStateWithLanes(schema, lanes),
	}
	lb.views = make([]*Bus, lanes)
	for l := range lb.views {
		lb.views[l] = &Bus{schema: schema, current: lb.current, pending: lb.pending, lanes: lanes, lane: l}
	}
	return lb
}

// Lanes returns the lane width.
func (lb *LaneBus) Lanes() int { return lb.lanes }

// Schema returns the shared symbol table: all lanes intern the same signal
// vocabulary (and the same enumeration strings) once.
func (lb *LaneBus) Schema() *temporal.Schema { return lb.schema }

// Lane returns lane l's scalar bus view.  The view is stable across runs;
// components bind their handles against it once.
func (lb *LaneBus) Lane(l int) *Bus { return lb.views[l] }

// State returns the committed lane-widened state, for lane-stepped observers
// (temporal.Program.StepLanes).  It is mutated in place by the next Commit.
func (lb *LaneBus) State() temporal.State { return lb.current }

// Commit publishes all lanes' buffered writes at once — the same
// plane-by-plane memmove as the scalar bus commit, over planes N lanes wide.
// Unwritten lanes keep their previous value (hold semantics per lane).
func (lb *LaneBus) Commit() { lb.current.CopyFrom(lb.pending) }

// Reset clears both register files while keeping the schema, the interned
// vocabulary, the lane views and the plane capacity.
func (lb *LaneBus) Reset() {
	lb.current.Reset()
	lb.pending.Reset()
}

// LaneObserver consumes each committed lane-widened state of a lane-batched
// run, and is told when a lane stops early so it can close that lane's
// bookkeeping without desynchronizing the batch.  monitor.LaneSuite is the
// canonical implementation.
type LaneObserver interface {
	// ObserveLanes is invoked once per tick with the committed widened state.
	ObserveLanes(state temporal.State)
	// LaneStopped is invoked when a lane's stop predicate fires, after that
	// tick's ObserveLanes (matching the scalar kernel, where the stopping
	// step's state is still observed).
	LaneStopped(lane int)
}

// LaneSim steps K independent component sets in lockstep over one LaneBus:
// per tick, every active lane's components step against their own lane view,
// one Commit publishes all lanes, observers see the widened state once, and
// per-lane stop predicates retire lanes from the active mask individually.
// The per-step cost that the scalar kernel pays once per variant — commit,
// program step, observer dispatch — is paid once per batch.
type LaneSim struct {
	// Period is the state period (1 ms by default, as in the thesis).
	Period time.Duration
	// Bus is the shared lane-widened signal bus.
	Bus *LaneBus

	components [][]Component
	observers  []LaneObserver
	stop       func(lane int, now time.Duration, state temporal.State) bool
	steps      []int
}

// NewLaneSim returns a lane simulation of the given width with the given
// state period (defaulting to the thesis' 1 ms when non-positive).
func NewLaneSim(period time.Duration, lanes int) *LaneSim {
	if period <= 0 {
		period = time.Millisecond
	}
	bus := NewLaneBus(lanes)
	return &LaneSim{
		Period:     period,
		Bus:        bus,
		components: make([][]Component, bus.Lanes()),
		steps:      make([]int, bus.Lanes()),
	}
}

// Lanes returns the lane width.
func (s *LaneSim) Lanes() int { return s.Bus.Lanes() }

// AddLane registers components on lane l; they are stepped in registration
// order against lane l's bus view.
func (s *LaneSim) AddLane(l int, cs ...Component) {
	s.components[l] = append(s.components[l], cs...)
}

// Observe registers a LaneObserver of every committed widened state.
func (s *LaneSim) Observe(obs LaneObserver) {
	s.observers = append(s.observers, obs)
}

// StopLaneWhen registers the per-lane early-termination predicate, evaluated
// on the committed widened state after every tick for each active lane.
func (s *LaneSim) StopLaneWhen(fn func(lane int, now time.Duration, state temporal.State) bool) {
	s.stop = fn
}

// Reset rewinds the lane simulation for another batch: the bus register
// files are cleared, every component implementing Resetter is restored, and
// the per-lane step counts are zeroed.  Observers and the stop predicate are
// kept.
func (s *LaneSim) Reset() {
	s.Bus.Reset()
	for _, lane := range s.components {
		for _, c := range lane {
			if r, ok := c.(Resetter); ok {
				r.Reset()
			}
		}
	}
	for l := range s.steps {
		s.steps[l] = 0
	}
}

// Steps returns the number of ticks lane l executed in the last Run —
// including the tick its stop predicate fired on, matching the scalar
// kernel's executed-step count.
func (s *LaneSim) Steps(l int) int { return s.steps[l] }

// Run executes the batch for the given duration over the lanes of the active
// mask, discarding state like the scalar RunDiscard (observers receive the
// live widened state).  A lane whose stop predicate fires is retired from
// the mask — its components stop stepping and its signals freeze — without
// desynchronizing the remaining lanes.  Run returns the mask of lanes whose
// stop predicate fired.
func (s *LaneSim) Run(d time.Duration, active uint64) (stopped uint64) {
	lanes := s.Lanes()
	active &= uint64(1)<<uint(lanes) - 1
	total := int(d / s.Period)
	for i := 0; i < total && active != 0; i++ {
		now := time.Duration(i) * s.Period
		for l := 0; l < lanes; l++ {
			if active&(1<<uint(l)) == 0 {
				continue
			}
			bus := s.Bus.views[l]
			for _, c := range s.components[l] {
				c.Step(now, bus)
			}
			s.steps[l]++
		}
		s.Bus.Commit()
		st := s.Bus.current
		for _, obs := range s.observers {
			obs.ObserveLanes(st)
		}
		if s.stop == nil {
			continue
		}
		for l := 0; l < lanes; l++ {
			bit := uint64(1) << uint(l)
			if active&bit != 0 && s.stop(l, now, st) {
				stopped |= bit
				active &^= bit
				for _, obs := range s.observers {
					obs.LaneStopped(l)
				}
			}
		}
	}
	return stopped
}
