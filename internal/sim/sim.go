// Package sim provides the fixed-step discrete-time simulation kernel used
// to evaluate the thesis' systems: the distributed elevator of Chapter 4 and
// the semi-autonomous vehicle of Chapter 5 (where it stands in for the
// CarSim/Simulink environment).
//
// Components exchange data through a Bus of named signals.  A value written
// during one step becomes visible to readers at the next step, matching the
// KAOS convention — used throughout the thesis — that monitored values are
// observed one state late.  The kernel records a temporal.Trace of the
// committed state at every step, which the monitor package and the figure
// extractors consume; RunDiscard skips the recording for callers that only
// need the observers' verdicts (e.g. summary-only scenario sweeps).
package sim

import (
	"time"

	"repro/internal/temporal"
)

// Component is a simulated subsystem that is stepped once per state period.
type Component interface {
	// Name identifies the component (used for diagnostics).
	Name() string
	// Step advances the component by one state period.  The component
	// reads the bus values committed at the previous step and writes its
	// outputs for the next step.
	Step(now time.Duration, bus *Bus)
}

// Bus is the shared-variable / network abstraction between components.
// Reads observe the values committed at the end of the previous step; writes
// are buffered and become visible after the current step commits.
//
// The bus owns the run's temporal.Schema: every signal name is interned to a
// dense slot index once, and the double-buffered current/pending states are
// register files over that schema.  Hot components resolve their signals to
// typed handles (NumVar/BoolVar/StringVar) up front and read/write by slot;
// the name-keyed Read*/Write* methods remain as the schema-resolving
// compatibility path.
// A Bus may also be one lane's view of a lane-widened register file
// (LaneBus): the double-buffered states are then shared by all lanes and
// every slot access is routed to the view's lane of the slot's contiguous
// lane group.  Components are oblivious — a lane view is just a *Bus whose
// handles resolve to lane-strided physical indices.
type Bus struct {
	schema  *temporal.Schema
	current temporal.State
	pending temporal.State
	lanes   int // lane width of the backing states (0/1 = scalar bus)
	lane    int // which lane this view addresses
}

// NewBus returns an empty bus with a fresh schema.
func NewBus() *Bus {
	schema := temporal.NewSchema()
	return &Bus{
		schema:  schema,
		current: temporal.NewStateWith(schema),
		pending: temporal.NewStateWith(schema),
	}
}

// Schema returns the bus' symbol table, shared by every state snapshot of
// the run.  Monitors compiled against it resolve their atoms at compile
// time (temporal.CompileWithSchema).
func (b *Bus) Schema() *temporal.Schema { return b.schema }

// physOf maps a schema slot onto the physical register index this bus view
// addresses: the identity for a scalar bus, the view's lane of the slot's
// lane group for a lane view.
func (b *Bus) physOf(slot int) int {
	if b.lanes > 1 {
		return slot*b.lanes + b.lane
	}
	return slot
}

// Read returns the visible value of a signal (invalid Value when absent).
func (b *Bus) Read(name string) temporal.Value {
	if i, ok := b.schema.Lookup(name); ok {
		return b.current.Slot(b.physOf(i))
	}
	return temporal.Value{}
}

// ReadNumber returns the visible numeric value of a signal (NaN if absent).
func (b *Bus) ReadNumber(name string) float64 { return b.Read(name).AsNumber() }

// ReadBool returns the visible boolean value of a signal.
func (b *Bus) ReadBool(name string) bool { return b.Read(name).AsBool() }

// ReadString returns the visible string value of a signal.
func (b *Bus) ReadString(name string) string { return b.Read(name).AsString() }

// Has reports whether the signal has a visible value.
func (b *Bus) Has(name string) bool { return b.Read(name).IsValid() }

// Write buffers a new value for a signal; it becomes visible next step.
func (b *Bus) Write(name string, v temporal.Value) {
	b.pending.SetSlot(b.physOf(b.schema.Intern(name)), v)
}

// WriteNumber buffers a numeric signal value.
func (b *Bus) WriteNumber(name string, f float64) {
	b.pending.SetSlotNumber(b.physOf(b.schema.Intern(name)), f)
}

// WriteBool buffers a boolean signal value.
func (b *Bus) WriteBool(name string, v bool) {
	b.pending.SetSlotBool(b.physOf(b.schema.Intern(name)), v)
}

// WriteString buffers a string signal value.
func (b *Bus) WriteString(name, s string) {
	b.pending.SetSlotString(b.physOf(b.schema.Intern(name)), s)
}

// Init sets a signal's initial value so that it is visible from the very
// first step.  Call before Simulation.Run.
func (b *Bus) Init(name string, v temporal.Value) {
	i := b.physOf(b.schema.Intern(name))
	b.current.SetSlot(i, v)
	b.pending.SetSlot(i, v)
}

// InitNumber initialises a numeric signal.
func (b *Bus) InitNumber(name string, f float64) { b.Init(name, temporal.Number(f)) }

// InitBool initialises a boolean signal.
func (b *Bus) InitBool(name string, v bool) { b.Init(name, temporal.Bool(v)) }

// InitString initialises a string signal.
func (b *Bus) InitString(name, s string) { b.Init(name, temporal.String(s)) }

// Commit makes all buffered writes visible: a plane-by-plane memmove of the
// pending register file over the current one.  Signals that were not written
// this step keep their previous value (hold semantics: once initialised or
// written, a signal's last value persists in the pending buffer).  The
// simulation kernel commits after each step; external drivers stepping
// components by hand call it directly.
func (b *Bus) Commit() { b.current.CopyFrom(b.pending) }

// Snapshot returns an independent copy of the visible state.
func (b *Bus) Snapshot() temporal.State { return b.current.Clone() }

// Reset clears both register files to the absent value while keeping the
// schema, the interned vocabulary and the plane capacity, so the same bus
// can carry run after run: slot handles, compiled monitors and enumeration
// ids resolved against the schema all stay valid, and the next run's Init
// calls write into already-sized planes.
func (b *Bus) Reset() {
	b.current.Reset()
	b.pending.Reset()
}

// NumVar is a slot-indexed handle to a numeric bus signal: Read observes the
// committed value (NaN when absent) and Write buffers the next value, with
// no per-access name resolution.
type NumVar struct {
	read  temporal.State
	write temporal.State
	slot  int
}

// NumVar resolves a numeric signal to a typed handle, interning the name.
func (b *Bus) NumVar(name string) NumVar {
	return NumVar{read: b.current, write: b.pending, slot: b.physOf(b.schema.Intern(name))}
}

// Read returns the visible value of the signal (NaN when absent).
func (v NumVar) Read() float64 { return v.read.SlotNumber(v.slot) }

// Write buffers a new value; it becomes visible after the next commit.
func (v NumVar) Write(f float64) { v.write.SetSlotNumber(v.slot, f) }

// BoolVar is a slot-indexed handle to a boolean bus signal.
type BoolVar struct {
	read  temporal.State
	write temporal.State
	slot  int
}

// BoolVar resolves a boolean signal to a typed handle, interning the name.
func (b *Bus) BoolVar(name string) BoolVar {
	return BoolVar{read: b.current, write: b.pending, slot: b.physOf(b.schema.Intern(name))}
}

// Read returns the visible value of the signal (false when absent).
func (v BoolVar) Read() bool { return v.read.SlotBool(v.slot) }

// Write buffers a new value; it becomes visible after the next commit.
func (v BoolVar) Write(x bool) { v.write.SetSlotBool(v.slot, x) }

// StringVar is a slot-indexed handle to a string (enumeration) bus signal.
type StringVar struct {
	read  temporal.State
	write temporal.State
	slot  int
}

// StringVar resolves a string signal to a typed handle, interning the name.
func (b *Bus) StringVar(name string) StringVar {
	return StringVar{read: b.current, write: b.pending, slot: b.physOf(b.schema.Intern(name))}
}

// Read returns the visible value of the signal ("" when absent).
func (v StringVar) Read() string { return v.read.SlotString(v.slot) }

// Write buffers a new value; it becomes visible after the next commit.
// Enumeration strings are interned in the bus schema, so a repeated write is
// a map read plus two plane stores.
func (v StringVar) Write(s string) { v.write.SetSlotString(v.slot, s) }

// Resetter is implemented by components that can rewind themselves to their
// initial conditions, so a fully built simulation — bus, schema, resolved
// handles, component set and observers — can be reused run after run
// (Simulation.Reset) instead of being reconstructed per run.
type Resetter interface {
	// Reset restores the component to its pre-first-Step state.  Scenario
	// configuration (schedules, defect flags, initial speeds) is a field
	// assignment and is not touched; callers reconfigure after Reset.
	Reset()
}

// StepFunc adapts a plain function into a Component.
type StepFunc struct {
	// ComponentName is the reported name.
	ComponentName string
	// Fn is invoked once per step.
	Fn func(now time.Duration, bus *Bus)
}

// Name implements Component.
func (s StepFunc) Name() string { return s.ComponentName }

// Step implements Component.
func (s StepFunc) Step(now time.Duration, bus *Bus) { s.Fn(now, bus) }

// Simulation is a fixed-step simulation of a set of components.
type Simulation struct {
	// Period is the state period (1 ms by default, as in the thesis).
	Period time.Duration
	// Bus is the shared signal bus.
	Bus *Bus

	components []Component
	observers  []func(now time.Duration, state temporal.State)
	stop       func(now time.Duration, state temporal.State) bool
}

// New returns a simulation with the given state period (defaulting to the
// thesis' 1 ms when non-positive).
func New(period time.Duration) *Simulation {
	if period <= 0 {
		period = time.Millisecond
	}
	return &Simulation{Period: period, Bus: NewBus()}
}

// Add registers components; they are stepped in registration order.
func (s *Simulation) Add(cs ...Component) {
	s.components = append(s.components, cs...)
}

// OnStep registers an observer invoked with the committed state after every
// step (e.g. run-time goal monitors).  Observers must not mutate the state.
func (s *Simulation) OnStep(fn func(now time.Duration, state temporal.State)) {
	s.observers = append(s.observers, fn)
}

// StateObserver consumes each committed state of a run.  A whole monitor
// suite compiled to a shared evaluation program (monitor.CompiledSuite) is
// one StateObserver: the simulation hands it each state once and the program
// fans the verdicts out to every monitor internally.
type StateObserver interface {
	Observe(state temporal.State)
}

// Observe registers a StateObserver as a single observer of every committed
// state.
func (s *Simulation) Observe(obs StateObserver) {
	s.OnStep(func(_ time.Duration, st temporal.State) { obs.Observe(st) })
}

// StopWhen registers an early-termination predicate evaluated on the
// committed state after every step; the thesis' scenarios terminate early
// when the simulated vehicle model faults.
func (s *Simulation) StopWhen(fn func(now time.Duration, state temporal.State) bool) {
	s.stop = fn
}

// Reset rewinds the simulation for another run: both bus register files are
// cleared (keeping the schema, the interned vocabulary and the plane
// capacity) and every component implementing Resetter is restored to its
// initial conditions.  Registered observers and the stop predicate are kept;
// reusable observers (e.g. monitor.CompiledSuite) have their own Reset.
// Together with per-component reconfiguration this makes a whole simulation
// a reusable arena: the steady state of a sweep allocates nothing per step
// and only O(1) bookkeeping per run.
func (s *Simulation) Reset() {
	s.Bus.Reset()
	for _, c := range s.components {
		if r, ok := c.(Resetter); ok {
			r.Reset()
		}
	}
}

// Run executes the simulation for the given duration (or until the stop
// predicate fires) and returns the recorded trace of committed states.
func (s *Simulation) Run(d time.Duration) *temporal.Trace {
	trace, _, _ := s.run(d, true)
	return trace
}

// RunDiscard executes the simulation like Run but records no trace: observers
// and the stop predicate receive the live bus state instead of a per-step
// snapshot, so a run allocates O(1) state instead of O(steps).  It returns
// the number of executed steps and an independent copy of the final committed
// state.
//
// Observers registered on a discarding run must treat the state as valid only
// for the duration of the call: it is mutated in place by the next commit.
// Incremental monitors (temporal.Stepper and everything built on it) already
// satisfy this — they evaluate atoms immediately and retain only operator
// state — which is what makes trace-free sweeps possible.
func (s *Simulation) RunDiscard(d time.Duration) (steps int, last temporal.State) {
	_, steps, last = s.run(d, false)
	return steps, last
}

func (s *Simulation) run(d time.Duration, retain bool) (*temporal.Trace, int, temporal.State) {
	steps := int(d / s.Period)
	var trace *temporal.Trace
	if retain {
		trace = temporal.NewTraceWithCapacity(s.Period, steps)
	}
	executed := 0
	for i := 0; i < steps; i++ {
		now := time.Duration(i) * s.Period
		for _, c := range s.components {
			c.Step(now, s.Bus)
		}
		s.Bus.Commit()
		snapshot := s.Bus.current
		if retain {
			snapshot = s.Bus.Snapshot()
			trace.Append(snapshot)
		}
		executed++
		for _, obs := range s.observers {
			obs(now, snapshot)
		}
		if s.stop != nil && s.stop(now, snapshot) {
			break
		}
	}
	var last temporal.State
	if retain {
		last = trace.Last()
	} else if executed > 0 {
		last = s.Bus.Snapshot()
	}
	return trace, executed, last
}
