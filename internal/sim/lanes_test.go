package sim

// Edge-case tests for the lane-widened bus and the lockstep lane kernel:
// bool bit-plane packing across uint64 word seams, enumeration interning
// shared across lanes, per-lane hold semantics and per-lane early stop.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/temporal"
)

// TestLaneBusBoolWordSeams packs a checkerboard of booleans across enough
// slots and lanes that the physical bit indices (slot*lanes+lane) straddle
// several uint64 words of the bit plane — including lane groups split across
// a word boundary (width 5 puts slots 12 and 25 across the 64- and 128-bit
// seams) — and checks every lane view reads back exactly its own bit.
func TestLaneBusBoolWordSeams(t *testing.T) {
	const lanes, slots = 5, 30 // 150 bits: word seams at 64 and 128
	lb := NewLaneBus(lanes)
	names := make([]string, slots)
	for s := range names {
		names[s] = fmt.Sprintf("b%02d", s)
	}
	want := func(s, l int) bool { return (s*7+l*3)%2 == 0 }
	for s, name := range names {
		for l := 0; l < lanes; l++ {
			lb.Lane(l).WriteBool(name, want(s, l))
		}
	}
	lb.Commit()
	for s, name := range names {
		for l := 0; l < lanes; l++ {
			if got := lb.Lane(l).ReadBool(name); got != want(s, l) {
				t.Fatalf("slot %d lane %d (bit %d): got %v, want %v",
					s, l, s*lanes+l, got, want(s, l))
			}
		}
	}

	// Flip a single bit on a seam-straddling slot; its plane neighbors (same
	// slot, adjacent lanes — adjacent physical bits across the word seam)
	// must be untouched.
	seam := 12 // lane group spans bits 60..64
	lb.Lane(2).WriteBool(names[seam], !want(seam, 2))
	lb.Commit()
	for l := 0; l < lanes; l++ {
		got := lb.Lane(l).ReadBool(names[seam])
		exp := want(seam, l)
		if l == 2 {
			exp = !exp
		}
		if got != exp {
			t.Fatalf("after flipping lane 2: slot %d lane %d = %v, want %v", seam, l, got, exp)
		}
	}
}

// TestLaneBusEnumInterningShared checks that all lanes intern enumeration
// strings into one shared table: equal strings written on different lanes
// resolve to the same id in the widened state, distinct strings to distinct
// ids, and every lane view reads back its own value.
func TestLaneBusEnumInterningShared(t *testing.T) {
	lb := NewLaneBus(3)
	lb.Lane(0).WriteString("src", "ACC")
	lb.Lane(1).WriteString("src", "Driver")
	lb.Lane(2).WriteString("src", "ACC")
	lb.Commit()

	for l, want := range []string{"ACC", "Driver", "ACC"} {
		if got := lb.Lane(l).ReadString("src"); got != want {
			t.Errorf("lane %d: ReadString = %q, want %q", l, got, want)
		}
	}
	slot := lb.Schema().Intern("src")
	st := lb.State()
	id0 := st.SlotStringIDLane(slot, 0)
	id1 := st.SlotStringIDLane(slot, 1)
	id2 := st.SlotStringIDLane(slot, 2)
	if id0 < 0 || id1 < 0 || id2 < 0 {
		t.Fatalf("string ids not set: %d,%d,%d", id0, id1, id2)
	}
	if id0 != id2 {
		t.Errorf("equal strings on lanes 0 and 2 interned to different ids (%d vs %d)", id0, id2)
	}
	if id0 == id1 {
		t.Errorf("distinct strings on lanes 0 and 1 interned to the same id %d", id0)
	}
}

// TestLaneBusHoldSemantics checks per-lane hold-on-commit: a lane that writes
// nothing this tick keeps its previous committed value while its siblings
// move — the property that lets a retired lane's signals freeze without any
// special casing in the commit.
func TestLaneBusHoldSemantics(t *testing.T) {
	lb := NewLaneBus(2)
	lb.Lane(0).WriteNumber("v", 1)
	lb.Lane(1).WriteNumber("v", 2)
	lb.Commit()
	lb.Lane(1).WriteNumber("v", 3)
	lb.Commit()
	if got := lb.Lane(0).ReadNumber("v"); got != 1 {
		t.Errorf("unwritten lane 0 moved: got %v, want held 1", got)
	}
	if got := lb.Lane(1).ReadNumber("v"); got != 3 {
		t.Errorf("lane 1 = %v, want 3", got)
	}
}

// laneCounter increments a per-lane signal each tick; its Step writes
// through the scalar Component interface, proving unmodified components run
// on lane views.
type laneCounter struct {
	n int
	v NumVar
}

func (c *laneCounter) Name() string { return "laneCounter" }

func (c *laneCounter) Step(now time.Duration, bus *Bus) {
	c.n++
	c.v.Write(float64(c.n))
}
func (c *laneCounter) Reset() { c.n = 0 }

// TestLaneSimEarlyStopSteps runs three counter lanes with staggered stop
// thresholds: each stopping lane must retire at its own tick (Steps includes
// the stopping tick, matching the scalar kernel), later ticks must not step
// it, and a lane whose predicate never fires runs the full schedule.
func TestLaneSimEarlyStopSteps(t *testing.T) {
	const lanes = 3
	s := NewLaneSim(time.Millisecond, lanes)
	counters := make([]*laneCounter, lanes)
	slot := s.Bus.Schema().Intern("n")
	for l := 0; l < lanes; l++ {
		counters[l] = &laneCounter{v: s.Bus.Lane(l).NumVar("n")}
		s.AddLane(l, counters[l])
	}
	thresholds := []float64{5, 12, 1 << 30} // lane 2 never stops
	s.StopLaneWhen(func(lane int, _ time.Duration, st temporal.State) bool {
		return st.SlotNumberLane(slot, lane) >= thresholds[lane]
	})

	var stops []int
	s.Observe(observerFunc{
		observe: func(temporal.State) {},
		stopped: func(l int) { stops = append(stops, l) },
	})

	stopped := s.Run(20*time.Millisecond, 1<<lanes-1)
	if stopped != 0b011 {
		t.Fatalf("stopped mask = %b, want 011", stopped)
	}
	if s.Steps(0) != 5 || s.Steps(1) != 12 || s.Steps(2) != 20 {
		t.Fatalf("Steps = %d,%d,%d, want 5,12,20", s.Steps(0), s.Steps(1), s.Steps(2))
	}
	if counters[0].n != 5 || counters[1].n != 12 || counters[2].n != 20 {
		t.Fatalf("component steps = %d,%d,%d, want 5,12,20", counters[0].n, counters[1].n, counters[2].n)
	}
	if len(stops) != 2 || stops[0] != 0 || stops[1] != 1 {
		t.Fatalf("LaneStopped order = %v, want [0 1]", stops)
	}

	// A retired lane's committed signals freeze at their stopping value.
	if got := s.Bus.Lane(0).ReadNumber("n"); got != 5 {
		t.Errorf("retired lane 0 signal = %v, want frozen 5", got)
	}

	// Reset rewinds components and steps for the next batch.
	s.Reset()
	if counters[0].n != 0 || s.Steps(0) != 0 {
		t.Fatalf("Reset left counter=%d steps=%d", counters[0].n, s.Steps(0))
	}
}

// observerFunc adapts two closures to LaneObserver.
type observerFunc struct {
	observe func(temporal.State)
	stopped func(int)
}

func (o observerFunc) ObserveLanes(st temporal.State) { o.observe(st) }
func (o observerFunc) LaneStopped(l int)              { o.stopped(l) }
