package sim

import (
	"testing"
	"time"

	"repro/internal/temporal"
)

func TestBusOneStepDelay(t *testing.T) {
	b := NewBus()
	b.WriteNumber("x", 5)
	if b.Has("x") {
		t.Error("written value must not be visible before commit")
	}
	b.Commit()
	if got := b.ReadNumber("x"); got != 5 {
		t.Errorf("after commit, x = %v", got)
	}
}

func TestBusHoldSemantics(t *testing.T) {
	b := NewBus()
	b.InitNumber("x", 1)
	b.Commit()
	// No write this step: the value holds.
	b.Commit()
	if got := b.ReadNumber("x"); got != 1 {
		t.Errorf("x should hold its value, got %v", got)
	}
}

func TestBusInitVisibleImmediately(t *testing.T) {
	b := NewBus()
	b.InitBool("enabled", true)
	b.InitString("cmd", "STOP")
	b.InitNumber("speed", 2.5)
	b.Init("raw", temporal.Number(7))
	if !b.ReadBool("enabled") || b.ReadString("cmd") != "STOP" || b.ReadNumber("speed") != 2.5 || b.ReadNumber("raw") != 7 {
		t.Error("Init values must be visible before the first commit")
	}
}

func TestBusTypedAccessors(t *testing.T) {
	b := NewBus()
	b.WriteBool("flag", true)
	b.WriteString("mode", "GO")
	b.Write("v", temporal.Number(3))
	b.Commit()
	if !b.ReadBool("flag") || b.ReadString("mode") != "GO" || b.Read("v").AsNumber() != 3 {
		t.Error("typed accessors round-trip failed")
	}
	if b.Has("missing") {
		t.Error("Has(missing) should be false")
	}
}

func TestBusSnapshotIsIndependent(t *testing.T) {
	b := NewBus()
	b.InitNumber("x", 1)
	snap := b.Snapshot()
	b.WriteNumber("x", 2)
	b.Commit()
	if snap.Number("x") != 1 {
		t.Error("snapshot must not alias the live bus state")
	}
}

func TestSimulationRunsComponentsInOrder(t *testing.T) {
	s := New(time.Millisecond)
	var order []string
	s.Add(StepFunc{ComponentName: "first", Fn: func(time.Duration, *Bus) { order = append(order, "first") }})
	s.Add(StepFunc{ComponentName: "second", Fn: func(time.Duration, *Bus) { order = append(order, "second") }})
	s.Run(2 * time.Millisecond)
	want := []string{"first", "second", "first", "second"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimulationDefaultPeriod(t *testing.T) {
	s := New(0)
	if s.Period != time.Millisecond {
		t.Errorf("default period = %v", s.Period)
	}
}

func TestStepFuncName(t *testing.T) {
	c := StepFunc{ComponentName: "integrator"}
	if c.Name() != "integrator" {
		t.Errorf("Name() = %q", c.Name())
	}
}

// TestSimulationIntegratorTrace exercises the kernel end to end with a tiny
// closed loop: a controller commands acceleration, the plant integrates it,
// and the trace records both signals with the one-step observation delay.
func TestSimulationIntegratorTrace(t *testing.T) {
	s := New(10 * time.Millisecond)
	s.Bus.InitNumber("speed", 0)
	s.Bus.InitNumber("accelCmd", 0)

	controller := StepFunc{ComponentName: "controller", Fn: func(_ time.Duration, b *Bus) {
		if b.ReadNumber("speed") < 1.0 {
			b.WriteNumber("accelCmd", 10)
		} else {
			b.WriteNumber("accelCmd", 0)
		}
	}}
	plant := StepFunc{ComponentName: "plant", Fn: func(_ time.Duration, b *Bus) {
		dt := 0.010
		b.WriteNumber("speed", b.ReadNumber("speed")+b.ReadNumber("accelCmd")*dt)
	}}
	s.Add(controller, plant)

	tr := s.Run(500 * time.Millisecond)
	if tr.Len() != 50 {
		t.Fatalf("trace length = %d, want 50", tr.Len())
	}
	final := tr.Last().Number("speed")
	if final < 0.99 || final > 1.3 {
		t.Errorf("closed loop should settle near 1.0 m/s, got %v", final)
	}
	// The plant reads the command one step late: speed is still 0 at index 0.
	if got := tr.At(0).Number("speed"); got != 0 {
		t.Errorf("speed at step 0 = %v, want 0 (one-step delay)", got)
	}
	if got := tr.At(2).Number("speed"); got <= 0 {
		t.Errorf("speed at step 2 = %v, want > 0", got)
	}
}

func TestSimulationObserversAndStop(t *testing.T) {
	s := New(time.Millisecond)
	s.Bus.InitNumber("count", 0)
	s.Add(StepFunc{ComponentName: "counter", Fn: func(_ time.Duration, b *Bus) {
		b.WriteNumber("count", b.ReadNumber("count")+1)
	}})
	var observed int
	s.OnStep(func(_ time.Duration, st temporal.State) { observed++ })
	s.StopWhen(func(_ time.Duration, st temporal.State) bool { return st.Number("count") >= 5 })

	tr := s.Run(time.Second)
	if tr.Len() != 5 {
		t.Fatalf("early stop should truncate the trace at 5 steps, got %d", tr.Len())
	}
	if observed != 5 {
		t.Errorf("observers should run once per step, got %d", observed)
	}
}

func TestSimulationZeroDuration(t *testing.T) {
	s := New(time.Millisecond)
	tr := s.Run(0)
	if tr.Len() != 0 {
		t.Errorf("zero-duration run should produce an empty trace, got %d", tr.Len())
	}
}

// newCountingSim builds a simulation with one counter component, mirroring
// TestSimulationObserversAndStop, for the RunDiscard equivalence tests.
func newCountingSim() *Simulation {
	s := New(time.Millisecond)
	s.Bus.InitNumber("count", 0)
	s.Add(StepFunc{ComponentName: "counter", Fn: func(_ time.Duration, b *Bus) {
		b.WriteNumber("count", b.ReadNumber("count")+1)
	}})
	return s
}

// TestRunDiscardMatchesRun checks that a discarding run executes the same
// steps, shows observers the same state sequence and reports the same final
// state as a retaining run — it only skips the per-step snapshots.
func TestRunDiscardMatchesRun(t *testing.T) {
	ref := newCountingSim()
	tr := ref.Run(10 * time.Millisecond)

	s := newCountingSim()
	var observed []float64
	s.OnStep(func(_ time.Duration, st temporal.State) { observed = append(observed, st.Number("count")) })
	steps, last := s.RunDiscard(10 * time.Millisecond)

	if steps != tr.Len() {
		t.Fatalf("RunDiscard executed %d steps, Run recorded %d", steps, tr.Len())
	}
	if len(observed) != tr.Len() {
		t.Fatalf("observers ran %d times, want %d", len(observed), tr.Len())
	}
	for i, v := range observed {
		if want := tr.At(i).Number("count"); v != want {
			t.Errorf("observed count at step %d = %v, want %v", i, v, want)
		}
	}
	if got, want := last.Number("count"), tr.Last().Number("count"); got != want {
		t.Errorf("final state count = %v, want %v", got, want)
	}
}

// TestRunDiscardStopAndLastIndependence checks early termination and that the
// returned final state does not alias the live bus.
func TestRunDiscardStopAndLastIndependence(t *testing.T) {
	s := newCountingSim()
	s.StopWhen(func(_ time.Duration, st temporal.State) bool { return st.Number("count") >= 5 })
	steps, last := s.RunDiscard(time.Second)
	if steps != 5 {
		t.Fatalf("early stop should halt after 5 steps, got %d", steps)
	}
	s.Bus.WriteNumber("count", 99)
	s.Bus.Commit()
	if last.Number("count") != 5 {
		t.Error("RunDiscard's final state must not alias the live bus state")
	}

	zero := New(time.Millisecond)
	if steps, last := zero.RunDiscard(0); steps != 0 || last != nil {
		t.Errorf("zero-duration discard run = (%d, %v), want (0, nil)", steps, last)
	}
}

// TestBusResetKeepsVocabularyAndHandles checks that Bus.Reset clears every
// signal while keeping the schema and resolved slot handles valid, so a
// reused bus carries the next run without re-interning.
func TestBusResetKeepsVocabularyAndHandles(t *testing.T) {
	bus := NewBus()
	speed := bus.NumVar("speed")
	mode := bus.StringVar("mode")
	bus.InitNumber("speed", 7)
	bus.InitString("mode", "GO")

	before := bus.Schema().Len()
	bus.Reset()
	if bus.Has("speed") || bus.Has("mode") {
		t.Fatal("signals survived Bus.Reset")
	}
	if bus.Schema().Len() != before {
		t.Fatalf("schema width changed across Reset: %d != %d", bus.Schema().Len(), before)
	}

	// The pre-reset handles still address the same slots.
	speed.Write(3)
	mode.Write("STOP")
	bus.Commit()
	if got := speed.Read(); got != 3 {
		t.Errorf("handle read after Reset = %v, want 3", got)
	}
	if got := mode.Read(); got != "STOP" {
		t.Errorf("string handle read after Reset = %q, want STOP", got)
	}
}

// resettableCounter counts steps and implements Resetter.
type resettableCounter struct {
	steps int
}

func (c *resettableCounter) Name() string { return "counter" }
func (c *resettableCounter) Step(_ time.Duration, bus *Bus) {
	c.steps++
	bus.WriteNumber("count", float64(c.steps))
}
func (c *resettableCounter) Reset() { c.steps = 0 }

// TestSimulationResetRewindsComponentsAndBus checks that a reset simulation
// reproduces its first run exactly.
func TestSimulationResetRewindsComponentsAndBus(t *testing.T) {
	s := New(time.Millisecond)
	c := &resettableCounter{}
	s.Add(c)
	_, last1 := s.RunDiscard(5 * time.Millisecond)

	s.Reset()
	if s.Bus.Has("count") {
		t.Fatal("bus state survived Simulation.Reset")
	}
	_, last2 := s.RunDiscard(5 * time.Millisecond)
	if got, want := last2.Number("count"), last1.Number("count"); got != want {
		t.Errorf("second run after Reset ended at count %v, first run at %v", got, want)
	}
}
