// Package hazard implements the traditional hazard-analysis baselines that
// the thesis contrasts ICPA with (thesis §2.2.1): Preliminary Hazard
// Analysis (PHA), Fault Tree Analysis (FTA, Figure 2.2) and Failure Modes
// and Effects Analysis (FMEA, Figure 2.3).
//
// These techniques search from hazards to component faults (FTA, backward)
// or from component faults to hazards (FMEA, forward), whereas ICPA traces
// goal state variables to the agents that influence them; implementing the
// baselines lets the repository regenerate the thesis' comparison figures
// and provides the hazard catalogue the vehicle safety goals are derived
// from.
package hazard

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Severity is the qualitative hazard severity used in a PHA.
type Severity int

// Severity levels (MIL-STD-882 style, as commonly used in PHA tables).
const (
	// SeverityNegligible hazards cause less than minor injury or damage.
	SeverityNegligible Severity = iota + 1
	// SeverityMarginal hazards cause minor injury or system damage.
	SeverityMarginal
	// SeverityCritical hazards cause severe injury or major damage.
	SeverityCritical
	// SeverityCatastrophic hazards cause death or system loss.
	SeverityCatastrophic
)

// String names the severity level.
func (s Severity) String() string {
	switch s {
	case SeverityNegligible:
		return "negligible"
	case SeverityMarginal:
		return "marginal"
	case SeverityCritical:
		return "critical"
	case SeverityCatastrophic:
		return "catastrophic"
	default:
		return "unknown"
	}
}

// PHAEntry is one row of a Preliminary Hazard Analysis: a hazard, its
// severity, and the mitigations added as the design progresses.
type PHAEntry struct {
	// Hazard describes the hazardous system state.
	Hazard string
	// Severity is the assessed severity.
	Severity Severity
	// Causes lists known potential causes.
	Causes []string
	// Mitigations lists prevention or mitigation measures; for this
	// repository they reference the derived system safety goals.
	Mitigations []string
}

// PHA is a Preliminary Hazard Analysis: the list of system-level hazards
// identified early in development.
type PHA struct {
	// System names the analysed system.
	System string
	// Entries are the hazard rows.
	Entries []PHAEntry
}

// Add appends an entry.
func (p *PHA) Add(e PHAEntry) { p.Entries = append(p.Entries, e) }

// BySeverity returns entries of at least the given severity, most severe
// first.
func (p *PHA) BySeverity(min Severity) []PHAEntry {
	var out []PHAEntry
	for _, e := range p.Entries {
		if e.Severity >= min {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Severity > out[j].Severity })
	return out
}

// Render writes the PHA as a plain-text table.
func (p *PHA) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Preliminary Hazard Analysis: %s\n", p.System)
	fmt.Fprintln(&b, strings.Repeat("-", 78))
	for _, e := range p.Entries {
		fmt.Fprintf(&b, "%-48s %s\n", e.Hazard, e.Severity)
		if len(e.Causes) > 0 {
			fmt.Fprintf(&b, "    causes: %s\n", strings.Join(e.Causes, "; "))
		}
		if len(e.Mitigations) > 0 {
			fmt.Fprintf(&b, "    mitigations: %s\n", strings.Join(e.Mitigations, "; "))
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fault Tree Analysis
// ---------------------------------------------------------------------------

// GateKind is the logical gate type of a fault-tree node.
type GateKind int

// Gate kinds.
const (
	// GateBasic is a leaf basic event with a probability of occurrence.
	GateBasic GateKind = iota + 1
	// GateAnd requires all input events to occur.
	GateAnd
	// GateOr requires at least one input event to occur.
	GateOr
)

// String names the gate kind.
func (g GateKind) String() string {
	switch g {
	case GateBasic:
		return "basic"
	case GateAnd:
		return "AND"
	case GateOr:
		return "OR"
	default:
		return "unknown"
	}
}

// Event is a node of a fault tree: either a basic event (leaf) or an
// intermediate event combining children through an AND or OR gate.
type Event struct {
	// Name describes the event.
	Name string
	// Gate is the node kind.
	Gate GateKind
	// Probability is the occurrence probability (or rate per hour) of a
	// basic event; ignored for gates.
	Probability float64
	// Children are the gate inputs (empty for basic events).
	Children []*Event
}

// BasicEvent constructs a leaf event with a probability.
func BasicEvent(name string, probability float64) *Event {
	return &Event{Name: name, Gate: GateBasic, Probability: probability}
}

// AndGate constructs an intermediate event whose children must all occur.
func AndGate(name string, children ...*Event) *Event {
	return &Event{Name: name, Gate: GateAnd, Children: children}
}

// OrGate constructs an intermediate event where any child suffices.
func OrGate(name string, children ...*Event) *Event {
	return &Event{Name: name, Gate: GateOr, Children: children}
}

// FaultTree is a fault tree rooted at a top-level hazard.
type FaultTree struct {
	// Hazard is the top event.
	Hazard string
	// Root is the root node.
	Root *Event
}

// TopProbability computes the probability of the top event assuming basic
// events are independent: products across AND gates and the complement
// product across OR gates.
func (t *FaultTree) TopProbability() float64 {
	if t.Root == nil {
		return 0
	}
	return eventProbability(t.Root)
}

func eventProbability(e *Event) float64 {
	switch e.Gate {
	case GateBasic:
		return e.Probability
	case GateAnd:
		p := 1.0
		for _, c := range e.Children {
			p *= eventProbability(c)
		}
		if len(e.Children) == 0 {
			return 0
		}
		return p
	case GateOr:
		q := 1.0
		for _, c := range e.Children {
			q *= 1 - eventProbability(c)
		}
		return 1 - q
	default:
		return math.NaN()
	}
}

// CutSet is a set of basic-event names whose joint occurrence causes the top
// event.
type CutSet []string

// String renders the cut set.
func (c CutSet) String() string { return "{" + strings.Join(c, ", ") + "}" }

// MinimalCutSets computes the minimal cut sets of the tree by expanding OR
// gates into alternatives and AND gates into unions, then removing
// supersets.  Single-element cut sets are the single-point failures a
// traditional FTA aims to eliminate (thesis §2.2.1).
func (t *FaultTree) MinimalCutSets() []CutSet {
	if t.Root == nil {
		return nil
	}
	raw := cutSets(t.Root)
	return minimize(raw)
}

// SinglePointFailures returns the basic events that alone cause the top
// event.
func (t *FaultTree) SinglePointFailures() []string {
	var out []string
	for _, cs := range t.MinimalCutSets() {
		if len(cs) == 1 {
			out = append(out, cs[0])
		}
	}
	sort.Strings(out)
	return out
}

func cutSets(e *Event) []CutSet {
	switch e.Gate {
	case GateBasic:
		return []CutSet{{e.Name}}
	case GateOr:
		var out []CutSet
		for _, c := range e.Children {
			out = append(out, cutSets(c)...)
		}
		return out
	case GateAnd:
		out := []CutSet{{}}
		for _, c := range e.Children {
			child := cutSets(c)
			var next []CutSet
			for _, a := range out {
				for _, b := range child {
					next = append(next, unionSets(a, b))
				}
			}
			out = next
		}
		return out
	default:
		return nil
	}
}

func unionSets(a, b CutSet) CutSet {
	seen := make(map[string]struct{}, len(a)+len(b))
	var out CutSet
	for _, s := range append(append(CutSet{}, a...), b...) {
		if _, ok := seen[s]; ok {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func minimize(sets []CutSet) []CutSet {
	// Remove duplicates and supersets of smaller sets.
	sort.Slice(sets, func(i, j int) bool { return len(sets[i]) < len(sets[j]) })
	var out []CutSet
	for _, cs := range sets {
		redundant := false
		for _, kept := range out {
			if isSubset(kept, cs) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, cs)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return strings.Join(out[i], ",") < strings.Join(out[j], ",")
	})
	return out
}

func isSubset(small, big CutSet) bool {
	set := make(map[string]struct{}, len(big))
	for _, s := range big {
		set[s] = struct{}{}
	}
	for _, s := range small {
		if _, ok := set[s]; !ok {
			return false
		}
	}
	return true
}

// Render writes the fault tree as an indented text outline.
func (t *FaultTree) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault tree for hazard: %s\n", t.Hazard)
	renderEvent(&b, t.Root, 0)
	return b.String()
}

func renderEvent(b *strings.Builder, e *Event, depth int) {
	if e == nil {
		return
	}
	indent := strings.Repeat("  ", depth)
	switch e.Gate {
	case GateBasic:
		fmt.Fprintf(b, "%s- %s (p=%.2e)\n", indent, e.Name, e.Probability)
	default:
		fmt.Fprintf(b, "%s+ %s [%s]\n", indent, e.Name, e.Gate)
	}
	for _, c := range e.Children {
		renderEvent(b, c, depth+1)
	}
}

// ---------------------------------------------------------------------------
// Failure Modes and Effects Analysis
// ---------------------------------------------------------------------------

// FailureMode is one row of an FMEA table (thesis Figure 2.3).
type FailureMode struct {
	// Component is the analysed component.
	Component string
	// Mode is the failure mode (e.g. "false positive").
	Mode string
	// Cause is the assumed cause.
	Cause string
	// Effect is the system-level effect.
	Effect string
	// Probability is the occurrence rate per hour.
	Probability float64
	// Criticality optionally records an FMECA criticality ranking
	// (0 when not assessed).
	Criticality int
}

// FMEA is a Failure Modes and Effects Analysis table.
type FMEA struct {
	// System names the analysed system.
	System string
	// Rows are the failure-mode entries.
	Rows []FailureMode
}

// Add appends a failure mode.
func (f *FMEA) Add(m FailureMode) { f.Rows = append(f.Rows, m) }

// ByComponent returns the failure modes of one component.
func (f *FMEA) ByComponent(component string) []FailureMode {
	var out []FailureMode
	for _, m := range f.Rows {
		if m.Component == component {
			out = append(out, m)
		}
	}
	return out
}

// HighestRisk returns the n rows with the highest probability (all rows when
// n exceeds the table size).
func (f *FMEA) HighestRisk(n int) []FailureMode {
	rows := append([]FailureMode(nil), f.Rows...)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Probability > rows[j].Probability })
	if n > len(rows) {
		n = len(rows)
	}
	return rows[:n]
}

// Render writes the FMEA as a plain-text table.
func (f *FMEA) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FMEA: %s\n", f.System)
	fmt.Fprintf(&b, "%-22s %-18s %-24s %-40s %s\n", "Component", "Failure Mode", "Cause", "Effect", "Prob/hr")
	fmt.Fprintln(&b, strings.Repeat("-", 118))
	for _, m := range f.Rows {
		fmt.Fprintf(&b, "%-22s %-18s %-24s %-40s %.1e\n", m.Component, m.Mode, m.Cause, m.Effect, m.Probability)
	}
	return b.String()
}
