package hazard

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeverityString(t *testing.T) {
	for s, want := range map[Severity]string{
		SeverityNegligible: "negligible", SeverityMarginal: "marginal",
		SeverityCritical: "critical", SeverityCatastrophic: "catastrophic", Severity(0): "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("Severity.String() = %q, want %q", got, want)
		}
	}
}

func TestGateKindString(t *testing.T) {
	for g, want := range map[GateKind]string{
		GateBasic: "basic", GateAnd: "AND", GateOr: "OR", GateKind(0): "unknown",
	} {
		if got := g.String(); got != want {
			t.Errorf("GateKind.String() = %q, want %q", got, want)
		}
	}
}

func TestPHA(t *testing.T) {
	p := VehiclePHA()
	if len(p.Entries) != 5 {
		t.Fatalf("PHA entries = %d, want 5", len(p.Entries))
	}
	severe := p.BySeverity(SeverityCatastrophic)
	if len(severe) != 3 {
		t.Errorf("catastrophic entries = %d, want 3", len(severe))
	}
	for i := 1; i < len(severe); i++ {
		if severe[i-1].Severity < severe[i].Severity {
			t.Error("BySeverity should sort most severe first")
		}
	}
	out := p.Render()
	for _, want := range []string{"Preliminary Hazard Analysis", "Unintended or sudden", "Achieve[AutoAccelBelowThreshold]"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q", want)
		}
	}
}

func TestPHAAdd(t *testing.T) {
	p := &PHA{System: "test"}
	p.Add(PHAEntry{Hazard: "h1", Severity: SeverityMarginal})
	if len(p.Entries) != 1 {
		t.Fatal("Add failed")
	}
	if got := p.BySeverity(SeverityCritical); len(got) != 0 {
		t.Errorf("BySeverity(critical) = %v", got)
	}
}

func TestFaultTreeFigure2_2(t *testing.T) {
	tree := VehicleUnintendedAccelerationTree()

	p := tree.TopProbability()
	if p <= 0 || p >= 1 {
		t.Fatalf("TopProbability() = %v, want a probability in (0,1)", p)
	}

	cuts := tree.MinimalCutSets()
	if len(cuts) == 0 {
		t.Fatal("expected minimal cut sets")
	}
	// The two driver/throttle basic events are single-point failures.
	sp := tree.SinglePointFailures()
	wantSingle := []string{
		"Driver presses throttle pedal instead of brake",
		"Throttle accidentally applied instead of brake",
	}
	sort.Strings(wantSingle)
	if len(sp) != len(wantSingle) {
		t.Fatalf("SinglePointFailures() = %v", sp)
	}
	for i := range sp {
		if sp[i] != wantSingle[i] {
			t.Errorf("single point failure %d = %q, want %q", i, sp[i], wantSingle[i])
		}
	}
	// The autonomous-switch branch requires two events together (an AND
	// gate), so there must be a two-element cut set containing both.
	foundPair := false
	for _, cs := range cuts {
		if len(cs) == 2 && cs.String() == "{Higher priority subsystem aborts deceleration, Lower priority subsystem requests acceleration}" {
			foundPair = true
		}
	}
	if !foundPair {
		t.Errorf("expected the AND-gate pair cut set, got %v", cuts)
	}

	out := tree.Render()
	for _, want := range []string{"Unintended sudden acceleration", "[OR]", "[AND]", "p="} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q", want)
		}
	}
}

func TestFaultTreeProbabilityRules(t *testing.T) {
	and := AndGate("both", BasicEvent("a", 0.5), BasicEvent("b", 0.5))
	if got := (&FaultTree{Root: and}).TopProbability(); got != 0.25 {
		t.Errorf("AND probability = %v, want 0.25", got)
	}
	or := OrGate("either", BasicEvent("a", 0.5), BasicEvent("b", 0.5))
	if got := (&FaultTree{Root: or}).TopProbability(); got != 0.75 {
		t.Errorf("OR probability = %v, want 0.75", got)
	}
	empty := &FaultTree{}
	if got := empty.TopProbability(); got != 0 {
		t.Errorf("empty tree probability = %v", got)
	}
	if got := empty.MinimalCutSets(); got != nil {
		t.Errorf("empty tree cut sets = %v", got)
	}
	emptyAnd := &FaultTree{Root: AndGate("nothing")}
	if got := emptyAnd.TopProbability(); got != 0 {
		t.Errorf("empty AND gate probability = %v", got)
	}
	bad := &FaultTree{Root: &Event{Name: "broken", Gate: GateKind(42)}}
	if got := bad.TopProbability(); !math.IsNaN(got) {
		t.Errorf("unknown gate probability = %v, want NaN", got)
	}
	if got := cutSets(&Event{Gate: GateKind(42)}); got != nil {
		t.Errorf("unknown gate cut sets = %v", got)
	}
}

func TestMinimalCutSetsRemoveSupersets(t *testing.T) {
	// OR(a, AND(a, b)) has the single minimal cut set {a}.
	tree := &FaultTree{Root: OrGate("top",
		BasicEvent("a", 0.1),
		AndGate("redundant", BasicEvent("a", 0.1), BasicEvent("b", 0.1)),
	)}
	cuts := tree.MinimalCutSets()
	if len(cuts) != 1 || cuts[0].String() != "{a}" {
		t.Errorf("MinimalCutSets() = %v, want [{a}]", cuts)
	}
}

func TestPropOrProbabilityBounds(t *testing.T) {
	// The OR of independent events is at least the max and at most the sum
	// of the children probabilities, and always a valid probability.
	f := func(a, b, c uint16) bool {
		pa := float64(a%1000) / 1000
		pb := float64(b%1000) / 1000
		pc := float64(c%1000) / 1000
		tree := &FaultTree{Root: OrGate("top",
			BasicEvent("a", pa), BasicEvent("b", pb), BasicEvent("c", pc))}
		p := tree.TopProbability()
		maxP := math.Max(pa, math.Max(pb, pc))
		sum := pa + pb + pc
		return p >= maxP-1e-9 && p <= math.Min(sum, 1)+1e-9 && p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropAndProbabilityBelowMin(t *testing.T) {
	f := func(a, b uint16) bool {
		pa := float64(a%1000) / 1000
		pb := float64(b%1000) / 1000
		tree := &FaultTree{Root: AndGate("top", BasicEvent("a", pa), BasicEvent("b", pb))}
		p := tree.TopProbability()
		return p <= math.Min(pa, pb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFMEAFigure2_3(t *testing.T) {
	f := VehicleRadarFMEA()
	if len(f.Rows) < 6 {
		t.Fatalf("FMEA rows = %d, want at least 6", len(f.Rows))
	}
	radar := f.ByComponent("Long-range radar sensor")
	if len(radar) != 2 {
		t.Fatalf("radar failure modes = %d, want 2 (false positive and false negative)", len(radar))
	}
	top := f.HighestRisk(1)
	if len(top) != 1 || top[0].Mode != "False positive" {
		t.Errorf("HighestRisk(1) = %+v", top)
	}
	if got := f.HighestRisk(100); len(got) != len(f.Rows) {
		t.Errorf("HighestRisk(100) should return all rows")
	}
	out := f.Render()
	for _, want := range []string{"FMEA", "Long-range radar sensor", "False negative", "Arbiter"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q", want)
		}
	}
}

func TestFMEAAddAndByComponentMissing(t *testing.T) {
	f := &FMEA{System: "x"}
	f.Add(FailureMode{Component: "c", Mode: "m"})
	if len(f.Rows) != 1 {
		t.Fatal("Add failed")
	}
	if got := f.ByComponent("other"); len(got) != 0 {
		t.Errorf("ByComponent(other) = %v", got)
	}
}
