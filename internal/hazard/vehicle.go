package hazard

// This file contains the concrete hazard-analysis artefacts for the thesis'
// semi-autonomous automotive system: the partial fault tree of Figure 2.2,
// the partial FMEA of Figure 2.3 and the PHA the vehicle safety goals of
// Tables 5.1/5.2 trace back to.

// VehicleUnintendedAccelerationTree reproduces the partial fault tree of
// thesis Figure 2.2 for the hazard "unintended sudden acceleration".
func VehicleUnintendedAccelerationTree() *FaultTree {
	objectMissed := AndGate("Object detection misses object that is there",
		OrGate("Detection failure cause",
			BasicEvent("Object's features exceed detection algorithm's margin of error", 1e-3),
			BasicEvent("Sensor is blocked", 5e-4),
		),
		BasicEvent("Object is present in vehicle path", 1e-1),
	)
	autonomousSwitch := AndGate("Autonomous control changes from decelerate to accelerate",
		BasicEvent("Higher priority subsystem aborts deceleration", 2e-4),
		BasicEvent("Lower priority subsystem requests acceleration", 5e-2),
	)
	root := OrGate("Unintended sudden acceleration",
		BasicEvent("Driver presses throttle pedal instead of brake", 1e-5),
		BasicEvent("Throttle accidentally applied instead of brake", 1e-5),
		autonomousSwitch,
		objectMissed,
	)
	return &FaultTree{Hazard: "Unintended sudden acceleration", Root: root}
}

// VehicleRadarFMEA reproduces the partial FMEA of thesis Figure 2.3 for the
// long-range radar sensor, extended with the arbitration and feature
// subsystem failure modes the evaluation scenarios exercise.
func VehicleRadarFMEA() *FMEA {
	f := &FMEA{System: "semi-autonomous automotive system"}
	f.Add(FailureMode{
		Component: "Long-range radar sensor", Mode: "False positive", Cause: "Signal noise",
		Effect: "Could cause Collision Avoidance to randomly stop vehicle", Probability: 3e-2,
	})
	f.Add(FailureMode{
		Component: "Long-range radar sensor", Mode: "False negative", Cause: "Signal noise",
		Effect: "Could cause Collision Avoidance to miss an object", Probability: 1e-2,
	})
	f.Add(FailureMode{
		Component: "Arbiter", Mode: "Wrong source selected", Cause: "Reversed steering arbitration priority",
		Effect: "Acceleration command taken from an unintended feature subsystem", Probability: 1e-4,
	})
	f.Add(FailureMode{
		Component: "Park Assist", Mode: "Spurious request", Cause: "Requests emitted while not enabled",
		Effect: "Unintended acceleration if arbitration passes the request through", Probability: 1e-4,
	})
	f.Add(FailureMode{
		Component: "Collision Avoidance", Mode: "Intermittent braking", Cause: "Braking action cancelled and re-applied",
		Effect: "Vehicle fails to stop before the object in its path", Probability: 5e-4,
	})
	f.Add(FailureMode{
		Component: "Adaptive Cruise Control", Mode: "Command while inactive", Cause: "Controller runs while not engaged",
		Effect: "Acceleration requests toward an unintended set speed", Probability: 2e-4,
	})
	return f
}

// VehiclePHA returns the Preliminary Hazard Analysis from which the nine
// vehicle-level safety goals of Tables 5.1/5.2 are derived.
func VehiclePHA() *PHA {
	p := &PHA{System: "semi-autonomous automotive system"}
	p.Add(PHAEntry{
		Hazard:   "Unintended or sudden vehicle acceleration under autonomous control",
		Severity: SeverityCatastrophic,
		Causes:   []string{"arbitration defect", "feature requests while disabled", "incorrect pedal application"},
		Mitigations: []string{
			"Achieve[AutoAccelBelowThreshold]", "Achieve[AutoJerkBelowThreshold]", "Achieve[NoAutoAccelFromStop]",
		},
	})
	p.Add(PHAEntry{
		Hazard:      "Conflicting acceleration and steering control by different feature subsystems",
		Severity:    SeverityCritical,
		Causes:      []string{"feature interaction", "split arbitration of acceleration and steering"},
		Mitigations: []string{"Achieve[SubsystemAccelSteeringAgreement]"},
	})
	p.Add(PHAEntry{
		Hazard:      "Driver unable to override autonomous control",
		Severity:    SeverityCatastrophic,
		Causes:      []string{"arbitration priority defect", "feature ignores pedal or steering-wheel input"},
		Mitigations: []string{"Achieve[DriverForwardAccelOverride]", "Achieve[DriverBackwardAccelOverride]", "Achieve[DriverSteeringOverride]"},
	})
	p.Add(PHAEntry{
		Hazard:      "Feature controls the vehicle in a direction of travel it was not designed for",
		Severity:    SeverityCritical,
		Causes:      []string{"missing direction check", "reverse gear not propagated"},
		Mitigations: []string{"Achieve[ForwardBlockAccelSteering]", "Achieve[BackwardBlockAccelSteering]"},
	})
	p.Add(PHAEntry{
		Hazard:      "Collision with stationary object in the vehicle path",
		Severity:    SeverityCatastrophic,
		Causes:      []string{"object detection false negative", "intermittent braking"},
		Mitigations: []string{"Collision Avoidance braking behaviour (functional requirement)"},
	})
	return p
}
