package temporal

import (
	"math/rand"
	"testing"
	"time"
)

// randomPastFormula builds a random past-time formula over a small variable
// vocabulary.  Subtrees are drawn from a shared pool with some probability,
// so generated formula sets overlap the way a real goal catalogue does and
// the program's hash-consing is actually exercised.
func randomPastFormula(r *rand.Rand, depth int, pool *[]Formula) Formula {
	if len(*pool) > 0 && r.Intn(4) == 0 {
		return (*pool)[r.Intn(len(*pool))]
	}
	vars := []string{"A", "B", "C", "N", "M"}
	var f Formula
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			f = Var(vars[r.Intn(3)])
		case 1:
			f = Compare(vars[3+r.Intn(2)], CompareOp(1+r.Intn(6)), Number(float64(r.Intn(5))))
		case 2:
			f = CompareVars("N", CompareOp(1+r.Intn(6)), "M")
		default:
			f = constFormula(r.Intn(2) == 0)
		}
	} else {
		sub := func() Formula { return randomPastFormula(r, depth-1, pool) }
		switch r.Intn(10) {
		case 0:
			f = Not(sub())
		case 1:
			f = And(sub(), sub())
		case 2:
			f = Or(sub(), sub(), sub())
		case 3:
			f = Implies(sub(), sub())
		case 4:
			f = Iff(sub(), sub())
		case 5:
			f = Prev(sub())
		case 6:
			f = Once(sub())
		case 7:
			f = Historically(sub())
		case 8:
			f = Became(sub())
		default:
			switch r.Intn(3) {
			case 0:
				f = PrevFor(sub(), time.Duration(1+r.Intn(4))*time.Millisecond)
			case 1:
				f = PrevWithin(sub(), time.Duration(1+r.Intn(4))*time.Millisecond)
			default:
				f = Initially(sub())
			}
		}
	}
	*pool = append(*pool, f)
	return f
}

func randomState(r *rand.Rand, schema *Schema) State {
	st := NewStateWith(schema)
	st.SetBool("A", r.Intn(2) == 0)
	st.SetBool("B", r.Intn(2) == 0)
	st.SetBool("C", r.Intn(2) == 0)
	st.SetNumber("N", float64(r.Intn(5)))
	st.SetNumber("M", float64(r.Intn(5)))
	return st
}

// TestProgramMatchesSteppers is the program's own differential test: a batch
// of overlapping random formulas compiled once into a shared program and once
// into independent Steppers must produce identical verdicts on every step of
// a random trace.
func TestProgramMatchesSteppers(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		schema := NewSchema()
		prog := NewProgram(time.Millisecond, schema)

		var pool []Formula
		var formulas []Formula
		var taps []Tap
		var steppers []*Stepper
		for i := 0; i < 8; i++ {
			f := randomPastFormula(r, 3, &pool)
			tap, err := prog.Add(f)
			if err != nil {
				t.Fatalf("seed %d: Add(%s): %v", seed, f, err)
			}
			s, err := CompileWithSchema(f, time.Millisecond, schema)
			if err != nil {
				t.Fatalf("seed %d: Compile(%s): %v", seed, f, err)
			}
			formulas = append(formulas, f)
			taps = append(taps, tap)
			steppers = append(steppers, s)
		}

		for step := 0; step < 60; step++ {
			st := randomState(r, schema)
			prog.Step(st)
			for i, s := range steppers {
				want := s.Step(st)
				if got := prog.Output(taps[i]); got != want {
					t.Fatalf("seed %d step %d: program output %v != stepper %v for %s",
						seed, step, got, want, formulas[i])
				}
			}
		}
	}
}

// TestProgramSharing checks that hash-consing actually shares: adding the
// same formula twice adds no nodes and returns the same tap, and overlapping
// formulas share their common atoms.
func TestProgramSharing(t *testing.T) {
	p := NewProgram(time.Millisecond, NewSchema())
	f := MustParse("(A & prev(B)) => N <= 2")
	t1 := p.MustAdd(f)
	before := p.Stats()
	t2 := p.MustAdd(MustParse("(A & prev(B)) => N <= 2"))
	after := p.Stats()
	if t1 != t2 {
		t.Errorf("identical formulas got different taps: %d vs %d", t1, t2)
	}
	if after.Nodes != before.Nodes {
		t.Errorf("re-adding an identical formula grew the program: %d -> %d nodes", before.Nodes, after.Nodes)
	}
	if after.Formulas != 2 {
		t.Errorf("Formulas = %d, want 2", after.Formulas)
	}

	// A third formula overlapping on atoms A and N<=2 shares them.
	p.MustAdd(MustParse("A | N <= 2"))
	s := p.Stats()
	if s.Atoms >= s.AtomRefs {
		t.Errorf("no atom sharing: %d unique atoms for %d references", s.Atoms, s.AtomRefs)
	}
	if s.Nodes >= s.NodeRefs {
		t.Errorf("no node sharing: %d unique nodes for %d references", s.Nodes, s.NodeRefs)
	}
}

// TestProgramResetReuse runs one program over two traces with different
// schemas — the per-worker reuse pattern — and checks the second run matches
// fresh steppers compiled against the second schema.
func TestProgramResetReuse(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f1 := MustParse("prevfor[3ms](A) => N <= 2")
	f2 := MustParse("once(B) & (A | N > M)")

	schemaA := NewSchema()
	prog := NewProgram(time.Millisecond, schemaA)
	t1 := prog.MustAdd(f1)
	t2 := prog.MustAdd(f2)
	for i := 0; i < 20; i++ {
		prog.Step(randomState(r, schemaA))
	}

	prog.Reset()
	if prog.Steps() != 0 {
		t.Fatalf("Steps() = %d after Reset", prog.Steps())
	}

	// Second run: a different schema with a different interning order, as a
	// new scenario's bus would present.
	schemaB := NewSchema()
	schemaB.Intern("M")
	schemaB.Intern("N")
	s1 := MustCompile(f1, time.Millisecond)
	s2 := MustCompile(f2, time.Millisecond)
	for i := 0; i < 40; i++ {
		st := randomState(r, schemaB)
		prog.Step(st)
		if got, want := prog.Output(t1), s1.Step(st); got != want {
			t.Fatalf("step %d: reused program output %v != fresh stepper %v for %s", i, got, want, f1)
		}
		if got, want := prog.Output(t2), s2.Step(st); got != want {
			t.Fatalf("step %d: reused program output %v != fresh stepper %v for %s", i, got, want, f2)
		}
	}
}

// TestProgramPredicatesNotShared pins the conservative treatment of opaque
// predicates: structural identity cannot be established for closures, so
// each occurrence evaluates independently.
func TestProgramPredicatesNotShared(t *testing.T) {
	trueCount, falseCount := 0, 0
	pt := Pred("P", []string{"A"}, func(State) bool { trueCount++; return true })
	pf := Pred("P", []string{"A"}, func(State) bool { falseCount++; return false })

	p := NewProgram(time.Millisecond, NewSchema())
	t1 := p.MustAdd(pt)
	t2 := p.MustAdd(pf)
	p.Step(NewState())
	if !p.Output(t1) || p.Output(t2) {
		t.Errorf("outputs = %v/%v, want true/false: identically named predicates must not be merged",
			p.Output(t1), p.Output(t2))
	}
	if trueCount != 1 || falseCount != 1 {
		t.Errorf("predicate calls = %d/%d, want 1/1", trueCount, falseCount)
	}
}

// TestProgramRejectsFutureTime mirrors the Stepper's compile-time check.
func TestProgramRejectsFutureTime(t *testing.T) {
	p := NewProgram(time.Millisecond, nil)
	if _, err := p.Add(Eventually(Var("A"))); err == nil {
		t.Error("future-time formula should be rejected")
	}
	if s := p.Stats(); s.Formulas != 0 {
		t.Errorf("rejected formula was registered: %+v", s)
	}
}
