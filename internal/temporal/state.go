package temporal

import (
	"math"
	"strings"
	"time"
)

// Registers is the slot-indexed register file backing a State: a dense
// []Value indexed by the slots of a Schema.  The thesis models the composite
// system as a set of named state variables whose values change from state to
// state; representing a snapshot as a register file instead of a
// map[string]Value makes copying a state a slice copy and reading a resolved
// variable an array load, which removes string hashing from the simulation
// and monitoring hot path entirely.
type Registers struct {
	schema *Schema
	slots  []Value
}

// State is a snapshot of all system state variables at one instant.  Each
// simulation step produces one State.  State is a reference type (a pointer
// to a slot-indexed register file): copies share the same registers, Set
// mutates in place, and the nil State is the absent snapshot (e.g. the last
// state of an empty trace).
//
// The name-keyed API (Get/Set/Bool/Number/...) resolves names through the
// state's Schema and remains the compatibility path; hot paths resolve a
// name to a slot once and use Slot/SetSlot.
type State = *Registers

// NewState returns an empty state snapshot with its own private Schema.
// States that participate in one scenario should share the scenario's schema
// via NewStateWith so that compiled monitors resolve their atoms once.
func NewState() State { return NewStateWith(nil) }

// NewStateWith returns an empty state backed by the given Schema (a fresh
// one when nil).  The state's register file is sized to the schema and grows
// as the schema interns further names.
func NewStateWith(schema *Schema) State {
	if schema == nil {
		schema = NewSchema()
	}
	return &Registers{schema: schema, slots: make([]Value, schema.Len())}
}

// Schema returns the symbol table this state resolves names against (nil
// for the nil State).
func (s *Registers) Schema() *Schema {
	if s == nil {
		return nil
	}
	return s.schema
}

// Clone returns an independent copy of the state sharing the same Schema.
// Cloning the nil State yields a fresh empty state, as cloning the nil
// map-backed state did.
func (s *Registers) Clone() State {
	if s == nil {
		return NewState()
	}
	c := make([]Value, len(s.slots))
	copy(c, s.slots)
	return &Registers{schema: s.schema, slots: c}
}

// CopyFrom overwrites this state's registers with src's: a register-file
// copy, every slot of src included.  Both states must share the same Schema.
// It is what makes a bus commit a slice copy instead of a map merge; slots
// beyond src's written range keep their previous value.
func (s *Registers) CopyFrom(src State) {
	if src == nil {
		return
	}
	n := len(src.slots)
	if len(s.slots) < n {
		if cap(s.slots) < n {
			grown := make([]Value, n)
			copy(grown, s.slots)
			s.slots = grown
		} else {
			s.slots = s.slots[:n]
		}
	}
	copy(s.slots, src.slots)
}

// Slot returns the value stored at slot i, resolving out-of-range slots (a
// schema that grew after this state was sized) and the nil State to the
// invalid Value.
func (s *Registers) Slot(i int) Value {
	if s == nil || i < 0 || i >= len(s.slots) {
		return Value{}
	}
	return s.slots[i]
}

// SetSlot stores a value at slot i, growing the register file to the schema
// width when the schema has interned names since the state was sized.
func (s *Registers) SetSlot(i int, v Value) {
	if i >= len(s.slots) {
		if n := s.schema.Len(); n > len(s.slots) {
			grown := make([]Value, n)
			copy(grown, s.slots)
			s.slots = grown
		}
	}
	s.slots[i] = v
}

// Get returns the value of a variable.  Missing variables — and every
// variable of the nil State — return an invalid Value, which evaluates as
// false / NaN, matching the thesis' convention that unknown state cannot be
// used to demonstrate goal satisfaction.
func (s *Registers) Get(name string) Value {
	if s == nil {
		return Value{}
	}
	if i, ok := s.schema.Lookup(name); ok {
		return s.Slot(i)
	}
	return Value{}
}

// Has reports whether the variable has a value in this state.
func (s *Registers) Has(name string) bool { return s.Get(name).IsValid() }

// Set stores a value for a variable and returns the state for chaining.
func (s *Registers) Set(name string, v Value) State {
	s.SetSlot(s.schema.Intern(name), v)
	return s
}

// SetBool stores a boolean variable.
func (s *Registers) SetBool(name string, b bool) State { return s.Set(name, Bool(b)) }

// SetNumber stores a numeric variable.
func (s *Registers) SetNumber(name string, f float64) State { return s.Set(name, Number(f)) }

// SetString stores a string variable.
func (s *Registers) SetString(name string, str string) State { return s.Set(name, String(str)) }

// Bool reads a boolean variable (false when absent).
func (s *Registers) Bool(name string) bool { return s.Get(name).AsBool() }

// Number reads a numeric variable (NaN when absent).
func (s *Registers) Number(name string) float64 { return s.Get(name).AsNumber() }

// StringVal reads a string variable ("" when absent).
func (s *Registers) StringVal(name string) string { return s.Get(name).AsString() }

// Names returns the sorted variable names present in the state.  The order
// is derived from the schema's cached name ordering, so repeated renders do
// not re-sort.
func (s *Registers) Names() []string {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.slots))
	for _, i := range s.schema.sortedSlots() {
		if i < len(s.slots) && s.slots[i].IsValid() {
			names = append(names, s.schema.Name(i))
		}
	}
	return names
}

// String renders the state as "var=value" pairs in sorted order.
func (s *Registers) String() string {
	if s == nil {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, i := range s.schema.sortedSlots() {
		if i >= len(s.slots) || !s.slots[i].IsValid() {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(s.schema.Name(i))
		b.WriteByte('=')
		b.WriteString(s.slots[i].String())
	}
	b.WriteByte('}')
	return b.String()
}

// Trace is a finite, fixed-period sequence of states.  Index 0 is the
// initial state S0 referenced by the Initially operator.
type Trace struct {
	// Period is the sampling period between consecutive states.  The
	// thesis' vehicle evaluation uses a 1 ms state period.
	Period time.Duration

	states []State
}

// NewTrace returns an empty trace with the given sampling period.  A zero
// period defaults to one millisecond, the state period used in the thesis.
func NewTrace(period time.Duration) *Trace {
	return NewTraceWithCapacity(period, 0)
}

// NewTraceWithCapacity returns an empty trace preallocated for n states, for
// recorders that know the run length up front (a 20 s run at the thesis' 1 ms
// period appends 20 000 states; growing the backing array incrementally costs
// over a dozen reallocations per run).
func NewTraceWithCapacity(period time.Duration, n int) *Trace {
	if period <= 0 {
		period = time.Millisecond
	}
	t := &Trace{Period: period}
	if n > 0 {
		t.states = make([]State, 0, n)
	}
	return t
}

// Append adds a state snapshot to the end of the trace.  The state is stored
// by reference; callers that keep mutating a working state must Clone first.
func (t *Trace) Append(s State) { t.states = append(t.states, s) }

// AppendClone adds an independent copy of the state to the trace.
func (t *Trace) AppendClone(s State) { t.states = append(t.states, s.Clone()) }

// Len returns the number of states in the trace.
func (t *Trace) Len() int { return len(t.states) }

// At returns the state at index i.  It panics when i is out of range, as an
// out-of-range access indicates a programming error in an evaluator.
func (t *Trace) At(i int) State { return t.states[i] }

// Last returns the most recent state, or nil for an empty trace.
func (t *Trace) Last() State {
	if len(t.states) == 0 {
		return nil
	}
	return t.states[len(t.states)-1]
}

// Time returns the simulation time of state index i.
func (t *Trace) Time(i int) time.Duration { return time.Duration(i) * t.Period }

// StepsFor converts a duration into a whole number of trace steps, rounding
// up so that bounded-past operators never under-approximate their window.
func (t *Trace) StepsFor(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	p := t.Period
	if p <= 0 {
		p = time.Millisecond
	}
	steps := int((d + p - 1) / p)
	if steps < 1 {
		steps = 1
	}
	return steps
}

// Slice returns a shallow sub-trace covering states [from, to).
func (t *Trace) Slice(from, to int) *Trace {
	if from < 0 {
		from = 0
	}
	if to > len(t.states) {
		to = len(t.states)
	}
	if from > to {
		from = to
	}
	return &Trace{Period: t.Period, states: t.states[from:to]}
}

// Series extracts the numeric time series of one variable, useful for
// regenerating the thesis' scenario figures.  The name is resolved to a slot
// once per schema, so extraction over a single-run trace never re-hashes it.
func (t *Trace) Series(name string) []float64 {
	out := make([]float64, len(t.states))
	var (
		schema *Schema
		slot   int
		ok     bool
	)
	for i, s := range t.states {
		if sc := s.Schema(); sc != schema {
			schema = sc
			if sc != nil {
				slot, ok = sc.Lookup(name)
			} else { // a nil State in the trace: every variable is absent
				ok = false
			}
		}
		if ok {
			out[i] = s.Slot(slot).AsNumber()
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// BoolSeries extracts the boolean time series of one variable.
func (t *Trace) BoolSeries(name string) []bool {
	out := make([]bool, len(t.states))
	var (
		schema *Schema
		slot   int
		ok     bool
	)
	for i, s := range t.states {
		if sc := s.Schema(); sc != schema {
			schema = sc
			if sc != nil {
				slot, ok = sc.Lookup(name)
			} else {
				ok = false
			}
		}
		out[i] = ok && s.Slot(slot).AsBool()
	}
	return out
}
