package temporal

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// State is a snapshot of all system state variables at one instant.  The
// thesis models the composite system as a set of named state variables whose
// values change from state to state; each simulation step produces one State.
type State map[string]Value

// NewState returns an empty state snapshot.
func NewState() State { return make(State) }

// Clone returns an independent copy of the state.
func (s State) Clone() State {
	c := make(State, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Get returns the value of a variable.  Missing variables return an invalid
// Value, which evaluates as false / NaN, matching the thesis' convention that
// unknown state cannot be used to demonstrate goal satisfaction.
func (s State) Get(name string) Value { return s[name] }

// Has reports whether the variable has a value in this state.
func (s State) Has(name string) bool {
	_, ok := s[name]
	return ok
}

// Set stores a value for a variable and returns the state for chaining.
func (s State) Set(name string, v Value) State {
	s[name] = v
	return s
}

// SetBool stores a boolean variable.
func (s State) SetBool(name string, b bool) State { return s.Set(name, Bool(b)) }

// SetNumber stores a numeric variable.
func (s State) SetNumber(name string, f float64) State { return s.Set(name, Number(f)) }

// SetString stores a string variable.
func (s State) SetString(name string, str string) State { return s.Set(name, String(str)) }

// Bool reads a boolean variable (false when absent).
func (s State) Bool(name string) bool { return s.Get(name).AsBool() }

// Number reads a numeric variable (NaN when absent).
func (s State) Number(name string) float64 { return s.Get(name).AsNumber() }

// StringVal reads a string variable ("" when absent).
func (s State) StringVal(name string) string { return s.Get(name).AsString() }

// Names returns the sorted variable names present in the state.
func (s State) Names() []string {
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// String renders the state as "var=value" pairs in sorted order.
func (s State) String() string {
	parts := make([]string, 0, len(s))
	for _, n := range s.Names() {
		parts = append(parts, fmt.Sprintf("%s=%s", n, s[n]))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Trace is a finite, fixed-period sequence of states.  Index 0 is the
// initial state S0 referenced by the Initially operator.
type Trace struct {
	// Period is the sampling period between consecutive states.  The
	// thesis' vehicle evaluation uses a 1 ms state period.
	Period time.Duration

	states []State
}

// NewTrace returns an empty trace with the given sampling period.  A zero
// period defaults to one millisecond, the state period used in the thesis.
func NewTrace(period time.Duration) *Trace {
	return NewTraceWithCapacity(period, 0)
}

// NewTraceWithCapacity returns an empty trace preallocated for n states, for
// recorders that know the run length up front (a 20 s run at the thesis' 1 ms
// period appends 20 000 states; growing the backing array incrementally costs
// over a dozen reallocations per run).
func NewTraceWithCapacity(period time.Duration, n int) *Trace {
	if period <= 0 {
		period = time.Millisecond
	}
	t := &Trace{Period: period}
	if n > 0 {
		t.states = make([]State, 0, n)
	}
	return t
}

// Append adds a state snapshot to the end of the trace.  The state is stored
// by reference; callers that keep mutating a working state must Clone first.
func (t *Trace) Append(s State) { t.states = append(t.states, s) }

// AppendClone adds an independent copy of the state to the trace.
func (t *Trace) AppendClone(s State) { t.states = append(t.states, s.Clone()) }

// Len returns the number of states in the trace.
func (t *Trace) Len() int { return len(t.states) }

// At returns the state at index i.  It panics when i is out of range, as an
// out-of-range access indicates a programming error in an evaluator.
func (t *Trace) At(i int) State { return t.states[i] }

// Last returns the most recent state, or nil for an empty trace.
func (t *Trace) Last() State {
	if len(t.states) == 0 {
		return nil
	}
	return t.states[len(t.states)-1]
}

// Time returns the simulation time of state index i.
func (t *Trace) Time(i int) time.Duration { return time.Duration(i) * t.Period }

// StepsFor converts a duration into a whole number of trace steps, rounding
// up so that bounded-past operators never under-approximate their window.
func (t *Trace) StepsFor(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	p := t.Period
	if p <= 0 {
		p = time.Millisecond
	}
	steps := int((d + p - 1) / p)
	if steps < 1 {
		steps = 1
	}
	return steps
}

// Slice returns a shallow sub-trace covering states [from, to).
func (t *Trace) Slice(from, to int) *Trace {
	if from < 0 {
		from = 0
	}
	if to > len(t.states) {
		to = len(t.states)
	}
	if from > to {
		from = to
	}
	return &Trace{Period: t.Period, states: t.states[from:to]}
}

// Series extracts the numeric time series of one variable, useful for
// regenerating the thesis' scenario figures.
func (t *Trace) Series(name string) []float64 {
	out := make([]float64, len(t.states))
	for i, s := range t.states {
		out[i] = s.Number(name)
	}
	return out
}

// BoolSeries extracts the boolean time series of one variable.
func (t *Trace) BoolSeries(name string) []bool {
	out := make([]bool, len(t.states))
	for i, s := range t.states {
		out[i] = s.Bool(name)
	}
	return out
}
