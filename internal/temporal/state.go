package temporal

import (
	"math"
	"strings"
	"time"
)

// Registers is the slot-indexed register file backing a State, stored as
// typed struct-of-arrays planes indexed by the slots of a Schema: a kind
// plane tagging each slot's dynamic type, a []float64 plane for numbers, a
// packed bit plane for booleans and a small-int plane holding per-schema
// interned enumeration-string ids.  The thesis models the composite system as
// a set of named state variables whose values change from state to state;
// the SoA planes make copying a state a handful of pointer-free memmoves
// (~13 bytes per slot instead of a 40-byte Value struct, and no GC write
// barriers, since no plane holds a pointer) and reading a resolved variable
// a typed array load, which removes both string hashing and Value
// construction from the simulation and monitoring hot path entirely.
//
// The name-keyed Value API (Get/Set/Slot/SetSlot) is preserved on top of the
// planes; hot paths use the typed plane accessors (SlotNumber/SlotBool/
// SlotStringID and the SetSlot* family) directly.
type Registers struct {
	schema *Schema
	kinds  []uint8   // Kind per slot (KindInvalid = no value)
	nums   []float64 // number plane
	bits   []uint64  // packed bool plane, 64 slots per word
	strs   []int32   // enumeration plane: per-schema interned string ids
	lanes  int       // lane width; 0 and 1 both mean scalar layout
}

// bitWords returns the number of bit-plane words covering n slots.
func bitWords(n int) int { return (n + 63) / 64 }

// State is a snapshot of all system state variables at one instant.  Each
// simulation step produces one State.  State is a reference type (a pointer
// to a slot-indexed register file): copies share the same registers, Set
// mutates in place, and the nil State is the absent snapshot (e.g. the last
// state of an empty trace).
//
// The name-keyed API (Get/Set/Bool/Number/...) resolves names through the
// state's Schema and remains the compatibility path; hot paths resolve a
// name to a slot once and use Slot/SetSlot.
type State = *Registers

// NewState returns an empty state snapshot with its own private Schema.
// States that participate in one scenario should share the scenario's schema
// via NewStateWith so that compiled monitors resolve their atoms once.
func NewState() State { return NewStateWith(nil) }

// NewStateWith returns an empty state backed by the given Schema (a fresh
// one when nil).  The state's register file is sized to the schema and grows
// as the schema interns further names.
func NewStateWith(schema *Schema) State {
	return NewStateWithLanes(schema, 1)
}

// NewStateWithLanes returns an empty state whose register file is lanes wide:
// each schema slot owns a contiguous group of lanes values per plane, stored
// slot-major (physical index = slot*lanes + lane).  With lanes == 1 the layout
// and every accessor are identical to the scalar state.  Lane-batched
// execution steps N dynamics variants in lockstep over one such state; each
// variant reads and writes its own lane of every slot's group.
func NewStateWithLanes(schema *Schema, lanes int) State {
	if schema == nil {
		schema = NewSchema()
	}
	if lanes < 1 {
		lanes = 1
	}
	n := schema.Len() * lanes
	return &Registers{
		schema: schema,
		kinds:  make([]uint8, n),
		nums:   make([]float64, n),
		bits:   make([]uint64, bitWords(n)),
		strs:   make([]int32, n),
		lanes:  lanes,
	}
}

// Lanes returns the lane width of the register file (1 for scalar states and
// the nil State).
func (s *Registers) Lanes() int {
	if s == nil || s.lanes < 1 {
		return 1
	}
	return s.lanes
}

// laneIndex maps a logical (slot, lane) pair onto the physical slot-major
// register index.
func (s *Registers) laneIndex(slot, lane int) int { return slot*s.Lanes() + lane }

// SlotNumberLane reads lane lane of slot i with SlotNumber semantics.
func (s *Registers) SlotNumberLane(i, lane int) float64 {
	return s.SlotNumber(s.laneIndex(i, lane))
}

// SetSlotNumberLane stores a number at lane lane of slot i.
func (s *Registers) SetSlotNumberLane(i, lane int, f float64) {
	s.SetSlotNumber(s.laneIndex(i, lane), f)
}

// SlotBoolLane reads lane lane of slot i with SlotBool semantics.
func (s *Registers) SlotBoolLane(i, lane int) bool {
	return s.SlotBool(s.laneIndex(i, lane))
}

// SetSlotBoolLane stores a boolean at lane lane of slot i.
func (s *Registers) SetSlotBoolLane(i, lane int, b bool) {
	s.SetSlotBool(s.laneIndex(i, lane), b)
}

// SlotStringIDLane reads the interned enumeration id at lane lane of slot i
// (-1 when that lane does not hold a string).
func (s *Registers) SlotStringIDLane(i, lane int) int32 {
	return s.SlotStringID(s.laneIndex(i, lane))
}

// SetSlotStringLane stores an enumeration string at lane lane of slot i,
// interning it in the shared schema string table: lanes share one interning
// space, so equal strings in different lanes compare as equal small ints.
func (s *Registers) SetSlotStringLane(i, lane int, str string) {
	s.SetSlotString(s.laneIndex(i, lane), str)
}

// SetSlotStringIDLane stores an already-interned enumeration id at lane lane
// of slot i.
func (s *Registers) SetSlotStringIDLane(i, lane int, id int32) {
	s.SetSlotStringID(s.laneIndex(i, lane), id)
}

// Schema returns the symbol table this state resolves names against (nil
// for the nil State).
func (s *Registers) Schema() *Schema {
	if s == nil {
		return nil
	}
	return s.schema
}

// Clone returns an independent copy of the state sharing the same Schema.
// Cloning the nil State yields a fresh empty state, as cloning the nil
// map-backed state did.
func (s *Registers) Clone() State {
	if s == nil {
		return NewState()
	}
	c := &Registers{
		schema: s.schema,
		kinds:  make([]uint8, len(s.kinds)),
		nums:   make([]float64, len(s.nums)),
		bits:   make([]uint64, len(s.bits)),
		strs:   make([]int32, len(s.strs)),
		lanes:  s.lanes,
	}
	copy(c.kinds, s.kinds)
	copy(c.nums, s.nums)
	copy(c.bits, s.bits)
	copy(c.strs, s.strs)
	return c
}

// grow widens the register file to at least the schema width, for states
// sized before the schema interned further names.
//
//lint:allocok schema-growth slow path; runs only when a name was interned after the state was sized, never in steady state
func (s *Registers) grow() {
	n := s.schema.Len() * s.Lanes()
	if n <= len(s.kinds) {
		return
	}
	kinds := make([]uint8, n)
	copy(kinds, s.kinds)
	s.kinds = kinds
	nums := make([]float64, n)
	copy(nums, s.nums)
	s.nums = nums
	strs := make([]int32, n)
	copy(strs, s.strs)
	s.strs = strs
	if w := bitWords(n); w > len(s.bits) {
		bits := make([]uint64, w)
		copy(bits, s.bits)
		s.bits = bits
	}
}

// CopyFrom overwrites this state's registers with src's: a plane-by-plane
// memmove, every slot of src included.  Both states must share the same
// Schema.  It is what makes a bus commit a few pointer-free slice copies
// instead of a map merge; slots beyond src's written range keep their
// previous value.
func (s *Registers) CopyFrom(src State) {
	if src == nil {
		return
	}
	n := len(src.kinds)
	if len(s.kinds) < n {
		s.grow()
	}
	copy(s.kinds[:n], src.kinds)
	copy(s.nums[:n], src.nums)
	copy(s.strs[:n], src.strs)
	// The bit plane is copied at word granularity; the last word may be
	// shared with slots beyond src's range, whose bits must survive.
	w := n >> 6
	copy(s.bits[:w], src.bits[:w])
	if rem := uint(n) & 63; rem != 0 {
		mask := (uint64(1) << rem) - 1
		s.bits[w] = (s.bits[w] &^ mask) | (src.bits[w] & mask)
	}
}

// Reset clears every slot to the invalid value while keeping the schema and
// the plane capacity, so a bus (and the whole simulation arena built on it)
// can be rewound for the next run without re-interning a name or growing a
// plane.  Only the kind plane is cleared: stale numbers, bits and string ids
// are unreachable behind a KindInvalid tag.
func (s *Registers) Reset() {
	for i := range s.kinds {
		s.kinds[i] = 0
	}
}

// Slot returns the value stored at slot i, resolving out-of-range slots (a
// schema that grew after this state was sized) and the nil State to the
// invalid Value.
func (s *Registers) Slot(i int) Value {
	if s == nil || i < 0 || i >= len(s.kinds) {
		return Value{}
	}
	switch Kind(s.kinds[i]) {
	case KindBool:
		return Value{kind: KindBool, b: s.bits[i>>6]&(1<<(uint(i)&63)) != 0}
	case KindNumber:
		return Value{kind: KindNumber, f: s.nums[i]}
	case KindString:
		return Value{kind: KindString, s: s.schema.EnumString(s.strs[i])}
	default:
		return Value{}
	}
}

// SlotKind returns the dynamic kind of slot i (KindInvalid for absent
// values, out-of-range slots and the nil State).
func (s *Registers) SlotKind(i int) Kind {
	if s == nil || i < 0 || i >= len(s.kinds) {
		return KindInvalid
	}
	return Kind(s.kinds[i])
}

// SlotNumber reads slot i with Value.AsNumber semantics straight from the
// planes: numbers load from the float plane, booleans map to 0/1, and
// strings, absent values, out-of-range slots and the nil State are NaN.
func (s *Registers) SlotNumber(i int) float64 {
	if s == nil || i < 0 || i >= len(s.kinds) {
		return math.NaN()
	}
	switch Kind(s.kinds[i]) {
	case KindNumber:
		return s.nums[i]
	case KindBool:
		if s.bits[i>>6]&(1<<(uint(i)&63)) != 0 {
			return 1
		}
		return 0
	default:
		return math.NaN()
	}
}

// SlotNumberOK is SlotNumber paired with Value.IsValid: the second result is
// false exactly when the slot holds no value, so evaluators can preserve the
// unknown-state-is-false convention without constructing a Value.
func (s *Registers) SlotNumberOK(i int) (float64, bool) {
	if s == nil || i < 0 || i >= len(s.kinds) {
		return math.NaN(), false
	}
	switch Kind(s.kinds[i]) {
	case KindNumber:
		return s.nums[i], true
	case KindBool:
		if s.bits[i>>6]&(1<<(uint(i)&63)) != 0 {
			return 1, true
		}
		return 0, true
	case KindString:
		return math.NaN(), true
	default:
		return math.NaN(), false
	}
}

// SlotBool reads slot i with Value.AsBool semantics straight from the
// planes: booleans load from the bit plane, numbers are truthy when
// non-zero, strings when non-empty, and absent values are false.
func (s *Registers) SlotBool(i int) bool {
	if s == nil || i < 0 || i >= len(s.kinds) {
		return false
	}
	switch Kind(s.kinds[i]) {
	case KindBool:
		return s.bits[i>>6]&(1<<(uint(i)&63)) != 0
	case KindNumber:
		return s.nums[i] != 0
	case KindString:
		return s.strs[i] != emptyEnumID
	default:
		return false
	}
}

// SlotStringID reads the enumeration plane: the schema-interned id of slot
// i's string value, or -1 when the slot does not hold a string.  Together
// with Schema.InternString it lets equality against an enumeration constant
// compare two small ints instead of two strings.
func (s *Registers) SlotStringID(i int) int32 {
	if s == nil || i < 0 || i >= len(s.kinds) || Kind(s.kinds[i]) != KindString {
		return -1
	}
	return s.strs[i]
}

// SlotString reads slot i with Value.AsString semantics: interned strings
// load from the enumeration plane, other kinds are formatted, and absent
// values are "".
func (s *Registers) SlotString(i int) string {
	if s == nil || i < 0 || i >= len(s.kinds) {
		return ""
	}
	if Kind(s.kinds[i]) == KindString {
		return s.schema.EnumString(s.strs[i])
	}
	return s.Slot(i).AsString()
}

// SetSlot stores a value at slot i, growing the register file to the schema
// width when the schema has interned names since the state was sized.
func (s *Registers) SetSlot(i int, v Value) {
	switch v.kind {
	case KindBool:
		s.SetSlotBool(i, v.b)
	case KindNumber:
		s.SetSlotNumber(i, v.f)
	case KindString:
		s.SetSlotString(i, v.s)
	default:
		if i >= len(s.kinds) {
			s.grow()
		}
		s.kinds[i] = uint8(KindInvalid)
	}
}

// SetSlotNumber stores a number at slot i on the float plane.
func (s *Registers) SetSlotNumber(i int, f float64) {
	if i >= len(s.kinds) {
		s.grow()
	}
	s.kinds[i] = uint8(KindNumber)
	s.nums[i] = f
}

// SetSlotBool stores a boolean at slot i on the packed bit plane.
func (s *Registers) SetSlotBool(i int, b bool) {
	if i >= len(s.kinds) {
		s.grow()
	}
	s.kinds[i] = uint8(KindBool)
	mask := uint64(1) << (uint(i) & 63)
	if b {
		s.bits[i>>6] |= mask
	} else {
		s.bits[i>>6] &^= mask
	}
}

// SetSlotString stores an enumeration string at slot i, interning it in the
// schema's string table (a map read for every string already seen).
func (s *Registers) SetSlotString(i int, str string) {
	if i >= len(s.kinds) {
		s.grow()
	}
	s.kinds[i] = uint8(KindString)
	s.strs[i] = s.schema.InternString(str)
}

// SetSlotStringID stores an already-interned enumeration id at slot i; the
// id must come from this state's Schema.
func (s *Registers) SetSlotStringID(i int, id int32) {
	if i >= len(s.kinds) {
		s.grow()
	}
	s.kinds[i] = uint8(KindString)
	s.strs[i] = id
}

// Get returns the value of a variable.  Missing variables — and every
// variable of the nil State — return an invalid Value, which evaluates as
// false / NaN, matching the thesis' convention that unknown state cannot be
// used to demonstrate goal satisfaction.
func (s *Registers) Get(name string) Value {
	if s == nil {
		return Value{}
	}
	if i, ok := s.schema.Lookup(name); ok {
		return s.Slot(i)
	}
	return Value{}
}

// Has reports whether the variable has a value in this state.
func (s *Registers) Has(name string) bool { return s.Get(name).IsValid() }

// Set stores a value for a variable and returns the state for chaining.
func (s *Registers) Set(name string, v Value) State {
	s.SetSlot(s.schema.Intern(name), v)
	return s
}

// SetBool stores a boolean variable.
func (s *Registers) SetBool(name string, b bool) State {
	s.SetSlotBool(s.schema.Intern(name), b)
	return s
}

// SetNumber stores a numeric variable.
func (s *Registers) SetNumber(name string, f float64) State {
	s.SetSlotNumber(s.schema.Intern(name), f)
	return s
}

// SetString stores a string variable.
func (s *Registers) SetString(name string, str string) State {
	s.SetSlotString(s.schema.Intern(name), str)
	return s
}

// Bool reads a boolean variable (false when absent).
func (s *Registers) Bool(name string) bool { return s.Get(name).AsBool() }

// Number reads a numeric variable (NaN when absent).
func (s *Registers) Number(name string) float64 { return s.Get(name).AsNumber() }

// StringVal reads a string variable ("" when absent).
func (s *Registers) StringVal(name string) string { return s.Get(name).AsString() }

// Names returns the sorted variable names present in the state.  The order
// is derived from the schema's cached name ordering, so repeated renders do
// not re-sort.
func (s *Registers) Names() []string {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.kinds))
	for _, i := range s.schema.sortedSlots() {
		if i < len(s.kinds) && Kind(s.kinds[i]) != KindInvalid {
			names = append(names, s.schema.Name(i))
		}
	}
	return names
}

// String renders the state as "var=value" pairs in sorted order.
func (s *Registers) String() string {
	if s == nil {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, i := range s.schema.sortedSlots() {
		if i >= len(s.kinds) || Kind(s.kinds[i]) == KindInvalid {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(s.schema.Name(i))
		b.WriteByte('=')
		b.WriteString(s.Slot(i).String())
	}
	b.WriteByte('}')
	return b.String()
}

// Trace is a finite, fixed-period sequence of states.  Index 0 is the
// initial state S0 referenced by the Initially operator.
type Trace struct {
	// Period is the sampling period between consecutive states.  The
	// thesis' vehicle evaluation uses a 1 ms state period.
	Period time.Duration

	states []State
}

// NewTrace returns an empty trace with the given sampling period.  A zero
// period defaults to one millisecond, the state period used in the thesis.
func NewTrace(period time.Duration) *Trace {
	return NewTraceWithCapacity(period, 0)
}

// NewTraceWithCapacity returns an empty trace preallocated for n states, for
// recorders that know the run length up front (a 20 s run at the thesis' 1 ms
// period appends 20 000 states; growing the backing array incrementally costs
// over a dozen reallocations per run).
func NewTraceWithCapacity(period time.Duration, n int) *Trace {
	if period <= 0 {
		period = time.Millisecond
	}
	t := &Trace{Period: period}
	if n > 0 {
		t.states = make([]State, 0, n)
	}
	return t
}

// Append adds a state snapshot to the end of the trace.  The state is stored
// by reference; callers that keep mutating a working state must Clone first.
func (t *Trace) Append(s State) { t.states = append(t.states, s) }

// AppendClone adds an independent copy of the state to the trace.
func (t *Trace) AppendClone(s State) { t.states = append(t.states, s.Clone()) }

// Len returns the number of states in the trace.
func (t *Trace) Len() int { return len(t.states) }

// At returns the state at index i.  It panics when i is out of range, as an
// out-of-range access indicates a programming error in an evaluator.
func (t *Trace) At(i int) State { return t.states[i] }

// Last returns the most recent state, or nil for an empty trace.
func (t *Trace) Last() State {
	if len(t.states) == 0 {
		return nil
	}
	return t.states[len(t.states)-1]
}

// Time returns the simulation time of state index i.
func (t *Trace) Time(i int) time.Duration { return time.Duration(i) * t.Period }

// StepsFor converts a duration into a whole number of trace steps, rounding
// up so that bounded-past operators never under-approximate their window.
func (t *Trace) StepsFor(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	p := t.Period
	if p <= 0 {
		p = time.Millisecond
	}
	steps := int((d + p - 1) / p)
	if steps < 1 {
		steps = 1
	}
	return steps
}

// Slice returns a shallow sub-trace covering states [from, to).
func (t *Trace) Slice(from, to int) *Trace {
	if from < 0 {
		from = 0
	}
	if to > len(t.states) {
		to = len(t.states)
	}
	if from > to {
		from = to
	}
	return &Trace{Period: t.Period, states: t.states[from:to]}
}

// Series extracts the numeric time series of one variable, useful for
// regenerating the thesis' scenario figures.  The name is resolved to a slot
// once per schema, so extraction over a single-run trace never re-hashes it.
func (t *Trace) Series(name string) []float64 {
	out := make([]float64, len(t.states))
	var (
		schema *Schema
		slot   int
		ok     bool
	)
	for i, s := range t.states {
		if sc := s.Schema(); sc != schema {
			schema = sc
			if sc != nil {
				slot, ok = sc.Lookup(name)
			} else { // a nil State in the trace: every variable is absent
				ok = false
			}
		}
		if ok {
			out[i] = s.SlotNumber(slot)
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// BoolSeries extracts the boolean time series of one variable.
func (t *Trace) BoolSeries(name string) []bool {
	out := make([]bool, len(t.states))
	var (
		schema *Schema
		slot   int
		ok     bool
	)
	for i, s := range t.states {
		if sc := s.Schema(); sc != schema {
			schema = sc
			if sc != nil {
				slot, ok = sc.Lookup(name)
			} else {
				ok = false
			}
		}
		out[i] = ok && s.SlotBool(slot)
	}
	return out
}
