package temporal

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Formula is a temporal-logic formula over discrete-time traces of system
// state.  Eval evaluates the formula at state index i of a trace; Vars
// returns the state variables the formula references.
//
// The operator set follows Figure 2.5 of the thesis:
//
//	¬P, P∧Q, P∨Q, P→Q, P⇔Q      propositional connectives
//	l P                          true in previous state (Prev)
//	⧫ P                          true in some previous state (Once)
//	▣ P                          true in all previous states (Historically)
//	@P  =  P ∧ l¬P               became true in current state (Became)
//	ln<T P                       true for duration T up to the previous state (PrevFor)
//	l<T P                        true at least once within duration T before now (PrevWithin)
//	S0 ⊨ P                       true in the initial state (Initially)
//	m P, ♦P, qP                  next / eventually / always (future time)
type Formula interface {
	// Eval evaluates the formula at index i of trace tr.
	Eval(tr *Trace, i int) bool
	// Vars returns the sorted, de-duplicated state variables referenced.
	Vars() []string
	// String renders the formula in the thesis' ASCII notation.
	String() string
}

// CompareOp is a comparison operator used by atomic formulas.
type CompareOp int

// Comparison operators.
const (
	OpEq CompareOp = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the comparison operator.
func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

func compareNumbers(a, b float64, op CompareOp) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	default:
		return false
	}
}

func compareValues(a, b Value, op CompareOp) bool {
	switch op {
	case OpEq:
		return a.Equal(b)
	case OpNe:
		return !a.Equal(b)
	default:
		return compareNumbers(a.AsNumber(), b.AsNumber(), op)
	}
}

// mergeVars merges and de-duplicates the variable sets of sub-formulas.
func mergeVars(fs ...Formula) []string {
	seen := make(map[string]struct{})
	for _, f := range fs {
		if f == nil {
			continue
		}
		for _, v := range f.Vars() {
			seen[v] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Atomic formulas
// ---------------------------------------------------------------------------

// constFormula is the constant true/false formula.
type constFormula bool

// True is the constant true formula.
var True Formula = constFormula(true)

// False is the constant false formula.
var False Formula = constFormula(false)

func (c constFormula) Eval(*Trace, int) bool { return bool(c) }
func (c constFormula) Vars() []string        { return nil }
func (c constFormula) String() string {
	if c {
		return "true"
	}
	return "false"
}

// varFormula is a boolean state-variable atom, e.g. "DoorClosed".
type varFormula struct{ name string }

// Var returns an atom that is true when the named variable is truthy.
func Var(name string) Formula { return varFormula{name: name} }

func (v varFormula) Eval(tr *Trace, i int) bool { return tr.At(i).Bool(v.name) }
func (v varFormula) Vars() []string             { return []string{v.name} }
func (v varFormula) String() string             { return v.name }

// compareFormula compares a state variable with a constant value.
type compareFormula struct {
	name string
	op   CompareOp
	val  Value
}

// Compare returns an atom comparing the named variable with a constant.
func Compare(name string, op CompareOp, val Value) Formula {
	return compareFormula{name: name, op: op, val: val}
}

// Eq returns the atom "name == val".
func Eq(name string, val Value) Formula { return Compare(name, OpEq, val) }

// Ne returns the atom "name != val".
func Ne(name string, val Value) Formula { return Compare(name, OpNe, val) }

// Lt returns the atom "name < x".
func Lt(name string, x float64) Formula { return Compare(name, OpLt, Number(x)) }

// Le returns the atom "name <= x".
func Le(name string, x float64) Formula { return Compare(name, OpLe, Number(x)) }

// Gt returns the atom "name > x".
func Gt(name string, x float64) Formula { return Compare(name, OpGt, Number(x)) }

// Ge returns the atom "name >= x".
func Ge(name string, x float64) Formula { return Compare(name, OpGe, Number(x)) }

func (c compareFormula) Eval(tr *Trace, i int) bool {
	v := tr.At(i).Get(c.name)
	if !v.IsValid() {
		return false
	}
	return compareValues(v, c.val, c.op)
}
func (c compareFormula) Vars() []string { return []string{c.name} }
func (c compareFormula) String() string {
	return fmt.Sprintf("%s %s %s", c.name, c.op, c.val)
}

// compareVarsFormula compares two state variables.
type compareVarsFormula struct {
	left  string
	op    CompareOp
	right string
}

// CompareVars returns an atom comparing two state variables.
func CompareVars(left string, op CompareOp, right string) Formula {
	return compareVarsFormula{left: left, op: op, right: right}
}

func (c compareVarsFormula) Eval(tr *Trace, i int) bool {
	s := tr.At(i)
	lv, rv := s.Get(c.left), s.Get(c.right)
	if !lv.IsValid() || !rv.IsValid() {
		return false
	}
	return compareValues(lv, rv, c.op)
}
func (c compareVarsFormula) Vars() []string {
	if c.left == c.right {
		return []string{c.left}
	}
	vs := []string{c.left, c.right}
	sort.Strings(vs)
	return vs
}
func (c compareVarsFormula) String() string {
	return fmt.Sprintf("%s %s %s", c.left, c.op, c.right)
}

// predFormula is a named predicate over the whole state, used for domain
// predicates such as IsStopped(es) or InForwardMotion(vsp.value) whose
// definition is richer than a single comparison.
type predFormula struct {
	name string
	vars []string
	fn   func(State) bool
}

// Pred returns an atom evaluated by fn over the current state.  The listed
// variables are the ones the predicate reads; they drive monitorability and
// controllability analysis in ICPA.
func Pred(name string, vars []string, fn func(State) bool) Formula {
	sorted := append([]string(nil), vars...)
	sort.Strings(sorted)
	return predFormula{name: name, vars: sorted, fn: fn}
}

func (p predFormula) Eval(tr *Trace, i int) bool { return p.fn(tr.At(i)) }
func (p predFormula) Vars() []string             { return append([]string(nil), p.vars...) }
func (p predFormula) String() string             { return p.name }

// ---------------------------------------------------------------------------
// Propositional connectives
// ---------------------------------------------------------------------------

type notFormula struct{ f Formula }

// Not returns the negation ¬f.
func Not(f Formula) Formula { return notFormula{f: f} }

func (n notFormula) Eval(tr *Trace, i int) bool { return !n.f.Eval(tr, i) }
func (n notFormula) Vars() []string             { return n.f.Vars() }
func (n notFormula) String() string             { return "!(" + n.f.String() + ")" }

type andFormula struct{ fs []Formula }

// And returns the conjunction of the given formulas (true when empty).
func And(fs ...Formula) Formula {
	if len(fs) == 1 {
		return fs[0]
	}
	return andFormula{fs: fs}
}

func (a andFormula) Eval(tr *Trace, i int) bool {
	for _, f := range a.fs {
		if !f.Eval(tr, i) {
			return false
		}
	}
	return true
}
func (a andFormula) Vars() []string { return mergeVars(a.fs...) }
func (a andFormula) String() string { return joinFormulas(a.fs, " & ") }

type orFormula struct{ fs []Formula }

// Or returns the disjunction of the given formulas (false when empty).
func Or(fs ...Formula) Formula {
	if len(fs) == 1 {
		return fs[0]
	}
	return orFormula{fs: fs}
}

func (o orFormula) Eval(tr *Trace, i int) bool {
	for _, f := range o.fs {
		if f.Eval(tr, i) {
			return true
		}
	}
	return false
}
func (o orFormula) Vars() []string { return mergeVars(o.fs...) }
func (o orFormula) String() string { return joinFormulas(o.fs, " | ") }

func joinFormulas(fs []Formula, sep string) string {
	if len(fs) == 0 {
		if sep == " & " {
			return "true"
		}
		return "false"
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = "(" + f.String() + ")"
	}
	return strings.Join(parts, sep)
}

type impliesFormula struct{ ant, con Formula }

// Implies returns the material implication ant → con evaluated state-wise.
// Safety goals in the thesis use the entailment pattern P ⇒ Q, meaning the
// implication holds in every state; Eval checks the current state and the
// monitor layer checks it continuously.
func Implies(ant, con Formula) Formula { return impliesFormula{ant: ant, con: con} }

func (im impliesFormula) Eval(tr *Trace, i int) bool {
	return !im.ant.Eval(tr, i) || im.con.Eval(tr, i)
}
func (im impliesFormula) Vars() []string { return mergeVars(im.ant, im.con) }
func (im impliesFormula) String() string {
	return "(" + im.ant.String() + ") => (" + im.con.String() + ")"
}

// Antecedent returns the antecedent of an implication formula, or nil when
// the formula is not an implication.  ICPA uses the antecedent/consequent
// split to infer monitored versus controlled variable sets.
func Antecedent(f Formula) Formula {
	if im, ok := f.(impliesFormula); ok {
		return im.ant
	}
	return nil
}

// Consequent returns the consequent of an implication formula, or nil.
func Consequent(f Formula) Formula {
	if im, ok := f.(impliesFormula); ok {
		return im.con
	}
	return nil
}

type iffFormula struct{ a, b Formula }

// Iff returns the biconditional a ⇔ b.
func Iff(a, b Formula) Formula { return iffFormula{a: a, b: b} }

func (f iffFormula) Eval(tr *Trace, i int) bool { return f.a.Eval(tr, i) == f.b.Eval(tr, i) }
func (f iffFormula) Vars() []string             { return mergeVars(f.a, f.b) }
func (f iffFormula) String() string {
	return "(" + f.a.String() + ") <=> (" + f.b.String() + ")"
}

// ---------------------------------------------------------------------------
// Past-time temporal operators
// ---------------------------------------------------------------------------

type prevFormula struct{ f Formula }

// Prev returns l f: true when f held in the previous state.  In the initial
// state there is no previous state and Prev is false, matching the KAOS
// convention that monitored values are unknown before the first observation.
func Prev(f Formula) Formula { return prevFormula{f: f} }

func (p prevFormula) Eval(tr *Trace, i int) bool {
	if i == 0 {
		return false
	}
	return p.f.Eval(tr, i-1)
}
func (p prevFormula) Vars() []string { return p.f.Vars() }
func (p prevFormula) String() string { return "prev(" + p.f.String() + ")" }

type onceFormula struct{ f Formula }

// Once returns the "true in some previous state" operator.
func Once(f Formula) Formula { return onceFormula{f: f} }

func (o onceFormula) Eval(tr *Trace, i int) bool {
	for j := 0; j < i; j++ {
		if o.f.Eval(tr, j) {
			return true
		}
	}
	return false
}
func (o onceFormula) Vars() []string { return o.f.Vars() }
func (o onceFormula) String() string { return "once(" + o.f.String() + ")" }

type historicallyFormula struct{ f Formula }

// Historically returns the "true in all previous states" operator (vacuously
// true in the initial state).
func Historically(f Formula) Formula { return historicallyFormula{f: f} }

func (h historicallyFormula) Eval(tr *Trace, i int) bool {
	for j := 0; j < i; j++ {
		if !h.f.Eval(tr, j) {
			return false
		}
	}
	return true
}
func (h historicallyFormula) Vars() []string { return h.f.Vars() }
func (h historicallyFormula) String() string { return "hist(" + h.f.String() + ")" }

type becameFormula struct{ f Formula }

// Became returns @f = f ∧ l¬f: f is true now and was false in the previous
// state.  In the initial state Became is true when f is true, because the
// thesis treats the initial state as the instant the condition first holds.
func Became(f Formula) Formula { return becameFormula{f: f} }

func (b becameFormula) Eval(tr *Trace, i int) bool {
	if !b.f.Eval(tr, i) {
		return false
	}
	if i == 0 {
		return true
	}
	return !b.f.Eval(tr, i-1)
}
func (b becameFormula) Vars() []string { return b.f.Vars() }
func (b becameFormula) String() string { return "became(" + b.f.String() + ")" }

type prevForFormula struct {
	f Formula
	d time.Duration
}

// PrevFor returns ln<T f: f held continuously for duration T ending at the
// previous state.  It is false until the trace contains at least T worth of
// history, reflecting that actuation-delay assumptions cannot be discharged
// before the delay has elapsed.
func PrevFor(f Formula, d time.Duration) Formula { return prevForFormula{f: f, d: d} }

func (p prevForFormula) Eval(tr *Trace, i int) bool {
	n := tr.StepsFor(p.d)
	if n == 0 {
		return true
	}
	if i < n {
		return false
	}
	for j := i - n; j < i; j++ {
		if !p.f.Eval(tr, j) {
			return false
		}
	}
	return true
}
func (p prevForFormula) Vars() []string { return p.f.Vars() }
func (p prevForFormula) String() string {
	return fmt.Sprintf("prevfor[%s](%s)", p.d, p.f.String())
}

type prevWithinFormula struct {
	f Formula
	d time.Duration
}

// PrevWithin returns l<T f: f held at least once within duration T before the
// current state.
func PrevWithin(f Formula, d time.Duration) Formula { return prevWithinFormula{f: f, d: d} }

func (p prevWithinFormula) Eval(tr *Trace, i int) bool {
	n := tr.StepsFor(p.d)
	lo := i - n
	if lo < 0 {
		lo = 0
	}
	for j := lo; j < i; j++ {
		if p.f.Eval(tr, j) {
			return true
		}
	}
	return false
}
func (p prevWithinFormula) Vars() []string { return p.f.Vars() }
func (p prevWithinFormula) String() string {
	return fmt.Sprintf("prevwithin[%s](%s)", p.d, p.f.String())
}

type initiallyFormula struct{ f Formula }

// Initially returns S0 ⊨ f: f held in the initial state of the trace.
func Initially(f Formula) Formula { return initiallyFormula{f: f} }

func (n initiallyFormula) Eval(tr *Trace, i int) bool {
	if tr.Len() == 0 {
		return false
	}
	return n.f.Eval(tr, 0)
}
func (n initiallyFormula) Vars() []string { return n.f.Vars() }
func (n initiallyFormula) String() string { return "initially(" + n.f.String() + ")" }

// ---------------------------------------------------------------------------
// Future-time operators (specification and realizability analysis only)
// ---------------------------------------------------------------------------

type nextFormula struct{ f Formula }

// Next returns m f: f holds in the next state (false at the end of a trace).
func Next(f Formula) Formula { return nextFormula{f: f} }

func (n nextFormula) Eval(tr *Trace, i int) bool {
	if i+1 >= tr.Len() {
		return false
	}
	return n.f.Eval(tr, i+1)
}
func (n nextFormula) Vars() []string { return n.f.Vars() }
func (n nextFormula) String() string { return "next(" + n.f.String() + ")" }

type eventuallyFormula struct{ f Formula }

// Eventually returns ♦f: f holds now or in some future state of the trace.
// Goals containing Eventually are not realizable by run-time monitors (the
// thesis, §4.5.3); the realizability analysis flags them.
func Eventually(f Formula) Formula { return eventuallyFormula{f: f} }

func (e eventuallyFormula) Eval(tr *Trace, i int) bool {
	for j := i; j < tr.Len(); j++ {
		if e.f.Eval(tr, j) {
			return true
		}
	}
	return false
}
func (e eventuallyFormula) Vars() []string { return e.f.Vars() }
func (e eventuallyFormula) String() string { return "eventually(" + e.f.String() + ")" }

type alwaysFormula struct{ f Formula }

// Always returns qf: f holds now and in all future states of the trace.
func Always(f Formula) Formula { return alwaysFormula{f: f} }

func (a alwaysFormula) Eval(tr *Trace, i int) bool {
	for j := i; j < tr.Len(); j++ {
		if !a.f.Eval(tr, j) {
			return false
		}
	}
	return true
}
func (a alwaysFormula) Vars() []string { return a.f.Vars() }
func (a alwaysFormula) String() string { return "always(" + a.f.String() + ")" }

// ---------------------------------------------------------------------------
// Structural queries
// ---------------------------------------------------------------------------

// IsPastTime reports whether the formula uses only propositional and
// past-time operators, i.e. whether it can be monitored incrementally at
// run time without reference to the future.
func IsPastTime(f Formula) bool {
	switch ff := f.(type) {
	case nextFormula, eventuallyFormula, alwaysFormula:
		return false
	case notFormula:
		return IsPastTime(ff.f)
	case andFormula:
		for _, sub := range ff.fs {
			if !IsPastTime(sub) {
				return false
			}
		}
		return true
	case orFormula:
		for _, sub := range ff.fs {
			if !IsPastTime(sub) {
				return false
			}
		}
		return true
	case impliesFormula:
		return IsPastTime(ff.ant) && IsPastTime(ff.con)
	case iffFormula:
		return IsPastTime(ff.a) && IsPastTime(ff.b)
	case prevFormula:
		return IsPastTime(ff.f)
	case onceFormula:
		return IsPastTime(ff.f)
	case historicallyFormula:
		return IsPastTime(ff.f)
	case becameFormula:
		return IsPastTime(ff.f)
	case prevForFormula:
		return IsPastTime(ff.f)
	case prevWithinFormula:
		return IsPastTime(ff.f)
	case initiallyFormula:
		return IsPastTime(ff.f)
	default:
		return true
	}
}

// ReferencesFuture reports whether the formula contains an unbounded
// future-time operator (Eventually), which makes a goal unrealizable per the
// thesis' realizability rules.
func ReferencesFuture(f Formula) bool {
	switch ff := f.(type) {
	case eventuallyFormula:
		return true
	case nextFormula:
		return ReferencesFuture(ff.f)
	case alwaysFormula:
		return ReferencesFuture(ff.f)
	case notFormula:
		return ReferencesFuture(ff.f)
	case andFormula:
		for _, sub := range ff.fs {
			if ReferencesFuture(sub) {
				return true
			}
		}
		return false
	case orFormula:
		for _, sub := range ff.fs {
			if ReferencesFuture(sub) {
				return true
			}
		}
		return false
	case impliesFormula:
		return ReferencesFuture(ff.ant) || ReferencesFuture(ff.con)
	case iffFormula:
		return ReferencesFuture(ff.a) || ReferencesFuture(ff.b)
	case prevFormula:
		return ReferencesFuture(ff.f)
	case onceFormula:
		return ReferencesFuture(ff.f)
	case historicallyFormula:
		return ReferencesFuture(ff.f)
	case becameFormula:
		return ReferencesFuture(ff.f)
	case prevForFormula:
		return ReferencesFuture(ff.f)
	case prevWithinFormula:
		return ReferencesFuture(ff.f)
	case initiallyFormula:
		return ReferencesFuture(ff.f)
	default:
		return false
	}
}

// Conjuncts returns the top-level conjuncts of a formula: the operands of a
// top-level And, or the formula itself otherwise.  ICPA's conjunctive-goal
// splitting (thesis §3.3.4) is built on this.
func Conjuncts(f Formula) []Formula {
	if a, ok := f.(andFormula); ok {
		return append([]Formula(nil), a.fs...)
	}
	return []Formula{f}
}

// Disjuncts returns the top-level disjuncts of a formula: the operands of a
// top-level Or, or the formula itself otherwise.  OR-reduction (thesis
// §3.3.5) is built on this.
func Disjuncts(f Formula) []Formula {
	if o, ok := f.(orFormula); ok {
		return append([]Formula(nil), o.fs...)
	}
	return []Formula{f}
}

// IsDelayed reports whether every atomic proposition in the formula is
// guarded by a past-time operator (Prev, Once, Historically, Became,
// PrevFor, PrevWithin or Initially).  ICPA uses this to decide whether the
// antecedent of a goal is observed at least one state before the controlled
// action, which is a precondition for realizability (thesis §4.5.3).
func IsDelayed(f Formula) bool {
	switch ff := f.(type) {
	case prevFormula, onceFormula, historicallyFormula, becameFormula,
		prevForFormula, prevWithinFormula, initiallyFormula:
		return true
	case constFormula:
		return true
	case notFormula:
		return IsDelayed(ff.f)
	case andFormula:
		for _, sub := range ff.fs {
			if !IsDelayed(sub) {
				return false
			}
		}
		return len(ff.fs) > 0
	case orFormula:
		for _, sub := range ff.fs {
			if !IsDelayed(sub) {
				return false
			}
		}
		return len(ff.fs) > 0
	case impliesFormula:
		return IsDelayed(ff.ant) && IsDelayed(ff.con)
	case iffFormula:
		return IsDelayed(ff.a) && IsDelayed(ff.b)
	default:
		return false
	}
}

// HoldsThroughout reports whether f holds at every state of the trace.  The
// thesis' entailment goals (P ⇒ Q) assert their body in all states; this is
// the whole-trace check used by tests and composability analysis.
func HoldsThroughout(f Formula, tr *Trace) bool {
	for i := 0; i < tr.Len(); i++ {
		if !f.Eval(tr, i) {
			return false
		}
	}
	return true
}

// ViolationIndices returns the state indices at which f is false, up to the
// optional limit (0 means no limit).
func ViolationIndices(f Formula, tr *Trace, limit int) []int {
	var out []int
	for i := 0; i < tr.Len(); i++ {
		if !f.Eval(tr, i) {
			out = append(out, i)
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	}
	return out
}
