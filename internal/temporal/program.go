package temporal

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Program is a suite-level compiled evaluator: the goal formulas of a whole
// monitor suite are lowered into one flat, topologically ordered node array
// with common subexpressions hash-consed away, so each shared atom and each
// shared subformula is evaluated exactly once per observed state however many
// formulas reference it.  The thesis' hierarchical monitoring plan evaluates
// ~30 goal and subgoal formulas against the same state every step, and those
// formulas overlap heavily (the same `collision`, speed and actuator-command
// atoms appear across many goals); Kopetz's system-of-systems argument
// (PAPERS.md) treats such a monitoring layer as one composed artifact rather
// than independent constituents, and the Program is that artifact made
// executable.
//
// Formulas are registered with Add, which returns a Tap — a stable handle to
// the formula's per-step boolean output.  Each Step evaluates every node once
// (children always precede their parents in the array, so a single forward
// pass suffices) and Output reads a tap's verdict for that state.  Semantics
// are identical to compiling each formula to its own Stepper and stepping
// them in lockstep: every temporal operator node advances its internal state
// exactly once per step, and sharing is sound because a node's output is a
// deterministic function of its children's per-step values and its own state.
//
// Reset clears all operator state so one compiled Program can monitor run
// after run: a sweep worker compiles the suite once and re-resolves each
// atom's register slot against the next run's schema on its first step (a
// pointer-guarded name lookup, not a recompilation).  A Program is not safe
// for concurrent use; workers own one each.
type Program struct {
	period time.Duration
	schema *Schema

	nodes []pnode
	vals  []bool
	roots []int

	intern map[string]int
	steps  int

	nodeRefs int
	atomRefs int

	// Lane mode (SetLanes/StepLanes): per-node lane registers.  lmask holds
	// each node's per-lane output mask for the last StepLanes, lbool the mask
	// analogue of pnode.bstate, and lcnt the per-lane counters of the
	// bounded-past operators (run length for PrevFor, last-true step for
	// PrevWithin; nil for every other op).
	lanes int
	lmask []uint64
	lbool []uint64
	lcnt  [][]int32
}

// Tap is a handle to one registered formula's per-step output.
type Tap int

// NewProgram returns an empty program.  The period converts bounded-past
// operator durations into step counts (a non-positive period defaults to the
// thesis' 1 ms); a non-nil schema resolves every atom to its register slot at
// compile time, exactly like CompileWithSchema.
func NewProgram(period time.Duration, schema *Schema) *Program {
	if period <= 0 {
		period = time.Millisecond
	}
	return &Program{period: period, schema: schema, intern: make(map[string]int)}
}

// Add compiles a formula into the program, sharing every node an earlier
// formula already contributed, and returns the tap its verdict is read from.
// Like Compile, it rejects formulas containing future-time operators.
func (p *Program) Add(f Formula) (Tap, error) {
	if !IsPastTime(f) {
		return 0, fmt.Errorf("temporal: formula %q contains future-time operators and cannot be compiled to a run-time monitor", f)
	}
	idx, err := p.compile(f)
	if err != nil {
		return 0, err
	}
	p.roots = append(p.roots, idx)
	return Tap(idx), nil
}

// MustAdd is like Add but panics on error; for statically known goal
// catalogues.
func (p *Program) MustAdd(f Formula) Tap {
	t, err := p.Add(f)
	if err != nil {
		panic(err)
	}
	return t
}

// Step evaluates every node against the next state, in topological order, and
// advances all temporal operator state by one step.
func (p *Program) Step(st State) {
	steps := p.steps
	vals := p.vals
	for i := range p.nodes {
		n := &p.nodes[i]
		var out bool
		switch n.op {
		case opConst:
			out = n.bstate
		case opVar:
			out = n.ref.boolAt(st)
		case opCompareNum:
			// All comparisons against a non-string constant — and ordered
			// comparisons against any constant — reduce to one float compare
			// on the number plane (AsNumber maps bools to 0/1 and strings to
			// NaN, which no comparison or inequality misclassifies).
			if f, ok := n.ref.numberOK(st); ok {
				out = compareNumbers(f, n.cval, n.cmp)
			}
		case opCompareStrEq:
			// Equality against an enumeration constant is an id compare on
			// the enumeration plane.
			if slot, ok := n.ref.resolve(st); ok {
				if k := st.SlotKind(slot); k != KindInvalid {
					match := k == KindString && st.SlotStringID(slot) == n.eref.idIn(st.Schema())
					out = match == (n.cmp == OpEq)
				}
			}
		case opCompareVarsNum:
			lf, lok := n.ref.numberOK(st)
			rf, rok := n.ref2.numberOK(st)
			out = lok && rok && compareNumbers(lf, rf, n.cmp)
		case opCompareVars:
			lv, rv := n.ref.value(st), n.ref2.value(st)
			if lv.IsValid() && rv.IsValid() {
				out = compareValues(lv, rv, n.cmp)
			}
		case opPred:
			out = n.fn(st)
		case opNot:
			out = !vals[n.a]
		case opAnd:
			out = true
			for _, k := range n.kids {
				if !vals[k] {
					out = false
					break // children are already evaluated; no state is skipped
				}
			}
		case opOr:
			for _, k := range n.kids {
				if vals[k] {
					out = true
					break
				}
			}
		case opImplies:
			out = !vals[n.a] || vals[n.b]
		case opIff:
			out = vals[n.a] == vals[n.b]
		case opPrev:
			out = steps > 0 && n.bstate
			n.bstate = vals[n.a]
		case opOnce:
			out = n.bstate
			if vals[n.a] {
				n.bstate = true
			}
		case opHist:
			out = n.bstate
			if !vals[n.a] {
				n.bstate = false
			}
		case opBecame:
			cur := vals[n.a]
			out = cur && !n.bstate
			n.bstate = cur
		case opPrevFor:
			out = n.n == 0 || (steps >= n.n && n.run >= n.n)
			if vals[n.a] {
				n.run++
			} else {
				n.run = 0
			}
		case opPrevWithin:
			out = n.lastTrue >= 0 && steps-n.lastTrue <= n.n
			if vals[n.a] {
				n.lastTrue = steps
			}
		case opInitially:
			cur := vals[n.a]
			if !n.have {
				n.bstate = cur
				n.have = true
			}
			out = n.bstate
		}
		vals[i] = out
	}
	p.steps++
}

// Output reads the verdict a tap's formula produced for the last Step.
func (p *Program) Output(t Tap) bool { return p.vals[t] }

// Steps returns the number of states consumed since the last Reset.
func (p *Program) Steps() int { return p.steps }

// Period returns the state period the program was compiled with.
func (p *Program) Period() time.Duration { return p.period }

// Reset clears all temporal operator state so the program can evaluate a
// fresh trace — the same contract as Stepper.Reset, applied to every shared
// node at once.
func (p *Program) Reset() {
	p.steps = 0
	for i := range p.nodes {
		n := &p.nodes[i]
		switch n.op {
		case opPrev, opOnce, opBecame:
			n.bstate = false
		case opHist:
			n.bstate = true
		case opPrevFor:
			n.run = 0
		case opPrevWithin:
			n.lastTrue = -1
		case opInitially:
			n.bstate, n.have = false, false
		}
	}
	p.resetLanes()
}

// ProgramStats describes how much evaluation the program's sharing removed.
type ProgramStats struct {
	// Formulas is the number of formulas registered with Add.
	Formulas int
	// Nodes is the number of unique nodes after hash-consing — the work one
	// Step performs.
	Nodes int
	// NodeRefs is the number of nodes the formulas would evaluate per step as
	// independent Steppers; NodeRefs - Nodes is the per-step saving.
	NodeRefs int
	// Atoms is the number of unique atom nodes (state reads) after sharing.
	Atoms int
	// AtomRefs is the number of atom occurrences across all formulas: how
	// many state reads per step the per-monitor evaluation performs.
	AtomRefs int
}

// Stats reports the program's sharing statistics.
func (p *Program) Stats() ProgramStats {
	s := ProgramStats{
		Formulas: len(p.roots),
		Nodes:    len(p.nodes),
		NodeRefs: p.nodeRefs,
		AtomRefs: p.atomRefs,
	}
	for i := range p.nodes {
		switch p.nodes[i].op {
		case opConst, opVar, opCompareNum, opCompareStrEq, opCompareVarsNum, opCompareVars, opPred:
			s.Atoms++
		}
	}
	return s
}

// progOp enumerates the node kinds of a compiled program.
type progOp uint8

const (
	opConst progOp = iota
	opVar
	opCompareNum
	opCompareStrEq
	opCompareVarsNum
	opCompareVars
	opPred
	opNot
	opAnd
	opOr
	opImplies
	opIff
	opPrev
	opOnce
	opHist
	opBecame
	opPrevFor
	opPrevWithin
	opInitially
)

// pnode is one node of the flat program: its operator, operand node indices
// (always smaller than the node's own index) and the per-run operator state.
// bstate is the operator's single boolean register: the previous child value
// for prev, the seen flag for once, the all-previous flag for hist, the
// previous-true flag for became, the captured initial verdict for initially,
// and the constant itself for const nodes.
type pnode struct {
	op   progOp
	a, b int
	kids []int
	ref  slotRef
	ref2 slotRef
	cmp  CompareOp
	val  Value
	cval float64 // val.AsNumber(), precomputed for opCompareNum
	eref enumRef // val's interned id, for opCompareStrEq
	fn   func(State) bool
	n    int

	bstate   bool
	have     bool
	run      int
	lastTrue int
}

// compile lowers one formula node, hash-consing it against every node the
// program already holds.  Children are compiled first, so their indices are
// available for both the structural key and the evaluation order invariant.
func (p *Program) compile(f Formula) (int, error) {
	p.nodeRefs++
	switch ff := f.(type) {
	case constFormula:
		p.atomRefs++
		return p.internNode("c|"+strconv.FormatBool(bool(ff)),
			pnode{op: opConst, bstate: bool(ff)}), nil
	case varFormula:
		p.atomRefs++
		return p.internNode("v|"+ff.name,
			pnode{op: opVar, ref: p.newSlotRef(ff.name)}), nil
	case compareFormula:
		p.atomRefs++
		key := "k|" + ff.name + "|" + strconv.Itoa(int(ff.op)) + "|" + valueKey(ff.val)
		node := pnode{op: opCompareNum, ref: p.newSlotRef(ff.name), cmp: ff.op, val: ff.val, cval: ff.val.AsNumber()}
		if ff.val.kind == KindString && (ff.op == OpEq || ff.op == OpNe) {
			node = pnode{op: opCompareStrEq, ref: p.newSlotRef(ff.name), cmp: ff.op, val: ff.val, eref: p.newEnumRef(ff.val.s)}
		}
		return p.internNode(key, node), nil
	case compareVarsFormula:
		p.atomRefs++
		key := "K|" + ff.left + "|" + strconv.Itoa(int(ff.op)) + "|" + ff.right
		node := pnode{op: opCompareVars, ref: p.newSlotRef(ff.left), cmp: ff.op, ref2: p.newSlotRef(ff.right)}
		if ff.op != OpEq && ff.op != OpNe {
			node.op = opCompareVarsNum
		}
		return p.internNode(key, node), nil
	case predFormula:
		// Predicate atoms are never shared: two predicates may render and
		// list variables identically yet close over different functions, so
		// structural identity cannot be established.  Each occurrence gets
		// its own node.
		p.atomRefs++
		return p.appendNode(pnode{op: opPred, fn: ff.fn}), nil
	case notFormula:
		a, err := p.compile(ff.f)
		if err != nil {
			return 0, err
		}
		return p.internNode("!|"+strconv.Itoa(a), pnode{op: opNot, a: a}), nil
	case andFormula:
		return p.compileNary(opAnd, "&|", ff.fs)
	case orFormula:
		return p.compileNary(opOr, "||", ff.fs)
	case impliesFormula:
		a, err := p.compile(ff.ant)
		if err != nil {
			return 0, err
		}
		b, err := p.compile(ff.con)
		if err != nil {
			return 0, err
		}
		return p.internNode("=>|"+strconv.Itoa(a)+"|"+strconv.Itoa(b),
			pnode{op: opImplies, a: a, b: b}), nil
	case iffFormula:
		a, err := p.compile(ff.a)
		if err != nil {
			return 0, err
		}
		b, err := p.compile(ff.b)
		if err != nil {
			return 0, err
		}
		return p.internNode("<=>|"+strconv.Itoa(a)+"|"+strconv.Itoa(b),
			pnode{op: opIff, a: a, b: b}), nil
	case prevFormula:
		return p.compileUnary(opPrev, "p|", ff.f, 0)
	case onceFormula:
		return p.compileUnary(opOnce, "o|", ff.f, 0)
	case historicallyFormula:
		return p.compileUnary(opHist, "h|", ff.f, 0)
	case becameFormula:
		return p.compileUnary(opBecame, "b|", ff.f, 0)
	case prevForFormula:
		return p.compileUnary(opPrevFor, "pf|", ff.f, stepsFor(ff.d, p.period))
	case prevWithinFormula:
		return p.compileUnary(opPrevWithin, "pw|", ff.f, stepsFor(ff.d, p.period))
	case initiallyFormula:
		return p.compileUnary(opInitially, "i|", ff.f, 0)
	default:
		return 0, fmt.Errorf("temporal: cannot compile formula node %T", f)
	}
}

// compileUnary interns a single-child operator node; n is the bounded-past
// window in steps (part of the structural identity for the bounded ops).
func (p *Program) compileUnary(op progOp, tag string, child Formula, n int) (int, error) {
	a, err := p.compile(child)
	if err != nil {
		return 0, err
	}
	key := tag + strconv.Itoa(a)
	if n != 0 {
		key += "|" + strconv.Itoa(n)
	}
	node := pnode{op: op, a: a, n: n}
	switch op {
	case opHist:
		node.bstate = true
	case opPrevWithin:
		node.lastTrue = -1
	}
	return p.internNode(key, node), nil
}

// compileNary interns an and/or node over its children's node indices.  The
// key preserves child order: And(a, b) and And(b, a) evaluate identically but
// are interned separately, which costs a node and never correctness.
func (p *Program) compileNary(op progOp, tag string, fs []Formula) (int, error) {
	kids := make([]int, len(fs))
	var key strings.Builder
	key.WriteString(tag)
	for i, f := range fs {
		a, err := p.compile(f)
		if err != nil {
			return 0, err
		}
		kids[i] = a
		if i > 0 {
			key.WriteByte(',')
		}
		key.WriteString(strconv.Itoa(a))
	}
	return p.internNode(key.String(), pnode{op: op, kids: kids}), nil
}

// internNode returns the existing node for a structural key or appends a new
// one.
func (p *Program) internNode(key string, n pnode) int {
	if i, ok := p.intern[key]; ok {
		return i
	}
	i := p.appendNode(n)
	p.intern[key] = i
	return i
}

func (p *Program) appendNode(n pnode) int {
	i := len(p.nodes)
	p.nodes = append(p.nodes, n)
	p.vals = append(p.vals, false)
	return i
}

// newSlotRef resolves an atom's variable name against the program's schema,
// exactly as the per-formula compiler does: resolved at compile time when the
// schema is known, re-resolved lazily (one pointer compare per step, one name
// lookup per schema change) otherwise.
func (p *Program) newSlotRef(name string) slotRef {
	r := slotRef{name: name}
	if p.schema != nil {
		r.schema = p.schema
		r.slot = p.schema.Intern(name)
	}
	return r
}

// newEnumRef resolves an enumeration-string constant against the program's
// schema at compile time (lazily on the first step otherwise), mirroring
// newSlotRef.
func (p *Program) newEnumRef(s string) enumRef {
	e := enumRef{s: s}
	if p.schema != nil {
		e.schema = p.schema
		e.id = p.schema.InternString(s)
	}
	return e
}

// valueKey renders a Value with its kind tag for structural identity: the
// number 2 and the string "2" render differently, and two NaN constants
// intern separately (NaN never equals itself, so sharing them is pointless
// but harmless either way).
func valueKey(v Value) string {
	return strconv.Itoa(int(v.kind)) + ":" + v.String()
}
