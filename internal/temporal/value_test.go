package temporal

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		kind Kind
	}{
		{"bool", Bool(true), KindBool},
		{"number", Number(3.5), KindNumber},
		{"string", String("STOP"), KindString},
		{"zero", Value{}, KindInvalid},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Kind(); got != tt.kind {
				t.Fatalf("Kind() = %v, want %v", got, tt.kind)
			}
		})
	}
}

func TestValueAsBool(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		want bool
	}{
		{"true", Bool(true), true},
		{"false", Bool(false), false},
		{"nonzero number", Number(2.0), true},
		{"zero number", Number(0), false},
		{"nonempty string", String("GO"), true},
		{"empty string", String(""), false},
		{"invalid", Value{}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.AsBool(); got != tt.want {
				t.Fatalf("AsBool() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestValueAsNumber(t *testing.T) {
	if got := Number(2.5).AsNumber(); got != 2.5 {
		t.Fatalf("Number(2.5).AsNumber() = %v", got)
	}
	if got := Bool(true).AsNumber(); got != 1 {
		t.Fatalf("Bool(true).AsNumber() = %v, want 1", got)
	}
	if got := Bool(false).AsNumber(); got != 0 {
		t.Fatalf("Bool(false).AsNumber() = %v, want 0", got)
	}
	if got := String("x").AsNumber(); !math.IsNaN(got) {
		t.Fatalf("String.AsNumber() = %v, want NaN", got)
	}
}

func TestValueAsString(t *testing.T) {
	if got := String("STOP").AsString(); got != "STOP" {
		t.Fatalf("AsString() = %q", got)
	}
	if got := Bool(true).AsString(); got != "true" {
		t.Fatalf("AsString() = %q", got)
	}
	if got := Number(2).AsString(); got != "2" {
		t.Fatalf("AsString() = %q", got)
	}
}

func TestValueEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b Value
		want bool
	}{
		{"equal numbers", Number(1.5), Number(1.5), true},
		{"unequal numbers", Number(1.5), Number(2), false},
		{"equal strings", String("GO"), String("GO"), true},
		{"unequal strings", String("GO"), String("STOP"), false},
		{"equal bools", Bool(true), Bool(true), true},
		{"bool vs number", Bool(true), Number(1), true},
		{"bool vs number zero", Bool(false), Number(0), true},
		{"string vs number", String("1"), Number(1), false},
		{"invalid vs invalid", Value{}, Value{}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Fatalf("Equal(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestValueEqualSymmetric(t *testing.T) {
	f := func(a, b float64, s1, s2 string, b1, b2 bool) bool {
		vals := []Value{Number(a), Number(b), String(s1), String(s2), Bool(b1), Bool(b2)}
		for _, x := range vals {
			for _, y := range vals {
				if x.Equal(y) != y.Equal(x) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueString(t *testing.T) {
	if got := String("STOP").String(); got != "'STOP'" {
		t.Fatalf("String() = %q", got)
	}
	if got := Number(2.5).String(); got != "2.5" {
		t.Fatalf("String() = %q", got)
	}
	if got := Bool(false).String(); got != "false" {
		t.Fatalf("String() = %q", got)
	}
	if got := (Value{}).String(); got != "<invalid>" {
		t.Fatalf("String() = %q", got)
	}
	if got := (Value{}).GoString(); got != "<invalid>" {
		t.Fatalf("GoString() = %q", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindBool:    "bool",
		KindNumber:  "number",
		KindString:  "string",
		KindInvalid: "invalid",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
