package temporal

import "fmt"

// Lane-batched program evaluation.
//
// A Program compiled for a monitor suite normally consumes one State per
// Step.  In lane mode the same node array evaluates N independent traces in
// lockstep against one lane-widened State (NewStateWithLanes): each node
// produces a uint64 output mask whose bit l is the node's verdict for lane l,
// so the boolean connectives collapse to single word operations and each atom
// becomes a tight loop over the contiguous lane group of its register slot.
// Temporal operators keep per-lane state — a mask register for the
// single-bit operators (prev/once/historically/became/initially) and a small
// per-lane counter array for the bounded-past operators — and advance all
// lanes exactly once per StepLanes, so lane l's mask bit sequence is
// identical to feeding lane l's trace through a scalar Program.
//
// Lane mode is an additive evaluation surface: SetLanes allocates the lane
// registers, StepLanes advances them, OutputMask reads a tap's per-lane
// verdicts, and Reset clears lane state alongside the scalar state.  A
// program in lane mode is still not safe for concurrent use.

// MaxLanes is the widest supported lane batch: one bit per lane in the
// uint64 node masks.
const MaxLanes = 64

// SetLanes switches the program into lane mode at the given width,
// allocating per-node lane registers.  It fails for programs containing
// predicate atoms (opaque func(State) bool closures cannot be evaluated
// per lane) and for widths outside [1, MaxLanes].  All formulas must be
// registered before SetLanes; Add after SetLanes is rejected by StepLanes.
func (p *Program) SetLanes(lanes int) error {
	if lanes < 1 || lanes > MaxLanes {
		return fmt.Errorf("temporal: lane width %d outside [1, %d]", lanes, MaxLanes)
	}
	for i := range p.nodes {
		if p.nodes[i].op == opPred {
			return fmt.Errorf("temporal: program contains a predicate atom; predicates cannot be lane-stepped")
		}
	}
	p.lanes = lanes
	p.lmask = make([]uint64, len(p.nodes))
	p.lbool = make([]uint64, len(p.nodes))
	p.lcnt = make([][]int32, len(p.nodes))
	for i := range p.nodes {
		switch p.nodes[i].op {
		case opPrevFor, opPrevWithin:
			p.lcnt[i] = make([]int32, lanes)
		}
	}
	p.resetLanes()
	return nil
}

// Lanes returns the lane width set by SetLanes (0 when the program is not in
// lane mode).
func (p *Program) Lanes() int { return p.lanes }

// laneFull returns the mask with one bit set per configured lane.
func (p *Program) laneFull() uint64 {
	// lanes == 64 relies on Go's shift semantics: 1<<64 is 0, so 0-1 wraps
	// to the all-ones mask.
	return uint64(1)<<uint(p.lanes) - 1
}

// resetLanes rewinds all per-lane operator state, mirroring Reset's per-op
// clearing with masks and counters.
func (p *Program) resetLanes() {
	if p.lanes == 0 {
		return
	}
	full := p.laneFull()
	for i := range p.nodes {
		p.lmask[i] = 0
		switch p.nodes[i].op {
		case opHist:
			p.lbool[i] = full
		default:
			p.lbool[i] = 0
		}
		switch p.nodes[i].op {
		case opPrevFor:
			for l := range p.lcnt[i] {
				p.lcnt[i][l] = 0
			}
		case opPrevWithin:
			for l := range p.lcnt[i] {
				p.lcnt[i][l] = -1
			}
		}
	}
}

// StepLanes evaluates every node against the next lane-widened state, in
// topological order, and advances all per-lane temporal operator state by one
// step.  The state must carry at least Lanes() lanes.  It shares the step
// counter with Step; a program is driven through exactly one of the two per
// run.
func (p *Program) StepLanes(st State) {
	lanes := p.lanes
	if lanes == 0 || len(p.lmask) != len(p.nodes) {
		panic("temporal: StepLanes before SetLanes (or formulas added after SetLanes)")
	}
	full := p.laneFull()
	steps := p.steps
	masks := p.lmask
	for i := range p.nodes {
		n := &p.nodes[i]
		var out uint64
		switch n.op {
		case opConst:
			if n.bstate {
				out = full
			}
		case opVar:
			if slot, ok := n.ref.resolve(st); ok {
				base := slot * lanes
				for l := 0; l < lanes; l++ {
					if st.SlotBool(base + l) {
						out |= 1 << uint(l)
					}
				}
			}
		case opCompareNum:
			// The hot atom: when every lane of the slot holds a number (the
			// steady state for the signal planes a sweep varies), the
			// comparison is one tight loop over the contiguous lane vector of
			// the float plane.  Mixed-kind lanes fall back to the per-lane
			// SlotNumberOK path, which reproduces the scalar semantics bit for
			// bit (bools as 0/1, strings as NaN — still a valid operand, so
			// OpNe holds — and absent values as false).
			if slot, ok := n.ref.resolve(st); ok {
				base := slot * lanes
				allNum := true
				for _, k := range st.kinds[base : base+lanes] {
					if Kind(k) != KindNumber {
						allNum = false
						break
					}
				}
				if allNum {
					vec := st.nums[base : base+lanes]
					for l, f := range vec {
						if compareNumbers(f, n.cval, n.cmp) {
							out |= 1 << uint(l)
						}
					}
				} else {
					for l := 0; l < lanes; l++ {
						if f, valid := st.SlotNumberOK(base + l); valid && compareNumbers(f, n.cval, n.cmp) {
							out |= 1 << uint(l)
						}
					}
				}
			}
		case opCompareStrEq:
			if slot, ok := n.ref.resolve(st); ok {
				id := n.eref.idIn(st.Schema())
				base := slot * lanes
				for l := 0; l < lanes; l++ {
					k := Kind(st.kinds[base+l])
					if k == KindInvalid {
						continue
					}
					match := k == KindString && st.strs[base+l] == id
					if match == (n.cmp == OpEq) {
						out |= 1 << uint(l)
					}
				}
			}
		case opCompareVarsNum:
			lslot, lok := n.ref.resolve(st)
			rslot, rok := n.ref2.resolve(st)
			if lok && rok {
				lbase, rbase := lslot*lanes, rslot*lanes
				for l := 0; l < lanes; l++ {
					lf, lv := st.SlotNumberOK(lbase + l)
					rf, rv := st.SlotNumberOK(rbase + l)
					if lv && rv && compareNumbers(lf, rf, n.cmp) {
						out |= 1 << uint(l)
					}
				}
			}
		case opCompareVars:
			lslot, lok := n.ref.resolve(st)
			rslot, rok := n.ref2.resolve(st)
			if lok && rok {
				lbase, rbase := lslot*lanes, rslot*lanes
				for l := 0; l < lanes; l++ {
					lv, rv := st.Slot(lbase+l), st.Slot(rbase+l)
					if lv.IsValid() && rv.IsValid() && compareValues(lv, rv, n.cmp) {
						out |= 1 << uint(l)
					}
				}
			}
		case opPred:
			// Rejected by SetLanes; unreachable in lane mode.
			panic("temporal: predicate atom in lane-stepped program")
		case opNot:
			out = ^masks[n.a] & full
		case opAnd:
			out = full
			for _, k := range n.kids {
				out &= masks[k]
			}
		case opOr:
			for _, k := range n.kids {
				out |= masks[k]
			}
		case opImplies:
			out = (^masks[n.a] | masks[n.b]) & full
		case opIff:
			out = ^(masks[n.a] ^ masks[n.b]) & full
		case opPrev:
			if steps > 0 {
				out = p.lbool[i]
			}
			p.lbool[i] = masks[n.a]
		case opOnce:
			out = p.lbool[i]
			p.lbool[i] |= masks[n.a]
		case opHist:
			out = p.lbool[i]
			p.lbool[i] &= masks[n.a]
		case opBecame:
			cur := masks[n.a]
			out = cur &^ p.lbool[i]
			p.lbool[i] = cur
		case opPrevFor:
			cur := masks[n.a]
			cnt := p.lcnt[i]
			win := int32(n.n)
			for l := 0; l < lanes; l++ {
				if n.n == 0 || (steps >= n.n && cnt[l] >= win) {
					out |= 1 << uint(l)
				}
				if cur&(1<<uint(l)) != 0 {
					cnt[l]++
				} else {
					cnt[l] = 0
				}
			}
		case opPrevWithin:
			cur := masks[n.a]
			cnt := p.lcnt[i]
			for l := 0; l < lanes; l++ {
				if cnt[l] >= 0 && steps-int(cnt[l]) <= n.n {
					out |= 1 << uint(l)
				}
				if cur&(1<<uint(l)) != 0 {
					cnt[l] = int32(steps)
				}
			}
		case opInitially:
			if steps == 0 {
				p.lbool[i] = masks[n.a]
			}
			out = p.lbool[i]
		}
		masks[i] = out
	}
	p.steps++
}

// OutputMask reads the per-lane verdict mask a tap's formula produced for the
// last StepLanes: bit l is lane l's verdict.
func (p *Program) OutputMask(t Tap) uint64 { return p.lmask[t] }
