package temporal

import (
	"math/rand"
	"testing"
	"time"
)

// laneVocabulary extends the random-formula vocabulary with enumeration
// atoms, so lane stepping's opCompareStrEq path is exercised alongside the
// numeric and boolean atoms randomPastFormula generates.
func randomLaneFormula(r *rand.Rand, depth int, pool *[]Formula) Formula {
	if r.Intn(6) == 0 {
		colors := []string{"red", "green", "blue"}
		op := OpEq
		if r.Intn(2) == 0 {
			op = OpNe
		}
		f := Compare("S", op, String(colors[r.Intn(len(colors))]))
		*pool = append(*pool, f)
		return f
	}
	return randomPastFormula(r, depth, pool)
}

// setRandomLaneVar writes one variable's value for one lane of the widened
// state and the same value into that lane's scalar shadow state.  With small
// probability the value is absent or of a surprising kind (a string in a
// numeric slot, a number in the enum slot), so the mixed-kind fallbacks and
// the unknown-state-is-false convention are covered.
func setRandomLaneVar(r *rand.Rand, wide State, lane int, scalar State, name string) {
	slot := wide.Schema().Intern(name)
	switch name {
	case "A", "B", "C":
		if r.Intn(12) == 0 {
			return // absent
		}
		b := r.Intn(2) == 0
		wide.SetSlotBoolLane(slot, lane, b)
		scalar.SetSlotBool(slot, b)
	case "N", "M":
		switch r.Intn(12) {
		case 0:
			return // absent
		case 1:
			wide.SetSlotStringLane(slot, lane, "oops")
			scalar.SetSlotString(slot, "oops")
		default:
			f := float64(r.Intn(5))
			wide.SetSlotNumberLane(slot, lane, f)
			scalar.SetSlotNumber(slot, f)
		}
	case "S":
		switch r.Intn(12) {
		case 0:
			return // absent
		case 1:
			f := float64(r.Intn(3))
			wide.SetSlotNumberLane(slot, lane, f)
			scalar.SetSlotNumber(slot, f)
		default:
			colors := []string{"red", "green", "blue"}
			c := colors[r.Intn(len(colors))]
			wide.SetSlotStringLane(slot, lane, c)
			scalar.SetSlotString(slot, c)
		}
	}
}

// TestStepLanesMatchesScalarPrograms is the lane mode's differential test:
// a batch of overlapping random formulas evaluated over L independent random
// traces must produce, via one lane-stepped program over the widened state,
// exactly the per-step verdicts of L scalar programs each fed its own lane's
// trace.
func TestStepLanesMatchesScalarPrograms(t *testing.T) {
	widths := []int{1, 2, 3, 5, 8, 64}
	for seed := int64(0); seed < 24; seed++ {
		lanes := widths[int(seed)%len(widths)]
		r := rand.New(rand.NewSource(seed))
		schema := NewSchema()
		laneProg := NewProgram(time.Millisecond, schema)

		var pool []Formula
		var formulas []Formula
		var taps []Tap
		for i := 0; i < 8; i++ {
			f := randomLaneFormula(r, 3, &pool)
			formulas = append(formulas, f)
			taps = append(taps, laneProg.MustAdd(f))
		}
		if err := laneProg.SetLanes(lanes); err != nil {
			t.Fatalf("seed %d: SetLanes(%d): %v", seed, lanes, err)
		}

		scalars := make([]*Program, lanes)
		scalarTaps := make([][]Tap, lanes)
		for l := 0; l < lanes; l++ {
			scalars[l] = NewProgram(time.Millisecond, schema)
			for _, f := range formulas {
				scalarTaps[l] = append(scalarTaps[l], scalars[l].MustAdd(f))
			}
		}

		wide := NewStateWithLanes(schema, lanes)
		shadows := make([]State, lanes)
		for l := range shadows {
			shadows[l] = NewStateWith(schema)
		}
		names := []string{"A", "B", "C", "N", "M", "S"}

		for step := 0; step < 60; step++ {
			wide.Reset()
			for l := 0; l < lanes; l++ {
				shadows[l].Reset()
				for _, name := range names {
					setRandomLaneVar(r, wide, l, shadows[l], name)
				}
			}
			laneProg.StepLanes(wide)
			for l := 0; l < lanes; l++ {
				scalars[l].Step(shadows[l])
				for i := range formulas {
					want := scalars[l].Output(scalarTaps[l][i])
					got := laneProg.OutputMask(taps[i])&(1<<uint(l)) != 0
					if got != want {
						t.Fatalf("seed %d step %d lane %d/%d: lane output %v != scalar %v for %s",
							seed, step, l, lanes, got, want, formulas[i])
					}
				}
			}
		}
	}
}

// TestStepLanesResetReuse proves Reset rewinds lane state completely: the
// same program re-stepped over the same widened trace reproduces identical
// masks.
func TestStepLanesResetReuse(t *testing.T) {
	schema := NewSchema()
	p := NewProgram(time.Millisecond, schema)
	tap := p.MustAdd(MustParse("once(A) & !prev(B) & hist(N < 4)"))
	if err := p.SetLanes(3); err != nil {
		t.Fatal(err)
	}
	run := func() []uint64 {
		r := rand.New(rand.NewSource(7))
		wide := NewStateWithLanes(schema, 3)
		var got []uint64
		for step := 0; step < 40; step++ {
			for l := 0; l < 3; l++ {
				wide.SetSlotBoolLane(schema.Intern("A"), l, r.Intn(2) == 0)
				wide.SetSlotBoolLane(schema.Intern("B"), l, r.Intn(2) == 0)
				wide.SetSlotNumberLane(schema.Intern("N"), l, float64(r.Intn(6)))
			}
			p.StepLanes(wide)
			got = append(got, p.OutputMask(tap))
		}
		return got
	}
	first := run()
	p.Reset()
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("step %d: mask %b after reset != %b before", i, second[i], first[i])
		}
	}
}

// TestSetLanesRejects covers the lane-mode guards: predicate atoms cannot be
// lane-stepped, and widths outside [1, MaxLanes] are invalid.
func TestSetLanesRejects(t *testing.T) {
	p := NewProgram(time.Millisecond, NewSchema())
	p.MustAdd(Pred("custom", nil, func(State) bool { return true }))
	if err := p.SetLanes(4); err == nil {
		t.Fatal("SetLanes accepted a program with a predicate atom")
	}
	q := NewProgram(time.Millisecond, NewSchema())
	q.MustAdd(Var("A"))
	if err := q.SetLanes(0); err == nil {
		t.Fatal("SetLanes(0) accepted")
	}
	if err := q.SetLanes(MaxLanes + 1); err == nil {
		t.Fatal("SetLanes(65) accepted")
	}
	if err := q.SetLanes(MaxLanes); err != nil {
		t.Fatalf("SetLanes(%d): %v", MaxLanes, err)
	}
}
