// Package temporal implements the past-time temporal logic used throughout
// the thesis "System Safety as an Emergent Property in Composite Systems"
// (Black, 2009).  Goals, subgoals and indirect-control relationships are
// expressed as formulas over discrete-time traces of system state; the
// operator set mirrors Figure 2.5 of the thesis.
//
// Time is discrete.  A Trace is a sequence of States sampled at a fixed
// period; temporal operators such as Prev (l), Once (previous-exists),
// Historically (previous-forall), Became (@) and the bounded-duration
// variants quantify over state indices.  Future-time operators (Always,
// Eventually, Next) are provided for specification and realizability
// analysis; run-time monitors only use past-time operators, matching the
// thesis' requirement that goals be finitely violable.
package temporal

import (
	"fmt"
	"math"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind int

// Value kinds.  Kinds start at one so the zero Value is distinguishable
// from a deliberately-stored boolean false or numeric zero.
const (
	KindInvalid Kind = iota
	KindBool
	KindNumber
	KindString
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindBool:
		return "bool"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	default:
		return "invalid"
	}
}

// Value is a dynamically typed state-variable value.  State variables in the
// thesis range over booleans (e.g. DoorClosed), real numbers (e.g.
// VehicleAcceleration.value) and enumerations (e.g. DriveCommand = 'STOP'),
// so Value supports exactly those three kinds.
type Value struct {
	kind Kind
	b    bool
	f    float64
	s    string
}

// Bool returns a boolean Value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Number returns a numeric Value.
func Number(f float64) Value { return Value{kind: KindNumber, f: f} }

// String returns a string (enumeration) Value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Kind reports the dynamic kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value holds data of any kind.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsBool returns the boolean content.  Numeric values are truthy when
// non-zero and string values when non-empty, so that atoms such as
// "sw.active" work over any representation an author chose.
func (v Value) AsBool() bool {
	switch v.kind {
	case KindBool:
		return v.b
	case KindNumber:
		return v.f != 0
	case KindString:
		return v.s != ""
	default:
		return false
	}
}

// AsNumber returns the numeric content; booleans map to 0/1 and strings to
// NaN so that comparisons against them are always false.
func (v Value) AsNumber() float64 {
	switch v.kind {
	case KindNumber:
		return v.f
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	default:
		return math.NaN()
	}
}

// AsString returns the string content; non-string values are formatted.
func (v Value) AsString() string {
	switch v.kind {
	case KindString:
		return v.s
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindNumber:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return ""
	}
}

// Equal reports whether two values are equal.  Values of different kinds are
// never equal except that comparing a number with a bool compares 0/1.
func (v Value) Equal(o Value) bool {
	if v.kind == o.kind {
		switch v.kind {
		case KindBool:
			return v.b == o.b
		case KindNumber:
			return v.f == o.f
		case KindString:
			return v.s == o.s
		default:
			return true
		}
	}
	if (v.kind == KindNumber && o.kind == KindBool) || (v.kind == KindBool && o.kind == KindNumber) {
		return v.AsNumber() == o.AsNumber()
	}
	return false
}

// GoString implements fmt.GoStringer for debugging output.
func (v Value) GoString() string { return v.String() }

// String renders the value as it appears in formal goal definitions.
func (v Value) String() string {
	switch v.kind {
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindNumber:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return fmt.Sprintf("'%s'", v.s)
	default:
		return "<invalid>"
	}
}
