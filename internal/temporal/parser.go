package temporal

import (
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"
)

// Parse parses a formula written in the library's ASCII notation.  The
// grammar mirrors the thesis' formal goal definitions:
//
//	P => Q                  entailment / implication
//	P <=> Q                 equivalence
//	P & Q, P | Q, !P        conjunction, disjunction, negation
//	prev(P)                 l P
//	once(P), hist(P)        previously-exists, previously-forall
//	became(P)               @P
//	prevfor[200ms](P)       l n<T P
//	prevwithin[200ms](P)    l <T P
//	initially(P)            S0 |= P
//	next(P), eventually(P), always(P)
//	DoorClosed              boolean variable
//	va.value <= 2           numeric comparison
//	drc == 'STOP'           string (enumeration) comparison
//	es == drs               variable-to-variable comparison
//
// Identifiers may contain letters, digits, '_' and '.'.  Durations use Go's
// time.ParseDuration syntax.
func Parse(input string) (Formula, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("temporal: unexpected trailing input %q", p.peek().text)
	}
	return f, nil
}

// MustParse is like Parse but panics on error; intended for statically known
// formulas such as those in the goal catalogues.
func MustParse(input string) Formula {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

type tokenKind int

const (
	tokIdent tokenKind = iota + 1
	tokNumber
	tokString
	tokOp
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "(", pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")", pos: i})
			i++
		case c == '[':
			toks = append(toks, token{kind: tokLBracket, text: "[", pos: i})
			i++
		case c == ']':
			toks = append(toks, token{kind: tokRBracket, text: "]", pos: i})
			i++
		case c == '\'':
			j := i + 1
			for j < len(input) && input[j] != '\'' {
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("temporal: unterminated string literal at %d", i)
			}
			toks = append(toks, token{kind: tokString, text: input[i+1 : j], pos: i})
			i = j + 1
		case strings.ContainsRune("<>=!&|", c):
			j := i
			for j < len(input) && strings.ContainsRune("<>=!&|", rune(input[j])) {
				j++
			}
			toks = append(toks, token{kind: tokOp, text: input[i:j], pos: i})
			i = j
		case unicode.IsDigit(c) || c == '-' || c == '+':
			j := i + 1
			for j < len(input) && (unicode.IsDigit(rune(input[j])) || input[j] == '.' ||
				input[j] == 'e' || input[j] == 'E' ||
				((input[j] == '-' || input[j] == '+') && (input[j-1] == 'e' || input[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) ||
				input[j] == '_' || input[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: input[i:j], pos: i})
			i = j
		default:
			return nil, fmt.Errorf("temporal: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEnd() bool { return p.peek().kind == tokEOF }

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return token{}, fmt.Errorf("temporal: expected %s at %d, got %q", what, t.pos, t.text)
	}
	return t, nil
}

func (p *parser) parseFormula() (Formula, error) { return p.parseIff() }

func (p *parser) parseIff() (Formula, error) {
	left, err := p.parseImplies()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && p.peek().text == "<=>" {
		p.next()
		right, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		left = Iff(left, right)
	}
	return left, nil
}

func (p *parser) parseImplies() (Formula, error) {
	left, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokOp && p.peek().text == "=>" {
		p.next()
		right, err := p.parseImplies() // right associative
		if err != nil {
			return nil, err
		}
		return Implies(left, right), nil
	}
	return left, nil
}

func (p *parser) parseOr() (Formula, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	parts := []Formula{left}
	for (p.peek().kind == tokOp && (p.peek().text == "|" || p.peek().text == "||")) ||
		(p.peek().kind == tokIdent && p.peek().text == "or") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		parts = append(parts, right)
	}
	if len(parts) == 1 {
		return left, nil
	}
	return Or(parts...), nil
}

func (p *parser) parseAnd() (Formula, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	parts := []Formula{left}
	for (p.peek().kind == tokOp && (p.peek().text == "&" || p.peek().text == "&&")) ||
		(p.peek().kind == tokIdent && p.peek().text == "and") {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		parts = append(parts, right)
	}
	if len(parts) == 1 {
		return left, nil
	}
	return And(parts...), nil
}

func (p *parser) parseUnary() (Formula, error) {
	t := p.peek()
	if t.kind == tokOp && (t.text == "!" || t.text == "!!") {
		p.next()
		if t.text == "!!" {
			inner, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return inner, nil
		}
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(inner), nil
	}
	if t.kind == tokIdent {
		switch t.text {
		case "prev", "once", "hist", "became", "initially", "next", "eventually", "always", "not":
			p.next()
			inner, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			switch t.text {
			case "prev":
				return Prev(inner), nil
			case "once":
				return Once(inner), nil
			case "hist":
				return Historically(inner), nil
			case "became":
				return Became(inner), nil
			case "initially":
				return Initially(inner), nil
			case "next":
				return Next(inner), nil
			case "eventually":
				return Eventually(inner), nil
			case "always":
				return Always(inner), nil
			case "not":
				return Not(inner), nil
			}
		case "prevfor", "prevwithin":
			p.next()
			if _, err := p.expect(tokLBracket, "'['"); err != nil {
				return nil, err
			}
			var durText strings.Builder
			for p.peek().kind != tokRBracket && p.peek().kind != tokEOF {
				durText.WriteString(p.next().text)
			}
			if _, err := p.expect(tokRBracket, "']'"); err != nil {
				return nil, err
			}
			d, err := time.ParseDuration(durText.String())
			if err != nil {
				return nil, fmt.Errorf("temporal: bad duration %q: %w", durText.String(), err)
			}
			inner, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if t.text == "prevfor" {
				return PrevFor(inner, d), nil
			}
			return PrevWithin(inner, d), nil
		}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Formula, error) {
	t := p.next()
	switch t.kind {
	case tokLParen:
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return f, nil
	case tokIdent:
		switch t.text {
		case "true":
			return True, nil
		case "false":
			return False, nil
		}
		// Possibly a comparison.
		if p.peek().kind == tokOp {
			opTok := p.peek()
			op, ok := parseCompareOp(opTok.text)
			if ok {
				p.next()
				rhs := p.next()
				switch rhs.kind {
				case tokNumber:
					n, err := strconv.ParseFloat(rhs.text, 64)
					if err != nil {
						return nil, fmt.Errorf("temporal: bad number %q: %w", rhs.text, err)
					}
					return Compare(t.text, op, Number(n)), nil
				case tokString:
					return Compare(t.text, op, String(rhs.text)), nil
				case tokIdent:
					switch rhs.text {
					case "true":
						return Compare(t.text, op, Bool(true)), nil
					case "false":
						return Compare(t.text, op, Bool(false)), nil
					default:
						return CompareVars(t.text, op, rhs.text), nil
					}
				default:
					return nil, fmt.Errorf("temporal: expected comparison operand at %d, got %q", rhs.pos, rhs.text)
				}
			}
		}
		return Var(t.text), nil
	default:
		return nil, fmt.Errorf("temporal: unexpected token %q at %d", t.text, t.pos)
	}
}

func parseCompareOp(s string) (CompareOp, bool) {
	switch s {
	case "==", "=":
		return OpEq, true
	case "!=":
		return OpNe, true
	case "<":
		return OpLt, true
	case "<=":
		return OpLe, true
	case ">":
		return OpGt, true
	case ">=":
		return OpGe, true
	default:
		return 0, false
	}
}
