package temporal

import (
	"reflect"
	"testing"
	"time"
)

func TestStateSetGet(t *testing.T) {
	s := NewState().
		SetBool("DoorClosed", true).
		SetNumber("ElevatorSpeed", 0.5).
		SetString("DriveCommand", "GO")

	if !s.Bool("DoorClosed") {
		t.Error("DoorClosed should be true")
	}
	if got := s.Number("ElevatorSpeed"); got != 0.5 {
		t.Errorf("ElevatorSpeed = %v, want 0.5", got)
	}
	if got := s.StringVal("DriveCommand"); got != "GO" {
		t.Errorf("DriveCommand = %q, want GO", got)
	}
	if s.Has("Missing") {
		t.Error("Missing should not be present")
	}
	if !s.Has("DoorClosed") {
		t.Error("DoorClosed should be present")
	}
}

func TestStateClone(t *testing.T) {
	s := NewState().SetBool("A", true)
	c := s.Clone()
	c.SetBool("A", false)
	if !s.Bool("A") {
		t.Error("Clone must not alias the original state")
	}
}

func TestStateNamesSorted(t *testing.T) {
	s := NewState().SetBool("zeta", true).SetBool("alpha", true).SetBool("mid", true)
	want := []string{"alpha", "mid", "zeta"}
	if got := s.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
}

func TestStateString(t *testing.T) {
	s := NewState().SetBool("B", true).SetNumber("A", 1)
	if got := s.String(); got != "{A=1, B=true}" {
		t.Errorf("String() = %q", got)
	}
}

func TestTraceAppendAndAt(t *testing.T) {
	tr := NewTrace(time.Millisecond)
	tr.Append(NewState().SetNumber("x", 0))
	tr.AppendClone(NewState().SetNumber("x", 1))
	if tr.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", tr.Len())
	}
	if got := tr.At(1).Number("x"); got != 1 {
		t.Errorf("At(1).x = %v, want 1", got)
	}
	if got := tr.Last().Number("x"); got != 1 {
		t.Errorf("Last().x = %v, want 1", got)
	}
	if got := tr.Time(2); got != 2*time.Millisecond {
		t.Errorf("Time(2) = %v", got)
	}
}

func TestTraceDefaultPeriod(t *testing.T) {
	tr := NewTrace(0)
	if tr.Period != time.Millisecond {
		t.Errorf("default period = %v, want 1ms", tr.Period)
	}
}

func TestTraceEmptyLast(t *testing.T) {
	tr := NewTrace(time.Millisecond)
	if tr.Last() != nil {
		t.Error("Last() on empty trace should be nil")
	}
}

func TestTraceStepsFor(t *testing.T) {
	tr := NewTrace(time.Millisecond)
	tests := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0},
		{time.Millisecond, 1},
		{1500 * time.Microsecond, 2},
		{200 * time.Millisecond, 200},
	}
	for _, tt := range tests {
		if got := tr.StepsFor(tt.d); got != tt.want {
			t.Errorf("StepsFor(%v) = %d, want %d", tt.d, got, tt.want)
		}
	}
}

func TestTraceSlice(t *testing.T) {
	tr := NewTrace(time.Millisecond)
	for i := 0; i < 5; i++ {
		tr.Append(NewState().SetNumber("x", float64(i)))
	}
	sub := tr.Slice(1, 3)
	if sub.Len() != 2 {
		t.Fatalf("Slice len = %d, want 2", sub.Len())
	}
	if got := sub.At(0).Number("x"); got != 1 {
		t.Errorf("Slice At(0).x = %v, want 1", got)
	}
	// Out-of-range bounds are clamped rather than panicking.
	if got := tr.Slice(-2, 100).Len(); got != 5 {
		t.Errorf("clamped slice len = %d, want 5", got)
	}
	if got := tr.Slice(4, 2).Len(); got != 0 {
		t.Errorf("inverted slice len = %d, want 0", got)
	}
}

func TestTraceSeries(t *testing.T) {
	tr := NewTrace(time.Millisecond)
	for i := 0; i < 3; i++ {
		tr.Append(NewState().SetNumber("a", float64(i)*2).SetBool("b", i%2 == 0))
	}
	if got := tr.Series("a"); !reflect.DeepEqual(got, []float64{0, 2, 4}) {
		t.Errorf("Series = %v", got)
	}
	if got := tr.BoolSeries("b"); !reflect.DeepEqual(got, []bool{true, false, true}) {
		t.Errorf("BoolSeries = %v", got)
	}
}

// TestNilStateReads locks the nil-State contract: nil is the absent snapshot
// (e.g. the last state of an empty trace) and every read treats it as a
// state with no variables, as the map-backed representation did.
func TestNilStateReads(t *testing.T) {
	var s State
	if s.Get("x").IsValid() {
		t.Error("nil state Get should be invalid")
	}
	if s.Has("x") {
		t.Error("nil state Has should be false")
	}
	if s.Bool("x") {
		t.Error("nil state Bool should be false")
	}
	if n := s.Number("x"); n == n { // NaN
		t.Errorf("nil state Number = %v, want NaN", n)
	}
	if got := s.StringVal("x"); got != "" {
		t.Errorf("nil state StringVal = %q, want empty", got)
	}
	if s.Slot(0).IsValid() {
		t.Error("nil state Slot should be invalid")
	}
	if s.Schema() != nil {
		t.Error("nil state Schema should be nil")
	}
	if names := s.Names(); names != nil {
		t.Errorf("nil state Names = %v, want nil", names)
	}
	if got := s.String(); got != "{}" {
		t.Errorf("nil state String = %q, want {}", got)
	}
	if c := s.Clone(); c == nil || c.Has("x") {
		t.Error("cloning the nil state should yield a fresh empty state")
	}

	// A stepper observing the nil state treats every atom as absent.
	st := MustCompile(MustParse("x > 1 | flag"), 0)
	if st.Step(nil) {
		t.Error("slot stepper over the nil state should be false")
	}
	ref, err := CompileReference(MustParse("x > 1 | flag"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Step(nil) {
		t.Error("reference stepper over the nil state should be false")
	}
}
