package temporal

import (
	"reflect"
	"testing"
	"time"
)

func TestParseAtoms(t *testing.T) {
	tr := NewTrace(time.Millisecond)
	tr.Append(NewState().
		SetBool("DoorClosed", true).
		SetNumber("va.value", 1.5).
		SetString("drc", "STOP").
		SetNumber("limit", 2))

	tests := []struct {
		expr string
		want bool
	}{
		{"true", true},
		{"false", false},
		{"DoorClosed", true},
		{"!DoorClosed", false},
		{"va.value <= 2", true},
		{"va.value > 2", false},
		{"va.value >= 1.5", true},
		{"va.value < 1.5", false},
		{"va.value != 1.5", false},
		{"drc == 'STOP'", true},
		{"drc != 'STOP'", false},
		{"va.value <= limit", true},
		{"DoorClosed == true", true},
		{"DoorClosed == false", false},
		{"missing", false},
	}
	for _, tt := range tests {
		t.Run(tt.expr, func(t *testing.T) {
			f, err := Parse(tt.expr)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.expr, err)
			}
			if got := f.Eval(tr, 0); got != tt.want {
				t.Errorf("Eval(%q) = %v, want %v", tt.expr, got, tt.want)
			}
		})
	}
}

func TestParseConnectivesAndPrecedence(t *testing.T) {
	tr := boolTrace(t, map[string][]bool{
		"A": {true},
		"B": {false},
		"C": {true},
	})
	tests := []struct {
		expr string
		want bool
	}{
		{"A & B", false},
		{"A | B", true},
		{"A and C", true},
		{"A or B", true},
		{"A & B | C", true},   // (A&B) | C
		{"A & (B | C)", true}, // A & (B|C)
		{"B => A", true},      // implication
		{"A => B", false},
		{"A <=> C", true},
		{"A <=> B", false},
		{"!B & A", true},
		{"A => B => C", true}, // right assoc: A => (B => C)
		{"A && C", true},
		{"A || B", true},
		{"not B", true},
		{"!!A", true},
	}
	for _, tt := range tests {
		t.Run(tt.expr, func(t *testing.T) {
			f, err := Parse(tt.expr)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.expr, err)
			}
			if got := f.Eval(tr, 0); got != tt.want {
				t.Errorf("Eval(%q) = %v, want %v", tt.expr, got, tt.want)
			}
		})
	}
}

func TestParseTemporalOperators(t *testing.T) {
	f, err := Parse("prev(A) & once(B) & hist(C) & became(D) & initially(E)")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"A", "B", "C", "D", "E"}
	if got := f.Vars(); !reflect.DeepEqual(got, want) {
		t.Errorf("Vars() = %v, want %v", got, want)
	}
	if !IsPastTime(f) {
		t.Error("parsed formula should be past-time")
	}

	g, err := Parse("eventually(A) | next(B) | always(C)")
	if err != nil {
		t.Fatal(err)
	}
	if IsPastTime(g) {
		t.Error("future operators should parse as future-time formulas")
	}
}

func TestParseBoundedOperators(t *testing.T) {
	tr := boolTrace(t, map[string][]bool{"P": {true, true, true, false}})
	f, err := Parse("prevfor[2ms](P)")
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, false, true, true}
	if got := evalAll(f, tr); !reflect.DeepEqual(got, want) {
		t.Errorf("prevfor = %v, want %v", got, want)
	}

	g, err := Parse("prevwithin[200ms](P)")
	if err != nil {
		t.Fatal(err)
	}
	if !g.Eval(tr, 3) {
		t.Error("prevwithin[200ms](P) should hold at index 3")
	}
}

func TestParseThesisGoalFormulas(t *testing.T) {
	// Representative formal definitions from the thesis, written in the
	// library's ASCII notation.
	exprs := []string{
		// Goal 1, Achieve[AutoAccelBelowThreshold]
		"va.sourceIsSubsystem => va.value <= 2",
		// Maintain[DoorClosedOrElevatorStopped]
		"dc | IsStopped_es",
		// Subgoal from Table 4.4
		"(prev(!IsStopped_es | drc == 'GO') & prev(!db)) => dmc == 'CLOSE'",
		// Maintain[DriveStoppedWhenOverweight]
		"prev(ew > wt) => IsStopped_es",
		// Achieve[StopBeforeHoistwayUpperLimit]
		"prev(etp >= 390.5) => drc == 'STOP'",
	}
	for _, e := range exprs {
		if _, err := Parse(e); err != nil {
			t.Errorf("Parse(%q): %v", e, err)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	// Parsing the String() form of a parsed formula yields an equivalent
	// formula (checked over a small trace).
	exprs := []string{
		"(A & B) => prev(C)",
		"once(A) | hist(!B)",
		"became(A) <=> (A & !prev(A))",
		"x <= 2 & y == 'GO'",
	}
	tr := NewTrace(time.Millisecond)
	for i := 0; i < 6; i++ {
		tr.Append(NewState().
			SetBool("A", i%2 == 0).
			SetBool("B", i%3 == 0).
			SetBool("C", i%4 == 0).
			SetNumber("x", float64(i)).
			SetString("y", map[bool]string{true: "GO", false: "STOP"}[i%2 == 0]))
	}
	for _, e := range exprs {
		f1, err := Parse(e)
		if err != nil {
			t.Fatalf("Parse(%q): %v", e, err)
		}
		f2, err := Parse(f1.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", f1.String(), err)
		}
		for i := 0; i < tr.Len(); i++ {
			if f1.Eval(tr, i) != f2.Eval(tr, i) {
				t.Errorf("round-trip of %q differs at index %d", e, i)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(A",
		"A &",
		"A => ",
		"A ~ B",
		"prevfor[](A)",
		"prevfor[2ms(A)",
		"prevfor[xyz](A)",
		"A == ",
		"'unterminated",
		"A B",
		"2abc",
		"== B",
		"A == ==",
	}
	for _, e := range bad {
		if _, err := Parse(e); err == nil {
			t.Errorf("Parse(%q) should fail", e)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on a bad formula")
		}
	}()
	MustParse("(((")
}

func TestMustParseOK(t *testing.T) {
	f := MustParse("A => B")
	if f == nil {
		t.Fatal("MustParse returned nil")
	}
}

func TestParseNumberForms(t *testing.T) {
	tr := NewTrace(time.Millisecond)
	tr.Append(NewState().SetNumber("x", -2.5e-1))
	f, err := Parse("x == -0.25")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Eval(tr, 0) {
		t.Error("negative scientific-notation number did not parse correctly")
	}
}
