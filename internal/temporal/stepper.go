package temporal

import (
	"fmt"
	"time"
)

// Stepper is an incremental evaluator for a past-time formula.  A Stepper
// consumes one state per simulation step and reports whether the formula
// holds at that step, without re-scanning the trace.  Run-time goal monitors
// are built on Steppers so that monitoring cost is constant per state, which
// is what makes the thesis' hierarchical monitoring practical in an embedded
// setting.
type Stepper struct {
	root    stepNode
	current *Trace // single reusable state used to evaluate atoms
	steps   int
}

// Compile builds an incremental evaluator for a past-time formula.  The
// period is the simulation state period used to convert the bounded-past
// operators' durations into step counts; a zero period defaults to 1 ms.
// Compile returns an error when the formula contains future-time operators,
// which cannot be monitored incrementally.
func Compile(f Formula, period time.Duration) (*Stepper, error) {
	if period <= 0 {
		period = time.Millisecond
	}
	if !IsPastTime(f) {
		return nil, fmt.Errorf("temporal: formula %q contains future-time operators and cannot be compiled to a run-time monitor", f)
	}
	scratch := NewTrace(period)
	scratch.Append(NewState())
	s := &Stepper{current: scratch}
	root, err := s.compile(f, period)
	if err != nil {
		return nil, err
	}
	s.root = root
	return s, nil
}

// MustCompile is like Compile but panics on error.  It is intended for
// statically known formulas such as the thesis' goal catalogue.
func MustCompile(f Formula, period time.Duration) *Stepper {
	s, err := Compile(f, period)
	if err != nil {
		panic(err)
	}
	return s
}

// Step feeds the next state and reports whether the formula holds at it.
func (s *Stepper) Step(st State) bool {
	s.current.states[0] = st
	r := s.root.step(s)
	s.steps++
	return r
}

// Steps returns the number of states consumed so far.
func (s *Stepper) Steps() int { return s.steps }

// Reset clears all temporal operator state so the Stepper can be reused for
// a fresh trace.
func (s *Stepper) Reset() {
	s.steps = 0
	s.root.reset()
}

// stepNode is one node of the compiled evaluator tree.
type stepNode interface {
	step(s *Stepper) bool
	reset()
}

func (s *Stepper) compile(f Formula, period time.Duration) (stepNode, error) {
	switch ff := f.(type) {
	case constFormula, varFormula, compareFormula, compareVarsFormula, predFormula:
		return &atomNode{f: f}, nil
	case notFormula:
		c, err := s.compile(ff.f, period)
		if err != nil {
			return nil, err
		}
		return &notNode{c: c}, nil
	case andFormula:
		cs, err := s.compileAll(ff.fs, period)
		if err != nil {
			return nil, err
		}
		return &andNode{cs: cs}, nil
	case orFormula:
		cs, err := s.compileAll(ff.fs, period)
		if err != nil {
			return nil, err
		}
		return &orNode{cs: cs}, nil
	case impliesFormula:
		a, err := s.compile(ff.ant, period)
		if err != nil {
			return nil, err
		}
		b, err := s.compile(ff.con, period)
		if err != nil {
			return nil, err
		}
		return &impliesNode{a: a, b: b}, nil
	case iffFormula:
		a, err := s.compile(ff.a, period)
		if err != nil {
			return nil, err
		}
		b, err := s.compile(ff.b, period)
		if err != nil {
			return nil, err
		}
		return &iffNode{a: a, b: b}, nil
	case prevFormula:
		c, err := s.compile(ff.f, period)
		if err != nil {
			return nil, err
		}
		return &prevNode{c: c}, nil
	case onceFormula:
		c, err := s.compile(ff.f, period)
		if err != nil {
			return nil, err
		}
		return &onceNode{c: c}, nil
	case historicallyFormula:
		c, err := s.compile(ff.f, period)
		if err != nil {
			return nil, err
		}
		return &histNode{c: c, allPrev: true}, nil
	case becameFormula:
		c, err := s.compile(ff.f, period)
		if err != nil {
			return nil, err
		}
		return &becameNode{c: c}, nil
	case prevForFormula:
		c, err := s.compile(ff.f, period)
		if err != nil {
			return nil, err
		}
		return &prevForNode{c: c, n: stepsFor(ff.d, period)}, nil
	case prevWithinFormula:
		c, err := s.compile(ff.f, period)
		if err != nil {
			return nil, err
		}
		return &prevWithinNode{c: c, n: stepsFor(ff.d, period), lastTrue: -1}, nil
	case initiallyFormula:
		c, err := s.compile(ff.f, period)
		if err != nil {
			return nil, err
		}
		return &initiallyNode{c: c}, nil
	default:
		return nil, fmt.Errorf("temporal: cannot compile formula node %T", f)
	}
}

func (s *Stepper) compileAll(fs []Formula, period time.Duration) ([]stepNode, error) {
	out := make([]stepNode, len(fs))
	for i, f := range fs {
		c, err := s.compile(f, period)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

func stepsFor(d, period time.Duration) int {
	if d <= 0 {
		return 0
	}
	steps := int((d + period - 1) / period)
	if steps < 1 {
		steps = 1
	}
	return steps
}

type atomNode struct{ f Formula }

func (n *atomNode) step(s *Stepper) bool { return n.f.Eval(s.current, 0) }
func (n *atomNode) reset()               {}

type notNode struct{ c stepNode }

func (n *notNode) step(s *Stepper) bool { return !n.c.step(s) }
func (n *notNode) reset()               { n.c.reset() }

type andNode struct{ cs []stepNode }

func (n *andNode) step(s *Stepper) bool {
	// Every child is stepped even after the result is known so that all
	// temporal sub-operators advance their internal state.
	out := true
	for _, c := range n.cs {
		if !c.step(s) {
			out = false
		}
	}
	return out
}
func (n *andNode) reset() {
	for _, c := range n.cs {
		c.reset()
	}
}

type orNode struct{ cs []stepNode }

func (n *orNode) step(s *Stepper) bool {
	out := false
	for _, c := range n.cs {
		if c.step(s) {
			out = true
		}
	}
	return out
}
func (n *orNode) reset() {
	for _, c := range n.cs {
		c.reset()
	}
}

type impliesNode struct{ a, b stepNode }

func (n *impliesNode) step(s *Stepper) bool {
	av := n.a.step(s)
	bv := n.b.step(s)
	return !av || bv
}
func (n *impliesNode) reset() { n.a.reset(); n.b.reset() }

type iffNode struct{ a, b stepNode }

func (n *iffNode) step(s *Stepper) bool {
	av := n.a.step(s)
	bv := n.b.step(s)
	return av == bv
}
func (n *iffNode) reset() { n.a.reset(); n.b.reset() }

type prevNode struct {
	c    stepNode
	prev bool
}

func (n *prevNode) step(s *Stepper) bool {
	out := s.steps > 0 && n.prev
	n.prev = n.c.step(s)
	return out
}
func (n *prevNode) reset() { n.prev = false }

type onceNode struct {
	c    stepNode
	seen bool
}

func (n *onceNode) step(s *Stepper) bool {
	out := n.seen
	if n.c.step(s) {
		n.seen = true
	}
	return out
}
func (n *onceNode) reset() { n.seen = false; n.c.reset() }

type histNode struct {
	c       stepNode
	allPrev bool
}

func (n *histNode) step(s *Stepper) bool {
	out := n.allPrev
	if !n.c.step(s) {
		n.allPrev = false
	}
	return out
}
func (n *histNode) reset() { n.allPrev = true; n.c.reset() }

type becameNode struct {
	c        stepNode
	prevTrue bool
}

func (n *becameNode) step(s *Stepper) bool {
	cur := n.c.step(s)
	out := cur && !n.prevTrue
	n.prevTrue = cur
	return out
}
func (n *becameNode) reset() { n.prevTrue = false; n.c.reset() }

type prevForNode struct {
	c   stepNode
	n   int
	run int
}

func (n *prevForNode) step(s *Stepper) bool {
	out := n.n == 0 || (s.steps >= n.n && n.run >= n.n)
	if n.c.step(s) {
		n.run++
	} else {
		n.run = 0
	}
	return out
}
func (n *prevForNode) reset() { n.run = 0; n.c.reset() }

type prevWithinNode struct {
	c        stepNode
	n        int
	lastTrue int
}

func (n *prevWithinNode) step(s *Stepper) bool {
	i := s.steps
	out := n.lastTrue >= 0 && i-n.lastTrue <= n.n
	if n.c.step(s) {
		n.lastTrue = i
	}
	return out
}
func (n *prevWithinNode) reset() { n.lastTrue = -1; n.c.reset() }

type initiallyNode struct {
	c       stepNode
	have    bool
	initial bool
}

func (n *initiallyNode) step(s *Stepper) bool {
	cur := n.c.step(s)
	if !n.have {
		n.initial = cur
		n.have = true
	}
	return n.initial
}
func (n *initiallyNode) reset() { n.have = false; n.initial = false; n.c.reset() }
