package temporal

import (
	"fmt"
	"time"
)

// Stepper is an incremental evaluator for a past-time formula.  A Stepper
// consumes one state per simulation step and reports whether the formula
// holds at that step, without re-scanning the trace.  Run-time goal monitors
// are built on Steppers so that monitoring cost is constant per state, which
// is what makes the thesis' hierarchical monitoring practical in an embedded
// setting.
//
// Atom formulas (variables, comparisons, predicates) are compiled to
// slot-indexed nodes: the variable name is resolved against the observed
// state's Schema once — at compile time when CompileWithSchema is given the
// scenario's schema, otherwise on the first step — and every subsequent step
// is an array load, never a string hash.
type Stepper struct {
	root    stepNode
	state   State  // the state being evaluated this step
	scratch *Trace // single reusable state for generic (reference) atoms
	steps   int
}

// Compile builds an incremental evaluator for a past-time formula.  The
// period is the simulation state period used to convert the bounded-past
// operators' durations into step counts; a zero period defaults to 1 ms.
// Compile returns an error when the formula contains future-time operators,
// which cannot be monitored incrementally.
//
// Atoms resolve their slot indices lazily against the schema of the first
// observed state; monitors that know their scenario's schema up front should
// use CompileWithSchema, which resolves them at compile time.
func Compile(f Formula, period time.Duration) (*Stepper, error) {
	return CompileWithSchema(f, period, nil)
}

// CompileWithSchema is Compile with the scenario's symbol table: every atom
// is resolved to its slot index at compile time (interning names the schema
// has not seen), so even the first step of the monitor is hash-free.
func CompileWithSchema(f Formula, period time.Duration, schema *Schema) (*Stepper, error) {
	return compileStepper(f, period, schema, false)
}

// CompileReference builds a Stepper whose atoms are evaluated through the
// generic Formula.Eval string-keyed path on every step — the behaviour of
// the map-backed State representation.  It exists as the reference
// implementation the differential tests compare the slot-indexed compiler
// against; hot paths should use Compile or CompileWithSchema.
func CompileReference(f Formula, period time.Duration) (*Stepper, error) {
	return compileStepper(f, period, nil, true)
}

func compileStepper(f Formula, period time.Duration, schema *Schema, reference bool) (*Stepper, error) {
	if period <= 0 {
		period = time.Millisecond
	}
	if !IsPastTime(f) {
		return nil, fmt.Errorf("temporal: formula %q contains future-time operators and cannot be compiled to a run-time monitor", f)
	}
	c := &compiler{period: period, schema: schema, reference: reference}
	root, err := c.compile(f)
	if err != nil {
		return nil, err
	}
	s := &Stepper{root: root}
	if reference {
		// Only reference-mode atoms evaluate through Formula.Eval and need
		// the one-state scratch trace; slot-mode steppers never touch it.
		s.scratch = NewTrace(period)
		s.scratch.Append(NewState())
	}
	return s, nil
}

// MustCompile is like Compile but panics on error.  It is intended for
// statically known formulas such as the thesis' goal catalogue.
func MustCompile(f Formula, period time.Duration) *Stepper {
	s, err := Compile(f, period)
	if err != nil {
		panic(err)
	}
	return s
}

// Step feeds the next state and reports whether the formula holds at it.
func (s *Stepper) Step(st State) bool {
	s.state = st
	if s.scratch != nil {
		s.scratch.states[0] = st
	}
	r := s.root.step(s)
	s.steps++
	return r
}

// Steps returns the number of states consumed so far.
func (s *Stepper) Steps() int { return s.steps }

// Reset clears all temporal operator state so the Stepper can be reused for
// a fresh trace.
func (s *Stepper) Reset() {
	s.steps = 0
	s.root.reset()
}

// stepNode is one node of the compiled evaluator tree.
type stepNode interface {
	step(s *Stepper) bool
	reset()
}

// compiler lowers a Formula tree into stepNodes.  When schema is non-nil
// atoms are resolved to slot indices here, at compile time; when reference is
// set atoms are lowered to the generic Formula.Eval path instead.
type compiler struct {
	period    time.Duration
	schema    *Schema
	reference bool
}

func (c *compiler) compile(f Formula) (stepNode, error) {
	switch ff := f.(type) {
	case constFormula, varFormula, compareFormula, compareVarsFormula, predFormula:
		return c.compileAtom(f)
	case notFormula:
		n, err := c.compile(ff.f)
		if err != nil {
			return nil, err
		}
		return &notNode{c: n}, nil
	case andFormula:
		cs, err := c.compileAll(ff.fs)
		if err != nil {
			return nil, err
		}
		return &andNode{cs: cs}, nil
	case orFormula:
		cs, err := c.compileAll(ff.fs)
		if err != nil {
			return nil, err
		}
		return &orNode{cs: cs}, nil
	case impliesFormula:
		a, err := c.compile(ff.ant)
		if err != nil {
			return nil, err
		}
		b, err := c.compile(ff.con)
		if err != nil {
			return nil, err
		}
		return &impliesNode{a: a, b: b}, nil
	case iffFormula:
		a, err := c.compile(ff.a)
		if err != nil {
			return nil, err
		}
		b, err := c.compile(ff.b)
		if err != nil {
			return nil, err
		}
		return &iffNode{a: a, b: b}, nil
	case prevFormula:
		n, err := c.compile(ff.f)
		if err != nil {
			return nil, err
		}
		return &prevNode{c: n}, nil
	case onceFormula:
		n, err := c.compile(ff.f)
		if err != nil {
			return nil, err
		}
		return &onceNode{c: n}, nil
	case historicallyFormula:
		n, err := c.compile(ff.f)
		if err != nil {
			return nil, err
		}
		return &histNode{c: n, allPrev: true}, nil
	case becameFormula:
		n, err := c.compile(ff.f)
		if err != nil {
			return nil, err
		}
		return &becameNode{c: n}, nil
	case prevForFormula:
		n, err := c.compile(ff.f)
		if err != nil {
			return nil, err
		}
		return &prevForNode{c: n, n: stepsFor(ff.d, c.period)}, nil
	case prevWithinFormula:
		n, err := c.compile(ff.f)
		if err != nil {
			return nil, err
		}
		return &prevWithinNode{c: n, n: stepsFor(ff.d, c.period), lastTrue: -1}, nil
	case initiallyFormula:
		n, err := c.compile(ff.f)
		if err != nil {
			return nil, err
		}
		return &initiallyNode{c: n}, nil
	default:
		return nil, fmt.Errorf("temporal: cannot compile formula node %T", f)
	}
}

// compileAtom lowers an atomic formula to a slot-indexed node reading the
// register planes directly (or to the generic Eval node in reference mode).
// The lowering mirrors the Program compiler: comparisons against an
// enumeration-string constant become an id compare on the enumeration plane,
// every other comparison a float compare on the number plane.
func (c *compiler) compileAtom(f Formula) (stepNode, error) {
	if c.reference {
		return &atomNode{f: f}, nil
	}
	switch ff := f.(type) {
	case constFormula:
		return constNode(bool(ff)), nil
	case varFormula:
		return &varNode{ref: c.slotRef(ff.name)}, nil
	case compareFormula:
		if ff.val.kind == KindString && (ff.op == OpEq || ff.op == OpNe) {
			return &compareStrNode{ref: c.slotRef(ff.name), op: ff.op, eref: c.enumRef(ff.val.s)}, nil
		}
		return &compareNode{ref: c.slotRef(ff.name), op: ff.op, cval: ff.val.AsNumber()}, nil
	case compareVarsFormula:
		return &compareVarsNode{left: c.slotRef(ff.left), op: ff.op, right: c.slotRef(ff.right)}, nil
	case predFormula:
		return &predNode{fn: ff.fn}, nil
	default:
		return nil, fmt.Errorf("temporal: cannot compile atom node %T", f)
	}
}

func (c *compiler) compileAll(fs []Formula) ([]stepNode, error) {
	out := make([]stepNode, len(fs))
	for i, f := range fs {
		n, err := c.compile(f)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

func (c *compiler) slotRef(name string) slotRef {
	r := slotRef{name: name}
	if c.schema != nil {
		r.schema = c.schema
		r.slot = c.schema.Intern(name)
	}
	return r
}

func (c *compiler) enumRef(s string) enumRef {
	e := enumRef{s: s}
	if c.schema != nil {
		e.schema = c.schema
		e.id = c.schema.InternString(s)
	}
	return e
}

func stepsFor(d, period time.Duration) int {
	if d <= 0 {
		return 0
	}
	steps := int((d + period - 1) / period)
	if steps < 1 {
		steps = 1
	}
	return steps
}

// slotRef is a variable reference resolved to a register slot.  The slot is
// bound to one Schema: when a state from a different schema is observed (the
// Stepper was compiled without a schema, or is reused across scenarios) the
// name is re-resolved once and cached, so steady-state evaluation is an
// array load guarded by one pointer compare.
type slotRef struct {
	name   string
	schema *Schema
	slot   int
}

func (r *slotRef) value(st State) Value {
	slot, ok := r.resolve(st)
	if !ok {
		return Value{}
	}
	return st.Slot(slot)
}

// resolve returns the register slot of the reference for st's schema,
// re-resolving (and caching) on a schema change.  ok is false only for the
// nil State, whose variables are all absent.
func (r *slotRef) resolve(st State) (int, bool) {
	if sc := st.Schema(); sc != r.schema {
		if sc == nil {
			return 0, false
		}
		r.schema = sc
		r.slot = sc.Intern(r.name)
	}
	return r.slot, true
}

// boolAt reads the referenced variable with AsBool semantics straight from
// the register planes.
func (r *slotRef) boolAt(st State) bool {
	slot, ok := r.resolve(st)
	return ok && st.SlotBool(slot)
}

// numberOK reads the referenced variable with AsNumber/IsValid semantics
// straight from the register planes.
func (r *slotRef) numberOK(st State) (float64, bool) {
	slot, ok := r.resolve(st)
	if !ok {
		return 0, false
	}
	return st.SlotNumberOK(slot)
}

// enumRef is an enumeration-string constant resolved to its per-schema
// interned id, guarded by the same pointer compare as slotRef, so equality
// against the constant is an int compare on the enumeration plane.
type enumRef struct {
	s      string
	schema *Schema
	id     int32
}

// idIn returns the constant's interned id in sc, re-resolving on a schema
// change.
func (e *enumRef) idIn(sc *Schema) int32 {
	if sc != e.schema {
		e.schema = sc
		e.id = sc.InternString(e.s)
	}
	return e.id
}

// atomNode evaluates an atom through the generic Formula.Eval string-keyed
// path; it is the reference-mode lowering used by CompileReference.
type atomNode struct{ f Formula }

func (n *atomNode) step(s *Stepper) bool { return n.f.Eval(s.scratch, 0) }
func (n *atomNode) reset()               {}

type constNode bool

func (n constNode) step(*Stepper) bool { return bool(n) }
func (n constNode) reset()             {}

type varNode struct{ ref slotRef }

func (n *varNode) step(s *Stepper) bool { return n.ref.boolAt(s.state) }
func (n *varNode) reset()               {}

// compareNode compares a slot against a non-string constant (or any constant
// under an ordered operator) as one float compare on the number plane; cval
// is the constant's AsNumber, so bools compare as 0/1 and string constants
// as NaN, exactly as compareValues would.
type compareNode struct {
	ref  slotRef
	op   CompareOp
	cval float64
}

func (n *compareNode) step(s *Stepper) bool {
	f, ok := n.ref.numberOK(s.state)
	return ok && compareNumbers(f, n.cval, n.op)
}
func (n *compareNode) reset() {}

// compareStrNode compares a slot for (in)equality against an enumeration
// constant as an id compare on the enumeration plane.
type compareStrNode struct {
	ref  slotRef
	op   CompareOp
	eref enumRef
}

func (n *compareStrNode) step(s *Stepper) bool {
	slot, ok := n.ref.resolve(s.state)
	if !ok {
		return false
	}
	st := s.state
	k := st.SlotKind(slot)
	if k == KindInvalid {
		return false
	}
	match := k == KindString && st.SlotStringID(slot) == n.eref.idIn(st.Schema())
	return match == (n.op == OpEq)
}
func (n *compareStrNode) reset() {}

type compareVarsNode struct {
	left  slotRef
	op    CompareOp
	right slotRef
}

func (n *compareVarsNode) step(s *Stepper) bool {
	if n.op == OpEq || n.op == OpNe {
		lv, rv := n.left.value(s.state), n.right.value(s.state)
		if !lv.IsValid() || !rv.IsValid() {
			return false
		}
		return compareValues(lv, rv, n.op)
	}
	lf, lok := n.left.numberOK(s.state)
	rf, rok := n.right.numberOK(s.state)
	return lok && rok && compareNumbers(lf, rf, n.op)
}
func (n *compareVarsNode) reset() {}

type predNode struct{ fn func(State) bool }

func (n *predNode) step(s *Stepper) bool { return n.fn(s.state) }
func (n *predNode) reset()               {}

type notNode struct{ c stepNode }

func (n *notNode) step(s *Stepper) bool { return !n.c.step(s) }
func (n *notNode) reset()               { n.c.reset() }

type andNode struct{ cs []stepNode }

func (n *andNode) step(s *Stepper) bool {
	// Every child is stepped even after the result is known so that all
	// temporal sub-operators advance their internal state.
	out := true
	for _, c := range n.cs {
		if !c.step(s) {
			out = false
		}
	}
	return out
}
func (n *andNode) reset() {
	for _, c := range n.cs {
		c.reset()
	}
}

type orNode struct{ cs []stepNode }

func (n *orNode) step(s *Stepper) bool {
	out := false
	for _, c := range n.cs {
		if c.step(s) {
			out = true
		}
	}
	return out
}
func (n *orNode) reset() {
	for _, c := range n.cs {
		c.reset()
	}
}

type impliesNode struct{ a, b stepNode }

func (n *impliesNode) step(s *Stepper) bool {
	av := n.a.step(s)
	bv := n.b.step(s)
	return !av || bv
}
func (n *impliesNode) reset() { n.a.reset(); n.b.reset() }

type iffNode struct{ a, b stepNode }

func (n *iffNode) step(s *Stepper) bool {
	av := n.a.step(s)
	bv := n.b.step(s)
	return av == bv
}
func (n *iffNode) reset() { n.a.reset(); n.b.reset() }

type prevNode struct {
	c    stepNode
	prev bool
}

func (n *prevNode) step(s *Stepper) bool {
	out := s.steps > 0 && n.prev
	n.prev = n.c.step(s)
	return out
}
func (n *prevNode) reset() { n.prev = false }

type onceNode struct {
	c    stepNode
	seen bool
}

func (n *onceNode) step(s *Stepper) bool {
	out := n.seen
	if n.c.step(s) {
		n.seen = true
	}
	return out
}
func (n *onceNode) reset() { n.seen = false; n.c.reset() }

type histNode struct {
	c       stepNode
	allPrev bool
}

func (n *histNode) step(s *Stepper) bool {
	out := n.allPrev
	if !n.c.step(s) {
		n.allPrev = false
	}
	return out
}
func (n *histNode) reset() { n.allPrev = true; n.c.reset() }

type becameNode struct {
	c        stepNode
	prevTrue bool
}

func (n *becameNode) step(s *Stepper) bool {
	cur := n.c.step(s)
	out := cur && !n.prevTrue
	n.prevTrue = cur
	return out
}
func (n *becameNode) reset() { n.prevTrue = false; n.c.reset() }

type prevForNode struct {
	c   stepNode
	n   int
	run int
}

func (n *prevForNode) step(s *Stepper) bool {
	out := n.n == 0 || (s.steps >= n.n && n.run >= n.n)
	if n.c.step(s) {
		n.run++
	} else {
		n.run = 0
	}
	return out
}
func (n *prevForNode) reset() { n.run = 0; n.c.reset() }

type prevWithinNode struct {
	c        stepNode
	n        int
	lastTrue int
}

func (n *prevWithinNode) step(s *Stepper) bool {
	i := s.steps
	out := n.lastTrue >= 0 && i-n.lastTrue <= n.n
	if n.c.step(s) {
		n.lastTrue = i
	}
	return out
}
func (n *prevWithinNode) reset() { n.lastTrue = -1; n.c.reset() }

type initiallyNode struct {
	c       stepNode
	have    bool
	initial bool
}

func (n *initiallyNode) step(s *Stepper) bool {
	cur := n.c.step(s)
	if !n.have {
		n.initial = cur
		n.have = true
	}
	return n.initial
}
func (n *initiallyNode) reset() { n.have = false; n.initial = false; n.c.reset() }
