package temporal

import (
	"math"
	"strconv"
	"testing"
)

// TestRegistersKindChangesOnOneSlot drives one slot through every kind
// transition and checks that the value read back always reflects the latest
// write — stale data on the other planes must be unreachable behind the kind
// tag.
func TestRegistersKindChangesOnOneSlot(t *testing.T) {
	s := NewState()
	s.SetNumber("x", 5)
	if got := s.Get("x"); !got.Equal(Number(5)) {
		t.Fatalf("after number write: got %v", got)
	}

	s.SetString("x", "GO")
	if got := s.Get("x"); !got.Equal(String("GO")) {
		t.Fatalf("after string write: got %v", got)
	}
	if n := s.Number("x"); !math.IsNaN(n) {
		t.Errorf("string slot as number = %v, want NaN (not the stale 5)", n)
	}
	if !s.Bool("x") {
		t.Errorf("non-empty string slot should be truthy")
	}

	s.SetBool("x", false)
	if got := s.Get("x"); !got.Equal(Bool(false)) {
		t.Fatalf("after bool write: got %v", got)
	}
	if s.Bool("x") {
		t.Errorf("bool(false) slot should not inherit the stale string truthiness")
	}
	if n := s.Number("x"); n != 0 {
		t.Errorf("bool(false) slot as number = %v, want 0 (not the stale 5)", n)
	}

	s.SetNumber("x", 0)
	if s.Bool("x") {
		t.Errorf("number(0) slot should be falsy despite an earlier true-ish write")
	}

	// Overwriting with the invalid Value clears the slot.
	s.Set("x", Value{})
	if s.Has("x") {
		t.Errorf("slot should be absent after storing the invalid Value")
	}
}

// TestRegistersInvalidSlotReads checks every typed accessor on out-of-range
// slots and on the nil State.
func TestRegistersInvalidSlotReads(t *testing.T) {
	s := NewState()
	s.SetNumber("a", 1)

	for _, i := range []int{-1, 99, 1 << 20} {
		if v := s.Slot(i); v.IsValid() {
			t.Errorf("Slot(%d) = %v, want invalid", i, v)
		}
		if k := s.SlotKind(i); k != KindInvalid {
			t.Errorf("SlotKind(%d) = %v, want invalid", i, k)
		}
		if n := s.SlotNumber(i); !math.IsNaN(n) {
			t.Errorf("SlotNumber(%d) = %v, want NaN", i, n)
		}
		if _, ok := s.SlotNumberOK(i); ok {
			t.Errorf("SlotNumberOK(%d) reported valid", i)
		}
		if s.SlotBool(i) {
			t.Errorf("SlotBool(%d) = true, want false", i)
		}
		if id := s.SlotStringID(i); id != -1 {
			t.Errorf("SlotStringID(%d) = %d, want -1", i, id)
		}
		if str := s.SlotString(i); str != "" {
			t.Errorf("SlotString(%d) = %q, want empty", i, str)
		}
	}

	var nilState State
	if v := nilState.Slot(0); v.IsValid() {
		t.Errorf("nil state Slot = %v, want invalid", v)
	}
	if !math.IsNaN(nilState.SlotNumber(0)) || nilState.SlotBool(0) {
		t.Errorf("nil state typed reads should be NaN/false")
	}
}

// TestRegistersSchemaGrowthAfterStates interns names after states were sized
// and checks that old states keep working: reads of new slots are absent
// until written, writes grow the planes, and plane copies across different
// widths preserve the wider state's extra slots — including booleans sharing
// the last bit-plane word with copied slots.
func TestRegistersSchemaGrowthAfterStates(t *testing.T) {
	schema := NewSchema()
	// 70 names puts the boundary inside the second bit-plane word, so the
	// narrow copy exercises the partial-word merge.
	for i := 0; i < 70; i++ {
		schema.Intern("v" + strconv.Itoa(i))
	}
	narrow := NewStateWith(schema)
	for i := 0; i < 70; i++ {
		narrow.SetSlotBool(i, i%2 == 0)
	}

	// The schema grows after narrow exists.
	for i := 70; i < 80; i++ {
		schema.Intern("v" + strconv.Itoa(i))
	}
	wide := NewStateWith(schema)
	wide.CopyFrom(narrow) // narrower source into wider destination
	for i := 70; i < 80; i++ {
		wide.SetSlotBool(i, true)
	}

	// Re-copying the narrow source must not clobber the wide state's extra
	// slots, which share bit-plane word 1 with slots 64–69.
	narrow.SetSlotBool(69, true)
	wide.CopyFrom(narrow)
	if !wide.SlotBool(69) {
		t.Errorf("copied slot 69 lost its updated value")
	}
	for i := 70; i < 80; i++ {
		if !wide.SlotBool(i) {
			t.Errorf("slot %d beyond the source width was clobbered by CopyFrom", i)
		}
	}

	// The old, narrow state reads new slots as absent and grows on write.
	if narrow.Has("v75") {
		t.Errorf("narrow state should not have v75 yet")
	}
	if v := narrow.Slot(75); v.IsValid() {
		t.Errorf("narrow state Slot(75) = %v, want invalid", v)
	}
	narrow.SetSlot(75, Number(7.5))
	if got := narrow.Number("v75"); got != 7.5 {
		t.Errorf("narrow state after growth: v75 = %v, want 7.5", got)
	}

	// Growth via CopyFrom: a fresh, zero-width-schema clone target.
	dst := NewStateWith(schema)
	dst.CopyFrom(wide)
	for i := 0; i < 80; i++ {
		if dst.SlotBool(i) != wide.SlotBool(i) {
			t.Fatalf("slot %d diverged after CopyFrom", i)
		}
	}
}

// TestRegistersCloneIndependence mutates a clone on every plane and checks
// the original is untouched.
func TestRegistersCloneIndependence(t *testing.T) {
	s := NewState()
	s.SetNumber("n", 1)
	s.SetBool("b", true)
	s.SetString("s", "A")

	c := s.Clone()
	c.SetNumber("n", 2)
	c.SetBool("b", false)
	c.SetString("s", "B")
	c.SetString("extra", "X")

	if got := s.Number("n"); got != 1 {
		t.Errorf("original number plane mutated: %v", got)
	}
	if !s.Bool("b") {
		t.Errorf("original bit plane mutated")
	}
	if got := s.StringVal("s"); got != "A" {
		t.Errorf("original string plane mutated: %q", got)
	}
	if s.Has("extra") {
		t.Errorf("original gained a slot written only on the clone")
	}
}

// TestRegistersResetKeepsVocabulary checks Reset clears values but keeps the
// schema, interned enumeration ids and plane capacity.
func TestRegistersResetKeepsVocabulary(t *testing.T) {
	s := NewState()
	s.SetString("mode", "ACC")
	id, ok := s.Schema().LookupString("ACC")
	if !ok {
		t.Fatal("enum not interned")
	}

	s.Reset()
	if s.Has("mode") {
		t.Errorf("value survived Reset")
	}
	if len(s.Names()) != 0 {
		t.Errorf("Names after Reset = %v, want empty", s.Names())
	}
	if _, ok := s.Schema().Lookup("mode"); !ok {
		t.Errorf("schema vocabulary lost on Reset")
	}
	if id2, _ := s.Schema().LookupString("ACC"); id2 != id {
		t.Errorf("enum id changed across Reset: %d != %d", id2, id)
	}

	// Rewriting after Reset reuses the planes and the interned ids.
	s.SetString("mode", "ACC")
	slot, _ := s.Schema().Lookup("mode")
	if got := s.SlotStringID(slot); got != id {
		t.Errorf("rewritten enum id = %d, want %d", got, id)
	}
}

// TestSchemaEnumInterning pins the enumeration table's invariants: "" is
// pre-interned at id 0 (string truthiness is id != 0), ids are dense and
// stable, and EnumString round-trips.
func TestSchemaEnumInterning(t *testing.T) {
	sc := NewSchema()
	if id := sc.InternString(""); id != 0 {
		t.Fatalf("empty string id = %d, want 0", id)
	}
	a := sc.InternString("A")
	b := sc.InternString("B")
	if a != 1 || b != 2 {
		t.Fatalf("dense ids: got %d, %d", a, b)
	}
	if sc.InternString("A") != a {
		t.Errorf("re-interning changed the id")
	}
	if sc.EnumString(a) != "A" || sc.EnumString(-1) != "" || sc.EnumString(99) != "" {
		t.Errorf("EnumString round-trip failed")
	}

	s := NewStateWith(sc)
	s.SetString("x", "")
	if s.Bool("x") {
		t.Errorf("empty-string slot should be falsy")
	}
	if !s.Has("x") {
		t.Errorf("empty-string slot should still be present")
	}
}
