package temporal

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// boolTrace builds a trace from sequences of boolean variable values.
func boolTrace(t *testing.T, vars map[string][]bool) *Trace {
	t.Helper()
	tr := NewTrace(time.Millisecond)
	n := 0
	for _, vs := range vars {
		n = len(vs)
		break
	}
	for i := 0; i < n; i++ {
		s := NewState()
		for name, vs := range vars {
			s.SetBool(name, vs[i])
		}
		tr.Append(s)
	}
	return tr
}

func evalAll(f Formula, tr *Trace) []bool {
	out := make([]bool, tr.Len())
	for i := range out {
		out[i] = f.Eval(tr, i)
	}
	return out
}

func TestPropositionalOperators(t *testing.T) {
	tr := boolTrace(t, map[string][]bool{
		"A": {true, true, false, false},
		"B": {true, false, true, false},
	})
	tests := []struct {
		name string
		f    Formula
		want []bool
	}{
		{"var", Var("A"), []bool{true, true, false, false}},
		{"not", Not(Var("A")), []bool{false, false, true, true}},
		{"and", And(Var("A"), Var("B")), []bool{true, false, false, false}},
		{"or", Or(Var("A"), Var("B")), []bool{true, true, true, false}},
		{"implies", Implies(Var("A"), Var("B")), []bool{true, false, true, true}},
		{"iff", Iff(Var("A"), Var("B")), []bool{true, false, false, true}},
		{"true", True, []bool{true, true, true, true}},
		{"false", False, []bool{false, false, false, false}},
		{"empty and", And(), []bool{true, true, true, true}},
		{"empty or", Or(), []bool{false, false, false, false}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := evalAll(tt.f, tr); !reflect.DeepEqual(got, tt.want) {
				t.Errorf("%s: got %v, want %v", tt.f, got, tt.want)
			}
		})
	}
}

func TestComparisonAtoms(t *testing.T) {
	tr := NewTrace(time.Millisecond)
	tr.Append(NewState().SetNumber("accel", 1.5).SetString("cmd", "STOP").SetNumber("limit", 2))
	tr.Append(NewState().SetNumber("accel", 2.5).SetString("cmd", "GO").SetNumber("limit", 2))

	tests := []struct {
		name string
		f    Formula
		want []bool
	}{
		{"le", Le("accel", 2), []bool{true, false}},
		{"lt", Lt("accel", 2.5), []bool{true, false}},
		{"ge", Ge("accel", 1.5), []bool{true, true}},
		{"gt", Gt("accel", 2), []bool{false, true}},
		{"eq string", Eq("cmd", String("STOP")), []bool{true, false}},
		{"ne string", Ne("cmd", String("STOP")), []bool{false, true}},
		{"var vs var", CompareVars("accel", OpLe, "limit"), []bool{true, false}},
		{"missing var", Le("nothere", 10), []bool{false, false}},
		{"missing rhs var", CompareVars("accel", OpLe, "nothere"), []bool{false, false}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := evalAll(tt.f, tr); !reflect.DeepEqual(got, tt.want) {
				t.Errorf("%s: got %v, want %v", tt.f, got, tt.want)
			}
		})
	}
}

func TestPredAtom(t *testing.T) {
	stopped := Pred("IsStopped(es)", []string{"es"}, func(s State) bool {
		v := s.Number("es")
		return v > -0.01 && v < 0.01
	})
	tr := NewTrace(time.Millisecond)
	tr.Append(NewState().SetNumber("es", 0))
	tr.Append(NewState().SetNumber("es", 1.2))
	if got := evalAll(stopped, tr); !reflect.DeepEqual(got, []bool{true, false}) {
		t.Errorf("pred eval = %v", got)
	}
	if got := stopped.Vars(); !reflect.DeepEqual(got, []string{"es"}) {
		t.Errorf("pred vars = %v", got)
	}
	if stopped.String() != "IsStopped(es)" {
		t.Errorf("pred string = %q", stopped.String())
	}
}

func TestPastTimeOperators(t *testing.T) {
	tr := boolTrace(t, map[string][]bool{
		"P": {false, true, true, false, true},
	})
	tests := []struct {
		name string
		f    Formula
		want []bool
	}{
		{"prev", Prev(Var("P")), []bool{false, false, true, true, false}},
		{"once", Once(Var("P")), []bool{false, false, true, true, true}},
		{"hist", Historically(Var("P")), []bool{true, false, false, false, false}},
		{"became", Became(Var("P")), []bool{false, true, false, false, true}},
		{"initially", Initially(Var("P")), []bool{false, false, false, false, false}},
		{"prevfor 2ms", PrevFor(Var("P"), 2*time.Millisecond), []bool{false, false, false, true, false}},
		{"prevwithin 2ms", PrevWithin(Var("P"), 2*time.Millisecond), []bool{false, false, true, true, true}},
		{"prevfor zero duration", PrevFor(Var("P"), 0), []bool{true, true, true, true, true}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := evalAll(tt.f, tr); !reflect.DeepEqual(got, tt.want) {
				t.Errorf("%s: got %v, want %v", tt.f, got, tt.want)
			}
		})
	}
}

func TestBecameInitialState(t *testing.T) {
	tr := boolTrace(t, map[string][]bool{"P": {true, true, false, true}})
	want := []bool{true, false, false, true}
	if got := evalAll(Became(Var("P")), tr); !reflect.DeepEqual(got, want) {
		t.Errorf("became = %v, want %v", got, want)
	}
}

func TestHistoricallyTrueAtStart(t *testing.T) {
	tr := boolTrace(t, map[string][]bool{"P": {false, false}})
	// Vacuously true at index 0 (no previous states).
	if !Historically(Var("P")).Eval(tr, 0) {
		t.Error("Historically should be vacuously true at the initial state")
	}
}

func TestInitiallyTrue(t *testing.T) {
	tr := boolTrace(t, map[string][]bool{"P": {true, false, false}})
	want := []bool{true, true, true}
	if got := evalAll(Initially(Var("P")), tr); !reflect.DeepEqual(got, want) {
		t.Errorf("initially = %v, want %v", got, want)
	}
	empty := NewTrace(time.Millisecond)
	if Initially(Var("P")).Eval(empty, 0) {
		t.Error("Initially on an empty trace should be false")
	}
}

func TestFutureTimeOperators(t *testing.T) {
	tr := boolTrace(t, map[string][]bool{
		"P": {false, true, false, false},
	})
	tests := []struct {
		name string
		f    Formula
		want []bool
	}{
		{"next", Next(Var("P")), []bool{true, false, false, false}},
		{"eventually", Eventually(Var("P")), []bool{true, true, false, false}},
		{"always not P", Always(Not(Var("P"))), []bool{false, false, true, true}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := evalAll(tt.f, tr); !reflect.DeepEqual(got, tt.want) {
				t.Errorf("%s: got %v, want %v", tt.f, got, tt.want)
			}
		})
	}
}

func TestVarsMergedAndSorted(t *testing.T) {
	f := Implies(And(Var("zeta"), Gt("alpha", 1)), Or(Prev(Var("mid")), Eq("alpha", Number(2))))
	want := []string{"alpha", "mid", "zeta"}
	if got := f.Vars(); !reflect.DeepEqual(got, want) {
		t.Errorf("Vars() = %v, want %v", got, want)
	}
	if got := CompareVars("x", OpEq, "x").Vars(); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("CompareVars same var Vars() = %v", got)
	}
}

func TestAntecedentConsequent(t *testing.T) {
	f := Implies(Var("A"), Var("B"))
	if Antecedent(f).String() != "A" || Consequent(f).String() != "B" {
		t.Error("Antecedent/Consequent did not extract the implication parts")
	}
	if Antecedent(Var("A")) != nil || Consequent(Var("A")) != nil {
		t.Error("non-implication formulas must return nil parts")
	}
}

func TestIsPastTime(t *testing.T) {
	past := []Formula{
		Var("A"),
		Implies(Prev(Var("A")), Var("B")),
		And(Once(Var("A")), Historically(Var("B")), Became(Var("C"))),
		Or(PrevFor(Var("A"), time.Second), PrevWithin(Var("B"), time.Second)),
		Iff(Initially(Var("A")), Not(Var("B"))),
	}
	for _, f := range past {
		if !IsPastTime(f) {
			t.Errorf("IsPastTime(%s) = false, want true", f)
		}
	}
	future := []Formula{
		Eventually(Var("A")),
		Implies(Var("A"), Eventually(Var("B"))),
		And(Var("A"), Next(Var("B"))),
		Not(Always(Var("A"))),
		Or(Var("A"), Always(Var("B"))),
		Iff(Var("A"), Next(Var("B"))),
		Prev(Next(Var("A"))),
	}
	for _, f := range future {
		if IsPastTime(f) {
			t.Errorf("IsPastTime(%s) = true, want false", f)
		}
	}
}

func TestReferencesFuture(t *testing.T) {
	if !ReferencesFuture(Implies(Var("A"), Eventually(Var("B")))) {
		t.Error("Achieve-style goal with eventually must reference the future")
	}
	if ReferencesFuture(Implies(Prev(Var("A")), Var("B"))) {
		t.Error("past-time goal must not reference the future")
	}
	nested := []Formula{
		Next(Eventually(Var("A"))),
		Always(Eventually(Var("A"))),
		Not(Eventually(Var("A"))),
		And(Var("B"), Eventually(Var("A"))),
		Or(Var("B"), Eventually(Var("A"))),
		Iff(Var("B"), Eventually(Var("A"))),
		Prev(Eventually(Var("A"))),
		Once(Eventually(Var("A"))),
		Historically(Eventually(Var("A"))),
		Became(Eventually(Var("A"))),
		PrevFor(Eventually(Var("A")), time.Second),
		PrevWithin(Eventually(Var("A")), time.Second),
		Initially(Eventually(Var("A"))),
	}
	for _, f := range nested {
		if !ReferencesFuture(f) {
			t.Errorf("ReferencesFuture(%s) = false, want true", f)
		}
	}
	if ReferencesFuture(Always(Var("A"))) {
		t.Error("Always alone is bounded by the trace and not flagged as a future reference")
	}
}

func TestHoldsThroughoutAndViolations(t *testing.T) {
	tr := boolTrace(t, map[string][]bool{"P": {true, true, false, true, false}})
	if HoldsThroughout(Var("P"), tr) {
		t.Error("HoldsThroughout should be false")
	}
	if !HoldsThroughout(Or(Var("P"), Not(Var("P"))), tr) {
		t.Error("tautology should hold throughout")
	}
	if got := ViolationIndices(Var("P"), tr, 0); !reflect.DeepEqual(got, []int{2, 4}) {
		t.Errorf("ViolationIndices = %v", got)
	}
	if got := ViolationIndices(Var("P"), tr, 1); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("limited ViolationIndices = %v", got)
	}
}

func TestFormulaStrings(t *testing.T) {
	tests := []struct {
		f    Formula
		want string
	}{
		{Implies(Var("A"), Var("B")), "(A) => (B)"},
		{Not(Var("A")), "!(A)"},
		{And(Var("A"), Var("B")), "(A) & (B)"},
		{Or(Var("A"), Var("B")), "(A) | (B)"},
		{Iff(Var("A"), Var("B")), "(A) <=> (B)"},
		{Prev(Var("A")), "prev(A)"},
		{Once(Var("A")), "once(A)"},
		{Historically(Var("A")), "hist(A)"},
		{Became(Var("A")), "became(A)"},
		{Initially(Var("A")), "initially(A)"},
		{Next(Var("A")), "next(A)"},
		{Eventually(Var("A")), "eventually(A)"},
		{Always(Var("A")), "always(A)"},
		{Le("x", 2), "x <= 2"},
		{Eq("c", String("STOP")), "c == 'STOP'"},
		{CompareVars("a", OpGt, "b"), "a > b"},
		{And(), "true"},
		{Or(), "false"},
	}
	for _, tt := range tests {
		if got := tt.f.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestCompareOpString(t *testing.T) {
	ops := map[CompareOp]string{OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", CompareOp(99): "?"}
	for op, want := range ops {
		if got := op.String(); got != want {
			t.Errorf("op.String() = %q, want %q", got, want)
		}
	}
}

// --- property-based tests -------------------------------------------------

// randomTrace builds a random boolean trace over variables A and B.
func randomTrace(r *rand.Rand, n int) *Trace {
	tr := NewTrace(time.Millisecond)
	for i := 0; i < n; i++ {
		tr.Append(NewState().
			SetBool("A", r.Intn(2) == 0).
			SetBool("B", r.Intn(2) == 0))
	}
	return tr
}

func TestPropDeMorgan(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r, int(n%32)+1)
		lhs := Not(And(Var("A"), Var("B")))
		rhs := Or(Not(Var("A")), Not(Var("B")))
		for i := 0; i < tr.Len(); i++ {
			if lhs.Eval(tr, i) != rhs.Eval(tr, i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropImplicationAsDisjunction(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r, int(n%32)+1)
		lhs := Implies(Var("A"), Var("B"))
		rhs := Or(Not(Var("A")), Var("B"))
		for i := 0; i < tr.Len(); i++ {
			if lhs.Eval(tr, i) != rhs.Eval(tr, i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropBecameDefinition(t *testing.T) {
	// @P  =  P ∧ l¬P  (thesis Figure 2.5), except in the initial state where
	// Became(P) reduces to P because Prev is false there.
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r, int(n%32)+1)
		became := Became(Var("A"))
		def := And(Var("A"), Not(Prev(Var("A"))))
		for i := 1; i < tr.Len(); i++ {
			if became.Eval(tr, i) != def.Eval(tr, i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropOnceMonotone(t *testing.T) {
	// Once(P) is monotone: once true it stays true.
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r, int(n%48)+2)
		once := Once(Var("A"))
		seen := false
		for i := 0; i < tr.Len(); i++ {
			v := once.Eval(tr, i)
			if seen && !v {
				return false
			}
			if v {
				seen = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropHistoricallyDualOfOnce(t *testing.T) {
	// Historically(P) == !Once(!P)
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r, int(n%48)+1)
		lhs := Historically(Var("A"))
		rhs := Not(Once(Not(Var("A"))))
		for i := 0; i < tr.Len(); i++ {
			if lhs.Eval(tr, i) != rhs.Eval(tr, i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropPrevWithinSubsumesPrev(t *testing.T) {
	// l P implies l<T P for any T >= one step.
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r, int(n%48)+1)
		prev := Prev(Var("A"))
		within := PrevWithin(Var("A"), 5*time.Millisecond)
		for i := 0; i < tr.Len(); i++ {
			if prev.Eval(tr, i) && !within.Eval(tr, i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropPrevForImpliesPrevWithin(t *testing.T) {
	// ln<T P implies l<T P whenever the window is non-empty.
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r, int(n%48)+2)
		pf := PrevFor(Var("A"), 3*time.Millisecond)
		pw := PrevWithin(Var("A"), 3*time.Millisecond)
		for i := 0; i < tr.Len(); i++ {
			if pf.Eval(tr, i) && !pw.Eval(tr, i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
