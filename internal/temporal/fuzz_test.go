package temporal

import "testing"

// FuzzParse checks the parse → String → re-parse round trip: any input the
// parser accepts must render to a formula string the parser accepts again,
// and that rendering must be a fixed point (String is the normal form).  The
// seed corpus is drawn from the thesis' goal catalogues: the vehicle safety
// goals of Tables 5.1/5.2, their Table 5.3 subgoals and the elevator goals
// of Chapter 4, plus operator-coverage fragments.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// Vehicle system safety goals (Tables 5.1/5.2).
		"Arbiter.AccelFromSubsystem => Vehicle.Accel <= 2",
		"Arbiter.AccelFromSubsystem => (Vehicle.Jerk <= 2.5 & Vehicle.Jerk >= -2.5)",
		"Arbiter.AccelSteeringAgreement",
		"((prevfor[500ms](Vehicle.Stopped) | (initially(Vehicle.Stopped) & hist(Vehicle.Stopped) & Vehicle.Stopped)) & !prevwithin[500ms](Driver.ThrottlePedal) & !prevwithin[500ms](HMI.Go) & Arbiter.AccelFromSubsystem) => Vehicle.Accel <= 0.05",
		"(Vehicle.InForwardMotion & prev(Driver.PedalApplied)) => !Arbiter.SelectedSoftRequestFwd",
		"prev(Driver.SteeringActive) => !Arbiter.SteerFromSubsystem",
		"Vehicle.InForwardMotion => !(Arbiter.AccelSource == 'RCA' | Arbiter.SteerSource == 'RCA')",
		"Vehicle.InBackwardMotion => !(Arbiter.AccelSource == 'CA' | Arbiter.AccelSource == 'ACC' | Arbiter.AccelSource == 'LCA')",
		// Table 5.3 subgoal shapes.
		"CA.AccelRequest <= 2",
		"(CA.RequestJerk <= 2.5 & CA.RequestJerk >= -2.5)",
		"(Vehicle.InForwardMotion & prev(Driver.PedalApplied) & PA.RequestingAccel & PA.AccelRequest > -2) => !PA.Selected",
		"Vehicle.InBackwardMotion => !(LCA.RequestingAccel | LCA.RequestingSteer)",
		// Elevator goals (Chapter 4).
		"DoorClosed | ElevatorStopped",
		"ElevatorWeight > 680 => DriveCommand == 'STOP'",
		"became(ElevatorPosition >= 12.6) => prev(EmergencyBrake == 'APPLIED')",
		// Operator coverage.
		"true",
		"false",
		"!(A & B) <=> (!A | !B)",
		"once(A) & hist(B) & became(C)",
		"next(eventually(always(A)))",
		"prevfor[1h2m3s](A) | prevwithin[250us](B)",
		"a == b & a != c & x < y",
		"flag == true & other != false",
		"x >= -2.5e-1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		formula, err := Parse(input)
		if err != nil {
			return // rejected inputs are out of scope; only accepted ones must round-trip
		}
		rendered := formula.String()
		reparsed, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q) succeeded but its rendering %q does not re-parse: %v", input, rendered, err)
		}
		if again := reparsed.String(); again != rendered {
			t.Fatalf("String is not a parse fixed point for %q:\nfirst:  %s\nsecond: %s", input, rendered, again)
		}
	})
}
