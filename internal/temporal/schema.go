package temporal

import "sort"

// Schema is an interned symbol table mapping state-variable names to dense
// slot indices.  A Schema is created once per scenario (the sim.Bus owns one
// per run) and shared by every State of that run: the bus' double buffers,
// every trace snapshot and every compiled Stepper resolve variable names to
// slots against it, so the per-step hot path never hashes a string.
//
// Kopetz's system-of-systems argument (PAPERS.md) is that constituent systems
// must interact through small, well-specified shared interfaces; the Schema is
// exactly that interface made explicit — the fixed variable vocabulary the
// composite system's components and monitors agree on.
//
// A Schema is not safe for concurrent mutation; scenario runs are isolated
// per goroutine (one schema per run), which is what keeps parameter sweeps
// race-clean.
type Schema struct {
	index map[string]int
	names []string

	// sorted caches the slot indices in name-sorted order for State.Names
	// and State.String; it is invalidated by Intern and rebuilt on demand,
	// so renders never re-sort an unchanged vocabulary.
	sorted []int
}

// NewSchema returns an empty symbol table.
func NewSchema() *Schema {
	return &Schema{index: make(map[string]int)}
}

// Intern returns the slot index of name, assigning the next free slot when
// the name has not been seen before.
func (sc *Schema) Intern(name string) int {
	if i, ok := sc.index[name]; ok {
		return i
	}
	i := len(sc.names)
	sc.index[name] = i
	sc.names = append(sc.names, name)
	sc.sorted = nil
	return i
}

// Lookup returns the slot index of name, without interning it.
func (sc *Schema) Lookup(name string) (int, bool) {
	i, ok := sc.index[name]
	return i, ok
}

// Len returns the number of interned names (the register-file width).
func (sc *Schema) Len() int { return len(sc.names) }

// Name returns the name interned at slot i.
func (sc *Schema) Name(i int) string { return sc.names[i] }

// Names returns a copy of the interned names in slot order.
func (sc *Schema) Names() []string {
	return append([]string(nil), sc.names...)
}

// sortedSlots returns the slot indices ordered by variable name.  The order
// is computed once per vocabulary change, not once per call.
func (sc *Schema) sortedSlots() []int {
	if sc.sorted == nil && len(sc.names) > 0 {
		sc.sorted = make([]int, len(sc.names))
		for i := range sc.sorted {
			sc.sorted[i] = i
		}
		sort.Slice(sc.sorted, func(a, b int) bool {
			return sc.names[sc.sorted[a]] < sc.names[sc.sorted[b]]
		})
	}
	return sc.sorted
}
