package temporal

import "sort"

// Schema is an interned symbol table mapping state-variable names to dense
// slot indices.  A Schema is created once per scenario (the sim.Bus owns one
// per run) and shared by every State of that run: the bus' double buffers,
// every trace snapshot and every compiled Stepper resolve variable names to
// slots against it, so the per-step hot path never hashes a string.
//
// Kopetz's system-of-systems argument (PAPERS.md) is that constituent systems
// must interact through small, well-specified shared interfaces; the Schema is
// exactly that interface made explicit — the fixed variable vocabulary the
// composite system's components and monitors agree on.
//
// A Schema is not safe for concurrent mutation; scenario runs are isolated
// per goroutine (one schema per run), which is what keeps parameter sweeps
// race-clean.
type Schema struct {
	index map[string]int
	names []string

	// sorted caches the slot indices in name-sorted order for State.Names
	// and State.String; it is invalidated by Intern and rebuilt on demand,
	// so renders never re-sort an unchanged vocabulary.
	sorted []int

	// enums / enumIdx intern the enumeration-string values stored in the
	// register file's small-int plane (e.g. "ACC", "D", "STOP"): each
	// distinct string is assigned a dense id once, and every State of the
	// run stores the id.  enums[0] is always "", so a string slot's
	// truthiness is id != 0.
	enums   []string
	enumIdx map[string]int32
}

// emptyEnumID is the interned id of the empty string in every Schema.
const emptyEnumID int32 = 0

// NewSchema returns an empty symbol table.
func NewSchema() *Schema {
	return &Schema{
		index:   make(map[string]int),
		enums:   []string{""},
		enumIdx: map[string]int32{"": emptyEnumID},
	}
}

// Intern returns the slot index of name, assigning the next free slot when
// the name has not been seen before.
func (sc *Schema) Intern(name string) int {
	if i, ok := sc.index[name]; ok {
		return i
	}
	i := len(sc.names)
	sc.index[name] = i
	sc.names = append(sc.names, name)
	sc.sorted = nil
	return i
}

// Lookup returns the slot index of name, without interning it.
func (sc *Schema) Lookup(name string) (int, bool) {
	i, ok := sc.index[name]
	return i, ok
}

// Len returns the number of interned names (the register-file width).
func (sc *Schema) Len() int { return len(sc.names) }

// Name returns the name interned at slot i.
func (sc *Schema) Name(i int) string { return sc.names[i] }

// Names returns a copy of the interned names in slot order.
func (sc *Schema) Names() []string {
	return append([]string(nil), sc.names...)
}

// InternString returns the dense id of an enumeration-string value,
// assigning the next free id when the string has not been seen before.  Ids
// are stable for the lifetime of the schema, so states of one run compare
// enumeration values by comparing ids.
func (sc *Schema) InternString(s string) int32 {
	if id, ok := sc.enumIdx[s]; ok {
		return id
	}
	id := int32(len(sc.enums))
	sc.enumIdx[s] = id
	sc.enums = append(sc.enums, s)
	return id
}

// LookupString returns the id of an enumeration string without interning it.
func (sc *Schema) LookupString(s string) (int32, bool) {
	id, ok := sc.enumIdx[s]
	return id, ok
}

// EnumString returns the enumeration string interned at id ("" for ids this
// schema never assigned).
func (sc *Schema) EnumString(id int32) string {
	if id < 0 || int(id) >= len(sc.enums) {
		return ""
	}
	return sc.enums[id]
}

// sortedSlots returns the slot indices ordered by variable name.  The order
// is computed once per vocabulary change, not once per call.
func (sc *Schema) sortedSlots() []int {
	if sc.sorted == nil && len(sc.names) > 0 {
		sc.sorted = make([]int, len(sc.names))
		for i := range sc.sorted {
			sc.sorted[i] = i
		}
		sort.Slice(sc.sorted, func(a, b int) bool {
			return sc.names[sc.sorted[a]] < sc.names[sc.sorted[b]]
		})
	}
	return sc.sorted
}
