package temporal

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestCompileRejectsFutureTime(t *testing.T) {
	if _, err := Compile(Eventually(Var("A")), time.Millisecond); err == nil {
		t.Fatal("Compile should reject future-time formulas")
	}
	if _, err := Compile(Implies(Var("A"), Next(Var("B"))), time.Millisecond); err == nil {
		t.Fatal("Compile should reject formulas containing next()")
	}
	if _, err := Compile(Always(Var("A")), time.Millisecond); err == nil {
		t.Fatal("Compile should reject formulas containing always()")
	}
}

func TestMustCompilePanicsOnFuture(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile should panic for a future-time formula")
		}
	}()
	MustCompile(Eventually(Var("A")), time.Millisecond)
}

func TestStepperDefaultPeriod(t *testing.T) {
	s, err := Compile(Var("A"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Step(NewState().SetBool("A", true)) {
		t.Error("step should be true")
	}
	if s.Steps() != 1 {
		t.Errorf("Steps() = %d, want 1", s.Steps())
	}
}

// stepperMatchesBatch checks that incremental evaluation matches the batch
// trace semantics for every index of the trace.
func stepperMatchesBatch(t *testing.T, f Formula, tr *Trace) {
	t.Helper()
	s, err := Compile(f, tr.Period)
	if err != nil {
		t.Fatalf("compile %s: %v", f, err)
	}
	for i := 0; i < tr.Len(); i++ {
		want := f.Eval(tr, i)
		got := s.Step(tr.At(i))
		if got != want {
			t.Fatalf("formula %s at index %d: stepper=%v batch=%v", f, i, got, want)
		}
	}
}

func TestStepperMatchesBatchSemantics(t *testing.T) {
	tr := boolTrace(t, map[string][]bool{
		"A": {false, true, true, false, true, true, true, false},
		"B": {true, false, true, true, false, true, false, false},
	})
	formulas := []Formula{
		Var("A"),
		Not(Var("A")),
		And(Var("A"), Var("B")),
		Or(Var("A"), Var("B")),
		Implies(Var("A"), Var("B")),
		Iff(Var("A"), Var("B")),
		Prev(Var("A")),
		Once(Var("A")),
		Historically(Var("B")),
		Became(Var("A")),
		Initially(Var("B")),
		PrevFor(Var("A"), 2*time.Millisecond),
		PrevWithin(Var("A"), 3*time.Millisecond),
		PrevFor(Var("A"), 0),
		Implies(Prev(Var("A")), Or(Var("B"), Became(Var("A")))),
		And(Once(Var("A")), Not(Historically(Var("B"))), PrevWithin(Var("B"), 2*time.Millisecond)),
	}
	for _, f := range formulas {
		t.Run(f.String(), func(t *testing.T) {
			stepperMatchesBatch(t, f, tr)
		})
	}
}

func TestStepperNumericFormulas(t *testing.T) {
	tr := NewTrace(time.Millisecond)
	vals := []float64{0, 1.5, 2.5, 1.9, 3.0, 0.5}
	for _, v := range vals {
		tr.Append(NewState().SetNumber("accel", v).SetString("src", "CA"))
	}
	f := Implies(Eq("src", String("CA")), Le("accel", 2))
	stepperMatchesBatch(t, f, tr)
}

func TestStepperReset(t *testing.T) {
	f := Once(Var("A"))
	s := MustCompile(f, time.Millisecond)
	s.Step(NewState().SetBool("A", true))
	if !s.Step(NewState().SetBool("A", false)) {
		t.Fatal("Once should hold after A was true")
	}
	s.Reset()
	if s.Steps() != 0 {
		t.Errorf("Steps() after reset = %d", s.Steps())
	}
	if s.Step(NewState().SetBool("A", false)) {
		t.Fatal("after Reset, Once should be false again")
	}
}

func TestStepperResetAllNodeKinds(t *testing.T) {
	f := And(
		Prev(Var("A")),
		Or(Once(Var("A")), Historically(Var("B"))),
		Implies(Became(Var("A")), Var("B")),
		Iff(Initially(Var("A")), Var("A")),
		Not(PrevFor(Var("A"), 2*time.Millisecond)),
		Or(True, PrevWithin(Var("B"), 2*time.Millisecond)),
	)
	tr := boolTrace(t, map[string][]bool{
		"A": {true, false, true, true},
		"B": {true, true, false, true},
	})
	s := MustCompile(f, tr.Period)
	first := make([]bool, tr.Len())
	for i := 0; i < tr.Len(); i++ {
		first[i] = s.Step(tr.At(i))
	}
	s.Reset()
	for i := 0; i < tr.Len(); i++ {
		if got := s.Step(tr.At(i)); got != first[i] {
			t.Fatalf("after Reset, step %d = %v, want %v", i, got, first[i])
		}
	}
}

func TestPropStepperEquivalence(t *testing.T) {
	// For random traces and a representative compound formula, the
	// incremental stepper agrees with batch evaluation at every index.
	formula := Implies(
		And(Prev(Var("A")), PrevWithin(Var("B"), 4*time.Millisecond)),
		Or(Became(Var("B")), Once(Var("A"))),
	)
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r, int(n%64)+1)
		s, err := Compile(formula, tr.Period)
		if err != nil {
			return false
		}
		for i := 0; i < tr.Len(); i++ {
			if s.Step(tr.At(i)) != formula.Eval(tr, i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
