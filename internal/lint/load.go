package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package of the analyzed module.
type Package struct {
	// Path is the import path ("repro/internal/sim").
	Path string
	// Dir is the package directory, absolute.
	Dir string
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the per-expression type facts analyzers consume.
	Info *types.Info
	// Directives indexes the //lint: escape hatches of the package's files.
	Directives directiveIndex
}

// Program is a whole analyzed module: every non-test package, parsed into one
// shared FileSet and type-checked in dependency order against the standard
// library's source importer.  The module has zero dependencies by design, so
// loading never leaves GOROOT plus the module tree.
type Program struct {
	// Fset positions every file of the program.
	Fset *token.FileSet
	// Root is the module root directory, absolute.
	Root string
	// ModulePath is the module path from go.mod.
	ModulePath string
	// Packages holds the loaded packages in dependency order.
	Packages []*Package

	byPath map[string]*Package
	std    types.ImporterFrom
}

// Package returns the loaded package with the given import path (nil when the
// program does not contain it).
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// Position resolves a token position and makes the filename relative to the
// module root, so diagnostics are stable across checkouts.
func (p *Program) Position(pos token.Pos) token.Position {
	position := p.Fset.Position(pos)
	if rel, err := filepath.Rel(p.Root, position.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		position.Filename = rel
	}
	return position
}

// Import implements types.Importer: module packages resolve to their already
// type-checked form, everything else (the standard library) is type-checked
// from GOROOT source by go/importer's "source" mode.
func (p *Program) Import(path string) (*types.Package, error) {
	return p.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (p *Program) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := p.byPath[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: import cycle or load-order bug at %q", path)
		}
		return pkg.Types, nil
	}
	return p.std.ImportFrom(path, dir, mode)
}

// LoadModule parses and type-checks every non-test package under the module
// root (skipping testdata and hidden directories) and returns the analyzable
// program.  Type errors in any package fail the load: an analyzer's facts are
// only as sound as the type information under them.
func LoadModule(root string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	prog := &Program{
		Fset:       fset,
		Root:       root,
		ModulePath: modPath,
		byPath:     make(map[string]*Package),
	}
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement types.ImporterFrom")
	}
	prog.std = std

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		pkg, err := parseDir(fset, root, modPath, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue
		}
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[pkg.Path] = pkg
	}
	ordered, err := sortByImports(prog)
	if err != nil {
		return nil, err
	}
	prog.Packages = ordered
	for _, pkg := range prog.Packages {
		if err := prog.check(pkg); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// LoadExtraDir parses and type-checks one directory outside the module's
// build (an analyzer test fixture under testdata) against the already loaded
// program, registers it under the given import path, and returns it.  The
// fixture may import module packages; they resolve to the loaded ones.
func (p *Program) LoadExtraDir(dir, path string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := parseDirAs(p.Fset, dir, path)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	if err := p.check(pkg); err != nil {
		return nil, err
	}
	p.Packages = append(p.Packages, pkg)
	p.byPath[pkg.Path] = pkg
	return pkg, nil
}

// check type-checks one parsed package in place.
func (p *Program) check(pkg *Package) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var errs []error
	conf := types.Config{
		Importer: p,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(pkg.Path, p.Fset, pkg.Files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for i, err := range errs {
			if i == 10 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(errs)-i))
				break
			}
			msgs = append(msgs, err.Error())
		}
		return fmt.Errorf("lint: type errors in %s:\n  %s", pkg.Path, strings.Join(msgs, "\n  "))
	}
	pkg.Types = tpkg
	pkg.Info = info
	pkg.Directives = buildDirectives(p.Fset, pkg.Files)
	return nil
}

// modulePath reads the module path from go.mod.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(rest); err == nil {
				rest = unq
			}
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module path in %s", gomod)
}

// packageDirs lists every directory under root that may hold a package,
// skipping hidden directories and testdata trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses the non-test Go files of one module directory, deriving the
// package's import path from its location.  It returns nil when the directory
// holds no non-test Go files.
func parseDir(fset *token.FileSet, root, modPath, dir string) (*Package, error) {
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	return parseDirAs(fset, dir, path)
}

// parseDirAs parses the non-test Go files of dir into a package with the
// given import path.
func parseDirAs(fset *token.FileSet, dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// sortByImports orders the module's packages so every package follows its
// module-internal imports (standard-library imports resolve independently).
func sortByImports(prog *Program) ([]*Package, error) {
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[*Package]int)
	var ordered []*Package
	var visit func(pkg *Package, chain []string) error
	visit = func(pkg *Package, chain []string) error {
		switch state[pkg] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", strings.Join(append(chain, pkg.Path), " -> "))
		}
		state[pkg] = visiting
		for _, imp := range moduleImports(prog, pkg) {
			if err := visit(imp, append(chain, pkg.Path)); err != nil {
				return err
			}
		}
		state[pkg] = done
		ordered = append(ordered, pkg)
		return nil
	}
	for _, pkg := range prog.Packages {
		if err := visit(pkg, nil); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// moduleImports resolves a package's module-internal imports, sorted for
// deterministic load order.
func moduleImports(prog *Program, pkg *Package) []*Package {
	seen := make(map[string]bool)
	var paths []string
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			if prog.byPath[path] != nil {
				paths = append(paths, path)
			}
		}
	}
	sort.Strings(paths)
	out := make([]*Package, len(paths))
	for i, path := range paths {
		out[i] = prog.byPath[path]
	}
	return out
}
