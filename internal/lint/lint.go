package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, positioned in the analyzed source.
type Diagnostic struct {
	// Pos locates the finding; Filename is relative to the module root.
	Pos token.Position
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Message describes the violated invariant and how to fix or annotate it.
	Message string
}

// String renders the diagnostic in the suite's file:line: [analyzer] message
// convention.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one member of the suite: a named check over a loaded program.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is the one-line description shown by cmd/reprolint.
	Doc string
	// Run analyzes the whole program and returns its findings.
	Run func(*Program) []Diagnostic
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerResetComplete(),
		analyzerSlotBind(),
		analyzerHotPathAlloc(),
		analyzerDeterminism(),
	}
}

// RunAll runs every analyzer (or the named subset) over the program and
// returns the findings sorted by position.
func RunAll(prog *Program, only ...string) ([]Diagnostic, error) {
	byName := make(map[string]*Analyzer)
	all := Analyzers()
	for _, a := range all {
		byName[a.Name] = a
	}
	selected := all
	if len(only) > 0 {
		selected = selected[:0:0]
		for _, name := range only {
			a, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("lint: unknown analyzer %q", name)
			}
			selected = append(selected, a)
		}
	}
	var out []Diagnostic
	for _, a := range selected {
		out = append(out, a.Run(prog)...)
	}
	SortDiagnostics(out)
	return out, nil
}

// SortDiagnostics orders findings by file, line, column, analyzer, message.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// directive is one //lint:<name> comment with its justification text.
type directive struct {
	name   string
	reason string
}

// directiveIndex maps file → line → directives on that line, so analyzers can
// resolve escape hatches by position without re-walking comments.
type directiveIndex map[*ast.File]map[int][]directive

// buildDirectives scans every comment of the package's files for //lint:
// directives.
func buildDirectives(fset *token.FileSet, files []*ast.File) directiveIndex {
	idx := make(directiveIndex, len(files))
	for _, f := range files {
		lines := make(map[int][]directive)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(text, " ")
				line := fset.Position(c.Pos()).Line
				lines[line] = append(lines[line], directive{name: name, reason: strings.TrimSpace(reason)})
			}
		}
		idx[f] = lines
	}
	return idx
}

// lookup returns the named directive attached to pos: on the same line or on
// the line immediately above (the tail of a doc comment).
func (idx directiveIndex) lookup(fset *token.FileSet, f *ast.File, pos token.Pos, name string) (directive, bool) {
	lines := idx[f]
	if lines == nil {
		return directive{}, false
	}
	line := fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, d := range lines[l] {
			if d.name == name {
				return d, true
			}
		}
	}
	return directive{}, false
}

// exempted resolves an escape hatch for a finding at pos.  A directive with a
// justification suppresses the finding; a bare directive converts it into a
// missing-justification diagnostic, so exceptions are always documented.
func (idx directiveIndex) exempted(prog *Program, f *ast.File, pos token.Pos, analyzer, name string, diags *[]Diagnostic) bool {
	d, ok := idx.lookup(prog.Fset, f, pos, name)
	if !ok {
		return false
	}
	if d.reason == "" {
		*diags = append(*diags, Diagnostic{
			Pos:      prog.Position(pos),
			Analyzer: analyzer,
			Message:  fmt.Sprintf("//lint:%s directive needs a justification (//lint:%s <reason>)", name, name),
		})
	}
	return true
}

// fileHasDirective reports whether any comment in the file carries the named
// directive (used for package-scoped opt-ins such as //lint:deterministic).
func (idx directiveIndex) fileHasDirective(f *ast.File, name string) bool {
	for _, ds := range idx[f] {
		for _, d := range ds {
			if d.name == name {
				return true
			}
		}
	}
	return false
}
