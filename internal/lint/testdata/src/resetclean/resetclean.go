// Package resetclean is the resetcomplete-clean fixture: pooled components
// whose Reset restores every mutable field, directly, via a helper, or via a
// documented exception.
package resetclean

import (
	"time"

	"repro/internal/sim"
	"repro/internal/temporal"
)

// Gauge restores both of its mutable fields directly in Reset.  The name
// field is configuration: no method writes it, so it is out of scope.
type Gauge struct {
	name  string
	total float64
	armed bool
}

func (g *Gauge) Name() string { return g.name }

func (g *Gauge) Step(now time.Duration, bus *sim.Bus) {
	g.total += now.Seconds()
	g.armed = true
}

func (g *Gauge) Reset() {
	g.total = 0
	g.armed = false
}

// Delegating covers its fields through a helper method called from Reset.
type Delegating struct {
	count int
	mark  bool
}

func (d *Delegating) Name() string { return "delegating" }

func (d *Delegating) Step(now time.Duration, bus *sim.Bus) {
	d.count++
	d.mark = true
}

func (d *Delegating) Reset() { d.clear() }

func (d *Delegating) clear() {
	d.count = 0
	d.mark = false
}

// Cached documents why its cache survives Reset.
type Cached struct {
	//lint:resetok memoised lookups are keyed by name, not run state; rebuilding them each run defeats the cache
	cache map[string]int
	n     int
}

func (c *Cached) Name() string { return "cached" }

func (c *Cached) Step(now time.Duration, bus *sim.Bus) {
	c.cache["steps"] = c.n
	c.n++
}

func (c *Cached) Reset() { c.n = 0 }

// Probe is a pooled state observer: not a stepped component, but reused
// between runs through the engine's observe fan-out all the same.  Reset
// restores every mutable field, and the compiled-slot field is a documented
// exception — it survives Reset exactly like the real compiled suites' plan
// state does.
type Probe struct {
	//lint:resetok the resolved slot is compile-time plan state; every run reads the same register
	slot  int
	peak  float64
	count int
}

func (p *Probe) Observe(st temporal.State) {
	if p.slot == 0 {
		p.slot = 1
	}
	if v := st.SlotNumber(p.slot); v > p.peak {
		p.peak = v
	}
	p.count++
}

func (p *Probe) Reset() {
	p.peak = 0
	p.count = 0
}

// LaneProbe is a pooled lane observer whose parametered Reset (the
// lane-harness idiom: Reset takes the next batch's active lane count)
// restores every mutable field.
type LaneProbe struct {
	active int
	ticks  int
}

func (p *LaneProbe) ObserveLanes(st temporal.State) { p.ticks++ }

func (p *LaneProbe) LaneStopped(lane int) { p.active-- }

func (p *LaneProbe) Reset(active int) {
	p.active = active
	p.ticks = 0
}
