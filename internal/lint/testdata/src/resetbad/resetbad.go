// Package resetbad seeds resetcomplete violations: pooled components whose
// Reset forgets fields their other methods mutate.
package resetbad

import (
	"time"

	"repro/internal/sim"
	"repro/internal/temporal"
)

// Counter is pooled between runs; Reset restores count but forgets peak and
// last, so a reused arena would replay the previous run's extremes.
type Counter struct {
	name  string
	count int
	peak  int     // want "field peak of resetbad.Counter is written by its methods but not restored in Reset"
	last  float64 // want "field last of resetbad.Counter is written by its methods but not restored in Reset"
}

func (c *Counter) Name() string { return c.name }

func (c *Counter) Step(now time.Duration, bus *sim.Bus) {
	c.count++
	if c.count > c.peak {
		c.peak = c.count
	}
	c.last = now.Seconds()
}

func (c *Counter) Reset() { c.count = 0 }

// Undocumented hides a leak behind a bare escape hatch; the missing
// justification is itself a finding.
type Undocumented struct {
	//lint:resetok
	ticks int // want "lint:resetok directive needs a justification"
}

func (u *Undocumented) Name() string { return "undocumented" }

func (u *Undocumented) Step(now time.Duration, bus *sim.Bus) { u.ticks++ }

func (u *Undocumented) Reset() {}

// Watcher is a pooled state observer (the engine's observe fan-out feeds it
// each committed state), not a stepped component; Reset restores seen but
// forgets worst, so a reused observer would carry the previous run's extreme.
type Watcher struct {
	seen  int
	worst float64 // want "field worst of resetbad.Watcher is written by its methods but not restored in Reset"
}

func (w *Watcher) Observe(st temporal.State) {
	w.seen++
	if v := st.Number("accel"); v > w.worst {
		w.worst = v
	}
}

func (w *Watcher) Reset() { w.seen = 0 }

// LaneWatcher is a pooled lane observer (the lane harness feeds it each
// committed widened state); its parametered Reset — the lane-harness idiom,
// taking the next batch's active lane count — restores steps but forgets
// worst, so a reused lane suite would carry the previous batch's extreme.
type LaneWatcher struct {
	steps int
	worst float64 // want "field worst of resetbad.LaneWatcher is written by its methods but not restored in Reset"
}

func (w *LaneWatcher) ObserveLanes(st temporal.State) {
	w.steps++
	if v := st.Number("accel"); v > w.worst {
		w.worst = v
	}
}

func (w *LaneWatcher) LaneStopped(lane int) {}

func (w *LaneWatcher) Reset(active int) { w.steps = 0 }
