// Package detclean is the determinism-clean fixture: run-owned randomness,
// sorted map accumulation, and a documented wall-clock exception.
//
//lint:deterministic fixture opts into the simulation-core determinism scope
package detclean

import (
	"math/rand"
	"sort"
	"time"
)

// SortedKeys accumulates from a map but sorts before the order can escape.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SeededDraw owns its generator; the variant key's seed fully determines it.
func SeededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Epoch documents a deliberate wall-clock read.
func Epoch() int64 {
	//lint:detok fixture documents a deliberate wall-clock exception for wall-time reporting
	return time.Now().Unix()
}
