// Package slotbindbad seeds slotbind violations: inline string literals at
// the binding sites that intern schema slots.
package slotbindbad

import (
	"repro/internal/sim"
	"repro/internal/temporal"
)

func Bind(b *sim.Bus) sim.NumVar {
	return b.NumVar("Speed") // want "raw string literal \"Speed\" binds a signal slot"
}

func Atoms() []temporal.Formula {
	return []temporal.Formula{
		temporal.Var("DoorOpen"),      // want "raw string literal \"DoorOpen\" binds a signal slot"
		temporal.Ge("Speed"+"Req", 1), // want "raw string literal \"Speed\" binds a signal slot"
		temporal.CompareVars(
			"CmdSpeed", // want "raw string literal \"CmdSpeed\" binds a signal slot"
			temporal.OpLe,
			"Limit", // want "raw string literal \"Limit\" binds a signal slot"
		),
	}
}

func Predicate() temporal.Formula {
	return temporal.Pred("nonneg",
		[]string{"Speed"}, // want "raw string literal \"Speed\" binds a signal slot"
		func(s temporal.State) bool { return s.Number("Speed") >= 0 },
	)
}

func Lookup(sc *temporal.Schema) (int, bool) {
	return sc.Lookup("Speed") // want "raw string literal \"Speed\" binds a signal slot"
}
