// Package detbad seeds determinism violations: wall-clock reads, the global
// rand source, goroutine launches and order-leaking map iteration.
//
//lint:deterministic fixture opts into the simulation-core determinism scope
package detbad

import (
	"math/rand"
	"time"
)

func Stamp() int64 {
	return time.Now().Unix() // want "time.Now reads the wall clock"
}

func Jitter() int {
	return rand.Intn(10) // want "global math/rand call rand.Intn"
}

func Launch(ch chan int) {
	go send(ch) // want "goroutine launched inside the deterministic simulation core"
}

func send(ch chan int) { ch <- 1 }

func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order can leak into results"
		out = append(out, k)
	}
	return out
}
