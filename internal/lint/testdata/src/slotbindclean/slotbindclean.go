// Package slotbindclean is the slotbind-clean fixture: every binding site
// spells its signal name through a constant, a parameter, or a documented
// synthetic-name exception.
package slotbindclean

import (
	"repro/internal/sim"
	"repro/internal/temporal"
)

// The canonical signal-name catalogue of this fixture.
const (
	SigSpeed    = "Speed"
	SigLimit    = "Limit"
	SigDoorOpen = "DoorOpen"
)

func Bind(b *sim.Bus) sim.NumVar {
	return b.NumVar(SigSpeed)
}

func Atoms() []temporal.Formula {
	return []temporal.Formula{
		temporal.Var(SigDoorOpen),
		temporal.Ge(SigSpeed, 1),
		temporal.CompareVars(SigSpeed, temporal.OpLe, SigLimit),
		temporal.Pred("nonneg",
			[]string{SigSpeed},
			func(s temporal.State) bool { return s.Number(SigSpeed) >= 0 },
		),
	}
}

// Parameterised reads its name from the caller; computed names are fine.
func Parameterised(b *sim.Bus, name string) sim.BoolVar {
	return b.BoolVar(name)
}

// Synthetic documents a deliberately constructed name.
func Synthetic(goal string) temporal.Formula {
	//lint:slotbindok condition variables are namespaced per goal at runtime, not catalogue signals
	return temporal.Var("C:" + goal)
}
