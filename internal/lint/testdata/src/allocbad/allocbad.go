// Package allocbad seeds hotpathalloc violations in functions reachable from
// a fixture hot-path root.
package allocbad

// Step stands in for the engine's per-step entry point; it is itself clean,
// the violations live in its callees.
//
//lint:hotroot fixture entry point standing in for the engine's per-step path
func Step(vals []float64, out []float64) ([]float64, string, any) {
	acc := accumulate(vals, out)
	return acc, label("x"), box(1.5)
}

func accumulate(vals []float64, out []float64) []float64 {
	tmp := make([]float64, len(vals)) // want "make in"
	copy(tmp, vals)
	grown := append(out, tmp...) // want "append outside the x = append\(x, ...\) idiom"
	return grown
}

func label(suffix string) string {
	ids := []int{1, 2} // want "slice composite literal"
	_ = ids
	raw := []byte(suffix) // want "string/byte-slice conversion"
	_ = raw
	f := func() int { return 0 } // want "function literal"
	_ = f
	return "run-" + suffix // want "string concatenation"
}

func box(v float64) any {
	return v // want "interface boxing of a non-pointer value"
}
