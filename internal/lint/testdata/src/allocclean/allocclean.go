// Package allocclean is the hotpathalloc-clean fixture: a hot path built
// from the capacity-safe idioms the analyzer recognises, with its slow path
// behind a documented exception.
package allocclean

type sample struct {
	step  int
	value float64
}

type arena struct {
	buf     []float64
	samples []sample
}

// Step stands in for the engine's per-step entry point.
//
//lint:hotroot fixture entry point standing in for the engine's per-step path
func Step(a *arena, vals []float64) float64 {
	a.ensure(len(vals))
	copy(a.buf, vals)
	total := 0.0
	for i, v := range a.buf {
		s := sample{step: i, value: v}
		a.samples = append(a.samples, s)
		total += v
	}
	return total
}

// ensure grows the scratch buffer only when capacity was exceeded — the
// grow-only idiom whose amortised cost the arenas retain across runs.
func (a *arena) ensure(n int) {
	if cap(a.buf) < n {
		a.buf = make([]float64, n)
	}
	a.buf = a.buf[:n]
}

// Rebuild is the documented slow path: it reallocates the arena wholesale
// and must never run per step.
//
//lint:allocok rebuild runs once per scenario change, never inside the step loop
func Rebuild(n int) *arena {
	return &arena{
		buf:     make([]float64, n),
		samples: make([]sample, 0, n),
	}
}
