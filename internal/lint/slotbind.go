package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// analyzerSlotBind checks the interned-slot naming invariant: every signal
// name that reaches the schema — through the bus' typed handle constructors,
// the temporal atom constructors, or a Schema/Trace lookup — must be spelled
// via a named constant (the vehicle.Sig* / elevator.Sig* catalogues), never
// as an inline string literal.  The schema interns any name it is given, so
// a typo in a literal does not fail: it silently creates a fresh slot and a
// monitor that never fires, which is precisely the silent composition drift
// the thesis warns about.  Names built at runtime from variables are
// accepted; only literals (and concatenations containing literals) at the
// call site are flagged.  Deliberate synthetic names carry
// //lint:slotbindok <reason> on the call line.
func analyzerSlotBind() *Analyzer {
	return &Analyzer{
		Name: "slotbind",
		Doc:  "signal names at binding sites must be named constants, not raw literals",
		Run:  runSlotBind,
	}
}

// slotBindTargets describes the functions whose string arguments are signal
// names, keyed by package path, receiver type ("" for package functions) and
// function name; the value lists the name-argument indices.
func slotBindTargets(modPath string) map[[3]string][]int {
	sim := modPath + "/internal/sim"
	temporal := modPath + "/internal/temporal"
	return map[[3]string][]int{
		{sim, "Bus", "NumVar"}:    {0},
		{sim, "Bus", "BoolVar"}:   {0},
		{sim, "Bus", "StringVar"}: {0},

		{temporal, "", "Var"}:         {0},
		{temporal, "", "Compare"}:     {0},
		{temporal, "", "Eq"}:          {0},
		{temporal, "", "Ne"}:          {0},
		{temporal, "", "Lt"}:          {0},
		{temporal, "", "Le"}:          {0},
		{temporal, "", "Gt"}:          {0},
		{temporal, "", "Ge"}:          {0},
		{temporal, "", "CompareVars"}: {0, 2},

		{temporal, "Schema", "Intern"}:    {0},
		{temporal, "Schema", "Lookup"}:    {0},
		{temporal, "Trace", "Series"}:     {0},
		{temporal, "Trace", "BoolSeries"}: {0},
	}
}

func runSlotBind(prog *Program) []Diagnostic {
	targets := slotBindTargets(prog.ModulePath)
	temporalPath := prog.ModulePath + "/internal/temporal"
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		if pkg.Path == temporalPath {
			// The constructors themselves (and the formula parser) handle
			// caller-supplied names; they are the implementation, not a
			// binding site.
			continue
		}
		for _, file := range pkg.Files {
			f := file
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg, call)
				if fn == nil {
					return true
				}
				key, ok := calleeKey(fn)
				if !ok {
					return true
				}
				if args, ok := targets[key]; ok {
					for _, i := range args {
						if i >= len(call.Args) {
							continue
						}
						diags = append(diags, flagRawName(prog, pkg, f, call.Args[i], fn)...)
					}
				}
				// Pred's second argument lists the variables the predicate
				// reads; literal elements of that slice bind slots too.
				if key == [3]string{temporalPath, "", "Pred"} && len(call.Args) > 1 {
					if lit, ok := call.Args[1].(*ast.CompositeLit); ok {
						for _, el := range lit.Elts {
							diags = append(diags, flagRawName(prog, pkg, f, el, fn)...)
						}
					}
				}
				return true
			})
		}
	}
	return diags
}

// calleeFunc resolves the statically called function of a call expression
// (nil for builtins, conversions, and dynamic calls through variables).
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// calleeKey derives the (package, receiver, name) lookup key of a function.
func calleeKey(fn *types.Func) ([3]string, bool) {
	if fn.Pkg() == nil {
		return [3]string{}, false
	}
	key := [3]string{fn.Pkg().Path(), "", fn.Name()}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return [3]string{}, false
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return [3]string{}, false
		}
		key[1] = named.Obj().Name()
	}
	return key, true
}

// flagRawName reports the argument when it is (or contains) an inline string
// literal.  Constant identifiers, parameters and computed names pass.
func flagRawName(prog *Program, pkg *Package, f *ast.File, arg ast.Expr, callee *types.Func) []Diagnostic {
	lit := firstStringLiteral(arg)
	if lit == nil {
		return nil
	}
	var diags []Diagnostic
	if pkg.Directives.exempted(prog, f, arg.Pos(), "slotbind", "slotbindok", &diags) {
		return diags
	}
	return append(diags, Diagnostic{
		Pos:      prog.Position(lit.Pos()),
		Analyzer: "slotbind",
		Message: fmt.Sprintf("raw string literal %s binds a signal slot via %s; use the canonical signal-name constant so a typo cannot intern a fresh slot (//lint:slotbindok <reason> to exempt)",
			lit.Value, callee.FullName()),
	})
}

// firstStringLiteral finds an inline string literal inside a name argument:
// the literal itself, or either operand of a concatenation chain.
func firstStringLiteral(expr ast.Expr) *ast.BasicLit {
	switch x := ast.Unparen(expr).(type) {
	case *ast.BasicLit:
		if x.Kind == token.STRING {
			return x
		}
	case *ast.BinaryExpr:
		if lit := firstStringLiteral(x.X); lit != nil {
			return lit
		}
		return firstStringLiteral(x.Y)
	}
	return nil
}
