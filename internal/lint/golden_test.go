package lint

import (
	"fmt"
	"path"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// fixtureNames lists the analyzer fixtures under testdata/src; each "bad"
// package seeds violations annotated with // want "regexp" comments, and each
// "clean" package must produce no findings at all.
var fixtureNames = []string{
	"resetbad", "resetclean",
	"slotbindbad", "slotbindclean",
	"allocbad", "allocclean",
	"detbad", "detclean",
}

const fixturePathPrefix = "repro/internal/lint/testdata/src/"

var (
	fixtureOnce  sync.Once
	fixtureProg  *Program
	fixtureDiags []Diagnostic
	fixtureErr   error
)

// fixtureProgram loads the module plus every fixture package once and runs
// the full suite over the combined program.
func fixtureProgram(t *testing.T) (*Program, []Diagnostic) {
	t.Helper()
	fixtureOnce.Do(func() {
		prog, err := LoadModule("../..")
		if err != nil {
			fixtureErr = err
			return
		}
		for _, name := range fixtureNames {
			if _, err := prog.LoadExtraDir("testdata/src/"+name, fixturePathPrefix+name); err != nil {
				fixtureErr = fmt.Errorf("fixture %s: %w", name, err)
				return
			}
		}
		fixtureProg = prog
		fixtureDiags, fixtureErr = RunAll(prog)
	})
	if fixtureErr != nil {
		t.Fatalf("loading fixtures: %v", fixtureErr)
	}
	return fixtureProg, fixtureDiags
}

// want is one golden expectation: a diagnostic matching re must be reported
// at file:line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile(`// want "(.*)"$`)

// collectWants parses the // want comments of one fixture package.
func collectWants(t *testing.T, prog *Program, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want") {
						t.Errorf("%s: malformed want comment: %s", prog.Position(c.Pos()), c.Text)
					}
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", prog.Position(c.Pos()), m[1], err)
				}
				pos := prog.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// TestGoldenFixtures proves each analyzer against its seeded fixtures: every
// want comment must be matched by exactly one diagnostic on its line, every
// diagnostic must be expected, and clean fixtures must stay silent.
func TestGoldenFixtures(t *testing.T) {
	prog, diags := fixtureProgram(t)
	for _, name := range fixtureNames {
		name := name
		t.Run(name, func(t *testing.T) {
			pkg := prog.Package(fixturePathPrefix + name)
			if pkg == nil {
				t.Fatalf("fixture package %s not loaded", name)
			}
			wants := collectWants(t, prog, pkg)
			if strings.HasSuffix(name, "bad") && len(wants) == 0 {
				t.Fatalf("bad fixture %s has no want comments", name)
			}
			if strings.HasSuffix(name, "clean") && len(wants) > 0 {
				t.Fatalf("clean fixture %s must not carry want comments", name)
			}

			var got []Diagnostic
			dirPrefix := "internal/lint/testdata/src/" + name + "/"
			for _, d := range diags {
				if strings.HasPrefix(d.Pos.Filename, dirPrefix) {
					got = append(got, d)
				}
			}
			for _, d := range got {
				matched := false
				for _, w := range wants {
					if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
						w.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestFixtureWantsCoverEveryAnalyzer guards the golden corpus itself: each
// analyzer of the suite must be exercised by at least one seeded finding.
func TestFixtureWantsCoverEveryAnalyzer(t *testing.T) {
	_, diags := fixtureProgram(t)
	seen := make(map[string]bool)
	for _, d := range diags {
		if strings.HasPrefix(d.Pos.Filename, "internal/lint/testdata/") {
			seen[d.Analyzer] = true
		}
	}
	for _, a := range Analyzers() {
		if !seen[a.Name] {
			t.Errorf("no fixture finding exercises analyzer %s", a.Name)
		}
	}
}

// TestRepositoryIsLintClean is the merge gate: the module itself (fixtures
// excluded) must produce zero findings, so every invariant the suite proves
// holds on the committed tree.
func TestRepositoryIsLintClean(t *testing.T) {
	prog, err := LoadModule("../..")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := RunAll(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repository not lint-clean: %s", d)
	}
	if t.Failed() {
		t.Log("run `go run ./cmd/reprolint ./...` and fix or annotate each finding")
	}
}

// TestRunAllUnknownAnalyzer covers the -only error path.
func TestRunAllUnknownAnalyzer(t *testing.T) {
	prog, _ := fixtureProgram(t)
	if _, err := RunAll(prog, "nosuch"); err == nil {
		t.Fatal("expected error for unknown analyzer")
	}
}

// TestDiagnosticString pins the file:line: [analyzer] message convention.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "slotbind", Message: "m"}
	d.Pos.Filename = path.Join("internal", "x.go")
	d.Pos.Line = 7
	if got, wantStr := d.String(), "internal/x.go:7: [slotbind] m"; got != wantStr {
		t.Fatalf("String() = %q, want %q", got, wantStr)
	}
}
