package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// analyzerHotPathAlloc checks the zero-allocation invariant of the per-step
// hot path: every function statically reachable from the hot roots — the
// register-plane commit (Registers.CopyFrom, Bus.Commit), the shared
// evaluation program (Program.Step, CompiledSuite.Observe), the engine
// arena's observer fan-out (runArena.Observe, the per-step seam of grouped
// execution) and the summary-only classification (Suite.FastSummary and the
// tolerance-overriding Suite.FastSummaryAt) — must not contain
// allocating constructs.  The runtime AllocsPerRun gates prove particular
// benchmarks allocation-free; this analyzer proves the property for every
// path through the source, including ones no benchmark exercises.
//
// Flagged constructs: make/new, slice and map composite literals, &composite
// literals, func literals (closures), append that does not reassign its own
// first argument, string concatenation, string<->byte-slice conversions, and
// interface boxing of non-pointer-shaped values.  Two capacity-safe idioms
// are recognised: self-append (x = append(x, ...)), whose amortised growth
// is retained across runs by the arenas, and make guarded by a cap/len check
// (grow-only scratch buffers).  Calls through interfaces and function values
// cannot be resolved statically and are not traversed; the runtime gates
// remain the backstop for those edges.  Additional roots are declared with
// //lint:hotroot on the function; deliberate exceptions (such as the
// register file's schema-growth slow path) carry //lint:allocok <reason>.
func analyzerHotPathAlloc() *Analyzer {
	return &Analyzer{
		Name: "hotpathalloc",
		Doc:  "functions reachable from the per-step hot roots must not allocate",
		Run:  runHotPathAlloc,
	}
}

// hotRootKeys lists the well-known hot-path entry points.
func hotRootKeys(modPath string) [][3]string {
	sim := modPath + "/internal/sim"
	temporal := modPath + "/internal/temporal"
	monitor := modPath + "/internal/monitor"
	scenarios := modPath + "/internal/scenarios"
	return [][3]string{
		{temporal, "Registers", "CopyFrom"},
		{sim, "Bus", "Commit"},
		{sim, "LaneBus", "Commit"},
		{temporal, "Program", "Step"},
		{temporal, "Program", "StepLanes"},
		{monitor, "CompiledSuite", "Observe"},
		{monitor, "LaneSuite", "ObserveLanes"},
		{monitor, "Suite", "FastSummary"},
		{monitor, "CompiledSuite", "FastSummary"},
		{monitor, "Suite", "FastSummaryAt"},
		{monitor, "CompiledSuite", "FastSummaryAt"},
		{monitor, "LaneSuite", "FastSummaryAt"},
		{scenarios, "runArena", "Observe"},
	}
}

// funcNode pairs a function's type object with its declaration site.
type funcNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

func runHotPathAlloc(prog *Program) []Diagnostic {
	index := make(map[*types.Func]*funcNode)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					index[fn] = &funcNode{fn: fn, decl: fd, pkg: pkg}
				}
			}
		}
	}

	// Roots: the well-known entry points plus //lint:hotroot annotations.
	wellKnown := make(map[[3]string]bool)
	for _, k := range hotRootKeys(prog.ModulePath) {
		wellKnown[k] = true
	}
	var diags []Diagnostic
	var queue []*funcNode
	rootOf := make(map[*types.Func]string)
	for fn, node := range index {
		key, ok := calleeKey(fn)
		isRoot := ok && wellKnown[key]
		if !isRoot {
			file := fileFor(node.pkg, node.decl.Pos())
			if _, found := node.pkg.Directives.lookup(prog.Fset, file, node.decl.Pos(), "hotroot"); found {
				isRoot = true
			}
		}
		if isRoot {
			rootOf[fn] = fn.FullName()
			queue = append(queue, node)
		}
	}

	// Breadth-first reachability over static call edges, pruned at
	// //lint:allocok functions, checking each function body once.
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		file := fileFor(node.pkg, node.decl.Pos())
		if node.pkg.Directives.exempted(prog, file, node.decl.Pos(), "hotpathalloc", "allocok", &diags) {
			continue
		}
		diags = append(diags, checkAllocFree(prog, node, rootOf[node.fn])...)
		if node.decl.Body == nil {
			continue
		}
		root := rootOf[node.fn]
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(node.pkg, call)
			if callee == nil {
				return true
			}
			target, known := index[callee]
			if !known {
				return true // interface method or out-of-module; not traversed
			}
			if _, seen := rootOf[callee]; !seen {
				rootOf[callee] = root
				queue = append(queue, target)
			}
			return true
		})
	}
	return diags
}

// checkAllocFree scans one reachable function body for allocating constructs.
func checkAllocFree(prog *Program, node *funcNode, root string) []Diagnostic {
	if node.decl.Body == nil {
		return nil
	}
	pkg := node.pkg
	var diags []Diagnostic
	report := func(pos token.Pos, construct string) {
		diags = append(diags, Diagnostic{
			Pos:      prog.Position(pos),
			Analyzer: "hotpathalloc",
			Message: fmt.Sprintf("%s in %s, reachable from hot-path root %s; the per-step hot path must not allocate (//lint:allocok <reason> on the function to exempt)",
				construct, node.fn.FullName(), root),
		})
	}

	guarded := capGuardedRanges(pkg, node.decl.Body)
	inGuard := func(pos token.Pos) bool {
		for _, r := range guarded {
			if r[0] <= pos && pos <= r[1] {
				return true
			}
		}
		return false
	}
	selfAppends := selfAppendCalls(node.decl.Body)

	sig, _ := node.fn.Type().(*types.Signature)

	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			report(x.Pos(), "function literal (closure allocation)")
			return false // the closure body runs elsewhere; edges are dynamic
		case *ast.CompositeLit:
			switch pkg.Info.TypeOf(x).Underlying().(type) {
			case *types.Slice:
				report(x.Pos(), "slice composite literal")
			case *types.Map:
				report(x.Pos(), "map composite literal")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					report(x.Pos(), "address of composite literal")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(pkg.Info.TypeOf(x)) {
				report(x.Pos(), "string concatenation")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(pkg.Info.TypeOf(x.Lhs[0])) {
				report(x.Pos(), "string concatenation")
			}
			diags = append(diags, boxingInAssign(prog, node, x, root)...)
		case *ast.ReturnStmt:
			if sig != nil {
				diags = append(diags, boxingInReturn(prog, node, x, sig, root)...)
			}
		case *ast.CallExpr:
			switch callee := pkg.Info.Uses[calleeIdent(x)].(type) {
			case *types.Builtin:
				switch callee.Name() {
				case "make", "new":
					if !inGuard(x.Pos()) {
						report(x.Pos(), callee.Name())
					}
				case "append":
					if !selfAppends[x] {
						report(x.Pos(), "append outside the x = append(x, ...) idiom")
					}
				}
			default:
				diags = append(diags, allocatingConversion(prog, node, x, root)...)
				if fn := calleeFunc(pkg, x); fn != nil {
					diags = append(diags, boxingInCall(prog, node, x, fn, root)...)
				}
			}
		}
		return true
	})
	return diags
}

// calleeIdent returns the identifier a call's function expression resolves
// through (nil for non-identifier callees).
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	id, _ := ast.Unparen(call.Fun).(*ast.Ident)
	return id
}

// capGuardedRanges collects the body ranges of if statements whose condition
// consults cap or len — the grow-only scratch-buffer idiom, where make runs
// only when capacity was exceeded.
func capGuardedRanges(pkg *Package, body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || ifStmt.Cond == nil {
			return true
		}
		usesCap := false
		ast.Inspect(ifStmt.Cond, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok {
				if b, ok := pkg.Info.Uses[calleeIdent(call)].(*types.Builtin); ok {
					if b.Name() == "cap" || b.Name() == "len" {
						usesCap = true
					}
				}
			}
			return !usesCap
		})
		if usesCap {
			out = append(out, [2]token.Pos{ifStmt.Body.Pos(), ifStmt.Body.End()})
		}
		return true
	})
	return out
}

// selfAppendCalls finds append calls in the amortised self-append idiom
// x = append(x, ...), whose backing array growth is retained by the arena.
func selfAppendCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if id := calleeIdent(call); id == nil || id.Name != "append" {
			return true
		}
		if types.ExprString(assign.Lhs[0]) == types.ExprString(call.Args[0]) {
			out[call] = true
		}
		return true
	})
	return out
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// allocatingConversion flags string <-> byte/rune-slice conversions, which
// copy their operand.
func allocatingConversion(prog *Program, node *funcNode, call *ast.CallExpr, root string) []Diagnostic {
	pkg := node.pkg
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return nil
	}
	to := tv.Type
	from := pkg.Info.TypeOf(call.Args[0])
	if from == nil {
		return nil
	}
	toStr, fromStr := isStringType(to), isStringType(from)
	toSlice := isByteOrRuneSlice(to)
	fromSlice := isByteOrRuneSlice(from)
	if (toStr && fromSlice) || (toSlice && fromStr) {
		return []Diagnostic{{
			Pos:      prog.Position(call.Pos()),
			Analyzer: "hotpathalloc",
			Message: fmt.Sprintf("string/byte-slice conversion in %s, reachable from hot-path root %s; the per-step hot path must not allocate (//lint:allocok <reason> on the function to exempt)",
				node.fn.FullName(), root),
		}}
	}
	return nil
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// boxesWhenConvertedToInterface reports whether storing a value of type t in
// an interface allocates: every non-pointer-shaped value does.
func boxesWhenConvertedToInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature, *types.Chan, *types.Map:
		return false
	}
	return true
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func boxingDiag(prog *Program, node *funcNode, pos token.Pos, root string) Diagnostic {
	return Diagnostic{
		Pos:      prog.Position(pos),
		Analyzer: "hotpathalloc",
		Message: fmt.Sprintf("interface boxing of a non-pointer value in %s, reachable from hot-path root %s; the per-step hot path must not allocate (//lint:allocok <reason> on the function to exempt)",
			node.fn.FullName(), root),
	}
}

// boxingInCall flags arguments whose value is boxed into an interface
// parameter.
func boxingInCall(prog *Program, node *funcNode, call *ast.CallExpr, fn *types.Func, root string) []Diagnostic {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var diags []Diagnostic
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if len(call.Args) == params.Len() && call.Ellipsis != token.NoPos {
				pt = params.At(params.Len() - 1).Type() // slice passed through
			} else if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if isInterface(pt) && boxesWhenConvertedToInterface(node.pkg.Info.TypeOf(arg)) {
			diags = append(diags, boxingDiag(prog, node, arg.Pos(), root))
		}
	}
	return diags
}

// boxingInAssign flags assignments that box a non-pointer value into an
// interface-typed variable or field.
func boxingInAssign(prog *Program, node *funcNode, assign *ast.AssignStmt, root string) []Diagnostic {
	if assign.Tok == token.DEFINE || len(assign.Lhs) != len(assign.Rhs) {
		return nil // := takes the RHS type; no conversion occurs
	}
	pkg := node.pkg
	var diags []Diagnostic
	for i, lhs := range assign.Lhs {
		if isInterface(pkg.Info.TypeOf(lhs)) && boxesWhenConvertedToInterface(pkg.Info.TypeOf(assign.Rhs[i])) {
			diags = append(diags, boxingDiag(prog, node, assign.Rhs[i].Pos(), root))
		}
	}
	return diags
}

// boxingInReturn flags return values boxed into interface results.
func boxingInReturn(prog *Program, node *funcNode, ret *ast.ReturnStmt, sig *types.Signature, root string) []Diagnostic {
	results := sig.Results()
	if results.Len() == 0 || len(ret.Results) != results.Len() {
		return nil
	}
	var diags []Diagnostic
	for i, expr := range ret.Results {
		if isInterface(results.At(i).Type()) && boxesWhenConvertedToInterface(node.pkg.Info.TypeOf(expr)) {
			diags = append(diags, boxingDiag(prog, node, expr.Pos(), root))
		}
	}
	return diags
}
