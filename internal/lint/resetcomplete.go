package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// analyzerResetComplete checks the pooled-arena invariant: a type that is
// reset and reused between runs — its pointer type declares a Reset method
// together with either sim.Component (a stepped component), sim.StateObserver
// (an observer fed each committed state, e.g. a compiled monitor suite in the
// engine's observe fan-out) or sim.LaneObserver (a lane-batched observer fed
// widened states, e.g. monitor.LaneSuite) — must restore, in Reset, every
// field its other methods write.  Lane harness Resets legitimately take
// parameters (the active lane count), so any method named Reset qualifies,
// not just the sim.Resetter signature.  A field Reset misses keeps the
// previous run's value and corrupts every later run of the arena — the exact
// cross-run state leak the reuse tests probe dynamically, proven here for
// all fields at once.
//
// Fields are classified from the source: a field is mutable when any method
// other than Reset assigns it, takes its address, or calls a pointer-receiver
// method on it; Reset covers a field by mentioning it (assignment, nested
// reset call, or via a helper method called on the receiver).  Embedded
// fields are exempt — the vehicle/elevator binding caches deliberately
// survive Reset so handles stay resolved.  Configuration fields written only
// by scenario setup are never written by the component's own methods and are
// therefore naturally out of scope.  Deliberate exceptions carry
// //lint:resetok <reason> on the field declaration.
func analyzerResetComplete() *Analyzer {
	return &Analyzer{
		Name: "resetcomplete",
		Doc:  "pooled components must restore every mutable field in Reset",
		Run:  runResetComplete,
	}
}

func runResetComplete(prog *Program) []Diagnostic {
	simPkg := prog.Package(prog.ModulePath + "/internal/sim")
	if simPkg == nil {
		return nil
	}
	component := namedInterface(simPkg, "Component")
	observer := namedInterface(simPkg, "StateObserver")
	laneObserver := namedInterface(simPkg, "LaneObserver")
	if component == nil || observer == nil || laneObserver == nil {
		return nil
	}
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		diags = append(diags, resetCompletePackage(prog, pkg, component, observer, laneObserver)...)
	}
	return diags
}

// namedInterface resolves a package-scope interface type by name.
func namedInterface(pkg *Package, name string) *types.Interface {
	obj, ok := pkg.Types.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

func resetCompletePackage(prog *Program, pkg *Package, component, observer, laneObserver *types.Interface) []Diagnostic {
	methods := methodDeclsByType(pkg)
	structs := structSpecsByType(pkg)

	var diags []Diagnostic
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		spec := structs[tn]
		if spec == nil {
			continue
		}
		ptr := types.NewPointer(tn.Type())
		pooled := types.Implements(ptr, component) || types.Implements(ptr, observer) ||
			types.Implements(ptr, laneObserver)
		if !pooled {
			continue
		}
		decls := methods[tn]
		var resetDecl *ast.FuncDecl
		for _, d := range decls {
			if d.Name.Name == "Reset" {
				resetDecl = d
			}
		}
		if resetDecl == nil {
			// No declared Reset: either the type is not pooled at all, or
			// Reset is promoted from an embedded type, which is checked where
			// it is declared.
			continue
		}

		fields := structFields(spec)
		mutable := make(map[string]bool)
		for _, d := range decls {
			if d == resetDecl {
				continue
			}
			markMutatedFields(pkg, d, fields, mutable)
		}
		covered := fieldsCoveredByReset(pkg, tn, decls, resetDecl)

		for _, f := range fields.ordered {
			if f.embedded || !mutable[f.name] || covered[f.name] {
				continue
			}
			file := fileFor(pkg, f.pos)
			if pkg.Directives.exempted(prog, file, f.pos, "resetcomplete", "resetok", &diags) {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:      prog.Position(f.pos),
				Analyzer: "resetcomplete",
				Message: fmt.Sprintf("field %s of %s.%s is written by its methods but not restored in Reset; a pooled arena would leak it into the next run (//lint:resetok <reason> to exempt)",
					f.name, pkg.Types.Name(), tn.Name()),
			})
		}
	}
	return diags
}

// fieldInfo describes one declared struct field.
type fieldInfo struct {
	name     string
	pos      token.Pos
	embedded bool
}

type fieldSet struct {
	ordered []fieldInfo
	byName  map[string]fieldInfo
}

func structFields(spec *ast.StructType) fieldSet {
	fs := fieldSet{byName: make(map[string]fieldInfo)}
	add := func(f fieldInfo) {
		fs.ordered = append(fs.ordered, f)
		fs.byName[f.name] = f
	}
	for _, field := range spec.Fields.List {
		if len(field.Names) == 0 {
			// Embedded field: named after its type.
			name := embeddedFieldName(field.Type)
			if name != "" {
				add(fieldInfo{name: name, pos: field.Pos(), embedded: true})
			}
			continue
		}
		for _, id := range field.Names {
			add(fieldInfo{name: id.Name, pos: id.Pos()})
		}
	}
	return fs
}

func embeddedFieldName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return embeddedFieldName(t.X)
	case *ast.SelectorExpr:
		return t.Sel.Name
	}
	return ""
}

// methodDeclsByType indexes the package's method declarations by receiver
// type.
func methodDeclsByType(pkg *Package) map[*types.TypeName][]*ast.FuncDecl {
	out := make(map[*types.TypeName][]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			if tn := receiverTypeName(pkg, fd); tn != nil {
				out[tn] = append(out[tn], fd)
			}
		}
	}
	return out
}

// receiverTypeName resolves the defining TypeName of a method's receiver.
func receiverTypeName(pkg *Package, fd *ast.FuncDecl) *types.TypeName {
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.Ident:
			tn, _ := pkg.Info.Uses[x].(*types.TypeName)
			return tn
		default:
			return nil
		}
	}
}

// receiverObject returns the declared receiver variable of a method (nil when
// the receiver is unnamed).
func receiverObject(pkg *Package, fd *ast.FuncDecl) types.Object {
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	return pkg.Info.Defs[names[0]]
}

// rootFieldOf finds the receiver field an expression is rooted in: for
// recv.f, recv.f.g, recv.f[i].g and &recv.f it returns "f".
func rootFieldOf(expr ast.Expr, pkg *Package, recv types.Object) (string, bool) {
	for {
		switch x := expr.(type) {
		case *ast.ParenExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok && recv != nil && pkg.Info.Uses[id] == recv {
				return x.Sel.Name, true
			}
			expr = x.X
		default:
			return "", false
		}
	}
}

// markMutatedFields records every struct field the method writes: assignment
// or inc/dec rooted at the receiver, address-of, or a pointer-receiver method
// call on the field.
func markMutatedFields(pkg *Package, fd *ast.FuncDecl, fields fieldSet, mutable map[string]bool) {
	recv := receiverObject(pkg, fd)
	if recv == nil || fd.Body == nil {
		return
	}
	mark := func(expr ast.Expr) {
		if name, ok := rootFieldOf(expr, pkg, recv); ok {
			if _, isField := fields.byName[name]; isField {
				mutable[name] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				mark(x.X)
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if s := pkg.Info.Selections[sel]; s != nil {
					if fn, ok := s.Obj().(*types.Func); ok && pointerReceiver(fn) {
						mark(sel)
					}
				}
			}
		}
		return true
	})
}

func pointerReceiver(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isPtr := sig.Recv().Type().(*types.Pointer)
	return isPtr
}

// fieldsCoveredByReset collects every receiver field Reset mentions, directly
// or through helper methods of the same type called on the receiver.
func fieldsCoveredByReset(pkg *Package, tn *types.TypeName, decls []*ast.FuncDecl, resetDecl *ast.FuncDecl) map[string]bool {
	byName := make(map[string]*ast.FuncDecl, len(decls))
	for _, d := range decls {
		byName[d.Name.Name] = d
	}
	covered := make(map[string]bool)
	visited := map[*ast.FuncDecl]bool{}
	queue := []*ast.FuncDecl{resetDecl}
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		if visited[fd] || fd.Body == nil {
			continue
		}
		visited[fd] = true
		recv := receiverObject(pkg, fd)
		if recv == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Info.Uses[id] != recv {
				return true
			}
			covered[sel.Sel.Name] = true
			// A helper method called on the receiver covers what it touches.
			if helper, ok := byName[sel.Sel.Name]; ok && !visited[helper] {
				queue = append(queue, helper)
			}
			return true
		})
	}
	return covered
}

// structSpecsByType indexes the package's struct type declarations by their
// defining TypeName.
func structSpecsByType(pkg *Package) map[*types.TypeName]*ast.StructType {
	out := make(map[*types.TypeName]*ast.StructType)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, s := range gd.Specs {
				spec, ok := s.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := spec.Type.(*ast.StructType)
				if !ok {
					continue
				}
				if tn, ok := pkg.Info.Defs[spec.Name].(*types.TypeName); ok {
					out[tn] = st
				}
			}
		}
	}
	return out
}

// fileFor locates the parsed file containing pos.
func fileFor(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
