package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// analyzerDeterminism checks the bit-for-bit reproducibility invariant of
// the simulation core: a run's result must be a pure function of its variant
// key, which is the precondition for idempotent distributed sweep shards
// (re-running a shard anywhere must reproduce the same summary).  Inside the
// simulation kernel (internal/sim), the evaluation engine
// (internal/temporal) and the component packages (internal/vehicle,
// internal/elevator) the analyzer forbids:
//
//   - wall-clock reads (time.Now, time.Since, time.Until) — simulation time
//     is the step counter, never the host clock;
//   - the global math/rand source (package-level calls; a run-owned
//     rand.New(rand.NewSource(seed)) is fine);
//   - goroutine launches — concurrency belongs to the Engine worker pool,
//     which isolates one run per worker;
//   - map iteration that accumulates into outer state without a sort.* call
//     after the loop, which would let map order leak into results.
//
// Additional packages opt in with a //lint:deterministic file comment;
// deliberate exceptions carry //lint:detok <reason> on the offending line.
func analyzerDeterminism() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "the simulation core must be a pure function of the variant key",
		Run:  runDeterminism,
	}
}

// deterministicPackages lists the packages in scope by default.
func deterministicPackages(modPath string) map[string]bool {
	return map[string]bool{
		modPath + "/internal/sim":      true,
		modPath + "/internal/temporal": true,
		modPath + "/internal/vehicle":  true,
		modPath + "/internal/elevator": true,
	}
}

// randConstructors are the math/rand package functions that build run-owned
// deterministic generators rather than consulting the global source.
var randConstructors = map[string]bool{"New": true, "NewSource": true}

func runDeterminism(prog *Program) []Diagnostic {
	scope := deterministicPackages(prog.ModulePath)
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			if !scope[pkg.Path] && !pkg.Directives.fileHasDirective(file, "deterministic") {
				continue
			}
			diags = append(diags, determinismFile(prog, pkg, file)...)
		}
	}
	return diags
}

func determinismFile(prog *Program, pkg *Package, file *ast.File) []Diagnostic {
	var diags []Diagnostic
	flag := func(n ast.Node, msg string) {
		if pkg.Directives.exempted(prog, file, n.Pos(), "determinism", "detok", &diags) {
			return
		}
		diags = append(diags, Diagnostic{
			Pos:      prog.Position(n.Pos()),
			Analyzer: "determinism",
			Message:  msg,
		})
	}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		sortCalls := sortCallsByTarget(pkg, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				flag(x, "goroutine launched inside the deterministic simulation core; concurrency belongs to the Engine worker pool (//lint:detok <reason> to exempt)")
			case *ast.CallExpr:
				fn := calleeFunc(pkg, x)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				sig, _ := fn.Type().(*types.Signature)
				switch fn.Pkg().Path() {
				case "time":
					switch fn.Name() {
					case "Now", "Since", "Until":
						flag(x, fmt.Sprintf("time.%s reads the wall clock; simulation time must come from the step counter so reruns reproduce bit-for-bit (//lint:detok <reason> to exempt)", fn.Name()))
					}
				case "math/rand", "math/rand/v2":
					if sig != nil && sig.Recv() == nil && !randConstructors[fn.Name()] {
						flag(x, fmt.Sprintf("global math/rand call rand.%s; use a run-owned rand.New(rand.NewSource(seed)) so the variant key fully determines the run (//lint:detok <reason> to exempt)", fn.Name()))
					}
				}
			case *ast.RangeStmt:
				if isMapRange(pkg, x) {
					if !mapRangeOrderSafe(pkg, x, sortCalls) {
						flag(x, "map iteration order can leak into results here; sort what the loop accumulates after the loop, or annotate //lint:detok <reason> if the order is provably irrelevant")
					}
				}
			}
			return true
		})
	}
	return diags
}

func isMapRange(pkg *Package, r *ast.RangeStmt) bool {
	t := pkg.Info.TypeOf(r.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// sortCallsByTarget indexes calls into package sort by the object of their
// first argument's root identifier.
func sortCallsByTarget(pkg *Package, body *ast.BlockStmt) map[types.Object][]*ast.CallExpr {
	out := make(map[types.Object][]*ast.CallExpr)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(pkg, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
			return true
		}
		if obj := rootObject(pkg, call.Args[0]); obj != nil {
			out[obj] = append(out[obj], call)
		}
		return true
	})
	return out
}

// rootObject resolves the base identifier's object of an lvalue-ish
// expression (x, x[i], x.f, *x ...).
func rootObject(pkg *Package, expr ast.Expr) types.Object {
	for {
		switch x := expr.(type) {
		case *ast.ParenExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.SelectorExpr:
			expr = x.X
		case *ast.Ident:
			if obj := pkg.Info.Uses[x]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[x]
		default:
			return nil
		}
	}
}

// mapRangeOrderSafe reports whether everything the loop accumulates into
// outer state is sorted after the loop, which makes the iteration order
// unobservable.  A loop that accumulates nothing recognisable is treated as
// unsafe: its effects (calls, channel sends) may still observe the order.
func mapRangeOrderSafe(pkg *Package, r *ast.RangeStmt, sortCalls map[types.Object][]*ast.CallExpr) bool {
	written := outerWrites(pkg, r)
	if len(written) == 0 {
		return false
	}
	for obj := range written {
		sorted := false
		for _, call := range sortCalls[obj] {
			if call.Pos() > r.End() {
				sorted = true
				break
			}
		}
		if !sorted {
			return false
		}
	}
	return true
}

// outerWrites collects the objects, declared outside the range body, that
// the body assigns to.
func outerWrites(pkg *Package, r *ast.RangeStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	declaredInside := func(obj types.Object) bool {
		return obj == nil || (obj.Pos() >= r.Pos() && obj.Pos() <= r.End())
	}
	record := func(expr ast.Expr) {
		if obj := rootObject(pkg, expr); !declaredInside(obj) {
			out[obj] = true
		}
	}
	ast.Inspect(r.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(x.X)
		}
		return true
	})
	return out
}
