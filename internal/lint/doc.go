// Package lint is reprolint: a suite of static analyzers, built only on the
// standard library's go/ast, go/parser and go/types, that prove the engine's
// cross-cutting safety invariants at the source level.  The thesis' central
// claim is that hazards emerge from composition — each constituent looks
// correct in isolation while the composite violates a safety goal — and the
// codebase has grown the same failure mode: the pooled-arena, slot-binding
// and hot-path invariants introduced by earlier refactors span many packages
// and silently lose runtime-test coverage every time a field or signal is
// added.  reprolint makes them machine-checked properties of the source, the
// way ICPA itself statically checks control paths.
//
// The suite ships four analyzers:
//
//   - resetcomplete: every pooled component (a struct whose pointer type
//     implements both sim.Component and sim.Resetter) must restore every
//     mutable field in Reset, so a reused run arena never leaks state from
//     the previous run.  Escape hatch: //lint:resetok reason on the field.
//
//   - slotbind: signal names passed to Bus.NumVar/BoolVar/StringVar, the
//     temporal atom constructors and Schema/Trace lookups must be the
//     canonical signal constants, never raw string literals — a typo
//     silently interns a fresh slot and produces a monitor that never
//     fires.  Escape hatch: //lint:slotbindok reason on the call line.
//
//   - hotpathalloc: functions statically reachable from the per-step hot
//     roots (Registers.CopyFrom, Bus.Commit, Program.Step,
//     CompiledSuite.Observe, Suite.FastSummary) must not contain allocating
//     constructs, complementing the runtime AllocsPerRun gates with a
//     source-level proof.  Escape hatch: //lint:allocok reason on the
//     function; //lint:hotroot marks additional roots.
//
//   - determinism: the simulation kernel and the component packages must
//     not read wall-clock time, use the global math/rand source, launch
//     goroutines, or let map iteration order feed results — the
//     precondition for idempotent-by-variant-key distributed sweeps.
//     Escape hatch: //lint:detok reason; //lint:deterministic opts a new
//     package into the scope.
//
// Run the suite with:
//
//	go run ./cmd/reprolint ./...
//
// Each escape hatch requires a non-empty justification; a bare directive is
// itself a diagnostic, so exceptions stay documented rather than silent.
package lint
