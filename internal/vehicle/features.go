package vehicle

import (
	"math"
	"time"

	"repro/internal/sim"
)

// featureOutputs publishes the standard output signals of a feature
// subsystem through its slot-indexed handles and maintains the request-jerk
// signal used by the jerk subgoal monitors.
type featureOutputs struct {
	idx         int // index into FeatureNames / busVars.features
	prevRequest float64
	havePrev    bool
}

// reset clears the request-jerk history; idx is configuration and survives.
func (f *featureOutputs) reset() {
	f.prevRequest = 0
	f.havePrev = false
}

func (f *featureOutputs) publish(v *busVars, active bool, accelRequest float64, requestingAccel bool,
	steerRequest float64, requestingSteer bool) {

	dt := v.stepSeconds()
	jerk := 0.0
	if f.havePrev && dt > 0 {
		jerk = (accelRequest - f.prevRequest) / dt
	}
	f.prevRequest = accelRequest
	f.havePrev = true

	fv := &v.features[f.idx]
	fv.active.Write(active)
	fv.accelRequest.Write(accelRequest)
	fv.requestingAccel.Write(requestingAccel)
	fv.steerRequest.Write(steerRequest)
	fv.requestingSteer.Write(requestingSteer)
	fv.requestJerk.Write(jerk)
}

// CollisionAvoidance (CA) detects objects in the forward path and performs a
// hard braking action to stop the host vehicle before a collision.
//
// Seeded defect (thesis Scenarios 1–3): the braking action is intermittent —
// CA cancels its brake request briefly and then re-applies it, so the
// vehicle may fail to stop in time.
type CollisionAvoidance struct {
	// IntermittentBraking enables the seeded cancel/re-apply defect.
	IntermittentBraking bool
	// CancelPeriod and CancelDuration shape the defect: every CancelPeriod
	// of braking, the request is dropped for CancelDuration.
	CancelPeriod   time.Duration
	CancelDuration time.Duration

	out     featureOutputs
	braking bool
	since   time.Duration

	binding
}

// NewCollisionAvoidance returns a CA subsystem with the thesis' defect
// enabled and its default timing.
func NewCollisionAvoidance() *CollisionAvoidance {
	return &CollisionAvoidance{
		IntermittentBraking: true,
		CancelPeriod:        400 * time.Millisecond,
		CancelDuration:      60 * time.Millisecond,
		out:                 featureOutputs{idx: idxCA},
	}
}

// Name implements sim.Component.
func (c *CollisionAvoidance) Name() string { return "CollisionAvoidance" }

// Reset implements sim.Resetter.
func (c *CollisionAvoidance) Reset() {
	c.out.reset()
	c.braking = false
	c.since = 0
}

// Step implements sim.Component.
func (c *CollisionAvoidance) Step(now time.Duration, bus *sim.Bus) {
	v := c.on(bus)
	c.out.idx = idxCA
	enabled := v.caEnabled.Read()
	speed := v.speed.Read()
	distance := v.objectDistance.Read()
	forward := v.gear.Read() != "R"

	shouldBrake := false
	if enabled && forward && !math.IsNaN(distance) && !math.IsNaN(speed) && speed > 0.2 {
		timeToCollision := math.Inf(1)
		closing := speed - v.objectSpeed.Read()
		if closing > 0 {
			timeToCollision = distance / closing
		}
		// Brake when the remaining time or distance no longer allows a
		// comfortable stop.
		if timeToCollision < 1.8 || distance < 7 {
			shouldBrake = true
		}
	}

	if shouldBrake && !c.braking {
		c.braking = true
		c.since = now
	}
	if !shouldBrake {
		c.braking = false
	}

	active := c.braking
	request := 0.0
	if c.braking {
		request = CABrakeRequest
		if c.IntermittentBraking && c.CancelPeriod > 0 {
			phase := (now - c.since) % c.CancelPeriod
			if phase < c.CancelDuration && now-c.since > c.CancelPeriod/2 {
				// Defect: briefly cancel the braking action.
				active = false
				request = 0
			}
		}
	}
	c.out.publish(v, active, request, active, 0, false)
}

// RearCollisionAvoidance (RCA) should stop the vehicle when reversing toward
// an obstacle.
//
// Seeded defect (thesis Scenario 7): RCA never engages, so it never requests
// braking even when the rear object is about to be struck.
type RearCollisionAvoidance struct {
	// NeverEngages enables the seeded defect (the thesis implementation's
	// RCA was not functional).
	NeverEngages bool

	out featureOutputs

	binding
}

// NewRearCollisionAvoidance returns an RCA subsystem with the thesis' defect
// enabled.
func NewRearCollisionAvoidance() *RearCollisionAvoidance {
	return &RearCollisionAvoidance{NeverEngages: true, out: featureOutputs{idx: idxRCA}}
}

// Name implements sim.Component.
func (c *RearCollisionAvoidance) Name() string { return "RearCollisionAvoidance" }

// Reset implements sim.Resetter.
func (c *RearCollisionAvoidance) Reset() { c.out.reset() }

// Step implements sim.Component.
func (c *RearCollisionAvoidance) Step(_ time.Duration, bus *sim.Bus) {
	v := c.on(bus)
	c.out.idx = idxRCA
	enabled := v.rcaEnabled.Read()
	reverse := v.gear.Read() == "R"
	speed := v.speed.Read()
	rearDistance := v.rearObjectDistance.Read()

	active := false
	request := 0.0
	if enabled && reverse && !c.NeverEngages && !math.IsNaN(rearDistance) && speed < -0.2 && rearDistance < 6 {
		active = true
		request = -CABrakeRequest // decelerate reverse motion (positive accel)
	}
	c.out.publish(v, active, request, active, 0, false)
}

// AdaptiveCruiseControl (ACC) controls the vehicle to a set speed, or to a
// following gap behind a slower lead vehicle, and also provides the
// longitudinal control for LCA.
//
// Seeded defects (thesis Scenarios 3, 4, 8 and 10): when enabled but not
// engaged the controller keeps running against an uninitialised set speed of
// 0 m/s and keeps emitting acceleration requests; engagement is accepted
// regardless of the current gear or speed; and its request profile is not
// jerk-limited.
type AdaptiveCruiseControl struct {
	// ControlWhenNotEngaged enables the runs-while-not-engaged defect.
	ControlWhenNotEngaged bool
	// EngageWithoutChecks accepts engagement in reverse or at standstill.
	EngageWithoutChecks bool
	// DecelWhileLCA applies a fixed deceleration while LCA is active (the
	// gap-making behaviour whose missing exit condition drives Scenario 6's
	// negative speed).
	DecelWhileLCA bool

	out      featureOutputs
	engaged  bool
	setSpeed float64

	binding
}

// NewAdaptiveCruiseControl returns an ACC subsystem with the thesis' defects
// enabled.
func NewAdaptiveCruiseControl() *AdaptiveCruiseControl {
	return &AdaptiveCruiseControl{
		ControlWhenNotEngaged: true,
		EngageWithoutChecks:   true,
		DecelWhileLCA:         true,
		out:                   featureOutputs{idx: idxACC},
	}
}

// Name implements sim.Component.
func (c *AdaptiveCruiseControl) Name() string { return "AdaptiveCruiseControl" }

// Engaged reports whether ACC is currently engaged.
func (c *AdaptiveCruiseControl) Engaged() bool { return c.engaged }

// Reset implements sim.Resetter.
func (c *AdaptiveCruiseControl) Reset() {
	c.out.reset()
	c.engaged = false
	c.setSpeed = 0
}

// Step implements sim.Component.
func (c *AdaptiveCruiseControl) Step(_ time.Duration, bus *sim.Bus) {
	v := c.on(bus)
	c.out.idx = idxACC
	enabled := v.accEnabled.Read()
	engageRequest := v.accEngageRequest.Read()
	speed := v.speed.Read()
	if math.IsNaN(speed) {
		speed = 0
	}

	if !enabled {
		c.engaged = false
	}
	if enabled && engageRequest {
		// The implementation accepted engagement whenever the vehicle was
		// rolling, with no check of the direction of travel (the Scenario 8
		// defect); engagement at a standstill was rejected (Scenario 10).
		canEngage := math.Abs(speed) > 1.0
		if !c.EngageWithoutChecks {
			canEngage = canEngage && v.gear.Read() == "D" && speed > 0
		}
		if canEngage {
			c.engaged = true
			c.setSpeed = v.accSetSpeed.Read()
			if c.setSpeed <= 0 || math.IsNaN(c.setSpeed) {
				c.setSpeed = speed
			}
		}
	}
	// The driver cancels ACC with the brake pedal.
	if v.brakePedal.Read() && c.engaged {
		c.engaged = false
	}

	lcaActive := v.features[idxLCA].active.Read()

	controlling := c.engaged || (enabled && c.ControlWhenNotEngaged)
	active := c.engaged
	request := 0.0
	if controlling {
		target := c.setSpeed
		if !c.engaged {
			// Defect: the not-engaged controller uses the uninitialised
			// set speed of 0 m/s.
			target = 0
		}
		// Gap control behind a slower lead vehicle.
		distance := v.objectDistance.Read()
		leadSpeed := v.objectSpeed.Read()
		desiredGap := 2*speed + 5
		if !math.IsNaN(distance) && distance < desiredGap && leadSpeed < target {
			target = leadSpeed
		}
		request = 0.8 * (target - speed)
		if request > 2 {
			request = 2
		}
		if request < -3 {
			request = -3
		}
		if c.engaged && lcaActive && c.DecelWhileLCA {
			// Defect: fixed gap-making deceleration with no exit condition.
			request = -1.5
		}
	}
	c.out.publish(v, active, request, controlling, 0, false)
}

// LaneChangeAssist (LCA) performs a lane-change manoeuvre in conjunction
// with ACC when requested by the driver.
//
// Seeded defects (thesis Scenario 6): LCA requests steering but the steering
// command never changes (the Arbiter ignores the magnitude), and LCA remains
// active while the vehicle speed falls through zero.
type LaneChangeAssist struct {
	out     featureOutputs
	engaged bool

	binding
}

// NewLaneChangeAssist returns an LCA subsystem.
func NewLaneChangeAssist() *LaneChangeAssist {
	return &LaneChangeAssist{out: featureOutputs{idx: idxLCA}}
}

// Name implements sim.Component.
func (c *LaneChangeAssist) Name() string { return "LaneChangeAssist" }

// Reset implements sim.Resetter.
func (c *LaneChangeAssist) Reset() {
	c.out.reset()
	c.engaged = false
}

// Step implements sim.Component.
func (c *LaneChangeAssist) Step(_ time.Duration, bus *sim.Bus) {
	v := c.on(bus)
	c.out.idx = idxLCA
	enabled := v.lcaEnabled.Read()
	if !enabled {
		c.engaged = false
	}
	if enabled && v.lcaEngageRequest.Read() {
		c.engaged = true
	}
	active := c.engaged
	steer := 0.0
	if active {
		steer = 2.5 // degrees toward the adjacent lane
	}
	// LCA's longitudinal control is performed by ACC; it nevertheless
	// reports that it is requesting both acceleration and steering, which
	// is what goal 3 (acceleration/steering agreement) checks.
	accelRequest := number(v.features[idxACC].accelRequest)
	c.out.publish(v, active, accelRequest, active, steer, active)
}

// ParkAssist (PA) finds a parking space and parks the vehicle when engaged.
//
// Seeded defects (thesis Scenarios 1, 2 and 9): PA emits acceleration
// requests on a fixed internal schedule even while it is not enabled, and
// when it is engaged its acceleration request is not reproduced faithfully
// by the Arbiter (the command mismatch of Figure 5.14).
type ParkAssist struct {
	// SpuriousRequests enables the requests-while-disabled defect.
	SpuriousRequests bool

	out     featureOutputs
	engaged bool

	binding
}

// NewParkAssist returns a PA subsystem with the thesis' defect enabled.
func NewParkAssist() *ParkAssist {
	return &ParkAssist{SpuriousRequests: true, out: featureOutputs{idx: idxPA}}
}

// Name implements sim.Component.
func (c *ParkAssist) Name() string { return "ParkAssist" }

// Reset implements sim.Resetter.
func (c *ParkAssist) Reset() {
	c.out.reset()
	c.engaged = false
}

// Step implements sim.Component.
func (c *ParkAssist) Step(now time.Duration, bus *sim.Bus) {
	v := c.on(bus)
	c.out.idx = idxPA
	enabled := v.paEnabled.Read()
	if !enabled {
		c.engaged = false
	}
	if enabled && v.paEngageRequest.Read() {
		c.engaged = true
	}

	active := c.engaged
	request := 0.0
	steer := 0.0
	requestingAccel := false
	requestingSteer := false

	switch {
	case c.engaged:
		// Move into the parking spot with gentle steering.  The request is
		// at the autonomous-acceleration limit, so any overshoot in the
		// vehicle response exceeds the vehicle-level goal even though the
		// request itself satisfies the feature subgoal.
		request = 2.0
		steer = 4.0
		requestingAccel = true
		requestingSteer = true
		if v.objectDistance.Read() < 3 {
			request = -2.0
		}
	case c.SpuriousRequests:
		// Defect: the PA prototype publishes its internal test profile even
		// while disabled (thesis Figure 5.3): +2 m/s² until 2.186 s, 0
		// until 9.33 s, −2 m/s² until 9.624 s, then 0.
		switch {
		case now < 2186*time.Millisecond:
			request = 2.0
		case now >= 9330*time.Millisecond && now < 9624*time.Millisecond:
			request = -2.0
		default:
			request = 0
		}
		requestingAccel = false
	}
	c.out.publish(v, active, request, requestingAccel, steer, requestingSteer)
}
