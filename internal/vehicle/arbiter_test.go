package vehicle

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// arbiterSim builds a simulation containing only the arbiter, with feature
// and driver signals injected directly onto the bus.
func arbiterSim() *sim.Simulation {
	s := newSim()
	for _, f := range FeatureNames {
		s.Bus.InitBool(SigActive(f), false)
		s.Bus.InitBool(SigRequestingAccel(f), false)
		s.Bus.InitNumber(SigAccelRequest(f), 0)
		s.Bus.InitBool(SigRequestingSteer(f), false)
		s.Bus.InitNumber(SigSteerRequest(f), 0)
	}
	s.Bus.InitNumber(SigThrottleLevel, 0)
	s.Bus.InitNumber(SigBrakeLevel, 0)
	s.Bus.InitBool(SigSteeringActive, false)
	return s
}

func TestArbiterSelectsHighestPriorityFeature(t *testing.T) {
	s := arbiterSim()
	s.Bus.InitBool(SigActive(SourceACC), true)
	s.Bus.InitBool(SigRequestingAccel(SourceACC), true)
	s.Bus.InitNumber(SigAccelRequest(SourceACC), 1.5)
	s.Bus.InitBool(SigActive(SourceCA), true)
	s.Bus.InitBool(SigRequestingAccel(SourceCA), true)
	s.Bus.InitNumber(SigAccelRequest(SourceCA), CABrakeRequest)
	s.Add(NewArbiter())
	tr := s.Run(10 * time.Millisecond)
	last := tr.Last()
	if got := last.StringVal(SigAccelSource); got != SourceCA {
		t.Errorf("accel source = %q, want CA (highest priority)", got)
	}
	if got := last.Number(SigAccelCommand); got != CABrakeRequest {
		t.Errorf("accel command = %v, want %v", got, CABrakeRequest)
	}
	if !last.Bool(SigSelected(SourceCA)) || last.Bool(SigSelected(SourceACC)) {
		t.Error("selected flags should mark CA only")
	}
	if !last.Bool(SigAccelFromSubsystem) {
		t.Error("command should be attributed to a subsystem")
	}
}

func TestArbiterDriverPedalMapping(t *testing.T) {
	s := arbiterSim()
	s.Bus.InitNumber(SigThrottleLevel, 0.5)
	s.Add(NewArbiter())
	tr := s.Run(10 * time.Millisecond)
	if got := tr.Last().Number(SigAccelCommand); got != 0.5*MaxDriverAccel {
		t.Errorf("throttle command = %v, want %v", got, 0.5*MaxDriverAccel)
	}
	if got := tr.Last().StringVal(SigAccelSource); got != SourceDriver {
		t.Errorf("source = %q, want Driver", got)
	}

	s2 := arbiterSim()
	s2.Bus.InitNumber(SigThrottleLevel, 0.5)
	s2.Bus.InitNumber(SigBrakeLevel, 0.5)
	s2.Add(NewArbiter())
	tr2 := s2.Run(10 * time.Millisecond)
	if got := tr2.Last().Number(SigAccelCommand); got != 0.5*MaxDriverBrake {
		t.Errorf("brake takes precedence over throttle: command = %v, want %v", got, 0.5*MaxDriverBrake)
	}

	// Reverse gear flips the pedal signs.
	s3 := arbiterSim()
	s3.Bus.InitString(SigGear, "R")
	s3.Bus.InitNumber(SigThrottleLevel, 0.5)
	s3.Add(NewArbiter())
	tr3 := s3.Run(10 * time.Millisecond)
	if got := tr3.Last().Number(SigAccelCommand); got != -0.5*MaxDriverAccel {
		t.Errorf("reverse throttle command = %v, want %v", got, -0.5*MaxDriverAccel)
	}
	s4 := arbiterSim()
	s4.Bus.InitString(SigGear, "R")
	s4.Bus.InitNumber(SigBrakeLevel, 1)
	s4.Add(NewArbiter())
	if got := s4.Run(10 * time.Millisecond).Last().Number(SigAccelCommand); got != -MaxDriverBrake {
		t.Errorf("reverse brake command = %v, want %v", got, -MaxDriverBrake)
	}
}

func TestArbiterDriverOverridesSoftRequests(t *testing.T) {
	build := func(request float64, overrideDelay time.Duration) *sim.Simulation {
		s := arbiterSim()
		s.Bus.InitNumber(SigThrottleLevel, 0.4)
		s.Bus.InitBool(SigActive(SourceACC), true)
		s.Bus.InitBool(SigRequestingAccel(SourceACC), true)
		s.Bus.InitNumber(SigAccelRequest(SourceACC), request)
		a := NewArbiter()
		a.OverrideCheckDelay = overrideDelay
		s.Add(a)
		return s
	}

	// Soft request with the defect disabled: the driver wins immediately.
	tr := build(1.0, 0).Run(20 * time.Millisecond)
	if got := tr.Last().StringVal(SigAccelSource); got != SourceDriver {
		t.Errorf("driver should override a soft request, source = %q", got)
	}

	// Hard braking request: the feature keeps control (goals 5/6 allow it).
	s := arbiterSim()
	s.Bus.InitNumber(SigThrottleLevel, 0.4)
	s.Bus.InitBool(SigActive(SourceCA), true)
	s.Bus.InitBool(SigRequestingAccel(SourceCA), true)
	s.Bus.InitNumber(SigAccelRequest(SourceCA), CABrakeRequest)
	s.Add(NewArbiter())
	tr = s.Run(20 * time.Millisecond)
	if got := tr.Last().StringVal(SigAccelSource); got != SourceCA {
		t.Errorf("an emergency stop must not be overridden, source = %q", got)
	}

	// With the seeded override-check delay, the feature holds control for
	// the delay window and then loses it (the Scenario 4 behaviour).
	sim4 := build(1.0, 50*time.Millisecond)
	tr = sim4.Run(200 * time.Millisecond)
	early := tr.At(10).StringVal(SigAccelSource)
	late := tr.Last().StringVal(SigAccelSource)
	if early != SourceACC {
		t.Errorf("during the override-check delay the feature should hold control, got %q", early)
	}
	if late != SourceDriver {
		t.Errorf("after the delay the driver should regain control, got %q", late)
	}
}

func TestArbiterSteeringDefectRoutesAccelCommand(t *testing.T) {
	// Scenario 2: CA is braking (selected for acceleration) while PA is
	// merely enabled; the steering stage selects PA (reversed priority,
	// enabled features participate) and its acceleration request becomes
	// the final command, halved by the PA mismatch defect.
	s := arbiterSim()
	s.Bus.InitBool(SigActive(SourceCA), true)
	s.Bus.InitBool(SigRequestingAccel(SourceCA), true)
	s.Bus.InitNumber(SigAccelRequest(SourceCA), CABrakeRequest)
	s.Bus.InitBool(SigPAEnabled, true)
	s.Bus.InitNumber(SigAccelRequest(SourcePA), 2.0)
	s.Add(NewArbiter())
	tr := s.Run(10 * time.Millisecond)
	last := tr.Last()

	if !last.Bool(SigSelected(SourceCA)) {
		t.Error("CA should still be marked selected by the acceleration stage")
	}
	if got := last.StringVal(SigSteerSource); got != SourcePA {
		t.Errorf("steer source = %q, want PA", got)
	}
	if got := last.Number(SigAccelCommand); got != 1.0 {
		t.Errorf("final command = %v, want PA's request halved (1.0), not CA's braking", got)
	}

	// With the defects disabled, CA's braking request reaches the command.
	s2 := arbiterSim()
	s2.Bus.InitBool(SigActive(SourceCA), true)
	s2.Bus.InitBool(SigRequestingAccel(SourceCA), true)
	s2.Bus.InitNumber(SigAccelRequest(SourceCA), CABrakeRequest)
	s2.Bus.InitBool(SigPAEnabled, true)
	s2.Bus.InitNumber(SigAccelRequest(SourcePA), 2.0)
	clean := NewArbiter()
	clean.SteeringStageOverridesAccel = false
	clean.EnabledFeaturesJoinSteering = false
	s2.Add(clean)
	tr2 := s2.Run(10 * time.Millisecond)
	if got := tr2.Last().Number(SigAccelCommand); got != CABrakeRequest {
		t.Errorf("corrected arbiter command = %v, want %v", got, CABrakeRequest)
	}
}

func TestArbiterAgreementSignal(t *testing.T) {
	// LCA requests both acceleration and steering; ACC outranks it for
	// acceleration while LCA wins steering, so the agreement goal fails.
	s := arbiterSim()
	s.Bus.InitBool(SigActive(SourceACC), true)
	s.Bus.InitBool(SigRequestingAccel(SourceACC), true)
	s.Bus.InitNumber(SigAccelRequest(SourceACC), -1.5)
	s.Bus.InitBool(SigActive(SourceLCA), true)
	s.Bus.InitBool(SigRequestingAccel(SourceLCA), true)
	s.Bus.InitBool(SigRequestingSteer(SourceLCA), true)
	s.Bus.InitBool(SigLCAEnabled, true)
	s.Bus.InitNumber(SigAccelRequest(SourceLCA), -1.5)
	s.Add(NewArbiter())
	tr := s.Run(10 * time.Millisecond)
	last := tr.Last()
	if last.Bool(SigAccelSteeringAgreement) {
		t.Error("agreement should be violated when LCA is granted steering but not acceleration")
	}
	if got := last.StringVal(SigAccelSource); got != SourceACC {
		t.Errorf("accel source = %q, want ACC", got)
	}
	if got := last.StringVal(SigSteerSource); got != SourceLCA {
		t.Errorf("steer source = %q, want LCA", got)
	}
}

func TestArbiterDriverSteeringWins(t *testing.T) {
	s := arbiterSim()
	s.Bus.InitBool(SigSteeringActive, true)
	s.Bus.InitNumber(SigSteeringInput, 3)
	s.Bus.InitBool(SigActive(SourceLCA), true)
	s.Bus.InitBool(SigRequestingSteer(SourceLCA), true)
	s.Bus.InitBool(SigLCAEnabled, true)
	s.Add(NewArbiter())
	last := s.Run(10 * time.Millisecond).Last()
	if got := last.StringVal(SigSteerSource); got != SourceDriver {
		t.Errorf("steer source = %q, want Driver", got)
	}
	if last.Bool(SigSteerFromSubsystem) {
		t.Error("steering must not be attributed to a subsystem while the driver steers")
	}
	if got := last.Number(SigSteerCommand); got != 3 {
		t.Errorf("steer command = %v, want the driver input", got)
	}
}

func TestArbiterIdleOutputs(t *testing.T) {
	s := arbiterSim()
	s.Add(NewArbiter())
	last := s.Run(10 * time.Millisecond).Last()
	if got := last.StringVal(SigAccelSource); got != SourceNone {
		t.Errorf("idle accel source = %q, want None", got)
	}
	if last.Bool(SigAccelFromSubsystem) || last.Bool(SigSteerFromSubsystem) {
		t.Error("idle outputs must not be attributed to a subsystem")
	}
	if !last.Bool(SigAccelSteeringAgreement) {
		t.Error("agreement holds vacuously when nothing requests control")
	}
}

func TestArbiterSoftRequestFlags(t *testing.T) {
	s := arbiterSim()
	s.Bus.InitBool(SigActive(SourcePA), true)
	s.Bus.InitBool(SigRequestingAccel(SourcePA), true)
	s.Bus.InitNumber(SigAccelRequest(SourcePA), 1.0)
	s.Add(NewArbiter())
	last := s.Run(10 * time.Millisecond).Last()
	if !last.Bool(SigSelectedSoftRequestFwd) {
		t.Error("a +1 m/s² request is a soft forward request")
	}
	if !last.Bool(SigSelectedSoftRequestBwd) {
		t.Error("a +1 m/s² request is also soft in the backward sense")
	}

	s2 := arbiterSim()
	s2.Bus.InitBool(SigActive(SourceCA), true)
	s2.Bus.InitBool(SigRequestingAccel(SourceCA), true)
	s2.Bus.InitNumber(SigAccelRequest(SourceCA), CABrakeRequest)
	s2.Add(NewArbiter())
	last2 := s2.Run(10 * time.Millisecond).Last()
	if last2.Bool(SigSelectedSoftRequestFwd) {
		t.Error("an emergency braking request is not a soft forward request")
	}
}

func TestSteeringOrderReversedDefect(t *testing.T) {
	a := NewArbiter()
	order := a.steeringOrder()
	if order[0] != idxPA || order[len(order)-1] != idxCA {
		t.Errorf("reversed steering priority should start with PA, got %v", order)
	}
	a.ReversedSteeringPriority = false
	order = a.steeringOrder()
	if order[0] != idxCA {
		t.Errorf("normal priority should start with CA, got %v", order)
	}
}

func TestVehicleModel(t *testing.T) {
	m := Model()
	if len(m.Agents()) != 11 {
		t.Errorf("vehicle model agents = %d, want 11", len(m.Agents()))
	}
	arbiter, ok := m.Agent("Arbiter")
	if !ok {
		t.Fatal("Arbiter agent missing from the model")
	}
	if !arbiter.CanControl(SigAccelCommand) || !arbiter.CanMonitor(SigAccelRequest(SourceCA)) {
		t.Error("Arbiter capabilities look wrong")
	}
	// Every feature's request variable is indirectly reachable from the
	// vehicle acceleration via the Arbiter and powertrain.
	path := m.IndirectControlPath(SigVehicleAccel, 0)
	names := path.AgentNames()
	for _, want := range []string{"Arbiter", "Powertrain", "MotionSensors", "CA", "ACC", "PA", "Driver"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("indirect control path of vehicle acceleration should include %s: %v", want, names)
		}
	}
}
