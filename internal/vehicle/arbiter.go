package vehicle

import (
	"time"

	"repro/internal/sim"
)

// Arbitration source sentinels: features are identified by index into
// FeatureNames on the hot path; the driver and the absent source use
// negative sentinels and are translated to their string tags only when the
// source signal is published.
const (
	srcNone   = -1
	srcDriver = -2
)

// sourceTag translates an arbitration source index to its string tag.
func sourceTag(src int) string {
	switch src {
	case srcNone:
		return SourceNone
	case srcDriver:
		return SourceDriver
	default:
		return FeatureNames[src]
	}
}

// Arbiter selects the sources of the vehicle acceleration and steering
// commands from the feature subsystem requests and the driver's inputs
// (thesis Figure 5.1).
//
// The thesis' implementation arbitrated acceleration and steering
// separately, with the steering stage's priority order reversed and the
// steering stage determining which requests were actually passed along as
// commands (Section 5.4.2).  Those defects are reproduced here behind
// configuration flags, together with the delayed driver-override check that
// lets a newly engaged feature briefly take control while a pedal is applied
// (Scenario 4) and the Park Assist command mismatch (Scenario 9).
type Arbiter struct {
	// ReversedSteeringPriority enables the reversed priority order in the
	// steering arbitration stage.
	ReversedSteeringPriority bool
	// SteeringStageOverridesAccel enables the defect in which the steering
	// stage's selected source supplies the final acceleration command while
	// the selected flags still reflect the acceleration stage.
	SteeringStageOverridesAccel bool
	// EnabledFeaturesJoinSteering enables the defect in which features
	// participate in steering arbitration as soon as they are enabled or
	// engaged, not only when they are active.
	EnabledFeaturesJoinSteering bool
	// PACommandMismatch halves Park Assist's acceleration request when it
	// is passed through, producing the command/request mismatch of
	// Figure 5.14.
	PACommandMismatch bool
	// OverrideCheckDelay is how long after an arbitration source change the
	// driver-override check is skipped (the Scenario 4 defect); zero
	// disables the defect.
	OverrideCheckDelay time.Duration

	prevCommand        float64
	prevCandidate      int
	candidateChangedAt time.Duration
	started            bool

	binding
}

// DefaultOverrideCheckDelay is the seeded driver-override check delay of the
// defective Arbiter (the Scenario 4 defect window).
const DefaultOverrideCheckDelay = 150 * time.Millisecond

// NewArbiter returns an arbiter with all of the thesis' seeded defects
// enabled.
func NewArbiter() *Arbiter {
	return &Arbiter{
		ReversedSteeringPriority:    true,
		SteeringStageOverridesAccel: true,
		EnabledFeaturesJoinSteering: true,
		PACommandMismatch:           true,
		OverrideCheckDelay:          DefaultOverrideCheckDelay,
	}
}

// Name implements sim.Component.
func (a *Arbiter) Name() string { return "Arbiter" }

// Reset implements sim.Resetter.
func (a *Arbiter) Reset() {
	a.prevCommand = 0
	a.prevCandidate = 0
	a.candidateChangedAt = 0
	a.started = false
}

// Step implements sim.Component.
func (a *Arbiter) Step(now time.Duration, bus *sim.Bus) {
	v := a.on(bus)
	if !a.started {
		// The zero value of prevCandidate is a feature index; normalise it
		// to "no source yet" so the first step registers a source change.
		a.prevCandidate = srcNone
	}
	dt := v.stepSeconds()
	reverse := v.gear.Read() == "R"

	// ----- Stage 1: acceleration arbitration ---------------------------
	driverRequest, driverRequesting := a.driverAccelRequest(v, reverse)

	accelSource := srcNone
	accelRequest := 0.0
	for i := range v.features {
		fv := &v.features[i]
		if fv.active.Read() && fv.requestingAccel.Read() {
			accelSource = i
			accelRequest = number(fv.accelRequest)
			break
		}
	}

	if accelSource == srcNone && driverRequesting {
		accelSource = srcDriver
		accelRequest = driverRequest
	}

	// Track when the stage-1 candidate source last changed; the defective
	// override check is skipped for OverrideCheckDelay after a change,
	// which lets a newly engaged feature briefly take control while the
	// driver is still on a pedal (the Scenario 4 behaviour).
	if accelSource != a.prevCandidate || !a.started {
		a.candidateChangedAt = now
		a.prevCandidate = accelSource
	}

	// Driver override (goals 5 and 6): a pedal application overrides a
	// feature unless the feature is performing an emergency stop.
	if accelSource >= 0 && driverRequesting {
		softRequest := accelRequest > HardBrakeThreshold
		if reverse {
			softRequest = accelRequest < -HardBrakeThreshold
		}
		suppressed := a.OverrideCheckDelay > 0 && now-a.candidateChangedAt < a.OverrideCheckDelay
		if softRequest && !suppressed {
			accelSource = srcDriver
			accelRequest = driverRequest
		}
	}

	// Selected flags reflect the acceleration arbitration stage.
	for i := range v.features {
		v.features[i].selected.Write(i == accelSource)
	}

	// ----- Stage 2: steering arbitration --------------------------------
	steerSource := srcNone
	steerRequest := 0.0
	if v.steeringActive.Read() {
		steerSource = srcDriver
		steerRequest = number(v.steeringInput)
	} else {
		for _, i := range a.steeringOrder() {
			if a.participatesInSteering(v, i) {
				steerSource = i
				// Defect: the steering command is not updated from the
				// feature's request magnitude; it stays at zero.
				steerRequest = 0
				break
			}
		}
	}

	finalCommand := accelRequest
	finalSource := accelSource
	if a.SteeringStageOverridesAccel && steerSource >= 0 {
		// Defect: the steering stage passes along its own source's
		// acceleration request as the final command, while the selected
		// flags and the source tag still name the acceleration stage's
		// choice.
		finalCommand = number(v.features[steerSource].accelRequest)
		if steerSource == idxPA && a.PACommandMismatch {
			finalCommand *= 0.5
		}
	}

	commandJerk := 0.0
	if a.started && dt > 0 {
		commandJerk = (finalCommand - a.prevCommand) / dt
	}
	a.prevCommand = finalCommand
	a.started = true

	fromSubsystem := finalSource >= 0

	// Acceleration/steering agreement (goal 3): any feature that requests
	// both and is granted either must be granted both.
	agreement := true
	for i := range v.features {
		fv := &v.features[i]
		requestsBoth := fv.requestingAccel.Read() && fv.requestingSteer.Read()
		if !requestsBoth {
			continue
		}
		grantedAccel := accelSource == i
		grantedSteer := steerSource == i
		if (grantedAccel || grantedSteer) && !(grantedAccel && grantedSteer) {
			agreement = false
		}
	}

	v.accelCommand.Write(finalCommand)
	v.accelSource.Write(sourceTag(finalSource))
	v.accelFromSubsystem.Write(fromSubsystem)
	v.accelCommandJerk.Write(commandJerk)
	v.selectedRequestValue.Write(accelRequest)
	v.selectedSoftFwd.Write(fromSubsystem && accelRequest > HardBrakeThreshold)
	v.selectedSoftBwd.Write(fromSubsystem && accelRequest < -HardBrakeThreshold)
	v.steerCommand.Write(steerRequest)
	v.steerSource.Write(sourceTag(steerSource))
	v.steerFromSubsystem.Write(steerSource >= 0)
	v.agreement.Write(agreement)
}

// driverAccelRequest maps the pedals to a driver acceleration request.
func (a *Arbiter) driverAccelRequest(v *busVars, reverse bool) (float64, bool) {
	throttle := number(v.throttleLevel)
	brake := number(v.brakeLevel)
	switch {
	case brake > 0.02:
		if reverse {
			return -MaxDriverBrake * brake, true
		}
		return MaxDriverBrake * brake, true
	case throttle > 0.02:
		if reverse {
			return -MaxDriverAccel * throttle, true
		}
		return MaxDriverAccel * throttle, true
	default:
		return 0, false
	}
}

// steeringPriority and reversedSteeringPriority are the feature-index orders
// of the two arbitration stages, derived from numFeatures so they cannot
// drift when a feature is added.
var steeringPriority, reversedSteeringPriority = func() (fwd, rev [numFeatures]int) {
	for i := 0; i < numFeatures; i++ {
		fwd[i] = i
		rev[i] = numFeatures - 1 - i
	}
	return fwd, rev
}()

// steeringOrder returns the steering arbitration priority order as feature
// indices, reversed when the defect is enabled.
func (a *Arbiter) steeringOrder() [numFeatures]int {
	if a.ReversedSteeringPriority {
		return reversedSteeringPriority
	}
	return steeringPriority
}

// participatesInSteering reports whether the feature takes part in the
// steering arbitration stage.  Only LCA and PA control steering; with the
// seeded defect they participate as soon as they are enabled rather than
// only when active.
func (a *Arbiter) participatesInSteering(v *busVars, feature int) bool {
	if feature != idxLCA && feature != idxPA {
		return false
	}
	fv := &v.features[feature]
	if fv.active.Read() && fv.requestingSteer.Read() {
		return true
	}
	if !a.EnabledFeaturesJoinSteering {
		return false
	}
	switch feature {
	case idxLCA:
		return v.lcaEnabled.Read() && fv.active.Read()
	case idxPA:
		return v.paEnabled.Read()
	default:
		return false
	}
}
