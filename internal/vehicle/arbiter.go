package vehicle

import (
	"math"
	"time"

	"repro/internal/sim"
)

// Arbiter selects the sources of the vehicle acceleration and steering
// commands from the feature subsystem requests and the driver's inputs
// (thesis Figure 5.1).
//
// The thesis' implementation arbitrated acceleration and steering
// separately, with the steering stage's priority order reversed and the
// steering stage determining which requests were actually passed along as
// commands (Section 5.4.2).  Those defects are reproduced here behind
// configuration flags, together with the delayed driver-override check that
// lets a newly engaged feature briefly take control while a pedal is applied
// (Scenario 4) and the Park Assist command mismatch (Scenario 9).
type Arbiter struct {
	// ReversedSteeringPriority enables the reversed priority order in the
	// steering arbitration stage.
	ReversedSteeringPriority bool
	// SteeringStageOverridesAccel enables the defect in which the steering
	// stage's selected source supplies the final acceleration command while
	// the selected flags still reflect the acceleration stage.
	SteeringStageOverridesAccel bool
	// EnabledFeaturesJoinSteering enables the defect in which features
	// participate in steering arbitration as soon as they are enabled or
	// engaged, not only when they are active.
	EnabledFeaturesJoinSteering bool
	// PACommandMismatch halves Park Assist's acceleration request when it
	// is passed through, producing the command/request mismatch of
	// Figure 5.14.
	PACommandMismatch bool
	// OverrideCheckDelay is how long after an arbitration source change the
	// driver-override check is skipped (the Scenario 4 defect); zero
	// disables the defect.
	OverrideCheckDelay time.Duration

	prevCommand        float64
	prevCandidate      string
	candidateChangedAt time.Duration
	started            bool
}

// NewArbiter returns an arbiter with all of the thesis' seeded defects
// enabled.
func NewArbiter() *Arbiter {
	return &Arbiter{
		ReversedSteeringPriority:    true,
		SteeringStageOverridesAccel: true,
		EnabledFeaturesJoinSteering: true,
		PACommandMismatch:           true,
		OverrideCheckDelay:          150 * time.Millisecond,
	}
}

// Name implements sim.Component.
func (a *Arbiter) Name() string { return "Arbiter" }

// Step implements sim.Component.
func (a *Arbiter) Step(now time.Duration, bus *sim.Bus) {
	dt := stepSeconds(bus)
	reverse := bus.ReadString(SigGear) == "R"

	// ----- Stage 1: acceleration arbitration ---------------------------
	driverRequest, driverRequesting := a.driverAccelRequest(bus, reverse)

	accelSource := SourceNone
	accelRequest := 0.0
	for _, f := range FeatureNames {
		if bus.ReadBool(SigActive(f)) && bus.ReadBool(SigRequestingAccel(f)) {
			accelSource = f
			accelRequest = readNumber(bus, SigAccelRequest(f))
			break
		}
	}

	if accelSource == SourceNone && driverRequesting {
		accelSource = SourceDriver
		accelRequest = driverRequest
	}

	// Track when the stage-1 candidate source last changed; the defective
	// override check is skipped for OverrideCheckDelay after a change,
	// which lets a newly engaged feature briefly take control while the
	// driver is still on a pedal (the Scenario 4 behaviour).
	if accelSource != a.prevCandidate {
		a.candidateChangedAt = now
		a.prevCandidate = accelSource
	}

	// Driver override (goals 5 and 6): a pedal application overrides a
	// feature unless the feature is performing an emergency stop.
	if accelSource != SourceNone && accelSource != SourceDriver && driverRequesting {
		softRequest := accelRequest > HardBrakeThreshold
		if reverse {
			softRequest = accelRequest < -HardBrakeThreshold
		}
		suppressed := a.OverrideCheckDelay > 0 && now-a.candidateChangedAt < a.OverrideCheckDelay
		if softRequest && !suppressed {
			accelSource = SourceDriver
			accelRequest = driverRequest
		}
	}

	// Selected flags reflect the acceleration arbitration stage.
	for _, f := range FeatureNames {
		bus.WriteBool(SigSelected(f), f == accelSource)
	}

	// ----- Stage 2: steering arbitration --------------------------------
	steerSource := SourceNone
	steerRequest := 0.0
	if bus.ReadBool(SigSteeringActive) {
		steerSource = SourceDriver
		steerRequest = readNumber(bus, SigSteeringInput)
	} else {
		order := a.steeringOrder()
		for _, f := range order {
			if a.participatesInSteering(bus, f) {
				steerSource = f
				// Defect: the steering command is not updated from the
				// feature's request magnitude; it stays at zero.
				steerRequest = 0
				break
			}
		}
	}

	finalCommand := accelRequest
	finalSource := accelSource
	if a.SteeringStageOverridesAccel && steerSource != SourceNone && steerSource != SourceDriver {
		// Defect: the steering stage passes along its own source's
		// acceleration request as the final command, while the selected
		// flags and the source tag still name the acceleration stage's
		// choice.
		finalCommand = readNumber(bus, SigAccelRequest(steerSource))
		if steerSource == SourcePA && a.PACommandMismatch {
			finalCommand *= 0.5
		}
	}

	commandJerk := 0.0
	if a.started && dt > 0 {
		commandJerk = (finalCommand - a.prevCommand) / dt
	}
	a.prevCommand = finalCommand
	a.started = true

	fromSubsystem := finalSource != SourceDriver && finalSource != SourceNone

	// Acceleration/steering agreement (goal 3): any feature that requests
	// both and is granted either must be granted both.
	agreement := true
	for _, f := range FeatureNames {
		requestsBoth := bus.ReadBool(SigRequestingAccel(f)) && bus.ReadBool(SigRequestingSteer(f))
		if !requestsBoth {
			continue
		}
		grantedAccel := accelSource == f
		grantedSteer := steerSource == f
		if (grantedAccel || grantedSteer) && !(grantedAccel && grantedSteer) {
			agreement = false
		}
	}

	bus.WriteNumber(SigAccelCommand, finalCommand)
	bus.WriteString(SigAccelSource, finalSource)
	bus.WriteBool(SigAccelFromSubsystem, fromSubsystem)
	bus.WriteNumber(SigAccelCommandJerk, commandJerk)
	bus.WriteNumber(SigSelectedRequestValue, accelRequest)
	bus.WriteBool(SigSelectedSoftRequestFwd, fromSubsystem && accelRequest > HardBrakeThreshold)
	bus.WriteBool(SigSelectedSoftRequestBwd, fromSubsystem && accelRequest < -HardBrakeThreshold)
	bus.WriteNumber(SigSteerCommand, steerRequest)
	bus.WriteString(SigSteerSource, steerSource)
	bus.WriteBool(SigSteerFromSubsystem, steerSource != SourceDriver && steerSource != SourceNone)
	bus.WriteBool(SigAccelSteeringAgreement, agreement)
}

// driverAccelRequest maps the pedals to a driver acceleration request.
func (a *Arbiter) driverAccelRequest(bus *sim.Bus, reverse bool) (float64, bool) {
	throttle := readNumber(bus, SigThrottleLevel)
	brake := readNumber(bus, SigBrakeLevel)
	switch {
	case brake > 0.02:
		if reverse {
			return -MaxDriverBrake * brake, true
		}
		return MaxDriverBrake * brake, true
	case throttle > 0.02:
		if reverse {
			return -MaxDriverAccel * throttle, true
		}
		return MaxDriverAccel * throttle, true
	default:
		return 0, false
	}
}

// steeringOrder returns the steering arbitration priority order, reversed
// when the defect is enabled.
func (a *Arbiter) steeringOrder() []string {
	order := append([]string(nil), FeatureNames...)
	if a.ReversedSteeringPriority {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}
	return order
}

// participatesInSteering reports whether the feature takes part in the
// steering arbitration stage.  Only LCA and PA control steering; with the
// seeded defect they participate as soon as they are enabled rather than
// only when active.
func (a *Arbiter) participatesInSteering(bus *sim.Bus, feature string) bool {
	if feature != SourceLCA && feature != SourcePA {
		return false
	}
	if bus.ReadBool(SigActive(feature)) && bus.ReadBool(SigRequestingSteer(feature)) {
		return true
	}
	if !a.EnabledFeaturesJoinSteering {
		return false
	}
	switch feature {
	case SourceLCA:
		return bus.ReadBool(SigLCAEnabled) && bus.ReadBool(SigActive(SourceLCA))
	case SourcePA:
		return bus.ReadBool(SigPAEnabled)
	default:
		return false
	}
}

func readNumber(bus *sim.Bus, name string) float64 {
	v := bus.ReadNumber(name)
	if math.IsNaN(v) {
		return 0
	}
	return v
}
