package vehicle

import (
	"strconv"

	"repro/internal/sim"
)

// Feature indices into FeatureNames and busVars.features, in arbitration
// priority order.  Components identify features by index on the hot path and
// translate to the string source tags only when publishing them.
const (
	idxCA = iota
	idxRCA
	idxACC
	idxLCA
	idxPA
	numFeatures
)

func init() {
	// FeatureNames is an indexed literal over the idx* constants; this trips
	// at package load if a feature is added to one side but not the other.
	if len(FeatureNames) != numFeatures {
		panic("vehicle: FeatureNames out of sync with the feature index constants")
	}
	for i, name := range FeatureNames {
		if name == "" {
			panic("vehicle: FeatureNames has no name for feature index " + strconv.Itoa(i))
		}
	}
}

// featureVars holds the slot-indexed handles for one feature subsystem's
// standard output signals.
type featureVars struct {
	active          sim.BoolVar
	accelRequest    sim.NumVar
	requestingAccel sim.BoolVar
	steerRequest    sim.NumVar
	requestingSteer sim.BoolVar
	requestJerk     sim.NumVar
	selected        sim.BoolVar
}

// busVars is the vehicle system's view of the bus, with every signal the
// components touch resolved to a slot-indexed handle exactly once per run.
// Each component binds lazily on its first Step (guarded by a pointer
// compare), so components keep working whether they are driven by a
// Simulation or stepped by hand in tests.
type busVars struct {
	bus *sim.Bus

	periodSeconds sim.NumVar

	// Vehicle state (sensed).
	speed         sim.NumVar
	accel         sim.NumVar
	jerk          sim.NumVar
	position      sim.NumVar
	lane          sim.NumVar
	steeringAngle sim.NumVar
	stopped       sim.BoolVar
	forward       sim.BoolVar
	backward      sim.BoolVar
	collision     sim.BoolVar
	gear          sim.StringVar

	// Object tracks.
	objectDistance     sim.NumVar
	objectSpeed        sim.NumVar
	rearObjectDistance sim.NumVar

	// Driver inputs.
	throttlePedal  sim.BoolVar
	throttleLevel  sim.NumVar
	brakePedal     sim.BoolVar
	brakeLevel     sim.NumVar
	steeringActive sim.BoolVar
	steeringInput  sim.NumVar
	pedalApplied   sim.BoolVar

	// HMI state.
	caEnabled        sim.BoolVar
	rcaEnabled       sim.BoolVar
	accEnabled       sim.BoolVar
	accEngageRequest sim.BoolVar
	accSetSpeed      sim.NumVar
	lcaEnabled       sim.BoolVar
	lcaEngageRequest sim.BoolVar
	paEnabled        sim.BoolVar
	paEngageRequest  sim.BoolVar
	hmiGo            sim.BoolVar

	// Arbiter outputs.
	accelCommand         sim.NumVar
	accelSource          sim.StringVar
	accelFromSubsystem   sim.BoolVar
	accelCommandJerk     sim.NumVar
	steerCommand         sim.NumVar
	steerSource          sim.StringVar
	steerFromSubsystem   sim.BoolVar
	agreement            sim.BoolVar
	selectedSoftFwd      sim.BoolVar
	selectedSoftBwd      sim.BoolVar
	selectedRequestValue sim.NumVar

	features [numFeatures]featureVars
}

// bindVars resolves every vehicle signal against the bus schema.  It runs
// once per component per run; all per-step traffic afterwards is slot
// indexed.
func bindVars(bus *sim.Bus) *busVars {
	v := &busVars{
		bus: bus,

		periodSeconds: bus.NumVar(SigPeriodSeconds),

		speed:         bus.NumVar(SigVehicleSpeed),
		accel:         bus.NumVar(SigVehicleAccel),
		jerk:          bus.NumVar(SigVehicleJerk),
		position:      bus.NumVar(SigVehiclePosition),
		lane:          bus.NumVar(SigLanePosition),
		steeringAngle: bus.NumVar(SigSteeringAngle),
		stopped:       bus.BoolVar(SigVehicleStopped),
		forward:       bus.BoolVar(SigInForwardMotion),
		backward:      bus.BoolVar(SigInBackwardMotion),
		collision:     bus.BoolVar(SigCollision),
		gear:          bus.StringVar(SigGear),

		objectDistance:     bus.NumVar(SigObjectDistance),
		objectSpeed:        bus.NumVar(SigObjectSpeed),
		rearObjectDistance: bus.NumVar(SigRearObjectDistance),

		throttlePedal:  bus.BoolVar(SigThrottlePedal),
		throttleLevel:  bus.NumVar(SigThrottleLevel),
		brakePedal:     bus.BoolVar(SigBrakePedal),
		brakeLevel:     bus.NumVar(SigBrakeLevel),
		steeringActive: bus.BoolVar(SigSteeringActive),
		steeringInput:  bus.NumVar(SigSteeringInput),
		pedalApplied:   bus.BoolVar(SigPedalApplied),

		caEnabled:        bus.BoolVar(SigCAEnabled),
		rcaEnabled:       bus.BoolVar(SigRCAEnabled),
		accEnabled:       bus.BoolVar(SigACCEnabled),
		accEngageRequest: bus.BoolVar(SigACCEngageRequest),
		accSetSpeed:      bus.NumVar(SigACCSetSpeed),
		lcaEnabled:       bus.BoolVar(SigLCAEnabled),
		lcaEngageRequest: bus.BoolVar(SigLCAEngageRequest),
		paEnabled:        bus.BoolVar(SigPAEnabled),
		paEngageRequest:  bus.BoolVar(SigPAEngageRequest),
		hmiGo:            bus.BoolVar(SigHMIGo),

		accelCommand:         bus.NumVar(SigAccelCommand),
		accelSource:          bus.StringVar(SigAccelSource),
		accelFromSubsystem:   bus.BoolVar(SigAccelFromSubsystem),
		accelCommandJerk:     bus.NumVar(SigAccelCommandJerk),
		steerCommand:         bus.NumVar(SigSteerCommand),
		steerSource:          bus.StringVar(SigSteerSource),
		steerFromSubsystem:   bus.BoolVar(SigSteerFromSubsystem),
		agreement:            bus.BoolVar(SigAccelSteeringAgreement),
		selectedSoftFwd:      bus.BoolVar(SigSelectedSoftRequestFwd),
		selectedSoftBwd:      bus.BoolVar(SigSelectedSoftRequestBwd),
		selectedRequestValue: bus.NumVar(SigSelectedRequestValue),
	}
	for i, f := range FeatureNames {
		v.features[i] = featureVars{
			active:          bus.BoolVar(SigActive(f)),
			accelRequest:    bus.NumVar(SigAccelRequest(f)),
			requestingAccel: bus.BoolVar(SigRequestingAccel(f)),
			steerRequest:    bus.NumVar(SigSteerRequest(f)),
			requestingSteer: bus.BoolVar(SigRequestingSteer(f)),
			requestJerk:     bus.NumVar(SigRequestJerk(f)),
			selected:        bus.BoolVar(SigSelected(f)),
		}
	}
	return v
}

// binding caches a component's busVars; components embed it and call on()
// at the top of Step.  The pointer guard re-binds when the component is
// reused against a different bus, so hand-constructed components work
// without BindAll.
type binding struct {
	vars *busVars
}

func (b *binding) on(bus *sim.Bus) *busVars {
	if b.vars == nil || b.vars.bus != bus {
		b.vars = bindVars(bus)
	}
	return b.vars
}

func (b *binding) setVars(v *busVars) { b.vars = v }

// BindAll resolves one shared handle set against the bus and hands it to
// every vehicle component in the list (non-vehicle components are left
// alone), so a run builds the ~80-handle table once instead of once per
// component.  Components not covered here still bind lazily on first Step.
func BindAll(bus *sim.Bus, comps ...sim.Component) {
	v := bindVars(bus)
	for _, c := range comps {
		if b, ok := c.(interface{ setVars(*busVars) }); ok {
			b.setVars(v)
		}
	}
}

// stepSeconds returns the simulation period in seconds (1 ms default).
func (v *busVars) stepSeconds() float64 {
	if dt := v.periodSeconds.Read(); dt > 0 {
		return dt
	}
	return 0.001
}

// number reads a numeric handle, mapping the absent-signal NaN to 0 for
// control laws that treat unknown inputs as neutral.
func number(h sim.NumVar) float64 {
	v := h.Read()
	if v != v { // NaN
		return 0
	}
	return v
}
