package vehicle

import (
	"repro/internal/core"
	"repro/internal/goals"
)

// Model builds the ICPA system model of the semi-autonomous automotive
// system (thesis Figure 5.1): the driver, the HMI, the five feature
// subsystems, the Arbiter, the powertrain/brake/steering response and the
// motion sensors, together with the state variables they monitor and
// control.  The Appendix C analyses are run against this model.
func Model() *core.SystemModel {
	m := core.NewSystemModel("semi-autonomous automotive system")

	m.AddAgent(goals.NewAgent("Driver", goals.KindEnvironment,
		[]string{SigVehicleSpeed, SigObjectDistance},
		[]string{SigThrottlePedal, SigThrottleLevel, SigBrakePedal, SigBrakeLevel,
			SigSteeringActive, SigSteeringInput, SigGear}))
	m.AddAgent(goals.NewAgent("HMI", goals.KindSoftware,
		[]string{SigVehicleSpeed},
		[]string{SigCAEnabled, SigRCAEnabled, SigACCEnabled, SigACCEngageRequest, SigACCSetSpeed,
			SigLCAEnabled, SigLCAEngageRequest, SigPAEnabled, SigPAEngageRequest, SigHMIGo}))

	// Every feature subsystem observes the shared vehicle-state and driver
	// signals published on the network, in addition to its own inputs; this
	// is what makes the OR-reduced feature subgoals of Table 5.3 realizable.
	commonFeatureInputs := []string{
		SigVehicleSpeed, SigVehicleStopped, SigInForwardMotion, SigInBackwardMotion,
		SigThrottlePedal, SigBrakePedal, SigPedalApplied, SigSteeringActive, SigHMIGo, SigGear,
	}
	featureInputs := func(extra ...string) []string {
		return append(append([]string(nil), commonFeatureInputs...), extra...)
	}
	m.AddAgent(goals.NewAgent("CA", goals.KindSoftware,
		featureInputs(SigCAEnabled, SigObjectDistance, SigObjectSpeed, SigSelected(SourceCA)),
		[]string{SigActive(SourceCA), SigAccelRequest(SourceCA), SigRequestingAccel(SourceCA)}))
	m.AddAgent(goals.NewAgent("RCA", goals.KindSoftware,
		featureInputs(SigRCAEnabled, SigRearObjectDistance, SigSelected(SourceRCA)),
		[]string{SigActive(SourceRCA), SigAccelRequest(SourceRCA), SigRequestingAccel(SourceRCA)}))
	m.AddAgent(goals.NewAgent("ACC", goals.KindSoftware,
		featureInputs(SigACCEnabled, SigACCEngageRequest, SigACCSetSpeed,
			SigObjectDistance, SigObjectSpeed, SigActive(SourceLCA), SigSelected(SourceACC)),
		[]string{SigActive(SourceACC), SigAccelRequest(SourceACC), SigRequestingAccel(SourceACC)}))
	m.AddAgent(goals.NewAgent("LCA", goals.KindSoftware,
		featureInputs(SigLCAEnabled, SigLCAEngageRequest, SigAccelRequest(SourceACC), SigSelected(SourceLCA)),
		[]string{SigActive(SourceLCA), SigAccelRequest(SourceLCA), SigRequestingAccel(SourceLCA),
			SigSteerRequest(SourceLCA), SigRequestingSteer(SourceLCA)}))
	m.AddAgent(goals.NewAgent("PA", goals.KindSoftware,
		featureInputs(SigPAEnabled, SigPAEngageRequest, SigObjectDistance, SigSelected(SourcePA)),
		[]string{SigActive(SourcePA), SigAccelRequest(SourcePA), SigRequestingAccel(SourcePA),
			SigSteerRequest(SourcePA), SigRequestingSteer(SourcePA)}))

	arbiterMonitors := []string{
		SigThrottleLevel, SigBrakeLevel, SigSteeringActive, SigSteeringInput, SigGear,
	}
	for _, f := range FeatureNames {
		arbiterMonitors = append(arbiterMonitors,
			SigActive(f), SigAccelRequest(f), SigRequestingAccel(f),
			SigSteerRequest(f), SigRequestingSteer(f))
	}
	arbiterControls := []string{
		SigAccelCommand, SigAccelSource, SigAccelFromSubsystem, SigAccelCommandJerk,
		SigSteerCommand, SigSteerSource, SigSteerFromSubsystem,
		SigAccelSteeringAgreement, SigSelectedRequestValue,
		SigSelectedSoftRequestFwd, SigSelectedSoftRequestBwd,
	}
	for _, f := range FeatureNames {
		arbiterControls = append(arbiterControls, SigSelected(f))
	}
	m.AddAgent(goals.NewAgent("Arbiter", goals.KindSoftware, arbiterMonitors, arbiterControls))

	m.AddAgent(goals.NewAgent("Powertrain", goals.KindActuator,
		[]string{SigAccelCommand, SigSteerCommand},
		[]string{"PhysicalAcceleration", "PhysicalSteering"}))
	m.AddAgent(goals.NewAgent("MotionSensors", goals.KindSensor,
		[]string{"PhysicalAcceleration", "PhysicalSteering"},
		[]string{SigVehicleSpeed, SigVehicleAccel, SigVehicleJerk, SigVehiclePosition,
			SigVehicleStopped, SigInForwardMotion, SigInBackwardMotion,
			SigLanePosition, SigSteeringAngle}))
	m.AddAgent(goals.NewAgent("ObjectSensors", goals.KindSensor,
		[]string{"Environment"},
		[]string{SigObjectDistance, SigObjectSpeed, SigRearObjectDistance}))

	m.AddVariable(core.Variable{Name: SigVehicleAccel, Kind: core.VarSensed, Description: "vehicle longitudinal acceleration (sensed)"})
	m.AddVariable(core.Variable{Name: SigVehicleJerk, Kind: core.VarSensed, Description: "vehicle longitudinal jerk (sensed)"})
	m.AddVariable(core.Variable{Name: SigVehicleSpeed, Kind: core.VarSensed, Description: "vehicle speed (sensed)"})
	m.AddVariable(core.Variable{Name: SigAccelCommand, Kind: core.VarCommand, Description: "arbitrated acceleration command"})
	m.AddVariable(core.Variable{Name: SigSteerCommand, Kind: core.VarCommand, Description: "arbitrated steering command"})
	m.AddVariable(core.Variable{Name: SigAccelSource, Kind: core.VarShared, Description: "source tag of the acceleration command"})
	m.AddVariable(core.Variable{Name: SigThrottlePedal, Kind: core.VarEnvironmental, Description: "driver throttle pedal"})
	m.AddVariable(core.Variable{Name: SigBrakePedal, Kind: core.VarEnvironmental, Description: "driver brake pedal"})
	m.AddVariable(core.Variable{Name: SigSteeringActive, Kind: core.VarEnvironmental, Description: "driver steering-wheel activity"})
	for _, f := range FeatureNames {
		m.AddVariable(core.Variable{Name: SigAccelRequest(f), Kind: core.VarShared, Description: f + " acceleration request"})
	}
	return m
}
