package vehicle

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/temporal"
)

const testPeriod = time.Millisecond

// newSim returns a simulation with the standard bus initialisation used by
// the component tests.
func newSim() *sim.Simulation {
	s := sim.New(testPeriod)
	s.Bus.InitNumber(SigPeriodSeconds, testPeriod.Seconds())
	s.Bus.InitString(SigGear, "D")
	s.Bus.InitString(SigAccelSource, SourceNone)
	s.Bus.InitNumber(SigAccelCommand, 0)
	s.Bus.InitNumber(SigSteerCommand, 0)
	s.Bus.InitNumber(SigVehicleSpeed, 0)
	s.Bus.InitNumber(SigVehiclePosition, 0)
	s.Bus.InitNumber(SigObjectDistance, 1e9)
	s.Bus.InitNumber(SigRearObjectDistance, 1e9)
	return s
}

func TestSignalNameHelpers(t *testing.T) {
	if SigActive("CA") != "CA.Active" || SigAccelRequest("PA") != "PA.AccelRequest" ||
		SigRequestingAccel("ACC") != "ACC.RequestingAccel" || SigSteerRequest("LCA") != "LCA.SteerRequest" ||
		SigRequestingSteer("PA") != "PA.RequestingSteer" || SigRequestJerk("CA") != "CA.RequestJerk" ||
		SigSelected("RCA") != "RCA.Selected" {
		t.Error("signal name helpers produced unexpected names")
	}
}

func TestComponentNames(t *testing.T) {
	comps := map[string]sim.Component{
		"VehicleDynamics":        &Dynamics{},
		"Object":                 &Object{},
		"Driver":                 &Driver{},
		"CollisionAvoidance":     NewCollisionAvoidance(),
		"RearCollisionAvoidance": NewRearCollisionAvoidance(),
		"AdaptiveCruiseControl":  NewAdaptiveCruiseControl(),
		"LaneChangeAssist":       NewLaneChangeAssist(),
		"ParkAssist":             NewParkAssist(),
		"Arbiter":                NewArbiter(),
	}
	for want, c := range comps {
		if got := c.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestDynamicsTracksCommandWithOvershoot(t *testing.T) {
	s := newSim()
	s.Bus.InitNumber(SigAccelCommand, 2.0)
	s.Bus.InitString(SigAccelSource, SourceACC)
	s.Add(&Dynamics{})
	tr := s.Run(3 * time.Second)

	maxAccel, finalAccel := 0.0, tr.Last().Number(SigVehicleAccel)
	for _, a := range tr.Series(SigVehicleAccel) {
		if a > maxAccel {
			maxAccel = a
		}
	}
	if finalAccel < 1.9 || finalAccel > 2.1 {
		t.Errorf("steady-state acceleration = %v, want about 2.0", finalAccel)
	}
	// The second-order response overshoots a step command; this is the
	// behaviour behind the vehicle-level false negatives.
	if maxAccel <= 2.05 {
		t.Errorf("peak acceleration = %v, expected an overshoot above the command", maxAccel)
	}
	if maxAccel > 2.6 {
		t.Errorf("peak acceleration = %v, overshoot unrealistically large", maxAccel)
	}
	if got := tr.Last().Number(SigVehicleSpeed); got <= 0 {
		t.Error("vehicle should have gained speed")
	}
	if !tr.Last().Bool(SigInForwardMotion) {
		t.Error("vehicle should be in forward motion")
	}
}

func TestDynamicsCreepWhenIdle(t *testing.T) {
	s := newSim()
	s.Add(&Dynamics{})
	tr := s.Run(5 * time.Second)
	speed := tr.Last().Number(SigVehicleSpeed)
	if speed < 0.5 || speed > 2.0 {
		t.Errorf("idle creep speed = %v, want a low positive speed", speed)
	}

	// In reverse the creep is backwards.
	s2 := newSim()
	s2.Bus.InitString(SigGear, "R")
	s2.Add(&Dynamics{})
	tr2 := s2.Run(5 * time.Second)
	if got := tr2.Last().Number(SigVehicleSpeed); got > -0.5 {
		t.Errorf("reverse creep speed = %v, want negative", got)
	}
	if !tr2.Last().Bool(SigInBackwardMotion) {
		t.Error("reverse creep should report backward motion")
	}
}

func TestDynamicsBrakingClampsAtZeroForDriver(t *testing.T) {
	s := newSim()
	s.Bus.InitNumber(SigAccelCommand, -5)
	s.Bus.InitString(SigAccelSource, SourceDriver)
	s.Add(&Dynamics{InitialSpeed: 3})
	tr := s.Run(4 * time.Second)
	final := tr.Last().Number(SigVehicleSpeed)
	if final < 0 || final > 0.05 {
		t.Errorf("driver braking should hold the vehicle at rest, got %v", final)
	}
	if !tr.Last().Bool(SigVehicleStopped) {
		t.Error("vehicle should report stopped")
	}
}

func TestDynamicsACCBrakingDoesNotClamp(t *testing.T) {
	// The seeded defect: braking under ACC control passes through zero.
	s := newSim()
	s.Bus.InitNumber(SigAccelCommand, -1.5)
	s.Bus.InitString(SigAccelSource, SourceACC)
	s.Add(&Dynamics{InitialSpeed: 2})
	tr := s.Run(5 * time.Second)
	if got := tr.Last().Number(SigVehicleSpeed); got >= 0 {
		t.Errorf("speed = %v, expected the negative-speed defect under ACC control", got)
	}
}

func TestObjectRanges(t *testing.T) {
	s := newSim()
	s.Bus.InitNumber(SigVehiclePosition, 0)
	s.Add(&Object{InitialDistance: 20, Speed: 0})
	tr := s.Run(10 * time.Millisecond)
	if got := tr.Last().Number(SigObjectDistance); math.Abs(got-20) > 0.1 {
		t.Errorf("forward object distance = %v, want 20", got)
	}
	if tr.Last().Bool(SigCollision) {
		t.Error("no collision expected at 20 m")
	}

	s2 := newSim()
	s2.Add(&Object{InitialDistance: -8, Speed: 0})
	tr2 := s2.Run(10 * time.Millisecond)
	if got := tr2.Last().Number(SigRearObjectDistance); math.Abs(got-8) > 0.1 {
		t.Errorf("rear object distance = %v, want 8", got)
	}
	if got := tr2.Last().Number(SigObjectDistance); got < 1e8 {
		t.Errorf("forward distance for a rear object = %v, want sentinel", got)
	}
}

func TestObjectCollisionDetection(t *testing.T) {
	s := newSim()
	s.Add(
		StaticSignal{SigVehiclePosition, temporal.Number(0)},
		&Object{InitialDistance: 2, Speed: -3}, // object closing fast (oncoming)
	)
	tr := s.Run(2 * time.Second)
	collided := false
	for _, v := range tr.BoolSeries(SigCollision) {
		if v {
			collided = true
		}
	}
	if !collided {
		t.Error("an oncoming object crossing the host position should register a collision")
	}
}

// StaticSignal is a test helper component that republishes a constant value
// every step.
type StaticSignal struct {
	Signal string
	Value  temporal.Value
}

// Name implements sim.Component.
func (s StaticSignal) Name() string { return "static:" + s.Signal }

// Step implements sim.Component.
func (s StaticSignal) Step(_ time.Duration, bus *sim.Bus) { bus.Write(s.Signal, s.Value) }

func TestDriverScheduleAndPulses(t *testing.T) {
	throttle := Level(0.5)
	s := newSim()
	s.Add(&Driver{
		InitialGear: "D",
		Schedule: []DriverAction{
			{At: 5 * time.Millisecond, Throttle: throttle, EnableCA: Flag(true)},
			{At: 10 * time.Millisecond, EngageACC: Flag(true), Go: Flag(true), SetSpeed: Level(20)},
			{At: 15 * time.Millisecond, Gear: GearSel("R"), Brake: Level(0.4), Steering: Level(2)},
		},
	})
	tr := s.Run(25 * time.Millisecond)

	if !tr.At(6).Bool(SigThrottlePedal) || tr.At(6).Number(SigThrottleLevel) != 0.5 {
		t.Error("throttle should be applied from its scheduled time")
	}
	if !tr.At(6).Bool(SigCAEnabled) {
		t.Error("CA should be enabled")
	}
	// Engage and Go are one-state pulses.
	if !tr.At(10).Bool(SigACCEngageRequest) {
		t.Error("engage request should pulse at its scheduled step")
	}
	if tr.At(12).Bool(SigACCEngageRequest) {
		t.Error("engage request should not latch")
	}
	if !tr.At(10).Bool(SigHMIGo) || tr.At(12).Bool(SigHMIGo) {
		t.Error("HMI go should pulse for one state")
	}
	if got := tr.At(11).Number(SigACCSetSpeed); got != 20 {
		t.Errorf("set speed = %v, want 20", got)
	}
	// Later actions: gear, brake, steering.
	last := tr.Last()
	if last.StringVal(SigGear) != "R" || !last.Bool(SigBrakePedal) || !last.Bool(SigSteeringActive) {
		t.Error("gear/brake/steering actions not applied")
	}
	if !last.Bool(SigPedalApplied) {
		t.Error("PedalApplied should reflect the brake")
	}
}

func TestDriverDefaultGear(t *testing.T) {
	s := newSim()
	s.Add(&Driver{})
	tr := s.Run(5 * time.Millisecond)
	if got := tr.Last().StringVal(SigGear); got != "D" {
		t.Errorf("default gear = %q, want D", got)
	}
}

func TestCollisionAvoidanceBrakesAndIntermittentDefect(t *testing.T) {
	s := newSim()
	s.Bus.InitBool(SigCAEnabled, true)
	s.Bus.InitNumber(SigVehicleSpeed, 10)
	s.Bus.InitNumber(SigObjectDistance, 12)
	s.Bus.InitNumber(SigObjectSpeed, 0)
	ca := NewCollisionAvoidance()
	s.Add(ca)
	tr := s.Run(2 * time.Second)

	active := tr.BoolSeries(SigActive(SourceCA))
	requests := tr.Series(SigAccelRequest(SourceCA))
	everActive, everCancelled := false, false
	for i := range active {
		if active[i] && requests[i] == CABrakeRequest {
			everActive = true
		}
		if everActive && !active[i] {
			everCancelled = true
		}
	}
	if !everActive {
		t.Fatal("CA should engage and request hard braking")
	}
	if !everCancelled {
		t.Error("the intermittent-braking defect should briefly cancel the action")
	}

	// Without the defect, braking is continuous once engaged.
	s2 := newSim()
	s2.Bus.InitBool(SigCAEnabled, true)
	s2.Bus.InitNumber(SigVehicleSpeed, 10)
	s2.Bus.InitNumber(SigObjectDistance, 12)
	caClean := NewCollisionAvoidance()
	caClean.IntermittentBraking = false
	s2.Add(caClean)
	tr2 := s2.Run(2 * time.Second)
	active2 := tr2.BoolSeries(SigActive(SourceCA))
	started := false
	for i := range active2 {
		if active2[i] {
			started = true
		}
		if started && !active2[i] {
			t.Fatal("without the defect CA should not cancel its braking action")
		}
	}
}

func TestCollisionAvoidanceIgnoresReverseAndDisabled(t *testing.T) {
	s := newSim()
	s.Bus.InitBool(SigCAEnabled, false)
	s.Bus.InitNumber(SigVehicleSpeed, 10)
	s.Bus.InitNumber(SigObjectDistance, 3)
	s.Add(NewCollisionAvoidance())
	tr := s.Run(100 * time.Millisecond)
	if tr.Last().Bool(SigActive(SourceCA)) {
		t.Error("disabled CA must not activate")
	}

	s2 := newSim()
	s2.Bus.InitBool(SigCAEnabled, true)
	s2.Bus.InitString(SigGear, "R")
	s2.Bus.InitNumber(SigVehicleSpeed, 10)
	s2.Bus.InitNumber(SigObjectDistance, 3)
	s2.Add(NewCollisionAvoidance())
	tr2 := s2.Run(100 * time.Millisecond)
	if tr2.Last().Bool(SigActive(SourceCA)) {
		t.Error("CA must not activate in reverse")
	}
}

func TestRearCollisionAvoidanceDefect(t *testing.T) {
	s := newSim()
	s.Bus.InitBool(SigRCAEnabled, true)
	s.Bus.InitString(SigGear, "R")
	s.Bus.InitNumber(SigVehicleSpeed, -2)
	s.Bus.InitNumber(SigRearObjectDistance, 3)
	s.Add(NewRearCollisionAvoidance())
	tr := s.Run(100 * time.Millisecond)
	if tr.Last().Bool(SigActive(SourceRCA)) {
		t.Error("the seeded defect means RCA never engages")
	}

	s2 := newSim()
	s2.Bus.InitBool(SigRCAEnabled, true)
	s2.Bus.InitString(SigGear, "R")
	s2.Bus.InitNumber(SigVehicleSpeed, -2)
	s2.Bus.InitNumber(SigRearObjectDistance, 3)
	rca := NewRearCollisionAvoidance()
	rca.NeverEngages = false
	s2.Add(rca)
	tr2 := s2.Run(100 * time.Millisecond)
	if !tr2.Last().Bool(SigActive(SourceRCA)) {
		t.Error("a corrected RCA should engage when reversing toward a close object")
	}
	if got := tr2.Last().Number(SigAccelRequest(SourceRCA)); got <= 0 {
		t.Errorf("RCA braking request should oppose reverse motion, got %v", got)
	}
}

func TestACCEngagementRules(t *testing.T) {
	run := func(speed float64, gear string, withoutChecks bool) bool {
		s := newSim()
		s.Bus.InitBool(SigACCEnabled, true)
		s.Bus.InitBool(SigACCEngageRequest, true)
		s.Bus.InitString(SigGear, gear)
		s.Bus.InitNumber(SigVehicleSpeed, speed)
		acc := NewAdaptiveCruiseControl()
		acc.EngageWithoutChecks = withoutChecks
		s.Add(acc)
		s.Run(10 * time.Millisecond)
		return acc.Engaged()
	}
	if !run(10, "D", true) {
		t.Error("ACC should engage while rolling forward")
	}
	if !run(-2, "R", true) {
		t.Error("the seeded defect accepts engagement in reverse")
	}
	if run(0, "D", true) {
		t.Error("engagement at a standstill is rejected (Scenario 10)")
	}
	if run(-2, "R", false) {
		t.Error("with the direction check restored, reverse engagement is rejected")
	}
}

func TestACCControlsWhenNotEngagedDefect(t *testing.T) {
	s := newSim()
	s.Bus.InitBool(SigACCEnabled, true)
	s.Bus.InitNumber(SigVehicleSpeed, 8)
	s.Add(NewAdaptiveCruiseControl())
	tr := s.Run(50 * time.Millisecond)
	last := tr.Last()
	if last.Bool(SigActive(SourceACC)) {
		t.Error("ACC must not report active while not engaged")
	}
	if !last.Bool(SigRequestingAccel(SourceACC)) {
		t.Error("the seeded defect keeps emitting acceleration requests while not engaged")
	}
	if got := last.Number(SigAccelRequest(SourceACC)); got >= 0 {
		t.Errorf("the not-engaged controller drives toward 0 m/s, so the request should be negative, got %v", got)
	}
}

func TestACCDisengagesOnBrake(t *testing.T) {
	s := newSim()
	s.Bus.InitBool(SigACCEnabled, true)
	s.Bus.InitBool(SigACCEngageRequest, true)
	s.Bus.InitNumber(SigVehicleSpeed, 10)
	acc := NewAdaptiveCruiseControl()
	s.Add(acc)
	s.Run(10 * time.Millisecond)
	if !acc.Engaged() {
		t.Fatal("ACC should be engaged")
	}
	s.Bus.InitBool(SigBrakePedal, true)
	s.Run(10 * time.Millisecond)
	if acc.Engaged() {
		t.Error("the brake pedal should cancel ACC")
	}
}

func TestLaneChangeAssistSharesACCLongitudinalControl(t *testing.T) {
	s := newSim()
	s.Bus.InitBool(SigLCAEnabled, true)
	s.Bus.InitBool(SigLCAEngageRequest, true)
	s.Bus.InitNumber(SigAccelRequest(SourceACC), -1.2)
	s.Add(NewLaneChangeAssist())
	tr := s.Run(10 * time.Millisecond)
	last := tr.Last()
	if !last.Bool(SigActive(SourceLCA)) {
		t.Fatal("LCA should engage")
	}
	if got := last.Number(SigAccelRequest(SourceLCA)); got != -1.2 {
		t.Errorf("LCA should forward ACC's longitudinal request, got %v", got)
	}
	if !last.Bool(SigRequestingSteer(SourceLCA)) || last.Number(SigSteerRequest(SourceLCA)) == 0 {
		t.Error("LCA should request steering toward the adjacent lane")
	}
}

func TestParkAssistSpuriousRequestProfile(t *testing.T) {
	// Figure 5.3: +2 m/s² until 2.186 s, 0 until 9.33 s, −2 m/s² until
	// 9.624 s, then 0, all while PA is neither enabled nor active.
	s := newSim()
	s.Add(NewParkAssist())
	tr := s.Run(10 * time.Second)

	readAt := func(d time.Duration) float64 {
		return tr.At(int(d / testPeriod)).Number(SigAccelRequest(SourcePA))
	}
	if got := readAt(1 * time.Second); got != 2 {
		t.Errorf("PA request at 1s = %v, want 2", got)
	}
	if got := readAt(5 * time.Second); got != 0 {
		t.Errorf("PA request at 5s = %v, want 0", got)
	}
	if got := readAt(9500 * time.Millisecond); got != -2 {
		t.Errorf("PA request at 9.5s = %v, want -2", got)
	}
	if got := readAt(9900 * time.Millisecond); got != 0 {
		t.Errorf("PA request at 9.9s = %v, want 0", got)
	}
	for _, active := range tr.BoolSeries(SigActive(SourcePA)) {
		if active {
			t.Fatal("PA must never report active while not engaged")
		}
	}

	// Without the defect the disabled PA is silent.
	s2 := newSim()
	pa := NewParkAssist()
	pa.SpuriousRequests = false
	s2.Add(pa)
	tr2 := s2.Run(3 * time.Second)
	for _, req := range tr2.Series(SigAccelRequest(SourcePA)) {
		if req != 0 {
			t.Fatal("a corrected PA should not request acceleration while disabled")
		}
	}
}

func TestParkAssistEngagedBehaviour(t *testing.T) {
	s := newSim()
	s.Bus.InitBool(SigPAEnabled, true)
	s.Bus.InitBool(SigPAEngageRequest, true)
	s.Bus.InitNumber(SigObjectDistance, 10)
	s.Add(NewParkAssist())
	tr := s.Run(20 * time.Millisecond)
	last := tr.Last()
	if !last.Bool(SigActive(SourcePA)) || !last.Bool(SigRequestingAccel(SourcePA)) || !last.Bool(SigRequestingSteer(SourcePA)) {
		t.Fatal("engaged PA should be active and requesting both acceleration and steering")
	}
	if got := last.Number(SigAccelRequest(SourcePA)); got != 2 {
		t.Errorf("engaged PA request = %v, want 2", got)
	}

	// Close to the obstacle it backs off.
	s2 := newSim()
	s2.Bus.InitBool(SigPAEnabled, true)
	s2.Bus.InitBool(SigPAEngageRequest, true)
	s2.Bus.InitNumber(SigObjectDistance, 1)
	s2.Add(NewParkAssist())
	tr2 := s2.Run(20 * time.Millisecond)
	if got := tr2.Last().Number(SigAccelRequest(SourcePA)); got != -2 {
		t.Errorf("PA request close to the obstacle = %v, want -2", got)
	}
}

func TestFeatureRequestJerkSignal(t *testing.T) {
	s := newSim()
	s.Add(NewParkAssist())
	tr := s.Run(3 * time.Second)
	// At the 2.186 s step down from +2 to 0 the request jerk spikes.
	idx := int(2186 * time.Millisecond / testPeriod)
	if got := tr.At(idx).Number(SigRequestJerk(SourcePA)); got >= 0 {
		t.Errorf("request jerk at the step = %v, want a large negative value", got)
	}
}
