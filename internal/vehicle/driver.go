package vehicle

import (
	"time"

	"repro/internal/sim"
)

// DriverAction is one scheduled driver or HMI input change.  Fields are
// pointers so that an action only touches the inputs it names; in JSON the
// untouched inputs are omitted, so a marshalled schedule carries exactly the
// inputs each action names and round-trips byte-identically (part of the
// distributed wire contract, see internal/dist).
type DriverAction struct {
	// At is the simulation time of the action.
	At time.Duration `json:"at"`
	// Throttle sets the throttle pedal level (0 releases the pedal).
	Throttle *float64 `json:"throttle,omitempty"`
	// Brake sets the brake pedal level (0 releases the pedal).
	Brake *float64 `json:"brake,omitempty"`
	// Steering sets the driver steering-wheel input (0 releases it).
	Steering *float64 `json:"steering,omitempty"`
	// EnableCA, EnableRCA, EnableACC, EnableLCA, EnablePA switch features
	// on or off at the HMI.
	EnableCA  *bool `json:"enable_ca,omitempty"`
	EnableRCA *bool `json:"enable_rca,omitempty"`
	EnableACC *bool `json:"enable_acc,omitempty"`
	EnableLCA *bool `json:"enable_lca,omitempty"`
	EnablePA  *bool `json:"enable_pa,omitempty"`
	// EngageACC, EngageLCA, EngagePA request feature engagement.
	EngageACC *bool `json:"engage_acc,omitempty"`
	EngageLCA *bool `json:"engage_lca,omitempty"`
	EngagePA  *bool `json:"engage_pa,omitempty"`
	// SetSpeed sets the ACC set speed in m/s.
	SetSpeed *float64 `json:"set_speed,omitempty"`
	// Go sends the HMI "go" confirmation used to resume from a stop.
	Go *bool `json:"go,omitempty"`
	// Gear selects the transmission gear ("D" or "R").
	Gear *string `json:"gear,omitempty"`
}

// Level returns a pointer to a pedal or steering level, for building
// schedules concisely.
func Level(v float64) *float64 { return &v }

// Flag returns a pointer to a boolean, for building schedules concisely.
func Flag(v bool) *bool { return &v }

// GearSel returns a pointer to a gear selection string.
func GearSel(g string) *string { return &g }

// Driver models the driver and the Human-Machine Interface: it applies the
// scheduled pedal, steering and HMI inputs and continuously publishes the
// driver-input signals the features and the Arbiter observe.
type Driver struct {
	// Schedule is the list of timed actions.
	Schedule []DriverAction
	// InitialGear is the gear at simulation start ("D" by default).
	InitialGear string

	throttle float64
	brake    float64
	steering float64
	gear     string

	caEnabled, rcaEnabled, accEnabled, lcaEnabled, paEnabled bool
	accEngage, lcaEngage, paEngage                           bool
	setSpeed                                                 float64
	hmiGo                                                    bool
	started                                                  bool

	binding
}

// Name implements sim.Component.
func (d *Driver) Name() string { return "Driver" }

// Reset implements sim.Resetter: all pedal, HMI and gear state clears and
// InitialGear re-latches on the next first step.  Schedule and InitialGear
// are configuration and survive.
func (d *Driver) Reset() {
	d.throttle, d.brake, d.steering = 0, 0, 0
	d.gear = ""
	d.caEnabled, d.rcaEnabled, d.accEnabled, d.lcaEnabled, d.paEnabled = false, false, false, false, false
	d.accEngage, d.lcaEngage, d.paEngage = false, false, false
	d.setSpeed = 0
	d.hmiGo = false
	d.started = false
}

// Step implements sim.Component.
func (d *Driver) Step(now time.Duration, bus *sim.Bus) {
	v := d.on(bus)
	if !d.started {
		d.gear = d.InitialGear
		if d.gear == "" {
			d.gear = "D"
		}
		d.started = true
	}
	step := time.Duration(v.stepSeconds() * float64(time.Second))
	// The go confirmation and engage requests are pulses: they last one
	// state unless re-asserted.
	d.hmiGo = false
	d.accEngage = false
	d.lcaEngage = false
	d.paEngage = false

	for _, a := range d.Schedule {
		if now < a.At || now >= a.At+step {
			continue
		}
		if a.Throttle != nil {
			d.throttle = *a.Throttle
		}
		if a.Brake != nil {
			d.brake = *a.Brake
		}
		if a.Steering != nil {
			d.steering = *a.Steering
		}
		if a.EnableCA != nil {
			d.caEnabled = *a.EnableCA
		}
		if a.EnableRCA != nil {
			d.rcaEnabled = *a.EnableRCA
		}
		if a.EnableACC != nil {
			d.accEnabled = *a.EnableACC
		}
		if a.EnableLCA != nil {
			d.lcaEnabled = *a.EnableLCA
		}
		if a.EnablePA != nil {
			d.paEnabled = *a.EnablePA
		}
		if a.EngageACC != nil {
			d.accEngage = *a.EngageACC
		}
		if a.EngageLCA != nil {
			d.lcaEngage = *a.EngageLCA
		}
		if a.EngagePA != nil {
			d.paEngage = *a.EngagePA
		}
		if a.SetSpeed != nil {
			d.setSpeed = *a.SetSpeed
		}
		if a.Go != nil {
			d.hmiGo = *a.Go
		}
		if a.Gear != nil {
			d.gear = *a.Gear
		}
	}

	v.throttlePedal.Write(d.throttle > 0.02)
	v.throttleLevel.Write(d.throttle)
	v.brakePedal.Write(d.brake > 0.02)
	v.brakeLevel.Write(d.brake)
	v.steeringActive.Write(d.steering != 0)
	v.steeringInput.Write(d.steering)
	v.pedalApplied.Write(d.throttle > 0.02 || d.brake > 0.02)
	v.gear.Write(d.gear)

	v.caEnabled.Write(d.caEnabled)
	v.rcaEnabled.Write(d.rcaEnabled)
	v.accEnabled.Write(d.accEnabled)
	v.lcaEnabled.Write(d.lcaEnabled)
	v.paEnabled.Write(d.paEnabled)
	v.accEngageRequest.Write(d.accEngage)
	v.lcaEngageRequest.Write(d.lcaEngage)
	v.paEngageRequest.Write(d.paEngage)
	v.accSetSpeed.Write(d.setSpeed)
	v.hmiGo.Write(d.hmiGo)
}
