// Package vehicle implements the semi-autonomous automotive system evaluated
// in Chapter 5 of the thesis (Figure 5.1): longitudinal/lateral vehicle
// dynamics, the Driver and Human-Machine Interface, the five feature
// subsystems (Collision Avoidance, Rear Collision Avoidance, Adaptive Cruise
// Control, Lane Change Assist and Park Assist), and the Arbiter that selects
// the acceleration and steering commands.
//
// The thesis evaluated an incomplete research implementation in
// CarSim/Simulink; this package substitutes a fixed-step simulation and
// deliberately seeds the design defects the thesis discovered (PA requests
// while disabled, intermittent CA braking, ACC controlling while not
// engaged, reversed steering-arbitration priority, RCA never engaging, and
// the PA command mismatch), so that the run-time goal monitors reproduce the
// structure of the Appendix D violation tables.
package vehicle

import (
	"math"
	"time"

	"repro/internal/sim"
)

// Feature names, used as arbitration source tags.
const (
	// SourceDriver tags commands originating from the driver's pedals.
	SourceDriver = "Driver"
	// SourceCA tags Collision Avoidance.
	SourceCA = "CA"
	// SourceRCA tags Rear Collision Avoidance.
	SourceRCA = "RCA"
	// SourceACC tags Adaptive Cruise Control.
	SourceACC = "ACC"
	// SourceLCA tags Lane Change Assist.
	SourceLCA = "LCA"
	// SourcePA tags Park Assist.
	SourcePA = "PA"
	// SourceNone tags the absence of any acceleration or steering source.
	SourceNone = "None"
)

// FeatureNames lists the feature subsystems in arbitration priority order
// (highest priority first).  The indexed literal pins each name to its idx*
// constant (signals.go), and an init check asserts the list covers exactly
// numFeatures entries, so the name table and the slot-indexed feature
// machinery cannot drift apart.
var FeatureNames = []string{
	idxCA:  SourceCA,
	idxRCA: SourceRCA,
	idxACC: SourceACC,
	idxLCA: SourceLCA,
	idxPA:  SourcePA,
}

// Bus signal names.  Goal formulas reference these names directly.
const (
	// SigPeriodSeconds carries the simulation step period in seconds.
	SigPeriodSeconds = "SimPeriodSeconds"

	// Vehicle state (sensed).
	SigVehicleSpeed     = "Vehicle.Speed"
	SigVehicleAccel     = "Vehicle.Accel"
	SigVehicleJerk      = "Vehicle.Jerk"
	SigVehiclePosition  = "Vehicle.Position"
	SigVehicleStopped   = "Vehicle.Stopped"
	SigInForwardMotion  = "Vehicle.InForwardMotion"
	SigInBackwardMotion = "Vehicle.InBackwardMotion"
	SigGear             = "Vehicle.Gear"
	SigLanePosition     = "Vehicle.LanePosition"
	SigSteeringAngle    = "Vehicle.SteeringAngle"
	SigCollision        = "Vehicle.Collision"

	// Forward and rear object tracks (sensed).
	SigObjectDistance     = "Object.Distance"
	SigObjectSpeed        = "Object.Speed"
	SigRearObjectDistance = "RearObject.Distance"

	// Driver inputs.
	SigThrottlePedal  = "Driver.ThrottlePedal"
	SigThrottleLevel  = "Driver.ThrottleLevel"
	SigBrakePedal     = "Driver.BrakePedal"
	SigBrakeLevel     = "Driver.BrakeLevel"
	SigSteeringActive = "Driver.SteeringActive"
	SigSteeringInput  = "Driver.SteeringInput"
	SigPedalApplied   = "Driver.PedalApplied"

	// HMI state.
	SigCAEnabled        = "HMI.CAEnabled"
	SigRCAEnabled       = "HMI.RCAEnabled"
	SigACCEnabled       = "HMI.ACCEnabled"
	SigACCEngageRequest = "HMI.ACCEngageRequest"
	SigACCSetSpeed      = "HMI.ACCSetSpeed"
	SigLCAEnabled       = "HMI.LCAEnabled"
	SigLCAEngageRequest = "HMI.LCAEngageRequest"
	SigPAEnabled        = "HMI.PAEnabled"
	SigPAEngageRequest  = "HMI.PAEngageRequest"
	SigHMIGo            = "HMI.Go"

	// Arbiter outputs.
	SigAccelCommand           = "Arbiter.AccelCommand"
	SigAccelSource            = "Arbiter.AccelSource"
	SigAccelFromSubsystem     = "Arbiter.AccelFromSubsystem"
	SigAccelCommandJerk       = "Arbiter.AccelCommandJerk"
	SigSteerCommand           = "Arbiter.SteerCommand"
	SigSteerSource            = "Arbiter.SteerSource"
	SigSteerFromSubsystem     = "Arbiter.SteerFromSubsystem"
	SigAccelSteeringAgreement = "Arbiter.AccelSteeringAgreement"
	SigSelectedSoftRequestFwd = "Arbiter.SelectedSoftRequestFwd"
	SigSelectedSoftRequestBwd = "Arbiter.SelectedSoftRequestBwd"
	SigSelectedRequestValue   = "Arbiter.SelectedRequestValue"
)

// Per-feature signal names.
const (
	sigSuffixActive          = ".Active"
	sigSuffixAccelRequest    = ".AccelRequest"
	sigSuffixRequestingAccel = ".RequestingAccel"
	sigSuffixSteerRequest    = ".SteerRequest"
	sigSuffixRequestingSteer = ".RequestingSteer"
	sigSuffixRequestJerk     = ".RequestJerk"
	sigSuffixSelected        = ".Selected"
)

// featureSigNames precomputes the standard per-feature signal names for the
// known features, so the Sig* helpers are allocation-free on the paths that
// run per variant (bus re-initialisation on a reused arena, handle binding,
// goal building).  Unknown feature strings still concatenate.
var featureSigNames = func() map[string][7]string {
	m := make(map[string][7]string, len(FeatureNames))
	for _, f := range FeatureNames {
		m[f] = [7]string{
			f + sigSuffixActive,
			f + sigSuffixAccelRequest,
			f + sigSuffixRequestingAccel,
			f + sigSuffixSteerRequest,
			f + sigSuffixRequestingSteer,
			f + sigSuffixRequestJerk,
			f + sigSuffixSelected,
		}
	}
	return m
}()

func featureSig(feature string, idx int, suffix string) string {
	if names, ok := featureSigNames[feature]; ok {
		return names[idx]
	}
	return feature + suffix
}

// SigActive returns the Active signal name for a feature.
func SigActive(feature string) string { return featureSig(feature, 0, sigSuffixActive) }

// SigAccelRequest returns the acceleration-request signal name for a feature.
func SigAccelRequest(feature string) string { return featureSig(feature, 1, sigSuffixAccelRequest) }

// SigRequestingAccel returns the requesting-acceleration flag name.
func SigRequestingAccel(feature string) string {
	return featureSig(feature, 2, sigSuffixRequestingAccel)
}

// SigSteerRequest returns the steering-request signal name for a feature.
func SigSteerRequest(feature string) string { return featureSig(feature, 3, sigSuffixSteerRequest) }

// SigRequestingSteer returns the requesting-steering flag name.
func SigRequestingSteer(feature string) string {
	return featureSig(feature, 4, sigSuffixRequestingSteer)
}

// SigRequestJerk returns the request-jerk signal name for a feature.
func SigRequestJerk(feature string) string { return featureSig(feature, 5, sigSuffixRequestJerk) }

// SigSelected returns the arbiter's selected flag name for a feature.
func SigSelected(feature string) string { return featureSig(feature, 6, sigSuffixSelected) }

// Physical and policy parameters.
const (
	// AutoAccelLimit is the vehicle-level limit on autonomous acceleration
	// (goal 1), in m/s².
	AutoAccelLimit = 2.0
	// AutoJerkLimit is the vehicle-level limit on autonomous jerk (goal 2),
	// in m/s³.
	AutoJerkLimit = 2.5
	// HardBrakeThreshold is the deceleration below which a feature request
	// counts as an emergency stop that the driver may not override
	// (goals 5 and 6), in m/s².
	HardBrakeThreshold = -2.0
	// StoppedSpeedEpsilon is the speed magnitude below which the vehicle
	// is considered stopped.
	StoppedSpeedEpsilon = 0.01
	// AccelResponseOmega is the natural frequency of the second-order
	// powertrain/brake response, in rad/s.
	AccelResponseOmega = 6.0
	// AccelResponseZeta is the damping ratio of the powertrain/brake
	// response.  The response is underdamped, so the achieved acceleration
	// overshoots the command by roughly 16%; this is the vehicle-dynamics
	// behaviour that lets the sensed acceleration and jerk violate the
	// system goals even when every command and request is within bounds
	// (the thesis' false negatives).
	AccelResponseZeta = 0.5
	// MaxDriverAccel is the acceleration at full throttle, in m/s².
	MaxDriverAccel = 3.0
	// MaxDriverBrake is the deceleration at full brake, in m/s².
	MaxDriverBrake = -8.0
	// CABrakeRequest is Collision Avoidance's hard-braking request, m/s².
	CABrakeRequest = -8.0
	// CreepAccel is the automatic-transmission creep acceleration applied
	// when the vehicle is in gear with no pedal and no command, in m/s².
	CreepAccel = 0.4
	// StoppedTime is the duration the vehicle must be stopped before the
	// no-acceleration-from-stop goal (goal 4) arms.
	StoppedTime = 500 * time.Millisecond
	// GoTime is the window after a throttle application or HMI go signal
	// during which acceleration from a stop is permitted (goal 4).
	GoTime = 500 * time.Millisecond
)

// Dynamics is the host-vehicle longitudinal and lateral dynamics model: the
// substitute for the CarSim vehicle plant.  The achieved acceleration tracks
// the arbiter's command with a first-order lag; speed and position are
// integrated from it.  The speed is clamped at zero when braking to a stop
// under driver, CA, RCA or PA control, but deliberately NOT when ACC or LCA
// are in control, reproducing the negative-speed anomaly the thesis observed
// in Scenario 6.
type Dynamics struct {
	speed     float64
	accel     float64
	accelRate float64
	position  float64
	lane      float64
	steering  float64

	// InitialSpeed sets the speed at the first step, in m/s.
	InitialSpeed float64
	started      bool

	binding
}

// Name implements sim.Component.
func (d *Dynamics) Name() string { return "VehicleDynamics" }

// Reset implements sim.Resetter: the vehicle returns to rest at the origin
// and re-latches InitialSpeed on the next first step.
func (d *Dynamics) Reset() {
	d.speed, d.accel, d.accelRate = 0, 0, 0
	d.position, d.lane, d.steering = 0, 0, 0
	d.started = false
}

// Step implements sim.Component.
func (d *Dynamics) Step(_ time.Duration, bus *sim.Bus) {
	v := d.on(bus)
	if !d.started {
		d.speed = d.InitialSpeed
		d.started = true
	}
	dt := v.stepSeconds()
	cmd := number(v.accelCommand)
	source := v.accelSource.Read()
	reverse := v.gear.Read() == "R"

	// Automatic-transmission creep: with no command and no pedal, the
	// vehicle slowly creeps in the direction of the gear.
	if source == SourceNone || source == "" {
		cmd = CreepAccel
		if reverse {
			cmd = -CreepAccel
		}
		if math.Abs(d.speed) > 1.5 {
			cmd = 0
		}
	}

	// Second-order (underdamped) powertrain/brake response: the achieved
	// acceleration overshoots step changes in the command.
	d.accelRate += (AccelResponseOmega*AccelResponseOmega*(cmd-d.accel) -
		2*AccelResponseZeta*AccelResponseOmega*d.accelRate) * dt
	d.accel += d.accelRate * dt
	jerk := d.accelRate

	d.speed += d.accel * dt

	// Braking to a stop holds the vehicle at rest for the driver and for
	// the collision-avoidance / park features.  ACC and LCA lack this
	// hold, which is the seeded negative-speed defect.
	clampingSource := source == SourceDriver || source == SourceCA || source == SourceRCA ||
		source == SourcePA || source == SourceNone || source == ""
	if clampingSource {
		if !reverse && d.speed < 0 && d.accel < 0 {
			d.speed = 0
		}
		if reverse && d.speed > 0 && d.accel > 0 {
			d.speed = 0
		}
	}

	d.position += d.speed * dt

	// Lateral: the steering command is applied directly (a kinematic
	// approximation); the lane position drifts with the steering angle.
	d.steering = number(v.steerCommand)
	d.lane += d.steering * d.speed * 0.02 * dt

	v.speed.Write(d.speed)
	v.accel.Write(d.accel)
	v.jerk.Write(jerk)
	v.position.Write(d.position)
	v.lane.Write(d.lane)
	v.steeringAngle.Write(d.steering)
	v.stopped.Write(math.Abs(d.speed) < StoppedSpeedEpsilon)
	v.forward.Write(d.speed > StoppedSpeedEpsilon)
	v.backward.Write(d.speed < -StoppedSpeedEpsilon)
}

// Object is a target vehicle (or obstacle) in the host vehicle's path.  It
// publishes the forward range when ahead of the host and the rear range when
// behind it, as the long-range radar and rear sensors would.
type Object struct {
	// InitialDistance is the starting range to the host vehicle in metres
	// (positive ahead, negative behind).
	InitialDistance float64
	// Speed is the object's speed in m/s (0 for a stopped vehicle).
	Speed float64

	position float64
	started  bool

	binding
}

// Name implements sim.Component.
func (o *Object) Name() string { return "Object" }

// Reset implements sim.Resetter: the object re-latches its initial placement
// relative to the host on the next first step.
func (o *Object) Reset() {
	o.position = 0
	o.started = false
}

// Step implements sim.Component.
func (o *Object) Step(_ time.Duration, bus *sim.Bus) {
	v := o.on(bus)
	dt := v.stepSeconds()
	host := number(v.position)
	if !o.started {
		o.position = host + o.InitialDistance
		o.started = true
	}
	o.position += o.Speed * dt

	gap := o.position - host
	if o.InitialDistance >= 0 {
		v.objectDistance.Write(gap)
		v.objectSpeed.Write(o.Speed)
		v.rearObjectDistance.Write(1e9)
		v.collision.Write(gap <= 0)
	} else {
		v.objectDistance.Write(1e9)
		v.objectSpeed.Write(o.Speed)
		v.rearObjectDistance.Write(-gap)
		v.collision.Write(gap >= 0)
	}
}
