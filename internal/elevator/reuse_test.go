package elevator

// Differential test for simulation reuse on the elevator substrate: one
// simulation — bus, schema, handle table, component set and compiled monitor
// suite — is rewound with Simulation.Reset and reconfigured for every
// scenario, and its classification must match a fresh elevator.Run of the
// same scenario.  This proves the component Reset paths restore every piece
// of internal state (latched brake, door dwell, dispatched target, car
// position, passenger load).

import (
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
)

func TestElevatorSimulationReuse(t *testing.T) {
	s := sim.New(DefaultPeriod)
	passenger := &Passenger{}
	dispatch := &DispatchController{}
	driveCtl := &DriveController{}
	doorCtl := &DoorController{}
	brake := &EmergencyBrake{}
	drive := &Drive{}
	door := NewDoorMotor()
	components := []sim.Component{passenger, dispatch, driveCtl, doorCtl, brake, drive, door}
	BindAll(s.Bus, components...)
	s.Add(components...)

	var suite *monitor.CompiledSuite

	// The scenario set is run twice through the same simulation, so every
	// run but the first follows a differently configured, fully exercised
	// one — including the defect configurations that latch the brake and
	// drive the car to the hoistway limit.
	scenarios := append(Scenarios(), Scenarios()...)
	for i, sc := range scenarios {
		s.Reset()
		passenger.Actions = sc.Passenger
		driveCtl.IgnoreHoistwayLimit = sc.HoistwayDefect
		driveCtl.IgnoreDoorState = sc.DriveDoorDefect
		driveCtl.IgnoreOverweight = sc.OverweightDefect
		driveCtl.OverrunTargetTo = 0
		if sc.HoistwayDefect {
			driveCtl.OverrunTargetTo = HoistwayUpperLimit + 2
		}
		doorCtl.OpenWhileMoving = sc.DoorDefect
		brake.Disabled = sc.DisableEmergencyBrake
		initElevatorBus(s.Bus)

		if suite == nil {
			suite = BuildSuiteWithSchema(DefaultPeriod, s.Bus.Schema())
			s.Observe(suite)
		} else {
			suite.Reset()
		}

		duration := sc.Duration
		if duration <= 0 {
			duration = 30 * time.Second
		}
		s.RunDiscard(duration)
		suite.Finish()

		got := suite.FastSummary()
		want := Run(sc).Summary
		if got != want {
			t.Errorf("pass %d, %s: reused-simulation summary %v != fresh-run summary %v",
				i/len(Scenarios()), sc.Name, got, want)
		}
	}
}
