package elevator

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/goals"
	"repro/internal/temporal"
)

// Goal names used by the catalogue, monitors and reports.
const (
	// GoalDoorClosedOrStopped is Maintain[DoorClosedOrElevatorStopped]
	// (thesis Figure 4.8).
	GoalDoorClosedOrStopped = "Maintain[DoorClosedOrElevatorStopped]"
	// GoalDriveStoppedWhenOverweight is Maintain[DriveStoppedWhenOverweight]
	// (Figure 4.6).
	GoalDriveStoppedWhenOverweight = "Maintain[DriveStoppedWhenOverweight]"
	// GoalBelowHoistwayLimit is Maintain[ElevatorBelowHoistwayUpperLimit]
	// (Figure 4.9).
	GoalBelowHoistwayLimit = "Maintain[ElevatorBelowHoistwayUpperLimit]"
	// SubgoalCloseDoorWhenMoving is the DoorController subgoal of Table 4.4.
	SubgoalCloseDoorWhenMoving = "Achieve[CloseDoorWhenElevatorMovingOrMoved]"
	// SubgoalStopWhenDoorOpen is the DriveController subgoal of Table 4.4.
	SubgoalStopWhenDoorOpen = "Achieve[StopElevatorWhenDoorOpenOrOpened]"
	// SubgoalDriveStopOverweight is the DriveController subgoal for the
	// overweight goal.
	SubgoalDriveStopOverweight = "Achieve[StopDriveWhenOverweight]"
	// SubgoalStopBeforeLimit is Achieve[StopBeforeHoistwayUpperLimit]
	// (Figure 4.10, primary responsibility).
	SubgoalStopBeforeLimit = "Achieve[StopBeforeHoistwayUpperLimit]"
	// SubgoalEmergencyStopBeforeLimit is
	// Achieve[EmergencyStopBeforeHoistwayUpperLimit] (Figure 4.11,
	// secondary responsibility).
	SubgoalEmergencyStopBeforeLimit = "Achieve[EmergencyStopBeforeHoistwayUpperLimit]"
)

// Goals returns the elevator safety-goal catalogue: the three system-level
// goals and the subsystem subgoals that ICPA derives for them.
func Goals() *goals.Registry {
	r := goals.NewRegistry()

	r.Add(goals.MustParse(GoalDoorClosedOrStopped,
		"At all times the door shall be closed or the elevator speed shall be STOPPED.",
		fmt.Sprintf("%s | %s", SigDoorClosed, SigElevatorStopped)))

	r.Add(goals.MustParse(GoalDriveStoppedWhenOverweight,
		"If the elevator weight exceeds the weight threshold, then the elevator speed shall be STOPPED.",
		fmt.Sprintf("prev(%s > %g) => %s", SigElevatorWeight, WeightThreshold, SigElevatorStopped)))

	r.Add(goals.MustParse(GoalBelowHoistwayLimit,
		"The top of the elevator shall never exceed the upper limit of the hoistway.",
		fmt.Sprintf("%s <= %g", SigElevatorPosition, HoistwayUpperLimit)))

	r.Add(goals.MustParse(SubgoalCloseDoorWhenMoving,
		"If the door is not blocked and the elevator is moving or has been commanded to move, then the door shall be commanded to CLOSE.",
		fmt.Sprintf("(prev(!%s | %s == 'GO') & prev(!%s)) => %s == 'CLOSE'",
			SigElevatorStopped, SigDriveCommand, SigDoorBlocked, SigDoorMotorCommand)).
		WithVars([]string{SigElevatorStopped, SigDriveCommand, SigDoorBlocked}, []string{SigDoorMotorCommand}).
		WithAssignee("DoorController"))

	r.Add(goals.MustParse(SubgoalStopWhenDoorOpen,
		"If the doors are not closed or have been commanded open, then the drive shall be commanded to STOP.",
		fmt.Sprintf("prev(!%s | %s == 'OPEN') => %s == 'STOP'",
			SigDoorClosed, SigDoorMotorCommand, SigDriveCommand)).
		WithVars([]string{SigDoorClosed, SigDoorMotorCommand}, []string{SigDriveCommand}).
		WithAssignee("DriveController"))

	r.Add(goals.MustParse(SubgoalDriveStopOverweight,
		"If the elevator weight exceeded the threshold, the drive shall be commanded to STOP.",
		fmt.Sprintf("prev(%s > %g) => %s == 'STOP'", SigElevatorWeight, WeightThreshold, SigDriveCommand)).
		WithVars([]string{SigElevatorWeight}, []string{SigDriveCommand}).
		WithAssignee("DriveController"))

	r.Add(goals.MustParse(SubgoalStopBeforeLimit,
		"If the elevator nears the upper hoistway limit, then the drive shall be stopped.",
		fmt.Sprintf("prev(%s >= %g) => %s == 'STOP'",
			SigElevatorPosition, HoistwayUpperLimit-MaxStoppingDistance, SigDriveCommand)).
		WithVars([]string{SigElevatorPosition}, []string{SigDriveCommand}).
		WithAssignee("DriveController"))

	r.Add(goals.MustParse(SubgoalEmergencyStopBeforeLimit,
		"If the elevator nears the upper hoistway limit, then the emergency brake shall be applied.",
		fmt.Sprintf("prev(%s >= %g) => %s == 'APPLIED'",
			SigElevatorPosition, HoistwayUpperLimit-MaxEmergencyBrakingDistance, SigEmergencyBrake)).
		WithVars([]string{SigElevatorPosition}, []string{SigEmergencyBrake}).
		WithAssignee("EmergencyBrake"))

	return r
}

// Model builds the ICPA system model of the distributed elevator control
// system of Figure 4.5: the agents, the state variables they monitor and
// control, and their kinds.
func Model() *core.SystemModel {
	m := core.NewSystemModel("distributed elevator control system")

	m.AddAgent(goals.NewAgent("ElevatorSpeedSensor", goals.KindSensor,
		[]string{"DriveSpeed"}, []string{SigElevatorSpeed, SigElevatorStopped}))
	m.AddAgent(goals.NewAgent("ElevatorPositionSensor", goals.KindSensor,
		[]string{"DriveSpeed"}, []string{SigElevatorPosition}))
	m.AddAgent(goals.NewAgent("DoorClosedSensor", goals.KindSensor,
		[]string{SigDoorPosition}, []string{SigDoorClosed}))
	m.AddAgent(goals.NewAgent("WeightSensor", goals.KindSensor,
		[]string{"CarLoad"}, []string{SigElevatorWeight}))
	m.AddAgent(goals.NewAgent("Drive", goals.KindActuator,
		[]string{SigDriveCommand, SigDriveTarget, SigEmergencyBrake}, []string{"DriveSpeed"}))
	m.AddAgent(goals.NewAgent("DoorMotor", goals.KindActuator,
		[]string{SigDoorMotorCommand, SigDoorBlocked}, []string{SigDoorPosition}))
	m.AddAgent(goals.NewAgent("DriveController", goals.KindSoftware,
		[]string{SigDispatchTarget, SigDoorClosed, SigDoorMotorCommand, SigElevatorPosition, SigElevatorWeight},
		[]string{SigDriveCommand, SigDriveTarget}))
	m.AddAgent(goals.NewAgent("DoorController", goals.KindSoftware,
		[]string{SigDispatchTarget, SigElevatorStopped, SigDriveCommand, SigDoorBlocked, SigAtTargetFloor},
		[]string{SigDoorMotorCommand}))
	m.AddAgent(goals.NewAgent("DispatchController", goals.KindSoftware,
		[]string{SigHallCall, SigCarCall}, []string{SigDispatchTarget}))
	m.AddAgent(goals.NewAgent("CarButtonController", goals.KindSoftware,
		[]string{"CarButtonPress"}, []string{SigCarCall}))
	m.AddAgent(goals.NewAgent("HallButtonController", goals.KindSoftware,
		[]string{"HallButtonPress"}, []string{SigHallCall}))
	m.AddAgent(goals.NewAgent("EmergencyBrake", goals.KindSoftware,
		[]string{SigElevatorPosition}, []string{SigEmergencyBrake}))
	m.AddAgent(goals.NewAgent("Passenger", goals.KindEnvironment,
		nil, []string{SigDoorBlocked, "CarButtonPress", "HallButtonPress", "CarLoad"}))

	m.AddVariable(core.Variable{Name: SigDoorClosed, Kind: core.VarSensed, Description: "door fully closed (sensed)"})
	m.AddVariable(core.Variable{Name: SigElevatorStopped, Kind: core.VarSensed, Description: "elevator stopped (sensed)"})
	m.AddVariable(core.Variable{Name: SigElevatorSpeed, Kind: core.VarSensed, Description: "elevator speed (sensed)"})
	m.AddVariable(core.Variable{Name: SigElevatorPosition, Kind: core.VarSensed, Description: "elevator position in hoistway (sensed)"})
	m.AddVariable(core.Variable{Name: SigElevatorWeight, Kind: core.VarSensed, Description: "car load (sensed)"})
	m.AddVariable(core.Variable{Name: SigDriveCommand, Kind: core.VarCommand, Description: "drive actuation signal"})
	m.AddVariable(core.Variable{Name: SigDoorMotorCommand, Kind: core.VarCommand, Description: "door motor actuation signal"})
	m.AddVariable(core.Variable{Name: SigDispatchTarget, Kind: core.VarShared, Description: "dispatch request (network message)"})
	m.AddVariable(core.Variable{Name: SigDoorBlocked, Kind: core.VarEnvironmental, Description: "doorway blocked by a passenger"})
	return m
}

// DoorDriveICPA builds the full ICPA of Maintain[DoorClosedOrElevatorStopped]
// (thesis Tables 4.1–4.4): the indirect control paths of DoorClosed and
// ElevatorStopped, the numbered indirect-control relationships, the
// shared-responsibility/restrictive coverage strategy, the elaboration and
// the two Table 4.4 subgoals.
func DoorDriveICPA() *core.Analysis {
	registry := Goals()
	model := Model()
	a := core.NewAnalysis(registry.MustGet(GoalDoorClosedOrStopped), model)
	a.TracePaths(0)

	relInitDoor := a.AddRelationship(SigDoorClosed, []string{"DoorController", "DoorMotor"},
		temporal.MustParse("initially(!DoorClosed & DoorMotorCommand == 'OPEN')"),
		"In the initial state, the door is OPEN and commanded OPEN")
	relDoorHoldClosed := a.AddRelationship(SigDoorClosed, []string{"DoorController", "DoorMotor"},
		temporal.MustParse("(prev(DoorClosed) & DoorMotorCommand == 'CLOSE') => DoorClosed"),
		"A closed door that is commanded CLOSE remains closed")
	relDoorClose := a.AddRelationship(SigDoorClosed, []string{"DoorController", "DoorMotor"},
		temporal.MustParse("prevfor[2s](!DoorBlocked & DoorMotorCommand == 'CLOSE') => DoorClosed"),
		"An unblocked door commanded CLOSE for the maximum close delay will be closed")
	relDoorOpen := a.AddRelationship(SigDoorClosed, []string{"DoorController", "DoorMotor"},
		temporal.MustParse("prevfor[2s](DoorMotorCommand == 'OPEN') => !DoorClosed"),
		"A door commanded OPEN for the maximum open delay will be unclosed")
	relDoorMinOpen := a.AddRelationship(SigDoorClosed, []string{"DoorController", "DoorMotor"},
		temporal.MustParse("(prev(DoorClosed) & prevwithin[50ms](became(DoorMotorCommand == 'OPEN'))) => DoorClosed"),
		"A closed door whose command switched to OPEN within the minimum open delay is still closed")
	relBlockedNotClosed := a.AddRelationship(SigDoorClosed, []string{"Passenger"},
		temporal.MustParse("prev(DoorBlocked) => !DoorClosed"),
		"If the door is blocked, the door shall not be closed")
	relDoorReversal := a.AddRelationship(SigDoorClosed, []string{"Passenger", "DoorController"},
		temporal.MustParse("prev(DoorBlocked) => DoorMotorCommand == 'OPEN'"),
		"If the door is blocked, the door shall be commanded OPEN (door-reversal safety goal has priority)")

	relInitDrive := a.AddRelationship(SigElevatorStopped, []string{"DriveController", "Drive"},
		temporal.MustParse("initially(ElevatorStopped & DriveCommand == 'STOP')"),
		"In the initial state, the elevator is stopped and the drive commanded STOP")
	relDriveEq := a.AddRelationship(SigElevatorStopped, []string{"Drive"},
		temporal.MustParse("DriveStopped <=> ElevatorStopped"),
		"If the drive is stopped, the elevator is stopped, and vice versa")
	relDriveHoldStopped := a.AddRelationship(SigElevatorStopped, []string{"DriveController", "Drive"},
		temporal.MustParse("(prev(ElevatorStopped) & DriveCommand == 'STOP') => ElevatorStopped"),
		"A stopped drive commanded STOP remains stopped")
	relDriveStop := a.AddRelationship(SigElevatorStopped, []string{"DriveController", "Drive"},
		temporal.MustParse("prevfor[2s](DriveCommand == 'STOP') => ElevatorStopped"),
		"A drive commanded STOP for the maximum stop delay will be stopped")
	relDriveMinGo := a.AddRelationship(SigElevatorStopped, []string{"DriveController", "Drive"},
		temporal.MustParse("(prev(ElevatorStopped) & prevwithin[50ms](became(DriveCommand == 'GO'))) => ElevatorStopped"),
		"A stopped drive whose command switched to GO within the minimum go delay is still stopped")

	a.SetCoverage(core.CoverageStrategy{
		Assignment:  core.SharedResponsibility,
		Scope:       core.Restrictive,
		Responsible: []string{"DoorController", "DriveController"},
		Note:        "Assumes worst-case actuator response times; real response may be slower.",
	})

	a.AddElaboration(
		"(dc | IsStopped(es))  <=  initial state case  AND  (IsStopped(es) => dc)  AND  (dc => IsStopped(es))",
		core.TacticSplitByCase, []int{relInitDoor, relInitDrive},
		"Goal satisfied in the initial state; split lack of monitorability/control by case")
	a.AddElaboration(
		"IsStopped(es) => dc   covered by: (prev(!IsStopped(es) | drc == 'GO') & prev(!db)) => dmc == 'CLOSE'",
		core.TacticIntroduceAccuracy,
		[]int{relDoorHoldClosed, relDoorClose, relDoorMinOpen, relBlockedNotClosed, relDoorReversal, relDriveMinGo},
		"Minimum delay to open the door exceeds one state; door reversal has priority when blocked")
	a.AddElaboration(
		"dc => IsStopped(es)   covered by: prev(!dc | dmc == 'OPEN') => drc == 'STOP'",
		core.TacticIntroduceActuation,
		[]int{relDriveEq, relDriveHoldStopped, relDriveStop, relDoorOpen, relDoorMinOpen},
		"Minimum delay to move the elevator exceeds one state")

	a.AddSubgoal(core.SubsystemGoal{
		Subsystem:   "DoorController",
		Goal:        registry.MustGet(SubgoalCloseDoorWhenMoving),
		Controls:    []string{SigDoorMotorCommand},
		Observes:    []string{SigElevatorStopped, SigDriveCommand, SigDoorBlocked},
		Restrictive: true,
		MonitorAt:   "DoorController",
	})
	a.AddSubgoal(core.SubsystemGoal{
		Subsystem:   "DriveController",
		Goal:        registry.MustGet(SubgoalStopWhenDoorOpen),
		Controls:    []string{SigDriveCommand},
		Observes:    []string{SigDoorClosed, SigDoorMotorCommand},
		Restrictive: true,
		MonitorAt:   "DriveController",
	})
	return a
}

// HoistwayICPA builds the ICPA of Maintain[ElevatorBelowHoistwayUpperLimit]
// with a redundant-responsibility coverage strategy: the drive controller
// has primary responsibility (Figure 4.10) and the emergency brake secondary
// responsibility (Figure 4.11), both with restrictive safety margins
// (§4.5.1, §4.5.2).
func HoistwayICPA() *core.Analysis {
	registry := Goals()
	model := Model()
	a := core.NewAnalysis(registry.MustGet(GoalBelowHoistwayLimit), model)
	a.TracePaths(0)

	relDriveMoves := a.AddRelationship(SigElevatorPosition, []string{"Drive", "DriveController"},
		temporal.MustParse("!ElevatorStopped => prev(DriveCommand == 'GO')"),
		"The elevator position changes only while the drive has been commanded GO")
	relStopDistance := a.AddRelationship(SigElevatorPosition, []string{"Drive"},
		temporal.MustParse("prevfor[2s](DriveCommand == 'STOP') => ElevatorStopped"),
		"A drive commanded STOP stops within the maximum stopping distance")
	relBrakeDistance := a.AddRelationship(SigElevatorPosition, []string{"EmergencyBrake", "Drive"},
		temporal.MustParse("prevfor[1s](EmergencyBrake == 'APPLIED') => ElevatorStopped"),
		"An applied emergency brake stops the car within the emergency braking distance")

	a.SetCoverage(core.CoverageStrategy{
		Assignment:  core.RedundantResponsibility,
		Scope:       core.Restrictive,
		Responsible: []string{"DriveController"},
		Secondary:   []string{"EmergencyBrake"},
		Note:        "Safety margins: MaxStoppingDistance for the drive, MaxEmergencyBrakingDistance for the brake.",
	})
	a.AddElaboration(
		"etp <= hul   covered by stopping the drive (primary) or applying the emergency brake (secondary) before the limit",
		core.TacticSafetyMargin, []int{relDriveMoves, relStopDistance, relBrakeDistance},
		"Primary margin is larger than the secondary margin so the emergency brake rarely engages")

	a.AddSubgoal(core.SubsystemGoal{
		Subsystem:   "DriveController",
		Goal:        registry.MustGet(SubgoalStopBeforeLimit),
		Controls:    []string{SigDriveCommand},
		Observes:    []string{SigElevatorPosition},
		Restrictive: true,
		MonitorAt:   "DriveController",
	})
	a.AddSubgoal(core.SubsystemGoal{
		Subsystem:   "EmergencyBrake",
		Goal:        registry.MustGet(SubgoalEmergencyStopBeforeLimit),
		Controls:    []string{SigEmergencyBrake},
		Observes:    []string{SigElevatorPosition},
		Restrictive: true,
		Redundant:   true,
		MonitorAt:   "EmergencyBrake",
	})
	return a
}
