package elevator

import "repro/internal/sim"

// busVars is the elevator system's view of the bus, with every signal the
// components touch resolved to a slot-indexed handle exactly once per run.
// Components bind lazily on their first Step (guarded by a pointer compare),
// so they work whether driven by a Simulation or stepped by hand in tests.
type busVars struct {
	bus *sim.Bus

	periodSeconds sim.NumVar

	doorClosed       sim.BoolVar
	doorBlocked      sim.BoolVar
	doorPosition     sim.NumVar
	doorMotorCommand sim.StringVar

	elevatorSpeed    sim.NumVar
	elevatorStopped  sim.BoolVar
	elevatorPosition sim.NumVar
	driveCommand     sim.StringVar
	driveTarget      sim.NumVar
	elevatorWeight   sim.NumVar

	dispatchTarget sim.NumVar
	carCall        sim.NumVar
	hallCall       sim.NumVar
	emergencyBrake sim.StringVar
	atTargetFloor  sim.NumVar
}

// bindVars resolves every elevator signal against the bus schema once.
func bindVars(bus *sim.Bus) *busVars {
	return &busVars{
		bus: bus,

		periodSeconds: bus.NumVar(SigPeriodSeconds),

		doorClosed:       bus.BoolVar(SigDoorClosed),
		doorBlocked:      bus.BoolVar(SigDoorBlocked),
		doorPosition:     bus.NumVar(SigDoorPosition),
		doorMotorCommand: bus.StringVar(SigDoorMotorCommand),

		elevatorSpeed:    bus.NumVar(SigElevatorSpeed),
		elevatorStopped:  bus.BoolVar(SigElevatorStopped),
		elevatorPosition: bus.NumVar(SigElevatorPosition),
		driveCommand:     bus.StringVar(SigDriveCommand),
		driveTarget:      bus.NumVar(SigDriveTarget),
		elevatorWeight:   bus.NumVar(SigElevatorWeight),

		dispatchTarget: bus.NumVar(SigDispatchTarget),
		carCall:        bus.NumVar(SigCarCall),
		hallCall:       bus.NumVar(SigHallCall),
		emergencyBrake: bus.StringVar(SigEmergencyBrake),
		atTargetFloor:  bus.NumVar(SigAtTargetFloor),
	}
}

// binding caches a component's busVars; components embed it and call on()
// at the top of Step.  The pointer guard re-binds when the component is
// reused against a different bus, so hand-constructed components work
// without BindAll.
type binding struct {
	vars *busVars
}

func (b *binding) on(bus *sim.Bus) *busVars {
	if b.vars == nil || b.vars.bus != bus {
		b.vars = bindVars(bus)
	}
	return b.vars
}

func (b *binding) setVars(v *busVars) { b.vars = v }

// BindAll resolves one shared handle set against the bus and hands it to
// every elevator component in the list, so a run builds the handle table
// once instead of once per component.
func BindAll(bus *sim.Bus, comps ...sim.Component) {
	v := bindVars(bus)
	for _, c := range comps {
		if b, ok := c.(interface{ setVars(*busVars) }); ok {
			b.setVars(v)
		}
	}
}

// stepSeconds returns the simulation period in seconds (10 ms default).
func (v *busVars) stepSeconds() float64 {
	if dt := v.periodSeconds.Read(); dt > 0 {
		return dt
	}
	return 0.01
}
