package elevator

import (
	"reflect"
	"testing"
)

// TestCompiledSuiteMatchesPerMonitor replays each monitored run's trace
// through the per-monitor reference suite and requires the classifications to
// equal the ones the compiled-program suite produced live — the elevator's
// counterpart of the vehicle differential tests.
func TestCompiledSuiteMatchesPerMonitor(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res := Run(sc)

			plain := BuildSuite(DefaultPeriod)
			for i := 0; i < res.Trace.Len(); i++ {
				plain.Observe(res.Trace.At(i))
			}
			plain.Finish()

			plainDetections, plainSummary := plain.ClassifyAll()
			if res.Summary != plainSummary {
				t.Errorf("compiled summary %v != per-monitor summary %v", res.Summary, plainSummary)
			}
			if !reflect.DeepEqual(res.Detections, plainDetections) {
				t.Errorf("compiled detections diverge from the per-monitor suite\ncompiled: %#v\nplain:    %#v",
					res.Detections, plainDetections)
			}
			if got, want := res.Suite.Report(), plain.Report(); !reflect.DeepEqual(got, want) {
				t.Errorf("compiled report diverges from the per-monitor suite")
			}
		})
	}
}
