// Package elevator implements the distributed elevator control system used
// throughout Chapter 4 of the thesis (Figure 4.5) as the worked example for
// Indirect Control Path Analysis: door and drive controllers, a dispatcher,
// call buttons, a passenger, actuators with realistic actuation delays and
// the sensors that produce the goal state variables.
//
// The package also provides the elevator's safety-goal catalogue
// (Figures 4.6–4.13 and Table 4.4), the ICPA system model behind
// Tables 4.1–4.3, and ready-made simulation scenarios with hierarchical
// run-time monitoring, including variants with seeded design defects that
// the monitors detect.
package elevator

import (
	"math"
	"time"

	"repro/internal/sim"
)

// Bus signal names.  Goal formulas reference these names directly.
const (
	// SigDoorClosed is true when the door-closed sensor detects a fully
	// closed door.
	SigDoorClosed = "DoorClosed"
	// SigDoorBlocked is true while the passenger blocks the doorway.
	SigDoorBlocked = "DoorBlocked"
	// SigDoorPosition is the door position: 0 fully open, 1 fully closed.
	SigDoorPosition = "DoorPosition"
	// SigDoorMotorCommand is the door motor actuation signal: OPEN or CLOSE.
	SigDoorMotorCommand = "DoorMotorCommand"
	// SigElevatorSpeed is the sensed car speed in m/s (positive upward).
	SigElevatorSpeed = "ElevatorSpeed"
	// SigElevatorStopped is the discretised is-stopped predicate published
	// by the speed sensor.
	SigElevatorStopped = "ElevatorStopped"
	// SigElevatorPosition is the sensed car position in metres above the
	// bottom landing.
	SigElevatorPosition = "ElevatorPosition"
	// SigDriveCommand is the drive actuation signal: GO or STOP.
	SigDriveCommand = "DriveCommand"
	// SigDriveTarget is the target car position commanded by the drive
	// controller, in metres.
	SigDriveTarget = "DriveTarget"
	// SigElevatorWeight is the sensed car load in kilograms.
	SigElevatorWeight = "ElevatorWeight"
	// SigDispatchTarget is the dispatcher's requested destination floor
	// (1-based; 0 when no destination is pending).
	SigDispatchTarget = "DispatchTarget"
	// SigCarCall is the floor requested from inside the car (0 when none).
	SigCarCall = "CarCall"
	// SigHallCall is the floor requested from a hallway (0 when none).
	SigHallCall = "HallCall"
	// SigEmergencyBrake is the emergency brake state: APPLIED or RELEASED.
	SigEmergencyBrake = "EmergencyBrake"
	// SigAtTargetFloor is the floor the drive controller considers the car
	// to have arrived at (0 while travelling or idle).  Publishing the
	// floor rather than a boolean avoids the race between a new dispatch
	// target and a stale arrival flag.
	SigAtTargetFloor = "AtTargetFloor"
	// SigPeriodSeconds carries the simulation step period, published by the
	// scenario runner so that components integrate with the right step.
	SigPeriodSeconds = "SimPeriodSeconds"
)

// Physical and policy parameters of the modelled installation.
const (
	// FloorHeight is the distance between landings in metres.
	FloorHeight = 3.0
	// TopFloor is the highest served floor (floors are numbered from 1).
	TopFloor = 5
	// HoistwayUpperLimit is the physical top of the hoistway in metres
	// above the bottom landing.
	HoistwayUpperLimit = FloorHeight*(TopFloor-1) + 0.6
	// MaxStoppingDistance is the worst-case stopping distance of the drive
	// used by the drive controller's hoistway-limit subgoal.
	MaxStoppingDistance = 1.1
	// MaxEmergencyBrakingDistance is the worst-case stopping distance of
	// the emergency brake used by its (secondary) subgoal.
	MaxEmergencyBrakingDistance = 0.5
	// WeightThreshold is the rated load in kilograms.
	WeightThreshold = 680.0
	// MaxSpeed is the rated car speed in m/s.
	MaxSpeed = 1.0
	// MaxAccel is the drive acceleration in m/s².
	MaxAccel = 0.8
	// DoorTravelTime is the time for a full door open or close stroke.
	DoorTravelTime = 2 * time.Second
	// DoorDwellTime is how long doors stay open at a landing.
	DoorDwellTime = 3 * time.Second
	// StoppedSpeedEpsilon is the speed below which the sensor reports the
	// car as stopped.
	StoppedSpeedEpsilon = 0.005
)

// floorPosition converts a 1-based floor number to metres.
func floorPosition(floor float64) float64 { return (floor - 1) * FloorHeight }

// Drive is the hoistway drive actuator: it accelerates the car toward the
// commanded target while DriveCommand is GO and brings it to a halt while
// the command is STOP or the emergency brake is applied.  The response is
// rate-limited, which produces the actuation delays the ICPA relationships
// of Table 4.2 describe.
type Drive struct {
	speed    float64
	position float64

	binding
}

// Name implements sim.Component.
func (d *Drive) Name() string { return "Drive" }

// Reset implements sim.Resetter: the car returns to rest at the bottom
// landing.
func (d *Drive) Reset() {
	d.speed = 0
	d.position = 0
}

// Step implements sim.Component.
func (d *Drive) Step(_ time.Duration, bus *sim.Bus) {
	v := d.on(bus)
	dt := v.stepSeconds()
	command := v.driveCommand.Read()
	target := v.driveTarget.Read()
	braked := v.emergencyBrake.Read() == "APPLIED"

	var desired float64
	if command == "GO" && !braked {
		direction := 1.0
		if target < d.position {
			direction = -1
		}
		remaining := math.Abs(target - d.position)
		desired = direction * math.Min(MaxSpeed, math.Sqrt(2*MaxAccel*remaining))
	}
	// Emergency braking decelerates harder than the normal drive.
	accelLimit := MaxAccel
	if braked {
		accelLimit = 3 * MaxAccel
	}
	delta := desired - d.speed
	maxDelta := accelLimit * dt
	if delta > maxDelta {
		delta = maxDelta
	}
	if delta < -maxDelta {
		delta = -maxDelta
	}
	d.speed += delta
	if desired == 0 && math.Abs(d.speed) < 1e-4 {
		d.speed = 0
	}
	d.position += d.speed * dt
	if d.position < 0 {
		d.position = 0
		d.speed = 0
	}

	v.elevatorSpeed.Write(d.speed)
	v.elevatorPosition.Write(d.position)
	v.elevatorStopped.Write(math.Abs(d.speed) < StoppedSpeedEpsilon)
}

// DoorMotor is the door actuator: it drives the door position toward closed
// (1.0) or open (0.0) over DoorTravelTime.  A blocked door cannot close
// (thesis Eq. 4.6) but can always open.
type DoorMotor struct {
	position float64
	// StartClosed starts the simulation with the door closed instead of
	// the open initial state of Table 4.1.
	StartClosed bool
	started     bool

	binding
}

// Name implements sim.Component.
func (m *DoorMotor) Name() string { return "DoorMotor" }

// Reset implements sim.Resetter: the door re-latches its StartClosed initial
// position on the next first step.
func (m *DoorMotor) Reset() {
	m.position = 0
	m.started = false
}

// Step implements sim.Component.
func (m *DoorMotor) Step(_ time.Duration, bus *sim.Bus) {
	v := m.on(bus)
	if !m.started {
		if m.StartClosed {
			m.position = 1
		}
		m.started = true
	}
	dt := v.stepSeconds()
	rate := dt / DoorTravelTime.Seconds()
	command := v.doorMotorCommand.Read()
	blocked := v.doorBlocked.Read()

	switch command {
	case "CLOSE":
		if !blocked {
			m.position += rate
		}
	case "OPEN":
		m.position -= rate
	}
	if m.position > 1 {
		m.position = 1
	}
	if m.position < 0 {
		m.position = 0
	}
	v.doorPosition.Write(m.position)
	v.doorClosed.Write(m.position >= 0.999)
}

// DispatchController latches hall and car calls into a destination floor for
// the door and drive controllers.
type DispatchController struct {
	target float64

	binding
}

// Name implements sim.Component.
func (c *DispatchController) Name() string { return "DispatchController" }

// Reset implements sim.Resetter: pending destinations are forgotten.
func (c *DispatchController) Reset() { c.target = 0 }

// Step implements sim.Component.
func (c *DispatchController) Step(_ time.Duration, bus *sim.Bus) {
	v := c.on(bus)
	if f := v.carCall.Read(); f >= 1 {
		c.target = f
	}
	if f := v.hallCall.Read(); f >= 1 {
		c.target = f
	}
	v.dispatchTarget.Write(c.target)
}

// DriveController commands the drive toward the dispatched floor.  Its
// behaviour realises the ICPA subgoal of Table 4.4 (stop when the doors are
// not closed or have been commanded open), the overweight goal of Figure 4.6
// and the hoistway-limit subgoal of Figure 4.10.
type DriveController struct {
	// IgnoreHoistwayLimit seeds the design defect used by the hoistway
	// scenario: the controller does not stop before the hoistway limit, so
	// only the emergency brake's redundant subgoal protects the system.
	IgnoreHoistwayLimit bool
	// IgnoreDoorState seeds a defect in which the controller moves the car
	// regardless of the door state, violating its Table 4.4 subgoal.
	IgnoreDoorState bool
	// IgnoreOverweight seeds a defect in which the controller ignores the
	// rated-load limit.
	IgnoreOverweight bool
	// OverrunTargetTo, when positive, makes the controller drive toward
	// this absolute position (in metres) regardless of the dispatched
	// floor; used to exercise the hoistway-limit goals.
	OverrunTargetTo float64

	binding
}

// Name implements sim.Component.
func (c *DriveController) Name() string { return "DriveController" }

// Reset implements sim.Resetter: the controller is stateless beyond its
// seeded-defect configuration, which survives a reset.
func (c *DriveController) Reset() {}

// Step implements sim.Component.
func (c *DriveController) Step(_ time.Duration, bus *sim.Bus) {
	v := c.on(bus)
	target := v.dispatchTarget.Read()
	position := v.elevatorPosition.Read()
	doorClosed := v.doorClosed.Read()
	doorCommand := v.doorMotorCommand.Read()
	weight := v.elevatorWeight.Read()

	command := "STOP"
	targetPos := position
	haveTarget := target >= 1
	if haveTarget {
		targetPos = floorPosition(target)
	}
	if c.OverrunTargetTo > 0 {
		targetPos = c.OverrunTargetTo
		haveTarget = true
	}
	if haveTarget {
		arrived := math.Abs(targetPos-position) < 0.01
		doorSafe := (doorClosed && doorCommand != "OPEN") || c.IgnoreDoorState
		overweight := weight > WeightThreshold && !c.IgnoreOverweight
		nearLimit := targetPos > position &&
			position >= HoistwayUpperLimit-MaxStoppingDistance &&
			!c.IgnoreHoistwayLimit
		if !arrived && doorSafe && !overweight && !nearLimit {
			command = "GO"
		}
	}
	v.driveCommand.Write(command)
	v.driveTarget.Write(targetPos)
	atFloor := 0.0
	if target >= 1 && math.Abs(floorPosition(target)-position) < 0.01 {
		atFloor = target
	}
	v.atTargetFloor.Write(atFloor)
}

// DoorController opens the doors on arrival at the dispatched landing and
// keeps them closed while the car moves, realising its Table 4.4 subgoal.
type DoorController struct {
	// OpenWhileMoving seeds the design defect used by the faulty-door
	// scenario: the controller opens the doors as soon as the car nears
	// the landing, while it is still moving.
	OpenWhileMoving bool

	dwellRemaining time.Duration
	servedTarget   float64

	binding
}

// Name implements sim.Component.
func (c *DoorController) Name() string { return "DoorController" }

// Reset implements sim.Resetter.
func (c *DoorController) Reset() {
	c.dwellRemaining = 0
	c.servedTarget = 0
}

// Step implements sim.Component.
func (c *DoorController) Step(_ time.Duration, bus *sim.Bus) {
	v := c.on(bus)
	dt := time.Duration(v.stepSeconds() * float64(time.Second))
	stopped := v.elevatorStopped.Read()
	driveCommand := v.driveCommand.Read()
	blocked := v.doorBlocked.Read()
	atFloor := v.atTargetFloor.Read()
	position := v.elevatorPosition.Read()
	target := v.dispatchTarget.Read()

	arrivedAt := 0.0
	if atFloor >= 1 && stopped && driveCommand != "GO" {
		arrivedAt = atFloor
	}
	if c.OpenWhileMoving && target >= 1 && math.Abs(floorPosition(target)-position) < 0.6 {
		// Defect: treat "almost there" as arrived even while still moving.
		arrivedAt = target
	}
	if arrivedAt >= 1 && arrivedAt != c.servedTarget {
		c.dwellRemaining = DoorDwellTime
		c.servedTarget = arrivedAt
	}
	if blocked && c.dwellRemaining < DoorDwellTime/2 {
		// A blocked doorway re-opens the doors (door reversal, Eq. 4.7).
		c.dwellRemaining = DoorDwellTime / 2
	}

	command := "CLOSE"
	if c.dwellRemaining > 0 {
		command = "OPEN"
		c.dwellRemaining -= dt
	}
	// Subgoal Achieve[CloseDoorWhenElevatorMovingOrMoved]: when the car is
	// moving or commanded to move and the doorway is clear, close the doors
	// (overrides the dwell, except in the defective variant).
	if (!stopped || driveCommand == "GO") && !blocked && !c.OpenWhileMoving {
		command = "CLOSE"
		c.dwellRemaining = 0
	}
	v.doorMotorCommand.Write(command)
}

// EmergencyBrake is the redundant-responsibility agent of Figure 4.11: it
// latches APPLIED when the car exceeds the emergency-braking envelope below
// the hoistway limit.
type EmergencyBrake struct {
	// Disabled removes the emergency brake's protection, for ablation runs.
	Disabled bool
	applied  bool

	binding
}

// Name implements sim.Component.
func (b *EmergencyBrake) Name() string { return "EmergencyBrake" }

// Reset implements sim.Resetter: the latched brake releases.
func (b *EmergencyBrake) Reset() { b.applied = false }

// Step implements sim.Component.
func (b *EmergencyBrake) Step(_ time.Duration, bus *sim.Bus) {
	v := b.on(bus)
	if !b.Disabled && v.elevatorPosition.Read() >= HoistwayUpperLimit-MaxEmergencyBrakingDistance {
		b.applied = true
	}
	state := "RELEASED"
	if b.applied {
		state = "APPLIED"
	}
	v.emergencyBrake.Write(state)
}

// PassengerAction is one scheduled passenger behaviour.
type PassengerAction struct {
	// At is the simulation time of the action.
	At time.Duration
	// CarCall, when >= 1, presses the in-car button for that floor.
	CarCall int
	// HallCall, when >= 1, presses the hall button for that floor.
	HallCall int
	// BlockDoorFor blocks the doorway for the given duration (0 = none).
	BlockDoorFor time.Duration
	// AddWeight adds load to the car in kilograms (negative to unload).
	AddWeight float64
}

// Passenger is the environmental agent of Figure 4.5: it presses buttons,
// blocks the doorway and loads the car according to a schedule.
type Passenger struct {
	// Actions is the schedule, in any order.
	Actions []PassengerAction

	blockUntil time.Duration
	weight     float64

	binding
}

// Name implements sim.Component.
func (p *Passenger) Name() string { return "Passenger" }

// Reset implements sim.Resetter: the doorway clears and the car unloads.
// The action schedule is configuration and survives.
func (p *Passenger) Reset() {
	p.blockUntil = 0
	p.weight = 0
}

// Step implements sim.Component.
func (p *Passenger) Step(now time.Duration, bus *sim.Bus) {
	v := p.on(bus)
	step := time.Duration(v.stepSeconds() * float64(time.Second))
	carCall, hallCall := 0.0, 0.0
	for _, a := range p.Actions {
		if now >= a.At && now < a.At+step {
			if a.CarCall >= 1 {
				carCall = float64(a.CarCall)
			}
			if a.HallCall >= 1 {
				hallCall = float64(a.HallCall)
			}
			if a.BlockDoorFor > 0 {
				p.blockUntil = now + a.BlockDoorFor
			}
			p.weight += a.AddWeight
		}
	}
	if p.weight < 0 {
		p.weight = 0
	}
	v.carCall.Write(carCall)
	v.hallCall.Write(hallCall)
	v.doorBlocked.Write(now < p.blockUntil)
	v.elevatorWeight.Write(p.weight)
}
