package elevator

import (
	"testing"

	"repro/internal/core"
	"repro/internal/monitor"
)

// TestNominalScenarioNoViolations is the baseline: a defect-free ride
// violates no system goal and no subgoal.
func TestNominalScenarioNoViolations(t *testing.T) {
	res := Run(NominalScenario())
	if res.Summary.Hits != 0 || res.Summary.FalseNegatives != 0 || res.Summary.FalsePositives != 0 {
		t.Fatalf("nominal run should be violation-free, got %s", res.Summary)
	}
	if len(res.Suite.Report()) != 0 {
		t.Errorf("nominal run report should be empty: %v", res.Suite.Report())
	}
	// The ride actually happened: the car ends at floor 4.
	if pos := res.Trace.Last().Number(SigElevatorPosition); pos < 8.9 || pos > 9.1 {
		t.Errorf("car should end at floor 4 (9 m), got %v m", pos)
	}
}

// TestDoorDefectScenarioHit: the open-while-moving defect violates both the
// system goal and the DoorController subgoal, so the hierarchy reports a hit.
func TestDoorDefectScenarioHit(t *testing.T) {
	res := Run(DoorDefectScenario())
	if res.Summary.Hits == 0 {
		t.Fatalf("door defect should produce a hit, got %s", res.Summary)
	}
	// The parent goal violation is matched specifically by the door
	// controller's subgoal.
	ds := res.Detections[GoalDoorClosedOrStopped]
	foundHit := false
	for _, d := range ds {
		if d.Kind == monitor.Hit {
			foundHit = true
			if len(d.MatchedSubgoals) == 0 {
				t.Error("hit should name the matching subgoal")
			}
		}
	}
	if !foundHit {
		t.Error("expected a hit for Maintain[DoorClosedOrElevatorStopped]")
	}
}

// TestOverweightScenarioHit: moving an overloaded car violates the
// overweight goal and the DriveController subgoal.
func TestOverweightScenarioHit(t *testing.T) {
	res := Run(OverweightScenario())
	ds := res.Detections[GoalDriveStoppedWhenOverweight]
	if len(ds) == 0 {
		t.Fatal("overweight scenario should produce detections for the overweight goal")
	}
	hit := false
	for _, d := range ds {
		if d.Kind == monitor.Hit {
			hit = true
		}
	}
	if !hit {
		t.Errorf("expected a hit, got %v", ds)
	}
}

// TestHoistwayDefectRedundancyMasks: with the emergency brake in place the
// drive controller's subgoal violation is a false positive — the redundant
// coverage keeps the system goal satisfied (thesis §5.1.2: false positives
// identify problems masked by redundant goal coverage).
func TestHoistwayDefectRedundancyMasks(t *testing.T) {
	res := Run(HoistwayDefectScenario())
	if res.Summary.FalsePositives == 0 {
		t.Fatalf("expected a false positive from the masked drive defect, got %s", res.Summary)
	}
	if res.Summary.Hits != 0 || res.Summary.FalseNegatives != 0 {
		t.Errorf("system goal should not be violated when the brake protects it: %s", res.Summary)
	}
	// The car stayed below the hoistway limit.
	for _, pos := range res.Trace.Series(SigElevatorPosition) {
		if pos > HoistwayUpperLimit {
			t.Fatalf("car exceeded the hoistway limit (%v m) despite the emergency brake", pos)
		}
	}
}

// TestHoistwayUnprotectedHit: removing the redundant coverage turns the same
// defect into a system-goal violation detected by the subgoals (a hit).
func TestHoistwayUnprotectedHit(t *testing.T) {
	res := Run(HoistwayUnprotectedScenario())
	ds := res.Detections[GoalBelowHoistwayLimit]
	hit := false
	for _, d := range ds {
		if d.Kind == monitor.Hit {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("expected a hit for the hoistway goal, got %v (summary %s)", ds, res.Summary)
	}
	exceeded := false
	for _, pos := range res.Trace.Series(SigElevatorPosition) {
		if pos > HoistwayUpperLimit {
			exceeded = true
		}
	}
	if !exceeded {
		t.Error("without the brake the car should exceed the hoistway limit")
	}
}

// TestRunDefaultDuration covers the default-duration fallback.
func TestRunDefaultDuration(t *testing.T) {
	sc := NominalScenario()
	sc.Duration = 0
	res := Run(sc)
	if res.Trace.Len() == 0 {
		t.Fatal("default duration should still simulate")
	}
}

// TestDoorDriveDecomposition checks the structure of the decomposition the
// ICPA produces for Maintain[DoorClosedOrElevatorStopped]: one shared
// (non-redundant) reduction with the two Table 4.4 subgoals, carrying the
// critical actuation-delay assumptions.
func TestDoorDriveDecomposition(t *testing.T) {
	a := DoorDriveICPA()
	d := a.Decomposition()
	if len(d.Reductions) != 1 {
		t.Fatalf("shared-responsibility ICPA should yield one reduction, got %d", len(d.Reductions))
	}
	if len(d.Reductions[0]) != 2 {
		t.Errorf("reduction should contain the two Table 4.4 subgoals, got %d", len(d.Reductions[0]))
	}
	if len(d.Assumptions) == 0 {
		t.Error("the decomposition must carry the indirect-control relationships as assumptions")
	}
	// The hoistway ICPA uses redundant responsibility: two reductions.
	hd := HoistwayICPA().Decomposition()
	if len(hd.Reductions) != 2 {
		t.Errorf("redundant-responsibility ICPA should yield two reductions, got %d", len(hd.Reductions))
	}
	// Degenerate verification input is handled gracefully.
	if res := core.Classify(d, nil); res.Class != core.Emergent {
		t.Errorf("classification over an empty space should be emergent, got %s", res)
	}
}
