package elevator

import (
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
)

func TestFloorPosition(t *testing.T) {
	if got := floorPosition(1); got != 0 {
		t.Errorf("floorPosition(1) = %v, want 0", got)
	}
	if got := floorPosition(4); got != 9 {
		t.Errorf("floorPosition(4) = %v, want 9", got)
	}
}

func TestStepSecondsDefault(t *testing.T) {
	bus := sim.NewBus()
	if got := bindVars(bus).stepSeconds(); got != 0.01 {
		t.Errorf("default step = %v, want 0.01", got)
	}
	bus.InitNumber(SigPeriodSeconds, 0.002)
	if got := bindVars(bus).stepSeconds(); got != 0.002 {
		t.Errorf("step = %v, want 0.002", got)
	}
}

func TestComponentNames(t *testing.T) {
	names := map[string]interface{ Name() string }{
		"Drive":              &Drive{},
		"DoorMotor":          &DoorMotor{},
		"DispatchController": &DispatchController{},
		"DriveController":    &DriveController{},
		"DoorController":     &DoorController{},
		"EmergencyBrake":     &EmergencyBrake{},
		"Passenger":          &Passenger{},
	}
	for want, c := range names {
		if got := c.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestDriveRespondsToCommands(t *testing.T) {
	s := sim.New(DefaultPeriod)
	s.Bus.InitNumber(SigPeriodSeconds, DefaultPeriod.Seconds())
	s.Bus.InitString(SigDriveCommand, "GO")
	s.Bus.InitNumber(SigDriveTarget, 9)
	s.Bus.InitString(SigEmergencyBrake, "RELEASED")
	s.Add(&Drive{})
	tr := s.Run(15 * time.Second)

	final := tr.Last()
	if pos := final.Number(SigElevatorPosition); pos < 8.9 || pos > 9.1 {
		t.Errorf("drive should reach the target, got position %v", pos)
	}
	if !final.Bool(SigElevatorStopped) {
		t.Error("drive should report stopped at the target")
	}
	// Speed never exceeds the rated speed.
	for _, v := range tr.Series(SigElevatorSpeed) {
		if v > MaxSpeed+1e-6 {
			t.Fatalf("speed %v exceeds rated speed", v)
		}
	}
}

func TestDriveStopsOnEmergencyBrake(t *testing.T) {
	s := sim.New(DefaultPeriod)
	s.Bus.InitNumber(SigPeriodSeconds, DefaultPeriod.Seconds())
	s.Bus.InitString(SigDriveCommand, "GO")
	s.Bus.InitNumber(SigDriveTarget, 100)
	s.Bus.InitString(SigEmergencyBrake, "APPLIED")
	s.Add(&Drive{})
	tr := s.Run(5 * time.Second)
	if pos := tr.Last().Number(SigElevatorPosition); pos > 0.2 {
		t.Errorf("braked drive should barely move, got %v m", pos)
	}
}

func TestDoorMotorTravelAndBlocking(t *testing.T) {
	s := sim.New(DefaultPeriod)
	s.Bus.InitNumber(SigPeriodSeconds, DefaultPeriod.Seconds())
	s.Bus.InitString(SigDoorMotorCommand, "CLOSE")
	s.Bus.InitBool(SigDoorBlocked, false)
	s.Add(NewDoorMotor())
	tr := s.Run(3 * time.Second)
	if !tr.Last().Bool(SigDoorClosed) {
		t.Error("door commanded CLOSE for 3s should be closed")
	}
	// Closing takes about DoorTravelTime: not closed after half the stroke.
	halfway := tr.At(tr.Len() / 3)
	if halfway.Bool(SigDoorClosed) {
		t.Error("door should not be closed after a third of the stroke")
	}

	// A blocked door never closes.
	s2 := sim.New(DefaultPeriod)
	s2.Bus.InitNumber(SigPeriodSeconds, DefaultPeriod.Seconds())
	s2.Bus.InitString(SigDoorMotorCommand, "CLOSE")
	s2.Bus.InitBool(SigDoorBlocked, true)
	s2.Add(NewDoorMotor())
	tr2 := s2.Run(5 * time.Second)
	if tr2.Last().Bool(SigDoorClosed) {
		t.Error("blocked door must not close (Eq. 4.6)")
	}
}

func TestDoorMotorStartClosedAndOpen(t *testing.T) {
	s := sim.New(DefaultPeriod)
	s.Bus.InitNumber(SigPeriodSeconds, DefaultPeriod.Seconds())
	s.Bus.InitString(SigDoorMotorCommand, "OPEN")
	s.Add(&DoorMotor{StartClosed: true})
	tr := s.Run(3 * time.Second)
	if got := tr.At(0).Number(SigDoorPosition); got < 0.9 {
		t.Errorf("door starting closed should begin near the closed position, got %v", got)
	}
	if tr.Last().Bool(SigDoorClosed) {
		t.Error("door commanded OPEN should end up not closed")
	}
	if tr.Last().Number(SigDoorPosition) != 0 {
		t.Errorf("door position should saturate at 0, got %v", tr.Last().Number(SigDoorPosition))
	}
}

func TestDispatchControllerLatchesCalls(t *testing.T) {
	s := sim.New(DefaultPeriod)
	s.Bus.InitNumber(SigPeriodSeconds, DefaultPeriod.Seconds())
	s.Bus.InitNumber(SigCarCall, 0)
	s.Bus.InitNumber(SigHallCall, 3)
	s.Add(&DispatchController{})
	tr := s.Run(50 * time.Millisecond)
	if got := tr.Last().Number(SigDispatchTarget); got != 3 {
		t.Errorf("dispatch target = %v, want 3", got)
	}
}

func TestDriveControllerDoorInterlock(t *testing.T) {
	bus := sim.NewBus()
	bus.InitNumber(SigPeriodSeconds, DefaultPeriod.Seconds())
	bus.InitNumber(SigDispatchTarget, 3)
	bus.InitNumber(SigElevatorPosition, 0)
	bus.InitBool(SigDoorClosed, false)
	bus.InitString(SigDoorMotorCommand, "CLOSE")
	bus.InitNumber(SigElevatorWeight, 0)

	c := &DriveController{}
	// Door open: must command STOP even though a destination is pending.
	s := sim.New(DefaultPeriod)
	s.Bus = bus
	s.Add(c)
	tr := s.Run(30 * time.Millisecond)
	if got := tr.Last().StringVal(SigDriveCommand); got != "STOP" {
		t.Errorf("with the door open the drive must be commanded STOP, got %q", got)
	}

	// Door closed: commands GO.
	bus.InitBool(SigDoorClosed, true)
	tr = s.Run(30 * time.Millisecond)
	if got := tr.Last().StringVal(SigDriveCommand); got != "GO" {
		t.Errorf("with the door closed the drive should be commanded GO, got %q", got)
	}

	// Door closed but commanded OPEN: stop (Table 4.4 subgoal).
	bus.InitString(SigDoorMotorCommand, "OPEN")
	tr = s.Run(30 * time.Millisecond)
	if got := tr.Last().StringVal(SigDriveCommand); got != "STOP" {
		t.Errorf("with the door commanded OPEN the drive must be commanded STOP, got %q", got)
	}
}

func TestDriveControllerOverweightAndLimit(t *testing.T) {
	bus := sim.NewBus()
	bus.InitNumber(SigPeriodSeconds, DefaultPeriod.Seconds())
	bus.InitNumber(SigDispatchTarget, 5)
	bus.InitNumber(SigElevatorPosition, 0)
	bus.InitBool(SigDoorClosed, true)
	bus.InitString(SigDoorMotorCommand, "CLOSE")
	bus.InitNumber(SigElevatorWeight, WeightThreshold+100)

	s := sim.New(DefaultPeriod)
	s.Bus = bus
	s.Add(&DriveController{})
	tr := s.Run(30 * time.Millisecond)
	if got := tr.Last().StringVal(SigDriveCommand); got != "STOP" {
		t.Errorf("overweight car must not move, got %q", got)
	}

	// Near the hoistway limit the controller stops regardless of target.
	bus.InitNumber(SigElevatorWeight, 0)
	bus.InitNumber(SigElevatorPosition, HoistwayUpperLimit-MaxStoppingDistance+0.1)
	tr = s.Run(30 * time.Millisecond)
	if got := tr.Last().StringVal(SigDriveCommand); got != "STOP" {
		t.Errorf("near the hoistway limit the drive must be commanded STOP, got %q", got)
	}
}

func TestEmergencyBrakeLatches(t *testing.T) {
	bus := sim.NewBus()
	bus.InitNumber(SigPeriodSeconds, DefaultPeriod.Seconds())
	bus.InitNumber(SigElevatorPosition, HoistwayUpperLimit)
	s := sim.New(DefaultPeriod)
	s.Bus = bus
	s.Add(&EmergencyBrake{})
	tr := s.Run(30 * time.Millisecond)
	if got := tr.Last().StringVal(SigEmergencyBrake); got != "APPLIED" {
		t.Errorf("brake should be applied above the envelope, got %q", got)
	}
	// Latches even after the position drops (it must be manually reset).
	bus.InitNumber(SigElevatorPosition, 0)
	tr = s.Run(30 * time.Millisecond)
	if got := tr.Last().StringVal(SigEmergencyBrake); got != "APPLIED" {
		t.Errorf("brake should latch, got %q", got)
	}

	disabled := &EmergencyBrake{Disabled: true}
	bus2 := sim.NewBus()
	bus2.InitNumber(SigElevatorPosition, HoistwayUpperLimit)
	s2 := sim.New(DefaultPeriod)
	s2.Bus = bus2
	s2.Add(disabled)
	tr = s2.Run(30 * time.Millisecond)
	if got := tr.Last().StringVal(SigEmergencyBrake); got != "RELEASED" {
		t.Errorf("disabled brake should stay released, got %q", got)
	}
}

func TestPassengerSchedule(t *testing.T) {
	s := sim.New(DefaultPeriod)
	s.Bus.InitNumber(SigPeriodSeconds, DefaultPeriod.Seconds())
	s.Add(&Passenger{Actions: []PassengerAction{
		{At: 20 * time.Millisecond, CarCall: 3, AddWeight: 80},
		{At: 40 * time.Millisecond, HallCall: 2, BlockDoorFor: 30 * time.Millisecond},
		{At: 80 * time.Millisecond, AddWeight: -200},
	}})
	tr := s.Run(150 * time.Millisecond)

	// The car call appears at the scheduled step only.
	if got := tr.At(2).Number(SigCarCall); got != 3 {
		t.Errorf("car call at step 2 = %v, want 3", got)
	}
	if got := tr.At(4).Number(SigCarCall); got != 0 {
		t.Errorf("car call at step 4 = %v, want 0", got)
	}
	if got := tr.At(4).Number(SigHallCall); got != 2 {
		t.Errorf("hall call at step 4 = %v, want 2", got)
	}
	// The door is blocked for the requested window.
	if !tr.At(5).Bool(SigDoorBlocked) {
		t.Error("door should be blocked during the blocking window")
	}
	if tr.At(9).Bool(SigDoorBlocked) {
		t.Error("door should be unblocked after the window")
	}
	// Weight accumulates and never goes negative.
	if got := tr.At(3).Number(SigElevatorWeight); got != 80 {
		t.Errorf("weight = %v, want 80", got)
	}
	if got := tr.Last().Number(SigElevatorWeight); got != 0 {
		t.Errorf("weight should clamp at zero, got %v", got)
	}
}

func TestGoalsCatalogue(t *testing.T) {
	r := Goals()
	if r.Len() != 8 {
		t.Fatalf("catalogue has %d goals, want 8", r.Len())
	}
	for _, name := range []string{
		GoalDoorClosedOrStopped, GoalDriveStoppedWhenOverweight, GoalBelowHoistwayLimit,
		SubgoalCloseDoorWhenMoving, SubgoalStopWhenDoorOpen, SubgoalDriveStopOverweight,
		SubgoalStopBeforeLimit, SubgoalEmergencyStopBeforeLimit,
	} {
		if _, ok := r.Get(name); !ok {
			t.Errorf("catalogue is missing %s", name)
		}
	}
	// All catalogued goals are monitorable at run time.
	for _, g := range r.All() {
		if _, err := monitor.New(g, "test", DefaultPeriod); err != nil {
			t.Errorf("goal %s is not monitorable: %v", g.Name, err)
		}
	}
}

func TestElevatorGoalFormulas(t *testing.T) {
	// The Table 4.4 subgoals are realizable by their assigned controllers
	// in the ICPA model (after the Observes sets are granted).
	a := DoorDriveICPA()
	for name, r := range a.CheckRealizability() {
		if !r.Realizable {
			t.Errorf("subgoal %s should be realizable: %s", name, r)
		}
	}
}

func TestModelAgentsAndPaths(t *testing.T) {
	m := Model()
	if len(m.Agents()) != 13 {
		t.Errorf("model has %d agents, want 13", len(m.Agents()))
	}
	g := Goals().MustGet(GoalDoorClosedOrStopped)
	agents := m.InfluencingAgents(g, 0)
	// Both branches: door side and drive side reach most of the system.
	for _, want := range []string{"DoorMotor", "DoorController", "Drive", "DriveController", "DispatchController", "Passenger"} {
		found := false
		for _, a := range agents {
			if a == want {
				found = true
			}
		}
		if !found {
			t.Errorf("influencing agents should include %s: %v", want, agents)
		}
	}
}

func TestDoorDriveICPATables(t *testing.T) {
	a := DoorDriveICPA()
	if len(a.Relationships) != 12 {
		t.Errorf("Tables 4.1/4.2 relationships = %d, want 12", len(a.Relationships))
	}
	if len(a.Subgoals) != 2 {
		t.Errorf("Table 4.4 subgoals = %d, want 2", len(a.Subgoals))
	}
	if a.Coverage.Assignment != 3 { // SharedResponsibility
		t.Errorf("coverage assignment = %v, want shared responsibility", a.Coverage.Assignment)
	}
	if len(a.CriticalAssumptions()) == 0 {
		t.Error("elaboration should reference critical assumptions")
	}
	out := a.Render()
	if len(out) < 500 {
		t.Errorf("rendered ICPA table looks too small: %d bytes", len(out))
	}
}

func TestHoistwayICPA(t *testing.T) {
	a := HoistwayICPA()
	if len(a.Subgoals) != 2 {
		t.Fatalf("hoistway ICPA subgoals = %d, want 2", len(a.Subgoals))
	}
	redundant := 0
	for _, sg := range a.Subgoals {
		if sg.Redundant {
			redundant++
		}
	}
	if redundant != 1 {
		t.Errorf("exactly one subgoal (the emergency brake) should be redundant, got %d", redundant)
	}
	for name, r := range a.CheckRealizability() {
		if !r.Realizable {
			t.Errorf("subgoal %s should be realizable: %s", name, r)
		}
	}
}

func TestScenarioCatalogue(t *testing.T) {
	scs := Scenarios()
	if len(scs) != 5 {
		t.Fatalf("scenario catalogue has %d entries, want 5", len(scs))
	}
	names := make(map[string]bool)
	for _, sc := range scs {
		if sc.Name == "" || sc.Description == "" || sc.Duration <= 0 {
			t.Errorf("scenario %+v is incomplete", sc)
		}
		names[sc.Name] = true
	}
	for _, want := range []string{"nominal", "door-defect", "overweight", "hoistway-defect", "hoistway-unprotected"} {
		if !names[want] {
			t.Errorf("missing scenario %q", want)
		}
	}
}

func TestBuildSuite(t *testing.T) {
	suite := BuildSuite(DefaultPeriod)
	if got := len(suite.Hierarchies()); got != 3 {
		t.Errorf("suite hierarchies = %d, want 3 (one per system goal)", got)
	}
	if got := len(suite.Monitors()); got != 8 {
		t.Errorf("suite monitors = %d, want 8", got)
	}
}
