package elevator

import (
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/temporal"
)

// DefaultPeriod is the simulation state period for the elevator scenarios.
const DefaultPeriod = 10 * time.Millisecond

// matchTolerance is the number of states within which a subsystem subgoal
// violation is considered to correspond to a system goal violation; it
// covers the observation delay plus the door/drive actuation delays.
const matchTolerance = 250

// Scenario configures one elevator simulation run.
type Scenario struct {
	// Name identifies the scenario.
	Name string
	// Description explains what the scenario exercises.
	Description string
	// Duration is the simulated time.
	Duration time.Duration
	// Passenger is the passenger schedule.
	Passenger []PassengerAction
	// DoorDefect enables the door controller's open-while-moving defect.
	DoorDefect bool
	// DriveDoorDefect makes the drive controller ignore the door state.
	DriveDoorDefect bool
	// OverweightDefect makes the drive controller ignore the rated load.
	OverweightDefect bool
	// HoistwayDefect makes the drive controller ignore the hoistway limit
	// and drive past the top floor.
	HoistwayDefect bool
	// DisableEmergencyBrake removes the redundant emergency brake (for
	// ablation of redundant goal coverage).
	DisableEmergencyBrake bool
}

// Result is the outcome of one monitored elevator scenario.
type Result struct {
	// Scenario is the configuration that was run.
	Scenario Scenario
	// Trace is the recorded state trace.
	Trace *temporal.Trace
	// Suite holds the goal and subgoal monitors after the run.
	Suite *monitor.Suite
	// Detections are the hit / false-negative / false-positive
	// classifications per system goal.
	Detections map[string][]monitor.Detection
	// Summary aggregates the detections.
	Summary monitor.Summary
}

// NominalScenario is a defect-free ride: the passenger calls the car, rides
// to the fourth floor, and leaves.  No goal violations are expected.
func NominalScenario() Scenario {
	return Scenario{
		Name:        "nominal",
		Description: "Passenger rides from the ground floor to floor 4 with no seeded defects.",
		Duration:    60 * time.Second,
		Passenger: []PassengerAction{
			{At: 1 * time.Second, HallCall: 1},
			{At: 2 * time.Second, AddWeight: 80},
			{At: 8 * time.Second, CarCall: 4},
			{At: 40 * time.Second, AddWeight: -80},
		},
	}
}

// DoorDefectScenario seeds the open-while-moving defect in the door
// controller: the system goal Maintain[DoorClosedOrElevatorStopped] and the
// DoorController subgoal are both violated (a hit at the subsystem level).
func DoorDefectScenario() Scenario {
	s := NominalScenario()
	s.Name = "door-defect"
	s.Description = "Door controller opens the doors while the car is still moving toward the landing."
	s.DoorDefect = true
	return s
}

// OverweightScenario loads the car above the rated load and seeds the
// drive controller defect that ignores the overweight check, violating
// Maintain[DriveStoppedWhenOverweight].
func OverweightScenario() Scenario {
	return Scenario{
		Name:             "overweight",
		Description:      "Car is loaded above the rated load and the drive controller moves it anyway.",
		Duration:         40 * time.Second,
		OverweightDefect: true,
		Passenger: []PassengerAction{
			{At: 1 * time.Second, HallCall: 1},
			{At: 2 * time.Second, AddWeight: 900},
			{At: 4 * time.Second, CarCall: 3},
		},
	}
}

// HoistwayDefectScenario seeds the hoistway-limit defect in the drive
// controller; the redundant emergency-brake subgoal keeps the system goal
// satisfied, producing a false positive at the subsystem level.
func HoistwayDefectScenario() Scenario {
	return Scenario{
		Name:           "hoistway-defect",
		Description:    "Drive controller ignores the hoistway limit; the emergency brake provides redundant coverage.",
		Duration:       45 * time.Second,
		HoistwayDefect: true,
		Passenger: []PassengerAction{
			{At: 1 * time.Second, CarCall: 5},
		},
	}
}

// HoistwayUnprotectedScenario additionally disables the emergency brake, so
// the system-level hoistway goal is violated together with the drive
// controller subgoal (a hit), demonstrating why the redundant assignment is
// used.
func HoistwayUnprotectedScenario() Scenario {
	s := HoistwayDefectScenario()
	s.Name = "hoistway-unprotected"
	s.Description = "Hoistway-limit defect with the emergency brake disabled: the system goal is violated."
	s.DisableEmergencyBrake = true
	return s
}

// Scenarios returns the standard elevator scenario set.
func Scenarios() []Scenario {
	return []Scenario{
		NominalScenario(),
		DoorDefectScenario(),
		OverweightScenario(),
		HoistwayDefectScenario(),
		HoistwayUnprotectedScenario(),
	}
}

// hierarchySpec is one row group of the elevator monitoring plan: a system
// goal with its subgoal monitor placements.
type hierarchySpec struct {
	parent   monitor.GoalAt
	children []monitor.GoalAt
}

// elevatorPlan is the elevator monitoring plan: one hierarchy per system
// goal, with the ICPA-derived subgoals as children, shared by the
// per-monitor and compiled suite builders.
func elevatorPlan() []hierarchySpec {
	registry := Goals()
	at := func(goal, location string) monitor.GoalAt {
		return monitor.GoalAt{Goal: registry.MustGet(goal), Location: location}
	}
	return []hierarchySpec{
		{
			parent: at(GoalDoorClosedOrStopped, "Elevator"),
			children: []monitor.GoalAt{
				at(SubgoalCloseDoorWhenMoving, "DoorController"),
				at(SubgoalStopWhenDoorOpen, "DriveController"),
			},
		},
		{
			parent:   at(GoalDriveStoppedWhenOverweight, "Elevator"),
			children: []monitor.GoalAt{at(SubgoalDriveStopOverweight, "DriveController")},
		},
		{
			parent: at(GoalBelowHoistwayLimit, "Elevator"),
			children: []monitor.GoalAt{
				at(SubgoalStopBeforeLimit, "DriveController"),
				at(SubgoalEmergencyStopBeforeLimit, "EmergencyBrake"),
			},
		},
	}
}

// BuildSuite constructs the hierarchical monitor suite for the elevator as
// individual per-monitor steppers.  Monitor atoms resolve their
// state-variable slots on the first observed state.  It is the per-monitor
// reference; Run evaluates the plan through BuildSuiteWithSchema's shared
// program instead.
func BuildSuite(period time.Duration) *monitor.Suite {
	suite := monitor.NewSuite()
	for _, h := range elevatorPlan() {
		parent := monitor.MustNew(h.parent.Goal, h.parent.Location, period)
		children := make([]*monitor.Monitor, len(h.children))
		for i, c := range h.children {
			children[i] = monitor.MustNew(c.Goal, c.Location, period)
		}
		suite.Add(monitor.NewHierarchy(parent, matchTolerance, children...))
	}
	return suite
}

// BuildSuiteWithSchema compiles the elevator monitoring plan into one shared
// evaluation program against a run's symbol table: every goal atom is a
// register-slot load from the first observation and the plan's overlapping
// door/drive/position atoms are each evaluated once per state.
func BuildSuiteWithSchema(period time.Duration, schema *temporal.Schema) *monitor.CompiledSuite {
	cs := monitor.NewCompiledSuite(period, schema)
	for _, h := range elevatorPlan() {
		cs.MustAddHierarchy(h.parent, matchTolerance, h.children...)
	}
	return cs
}

// initElevatorBus (re)initialises the elevator signal vocabulary so every
// signal is visible from the first step.  On a reset, reused bus every name
// is already interned and each Init is two plane stores.
func initElevatorBus(bus *sim.Bus) {
	bus.InitNumber(SigPeriodSeconds, DefaultPeriod.Seconds())
	bus.InitString(SigDriveCommand, "STOP")
	bus.InitString(SigDoorMotorCommand, "OPEN")
	bus.InitString(SigEmergencyBrake, "RELEASED")
	bus.InitBool(SigElevatorStopped, true)
	bus.InitBool(SigDoorClosed, false)
	bus.InitNumber(SigElevatorPosition, 0)
	bus.InitNumber(SigElevatorSpeed, 0)
	bus.InitNumber(SigElevatorWeight, 0)
	bus.InitNumber(SigDispatchTarget, 0)
}

// Run executes a scenario with hierarchical monitoring and returns the
// recorded trace, the monitors and the violation classification.
func Run(sc Scenario) Result {
	s := sim.New(DefaultPeriod)
	initElevatorBus(s.Bus)

	driveController := &DriveController{
		IgnoreHoistwayLimit: sc.HoistwayDefect,
		IgnoreDoorState:     sc.DriveDoorDefect,
		IgnoreOverweight:    sc.OverweightDefect,
	}
	if sc.HoistwayDefect {
		driveController.OverrunTargetTo = HoistwayUpperLimit + 2
	}
	doorController := &DoorController{OpenWhileMoving: sc.DoorDefect}
	brake := &EmergencyBrake{Disabled: sc.DisableEmergencyBrake}

	components := []sim.Component{
		&Passenger{Actions: sc.Passenger},
		&DispatchController{},
		driveController,
		doorController,
		brake,
		&Drive{},
		NewDoorMotor(),
	}
	// One shared handle table for the whole run instead of one per component.
	BindAll(s.Bus, components...)
	s.Add(components...)

	suite := BuildSuiteWithSchema(DefaultPeriod, s.Bus.Schema())
	s.Observe(suite)

	duration := sc.Duration
	if duration <= 0 {
		duration = 30 * time.Second
	}
	trace := s.Run(duration)
	suite.Finish()

	detections, summary := suite.ClassifyAll()
	return Result{
		Scenario:   sc,
		Trace:      trace,
		Suite:      suite.Suite(),
		Detections: detections,
		Summary:    summary,
	}
}

// NewDoorMotor returns a door motor matching the initial bus state (door
// open, as in Table 4.1's initial-state relationship).
func NewDoorMotor() *DoorMotor { return &DoorMotor{} }
