package goals

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/temporal"
)

func TestBooleanStateSpace(t *testing.T) {
	sp := BooleanStateSpace("A", "B", "A")
	if len(sp) != 4 {
		t.Fatalf("len = %d, want 4 (duplicates removed)", len(sp))
	}
	seen := make(map[string]bool)
	for _, s := range sp {
		seen[s.String()] = true
	}
	if len(seen) != 4 {
		t.Errorf("states not distinct: %v", seen)
	}
}

func TestBooleanStateSpacePanicsOnTooManyVars(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for > 20 variables")
		}
	}()
	vars := make([]string, 21)
	for i := range vars {
		vars[i] = string(rune('a' + i))
	}
	BooleanStateSpace(vars...)
}

func TestStateSpaceRestrict(t *testing.T) {
	sp := BooleanStateSpace("A", "B")
	onlyA := sp.Restrict(temporal.Var("A"))
	if len(onlyA) != 2 {
		t.Fatalf("Restrict(A) len = %d, want 2", len(onlyA))
	}
	for _, s := range onlyA {
		if !s.Bool("A") {
			t.Error("restricted state violates the restriction")
		}
	}
}

// chainReduction is the decomposition of Table 3.1: G: A=>B decomposed as
// {A=>C, C=>D, D=>B}.
func chainReduction() AndReduction {
	return AndReduction{
		Parent: MustParse("G", "goal", "A => B"),
		Subgoals: []Goal{
			MustParse("G1_1", "", "A => C"),
			MustParse("G1_2", "", "C => D"),
			MustParse("G1_3", "", "D => B"),
		},
	}
}

func TestAndReductionTables3_1_3_2(t *testing.T) {
	// Table 3.1: both {A=>C, C=>D, D=>B} and {A=>E, E=>B} are complete
	// and-reductions of G: A=>B.
	space := BooleanStateSpace("A", "B", "C", "D", "E")

	red1 := chainReduction()
	check1 := CheckAndReduction(red1, space)
	if !check1.Complete() {
		t.Errorf("Table 3.1 first and-reduction should be complete: %s", check1)
	}

	red2 := AndReduction{
		Parent: MustParse("G", "goal", "A => B"),
		Subgoals: []Goal{
			MustParse("G2_1", "", "A => E"),
			MustParse("G2_2", "", "E => B"),
		},
	}
	check2 := CheckAndReduction(red2, space)
	if !check2.Complete() {
		t.Errorf("Table 3.1 second and-reduction should be complete: %s", check2)
	}

	// Table 3.2: with the hidden dependency F => !C (emergence X1), the
	// first reduction no longer entails the parent unless !F is also
	// guaranteed; dropping subgoal C=>D breaks entailment, demonstrating a
	// partial and-reduction.
	partial := AndReduction{
		Parent: red1.Parent,
		Subgoals: []Goal{
			MustParse("G1_1", "", "A => C"),
			MustParse("G1_3", "", "D => B"),
		},
	}
	checkPartial := CheckAndReduction(partial, space)
	if checkPartial.Entails {
		t.Error("partial and-reduction must not entail the parent")
	}
	if !IsPartialAndReduction(partial, space) {
		t.Error("dropping a subgoal should leave a partial and-reduction")
	}
	if checkPartial.Counterexample == nil {
		t.Error("failed entailment should produce a counterexample state")
	}
}

func TestAndReductionMinimality(t *testing.T) {
	// Adding a redundant subgoal (a duplicate of an existing one) breaks
	// minimality and is reported.
	space := BooleanStateSpace("A", "B", "C", "D")
	red := chainReduction()
	red.Subgoals = append(red.Subgoals, MustParse("Gdup", "", "A => C"))
	check := CheckAndReduction(red, space)
	if !check.Entails {
		t.Fatal("entailment should still hold")
	}
	if check.Minimal {
		t.Error("duplicated subgoal should break minimality")
	}
	if len(check.RedundantSubgoals) == 0 {
		t.Error("redundant subgoal indices should be reported")
	}
	if check.Complete() {
		t.Error("non-minimal reduction should not be complete")
	}
}

func TestAndReductionConsistency(t *testing.T) {
	space := BooleanStateSpace("A", "B")
	red := AndReduction{
		Parent: MustParse("G", "", "A => B"),
		Subgoals: []Goal{
			MustParse("G1", "", "A"),
			MustParse("G2", "", "!A"),
		},
	}
	check := CheckAndReduction(red, space)
	if check.Consistent {
		t.Error("mutually incompatible subgoals should not be consistent")
	}
	if check.Complete() {
		t.Error("inconsistent reduction should not be complete")
	}
}

func TestAndReductionNonTrivial(t *testing.T) {
	space := BooleanStateSpace("A", "B")
	parent := MustParse("G", "", "A => B")

	restatement := AndReduction{Parent: parent, Subgoals: []Goal{MustParse("G1", "", "A => B")}}
	if CheckAndReduction(restatement, space).NonTrivial {
		t.Error("a restatement of the parent is not a decomposition")
	}

	// A single stronger subgoal is allowed (OR-reduction style).
	stronger := AndReduction{Parent: parent, Subgoals: []Goal{MustParse("G1", "", "B")}}
	check := CheckAndReduction(stronger, space)
	if !check.NonTrivial || !check.Entails {
		t.Errorf("single stronger subgoal should be a non-trivial entailing reduction: %s", check)
	}

	empty := AndReduction{Parent: parent}
	if CheckAndReduction(empty, space).NonTrivial {
		t.Error("empty subgoal set is trivial")
	}

	// Restatement plus a domain assumption counts as relying on domain
	// knowledge (Darimont condition 4).
	withAssumption := AndReduction{
		Parent:      parent,
		Subgoals:    []Goal{MustParse("G1", "", "A => B")},
		Assumptions: []temporal.Formula{temporal.MustParse("B => A")},
	}
	if !CheckAndReduction(withAssumption, space).NonTrivial {
		t.Error("restatement relying on domain knowledge is non-trivial")
	}
}

func TestAndReductionWithAssumptions(t *testing.T) {
	// The ObjectInPath example of §3.2.1: the subgoals entail the parent
	// only under the domain assumption relating detection to reality.
	space := BooleanStateSpace("ObjectInPath", "Detected", "CAStop", "StopVehicle")
	parent := MustParse("G", "brake when object in path", "ObjectInPath => StopVehicle")
	red := AndReduction{
		Parent: parent,
		Subgoals: []Goal{
			MustParse("G1", "", "Detected => CAStop"),
			MustParse("G2", "", "CAStop => StopVehicle"),
		},
	}
	if CheckAndReduction(red, space).Entails {
		t.Fatal("without the detection assumption the subgoals must not entail the parent")
	}
	red.Assumptions = []temporal.Formula{temporal.MustParse("ObjectInPath => Detected")}
	check := CheckAndReduction(red, space)
	if !check.Entails {
		t.Fatalf("with the detection assumption the subgoals should entail the parent: %s", check)
	}
}

func TestCheckAndReductionEmptySpace(t *testing.T) {
	check := CheckAndReduction(chainReduction(), nil)
	if check.Complete() {
		t.Error("empty state space should not certify a reduction")
	}
}

func TestIsPartialAndReductionRejectsComplete(t *testing.T) {
	space := BooleanStateSpace("A", "B", "C", "D")
	if IsPartialAndReduction(chainReduction(), space) {
		t.Error("a complete reduction is not a partial one")
	}
	inconsistent := AndReduction{
		Parent:   MustParse("G", "", "A => B"),
		Subgoals: []Goal{MustParse("G1", "", "A"), MustParse("G2", "", "!A")},
	}
	if IsPartialAndReduction(inconsistent, space) {
		t.Error("inconsistent subgoals cannot form a partial reduction")
	}
}

func TestReductionCheckString(t *testing.T) {
	s := ReductionCheck{Entails: true, Minimal: true, Consistent: true, NonTrivial: true}.String()
	if !strings.Contains(s, "entails=yes") || !strings.Contains(s, "nontrivial=yes") {
		t.Errorf("String() = %q", s)
	}
}

func TestPropChainEntailment(t *testing.T) {
	// Property: for every state, if all chain subgoals hold then the
	// parent holds (soundness of the entailment check on random states).
	red := chainReduction()
	f := func(a, b, c, d bool) bool {
		s := temporal.NewState().SetBool("A", a).SetBool("B", b).SetBool("C", c).SetBool("D", d)
		all := true
		for _, g := range red.Subgoals {
			if !evalOnState(g.Formal, s) {
				all = false
			}
		}
		if !all {
			return true
		}
		return evalOnState(red.Parent.Formal, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropRestrictSubset(t *testing.T) {
	// Restrict never grows the state space and all surviving states
	// satisfy the restriction.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sp := BooleanStateSpace("A", "B", "C")
		var cond temporal.Formula
		switch r.Intn(3) {
		case 0:
			cond = temporal.Var("A")
		case 1:
			cond = temporal.Not(temporal.Var("B"))
		default:
			cond = temporal.And(temporal.Var("A"), temporal.Var("C"))
		}
		sub := sp.Restrict(cond)
		if len(sub) > len(sp) {
			return false
		}
		for _, s := range sub {
			if !evalOnState(cond, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if r.Len() != 0 {
		t.Fatal("new registry should be empty")
	}
	g1 := MustParse("Maintain[A]", "", "A")
	g2 := MustParse("Achieve[B]", "", "B => eventually(C)")
	r.Add(g1)
	r.Add(g2)
	r.Add(g1) // replace, not duplicate

	if r.Len() != 2 {
		t.Errorf("Len() = %d, want 2", r.Len())
	}
	if got, ok := r.Get("Maintain[A]"); !ok || got.Name != "Maintain[A]" {
		t.Error("Get failed")
	}
	if _, ok := r.Get("missing"); ok {
		t.Error("Get(missing) should fail")
	}
	if got := r.MustGet("Achieve[B]"); got.Name != "Achieve[B]" {
		t.Error("MustGet failed")
	}
	if names := r.Names(); len(names) != 2 || names[0] != "Maintain[A]" {
		t.Errorf("Names() = %v", names)
	}
	if all := r.All(); len(all) != 2 || all[1].Name != "Achieve[B]" {
		t.Errorf("All() = %v", all)
	}
	if got := r.ByClass(ClassAchieve); len(got) != 1 || got[0].Name != "Achieve[B]" {
		t.Errorf("ByClass(Achieve) = %v", got)
	}
	if !strings.Contains(r.String(), "Maintain[A]") {
		t.Errorf("String() = %q", r.String())
	}
}

func TestRegistryMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet should panic for a missing goal")
		}
	}()
	NewRegistry().MustGet("missing")
}
