package goals

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/temporal"
)

// AgentKind distinguishes the kinds of agents found along indirect control
// paths (thesis §4.2, Figure 4.4).
type AgentKind int

// Agent kinds.
const (
	// KindSoftware is a software agent (controller, feature subsystem).
	KindSoftware AgentKind = iota + 1
	// KindActuator is a physical actuator that changes system state after
	// an actuation delay.
	KindActuator
	// KindSensor is a sensor that produces a sensed state variable.
	KindSensor
	// KindEnvironment is an environmental agent such as the Passenger or
	// Driver that the design does not control.
	KindEnvironment
)

// String returns a human-readable name for the agent kind.
func (k AgentKind) String() string {
	switch k {
	case KindSoftware:
		return "software"
	case KindActuator:
		return "actuator"
	case KindSensor:
		return "sensor"
	case KindEnvironment:
		return "environment"
	default:
		return "unknown"
	}
}

// Agent is an entity that monitors and controls state variables.  Monitors
// are the variables the agent can observe (one state late, per the KAOS
// convention used throughout the thesis); Controls are the variables the
// agent directly produces.
type Agent struct {
	// Name identifies the agent, e.g. "DriveController" or "Arbiter".
	Name string
	// Kind classifies the agent.
	Kind AgentKind
	// Monitors lists the state variables the agent can observe.
	Monitors []string
	// Controls lists the state variables the agent directly controls.
	Controls []string
}

// NewAgent constructs an agent with the given capability sets.
func NewAgent(name string, kind AgentKind, monitors, controls []string) Agent {
	return Agent{
		Name:     name,
		Kind:     kind,
		Monitors: sortedUnique(monitors),
		Controls: sortedUnique(controls),
	}
}

// CanMonitor reports whether the agent can observe the variable.
func (a Agent) CanMonitor(name string) bool { return contains(a.Monitors, name) }

// CanControl reports whether the agent directly controls the variable.
func (a Agent) CanControl(name string) bool { return contains(a.Controls, name) }

// String renders the agent with its capability sets.
func (a Agent) String() string {
	return fmt.Sprintf("%s (%s) Mon=%v Ctrl=%v", a.Name, a.Kind, a.Monitors, a.Controls)
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// UnrealizabilityCause classifies why a goal is not strictly realizable by
// an agent (thesis §2.3.2, Letier & van Lamsweerde's categories).
type UnrealizabilityCause int

// Unrealizability causes.
const (
	// CauseNone means the goal is realizable.
	CauseNone UnrealizabilityCause = iota
	// CauseLackOfMonitorability: a monitored variable is not observable by
	// the agent.
	CauseLackOfMonitorability
	// CauseLackOfControl: a controlled variable is not controllable by the
	// agent.
	CauseLackOfControl
	// CauseReferenceToFuture: the goal constrains current control actions
	// using values the agent can only observe in the future (e.g. the goal
	// contains an unbounded Eventually, or requires observing and
	// controlling in the same state).
	CauseReferenceToFuture
	// CauseUnsatisfiable: the goal is unsatisfiable regardless of agent
	// capabilities.
	CauseUnsatisfiable
)

// String names the unrealizability cause.
func (c UnrealizabilityCause) String() string {
	switch c {
	case CauseNone:
		return "realizable"
	case CauseLackOfMonitorability:
		return "lack of monitorability"
	case CauseLackOfControl:
		return "lack of control"
	case CauseReferenceToFuture:
		return "reference to future"
	case CauseUnsatisfiable:
		return "goal unsatisfiability"
	default:
		return "unknown"
	}
}

// Realizability is the result of checking a goal against an agent's
// capabilities.
type Realizability struct {
	// Realizable reports whether the goal is strictly realizable by the
	// agent.
	Realizable bool
	// Causes lists the reasons the goal is unrealizable (empty when
	// realizable).
	Causes []UnrealizabilityCause
	// MissingMonitored lists monitored variables the agent cannot observe.
	MissingMonitored []string
	// MissingControlled lists controlled variables the agent cannot
	// control.
	MissingControlled []string
}

// String summarises the realizability result.
func (r Realizability) String() string {
	if r.Realizable {
		return "realizable"
	}
	parts := make([]string, 0, len(r.Causes))
	for _, c := range r.Causes {
		parts = append(parts, c.String())
	}
	return "unrealizable: " + strings.Join(parts, ", ")
}

// CheckRealizability checks whether the agent can strictly realize the goal:
// every monitored variable of the goal must be in Mon(ag) and every
// controlled variable in Ctrl(ag) (thesis §2.3.2).  A goal whose formal
// definition references the unbounded future is never realizable.  A goal of
// the form A ⇒ B whose antecedent is not under a past-time operator and not
// controlled by the agent also yields a reference-to-future cause, because
// the agent would have to observe A and control B in the same state
// (thesis §4.5.3, Table 4.5).
func CheckRealizability(g Goal, ag Agent) Realizability {
	var r Realizability
	causeSet := make(map[UnrealizabilityCause]struct{})

	if g.Formal != nil && temporal.ReferencesFuture(g.Formal) {
		causeSet[CauseReferenceToFuture] = struct{}{}
	}

	for _, v := range g.MonitoredVars() {
		if !ag.CanMonitor(v) && !ag.CanControl(v) {
			r.MissingMonitored = append(r.MissingMonitored, v)
			causeSet[CauseLackOfMonitorability] = struct{}{}
		}
	}
	for _, v := range g.ControlledVars() {
		if !ag.CanControl(v) {
			r.MissingControlled = append(r.MissingControlled, v)
			causeSet[CauseLackOfControl] = struct{}{}
		}
	}

	// Same-state observation: for A ⇒ B where A is observed (not
	// controlled by the agent) and not wrapped in a past-time operator,
	// the agent cannot monitor A and control B in the same state.
	if ant := temporal.Antecedent(g.Formal); ant != nil {
		if !temporal.IsDelayed(ant) {
			needsObservation := false
			for _, v := range ant.Vars() {
				if !ag.CanControl(v) {
					needsObservation = true
					break
				}
			}
			if needsObservation {
				causeSet[CauseReferenceToFuture] = struct{}{}
			}
		}
	}

	if len(causeSet) == 0 {
		r.Realizable = true
		return r
	}
	for c := range causeSet {
		r.Causes = append(r.Causes, c)
	}
	sort.Slice(r.Causes, func(i, j int) bool { return r.Causes[i] < r.Causes[j] })
	sort.Strings(r.MissingMonitored)
	sort.Strings(r.MissingControlled)
	return r
}
