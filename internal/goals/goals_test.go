package goals

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/temporal"
)

func TestGoalConstruction(t *testing.T) {
	g := MustParse("Maintain[DoorClosedOrElevatorStopped]",
		"At all times the door shall be closed or the elevator speed shall be STOPPED.",
		"dc | IsStopped_es")
	if g.Name != "Maintain[DoorClosedOrElevatorStopped]" {
		t.Errorf("Name = %q", g.Name)
	}
	if got := g.Vars(); !reflect.DeepEqual(got, []string{"IsStopped_es", "dc"}) {
		t.Errorf("Vars() = %v", got)
	}
	if g.Class() != ClassMaintain {
		t.Errorf("Class() = %v, want Maintain", g.Class())
	}
	s := g.String()
	for _, want := range []string{"Goal: Maintain[", "InformalDef:", "FormalDef:"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestGoalClasses(t *testing.T) {
	// Table 2.2 goal pattern classes.
	tests := []struct {
		name string
		want Class
	}{
		{"Achieve[TrainProgress]", ClassAchieve},
		{"Cease[Output]", ClassCease},
		{"Maintain[DoorClosed]", ClassMaintain},
		{"Avoid[Collision]", ClassAvoid},
		{"SomethingElse", ClassUnknown},
	}
	for _, tt := range tests {
		g := New(tt.name, "", nil)
		if got := g.Class(); got != tt.want {
			t.Errorf("Class(%q) = %v, want %v", tt.name, got, tt.want)
		}
	}
	// Classification from structure when the name has no keyword.
	achieve := New("G", "", temporal.Implies(temporal.Var("P"), temporal.Eventually(temporal.Var("Q"))))
	if achieve.Class() != ClassAchieve {
		t.Error("future-referencing goal should classify as Achieve")
	}
	maintain := New("G", "", temporal.Implies(temporal.Var("P"), temporal.Var("Q")))
	if maintain.Class() != ClassMaintain {
		t.Error("state-wise goal should classify as Maintain")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassAchieve: "Achieve", ClassCease: "Cease", ClassMaintain: "Maintain",
		ClassAvoid: "Avoid", ClassUnknown: "Unknown",
	} {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
}

func TestMonitoredControlledInference(t *testing.T) {
	g := MustParse("Achieve[StopBeforeLimit]",
		"If the elevator nears the upper hoistway limit, the drive shall be stopped.",
		"prev(etp >= 390) => drc == 'STOP'")
	if got := g.MonitoredVars(); !reflect.DeepEqual(got, []string{"etp"}) {
		t.Errorf("MonitoredVars() = %v", got)
	}
	if got := g.ControlledVars(); !reflect.DeepEqual(got, []string{"drc"}) {
		t.Errorf("ControlledVars() = %v", got)
	}

	// Explicit sets override inference.
	g2 := g.WithVars([]string{"a", "b", "a"}, []string{"c"})
	if got := g2.MonitoredVars(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("explicit MonitoredVars() = %v", got)
	}
	if got := g2.ControlledVars(); !reflect.DeepEqual(got, []string{"c"}) {
		t.Errorf("explicit ControlledVars() = %v", got)
	}

	// Non-implication goals control all their variables.
	g3 := MustParse("Maintain[X]", "", "dc | es")
	if got := g3.MonitoredVars(); got != nil {
		t.Errorf("MonitoredVars() = %v, want nil", got)
	}
	if got := g3.ControlledVars(); !reflect.DeepEqual(got, []string{"dc", "es"}) {
		t.Errorf("ControlledVars() = %v", got)
	}

	var empty Goal
	if empty.ControlledVars() != nil || empty.Vars() != nil {
		t.Error("empty goal should have no variables")
	}
}

func TestGoalWithAssignee(t *testing.T) {
	g := MustParse("G", "", "A => B").WithAssignee("DoorController", "DriveController")
	if !reflect.DeepEqual(g.Assignee, []string{"DoorController", "DriveController"}) {
		t.Errorf("Assignee = %v", g.Assignee)
	}
}

func TestGoalHolds(t *testing.T) {
	g := MustParse("Achieve[AutoAccelBelowThreshold]",
		"Vehicle acceleration caused by autonomous control shall not exceed 2 m/s2.",
		"sourceIsSubsystem => va <= 2")
	tr := temporal.NewTrace(time.Millisecond)
	tr.Append(temporal.NewState().SetBool("sourceIsSubsystem", true).SetNumber("va", 1.0))
	tr.Append(temporal.NewState().SetBool("sourceIsSubsystem", false).SetNumber("va", 5.0))
	if !g.Holds(tr) {
		t.Error("goal should hold: driver-caused acceleration is unconstrained")
	}
	tr.Append(temporal.NewState().SetBool("sourceIsSubsystem", true).SetNumber("va", 2.5))
	if g.Holds(tr) {
		t.Error("goal should be violated by autonomous acceleration above 2 m/s2")
	}
}

func TestAgentKinds(t *testing.T) {
	for k, want := range map[AgentKind]string{
		KindSoftware: "software", KindActuator: "actuator", KindSensor: "sensor",
		KindEnvironment: "environment", AgentKind(0): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("AgentKind.String() = %q, want %q", got, want)
		}
	}
}

func TestAgentCapabilities(t *testing.T) {
	ag := NewAgent("DriveController", KindSoftware,
		[]string{"DoorClosed", "DoorMotorCommand", "DoorClosed"},
		[]string{"DriveCommand"})
	if !ag.CanMonitor("DoorClosed") || ag.CanMonitor("ElevatorWeight") {
		t.Error("CanMonitor wrong")
	}
	if !ag.CanControl("DriveCommand") || ag.CanControl("DoorMotorCommand") {
		t.Error("CanControl wrong")
	}
	if got := len(ag.Monitors); got != 2 {
		t.Errorf("duplicate monitors not removed: %v", ag.Monitors)
	}
	if !strings.Contains(ag.String(), "DriveController") {
		t.Errorf("String() = %q", ag.String())
	}
}

func TestCheckRealizability(t *testing.T) {
	drive := NewAgent("DriveController", KindSoftware,
		[]string{"DoorClosed", "DoorMotorCommand"}, []string{"DriveCommand"})

	tests := []struct {
		name       string
		goal       Goal
		agent      Agent
		realizable bool
		causes     []UnrealizabilityCause
	}{
		{
			name: "realizable delayed antecedent",
			goal: MustParse("Achieve[StopElevatorWhenDoorOpen]",
				"If the door is open, the drive shall be commanded to STOP.",
				"prev(!DoorClosed) => DriveCommand == 'STOP'"),
			agent:      drive,
			realizable: true,
		},
		{
			name: "same-state observation is a reference to the future",
			goal: MustParse("G", "",
				"!DoorClosed => DriveCommand == 'STOP'"),
			agent:  drive,
			causes: []UnrealizabilityCause{CauseReferenceToFuture},
		},
		{
			name: "lack of monitorability",
			goal: MustParse("G", "",
				"prev(ElevatorWeight > 1000) => DriveCommand == 'STOP'"),
			agent:  drive,
			causes: []UnrealizabilityCause{CauseLackOfMonitorability},
		},
		{
			name: "lack of control",
			goal: MustParse("G", "",
				"prev(!DoorClosed) => DoorMotorCommand == 'OPEN'"),
			agent:  drive,
			causes: []UnrealizabilityCause{CauseLackOfControl},
		},
		{
			name: "unbounded future reference",
			goal: New("Achieve[TrainProgress]", "",
				temporal.Implies(temporal.Var("OnBlock"), temporal.Eventually(temporal.Var("OnNextBlock")))),
			agent: NewAgent("Train", KindSoftware, []string{"OnBlock"}, []string{"OnBlock", "OnNextBlock"}),
			causes: []UnrealizabilityCause{
				CauseReferenceToFuture,
			},
		},
		{
			name: "controlling antecedent avoids future reference",
			goal: MustParse("G", "",
				"DriveCommand == 'GO' => DriveCommand != 'STOP'"),
			agent:      drive,
			realizable: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := CheckRealizability(tt.goal, tt.agent)
			if r.Realizable != tt.realizable {
				t.Fatalf("Realizable = %v, want %v (%s)", r.Realizable, tt.realizable, r)
			}
			if !tt.realizable {
				if len(r.Causes) == 0 {
					t.Fatal("unrealizable goal must report causes")
				}
				for _, want := range tt.causes {
					found := false
					for _, c := range r.Causes {
						if c == want {
							found = true
						}
					}
					if !found {
						t.Errorf("missing cause %v in %v", want, r.Causes)
					}
				}
			}
		})
	}
}

func TestRealizabilityStringAndCauseString(t *testing.T) {
	r := Realizability{Realizable: true}
	if r.String() != "realizable" {
		t.Errorf("String() = %q", r.String())
	}
	r = Realizability{Causes: []UnrealizabilityCause{CauseLackOfControl, CauseReferenceToFuture}}
	if !strings.Contains(r.String(), "lack of control") {
		t.Errorf("String() = %q", r.String())
	}
	for c, want := range map[UnrealizabilityCause]string{
		CauseNone:                 "realizable",
		CauseLackOfMonitorability: "lack of monitorability",
		CauseLackOfControl:        "lack of control",
		CauseReferenceToFuture:    "reference to future",
		CauseUnsatisfiable:        "goal unsatisfiability",
		UnrealizabilityCause(99):  "unknown",
	} {
		if got := c.String(); got != want {
			t.Errorf("cause.String() = %q, want %q", got, want)
		}
	}
}
