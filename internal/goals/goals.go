// Package goals models KAOS-style goals, agents and and-reductions as used
// by the thesis "System Safety as an Emergent Property in Composite Systems"
// (Black, 2009).
//
// A Goal pairs an informal, natural-language definition with a formal
// temporal-logic definition (thesis Figure 2.6).  Goals are classified into
// the Achieve / Cease / Maintain / Avoid patterns of Table 2.2.  Agents are
// the entities that monitor and control state variables; a goal is
// realizable by an agent when the agent can monitor every monitored variable
// and control every controlled variable of the goal (thesis §2.3.2).
// And-reductions capture Darimont's four conditions for a set of subgoals to
// constitute a decomposition of a parent goal (thesis §3.1.2).
package goals

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/temporal"
)

// Class is the goal pattern classification of thesis Table 2.2.
type Class int

// Goal pattern classes.
const (
	// ClassUnknown is returned when a formula does not match a pattern.
	ClassUnknown Class = iota
	// ClassAchieve is the pattern P ⇒ ♦Q.
	ClassAchieve
	// ClassCease is the pattern P ⇒ ♦¬Q.
	ClassCease
	// ClassMaintain is the pattern P ⇒ qQ.
	ClassMaintain
	// ClassAvoid is the pattern P ⇒ q¬Q.
	ClassAvoid
)

// String returns the KAOS keyword for the class.
func (c Class) String() string {
	switch c {
	case ClassAchieve:
		return "Achieve"
	case ClassCease:
		return "Cease"
	case ClassMaintain:
		return "Maintain"
	case ClassAvoid:
		return "Avoid"
	default:
		return "Unknown"
	}
}

// Goal is a formally specified system or subsystem goal.
type Goal struct {
	// Name is the KAOS-style goal name, e.g. "Maintain[DoorClosedOrElevatorStopped]".
	Name string
	// InformalDef is the natural-language definition shown in the thesis'
	// goal boxes.
	InformalDef string
	// Formal is the formal definition.  Entailment goals (P ⇒ Q) are
	// interpreted as holding in every state, which is how monitors check
	// them.
	Formal temporal.Formula
	// Monitored lists the state variables the responsible agent must be
	// able to observe; when empty they are inferred from the antecedent of
	// an implication (or the whole formula otherwise).
	Monitored []string
	// Controlled lists the state variables the responsible agent must be
	// able to control; when empty they are inferred from the consequent of
	// an implication.
	Controlled []string
	// Assignee names the agent(s) responsible for the goal, when decided.
	Assignee []string
}

// New constructs a goal from its name, informal text and formal definition.
func New(name, informal string, formal temporal.Formula) Goal {
	return Goal{Name: name, InformalDef: informal, Formal: formal}
}

// MustParse constructs a goal whose formal definition is given in the
// temporal package's ASCII notation; it panics when the formula is invalid,
// which is appropriate for the static goal catalogues in this repository.
func MustParse(name, informal, formal string) Goal {
	return New(name, informal, temporal.MustParse(formal))
}

// WithVars returns a copy of the goal with explicit monitored and controlled
// variable sets.
func (g Goal) WithVars(monitored, controlled []string) Goal {
	g.Monitored = append([]string(nil), monitored...)
	g.Controlled = append([]string(nil), controlled...)
	return g
}

// WithAssignee returns a copy of the goal assigned to the named agents.
func (g Goal) WithAssignee(agents ...string) Goal {
	g.Assignee = append([]string(nil), agents...)
	return g
}

// MonitoredVars returns the monitored-variable set M of the goal relation
// G(M, C).  When not given explicitly it is the variable set of the
// antecedent of an implication, or empty for non-implication formulas.
func (g Goal) MonitoredVars() []string {
	if g.Monitored != nil {
		return sortedUnique(g.Monitored)
	}
	if ant := temporal.Antecedent(g.Formal); ant != nil {
		return ant.Vars()
	}
	return nil
}

// ControlledVars returns the controlled-variable set C of the goal relation
// G(M, C).  When not given explicitly it is the variable set of the
// consequent of an implication, or the whole formula's variables otherwise.
func (g Goal) ControlledVars() []string {
	if g.Controlled != nil {
		return sortedUnique(g.Controlled)
	}
	if con := temporal.Consequent(g.Formal); con != nil {
		return con.Vars()
	}
	if g.Formal == nil {
		return nil
	}
	return g.Formal.Vars()
}

// Vars returns all state variables referenced by the goal's formal
// definition.
func (g Goal) Vars() []string {
	if g.Formal == nil {
		return nil
	}
	return g.Formal.Vars()
}

// Class classifies the goal into the Achieve/Cease/Maintain/Avoid patterns
// of Table 2.2 based on its name prefix, falling back to the formal
// structure: goals whose consequent references the future with Eventually
// are Achieve/Cease goals, the rest Maintain/Avoid.
func (g Goal) Class() Class {
	name := g.Name
	if i := strings.Index(name, "["); i > 0 {
		name = name[:i]
	}
	switch name {
	case "Achieve":
		return ClassAchieve
	case "Cease":
		return ClassCease
	case "Maintain":
		return ClassMaintain
	case "Avoid":
		return ClassAvoid
	}
	if g.Formal == nil {
		return ClassUnknown
	}
	if temporal.ReferencesFuture(g.Formal) {
		return ClassAchieve
	}
	return ClassMaintain
}

// Holds reports whether the goal's formal definition holds at every state of
// the trace (the entailment interpretation of thesis goals).
func (g Goal) Holds(tr *temporal.Trace) bool {
	return temporal.HoldsThroughout(g.Formal, tr)
}

// String renders the goal in the thesis' goal-box format.
func (g Goal) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Goal: %s\n", g.Name)
	if g.InformalDef != "" {
		fmt.Fprintf(&b, "InformalDef: %s\n", g.InformalDef)
	}
	if g.Formal != nil {
		fmt.Fprintf(&b, "FormalDef: %s", g.Formal.String())
	}
	return b.String()
}

func sortedUnique(in []string) []string {
	seen := make(map[string]struct{}, len(in))
	out := make([]string, 0, len(in))
	for _, s := range in {
		if _, ok := seen[s]; ok {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
