package goals

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/temporal"
)

// AndReduction is a candidate decomposition of a parent goal into subgoals,
// following Darimont's and-reduction (thesis §3.1.2).  The thesis' own
// composability definitions (package core) are built on top of it.
type AndReduction struct {
	// Parent is the goal being decomposed.
	Parent Goal
	// Subgoals are the proposed subgoals.
	Subgoals []Goal
	// Assumptions are domain properties (indirect control relationships,
	// initial-state facts) that the decomposition relies on; they are
	// conjoined with the subgoals when checking entailment, mirroring the
	// thesis' "critical assumptions".
	Assumptions []temporal.Formula
}

// ReductionCheck reports which of Darimont's four and-reduction conditions
// hold for a candidate decomposition, evaluated over a finite state space.
type ReductionCheck struct {
	// Entails is condition (1): the conjunction of subgoals (and
	// assumptions) entails the parent goal in every state of the space.
	Entails bool
	// Minimal is condition (2): no proper subset of the subgoals entails
	// the parent.
	Minimal bool
	// Consistent is condition (3): the subgoals are not mutually
	// incompatible (some state satisfies them all).
	Consistent bool
	// NonTrivial is condition (4): the decomposition is not a simple
	// restatement of the parent goal.
	NonTrivial bool
	// RedundantSubgoals indexes subgoals whose removal preserves
	// entailment; non-empty exactly when Minimal is false.
	RedundantSubgoals []int
	// Counterexample is a state in which all subgoals hold but the parent
	// does not (nil when Entails is true).
	Counterexample temporal.State
}

// Complete reports whether all four conditions hold, i.e. the subgoals are a
// complete and-reduction of the parent goal over the state space.
func (c ReductionCheck) Complete() bool {
	return c.Entails && c.Minimal && c.Consistent && c.NonTrivial
}

// String summarises the check.
func (c ReductionCheck) String() string {
	flag := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	return fmt.Sprintf("entails=%s minimal=%s consistent=%s nontrivial=%s",
		flag(c.Entails), flag(c.Minimal), flag(c.Consistent), flag(c.NonTrivial))
}

// StateSpace is a finite set of candidate system states used for bounded
// (exact, for propositional goals over the enumerated variables) checking of
// decompositions.
type StateSpace []temporal.State

// BooleanStateSpace enumerates every assignment of the given boolean state
// variables.  For the propositional goals of Chapter 3 this makes the
// decomposition checks exact.  The size of the result is 2^len(vars); the
// function panics above 20 variables to guard against accidental blow-up.
func BooleanStateSpace(vars ...string) StateSpace {
	if len(vars) > 20 {
		panic(fmt.Sprintf("goals: BooleanStateSpace over %d variables is too large", len(vars)))
	}
	sorted := sortedUnique(vars)
	n := 1 << len(sorted)
	out := make(StateSpace, 0, n)
	for mask := 0; mask < n; mask++ {
		s := temporal.NewState()
		for i, v := range sorted {
			s.SetBool(v, mask&(1<<i) != 0)
		}
		out = append(out, s)
	}
	return out
}

// Restrict returns the subset of the state space satisfying the formula,
// used to model domain knowledge when checking decompositions.
func (sp StateSpace) Restrict(f temporal.Formula) StateSpace {
	var out StateSpace
	for _, s := range sp {
		if evalOnState(f, s) {
			out = append(out, s)
		}
	}
	return out
}

// evalOnState evaluates a (state-wise) formula on a single state by wrapping
// it in a one-element trace.
func evalOnState(f temporal.Formula, s temporal.State) bool {
	tr := temporal.NewTrace(0)
	tr.Append(s)
	return f.Eval(tr, 0)
}

// CheckAndReduction evaluates Darimont's four conditions for the candidate
// decomposition over the state space.  Temporal operators in the goals are
// evaluated state-wise (each state of the space is treated as both initial
// and current), which is exact for the propositional goals of Chapter 3 and
// conservative otherwise.
func CheckAndReduction(red AndReduction, space StateSpace) ReductionCheck {
	var check ReductionCheck
	if len(space) == 0 {
		return check
	}

	all := make([]temporal.Formula, 0, len(red.Subgoals)+len(red.Assumptions))
	for _, g := range red.Subgoals {
		all = append(all, g.Formal)
	}
	all = append(all, red.Assumptions...)

	// Condition 1: entailment.
	check.Entails = true
	for _, s := range space {
		if evalAllOnState(all, s) && !evalOnState(red.Parent.Formal, s) {
			check.Entails = false
			check.Counterexample = s
			break
		}
	}

	// Condition 3: consistency.
	for _, s := range space {
		if evalAllOnState(all, s) {
			check.Consistent = true
			break
		}
	}

	// Condition 2: minimal sufficiency — removing any single subgoal must
	// break entailment.  Assumptions are domain properties, not subgoals,
	// and are never removed.
	check.Minimal = true
	if check.Entails {
		for i := range red.Subgoals {
			reduced := make([]temporal.Formula, 0, len(all)-1)
			for j, g := range red.Subgoals {
				if j == i {
					continue
				}
				reduced = append(reduced, g.Formal)
			}
			reduced = append(reduced, red.Assumptions...)
			entailsWithout := true
			for _, s := range space {
				if evalAllOnState(reduced, s) && !evalOnState(red.Parent.Formal, s) {
					entailsWithout = false
					break
				}
			}
			if entailsWithout {
				check.Minimal = false
				check.RedundantSubgoals = append(check.RedundantSubgoals, i)
			}
		}
	}

	// Condition 4: not a restatement.  More than one subgoal always
	// qualifies; a single subgoal qualifies only when it differs
	// syntactically from the parent (proof "relies on domain knowledge" is
	// approximated by the presence of assumptions).
	switch {
	case len(red.Subgoals) > 1:
		check.NonTrivial = true
	case len(red.Subgoals) == 1:
		same := red.Subgoals[0].Formal.String() == red.Parent.Formal.String()
		check.NonTrivial = !same || len(red.Assumptions) > 0
	default:
		check.NonTrivial = false
	}
	return check
}

func evalAllOnState(fs []temporal.Formula, s temporal.State) bool {
	for _, f := range fs {
		if !evalOnState(f, s) {
			return false
		}
	}
	return true
}

// IsPartialAndReduction reports whether the subgoals form a partial
// and-reduction of the parent: they are consistent and there exists some
// extension (within the state space's variable vocabulary, approximated by
// the parent goal itself as the missing subgoal) that completes the
// reduction.  It returns false when the subgoals already entail the parent
// (then they are a complete reduction, not a partial one).
func IsPartialAndReduction(red AndReduction, space StateSpace) bool {
	check := CheckAndReduction(red, space)
	if check.Entails {
		return false
	}
	if !check.Consistent {
		return false
	}
	// Adding the parent itself as the missing subgoal always completes the
	// reduction (Darimont's existence condition); the interesting content
	// is that the current subgoals do not yet entail the parent.
	return true
}

// Registry is a named collection of goals, used for the thesis' goal
// catalogues (elevator goals, the nine vehicle safety goals, ICPA-derived
// subgoals).
type Registry struct {
	goals map[string]Goal
	order []string
}

// NewRegistry returns an empty goal registry.
func NewRegistry() *Registry {
	return &Registry{goals: make(map[string]Goal)}
}

// Add registers a goal, replacing any previous goal with the same name.
func (r *Registry) Add(g Goal) {
	if _, exists := r.goals[g.Name]; !exists {
		r.order = append(r.order, g.Name)
	}
	r.goals[g.Name] = g
}

// Get returns the named goal.
func (r *Registry) Get(name string) (Goal, bool) {
	g, ok := r.goals[name]
	return g, ok
}

// MustGet returns the named goal and panics when it is absent; intended for
// the static catalogues where absence is a programming error.
func (r *Registry) MustGet(name string) Goal {
	g, ok := r.goals[name]
	if !ok {
		panic(fmt.Sprintf("goals: no goal named %q", name))
	}
	return g
}

// Len returns the number of registered goals.
func (r *Registry) Len() int { return len(r.goals) }

// Names returns the goal names in insertion order.
func (r *Registry) Names() []string { return append([]string(nil), r.order...) }

// All returns the goals in insertion order.
func (r *Registry) All() []Goal {
	out := make([]Goal, 0, len(r.order))
	for _, n := range r.order {
		out = append(out, r.goals[n])
	}
	return out
}

// ByClass returns the registered goals of the given class, sorted by name.
func (r *Registry) ByClass(c Class) []Goal {
	var out []Goal
	for _, g := range r.goals {
		if g.Class() == c {
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String lists the registered goal names.
func (r *Registry) String() string {
	return fmt.Sprintf("Registry[%s]", strings.Join(r.order, ", "))
}
