package monitor

import (
	"fmt"
	"math/bits"
	"time"

	"repro/internal/temporal"
)

// LaneSuite is a monitor suite evaluated over N independent runs in lockstep:
// one shared temporal.Program in lane mode (StepLanes) produces a per-lane
// verdict mask per goal formula per tick, and the suite folds those masks
// into per-lane violation intervals feeding N ordinary per-lane Suites for
// classification.  Observing a widened state costs one program pass plus a
// handful of word operations per goal — interval bookkeeping runs only on
// ticks where some lane's verdict actually changed, which for the thesis'
// goals is a few dozen transitions over a 20 000-step run.
//
// Lanes correspond to scenario variants with different trajectories; each
// lane's recorded intervals (and its FastSummaryAt classification) are
// step-for-step identical to observing that lane's run with a scalar
// CompiledSuite.  A LaneSuite is reusable across batches via Reset and is
// not safe for concurrent use.
type LaneSuite struct {
	period  time.Duration
	lanes   int
	program *temporal.Program
	//lint:resetok Seal latches the suite into lane mode once; batches reuse the sealed program rather than recompiling
	sealed bool

	//lint:resetok per-lane classification suites are construction state; Reset rewinds their monitors' recorders through the monitors slice
	suites []*Suite
	// monitors[i][l] records tap i's violations on lane l.
	monitors [][]*Monitor
	//lint:resetok program output taps are assigned at compile time and never move
	taps []temporal.Tap

	viol      []uint64  // per-tap mask of lanes currently inside a violation
	starts    [][]int32 // per-tap per-lane open-interval start step
	laneSteps []int     // per-lane observed step count
	active    uint64    // lanes still contributing
}

// NewLaneSuite returns an empty lane suite of the given width.  The period
// converts bounded-past operator durations (non-positive defaults to 1 ms);
// the schema resolves every goal atom to its register slot at compile time.
// Register hierarchies with AddHierarchy, then Seal before observing.
func NewLaneSuite(period time.Duration, schema *temporal.Schema, lanes int) *LaneSuite {
	if period <= 0 {
		period = time.Millisecond
	}
	ls := &LaneSuite{
		period:    period,
		lanes:     lanes,
		program:   temporal.NewProgram(period, schema),
		laneSteps: make([]int, lanes),
	}
	ls.suites = make([]*Suite, lanes)
	for l := range ls.suites {
		ls.suites[l] = NewSuite()
	}
	return ls
}

// Lanes returns the lane width.
func (ls *LaneSuite) Lanes() int { return ls.lanes }

// AddHierarchy compiles a parent goal and its subgoals into the shared lane
// program and registers the hierarchy — with per-lane interval recorders —
// at the given matching tolerance, mirroring CompiledSuite.AddHierarchy.
func (ls *LaneSuite) AddHierarchy(parent GoalAt, tolerance int, children ...GoalAt) error {
	if ls.sealed {
		return fmt.Errorf("monitor: AddHierarchy after Seal")
	}
	all := make([]GoalAt, 0, 1+len(children))
	all = append(all, parent)
	all = append(all, children...)

	for _, g := range all {
		if g.Goal.Formal == nil {
			return fmt.Errorf("monitor: goal %q has no formal definition", g.Goal.Name)
		}
		if !temporal.IsPastTime(g.Goal.Formal) {
			return fmt.Errorf("monitor: goal %q: formula %q contains future-time operators and cannot be compiled to a run-time monitor",
				g.Goal.Name, g.Goal.Formal)
		}
	}

	perLane := make([][]*Monitor, ls.lanes) // [lane][goal]
	for l := range perLane {
		perLane[l] = make([]*Monitor, len(all))
	}
	for i, g := range all {
		tap, err := ls.program.Add(g.Goal.Formal)
		if err != nil {
			return fmt.Errorf("monitor: goal %q: %w", g.Goal.Name, err)
		}
		row := make([]*Monitor, ls.lanes)
		for l := 0; l < ls.lanes; l++ {
			row[l] = &Monitor{Goal: g.Goal, Location: g.Location, period: ls.period}
			perLane[l][i] = row[l]
		}
		ls.monitors = append(ls.monitors, row)
		ls.taps = append(ls.taps, tap)
		ls.viol = append(ls.viol, 0)
		ls.starts = append(ls.starts, make([]int32, ls.lanes))
	}
	for l := 0; l < ls.lanes; l++ {
		ls.suites[l].Add(NewHierarchy(perLane[l][0], tolerance, perLane[l][1:]...))
	}
	return nil
}

// MustAddHierarchy is like AddHierarchy but panics on error; for statically
// known monitoring plans.
func (ls *LaneSuite) MustAddHierarchy(parent GoalAt, tolerance int, children ...GoalAt) {
	if err := ls.AddHierarchy(parent, tolerance, children...); err != nil {
		panic(err)
	}
}

// Seal switches the shared program into lane mode; no further hierarchies
// can be added.  It fails when the plan cannot be lane-stepped (predicate
// atoms) or the width is out of range.
func (ls *LaneSuite) Seal() error {
	if err := ls.program.SetLanes(ls.lanes); err != nil {
		return err
	}
	ls.sealed = true
	ls.active = uint64(1)<<uint(ls.lanes) - 1
	return nil
}

// Reset rewinds the lane suite for the next batch, with the low activeCount
// lanes marked active: program operator state, every lane's recorded
// intervals, the open-interval masks and the per-lane step counts are all
// cleared.  Lanes at or beyond activeCount are inert until the next Reset.
func (ls *LaneSuite) Reset(activeCount int) {
	ls.program.Reset()
	for _, row := range ls.monitors {
		for _, m := range row {
			m.Reset()
		}
	}
	for i := range ls.viol {
		ls.viol[i] = 0
	}
	for _, starts := range ls.starts {
		for l := range starts {
			starts[l] = 0
		}
	}
	for l := range ls.laneSteps {
		ls.laneSteps[l] = 0
	}
	if activeCount < 0 {
		activeCount = 0
	}
	if activeCount > ls.lanes {
		activeCount = ls.lanes
	}
	ls.active = uint64(1)<<uint(activeCount) - 1
}

// ObserveLanes implements sim.LaneObserver: it advances the lane program one
// widened state and folds each tap's per-lane verdict mask into the per-lane
// violation intervals.  Only taps whose violating-lane mask changed this tick
// touch any per-lane state.
func (ls *LaneSuite) ObserveLanes(st temporal.State) {
	ls.program.StepLanes(st)
	active := ls.active
	for i, tap := range ls.taps {
		// A set verdict bit means the goal holds on that lane; violating
		// lanes are the active lanes whose bit is clear.
		v := ^ls.program.OutputMask(tap) & active
		diff := (v ^ ls.viol[i]) & active
		if diff == 0 {
			continue
		}
		starts := ls.starts[i]
		row := ls.monitors[i]
		for d := diff; d != 0; d &= d - 1 {
			l := bits.TrailingZeros64(d)
			if v&(1<<uint(l)) != 0 {
				starts[l] = int32(ls.laneSteps[l])
			} else {
				m := row[l]
				m.violations = append(m.violations, Interval{Start: int(starts[l]), End: ls.laneSteps[l]})
			}
		}
		ls.viol[i] = (ls.viol[i] &^ active) | v
	}
	for a := active; a != 0; a &= a - 1 {
		ls.laneSteps[bits.TrailingZeros64(a)]++
	}
}

// LaneStopped implements sim.LaneObserver: the lane's open violation
// intervals are closed at its final step count — exactly what a scalar run's
// Finish does when the simulation stops early — and the lane is retired from
// the active mask.
func (ls *LaneSuite) LaneStopped(lane int) { ls.closeLane(lane) }

// DeactivateLane retires a lane mid-batch, closing its open intervals; used
// both for early-stopped lanes and for unused lanes of a narrow batch.
func (ls *LaneSuite) DeactivateLane(lane int) { ls.closeLane(lane) }

func (ls *LaneSuite) closeLane(lane int) {
	bit := uint64(1) << uint(lane)
	if ls.active&bit == 0 {
		return
	}
	end := ls.laneSteps[lane]
	for i := range ls.taps {
		if ls.viol[i]&bit != 0 {
			m := ls.monitors[i][lane]
			m.violations = append(m.violations, Interval{Start: int(ls.starts[i][lane]), End: end})
			ls.viol[i] &^= bit
		}
		ls.monitors[i][lane].step = end
	}
	ls.active &^= bit
}

// Finish closes every remaining lane's open violation intervals, mirroring
// Suite.Finish at the end of a batch.
func (ls *LaneSuite) Finish() {
	for a := ls.active; a != 0; a &= a - 1 {
		ls.closeLane(bits.TrailingZeros64(a))
	}
}

// LaneStepsObserved returns how many states lane l contributed to the batch.
func (ls *LaneSuite) LaneStepsObserved(l int) int { return ls.laneSteps[l] }

// FastSummaryAt computes one lane's classification summary at an explicit
// matching tolerance; see Suite.FastSummaryAt.  Call after Finish (or after
// the lane was deactivated).
func (ls *LaneSuite) FastSummaryAt(lane, tolerance int) Summary {
	return ls.suites[lane].FastSummaryAt(tolerance)
}

// LaneSuiteOf returns lane l's classification suite, for reporting and
// differential tests.  Its monitors are lane-fed: Observe on them panics.
func (ls *LaneSuite) LaneSuiteOf(l int) *Suite { return ls.suites[l] }

// Program returns the shared lane program, exposing its sharing statistics.
func (ls *LaneSuite) Program() *temporal.Program { return ls.program }
