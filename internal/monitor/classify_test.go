package monitor

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/goals"
	"repro/internal/temporal"
)

// classifyQuadratic is the all-pairs reference implementation of
// Hierarchy.Classify that the sort-merge replaced; the differential test
// below proves the two agree on populations with many intervals.
func classifyQuadratic(h *Hierarchy) []Detection {
	var out []Detection

	childIntervals := make(map[*Monitor][]Interval, len(h.Children))
	matchedChild := make(map[*Monitor][]bool, len(h.Children))
	for _, c := range h.Children {
		ivs := c.Violations()
		childIntervals[c] = ivs
		matchedChild[c] = make([]bool, len(ivs))
	}

	for _, pv := range h.Parent.Violations() {
		var matched []string
		for _, c := range h.Children {
			for i, cv := range childIntervals[c] {
				if pv.Overlaps(cv, h.Tolerance) {
					matched = append(matched, c.Goal.Name)
					matchedChild[c][i] = true
				}
			}
		}
		if len(matched) > 0 {
			sort.Strings(matched)
			out = append(out, Detection{
				Kind: Hit, GoalName: h.Parent.Goal.Name, Location: h.Parent.Location,
				Interval: pv, MatchedSubgoals: uniqueStrings(matched),
			})
		} else {
			out = append(out, Detection{
				Kind: FalseNegative, GoalName: h.Parent.Goal.Name, Location: h.Parent.Location,
				Interval: pv,
			})
		}
	}

	for _, c := range h.Children {
		for i, cv := range childIntervals[c] {
			if !matchedChild[c][i] {
				out = append(out, Detection{
					Kind: FalsePositive, GoalName: c.Goal.Name, Location: c.Location, Interval: cv,
				})
			}
		}
	}
	return out
}

// TestClassifySortMergeMatchesQuadratic drives a hierarchy through thousands
// of random states — producing hundreds of violation intervals per monitor —
// and requires the sort-merge classification to equal the all-pairs
// reference, element for element, across several tolerances.
func TestClassifySortMergeMatchesQuadratic(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		tolerance := []int{0, 1, 3, 10}[seed%4]
		parent := MustNew(goals.New("G", "", temporal.Var("p")), "Vehicle", time.Millisecond)
		children := []*Monitor{
			MustNew(goals.New("Ga", "", temporal.Var("c0")), "Arbiter", time.Millisecond),
			MustNew(goals.New("Gb", "", temporal.Var("c1")), "CA", time.Millisecond),
			MustNew(goals.New("Gc", "", temporal.Var("c2")), "ACC", time.Millisecond),
		}
		h := NewHierarchy(parent, tolerance, children...)

		r := rand.New(rand.NewSource(seed))
		st := temporal.NewState()
		for i := 0; i < 4000; i++ {
			st.SetBool("p", r.Intn(3) > 0)
			st.SetBool("c0", r.Intn(3) > 0)
			st.SetBool("c1", r.Intn(8) > 0)
			st.SetBool("c2", r.Intn(2) > 0)
			h.Observe(st)
		}
		h.Finish()

		if n := parent.ViolationCount(); n < 100 {
			t.Fatalf("seed %d: only %d parent intervals; the population is too small to exercise the merge", seed, n)
		}
		got := h.Classify()
		want := classifyQuadratic(h)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d tolerance %d: sort-merge classification diverges from the all-pairs reference (%d vs %d detections)",
				seed, tolerance, len(got), len(want))
		}
	}
}

// TestOverlapsToleranceEdges pins the widening semantics at the boundaries:
// touching endpoints, zero-length intervals and negative widening.
func TestOverlapsToleranceEdges(t *testing.T) {
	tests := []struct {
		name      string
		a, b      Interval
		tolerance int
		want      bool
	}{
		// Touching endpoints: half-open intervals that share an endpoint do
		// not overlap untolerated; any positive tolerance joins them.
		{"touching, no tolerance", Interval{0, 5}, Interval{5, 8}, 0, false},
		{"touching, tolerance 1", Interval{0, 5}, Interval{5, 8}, 1, true},
		// A one-state gap needs the widening to reach across from one side.
		{"gap 1, no tolerance", Interval{0, 5}, Interval{6, 8}, 0, false},
		{"gap 1, tolerance 1", Interval{0, 5}, Interval{6, 8}, 1, true},
		// Zero-length intervals: empty on their own, but strictly inside
		// another interval they widen into an overlap even at tolerance 0.
		{"zero-length inside", Interval{5, 5}, Interval{3, 8}, 0, true},
		{"zero-length at start", Interval{5, 5}, Interval{5, 8}, 0, false},
		{"zero-length at start, tolerance 1", Interval{5, 5}, Interval{5, 8}, 1, true},
		{"two zero-length, same point", Interval{5, 5}, Interval{5, 5}, 0, false},
		{"two zero-length, same point, tolerance 1", Interval{5, 5}, Interval{5, 5}, 1, true},
		// Negative widening shrinks both intervals: a contact that survives
		// shrinking must be deep.
		{"overlap 1, negative tolerance", Interval{0, 5}, Interval{4, 8}, -1, false},
		{"overlap 3, negative tolerance", Interval{0, 5}, Interval{2, 8}, -1, true},
		{"contained, negative tolerance", Interval{2, 4}, Interval{0, 10}, -1, true},
		// Shrinking a one-state interval by one inverts it (start 3, end 2),
		// yet the endpoint algebra still reports an overlap while both
		// inverted endpoints lie strictly inside the other interval.
		{"inverted inner interval still contained", Interval{2, 3}, Interval{0, 10}, -1, true},
		{"inverted interval at the edge", Interval{0, 1}, Interval{1, 10}, -1, false},
	}
	for _, tt := range tests {
		if got := tt.a.Overlaps(tt.b, tt.tolerance); got != tt.want {
			t.Errorf("%s: %v.Overlaps(%v, %d) = %v, want %v", tt.name, tt.a, tt.b, tt.tolerance, got, tt.want)
		}
		if got := tt.b.Overlaps(tt.a, tt.tolerance); got != tt.want {
			t.Errorf("%s: overlap must be symmetric", tt.name)
		}
	}
}
