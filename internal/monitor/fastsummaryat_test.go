package monitor

import (
	"math/rand"
	"testing"
	"time"
)

// TestFastSummaryAtMatchesDedicatedSuite is the monitor-level proof behind
// grouped scenario execution: classifying one observed run at tolerance B via
// FastSummaryAt must equal the FastSummary of a suite BUILT at tolerance B
// that observed the identical states.  The recorded violation intervals
// depend only on the observations, never on the registered tolerance, so one
// observation pass supports classification at any number of tolerances.
func TestFastSummaryAtMatchesDedicatedSuite(t *testing.T) {
	tolerances := []int{1, 4, 16}
	differed := false
	for seed := int64(0); seed < 10; seed++ {
		suites := make(map[int]*CompiledSuite, len(tolerances))
		for _, tol := range tolerances {
			cs := NewCompiledSuite(time.Millisecond, nil)
			for _, h := range compiledPlan() {
				if err := cs.AddHierarchy(h.parent, tol, h.children...); err != nil {
					t.Fatalf("AddHierarchy(%s): %v", h.parent.Goal.Name, err)
				}
			}
			suites[tol] = cs
		}

		// Every suite observes the identical state sequence.
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 400; i++ {
			st := compiledRandState(r)
			for _, cs := range suites {
				cs.Observe(st)
			}
		}
		for _, cs := range suites {
			cs.Finish()
		}

		for _, own := range tolerances {
			cs := suites[own]
			if got, want := cs.FastSummaryAt(own), cs.FastSummary(); got != want {
				t.Errorf("seed %d: FastSummaryAt(own %d) = %v, FastSummary = %v", seed, own, got, want)
			}
			for _, other := range tolerances {
				got := cs.FastSummaryAt(other)
				want := suites[other].FastSummary()
				if got != want {
					t.Errorf("seed %d: suite@%d.FastSummaryAt(%d) = %v, dedicated suite@%d = %v",
						seed, own, other, got, suites[other].FastSummary(), other)
				}
				if other != own && got != cs.FastSummary() {
					differed = true
				}
			}
			// Classification at a foreign tolerance reads the recorded
			// intervals without disturbing them: the suite's own summary is
			// unchanged afterwards, as are repeated overridden reads.
			if got, want := cs.FastSummary(), suites[own].Summary(); got != want {
				t.Errorf("seed %d: FastSummaryAt mutated suite@%d: FastSummary now %v, want %v",
					seed, own, got, want)
			}
			first := cs.FastSummaryAt(tolerances[0])
			if again := cs.FastSummaryAt(tolerances[0]); again != first {
				t.Errorf("seed %d: repeated FastSummaryAt(%d) flapped: %v then %v",
					seed, tolerances[0], first, again)
			}
		}
	}
	if !differed {
		t.Error("every tolerance produced the same summary on every seed: the differential has no teeth")
	}
}
