package monitor

import (
	"fmt"
	"time"

	"repro/internal/goals"
	"repro/internal/temporal"
)

// GoalAt pairs a goal with the hierarchy location it is monitored at — the
// cell coordinates of the thesis' Table 5.3 monitoring matrix.
type GoalAt struct {
	// Goal is the monitored goal.
	Goal goals.Goal
	// Location is the monitoring location (e.g. "Vehicle", "Arbiter", "CA").
	Location string
}

// CompiledSuite is a monitor suite whose goal formulas are all compiled into
// one shared temporal.Program: every state is evaluated in a single pass over
// the program's hash-consed node array (each shared atom and subformula read
// once), and the per-formula verdicts feed the same lightweight interval
// recorders, Hierarchy matching and Classify machinery a per-monitor Suite
// uses.  The detections, summaries and reports are identical to a Suite built
// from individual monitors over the same plan; only the evaluation cost per
// state changes.
//
// A CompiledSuite is reusable: Reset clears the program's operator state and
// every recorder, so a sweep worker compiles the suite once and monitors run
// after run with it instead of rebuilding 30+ steppers per variant.  Like the
// monitors it replaces, it is not safe for concurrent use.
type CompiledSuite struct {
	period  time.Duration
	program *temporal.Program
	//lint:resetok the hierarchy registry is construction state written only by AddHierarchy; Reset rewinds its monitors' recorders through the monitors slice
	suite    *Suite
	monitors []*Monitor
	//lint:resetok program output taps are assigned at compile time and never move; each run writes fresh verdicts through them
	taps []temporal.Tap
}

// NewCompiledSuite returns an empty compiled suite.  The period converts
// bounded-past operator durations (non-positive defaults to 1 ms); a non-nil
// schema resolves every goal atom to its register slot at compile time, as
// NewWithSchema does for individual monitors.
func NewCompiledSuite(period time.Duration, schema *temporal.Schema) *CompiledSuite {
	if period <= 0 {
		period = time.Millisecond
	}
	return &CompiledSuite{
		period:  period,
		program: temporal.NewProgram(period, schema),
		suite:   NewSuite(),
	}
}

// AddHierarchy compiles a parent goal and its subgoals into the shared
// program and registers the hierarchy with the given matching tolerance.  On
// error nothing is registered: every goal is validated before any of them is
// compiled into the shared program, so a rejected hierarchy leaves no orphan
// nodes behind.
func (cs *CompiledSuite) AddHierarchy(parent GoalAt, tolerance int, children ...GoalAt) error {
	all := make([]GoalAt, 0, 1+len(children))
	all = append(all, parent)
	all = append(all, children...)

	for _, g := range all {
		if g.Goal.Formal == nil {
			return fmt.Errorf("monitor: goal %q has no formal definition", g.Goal.Name)
		}
		if !temporal.IsPastTime(g.Goal.Formal) {
			return fmt.Errorf("monitor: goal %q: formula %q contains future-time operators and cannot be compiled to a run-time monitor",
				g.Goal.Name, g.Goal.Formal)
		}
	}

	ms := make([]*Monitor, len(all))
	taps := make([]temporal.Tap, len(all))
	for i, g := range all {
		tap, err := cs.program.Add(g.Goal.Formal)
		if err != nil {
			return fmt.Errorf("monitor: goal %q: %w", g.Goal.Name, err)
		}
		// A program-fed monitor records verdicts but owns no stepper; the
		// Hierarchy/Classify/Report layer reads only its recorded intervals.
		ms[i] = &Monitor{Goal: g.Goal, Location: g.Location, period: cs.period}
		taps[i] = tap
	}

	cs.monitors = append(cs.monitors, ms...)
	cs.taps = append(cs.taps, taps...)
	cs.suite.Add(NewHierarchy(ms[0], tolerance, ms[1:]...))
	return nil
}

// MustAddHierarchy is like AddHierarchy but panics on error; for statically
// known monitoring plans.
func (cs *CompiledSuite) MustAddHierarchy(parent GoalAt, tolerance int, children ...GoalAt) {
	if err := cs.AddHierarchy(parent, tolerance, children...); err != nil {
		panic(err)
	}
}

// Observe evaluates the shared program once against the state and feeds each
// monitor its formula's verdict.
func (cs *CompiledSuite) Observe(st temporal.State) {
	cs.program.Step(st)
	for i, m := range cs.monitors {
		m.recordVerdict(cs.program.Output(cs.taps[i]))
	}
}

// Finish closes any open violation interval on every monitor.
func (cs *CompiledSuite) Finish() { cs.suite.Finish() }

// Reset clears the program's temporal operator state and every monitor's
// recorded intervals, making the suite ready to observe a new run.  Atoms
// re-resolve their register slots against the next run's schema on the first
// observation, so one compiled suite serves many scenario variants.
func (cs *CompiledSuite) Reset() {
	cs.program.Reset()
	for _, m := range cs.monitors {
		m.Reset()
	}
}

// Classify classifies every hierarchy and returns the detections keyed by
// parent goal name.
func (cs *CompiledSuite) Classify() map[string][]Detection { return cs.suite.Classify() }

// ClassifyAll classifies every hierarchy exactly once and returns the
// detections keyed by parent goal name together with the aggregate summary.
func (cs *CompiledSuite) ClassifyAll() (map[string][]Detection, Summary) {
	return cs.suite.ClassifyAll()
}

// Summary aggregates the classification of all hierarchies.
func (cs *CompiledSuite) Summary() Summary { return cs.suite.Summary() }

// FastSummary computes the classification summary without materializing
// detections; see Suite.FastSummary.
func (cs *CompiledSuite) FastSummary() Summary { return cs.suite.FastSummary() }

// FastSummaryAt computes the classification summary with the hit-matching
// tolerance overridden per call; see Suite.FastSummaryAt.  The recorded
// violation intervals are read, never modified, so one observed run can be
// classified at any number of tolerances in sequence.
func (cs *CompiledSuite) FastSummaryAt(tolerance int) Summary {
	return cs.suite.FastSummaryAt(tolerance)
}

// Report collects the violation-report rows of every monitor that recorded a
// violation, sorted by goal name then location.
func (cs *CompiledSuite) Report() []ViolationReport { return cs.suite.Report() }

// Monitors returns every monitor in the suite (parents then children, per
// hierarchy).
func (cs *CompiledSuite) Monitors() []*Monitor { return cs.suite.Monitors() }

// Suite returns the underlying hierarchy suite, for consumers of the
// classification and reporting API (tables, figures, summaries).  Its
// monitors are program-fed: calling Observe on them (or on the returned
// suite) panics, because their verdicts come from the shared program.
func (cs *CompiledSuite) Suite() *Suite { return cs.suite }

// Program returns the shared evaluation program, exposing its sharing
// statistics.
func (cs *CompiledSuite) Program() *temporal.Program { return cs.program }
