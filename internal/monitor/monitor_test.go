package monitor

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/goals"
	"repro/internal/temporal"
)

func accelGoal() goals.Goal {
	return goals.MustParse("Achieve[AutoAccelBelowThreshold]",
		"Vehicle acceleration caused by autonomous vehicle control shall not exceed 2 m/s2.",
		"autoSource => accel <= 2")
}

func state(auto bool, accel float64) temporal.State {
	return temporal.NewState().SetBool("autoSource", auto).SetNumber("accel", accel)
}

func TestNewMonitorErrors(t *testing.T) {
	if _, err := New(goals.Goal{Name: "empty"}, "Vehicle", time.Millisecond); err == nil {
		t.Error("goal without formal definition should be rejected")
	}
	future := goals.New("Achieve[X]", "", temporal.Implies(temporal.Var("A"), temporal.Eventually(temporal.Var("B"))))
	if _, err := New(future, "Vehicle", time.Millisecond); err == nil {
		t.Error("future-time goal should be rejected")
	}
	if _, err := New(accelGoal(), "Vehicle", 0); err != nil {
		t.Errorf("zero period should default, got error %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on an invalid goal")
		}
	}()
	MustNew(goals.Goal{Name: "bad"}, "Vehicle", time.Millisecond)
}

func TestMonitorViolationIntervals(t *testing.T) {
	m := MustNew(accelGoal(), "Vehicle", time.Millisecond)

	inputs := []struct {
		auto  bool
		accel float64
	}{
		{false, 5.0}, // driver accelerating hard: no violation
		{true, 1.0},
		{true, 2.5}, // violation starts (index 2)
		{true, 3.0},
		{true, 1.0}, // violation ends (index 4)
		{true, 2.2}, // second violation (index 5)
	}
	for _, in := range inputs {
		m.Observe(state(in.auto, in.accel))
	}
	m.Finish()

	want := []Interval{{Start: 2, End: 4}, {Start: 5, End: 6}}
	if got := m.Violations(); !reflect.DeepEqual(got, want) {
		t.Errorf("Violations() = %v, want %v", got, want)
	}
	if !m.Violated() {
		t.Error("Violated() should be true")
	}
	if got := m.ViolationCount(); got != 2 {
		t.Errorf("ViolationCount() = %d", got)
	}
	if got := m.TotalViolationSteps(); got != 3 {
		t.Errorf("TotalViolationSteps() = %d, want 3", got)
	}
	if m.Steps() != len(inputs) {
		t.Errorf("Steps() = %d", m.Steps())
	}
	if !strings.Contains(m.String(), "2 violation(s)") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestMonitorFinishIdempotentAndReset(t *testing.T) {
	m := MustNew(accelGoal(), "Vehicle", time.Millisecond)
	m.Observe(state(true, 3)) // open violation
	if m.TotalViolationSteps() != 1 {
		t.Errorf("open violation should count in TotalViolationSteps, got %d", m.TotalViolationSteps())
	}
	m.Finish()
	m.Finish()
	if m.ViolationCount() != 1 {
		t.Errorf("ViolationCount() = %d, want 1", m.ViolationCount())
	}
	m.Reset()
	if m.ViolationCount() != 0 || m.Steps() != 0 || m.Violated() {
		t.Error("Reset should clear all state")
	}
}

func TestMonitorRunTrace(t *testing.T) {
	m := MustNew(accelGoal(), "Vehicle", time.Millisecond)
	tr := temporal.NewTrace(time.Millisecond)
	tr.Append(state(true, 1))
	tr.Append(state(true, 3))
	tr.Append(state(true, 1))
	got := m.RunTrace(tr)
	want := []Interval{{Start: 1, End: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RunTrace() = %v, want %v", got, want)
	}
	// RunTrace resets, so a second call yields the same result.
	if got2 := m.RunTrace(tr); !reflect.DeepEqual(got2, want) {
		t.Errorf("second RunTrace() = %v", got2)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Start: 10, End: 14}
	if iv.Steps() != 4 {
		t.Errorf("Steps() = %d", iv.Steps())
	}
	if iv.Duration(time.Millisecond) != 4*time.Millisecond {
		t.Errorf("Duration() = %v", iv.Duration(time.Millisecond))
	}
	if iv.StartTime(time.Millisecond) != 10*time.Millisecond {
		t.Errorf("StartTime() = %v", iv.StartTime(time.Millisecond))
	}
	if iv.String() != "[10,14)" {
		t.Errorf("String() = %q", iv.String())
	}

	tests := []struct {
		a, b      Interval
		tolerance int
		want      bool
	}{
		{Interval{0, 5}, Interval{3, 8}, 0, true},
		{Interval{0, 5}, Interval{5, 8}, 0, false},
		{Interval{0, 5}, Interval{6, 8}, 2, true},
		{Interval{0, 5}, Interval{20, 25}, 2, false},
		{Interval{10, 12}, Interval{0, 5}, 0, false},
		{Interval{10, 12}, Interval{0, 10}, 1, true},
	}
	for _, tt := range tests {
		if got := tt.a.Overlaps(tt.b, tt.tolerance); got != tt.want {
			t.Errorf("%v.Overlaps(%v, %d) = %v, want %v", tt.a, tt.b, tt.tolerance, got, tt.want)
		}
		if got := tt.b.Overlaps(tt.a, tt.tolerance); got != tt.want {
			t.Errorf("overlap should be symmetric for %v and %v", tt.a, tt.b)
		}
	}
}

func TestPropOverlapSymmetric(t *testing.T) {
	f := func(a, b, c, d uint8, tol uint8) bool {
		i1 := Interval{Start: int(a), End: int(a) + int(b)%50 + 1}
		i2 := Interval{Start: int(c), End: int(c) + int(d)%50 + 1}
		to := int(tol % 10)
		return i1.Overlaps(i2, to) == i2.Overlaps(i1, to)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDetectionKindString(t *testing.T) {
	for k, want := range map[DetectionKind]string{
		Hit: "hit", FalseNegative: "false negative", FalsePositive: "false positive",
		DetectionKind(0): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("DetectionKind.String() = %q, want %q", got, want)
		}
	}
}

// buildHierarchy creates a parent goal monitored at the vehicle level and a
// subgoal monitored at the Arbiter level, mirroring goal 1 of the thesis.
func buildHierarchy(tolerance int) (*Hierarchy, *Monitor, *Monitor) {
	parent := MustNew(accelGoal(), "Vehicle", time.Millisecond)
	sub := MustNew(goals.MustParse("Achieve[AutoAccelCommandBelowThreshold]",
		"The arbiter's acceleration command shall not exceed the threshold.",
		"cmdFromSubsystem => accelCmd <= 2"), "Arbiter", time.Millisecond)
	return NewHierarchy(parent, tolerance, sub), parent, sub
}

func hierState(auto bool, accel float64, cmdSub bool, cmd float64) temporal.State {
	return temporal.NewState().
		SetBool("autoSource", auto).SetNumber("accel", accel).
		SetBool("cmdFromSubsystem", cmdSub).SetNumber("accelCmd", cmd)
}

func TestHierarchyHit(t *testing.T) {
	h, _, _ := buildHierarchy(5)
	// The arbiter command exceeds the limit, and shortly afterwards the
	// vehicle acceleration does too: a hit.
	for i := 0; i < 20; i++ {
		cmd, accel := 1.0, 1.0
		if i >= 5 && i < 10 {
			cmd = 3.0
		}
		if i >= 7 && i < 12 {
			accel = 2.6
		}
		h.Observe(hierState(true, accel, true, cmd))
	}
	h.Finish()
	ds := h.Classify()
	sum := Summarize(ds)
	if sum.Hits != 1 || sum.FalseNegatives != 0 || sum.FalsePositives != 0 {
		t.Fatalf("expected a single hit, got %s (%v)", sum, ds)
	}
	if len(ds[0].MatchedSubgoals) != 1 || ds[0].MatchedSubgoals[0] != "Achieve[AutoAccelCommandBelowThreshold]" {
		t.Errorf("MatchedSubgoals = %v", ds[0].MatchedSubgoals)
	}
}

func TestHierarchyFalseNegative(t *testing.T) {
	h, _, _ := buildHierarchy(5)
	// Vehicle acceleration violates the goal but the arbiter command never
	// does: the subgoals did not compose the goal (hidden X).
	for i := 0; i < 20; i++ {
		accel := 1.0
		if i >= 5 && i < 9 {
			accel = 2.7
		}
		h.Observe(hierState(true, accel, true, 1.0))
	}
	h.Finish()
	sum := Summarize(h.Classify())
	if sum.FalseNegatives != 1 || sum.Hits != 0 || sum.FalsePositives != 0 {
		t.Fatalf("expected a single false negative, got %s", sum)
	}
	if !strings.Contains(sum.CompositionEvidence(), "partially compose") {
		t.Errorf("CompositionEvidence() = %q", sum.CompositionEvidence())
	}
}

func TestHierarchyFalsePositive(t *testing.T) {
	h, _, _ := buildHierarchy(5)
	// The arbiter command violates its subgoal but the vehicle-level goal is
	// never violated (e.g. redundant coverage downstream filtered it).
	for i := 0; i < 30; i++ {
		cmd := 1.0
		if i >= 5 && i < 8 {
			cmd = 3.5
		}
		h.Observe(hierState(true, 1.0, true, cmd))
	}
	h.Finish()
	sum := Summarize(h.Classify())
	if sum.FalsePositives != 1 || sum.Hits != 0 || sum.FalseNegatives != 0 {
		t.Fatalf("expected a single false positive, got %s", sum)
	}
	if !strings.Contains(sum.CompositionEvidence(), "restrictive") {
		t.Errorf("CompositionEvidence() = %q", sum.CompositionEvidence())
	}
}

func TestHierarchyToleranceMatching(t *testing.T) {
	// Parent and child violations separated by 10 steps: matched only when
	// the tolerance is large enough.
	build := func(tolerance int) Summary {
		h, _, _ := buildHierarchy(tolerance)
		for i := 0; i < 40; i++ {
			cmd, accel := 1.0, 1.0
			if i >= 5 && i < 7 {
				cmd = 3.0
			}
			if i >= 17 && i < 19 {
				accel = 3.0
			}
			h.Observe(hierState(true, accel, true, cmd))
		}
		h.Finish()
		return Summarize(h.Classify())
	}
	loose := build(15)
	if loose.Hits != 1 {
		t.Errorf("with tolerance 15 expected a hit, got %s", loose)
	}
	strict := build(2)
	if strict.Hits != 0 || strict.FalseNegatives != 1 || strict.FalsePositives != 1 {
		t.Errorf("with tolerance 2 expected FN+FP, got %s", strict)
	}
}

func TestSummaryAddAndEvidence(t *testing.T) {
	s := Summary{Hits: 1}.Add(Summary{FalseNegatives: 2, FalsePositives: 3})
	if s.Hits != 1 || s.FalseNegatives != 2 || s.FalsePositives != 3 {
		t.Errorf("Add() = %+v", s)
	}
	if !strings.Contains(s.String(), "hits=1") {
		t.Errorf("String() = %q", s.String())
	}
	if got := (Summary{}).CompositionEvidence(); !strings.Contains(got, "no violations") {
		t.Errorf("empty evidence = %q", got)
	}
	if got := (Summary{Hits: 2}).CompositionEvidence(); !strings.Contains(got, "consistent with full composability") {
		t.Errorf("hit-only evidence = %q", got)
	}
	both := Summary{FalseNegatives: 1, FalsePositives: 1}
	if !strings.Contains(both.CompositionEvidence(), "hidden X") {
		t.Errorf("both evidence = %q", both.CompositionEvidence())
	}
}

func TestSuite(t *testing.T) {
	s := NewSuite()
	h, parent, sub := buildHierarchy(5)
	s.Add(h)

	for i := 0; i < 10; i++ {
		accel, cmd := 1.0, 1.0
		if i >= 3 && i < 6 {
			accel, cmd = 3.0, 3.0
		}
		s.Observe(hierState(true, accel, true, cmd))
	}
	s.Finish()

	if len(s.Hierarchies()) != 1 {
		t.Fatalf("Hierarchies() = %d", len(s.Hierarchies()))
	}
	if got := len(s.Monitors()); got != 2 {
		t.Fatalf("Monitors() = %d", got)
	}
	if parent.ViolationCount() != 1 || sub.ViolationCount() != 1 {
		t.Fatalf("expected one violation each, got %d / %d", parent.ViolationCount(), sub.ViolationCount())
	}
	byGoal := s.Classify()
	if len(byGoal[parent.Goal.Name]) == 0 {
		t.Error("Classify() should include the parent goal")
	}
	if sum := s.Summary(); sum.Hits != 1 {
		t.Errorf("Summary() = %s", sum)
	}
	report := s.Report()
	if len(report) != 2 {
		t.Fatalf("Report() rows = %d, want 2", len(report))
	}
	if !strings.Contains(report[0].String(), "t=") {
		t.Errorf("report row = %q", report[0].String())
	}
	// Rows are sorted by goal name.
	if report[0].GoalName > report[1].GoalName {
		t.Error("report rows should be sorted by goal name")
	}
}

func TestHitFalsePositiveNegativeClassification(t *testing.T) {
	// Mixed scenario: one hit, one false negative and one false positive in
	// the same run.
	h, _, _ := buildHierarchy(3)
	for i := 0; i < 80; i++ {
		cmd, accel := 1.0, 1.0
		switch {
		case i >= 5 && i < 8:
			cmd, accel = 3.0, 3.0 // hit
		case i >= 30 && i < 33:
			accel = 3.0 // false negative (goal violated, subgoal fine)
		case i >= 60 && i < 63:
			cmd = 3.0 // false positive (subgoal violated, goal fine)
		}
		h.Observe(hierState(true, accel, true, cmd))
	}
	h.Finish()
	sum := Summarize(h.Classify())
	if sum.Hits != 1 || sum.FalseNegatives != 1 || sum.FalsePositives != 1 {
		t.Fatalf("classification = %s, want 1/1/1", sum)
	}
}

func TestPropMonitorMatchesBatchViolations(t *testing.T) {
	// The monitor's violation intervals cover exactly the indices at which
	// the goal formula is false, for random traces.
	g := accelGoal()
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		length := int(n%60) + 1
		tr := temporal.NewTrace(time.Millisecond)
		for i := 0; i < length; i++ {
			tr.Append(state(r.Intn(2) == 0, r.Float64()*4))
		}
		m := MustNew(g, "Vehicle", time.Millisecond)
		ivs := m.RunTrace(tr)
		violating := make(map[int]bool)
		for _, iv := range ivs {
			for i := iv.Start; i < iv.End; i++ {
				violating[i] = true
			}
		}
		for i := 0; i < tr.Len(); i++ {
			if g.Formal.Eval(tr, i) == violating[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSumAndRates(t *testing.T) {
	a := Summary{Hits: 2, FalseNegatives: 1}
	b := Summary{Hits: 1, FalsePositives: 3}
	total := Sum(a, b)
	if total != (Summary{Hits: 3, FalseNegatives: 1, FalsePositives: 3}) {
		t.Errorf("Sum = %+v", total)
	}
	if total.Total() != 7 {
		t.Errorf("Total = %d, want 7", total.Total())
	}
	if got := total.FalseNegativeRate(); got != 0.25 {
		t.Errorf("FalseNegativeRate = %g, want 0.25 (1 of 4 goal violations)", got)
	}
	if got := total.FalsePositiveRate(); got != 3.0/7.0 {
		t.Errorf("FalsePositiveRate = %g, want 3/7", got)
	}
	var empty Summary
	if Sum() != empty || empty.FalseNegativeRate() != 0 || empty.FalsePositiveRate() != 0 {
		t.Error("empty summaries must aggregate to zero without dividing by zero")
	}
}

// TestClassifyAllSharedGoalName checks that a suite with two hierarchies
// monitoring the same parent goal (at different locations) counts both in
// the aggregate summary, even though the classification map — keyed by goal
// name — retains only one detection list per name.
func TestClassifyAllSharedGoalName(t *testing.T) {
	mk := func(location string) *Hierarchy {
		parent := MustNew(accelGoal(), location, time.Millisecond)
		return NewHierarchy(parent, 0)
	}
	suite := NewSuite()
	suite.Add(mk("Vehicle"))
	suite.Add(mk("Arbiter"))
	// One violating state: both hierarchies record a parent violation with
	// no children, i.e. one false negative each.
	suite.Observe(state(true, 5.0))
	suite.Finish()

	m, sum := suite.ClassifyAll()
	if len(m) != 1 {
		t.Fatalf("classification map has %d entries, want 1 (shared goal name)", len(m))
	}
	if sum.FalseNegatives != 2 {
		t.Errorf("aggregate counted %d false negatives, want 2 (one per hierarchy)", sum.FalseNegatives)
	}
	if got := suite.Summary(); got != sum {
		t.Errorf("Summary() = %v, ClassifyAll sum = %v", got, sum)
	}
	// SummarizeMap over the name-keyed map necessarily sees only one
	// hierarchy — the documented caveat this test pins down.
	if got := SummarizeMap(m); got.FalseNegatives != 1 {
		t.Errorf("SummarizeMap = %v, want the single retained entry", got)
	}
}
