package monitor

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/goals"
	"repro/internal/temporal"
)

// compiledPlan is a small monitoring plan with heavy atom overlap across
// hierarchies, mirroring the structure of the vehicle plan.
func compiledPlan() []struct {
	parent   GoalAt
	children []GoalAt
} {
	g := func(name, formal string) goals.Goal { return goals.MustParse(name, "", formal) }
	return []struct {
		parent   GoalAt
		children []GoalAt
	}{
		{
			parent: GoalAt{Goal: g("G1", "auto => accel <= 2"), Location: "Vehicle"},
			children: []GoalAt{
				{Goal: g("G1a", "auto => cmd <= 2"), Location: "Arbiter"},
				{Goal: g("G1b", "req <= 2"), Location: "CA"},
			},
		},
		{
			parent: GoalAt{Goal: g("G2", "(prevfor[3ms](stopped) & auto) => accel <= 0.05"), Location: "Vehicle"},
			children: []GoalAt{
				{Goal: g("G2a", "(prevfor[3ms](stopped) & auto) => cmd <= 0.05"), Location: "Arbiter"},
				{Goal: g("G2b", "prev(stopped) => req <= 0.05"), Location: "CA"},
			},
		},
	}
}

func compiledRandState(r *rand.Rand) temporal.State {
	return temporal.NewState().
		SetBool("auto", r.Intn(4) > 0).
		SetBool("stopped", r.Intn(2) == 0).
		SetNumber("accel", r.Float64()*4).
		SetNumber("cmd", r.Float64()*4).
		SetNumber("req", r.Float64()*4)
}

// TestCompiledSuiteMatchesSuite drives a per-monitor Suite and a
// CompiledSuite over identical random observations and requires identical
// detections, summaries and reports — the package-level form of the scenario
// differential tests.
func TestCompiledSuiteMatchesSuite(t *testing.T) {
	const tolerance = 4
	for seed := int64(0); seed < 10; seed++ {
		plain := NewSuite()
		compiled := NewCompiledSuite(time.Millisecond, nil)
		for _, h := range compiledPlan() {
			parent := MustNew(h.parent.Goal, h.parent.Location, time.Millisecond)
			children := make([]*Monitor, len(h.children))
			for i, c := range h.children {
				children[i] = MustNew(c.Goal, c.Location, time.Millisecond)
			}
			plain.Add(NewHierarchy(parent, tolerance, children...))
			if err := compiled.AddHierarchy(h.parent, tolerance, h.children...); err != nil {
				t.Fatalf("AddHierarchy(%s): %v", h.parent.Goal.Name, err)
			}
		}

		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 400; i++ {
			st := compiledRandState(r)
			plain.Observe(st)
			compiled.Observe(st)
		}
		plain.Finish()
		compiled.Finish()

		wantD, wantS := plain.ClassifyAll()
		gotD, gotS := compiled.ClassifyAll()
		if gotS != wantS {
			t.Fatalf("seed %d: compiled summary %v != per-monitor %v", seed, gotS, wantS)
		}
		if !reflect.DeepEqual(gotD, wantD) {
			t.Fatalf("seed %d: compiled detections diverge\ncompiled: %#v\nplain:    %#v", seed, gotD, wantD)
		}
		if got, want := compiled.Report(), plain.Report(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: compiled report diverges\ncompiled: %#v\nplain:    %#v", seed, got, want)
		}
	}
}

// TestCompiledSuiteSharesAtoms pins the point of the shared program: the
// plan's overlapping atoms evaluate once, so the program holds strictly fewer
// atom nodes than the formulas reference.
func TestCompiledSuiteSharesAtoms(t *testing.T) {
	cs := NewCompiledSuite(time.Millisecond, nil)
	for _, h := range compiledPlan() {
		if err := cs.AddHierarchy(h.parent, 4, h.children...); err != nil {
			t.Fatal(err)
		}
	}
	s := cs.Program().Stats()
	if s.Formulas != 6 {
		t.Fatalf("Formulas = %d, want 6", s.Formulas)
	}
	if s.Atoms >= s.AtomRefs {
		t.Errorf("no atom sharing across the plan: %d unique atoms for %d references", s.Atoms, s.AtomRefs)
	}
	if s.Nodes >= s.NodeRefs {
		t.Errorf("no node sharing across the plan: %d unique nodes for %d references", s.Nodes, s.NodeRefs)
	}
}

// TestCompiledSuiteReset reuses one compiled suite for two identical runs and
// requires identical classifications — the per-worker reuse contract.
func TestCompiledSuiteReset(t *testing.T) {
	cs := NewCompiledSuite(time.Millisecond, nil)
	for _, h := range compiledPlan() {
		if err := cs.AddHierarchy(h.parent, 4, h.children...); err != nil {
			t.Fatal(err)
		}
	}
	run := func() (map[string][]Detection, Summary) {
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 300; i++ {
			cs.Observe(compiledRandState(r))
		}
		cs.Finish()
		return cs.ClassifyAll()
	}
	d1, s1 := run()
	cs.Reset()
	d2, s2 := run()
	if s1 != s2 {
		t.Fatalf("summary after Reset %v != first run %v", s2, s1)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("detections after Reset diverge\nfirst:  %#v\nsecond: %#v", d1, d2)
	}
	if s1.Total() == 0 {
		t.Fatal("test run produced no detections; the reuse check is vacuous")
	}
}

// TestCompiledSuiteSharedParentGoalName extends the ClassifyAll coverage to
// the compiled path: two hierarchies monitoring the same parent goal at
// different locations, each with a child, are both counted in the aggregate.
func TestCompiledSuiteSharedParentGoalName(t *testing.T) {
	parent := goals.MustParse("G", "", "auto => accel <= 2")
	child := goals.MustParse("Gsub", "", "auto => cmd <= 2")
	cs := NewCompiledSuite(time.Millisecond, nil)
	for _, loc := range []string{"Vehicle", "Arbiter"} {
		if err := cs.AddHierarchy(GoalAt{Goal: parent, Location: loc}, 2,
			GoalAt{Goal: child, Location: "CA"}); err != nil {
			t.Fatal(err)
		}
	}
	// One violating state for parent and child: each hierarchy records a hit.
	cs.Observe(temporal.NewState().SetBool("auto", true).SetNumber("accel", 3).SetNumber("cmd", 3))
	cs.Finish()

	m, sum := cs.ClassifyAll()
	if len(m) != 1 {
		t.Fatalf("classification map has %d entries, want 1 (shared goal name)", len(m))
	}
	if sum.Hits != 2 {
		t.Errorf("aggregate counted %d hits, want 2 (one per hierarchy)", sum.Hits)
	}
}

// TestCompiledSuiteErrors covers goal and formula rejection.
func TestCompiledSuiteErrors(t *testing.T) {
	cs := NewCompiledSuite(0, nil)
	ok := GoalAt{Goal: goals.MustParse("G", "", "A"), Location: "Vehicle"}
	if err := cs.AddHierarchy(GoalAt{Goal: goals.Goal{Name: "empty"}, Location: "Vehicle"}, 1); err == nil {
		t.Error("goal without formal definition should be rejected")
	}
	future := goals.New("Achieve[X]", "", temporal.Eventually(temporal.Var("B")))
	if err := cs.AddHierarchy(ok, 1, GoalAt{Goal: future, Location: "CA"}); err == nil {
		t.Error("future-time child goal should be rejected")
	}
	if len(cs.Monitors()) != 0 {
		t.Errorf("failed AddHierarchy registered %d monitors, want 0", len(cs.Monitors()))
	}

	defer func() {
		if recover() == nil {
			t.Fatal("MustAddHierarchy should panic on an invalid goal")
		}
	}()
	cs.MustAddHierarchy(GoalAt{Goal: goals.Goal{Name: "bad"}, Location: "Vehicle"}, 1)
}

// TestProgramFedMonitorObservePanics pins the guard: the monitors inside a
// compiled suite receive verdicts from the program, not from their own
// steppers, and say so when misused.
func TestProgramFedMonitorObservePanics(t *testing.T) {
	cs := NewCompiledSuite(time.Millisecond, nil)
	cs.MustAddHierarchy(GoalAt{Goal: goals.MustParse("G", "", "A"), Location: "Vehicle"}, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Observe on a program-fed monitor should panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "program-fed") {
			t.Fatalf("panic = %v, want the program-fed explanation", r)
		}
	}()
	cs.Monitors()[0].Observe(temporal.NewState())
}
