// Package monitor implements the run-time safety-goal monitoring of thesis
// Chapter 5: goals and ICPA-derived subgoals are evaluated on every
// simulation state, violations are recorded as intervals, and violations at
// the system level are matched against violations at the subsystem level to
// classify detections as hits, false positives and false negatives
// (thesis §5.1.2).  The ratio of false positives and false negatives is the
// empirical estimate of the residual emergence X and Y of §3.4.
//
// Monitors are passive: they observe state snapshots and never influence the
// monitored system, matching the thesis' separation of monitoring from the
// subsystems being monitored (§2.5.1).
package monitor

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/goals"
	"repro/internal/temporal"
)

// Interval is a half-open range of state indices [Start, End) during which a
// goal was continuously violated.
type Interval struct {
	// Start is the first violating state index.
	Start int
	// End is the first non-violating state index after the violation (or
	// the trace length if the violation persisted to the end).
	End int
}

// Steps returns the violation length in states.
func (iv Interval) Steps() int { return iv.End - iv.Start }

// Duration converts the violation length to wall-clock time for the given
// state period.
func (iv Interval) Duration(period time.Duration) time.Duration {
	return time.Duration(iv.Steps()) * period
}

// StartTime returns the simulation time of the first violating state.
func (iv Interval) StartTime(period time.Duration) time.Duration {
	return time.Duration(iv.Start) * period
}

// Overlaps reports whether two intervals overlap when each is widened by
// tolerance steps on both sides.  The tolerance accounts for observation and
// actuation delays between hierarchy levels (thesis §2.5, Peters & Parnas).
func (iv Interval) Overlaps(other Interval, tolerance int) bool {
	aStart, aEnd := iv.Start-tolerance, iv.End+tolerance
	bStart, bEnd := other.Start-tolerance, other.End+tolerance
	return aStart < bEnd && bStart < aEnd
}

// String renders the interval.
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Start, iv.End) }

// Monitor evaluates one safety goal at one monitoring location on every
// observed state and records the violation intervals.
type Monitor struct {
	// Goal is the monitored goal.
	Goal goals.Goal
	// Location is the hierarchy level the monitor is attached to
	// (e.g. "Vehicle", "Arbiter", "CA"); see thesis Table 5.3.
	Location string

	stepper     *temporal.Stepper
	period      time.Duration
	step        int
	inViolation bool
	current     Interval
	violations  []Interval
}

// New creates a monitor for the goal at the given location.  The period is
// the simulation state period used to convert bounded-past operators; it
// returns an error when the goal's formal definition cannot be monitored at
// run time (contains future-time operators).  The goal's atoms resolve their
// state-variable slots on the first observed state; monitors deployed
// against a known scenario should use NewWithSchema so the resolution
// happens at compile time.
func New(g goals.Goal, location string, period time.Duration) (*Monitor, error) {
	return NewWithSchema(g, location, period, nil)
}

// NewWithSchema is New with the scenario's symbol table: every atom of the
// goal formula is resolved to its register slot when the monitor is built,
// so monitoring cost is a constant number of array loads per state from the
// very first observation.
func NewWithSchema(g goals.Goal, location string, period time.Duration, schema *temporal.Schema) (*Monitor, error) {
	return build(g, location, period, func(f temporal.Formula) (*temporal.Stepper, error) {
		return temporal.CompileWithSchema(f, period, schema)
	})
}

// NewReference creates a monitor whose goal stepper evaluates atoms through
// the string-keyed State API on every observation — the behaviour of the
// map-backed state representation.  It exists for differential tests that
// prove the slot-indexed monitors detect exactly the same violations.
func NewReference(g goals.Goal, location string, period time.Duration) (*Monitor, error) {
	return build(g, location, period, func(f temporal.Formula) (*temporal.Stepper, error) {
		return temporal.CompileReference(f, period)
	})
}

func build(g goals.Goal, location string, period time.Duration,
	compile func(temporal.Formula) (*temporal.Stepper, error)) (*Monitor, error) {

	if g.Formal == nil {
		return nil, fmt.Errorf("monitor: goal %q has no formal definition", g.Name)
	}
	st, err := compile(g.Formal)
	if err != nil {
		return nil, fmt.Errorf("monitor: goal %q: %w", g.Name, err)
	}
	if period <= 0 {
		period = time.Millisecond
	}
	return &Monitor{Goal: g, Location: location, stepper: st, period: period}, nil
}

// MustNew is like New but panics on error; for statically known goals.
func MustNew(g goals.Goal, location string, period time.Duration) *Monitor {
	m, err := New(g, location, period)
	if err != nil {
		panic(err)
	}
	return m
}

// MustNewWithSchema is like NewWithSchema but panics on error; for
// statically known goals compiled against a run's schema.
func MustNewWithSchema(g goals.Goal, location string, period time.Duration, schema *temporal.Schema) *Monitor {
	m, err := NewWithSchema(g, location, period, schema)
	if err != nil {
		panic(err)
	}
	return m
}

// Observe evaluates the goal on the next state and returns true when the
// goal holds at that state.  It panics on a program-fed monitor (one built by
// a CompiledSuite): those monitors have no stepper of their own and receive
// their verdicts from the shared evaluation program instead.
func (m *Monitor) Observe(s temporal.State) bool {
	if m.stepper == nil {
		panic("monitor: Observe on a program-fed monitor; verdicts come from its CompiledSuite")
	}
	return m.recordVerdict(m.stepper.Step(s))
}

// recordVerdict folds one per-state verdict into the violation intervals.  It
// is the recording half of Observe, decoupled from formula evaluation so a
// suite-level program can drive many monitors from one shared pass.
func (m *Monitor) recordVerdict(ok bool) bool {
	if !ok && !m.inViolation {
		m.inViolation = true
		m.current = Interval{Start: m.step}
	}
	if ok && m.inViolation {
		m.current.End = m.step
		m.violations = append(m.violations, m.current)
		m.inViolation = false
	}
	m.step++
	return ok
}

// Finish closes any open violation interval at the end of a run.  It is safe
// to call multiple times.
func (m *Monitor) Finish() {
	if m.inViolation {
		m.current.End = m.step
		m.violations = append(m.violations, m.current)
		m.inViolation = false
	}
}

// Reset clears all recorded state so the monitor can observe a new run.  The
// violation-interval slice keeps its capacity, so a monitor reused across the
// runs of a sweep (e.g. inside an Engine worker's arena) records the next
// run's intervals without reallocating.
func (m *Monitor) Reset() {
	if m.stepper != nil {
		m.stepper.Reset()
	}
	m.step = 0
	m.inViolation = false
	m.current = Interval{}
	m.violations = m.violations[:0]
}

// Steps returns the number of states observed.
func (m *Monitor) Steps() int { return m.step }

// Period returns the state period the monitor was created with.
func (m *Monitor) Period() time.Duration { return m.period }

// Violations returns the recorded violation intervals (closed by Finish).
func (m *Monitor) Violations() []Interval {
	out := make([]Interval, len(m.violations))
	copy(out, m.violations)
	return out
}

// ViolationCount returns the number of distinct violation intervals.
func (m *Monitor) ViolationCount() int { return len(m.violations) }

// Violated reports whether the goal was violated at least once.
func (m *Monitor) Violated() bool { return len(m.violations) > 0 || m.inViolation }

// TotalViolationSteps returns the total number of violating states.
func (m *Monitor) TotalViolationSteps() int {
	total := 0
	for _, v := range m.violations {
		total += v.Steps()
	}
	if m.inViolation {
		total += m.step - m.current.Start
	}
	return total
}

// String summarises the monitor.
func (m *Monitor) String() string {
	return fmt.Sprintf("%s @ %s: %d violation(s)", m.Goal.Name, m.Location, m.ViolationCount())
}

// RunTrace replays a recorded trace through the monitor (resetting it first)
// and returns the violation intervals.  It is the batch counterpart of
// Observe for offline analysis of recorded scenarios.  Like Observe, it
// panics on a program-fed monitor (one retained from a CompiledSuite run):
// such monitors cannot re-evaluate their goal on their own.
func (m *Monitor) RunTrace(tr *temporal.Trace) []Interval {
	if m.stepper == nil {
		panic("monitor: RunTrace on a program-fed monitor; its goal is evaluated by its CompiledSuite")
	}
	m.Reset()
	for i := 0; i < tr.Len(); i++ {
		m.Observe(tr.At(i))
	}
	m.Finish()
	return m.Violations()
}

// ---------------------------------------------------------------------------
// Hierarchical monitoring and violation classification
// ---------------------------------------------------------------------------

// DetectionKind classifies a correspondence between system-level and
// subsystem-level violations (thesis §5.1.2).
type DetectionKind int

// Detection kinds.
const (
	// Hit: a goal violation with a corresponding subgoal violation.
	Hit DetectionKind = iota + 1
	// FalseNegative: a goal violation with no corresponding subgoal
	// violation — evidence of residual emergence X (hidden subgoals).
	FalseNegative
	// FalsePositive: a subgoal violation with no corresponding goal
	// violation — evidence of restrictive subgoals or redundant coverage
	// masking the problem (emergent behaviour Y).
	FalsePositive
)

// String names the detection kind.
func (k DetectionKind) String() string {
	switch k {
	case Hit:
		return "hit"
	case FalseNegative:
		return "false negative"
	case FalsePositive:
		return "false positive"
	default:
		return "unknown"
	}
}

// Detection is one classified correspondence.
type Detection struct {
	// Kind is the classification.
	Kind DetectionKind
	// GoalName is the parent goal (for hits and false negatives) or the
	// subgoal (for false positives).
	GoalName string
	// Location is the monitoring location of the violated goal.
	Location string
	// Interval is the violation interval being classified.
	Interval Interval
	// MatchedSubgoals lists subgoal names whose violations correspond to a
	// parent violation (hits only).
	MatchedSubgoals []string
}

// Hierarchy groups one parent (system-level) goal monitor with the monitors
// of its ICPA-derived subgoals at lower levels of the system hierarchy.
type Hierarchy struct {
	// Parent monitors the system-level goal.
	Parent *Monitor
	// Children monitor the subgoals.
	Children []*Monitor
	// Tolerance is the matching window, in states, used when deciding
	// whether a parent violation and a subgoal violation correspond.  It
	// absorbs the one-state observation delay and actuation delays between
	// hierarchy levels.
	Tolerance int
}

// NewHierarchy builds a hierarchy with the given matching tolerance.
func NewHierarchy(parent *Monitor, tolerance int, children ...*Monitor) *Hierarchy {
	return &Hierarchy{Parent: parent, Children: children, Tolerance: tolerance}
}

// Observe feeds the state to the parent and every child monitor.
func (h *Hierarchy) Observe(s temporal.State) {
	h.Parent.Observe(s)
	for _, c := range h.Children {
		c.Observe(s)
	}
}

// Finish closes open violation intervals on all monitors.
func (h *Hierarchy) Finish() {
	h.Parent.Finish()
	for _, c := range h.Children {
		c.Finish()
	}
}

// Classify matches parent violations against child violations and returns
// the hits, false negatives and false positives (thesis §5.1.2).
//
// Violation intervals are recorded in trace order, so each monitor's list is
// sorted by Start and End and pairwise disjoint.  Matching is therefore a
// sort-merge per child: for each parent violation the overlapping child
// violations form one contiguous range, and the range's lower bound only ever
// advances — O(parent + child + matches) instead of the all-pairs scan.
func (h *Hierarchy) Classify() []Detection {
	pvs := h.Parent.Violations()
	matched := make([][]string, len(pvs))
	var falsePositives []Detection

	for _, c := range h.Children {
		cvs := c.Violations()
		matchedChild := make([]bool, len(cvs))
		// lo is the first child interval not entirely before the current
		// parent interval.  Child ends are non-decreasing (disjoint, ordered
		// intervals) and parent starts are non-decreasing, so a child skipped
		// here can never overlap a later parent and lo advances monotonically.
		lo := 0
		for i, pv := range pvs {
			pStart, pEnd := pv.Start-h.Tolerance, pv.End+h.Tolerance
			for lo < len(cvs) && cvs[lo].End+h.Tolerance <= pStart {
				lo++
			}
			for j := lo; j < len(cvs) && cvs[j].Start-h.Tolerance < pEnd; j++ {
				matched[i] = append(matched[i], c.Goal.Name)
				matchedChild[j] = true
			}
		}
		for j, cv := range cvs {
			if !matchedChild[j] {
				falsePositives = append(falsePositives, Detection{
					Kind: FalsePositive, GoalName: c.Goal.Name, Location: c.Location, Interval: cv,
				})
			}
		}
	}

	var out []Detection
	for i, pv := range pvs {
		if names := matched[i]; len(names) > 0 {
			sort.Strings(names)
			out = append(out, Detection{
				Kind: Hit, GoalName: h.Parent.Goal.Name, Location: h.Parent.Location,
				Interval: pv, MatchedSubgoals: uniqueStrings(names),
			})
		} else {
			out = append(out, Detection{
				Kind: FalseNegative, GoalName: h.Parent.Goal.Name, Location: h.Parent.Location,
				Interval: pv,
			})
		}
	}
	return append(out, falsePositives...)
}

// Summary aggregates a classified detection list.
type Summary struct {
	// Hits, FalseNegatives and FalsePositives are the counts by kind.
	Hits           int `json:"hits"`
	FalseNegatives int `json:"false_negatives"`
	FalsePositives int `json:"false_positives"`
}

// Summarize counts detections by kind.
func Summarize(ds []Detection) Summary {
	var s Summary
	for _, d := range ds {
		switch d.Kind {
		case Hit:
			s.Hits++
		case FalseNegative:
			s.FalseNegatives++
		case FalsePositive:
			s.FalsePositives++
		}
	}
	return s
}

// SummarizeMap counts detections by kind across a whole classification map,
// as produced by Suite.Classify.  Note the map is keyed by parent goal name,
// so if two hierarchies monitor the same goal only the last one's detections
// are present.
//
// Deprecated: use Suite.ClassifyAll (or CompiledSuite.ClassifyAll), which
// sums over the hierarchies themselves and therefore counts every hierarchy
// even when several share a parent goal name, in one classification pass.
func SummarizeMap(m map[string][]Detection) Summary {
	var s Summary
	for _, ds := range m {
		s = s.Add(Summarize(ds))
	}
	return s
}

// Add accumulates another summary into this one and returns the result.
func (s Summary) Add(o Summary) Summary {
	s.Hits += o.Hits
	s.FalseNegatives += o.FalseNegatives
	s.FalsePositives += o.FalsePositives
	return s
}

// Sum aggregates summaries across runs, e.g. over every variant of a
// scenario sweep.
func Sum(summaries ...Summary) Summary {
	var total Summary
	for _, s := range summaries {
		total = total.Add(s)
	}
	return total
}

// Total returns the number of classified detections.
func (s Summary) Total() int { return s.Hits + s.FalseNegatives + s.FalsePositives }

// FalseNegativeRate returns the fraction of goal violations with no
// corresponding subgoal violation — the empirical estimate of hidden
// emergence X (thesis §3.4).  It is 0 when no goal violations occurred.
func (s Summary) FalseNegativeRate() float64 {
	goalViolations := s.Hits + s.FalseNegatives
	if goalViolations == 0 {
		return 0
	}
	return float64(s.FalseNegatives) / float64(goalViolations)
}

// FalsePositiveRate returns the fraction of classified detections that are
// unmatched subgoal violations — the empirical estimate of restrictive or
// redundantly covered subgoals Y (thesis §3.4).  It is 0 when there are no
// detections.
func (s Summary) FalsePositiveRate() float64 {
	if s.Total() == 0 {
		return 0
	}
	return float64(s.FalsePositives) / float64(s.Total())
}

// String renders the summary.
func (s Summary) String() string {
	return fmt.Sprintf("hits=%d false-negatives=%d false-positives=%d",
		s.Hits, s.FalseNegatives, s.FalsePositives)
}

// CompositionEvidence interprets a summary as empirical evidence about the
// composability of the monitored decomposition (thesis §3.4): false
// negatives witness hidden subgoals X (the decomposition is at best
// partially composable); false positives witness restriction or redundant
// coverage Y.
func (s Summary) CompositionEvidence() string {
	switch {
	case s.FalseNegatives == 0 && s.FalsePositives == 0 && s.Hits == 0:
		return "no violations observed; no evidence about composability"
	case s.FalseNegatives == 0 && s.FalsePositives == 0:
		return "all goal violations were detected by subgoals; consistent with full composability on this run"
	case s.FalseNegatives > 0 && s.FalsePositives > 0:
		return "subgoals only partially compose the goal (hidden X) and are restrictive or redundantly covered (Y)"
	case s.FalseNegatives > 0:
		return "subgoals only partially compose the goal: hidden dependencies X remain"
	default:
		return "subgoals are more restrictive than the goal or redundant coverage masked the fault (Y)"
	}
}

func uniqueStrings(in []string) []string {
	seen := make(map[string]struct{}, len(in))
	out := in[:0]
	for _, s := range in {
		if _, ok := seen[s]; ok {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	return out
}

// ---------------------------------------------------------------------------
// Monitor suites (Table 5.3 style goal x location matrices)
// ---------------------------------------------------------------------------

// Suite is a collection of hierarchies observed together, one per system
// safety goal, as deployed for the thesis' vehicle evaluation.
type Suite struct {
	hierarchies []*Hierarchy

	// pmScratch / cmScratch are the reusable parent- and child-matched flag
	// buffers of FastSummary, so a summary-only classification allocates
	// nothing at steady state.  A Suite is single-goroutine, like its
	// monitors.
	pmScratch, cmScratch []bool
}

// NewSuite creates an empty suite.
func NewSuite() *Suite { return &Suite{} }

// Add registers a hierarchy.
func (s *Suite) Add(h *Hierarchy) { s.hierarchies = append(s.hierarchies, h) }

// Hierarchies returns the registered hierarchies.
func (s *Suite) Hierarchies() []*Hierarchy { return s.hierarchies }

// Observe feeds the state to every hierarchy.
func (s *Suite) Observe(st temporal.State) {
	for _, h := range s.hierarchies {
		h.Observe(st)
	}
}

// Finish closes all monitors.
func (s *Suite) Finish() {
	for _, h := range s.hierarchies {
		h.Finish()
	}
}

// Monitors returns every monitor in the suite (parents then children, per
// hierarchy).
func (s *Suite) Monitors() []*Monitor {
	var out []*Monitor
	for _, h := range s.hierarchies {
		out = append(out, h.Parent)
		out = append(out, h.Children...)
	}
	return out
}

// Classify classifies every hierarchy and returns the detections keyed by
// parent goal name.
func (s *Suite) Classify() map[string][]Detection {
	m, _ := s.ClassifyAll()
	return m
}

// ClassifyAll classifies every hierarchy exactly once and returns both the
// detections keyed by parent goal name and the aggregate summary.  The
// summary is folded per hierarchy, not from the map, so hierarchies sharing
// a parent goal name (e.g. one goal monitored at several locations) are all
// counted even though the map retains only the last one per name.  It is the
// single-pass form of calling Classify and Summary separately, each of which
// reclassifies every hierarchy.
func (s *Suite) ClassifyAll() (map[string][]Detection, Summary) {
	out := make(map[string][]Detection, len(s.hierarchies))
	var sum Summary
	for _, h := range s.hierarchies {
		ds := h.Classify()
		out[h.Parent.Goal.Name] = ds
		sum = sum.Add(Summarize(ds))
	}
	return out, sum
}

// Summary aggregates the classification of all hierarchies.
func (s *Suite) Summary() Summary {
	_, sum := s.ClassifyAll()
	return sum
}

// FastSummary computes exactly the Summary ClassifyAll returns — the same
// sort-merge matching per hierarchy — without materializing any Detection,
// interval copy or per-goal map.  It is the classification path for
// summary-only sweeps, where only the hit / false-negative / false-positive
// counts survive the run: with the suite's reusable scratch buffers it
// allocates nothing at steady state.
func (s *Suite) FastSummary() Summary {
	var sum Summary
	for _, h := range s.hierarchies {
		sum = sum.Add(h.countSummaryAt(h.Tolerance, &s.pmScratch, &s.cmScratch))
	}
	return sum
}

// FastSummaryAt is FastSummary with the hit-matching tolerance overridden:
// every hierarchy is classified as if it had been built with the given
// window instead of its own.  The tolerance only parameterizes the
// final interval matching — it never influences which violations a run
// records — so one suite's recorded intervals can be classified at K
// different tolerances after a single observation pass, which is what turns
// a grouped K-tolerance sweep into one simulation instead of K.  Like
// FastSummary it reuses the suite's scratch buffers and allocates nothing
// at steady state.
func (s *Suite) FastSummaryAt(tolerance int) Summary {
	var sum Summary
	for _, h := range s.hierarchies {
		sum = sum.Add(h.countSummaryAt(tolerance, &s.pmScratch, &s.cmScratch))
	}
	return sum
}

// resizeCleared returns (*buf)[:n] with every flag false, growing the backing
// array only when n exceeds its capacity.
func resizeCleared(buf *[]bool, n int) []bool {
	b := *buf
	if cap(b) < n {
		b = make([]bool, n)
		*buf = b
	} else {
		b = b[:n]
		for i := range b {
			b[i] = false
		}
	}
	return b
}

// countSummaryAt is the counting form of Classify at an explicit matching
// tolerance: each parent violation is one hit (some child violation
// corresponds) or one false negative, and each unmatched child violation is
// one false positive.  The interval matching is the same monotone sort-merge
// per child; only the detections themselves are never built.  Classify reads
// h.Tolerance; callers wanting its behaviour pass it explicitly (FastSummary)
// or override it per call (FastSummaryAt).
func (h *Hierarchy) countSummaryAt(tolerance int, pmBuf, cmBuf *[]bool) Summary {
	pvs := h.Parent.violations
	pm := resizeCleared(pmBuf, len(pvs))
	var sum Summary
	for _, c := range h.Children {
		cvs := c.violations
		if len(cvs) == 0 {
			continue
		}
		cm := resizeCleared(cmBuf, len(cvs))
		lo := 0
		for i, pv := range pvs {
			pStart, pEnd := pv.Start-tolerance, pv.End+tolerance
			for lo < len(cvs) && cvs[lo].End+tolerance <= pStart {
				lo++
			}
			for j := lo; j < len(cvs) && cvs[j].Start-tolerance < pEnd; j++ {
				pm[i] = true
				cm[j] = true
			}
		}
		for _, matched := range cm {
			if !matched {
				sum.FalsePositives++
			}
		}
	}
	for _, matched := range pm {
		if matched {
			sum.Hits++
		} else {
			sum.FalseNegatives++
		}
	}
	return sum
}

// ViolationReport is one row of a scenario violation table (Appendix D):
// a goal, the location it was monitored at, and its violations.
type ViolationReport struct {
	// GoalName identifies the goal or subgoal.
	GoalName string
	// Location is the monitoring location.
	Location string
	// Violations are the recorded intervals.
	Violations []Interval
	// Period is the state period for time conversion.
	Period time.Duration
}

// Report collects a violation report row for every monitor in the suite that
// recorded at least one violation, sorted by goal name then location.
func (s *Suite) Report() []ViolationReport {
	var out []ViolationReport
	for _, m := range s.Monitors() {
		if m.ViolationCount() == 0 {
			continue
		}
		out = append(out, ViolationReport{
			GoalName:   m.Goal.Name,
			Location:   m.Location,
			Violations: m.Violations(),
			Period:     m.Period(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].GoalName != out[j].GoalName {
			return out[i].GoalName < out[j].GoalName
		}
		return out[i].Location < out[j].Location
	})
	return out
}

// String renders the report row.
func (r ViolationReport) String() string {
	parts := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		parts[i] = fmt.Sprintf("t=%.3fs for %s", v.StartTime(r.Period).Seconds(), v.Duration(r.Period))
	}
	return fmt.Sprintf("%-55s %-10s %s", r.GoalName, r.Location, strings.Join(parts, "; "))
}
