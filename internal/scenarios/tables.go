package scenarios

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/monitor"
)

// RenderViolationTable renders the Appendix D violation table for one
// scenario: every goal and subgoal that was violated, where it was
// monitored, and the start time and duration of each violation.
func RenderViolationTable(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario %d: %s\n", r.Scenario.Number, r.Scenario.Description)
	fmt.Fprintf(&b, "Simulated %.3f s of %.0f s", float64(r.Trace.Len())*Period.Seconds(), r.Scenario.Duration.Seconds())
	if r.Collision {
		fmt.Fprintf(&b, " (terminated early: collision)")
	}
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, strings.Repeat("-", 110))
	report := r.Suite.Report()
	if len(report) == 0 {
		fmt.Fprintln(&b, "(no goal or subgoal violations)")
		return b.String()
	}
	fmt.Fprintf(&b, "%-58s %-10s %-10s %s\n", "Goal/Subgoal", "Location", "Count", "Violations (start, duration)")
	for _, row := range report {
		var spans []string
		for i, iv := range row.Violations {
			if i >= 4 {
				spans = append(spans, fmt.Sprintf("(+%d more)", len(row.Violations)-i))
				break
			}
			spans = append(spans, fmt.Sprintf("%.3fs/%s", iv.StartTime(row.Period).Seconds(), iv.Duration(row.Period)))
		}
		fmt.Fprintf(&b, "%-58s %-10s %-10d %s\n", row.GoalName, row.Location, len(row.Violations), strings.Join(spans, "  "))
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "Classification: %s\n", r.Summary)
	return b.String()
}

// RenderClassificationDetail lists every hit, false negative and false
// positive of a scenario, grouped by system goal.
func RenderClassificationDetail(r Result) string {
	var b strings.Builder
	names := make([]string, 0, len(r.Detections))
	for name := range r.Detections {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ds := r.Detections[name]
		if len(ds) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s\n", name)
		for _, d := range ds {
			switch d.Kind {
			case monitor.Hit:
				fmt.Fprintf(&b, "  hit: goal violation at %s matched by %s\n",
					d.Interval, strings.Join(d.MatchedSubgoals, ", "))
			case monitor.FalseNegative:
				fmt.Fprintf(&b, "  false negative: goal violation at %s with no corresponding subgoal violation\n", d.Interval)
			case monitor.FalsePositive:
				fmt.Fprintf(&b, "  false positive: subgoal %s violated at %s (%s) with no goal violation\n",
					d.GoalName, d.Interval, d.Location)
			}
		}
	}
	if b.Len() == 0 {
		return "(no detections)\n"
	}
	return b.String()
}

// SummaryRow is one row of the cross-scenario summary table.
type SummaryRow struct {
	// Scenario is the thesis scenario number.
	Scenario int
	// GoalViolations counts distinct system-goal violation intervals.
	GoalViolations int
	// SubgoalViolations counts distinct subgoal violation intervals.
	SubgoalViolations int
	// Summary is the hit / false-negative / false-positive classification.
	Summary monitor.Summary
	// Collision reports early termination on collision.
	Collision bool
}

// Summarize builds the cross-scenario summary from a set of results.
func Summarize(results []Result) []SummaryRow {
	rows := make([]SummaryRow, 0, len(results))
	for _, r := range results {
		row := SummaryRow{Scenario: r.Scenario.Number, Summary: r.Summary, Collision: r.Collision}
		for _, h := range r.Suite.Hierarchies() {
			row.GoalViolations += h.Parent.ViolationCount()
			for _, c := range h.Children {
				row.SubgoalViolations += c.ViolationCount()
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderSummary renders the cross-scenario summary table.
func RenderSummary(results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %-6s %-10s %-13s %-6s %-8s %-8s\n",
		"Scenario", "Goal", "Subgoal", "Collision", "Hits", "FalseNeg", "FalsePos")
	fmt.Fprintf(&b, "%-9s %-6s %-10s\n", "", "viol.", "violations")
	fmt.Fprintln(&b, strings.Repeat("-", 70))
	for _, row := range Summarize(results) {
		collision := ""
		if row.Collision {
			collision = "yes"
		}
		fmt.Fprintf(&b, "%-9d %-6d %-10d %-13s %-6d %-8d %-8d\n",
			row.Scenario, row.GoalViolations, row.SubgoalViolations, collision,
			row.Summary.Hits, row.Summary.FalseNegatives, row.Summary.FalsePositives)
	}
	var total monitor.Summary
	for _, r := range results {
		total = total.Add(r.Summary)
	}
	fmt.Fprintln(&b, strings.Repeat("-", 70))
	fmt.Fprintf(&b, "Overall: %s\n", total)
	fmt.Fprintf(&b, "Interpretation: %s\n", total.CompositionEvidence())
	return b.String()
}
