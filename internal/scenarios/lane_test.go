package scenarios

// Differential tests for lane-batched execution: an Engine at the default
// lane width must produce byte-identical output — every StreamResult, in the
// same order, under the same index and Job.Key, folding to the same
// aggregate — as the same Engine at WithLanes(1), whose dispatch and
// execution are exactly the PR 8 scalar grouped path.  The laned path steps
// several dynamics groups in lockstep through one widened simulation, so
// these tests are the proof that widening is unobservable downstream.

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/vehicle"
)

// assertLanedMatchesScalar is the core differential: one sweep, two engines
// differing only in lane width, byte-identical stream and aggregate.
func assertLanedMatchesScalar(t *testing.T, src func() JobSource, opts ...EngineOption) {
	t.Helper()
	base := append([]EngineOption{WithRetention(SummaryOnly)}, opts...)
	gotStream, gotAgg := streamBytes(t, src(), base...)
	wantStream, wantAgg := streamBytes(t, src(), append(base, WithLanes(1))...)
	if !bytes.Equal(gotStream, wantStream) {
		t.Errorf("laned result stream differs from scalar (%d vs %d bytes)",
			len(gotStream), len(wantStream))
	}
	if !bytes.Equal(gotAgg, wantAgg) {
		t.Errorf("laned aggregate differs from scalar:\n laned:  %s\n scalar: %s",
			gotAgg, wantAgg)
	}
}

// thesisScenarioJobs returns one job per thesis scenario at an equal trimmed
// duration: ten consecutive distinct DynamicsKeys, so the dispatcher forms
// real multi-lane batches (the shape lane batching exists for, which the
// tolerance sweep — whose consecutive jobs share keys — never produces).
func thesisScenarioJobs(d time.Duration) []Job {
	var jobs []Job
	for _, sc := range Scenarios() {
		sc.Duration = d
		jobs = append(jobs, Job{Scenario: sc})
	}
	return jobs
}

// TestLanedMatchesScalarScenarios proves lane batching on the ten thesis
// scenarios: ten width-1 dynamics groups with equal durations batch into
// 4+4+2 lanes, and the widened runs must reproduce the scalar stream byte
// for byte — including each scenario's own collision step and summary.
func TestLanedMatchesScalarScenarios(t *testing.T) {
	jobs := thesisScenarioJobs(1 * time.Second)
	assertLanedMatchesScalar(t, func() JobSource { return SliceSource(jobs) })
}

// TestLanedMatchesScalarSweeps extends the differential across the sweep
// presets: the tolerance sweep (wide groups, few keys), the defect sweep
// (defect/driver axes — many distinct keys) and the huge sweep (1296
// variants, mixed group widths and a ragged tail).
func TestLanedMatchesScalarSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep presets twice each")
	}
	for _, preset := range []struct {
		name string
		d    time.Duration
	}{
		{"tolerance", 1 * time.Second},
		{"defects", 500 * time.Millisecond},
		{"huge", 500 * time.Millisecond},
	} {
		preset := preset
		t.Run(preset.name, func(t *testing.T) {
			sw, err := SweepBySize(preset.name)
			if err != nil {
				t.Fatal(err)
			}
			for i := range sw.Families {
				sw.Families[i].Base.Duration = preset.d
			}
			assertLanedMatchesScalar(t, sw.Source)
		})
	}
}

// TestLanedMatchesScalarWithCache layers the result cache over lane-batched
// execution: a first pass primes half the stream, so the second pass
// dispatches batches whose groups are fully cached, partially cached and
// uncached — exercising the per-job hit resolution, the miss-subset lanes
// and the single-survivor scalar fallback — and must still match the scalar
// engine byte for byte.
func TestLanedMatchesScalarWithCache(t *testing.T) {
	jobs := thesisScenarioJobs(500 * time.Millisecond)
	half := jobs[:len(jobs)/2]

	laned := NewEngine(WithRetention(SummaryOnly), WithResultCache())
	scalar := NewEngine(WithRetention(SummaryOnly), WithResultCache(), WithLanes(1))
	collect := func(e *Engine, js []Job) []byte {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		err := e.Stream(context.Background(), SliceSource(js), SinkFunc(func(sr StreamResult) error {
			return enc.Encode(sr.Result)
		}))
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	collect(laned, half)
	collect(scalar, half)
	g, s := collect(laned, jobs), collect(scalar, jobs)
	if !bytes.Equal(g, s) {
		t.Fatal("laned+cache stream differs from scalar+cache")
	}
	wantHits, wantMisses := len(half), len(jobs)
	if hits, misses := laned.CacheStats(); hits != wantHits || misses != wantMisses {
		t.Fatalf("laned cache stats hits=%d misses=%d, want %d/%d", hits, misses, wantHits, wantMisses)
	}
}

// TestLaneArenaMatchesScalarArena drives the lane harness directly, outside
// the Engine: every 4-lane batch of thesis-scenario groups must produce, per
// lane, the Steps, Summary and Collision runArena.runGroup computes for that
// group on its own.
func TestLaneArenaMatchesScalarArena(t *testing.T) {
	jobs := thesisScenarioJobs(1 * time.Second)
	scalar := newRunArena()
	la := newLaneArena(4)
	for lo := 0; lo < len(jobs); lo += 4 {
		hi := lo + 4
		if hi > len(jobs) {
			hi = len(jobs)
		}
		groups := make([][]Job, 0, hi-lo)
		for _, j := range jobs[lo:hi] {
			groups = append(groups, []Job{j})
		}
		got := make([]Result, len(groups))
		la.run(groups, got)
		for i, g := range groups {
			want := make([]Result, 1)
			scalar.runGroup(g, want)
			if gj, wj := mustJSON(t, got[i]), mustJSON(t, want[0]); gj != wj {
				t.Errorf("lane %d (%s): laned result differs\n laned:  %s\n scalar: %s",
					i, g[0].Scenario.Name, gj, wj)
			}
		}
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestLaneEarlyStopPerLane pins per-lane early termination: a batch mixing a
// colliding trajectory (scenario 7 with seeded defects) and non-colliding
// ones must retire only the colliding lane — its Steps stop at the collision
// and TerminatedEarly holds — while sibling lanes run their full schedule,
// all byte-identical to scalar execution.
func TestLaneEarlyStopPerLane(t *testing.T) {
	sc7, ok := ScenarioByNumber(7)
	if !ok {
		t.Fatal("no scenario 7")
	}
	sc1, ok := ScenarioByNumber(1)
	if !ok {
		t.Fatal("no scenario 1")
	}
	jobs := []Job{
		{Scenario: sc7},
		{Scenario: sc7, Options: Options{CorrectDefects: true}},
		{Scenario: sc1},
		{Scenario: sc1, Options: Options{CorrectDefects: true}},
	}

	collect := func(opts ...EngineOption) []StreamResult {
		var out []StreamResult
		err := NewEngine(append([]EngineOption{WithRetention(SummaryOnly)}, opts...)...).
			Stream(context.Background(), SliceSource(jobs), SinkFunc(func(sr StreamResult) error {
				out = append(out, sr)
				return nil
			}))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	laned, scalar := collect(), collect(WithLanes(1))

	early := 0
	for i := range jobs {
		l, s := laned[i], scalar[i]
		if l.Result.Steps != s.Result.Steps || l.Result.Collision != s.Result.Collision {
			t.Errorf("job %d: laned Steps=%d Collision=%v, scalar Steps=%d Collision=%v",
				i, l.Result.Steps, l.Result.Collision, s.Result.Steps, s.Result.Collision)
		}
		if l.Result.TerminatedEarly() != s.Result.TerminatedEarly() {
			t.Errorf("job %d: laned TerminatedEarly=%v, scalar %v",
				i, l.Result.TerminatedEarly(), s.Result.TerminatedEarly())
		}
		if l.Result.TerminatedEarly() {
			early++
		}
	}
	if early == 0 || early == len(jobs) {
		t.Fatalf("want a mix of early-stopped and full-schedule lanes, got %d/%d early", early, len(jobs))
	}
	if !laned[0].Result.TerminatedEarly() {
		t.Error("scenario 7 with seeded defects should stop its lane at the collision")
	}
}

// TestLaneStatsCounters pins the lane-batching arithmetic: ten equal-duration
// width-1 groups batch as 4+4+2 (three widened runs, ten lanes, no ragged
// fallback), and the counters stay zero when lane batching is inert.
func TestLaneStatsCounters(t *testing.T) {
	jobs := thesisScenarioJobs(500 * time.Millisecond)

	engine := NewEngine(WithRetention(SummaryOnly))
	if _, err := engine.Accumulate(context.Background(), SliceSource(jobs)); err != nil {
		t.Fatal(err)
	}
	want := LaneStats{Batches: 3, Lanes: 10, Ragged: 0}
	if ls := engine.LaneStats(); ls != want {
		t.Fatalf("LaneStats = %+v, want %+v", ls, want)
	}
	if mw := engine.LaneStats().MeanWidth(); mw < 3.3 || mw > 3.4 {
		t.Fatalf("MeanWidth = %v, want 10/3", mw)
	}

	off := NewEngine(WithRetention(SummaryOnly), WithLanes(1))
	if _, err := off.Accumulate(context.Background(), SliceSource(jobs)); err != nil {
		t.Fatal(err)
	}
	if ls := off.LaneStats(); ls != (LaneStats{}) {
		t.Fatalf("WithLanes(1) recorded stats %+v, want zero", ls)
	}
	if ls := (LaneStats{}); ls.MeanWidth() != 0 {
		t.Fatalf("zero LaneStats MeanWidth = %v, want 0", ls.MeanWidth())
	}

	// A duration mismatch splits batches: alternating 500 ms / 1 s jobs can
	// never widen, so every batch is dispatched ragged at width 1.
	mixed := thesisScenarioJobs(500 * time.Millisecond)
	for i := 1; i < len(mixed); i += 2 {
		mixed[i].Scenario.Duration = 1 * time.Second
	}
	ragged := NewEngine(WithRetention(SummaryOnly))
	if _, err := ragged.Accumulate(context.Background(), SliceSource(mixed)); err != nil {
		t.Fatal(err)
	}
	if ls := ragged.LaneStats(); ls.Batches != 0 || ls.Ragged != len(mixed) {
		t.Fatalf("mixed-duration LaneStats = %+v, want 0 batches and %d ragged", ls, len(mixed))
	}
}

// TestZeroAllocLaneStep extends the PR 5 allocation gates to the widened hot
// path: steady-state lane commits (scalar handle writes through every lane's
// view plus the one plane memmove) and steady-state widened observation (one
// StepLanes pass folding per-lane verdict masks) must not allocate.
func TestZeroAllocLaneStep(t *testing.T) {
	skipIfAllocCountsUnreliable(t)
	const lanes = 4
	a := newLaneArena(lanes)

	// Warm-up: run a real batch so every handle is bound, every enumeration
	// interned and the recorders grown to their watermark.
	jobs := thesisScenarioJobs(100 * time.Millisecond)
	groups := make([][]Job, lanes)
	for l := 0; l < lanes; l++ {
		groups[l] = []Job{jobs[l]}
	}
	out := make([]Result, lanes)
	a.run(groups, out)

	type laneVars struct {
		speed   sim.NumVar
		stopped sim.BoolVar
		source  sim.StringVar
	}
	vars := make([]laneVars, lanes)
	for l := 0; l < lanes; l++ {
		view := a.sim.Bus.Lane(l)
		vars[l] = laneVars{
			speed:   view.NumVar(vehicle.SigVehicleSpeed),
			stopped: view.BoolVar(vehicle.SigVehicleStopped),
			source:  view.StringVar(vehicle.SigAccelSource),
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		for l := range vars {
			vars[l].speed.Write(float64(i + l))
			vars[l].stopped.Write((i+l)%2 == 0)
			vars[l].source.Write(vehicle.SourceACC)
		}
		a.sim.Bus.Commit()
	})
	if allocs != 0 {
		t.Errorf("lane Bus.Commit steady state allocates %v objects/op, want 0", allocs)
	}

	a.suite.Reset(lanes)
	st := a.sim.Bus.State()
	for j := 0; j < 100; j++ {
		a.suite.ObserveLanes(st)
	}
	allocs = testing.AllocsPerRun(1000, func() { a.suite.ObserveLanes(st) })
	if allocs != 0 {
		t.Errorf("ObserveLanes steady state allocates %v objects/op, want 0", allocs)
	}
}
