package scenarios

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/vehicle"
)

func TestAppendixCAnalyses(t *testing.T) {
	analyses := AppendixCAnalyses()
	if len(analyses) != 9 {
		t.Fatalf("Appendix C should contain one analysis per system goal, got %d", len(analyses))
	}
	for _, a := range analyses {
		if len(a.Paths) == 0 {
			t.Errorf("%s: indirect control paths missing", a.Goal.Name)
		}
		if len(a.Relationships) < 5 {
			t.Errorf("%s: expected the shared indirect-control relationships, got %d", a.Goal.Name, len(a.Relationships))
		}
		if len(a.Subgoals) == 0 {
			t.Errorf("%s: no subgoals derived", a.Goal.Name)
		}
		if len(a.CriticalAssumptions()) == 0 {
			t.Errorf("%s: elaboration should reference critical assumptions", a.Goal.Name)
		}
		out := a.Render()
		if !strings.Contains(out, a.Goal.Name) || !strings.Contains(out, "Goal Coverage Strategy") {
			t.Errorf("%s: rendering incomplete", a.Goal.Name)
		}
	}
}

func TestAppendixCCoverageStrategies(t *testing.T) {
	for _, a := range AppendixCAnalyses() {
		switch a.Goal.Name {
		case Goal3Agreement:
			if a.Coverage.Assignment != core.SingleResponsibility {
				t.Errorf("goal 3 should use single responsibility, got %v", a.Coverage.Assignment)
			}
			if len(a.SubgoalsFor("Arbiter")) != 1 || len(a.Subgoals) != 1 {
				t.Errorf("goal 3 should have only the Arbiter subgoal, got %d", len(a.Subgoals))
			}
		default:
			if a.Coverage.Assignment != core.RedundantResponsibility {
				t.Errorf("%s should use redundant responsibility, got %v", a.Goal.Name, a.Coverage.Assignment)
			}
			if len(a.SubgoalsFor("Arbiter")) != 1 {
				t.Errorf("%s should assign a subgoal to the Arbiter", a.Goal.Name)
			}
			redundant := 0
			for _, sg := range a.Subgoals {
				if sg.Redundant {
					redundant++
				}
			}
			if redundant != len(a.Subgoals)-1 {
				t.Errorf("%s: all feature subgoals should be marked redundant", a.Goal.Name)
			}
		}
	}
}

func TestAppendixCDecompositionStructure(t *testing.T) {
	a, ok := VehicleICPA(Goal1AutoAccel)
	if !ok {
		t.Fatal("VehicleICPA(goal 1) should exist")
	}
	d := a.Decomposition()
	if len(d.Reductions) != 2 {
		t.Fatalf("redundant-responsibility decomposition should have 2 reductions, got %d", len(d.Reductions))
	}
	if len(d.Reductions[0]) != 1 || len(d.Reductions[1]) != 5 {
		t.Errorf("expected 1 Arbiter subgoal + 5 feature subgoals, got %d and %d",
			len(d.Reductions[0]), len(d.Reductions[1]))
	}
	if len(d.Assumptions) == 0 {
		t.Error("decomposition should carry the indirect-control relationships as assumptions")
	}
	if _, ok := VehicleICPA("NoSuchGoal"); ok {
		t.Error("VehicleICPA should reject unknown goals")
	}
}

func TestAppendixCSubgoalRealizability(t *testing.T) {
	// The Arbiter subgoals constrain variables the Arbiter controls, so
	// they must be realizable by the Arbiter in the model.  The feature
	// subgoals observe vehicle-level state (speed, pedals) that the model
	// grants them, and control their own requests.
	a, _ := VehicleICPA(Goal1AutoAccel)
	res := a.CheckRealizability()
	arbiterGoal, _ := arbiterSubgoal(Goal1AutoAccel)
	if r, ok := res[arbiterGoal.Name]; !ok || !r.Realizable {
		t.Errorf("the Arbiter subgoal should be realizable by the Arbiter: %v", r)
	}
	for _, f := range featureSubgoalAssignments(Goal1AutoAccel) {
		sub, _ := featureSubgoal(Goal1AutoAccel, f)
		if r, ok := res[sub.Name]; !ok || !r.Realizable {
			t.Errorf("feature subgoal %s should be realizable: %v", sub.Name, r)
		}
	}
}

func TestLessonsFromICPA(t *testing.T) {
	lessons := LessonsFromICPA()
	if len(lessons) < 5 {
		t.Fatalf("expected the §5.3.2 lessons, got %d", len(lessons))
	}
	joined := strings.Join(lessons, " ")
	for _, want := range []string{"steering arbitration", "selected", "restrictive", "redundancy"} {
		if !strings.Contains(strings.ToLower(joined), want) {
			t.Errorf("lessons should mention %q", want)
		}
	}
}

func TestAppendixCPathsReachFeatures(t *testing.T) {
	a, _ := VehicleICPA(Goal2AutoJerk)
	agents := a.Model.InfluencingAgents(a.Goal, 0)
	for _, want := range []string{"Arbiter", "CA", "ACC", "PA", "Driver", "Powertrain"} {
		found := false
		for _, got := range agents {
			if got == want {
				found = true
			}
		}
		if !found {
			t.Errorf("indirect control of the jerk goal should include %s: %v", want, agents)
		}
	}
	_ = vehicle.FeatureNames
}
