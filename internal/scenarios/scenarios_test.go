package scenarios

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/monitor"
	"repro/internal/vehicle"
)

// resultCache runs each scenario at most once per test binary, because a
// full 20 s run at 1 ms resolution with ~45 monitors takes a noticeable
// fraction of a second.
var resultCache sync.Map

func cachedRun(t *testing.T, number int) Result {
	t.Helper()
	if r, ok := resultCache.Load(number); ok {
		return r.(Result)
	}
	sc, ok := ScenarioByNumber(number)
	if !ok {
		t.Fatalf("no scenario %d", number)
	}
	r := Run(sc)
	resultCache.Store(number, r)
	return r
}

func violated(r Result, goalName string) bool {
	for _, m := range r.Suite.Monitors() {
		if m.Goal.Name == goalName && m.Violated() {
			return true
		}
	}
	return false
}

func violatedAt(r Result, goalName, location string) bool {
	for _, m := range r.Suite.Monitors() {
		if m.Goal.Name == goalName && m.Location == location && m.Violated() {
			return true
		}
	}
	return false
}

func hasDetection(r Result, parentGoal string, kind monitor.DetectionKind) bool {
	for _, d := range r.Detections[parentGoal] {
		if d.Kind == kind {
			return true
		}
	}
	return false
}

func TestVehicleSafetyGoals(t *testing.T) {
	r := VehicleGoals()
	if r.Len() != 9 {
		t.Fatalf("expected the nine goals of Tables 5.1/5.2, got %d", r.Len())
	}
	for _, name := range GoalNames {
		g, ok := r.Get(name)
		if !ok {
			t.Fatalf("missing goal %s", name)
		}
		if g.InformalDef == "" || g.Formal == nil {
			t.Errorf("goal %s must have informal and formal definitions", name)
		}
	}
	// All nine goals are monitorable at run time (past-time only).
	for _, g := range r.All() {
		if _, err := monitor.New(g, "Vehicle", Period); err != nil {
			t.Errorf("goal %s is not monitorable: %v", g.Name, err)
		}
	}
}

func TestArbiterAndFeatureSubgoals(t *testing.T) {
	for _, name := range GoalNames {
		if _, ok := arbiterSubgoal(name); !ok {
			t.Errorf("goal %s should have an Arbiter-level subgoal", name)
		}
	}
	if _, ok := arbiterSubgoal("NoSuchGoal"); ok {
		t.Error("unknown goals must not produce subgoals")
	}
	// Feature subgoal coverage follows Table 5.3.
	if got := len(featureSubgoalAssignments(Goal1AutoAccel)); got != 5 {
		t.Errorf("goal 1 feature subgoals = %d, want 5", got)
	}
	if got := featureSubgoalAssignments(Goal8ForwardBlock); len(got) != 1 || got[0] != vehicle.SourceRCA {
		t.Errorf("goal 8 feature subgoals = %v, want [RCA]", got)
	}
	if got := len(featureSubgoalAssignments(Goal9BackwardBlock)); got != 3 {
		t.Errorf("goal 9 feature subgoals = %d, want 3 (CA, ACC, LCA)", got)
	}
	if featureSubgoalAssignments(Goal3Agreement) != nil {
		t.Error("goal 3 has no feature subgoals (single responsibility at the Arbiter)")
	}
	if _, ok := featureSubgoal(Goal3Agreement, vehicle.SourceCA); ok {
		t.Error("goal 3 should not produce feature subgoals")
	}
}

func TestTable5_3_MonitoringLocations(t *testing.T) {
	plan := MonitoringPlan()
	if len(plan) != 9 {
		t.Fatalf("monitoring plan should cover the nine goals, got %d", len(plan))
	}
	total := 0
	for _, spec := range plan {
		total += 1 + len(spec.Children)
		switch spec.GoalName {
		case Goal1AutoAccel, Goal2AutoJerk, Goal4NoAccelFromStop:
			if spec.Parent.Location != "Vehicle" {
				t.Errorf("%s should be monitored at the vehicle level", spec.GoalName)
			}
		default:
			if spec.Parent.Location != "Arbiter" {
				t.Errorf("%s should be monitored at the Arbiter level", spec.GoalName)
			}
		}
	}
	// 9 parents + 9 arbiter subgoals + 5+5+5+5+5+2+1+3 feature subgoals = 49.
	if total != 49 {
		t.Errorf("total monitors = %d, want 49", total)
	}

	rendered := RenderTable5_3()
	for _, want := range []string{
		"Goal/Subgoal", "Vehicle", "Arbiter", "PA",
		Goal1AutoAccel, "Achieve[AutoAccelCommandBelowThreshold]",
		"Maintain[AutoAccelRequestBelowThreshold]",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("Table 5.3 rendering missing %q", want)
		}
	}
}

func TestBuildSuiteMatchesPlan(t *testing.T) {
	suite := BuildSuite(Period)
	if got := len(suite.Hierarchies()); got != 9 {
		t.Errorf("suite hierarchies = %d, want 9", got)
	}
	if got := len(suite.Monitors()); got != 49 {
		t.Errorf("suite monitors = %d, want 49", got)
	}
}

func TestScenarioCatalogue(t *testing.T) {
	scs := Scenarios()
	if len(scs) != 10 {
		t.Fatalf("expected the ten scenarios of Section 5.4, got %d", len(scs))
	}
	for i, sc := range scs {
		if sc.Number != i+1 {
			t.Errorf("scenario %d has number %d", i+1, sc.Number)
		}
		if sc.Name == "" || sc.Description == "" || sc.Duration <= 0 {
			t.Errorf("scenario %d is missing metadata", sc.Number)
		}
	}
	if _, ok := ScenarioByNumber(11); ok {
		t.Error("ScenarioByNumber(11) should fail")
	}
	if sc, ok := ScenarioByNumber(7); !ok || sc.Gear != "R" {
		t.Error("scenario 7 should exist and be in reverse gear")
	}
}

// TestScenario1 reproduces the structure of Table D.1: the jerk goal is
// violated at the vehicle level during CA's braking episode, the defective
// Park Assist requests are flagged as subgoal violations (false positives),
// and the intermittent CA braking is visible in the CA jerk subgoal.
func TestScenario1(t *testing.T) {
	r := cachedRun(t, 1)
	if !violatedAt(r, Goal2AutoJerk, "Vehicle") {
		t.Error("goal 2 (jerk) should be violated at the vehicle level")
	}
	if !violatedAt(r, "Maintain[AutoJerkRequestBelowThreshold:CA]", "CA") {
		t.Error("CA's request-jerk subgoal should be violated by the cancel/re-apply defect")
	}
	if !violatedAt(r, "Maintain[AutoJerkRequestBelowThreshold:PA]", "PA") {
		t.Error("PA's spurious request profile should violate its jerk subgoal")
	}
	if violated(r, Goal9BackwardBlock) {
		t.Error("goal 9 should not be violated while driving forward")
	}
	if r.Summary.Hits == 0 {
		t.Error("scenario 1 should produce hits")
	}
	if r.Summary.FalsePositives == 0 {
		t.Error("scenario 1 should produce false positives (PA defect masked by arbitration)")
	}
}

// TestScenario2 reproduces Section 5.4.2: engaging PA during CA's braking
// action reroutes the acceleration command, violating goals 1-3, and the
// goal-1 violation has no corresponding subgoal violation (a false
// negative), because every request and command stays within bounds while
// the vehicle's dynamic response overshoots.
func TestScenario2(t *testing.T) {
	r := cachedRun(t, 2)
	if !r.Collision {
		t.Error("scenario 2 should terminate early in a collision")
	}
	for _, g := range []string{Goal1AutoAccel, Goal2AutoJerk, Goal3Agreement} {
		if !violated(r, g) {
			t.Errorf("%s should be violated in scenario 2", g)
		}
	}
	if !hasDetection(r, Goal1AutoAccel, monitor.FalseNegative) {
		t.Error("the goal-1 violation should be a false negative (no subgoal correspondence)")
	}
	if !hasDetection(r, Goal3Agreement, monitor.Hit) {
		t.Error("the agreement violation should be detected at the Arbiter (hit)")
	}
	// The arbitration defect: CA remains selected while the command follows
	// PA's request — visible in the Figure 5.4 series.
	if !violatedAt(r, Goal3Agreement, "Arbiter") {
		t.Error("goal 3 should be violated at the Arbiter")
	}
}

// TestScenario3 reproduces Section 5.4.3: the intermittent braking fails to
// stop the vehicle before the parked vehicle, and ACC emits requests while
// not engaged.
func TestScenario3(t *testing.T) {
	r := cachedRun(t, 3)
	if !violatedAt(r, Goal2AutoJerk, "Vehicle") {
		t.Error("goal 2 should be violated during the intermittent braking")
	}
	// ACC requests while not engaged (Figure 5.6): visible as request
	// activity, not necessarily as a subgoal violation because the requests
	// are decelerations.
	accRequesting := false
	for i := 0; i < r.Trace.Len(); i++ {
		if r.Trace.At(i).Bool(vehicle.SigRequestingAccel(vehicle.SourceACC)) &&
			!r.Trace.At(i).Bool(vehicle.SigActive(vehicle.SourceACC)) {
			accRequesting = true
			break
		}
	}
	if !accRequesting {
		t.Error("ACC should emit acceleration requests while not engaged (seeded defect)")
	}
}

// TestScenario6 reproduces Section 5.4.6: after LCA engages, the vehicle
// speed becomes negative while ACC and LCA remain active, violating goal 9,
// and the acceleration/steering agreement goal fails.
func TestScenario6(t *testing.T) {
	r := cachedRun(t, 6)
	if !violated(r, Goal9BackwardBlock) {
		t.Error("goal 9 should be violated when the speed becomes negative under ACC/LCA control")
	}
	if !violated(r, Goal3Agreement) {
		t.Error("goal 3 should be violated when LCA is granted steering but not acceleration")
	}
	wentNegative := false
	for _, v := range r.Trace.Series(vehicle.SigVehicleSpeed) {
		if v < -0.1 {
			wentNegative = true
		}
	}
	if !wentNegative {
		t.Error("the vehicle speed should become negative (Figure 5.11)")
	}
	// The steering command never follows LCA's request (Figure 5.10).
	for _, v := range r.Trace.Series(vehicle.SigSteerCommand) {
		if v != 0 {
			t.Error("the steering command should remain unchanged (seeded defect)")
			break
		}
	}
}

// TestScenario7 reproduces Section 5.4.7: RCA never engages, the host
// vehicle strikes the object behind it, and no system goal is violated —
// the hazard is invisible to the goal monitors (it is a missing-goal
// problem, not a goal-violation problem).
func TestScenario7(t *testing.T) {
	r := cachedRun(t, 7)
	if !r.Collision {
		t.Error("scenario 7 should end in a collision with the rear object")
	}
	for _, name := range GoalNames {
		if violatedAt(r, name, "Vehicle") || violatedAt(r, name, "Arbiter") {
			t.Errorf("no system goal should be violated in scenario 7, but %s was", name)
		}
	}
	for i := 0; i < r.Trace.Len(); i++ {
		if r.Trace.At(i).Bool(vehicle.SigActive(vehicle.SourceRCA)) {
			t.Fatal("RCA must never engage (seeded defect)")
		}
	}
}

// TestScenario8 reproduces Section 5.4.8: ACC accepts engagement in reverse
// and is selected as the acceleration source, violating goal 9 with a
// corresponding Arbiter subgoal violation (a hit).
func TestScenario8(t *testing.T) {
	r := cachedRun(t, 8)
	if !violated(r, Goal9BackwardBlock) {
		t.Error("goal 9 should be violated when ACC controls the vehicle in reverse")
	}
	if !hasDetection(r, Goal9BackwardBlock, monitor.Hit) {
		t.Error("the goal 9 violation should be matched by subgoal violations")
	}
}

// TestScenario9 reproduces Section 5.4.9: PA is selected as the acceleration
// source from a stop without a go confirmation (goal 4 violated and detected
// at both levels), and the acceleration command differs from PA's request
// (Figure 5.14).
func TestScenario9(t *testing.T) {
	r := cachedRun(t, 9)
	if !violatedAt(r, Goal4NoAccelFromStop, "Vehicle") {
		t.Error("goal 4 should be violated at the vehicle level")
	}
	if !hasDetection(r, Goal4NoAccelFromStop, monitor.Hit) {
		t.Error("the goal 4 violation should be matched by the Arbiter/PA subgoals")
	}
	mismatch := false
	for i := 0; i < r.Trace.Len(); i++ {
		st := r.Trace.At(i)
		if st.Bool(vehicle.SigSelected(vehicle.SourcePA)) {
			req := st.Number(vehicle.SigAccelRequest(vehicle.SourcePA))
			cmd := st.Number(vehicle.SigAccelCommand)
			if req != 0 && cmd != req {
				mismatch = true
				break
			}
		}
	}
	if !mismatch {
		t.Error("the acceleration command should not equal PA's request while PA is selected (Figure 5.14)")
	}
}

// TestScenario10 reproduces Section 5.4.10: the ACC engagement attempt at a
// standstill is rejected (ACC never becomes active or selected), yet the
// vehicle begins to accelerate — with no corresponding system-goal violation
// because the acceleration is not attributed to a subsystem.
func TestScenario10(t *testing.T) {
	r := cachedRun(t, 10)
	for i := 0; i < r.Trace.Len(); i++ {
		if r.Trace.At(i).Bool(vehicle.SigActive(vehicle.SourceACC)) {
			t.Fatal("ACC must not become active in scenario 10")
		}
		if r.Trace.At(i).Bool(vehicle.SigSelected(vehicle.SourceACC)) {
			t.Fatal("ACC must not be selected in scenario 10")
		}
	}
	accelerated := false
	for _, v := range r.Trace.Series(vehicle.SigVehicleSpeed) {
		if v > 0.5 {
			accelerated = true
		}
	}
	if !accelerated {
		t.Error("the vehicle should begin to accelerate after the brake is released (Figure 5.15)")
	}
	if violatedAt(r, Goal4NoAccelFromStop, "Vehicle") {
		t.Error("goal 4 should not be violated: the acceleration is not attributed to a subsystem")
	}
}

// TestHierarchicalMonitoringFindsPartialComposition aggregates all scenarios
// the tests already ran: across them the monitors must report hits, false
// positives and at least one false negative, which is the thesis' empirical
// evidence that the ICPA subgoals only partially compose the system goals.
func TestHierarchicalMonitoringFindsPartialComposition(t *testing.T) {
	var total monitor.Summary
	for _, n := range []int{1, 2, 3, 6, 7, 8, 9, 10} {
		total = total.Add(cachedRun(t, n).Summary)
	}
	if total.Hits == 0 {
		t.Error("expected hits across the scenario set")
	}
	if total.FalsePositives == 0 {
		t.Error("expected false positives across the scenario set")
	}
	if total.FalseNegatives == 0 {
		t.Error("expected false negatives across the scenario set")
	}
	if !strings.Contains(total.CompositionEvidence(), "partially compose") {
		t.Errorf("evidence = %q, want partial composability", total.CompositionEvidence())
	}
}

func TestRenderViolationTable(t *testing.T) {
	r := cachedRun(t, 2)
	out := RenderViolationTable(r)
	for _, want := range []string{"Scenario 2", "terminated early: collision", "Goal/Subgoal", "Classification:"} {
		if !strings.Contains(out, want) {
			t.Errorf("violation table missing %q", want)
		}
	}
	detail := RenderClassificationDetail(r)
	if !strings.Contains(detail, "hit:") || !strings.Contains(detail, "false") {
		t.Errorf("classification detail looks wrong:\n%s", detail)
	}
}

func TestRenderSummary(t *testing.T) {
	results := []Result{cachedRun(t, 1), cachedRun(t, 7)}
	out := RenderSummary(results)
	for _, want := range []string{"Scenario", "Overall:", "Interpretation:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q", want)
		}
	}
	rows := Summarize(results)
	if len(rows) != 2 || rows[0].Scenario != 1 || rows[1].Scenario != 7 {
		t.Errorf("Summarize rows = %+v", rows)
	}
	if rows[1].Collision != true {
		t.Error("scenario 7 row should record the collision")
	}
}

func TestFigures(t *testing.T) {
	figs := Figures()
	if len(figs) != 14 {
		t.Fatalf("figure catalogue = %d entries, want 14 (Figures 5.2-5.15)", len(figs))
	}
	seen := make(map[int]bool)
	for _, f := range figs {
		if f.ID == "" || f.Title == "" || len(f.Signals) == 0 {
			t.Errorf("figure %+v is incomplete", f)
		}
		if f.Scenario < 1 || f.Scenario > 10 {
			t.Errorf("figure %s references scenario %d", f.ID, f.Scenario)
		}
		seen[f.Scenario] = true
	}
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		if !seen[n] {
			t.Errorf("no figure uses scenario %d", n)
		}
	}
}

func TestFigureSeriesAndCSV(t *testing.T) {
	r := cachedRun(t, 1)
	var fig52 Figure
	for _, f := range Figures() {
		if f.ID == "5.2" {
			fig52 = f
		}
	}
	series := FigureSeries(r, fig52)
	if len(series["time_s"]) != r.Trace.Len() {
		t.Fatalf("time series length = %d, want %d", len(series["time_s"]), r.Trace.Len())
	}
	// Figure 5.2 plots CA's braking request: it must reach the hard-braking
	// level during the scenario.
	sawBraking := false
	for _, v := range series[vehicle.SigAccelRequest(vehicle.SourceCA)] {
		if v == vehicle.CABrakeRequest {
			sawBraking = true
		}
	}
	if !sawBraking {
		t.Error("Figure 5.2 series should show the CA braking request")
	}
	csv := RenderFigureCSV(r, fig52)
	if !strings.HasPrefix(csv, "# Figure 5.2") || !strings.Contains(csv, "time_s,") {
		t.Errorf("CSV rendering looks wrong:\n%s", csv[:120])
	}
	lines := strings.Count(csv, "\n")
	if lines < 100 || lines > 2300 {
		t.Errorf("CSV should be down-sampled to a manageable number of rows, got %d", lines)
	}
}

func TestFigureSeriesEncodesSources(t *testing.T) {
	r := cachedRun(t, 8)
	var fig Figure
	for _, f := range Figures() {
		if f.ID == "5.13" {
			fig = f
		}
	}
	series := FigureSeries(r, fig)
	// The accel-source series is numerically encoded; ACC's code appears
	// after the engagement.
	accCode := sourceIndex(vehicle.SourceACC)
	sawACC := false
	for _, v := range series[vehicle.SigAccelSource] {
		if v == accCode {
			sawACC = true
		}
	}
	if !sawACC {
		t.Error("Figure 5.13 should show ACC as the acceleration source after engagement")
	}
	if sourceIndex("bogus") != -1 || sourceIndex(vehicle.SourceDriver) != 1 || sourceIndex("") != 0 {
		t.Error("sourceIndex encoding is wrong")
	}
}

func TestResultTerminatedEarly(t *testing.T) {
	if cachedRun(t, 1).TerminatedEarly() {
		t.Error("scenario 1 runs to completion")
	}
	if !cachedRun(t, 2).TerminatedEarly() {
		t.Error("scenario 2 terminates early")
	}
}
