package scenarios

import (
	"encoding/json"
	"strconv"
	"strings"
)

// ---------------------------------------------------------------------------
// Job identity split: dynamics key vs monitor key
// ---------------------------------------------------------------------------
//
// Job.Key identifies one evaluation — dynamics AND monitoring configuration —
// and is the unit of idempotence for caching, sharding and deduplication.
// But many distinct evaluations share the same simulated trajectory: a
// tolerance sweep re-runs bit-identical dynamics K times just to match the
// recorded violation intervals with K different windows.  Splitting the
// identity makes that sharing explicit:
//
//   - DynamicsKey canonicalizes everything that affects the simulated
//     trajectory: the physical scenario parameters, the scheduled duration,
//     the driver/HMI schedule and the resolved defect corrections.
//   - MonitorKey canonicalizes everything that only affects how the
//     trajectory is observed: today, the effective hit-matching tolerance.
//
// Two jobs with equal DynamicsKeys drive the simulation through exactly the
// same state sequence (the components are deterministic functions of these
// inputs), so an Engine worker may run them as ONE simulation pass and
// produce each job's Result from its own MonitorKey — the grouped execution
// path in engine.go/arena.go.  Job.Key remains the per-variant identity:
// results stream under the original key, so sharding, the result cache,
// dedup and the distributed merge are unchanged.
//
// The keys are canonical, not positional: scenario Name/Number/Description
// are deliberately excluded from DynamicsKey (every sweep generator bakes
// the options label — a monitor-side value — into the variant name), and
// CorrectDefects vs an explicitly full DefectSet resolve to the same key.

// scenarioFieldClass classifies every Scenario field as dynamics-affecting
// or pure naming/metadata.  TestScenarioFieldsClassified walks Scenario by
// reflection and fails on any field missing here, so a new scenario
// parameter cannot silently corrupt grouped execution by being left out of
// DynamicsKey.
var scenarioFieldClass = map[string]fieldClass{
	"Number":            identityField,
	"Name":              identityField,
	"Description":       identityField,
	"Duration":          dynamicsField,
	"InitialSpeed":      dynamicsField,
	"Gear":              dynamicsField,
	"ObjectDistance":    dynamicsField,
	"ObjectSpeed":       dynamicsField,
	"Driver":            dynamicsField,
	"ACCDirectionCheck": dynamicsField,
}

// optionsFieldClass classifies every Options field as dynamics-affecting or
// monitor-only, the Options counterpart of the Label coverage guard:
// TestOptionsFieldsClassified fails on an unclassified field, so adding an
// option without deciding which key it belongs to fails the build instead of
// silently grouping jobs whose trajectories differ.
var optionsFieldClass = map[string]fieldClass{
	"CorrectDefects": dynamicsField,
	"Defects":        dynamicsField,
	"MatchTolerance": monitorField,
}

// fieldClass says which identity a Scenario or Options field feeds.
type fieldClass int

const (
	// dynamicsField: the field changes the simulated trajectory and is part
	// of DynamicsKey.
	dynamicsField fieldClass = iota + 1
	// monitorField: the field only changes how the trajectory is observed
	// and is part of MonitorKey.
	monitorField
	// identityField: pure naming/metadata (scenario number, name,
	// description); part of neither key.
	identityField
)

// DynamicsKey returns the canonical identity of the simulated trajectory:
// the scheduled duration (zero normalized to the default, matching what the
// run executes), every physical scenario parameter, the driver/HMI schedule
// and the resolved defect-correction set.  Jobs with equal DynamicsKeys are
// guaranteed to drive the simulation identically, so the Engine groups
// consecutive equal-key jobs into one simulation pass.
//
// The driver schedule is embedded in its canonical JSON encoding — the same
// deterministic encoding the distributed wire contract round-trips — so any
// difference in timing or commanded values splits the key.
func (j Job) DynamicsKey() string {
	sc := j.Scenario
	d := sc.Duration
	if d <= 0 {
		d = DefaultDuration
	}
	sched, err := json.Marshal(sc.Driver)
	if err != nil {
		// DriverAction holds only values and pointers to values; its
		// encoding cannot fail.
		panic(err)
	}
	var b strings.Builder
	b.Grow(96 + len(sched))
	b.WriteString("dur=")
	b.WriteString(strconv.FormatInt(int64(d), 10))
	b.WriteString("|speed=")
	b.WriteString(strconv.FormatFloat(sc.InitialSpeed, 'g', -1, 64))
	b.WriteString("|gear=")
	b.WriteString(sc.Gear)
	b.WriteString("|objdist=")
	b.WriteString(strconv.FormatFloat(sc.ObjectDistance, 'g', -1, 64))
	b.WriteString("|objspeed=")
	b.WriteString(strconv.FormatFloat(sc.ObjectSpeed, 'g', -1, 64))
	b.WriteString("|acccheck=")
	b.WriteString(strconv.FormatBool(sc.ACCDirectionCheck))
	b.WriteString("|fixed=")
	b.WriteString(j.Options.defects().label())
	b.WriteString("|driver=")
	b.Write(sched)
	return b.String()
}

// MonitorKey returns the canonical identity of the observation side of a
// job: the effective hit-matching tolerance (a zero MatchTolerance resolves
// to the default, matching what the run uses).  Jobs in one dynamics group
// are distinguished only by their MonitorKeys.
func (j Job) MonitorKey() string {
	return "tol=" + strconv.Itoa(j.Options.tolerance())
}
