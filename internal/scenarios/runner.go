package scenarios

import (
	"runtime"
	"sync"
)

// Job is one unit of work for a Runner: a scenario together with the options
// it should run under.  Distinct jobs may pair the same scenario with
// different options (e.g. the corrected-defects ablation).
type Job struct {
	// Scenario is the configuration to run.
	Scenario Scenario
	// Options are the run options (defect correction etc.).
	Options Options
}

// Runner executes batches of scenario jobs on a fixed-size worker pool.
//
// Every job is fully isolated: RunWithOptions builds a fresh sim.Engine, Bus,
// component set and monitor Suite per run, and no package in the run path
// keeps mutable package-level state, so jobs can execute concurrently without
// synchronisation.  Results are always returned in input order, so a parallel
// batch is indistinguishable from a sequential one except for wall-clock
// time.
type Runner struct {
	// Workers is the worker-pool size.  Non-positive values default to
	// runtime.GOMAXPROCS(0).
	Workers int
}

// workerCount resolves the effective pool size for a batch of n jobs.
func (r Runner) workerCount(n int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every job and returns the results in input order.
func (r Runner) Run(jobs []Job) []Result {
	out := make([]Result, len(jobs))
	workers := r.workerCount(len(jobs))
	if workers == 1 {
		for i, j := range jobs {
			out[i] = RunWithOptions(j.Scenario, j.Options)
		}
		return out
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				out[i] = RunWithOptions(jobs[i].Scenario, jobs[i].Options)
			}
		}()
	}
	for i := range jobs {
		indices <- i
	}
	close(indices)
	wg.Wait()
	return out
}

// RunScenarios executes a slice of scenarios under one shared set of options
// and returns the results in input order.
func (r Runner) RunScenarios(scs []Scenario, opts Options) []Result {
	jobs := make([]Job, len(scs))
	for i, sc := range scs {
		jobs[i] = Job{Scenario: sc, Options: opts}
	}
	return r.Run(jobs)
}

// RunAll executes every thesis scenario on a default Runner and returns the
// results in scenario order.
func RunAll() []Result { return RunAllWithOptions(Options{}) }

// RunAllWithOptions executes every thesis scenario with explicit options on a
// default Runner and returns the results in scenario order.
func RunAllWithOptions(opts Options) []Result {
	return Runner{}.RunScenarios(Scenarios(), opts)
}

// RunAllSequential executes every thesis scenario on a single worker; it is
// the reference path the parallel Runner is checked against.
func RunAllSequential() []Result {
	return Runner{Workers: 1}.RunScenarios(Scenarios(), Options{})
}
