package scenarios

import "context"

// Job is one unit of work for the evaluation: a scenario together with the
// options it should run under.  Distinct jobs may pair the same scenario with
// different options (e.g. the corrected-defects ablation).
type Job struct {
	// Scenario is the configuration to run.
	Scenario Scenario
	// Options are the run options (defect correction etc.).
	Options Options
}

// Runner is the batch-mode compatibility wrapper over the streaming Engine:
// it materializes every job and retains every Result, which is convenient for
// bounded batches (the ten thesis scenarios, the 120-variant default sweep)
// and prohibitive for large ones.  New code — and anything that sweeps
// thousands of variants — should construct an Engine and use Stream with a
// lazy JobSource and an explicit retention policy.
//
// Every job is fully isolated (each run builds a fresh sim.Engine, Bus,
// component set and monitor Suite, and no package in the run path keeps
// mutable package-level state), so jobs execute concurrently without
// synchronisation.  Results are always returned in input order, so a parallel
// batch is indistinguishable from a sequential one except for wall-clock
// time.
type Runner struct {
	// Workers is the worker-pool size.  Non-positive values default to
	// runtime.GOMAXPROCS(0).
	Workers int
}

// engine builds the Engine a Runner delegates to.
func (r Runner) engine() *Engine {
	return NewEngine(WithWorkers(r.Workers))
}

// Run executes every job and returns the results in input order.
func (r Runner) Run(jobs []Job) []Result {
	out := make([]Result, len(jobs))
	// The context is never cancelled and the sink never fails, so Stream
	// cannot return an error here.
	_ = r.engine().Stream(context.Background(), SliceSource(jobs), SinkFunc(
		func(sr StreamResult) error {
			out[sr.Index] = sr.Result
			return nil
		}))
	return out
}

// RunScenarios executes a slice of scenarios under one shared set of options
// and returns the results in input order.
func (r Runner) RunScenarios(scs []Scenario, opts Options) []Result {
	jobs := make([]Job, len(scs))
	for i, sc := range scs {
		jobs[i] = Job{Scenario: sc, Options: opts}
	}
	return r.Run(jobs)
}

// RunAll executes every thesis scenario on a default Runner and returns the
// results in scenario order.
func RunAll() []Result { return RunAllWithOptions(Options{}) }

// RunAllWithOptions executes every thesis scenario with explicit options on a
// default Runner and returns the results in scenario order.
func RunAllWithOptions(opts Options) []Result {
	return Runner{}.RunScenarios(Scenarios(), opts)
}

// RunAllSequential executes every thesis scenario on a single worker; it is
// the reference path the parallel Engine is checked against.
func RunAllSequential() []Result {
	return Runner{Workers: 1}.RunScenarios(Scenarios(), Options{})
}
