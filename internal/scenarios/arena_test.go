package scenarios

// Differential tests for the run arena: the same variant executed on a
// reused arena — one schema, bus, component set and compiled program,
// rewound between runs — must be indistinguishable from a fresh, fully
// rebuilt run.  The arena is deliberately reused across every variant of a
// sweep, exactly as an Engine worker reuses it, so these tests prove that
// Simulation.Reset, the component Reset paths and the absolute
// reconfiguration in vehicleSet.configure leave no state behind.

import (
	"context"
	"testing"
	"time"
)

// assertArenaMatchesFresh runs one job both ways and compares everything a
// summary-only Result retains.
func assertArenaMatchesFresh(t *testing.T, arena *runArena, sc Scenario, opts Options) {
	t.Helper()
	got := arena.run(sc, opts)
	want := runJob(sc, opts, SummaryOnly)
	if got.Summary != want.Summary {
		t.Errorf("%s (%s): arena summary %v != fresh summary %v",
			sc.Name, opts.Label(), got.Summary, want.Summary)
	}
	if got.Steps != want.Steps {
		t.Errorf("%s (%s): arena steps %d != fresh steps %d",
			sc.Name, opts.Label(), got.Steps, want.Steps)
	}
	if got.Collision != want.Collision {
		t.Errorf("%s (%s): arena collision %v != fresh collision %v",
			sc.Name, opts.Label(), got.Collision, want.Collision)
	}
	if got.TerminatedEarly() != want.TerminatedEarly() {
		t.Errorf("%s (%s): arena early-termination %v != fresh %v",
			sc.Name, opts.Label(), got.TerminatedEarly(), want.TerminatedEarly())
	}
}

// TestArenaMatchesFreshThesisScenarios proves arena-reuse equivalence on the
// ten thesis scenarios in both defect configurations, interleaved so every
// run follows a differently configured one.  -short trims the durations; the
// full 20 s runs execute in CI.
func TestArenaMatchesFreshThesisScenarios(t *testing.T) {
	arena := newRunArena()
	for _, sc := range Scenarios() {
		sc := sc
		if testing.Short() {
			sc.Duration = 2 * time.Second
		}
		t.Run(sc.Name, func(t *testing.T) {
			assertArenaMatchesFresh(t, arena, sc, Options{})
			assertArenaMatchesFresh(t, arena, sc, Options{CorrectDefects: true})
		})
	}
}

// TestArenaMatchesFreshSweeps extends the equivalence proof across every
// variant of the sweep presets an Engine worker actually runs the arena
// over: the 120-variant DefaultSweep, the tolerance sweep (which switches
// compiled programs inside one arena) and the defect sweep (per-feature
// corrections and perturbed driver schedules).
func TestArenaMatchesFreshSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three full sweep presets through one arena")
	}
	arena := newRunArena()
	for _, preset := range []struct {
		name  string
		sweep Sweep
	}{
		{"default", DefaultSweep()},
		{"tolerance", ToleranceSweep()},
		{"defects", DefectSweep()},
	} {
		preset := preset
		t.Run(preset.name, func(t *testing.T) {
			sw := preset.sweep
			for i := range sw.Families {
				sw.Families[i].Base.Duration = 1 * time.Second
			}
			src := sw.Source()
			runs := 0
			for {
				job, ok := src.Next()
				if !ok {
					break
				}
				assertArenaMatchesFresh(t, arena, job.Scenario, job.Options)
				runs++
			}
			if runs != sw.Size() {
				t.Fatalf("arena differential executed %d variants, want %d", runs, sw.Size())
			}
		})
	}
}

// TestEngineResultCache checks the per-variant memoization at the ResultSink
// seam: re-streaming the same sweep on one Engine serves every variant from
// the cache, and the cached results are identical to the fresh ones.
func TestEngineResultCache(t *testing.T) {
	sw := ToleranceSweep()
	for i := range sw.Families {
		sw.Families[i].Base.Duration = 500 * time.Millisecond
	}
	engine := NewEngine(WithRetention(SummaryOnly), WithResultCache())

	collect := func() []Result {
		var out []Result
		err := engine.Stream(context.Background(), sw.Source(), SinkFunc(func(sr StreamResult) error {
			out = append(out, sr.Result)
			return nil
		}))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	first := collect()
	hits, misses := engine.CacheStats()
	if hits != 0 || misses != sw.Size() {
		t.Fatalf("first pass: hits=%d misses=%d, want 0/%d", hits, misses, sw.Size())
	}

	second := collect()
	hits, misses = engine.CacheStats()
	if hits != sw.Size() || misses != sw.Size() {
		t.Fatalf("second pass: hits=%d misses=%d, want %d/%d", hits, misses, sw.Size(), sw.Size())
	}
	for i := range first {
		if first[i].Summary != second[i].Summary ||
			first[i].Steps != second[i].Steps ||
			first[i].Collision != second[i].Collision ||
			first[i].Scenario.Name != second[i].Scenario.Name {
			t.Fatalf("variant %d: cached result diverges from fresh run", i)
		}
	}

	// An uncached Engine reports zero counters.
	if h, m := NewEngine().CacheStats(); h != 0 || m != 0 {
		t.Fatalf("uncached engine stats = %d/%d, want 0/0", h, m)
	}
}
