package scenarios

// Differential tests for the slot-indexed state refactor: the same
// simulation is observed simultaneously by two monitor suites — one compiled
// against the run's schema (atoms are register-slot loads) and one compiled
// in reference mode (atoms evaluate through the string-keyed State API on
// every step, the behaviour of the map-backed representation).  Identical
// classifications across the ten thesis scenarios and the 120-variant
// DefaultSweep prove the refactor changed the representation, not the
// results.

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/temporal"
	"repro/internal/vehicle"
)

// buildReferenceSuite instantiates the Table 5.3 monitoring plan with
// reference (string-keyed) goal steppers.
func buildReferenceSuite(t *testing.T, period time.Duration, tolerance int) *monitor.Suite {
	t.Helper()
	suite := monitor.NewSuite()
	for _, spec := range MonitoringPlan() {
		parent, err := monitor.NewReference(spec.Parent.Goal, spec.Parent.Location, period)
		if err != nil {
			t.Fatalf("reference monitor %q: %v", spec.Parent.Goal.Name, err)
		}
		children := make([]*monitor.Monitor, 0, len(spec.Children))
		for _, c := range spec.Children {
			child, err := monitor.NewReference(c.Goal, c.Location, period)
			if err != nil {
				t.Fatalf("reference monitor %q: %v", c.Goal.Name, err)
			}
			children = append(children, child)
		}
		suite.Add(monitor.NewHierarchy(parent, tolerance, children...))
	}
	return suite
}

// runDifferential executes one scenario with both suites attached to the
// same simulation and asserts identical detections and summaries.
func runDifferential(t *testing.T, sc Scenario, opts Options) {
	t.Helper()

	s := NewSimulation(sc, opts)
	slotSuite := buildSuite(Period, s.Bus.Schema(), opts.tolerance())
	refSuite := buildReferenceSuite(t, Period, opts.tolerance())
	s.OnStep(func(_ time.Duration, st temporal.State) {
		slotSuite.Observe(st)
		refSuite.Observe(st)
	})
	collision := s.Bus.Schema().Intern(vehicle.SigCollision)
	s.StopWhen(func(_ time.Duration, st temporal.State) bool {
		return st.Slot(collision).AsBool()
	})

	duration := sc.Duration
	if duration <= 0 {
		duration = 20 * time.Second
	}
	s.RunDiscard(duration)
	slotSuite.Finish()
	refSuite.Finish()

	slotDetections, slotSummary := slotSuite.ClassifyAll()
	refDetections, refSummary := refSuite.ClassifyAll()

	if slotSummary != refSummary {
		t.Errorf("%s (%s): slot-indexed summary %v != reference summary %v",
			sc.Name, opts.Label(), slotSummary, refSummary)
	}
	if !reflect.DeepEqual(slotDetections, refDetections) {
		t.Errorf("%s (%s): slot-indexed detections diverge from the string-keyed reference\nslot: %#v\nref:  %#v",
			sc.Name, opts.Label(), slotDetections, refDetections)
	}
}

// TestDifferentialThesisScenarios proves detection equivalence on the ten
// thesis scenarios, in both the seeded-defect and corrected configurations.
// -short trims the runs; the full 20 s durations run in CI.
func TestDifferentialThesisScenarios(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		if testing.Short() {
			sc.Duration = 2 * time.Second
		}
		t.Run(sc.Name, func(t *testing.T) {
			runDifferential(t, sc, Options{})
			runDifferential(t, sc, Options{CorrectDefects: true})
		})
	}
}

// TestDifferentialDefaultSweep proves detection equivalence across every
// variant of the 120-variant DefaultSweep.  Durations are shortened so the
// population runs in test time (the full-length scenarios are covered by
// TestDifferentialThesisScenarios); every variant of the grid — all speeds,
// distances and defect configurations — is exercised.
func TestDifferentialDefaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all 120 DefaultSweep variants differentially")
	}
	sw := DefaultSweep()
	for i := range sw.Families {
		sw.Families[i].Base.Duration = 1 * time.Second
	}
	if sw.Size() != 120 {
		t.Fatalf("DefaultSweep size = %d, want 120", sw.Size())
	}
	src := sw.Source()
	runs := 0
	for {
		job, ok := src.Next()
		if !ok {
			break
		}
		runDifferential(t, job.Scenario, job.Options)
		runs++
	}
	if runs != 120 {
		t.Fatalf("differential sweep executed %d variants, want 120", runs)
	}
}

// TestDifferentialToleranceSweep extends the equivalence proof to the
// monitor-tolerance axis: a non-default matching window must shift both
// implementations' classifications identically.
func TestDifferentialToleranceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 30-variant tolerance sweep differentially")
	}
	sw := ToleranceSweep()
	for i := range sw.Families {
		sw.Families[i].Base.Duration = 1 * time.Second
	}
	src := sw.Source()
	for {
		job, ok := src.Next()
		if !ok {
			break
		}
		runDifferential(t, job.Scenario, job.Options)
	}
}
