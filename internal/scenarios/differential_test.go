package scenarios

// Differential tests for the monitoring substrate: the same simulation is
// observed simultaneously by three monitor suites — the compiled-program
// suite (every goal formula lowered into one shared, hash-consed evaluation
// program, the production path), a per-monitor slot-indexed suite (one
// Stepper per goal), and a reference suite whose atoms evaluate through the
// string-keyed State API on every step.  Identical classifications across the
// ten thesis scenarios, the 120-variant DefaultSweep and the tolerance sweep
// prove the suite-level CSE and the per-worker program reuse changed the
// evaluation strategy, not the results.

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/temporal"
	"repro/internal/vehicle"
)

// buildReferenceSuite instantiates the Table 5.3 monitoring plan with
// reference (string-keyed) goal steppers.
func buildReferenceSuite(t *testing.T, period time.Duration, tolerance int) *monitor.Suite {
	t.Helper()
	suite := monitor.NewSuite()
	for _, spec := range MonitoringPlan() {
		parent, err := monitor.NewReference(spec.Parent.Goal, spec.Parent.Location, period)
		if err != nil {
			t.Fatalf("reference monitor %q: %v", spec.Parent.Goal.Name, err)
		}
		children := make([]*monitor.Monitor, 0, len(spec.Children))
		for _, c := range spec.Children {
			child, err := monitor.NewReference(c.Goal, c.Location, period)
			if err != nil {
				t.Fatalf("reference monitor %q: %v", c.Goal.Name, err)
			}
			children = append(children, child)
		}
		suite.Add(monitor.NewHierarchy(parent, tolerance, children...))
	}
	return suite
}

// runDifferential executes one scenario with all three suites attached to the
// same simulation and asserts identical detections and summaries.  A non-nil
// cache reuses one compiled program per tolerance across calls — exactly the
// Engine worker's reuse pattern — so the sweep-shaped tests also prove Reset
// restores a program to a freshly compiled state.
func runDifferential(t *testing.T, sc Scenario, opts Options, cache suiteCache) {
	t.Helper()

	s := NewSimulation(sc, opts)
	tol := opts.tolerance()
	slotSuite := buildSuite(Period, s.Bus.Schema(), tol)
	refSuite := buildReferenceSuite(t, Period, tol)

	var compiled *monitor.CompiledSuite
	if cache != nil {
		if cached, ok := cache[tol]; ok {
			cached.Reset()
			compiled = cached
		}
	}
	if compiled == nil {
		compiled = buildCompiledSuite(Period, s.Bus.Schema(), tol)
		if cache != nil {
			cache[tol] = compiled
		}
	}

	s.Observe(compiled)
	s.OnStep(func(_ time.Duration, st temporal.State) {
		slotSuite.Observe(st)
		refSuite.Observe(st)
	})
	collision := s.Bus.Schema().Intern(vehicle.SigCollision)
	s.StopWhen(func(_ time.Duration, st temporal.State) bool {
		return st.Slot(collision).AsBool()
	})

	duration := sc.Duration
	if duration <= 0 {
		duration = 20 * time.Second
	}
	s.RunDiscard(duration)
	slotSuite.Finish()
	refSuite.Finish()
	compiled.Finish()

	slotDetections, slotSummary := slotSuite.ClassifyAll()
	refDetections, refSummary := refSuite.ClassifyAll()
	progDetections, progSummary := compiled.ClassifyAll()

	if slotSummary != refSummary {
		t.Errorf("%s (%s): slot-indexed summary %v != reference summary %v",
			sc.Name, opts.Label(), slotSummary, refSummary)
	}
	if !reflect.DeepEqual(slotDetections, refDetections) {
		t.Errorf("%s (%s): slot-indexed detections diverge from the string-keyed reference\nslot: %#v\nref:  %#v",
			sc.Name, opts.Label(), slotDetections, refDetections)
	}
	if progSummary != slotSummary {
		t.Errorf("%s (%s): compiled-program summary %v != per-monitor summary %v",
			sc.Name, opts.Label(), progSummary, slotSummary)
	}
	if !reflect.DeepEqual(progDetections, slotDetections) {
		t.Errorf("%s (%s): compiled-program detections diverge from the per-monitor suite\nprogram: %#v\nmonitors: %#v",
			sc.Name, opts.Label(), progDetections, slotDetections)
	}
	if got, want := compiled.Report(), slotSuite.Report(); !reflect.DeepEqual(got, want) {
		t.Errorf("%s (%s): compiled-program violation report diverges from the per-monitor suite",
			sc.Name, opts.Label())
	}
	// The counting classifier used by summary-only runs must agree with the
	// detection-materializing one on every suite.
	if got := compiled.FastSummary(); got != progSummary {
		t.Errorf("%s (%s): FastSummary %v != ClassifyAll summary %v",
			sc.Name, opts.Label(), got, progSummary)
	}
	if got := slotSuite.FastSummary(); got != slotSummary {
		t.Errorf("%s (%s): per-monitor FastSummary %v != ClassifyAll summary %v",
			sc.Name, opts.Label(), got, slotSummary)
	}
}

// TestVehiclePlanProgramSharing pins the point of the compiled suite on the
// real monitoring plan: the Table 5.3 goal and subgoal formulas overlap
// heavily, so the shared program evaluates far fewer atoms per step than the
// per-monitor suite reads.
func TestVehiclePlanProgramSharing(t *testing.T) {
	cs := BuildSuiteWithSchema(Period, temporal.NewSchema())
	s := cs.Program().Stats()
	t.Logf("program stats: %+v", s)
	if s.Formulas < 30 {
		t.Fatalf("monitoring plan compiled %d formulas, want the full Table 5.3 plan (>= 30)", s.Formulas)
	}
	if s.Atoms*2 > s.AtomRefs {
		t.Errorf("weak atom sharing: %d unique atoms for %d references (want >= 2x sharing)", s.Atoms, s.AtomRefs)
	}
	if s.Nodes >= s.NodeRefs {
		t.Errorf("no node sharing: %d unique nodes for %d references", s.Nodes, s.NodeRefs)
	}
}

// TestDifferentialThesisScenarios proves detection equivalence on the ten
// thesis scenarios, in both the seeded-defect and corrected configurations.
// -short trims the runs; the full 20 s durations run in CI.
func TestDifferentialThesisScenarios(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		if testing.Short() {
			sc.Duration = 2 * time.Second
		}
		t.Run(sc.Name, func(t *testing.T) {
			runDifferential(t, sc, Options{}, nil)
			runDifferential(t, sc, Options{CorrectDefects: true}, nil)
		})
	}
}

// TestDifferentialDefaultSweep proves detection equivalence across every
// variant of the 120-variant DefaultSweep, reusing one compiled program
// across all variants the way an Engine worker does.  Durations are shortened
// so the population runs in test time (the full-length scenarios are covered
// by TestDifferentialThesisScenarios); every variant of the grid — all
// speeds, distances and defect configurations — is exercised.
func TestDifferentialDefaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all 120 DefaultSweep variants differentially")
	}
	sw := DefaultSweep()
	for i := range sw.Families {
		sw.Families[i].Base.Duration = 1 * time.Second
	}
	if sw.Size() != 120 {
		t.Fatalf("DefaultSweep size = %d, want 120", sw.Size())
	}
	cache := make(suiteCache)
	src := sw.Source()
	runs := 0
	for {
		job, ok := src.Next()
		if !ok {
			break
		}
		runDifferential(t, job.Scenario, job.Options, cache)
		runs++
	}
	if runs != 120 {
		t.Fatalf("differential sweep executed %d variants, want 120", runs)
	}
}

// TestDifferentialToleranceSweep extends the equivalence proof to the
// monitor-tolerance axis: a non-default matching window must shift all three
// implementations' classifications identically, with the compiled program
// reused per tolerance.
func TestDifferentialToleranceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 30-variant tolerance sweep differentially")
	}
	sw := ToleranceSweep()
	for i := range sw.Families {
		sw.Families[i].Base.Duration = 1 * time.Second
	}
	cache := make(suiteCache)
	src := sw.Source()
	for {
		job, ok := src.Next()
		if !ok {
			break
		}
		runDifferential(t, job.Scenario, job.Options, cache)
	}
}

// TestDifferentialDefectSweep extends the equivalence proof to the
// per-feature defect axis and the driver-schedule perturbations of the
// DefectSweep preset.
func TestDifferentialDefectSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the DefectSweep variants differentially")
	}
	sw := DefectSweep()
	for i := range sw.Families {
		sw.Families[i].Base.Duration = 1 * time.Second
	}
	cache := make(suiteCache)
	src := sw.Source()
	runs := 0
	for {
		job, ok := src.Next()
		if !ok {
			break
		}
		runDifferential(t, job.Scenario, job.Options, cache)
		runs++
	}
	if runs != sw.Size() {
		t.Fatalf("differential defect sweep executed %d variants, want %d", runs, sw.Size())
	}
}
