package scenarios

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vehicle"
)

// shortSweep builds a small sweep of short-duration scenario-7 variants so
// the engine tests exercise real monitored runs without 20 s simulations.
func shortSweep(t *testing.T) Sweep {
	t.Helper()
	base, ok := ScenarioByNumber(7)
	if !ok {
		t.Fatal("no scenario 7")
	}
	base.Duration = 1 * time.Second
	return Sweep{Families: []Family{{
		Base:            base,
		InitialSpeeds:   []float64{0, 1},
		ObjectDistances: []float64{-12, -9},
		OptionSets:      []Options{{}, {CorrectDefects: true}},
	}}}
}

// TestEngineStreamMatchesBatch is the streaming-vs-batch equivalence check:
// the same jobs produce element-wise identical ordered results and the same
// aggregate through Engine.Stream (lazy source) as through the batch
// Runner.Run path.  CI runs it under -race, which is the evidence that the
// dispatcher / worker / collector split is race-clean.
func TestEngineStreamMatchesBatch(t *testing.T) {
	sw := shortSweep(t)
	jobs := sw.Jobs()
	batch := Runner{Workers: 2}.Run(jobs)

	var streamed []StreamResult
	err := NewEngine(WithWorkers(4)).Stream(context.Background(), sw.Source(), SinkFunc(
		func(sr StreamResult) error {
			streamed = append(streamed, sr)
			return nil
		}))
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if len(streamed) != len(jobs) {
		t.Fatalf("streamed %d results, want %d", len(streamed), len(jobs))
	}
	for i, sr := range streamed {
		if sr.Index != i {
			t.Fatalf("result %d delivered with index %d: ordered mode must deliver in source order", i, sr.Index)
		}
		if sr.Job.Scenario.Name != jobs[i].Scenario.Name || sr.Job.Options != jobs[i].Options {
			t.Errorf("job %d is %q/%+v, want %q/%+v", i, sr.Job.Scenario.Name, sr.Job.Options, jobs[i].Scenario.Name, jobs[i].Options)
		}
		got, want := sr.Result, batch[i]
		if got.Summary != want.Summary || got.Collision != want.Collision || got.Steps != want.Steps {
			t.Errorf("result %d: stream (%v,%v,%d) != batch (%v,%v,%d)",
				i, got.Summary, got.Collision, got.Steps, want.Summary, want.Collision, want.Steps)
		}
	}

	results := make([]Result, len(streamed))
	for i, sr := range streamed {
		results[i] = sr.Result
	}
	if got, want := Collect(jobs, results), Collect(jobs, batch); got.Aggregate != want.Aggregate ||
		got.Collisions != want.Collisions || got.EarlyTerminations != want.EarlyTerminations {
		t.Errorf("streamed aggregate %+v != batch aggregate %+v", got, want)
	}
}

// TestEngineUnorderedDeliversAll checks that unordered delivery yields every
// job exactly once with the same per-index results as the ordered path.
func TestEngineUnorderedDeliversAll(t *testing.T) {
	sw := shortSweep(t)
	jobs := sw.Jobs()
	batch := Runner{Workers: 2}.Run(jobs)

	seen := make(map[int]Result)
	err := NewEngine(WithWorkers(4), WithUnordered()).Stream(context.Background(), sw.Source(), SinkFunc(
		func(sr StreamResult) error {
			if _, dup := seen[sr.Index]; dup {
				return fmt.Errorf("index %d delivered twice", sr.Index)
			}
			seen[sr.Index] = sr.Result
			return nil
		}))
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if len(seen) != len(jobs) {
		t.Fatalf("delivered %d results, want %d", len(seen), len(jobs))
	}
	for i, want := range batch {
		got, ok := seen[i]
		if !ok {
			t.Fatalf("index %d never delivered", i)
		}
		if got.Summary != want.Summary || got.Collision != want.Collision {
			t.Errorf("result %d: unordered (%v,%v) != batch (%v,%v)", i, got.Summary, got.Collision, want.Summary, want.Collision)
		}
	}
}

// TestEngineCancellation cancels a stream mid-sweep and checks the drain is
// clean: Stream returns the context error, every dispatched job is still
// delivered (the delivered indices are a contiguous prefix in ordered mode),
// and the Accumulator holds a valid partial aggregate of exactly the
// delivered runs.
func TestEngineCancellation(t *testing.T) {
	sw := shortSweep(t)
	total := sw.Size()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var acc Accumulator
	var delivered []int
	collisions := 0
	engine := NewEngine(WithWorkers(1), WithRetention(SummaryOnly), WithProgress(func(completed int) {
		if completed == 2 {
			cancel()
		}
	}))
	err := engine.Stream(ctx, sw.Source(), Tee(&acc, SinkFunc(func(sr StreamResult) error {
		delivered = append(delivered, sr.Index)
		if sr.Result.Collision {
			collisions++
		}
		return nil
	})))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Stream after cancel returned %v, want context.Canceled", err)
	}
	if len(delivered) < 2 || len(delivered) >= total {
		t.Fatalf("delivered %d of %d runs; cancellation at 2 should stop the sweep partway", len(delivered), total)
	}
	for i, idx := range delivered {
		if idx != i {
			t.Errorf("delivered index %d at position %d: a cancelled ordered stream must still be a contiguous prefix", idx, i)
		}
	}
	if acc.Runs() != len(delivered) {
		t.Errorf("accumulator folded %d runs, sink saw %d", acc.Runs(), len(delivered))
	}
	if acc.Collisions() != collisions {
		t.Errorf("accumulator counted %d collisions, sink saw %d", acc.Collisions(), collisions)
	}
	if got := acc.SweepResult(); got.Collisions != collisions || got.Jobs != nil || got.Results != nil {
		t.Errorf("partial SweepResult = %+v, want collision count %d and no retained per-run state", got, collisions)
	}
}

// TestEngineSummaryOnlyMatchesKeepTrace checks the retention policies agree
// on everything SummaryOnly retains: per-run summaries, collision flags, step
// counts and early-termination verdicts are identical, and only the trace,
// suite and detections are dropped.
func TestEngineSummaryOnlyMatchesKeepTrace(t *testing.T) {
	sw := shortSweep(t)

	run := func(r Retention) []Result {
		var out []Result
		err := NewEngine(WithWorkers(2), WithRetention(r)).Stream(
			context.Background(), sw.Source(), SinkFunc(func(sr StreamResult) error {
				out = append(out, sr.Result)
				return nil
			}))
		if err != nil {
			t.Fatalf("Stream(%v): %v", r, err)
		}
		return out
	}
	full := run(KeepTrace)
	slim := run(SummaryOnly)
	if len(full) != len(slim) {
		t.Fatalf("result counts differ: %d vs %d", len(full), len(slim))
	}
	for i := range full {
		f, s := full[i], slim[i]
		if f.Summary != s.Summary {
			t.Errorf("run %d: SummaryOnly summary %v != KeepTrace %v", i, s.Summary, f.Summary)
		}
		if f.Collision != s.Collision || f.Steps != s.Steps || f.TerminatedEarly() != s.TerminatedEarly() {
			t.Errorf("run %d: outcome fields differ: (%v,%d,%v) vs (%v,%d,%v)",
				i, s.Collision, s.Steps, s.TerminatedEarly(), f.Collision, f.Steps, f.TerminatedEarly())
		}
		if f.Trace == nil || f.Suite == nil || f.Detections == nil {
			t.Errorf("run %d: KeepTrace must retain trace, suite and detections", i)
		}
		if s.Trace != nil || s.Suite != nil || s.Detections != nil {
			t.Errorf("run %d: SummaryOnly must drop trace, suite and detections", i)
		}
		if f.Trace.Len() != s.Steps {
			t.Errorf("run %d: retained trace has %d states, SummaryOnly counted %d steps", i, f.Trace.Len(), s.Steps)
		}
	}
}

// TestEngineSinkError checks that a sink error cancels dispatch and is
// returned from Stream.
func TestEngineSinkError(t *testing.T) {
	sw := shortSweep(t)
	boom := errors.New("sink failed")
	calls := 0
	err := NewEngine(WithWorkers(2), WithRetention(SummaryOnly)).Stream(
		context.Background(), sw.Source(), SinkFunc(func(StreamResult) error {
			calls++
			return boom
		}))
	if !errors.Is(err, boom) {
		t.Fatalf("Stream returned %v, want the sink error", err)
	}
	if calls != 1 {
		t.Errorf("sink called %d times after failing, want 1", calls)
	}
}

// TestFamilySourceMatchesVariants checks the lazy generator yields exactly
// the jobs of the materialized expansion, in the same order, across empty,
// partial and full axes.
func TestFamilySourceMatchesVariants(t *testing.T) {
	base, _ := ScenarioByNumber(1)
	families := []Family{
		{Base: base},
		{Base: base, Gears: []string{"D", "R"}},
		{
			Base:            base,
			InitialSpeeds:   []float64{4, 8},
			ObjectDistances: []float64{110, 80},
			ObjectSpeeds:    []float64{0, 2, 4},
			Gears:           []string{"D", "R"},
			OptionSets:      []Options{{}, {CorrectDefects: true}},
		},
	}
	for fi, f := range families {
		want := f.Variants()
		src := f.Source()
		for i, w := range want {
			got, ok := src.Next()
			if !ok {
				t.Fatalf("family %d: source exhausted at %d, want %d jobs", fi, i, len(want))
			}
			if got.Scenario.Name != w.Scenario.Name || got.Options != w.Options ||
				got.Scenario.InitialSpeed != w.Scenario.InitialSpeed ||
				got.Scenario.Gear != w.Scenario.Gear {
				t.Fatalf("family %d job %d: source %+v != variants %+v", fi, i, got, w)
			}
		}
		if _, ok := src.Next(); ok {
			t.Fatalf("family %d: source yields more than Variants()", fi)
		}
		if _, ok := src.Next(); ok {
			t.Fatalf("family %d: exhausted source must stay exhausted", fi)
		}
	}
}

// TestSweepSizeInvariant documents the variant-count invariant: for any mix
// of empty and partial axes, Sweep.Size() equals len(Sweep.Jobs()) and the
// lazy source yields exactly that many jobs.
func TestSweepSizeInvariant(t *testing.T) {
	base, _ := ScenarioByNumber(3)
	sweeps := []Sweep{
		{},
		{Families: []Family{{Base: base}}},
		{Families: []Family{
			{Base: base, InitialSpeeds: []float64{1, 2, 3}},
			{Base: base, Gears: []string{"D", "R"}, OptionSets: []Options{{}, {CorrectDefects: true}}},
			{Base: base},
		}},
		DefaultSweep(),
		WideSweep(),
		HugeSweep(),
	}
	for i, sw := range sweeps {
		if got, want := len(sw.Jobs()), sw.Size(); got != want {
			t.Errorf("sweep %d: len(Jobs()) = %d, Size() = %d", i, got, want)
		}
		n := 0
		for src := sw.Source(); ; n++ {
			if _, ok := src.Next(); !ok {
				break
			}
		}
		if n != sw.Size() {
			t.Errorf("sweep %d: source yielded %d jobs, Size() = %d", i, n, sw.Size())
		}
	}
}

// TestSweepPresets pins the preset grid sizes the -sweep-size flag selects.
func TestSweepPresets(t *testing.T) {
	for _, tc := range []struct {
		name string
		want int
	}{
		{"default", 120}, {"", 120}, {"wide", 360}, {"huge", 1296},
		{"tolerance", 30}, {"defects", 120},
	} {
		sw, err := SweepBySize(tc.name)
		if err != nil {
			t.Fatalf("SweepBySize(%q): %v", tc.name, err)
		}
		if sw.Size() != tc.want {
			t.Errorf("SweepBySize(%q).Size() = %d, want %d", tc.name, sw.Size(), tc.want)
		}
	}
	if _, err := SweepBySize("enormous"); err == nil {
		t.Error("unknown preset should be an error")
	}
	// Preset variant names must be unique — the regression that motivated
	// deriving labels from the full Options value.  The defects preset
	// additionally covers the defect-set and driver-schedule name parts.
	for _, preset := range []string{"huge", "defects"} {
		sw, _ := SweepBySize(preset)
		names := make(map[string]bool, sw.Size())
		for src := sw.Source(); ; {
			j, ok := src.Next()
			if !ok {
				break
			}
			if names[j.Scenario.Name] {
				t.Fatalf("%s preset: duplicate variant name %q", preset, j.Scenario.Name)
			}
			names[j.Scenario.Name] = true
		}
	}
}

// TestDefectSetAxis checks the per-feature defect axis end to end: the axis
// overrides each option set's Defects, the variants carry distinct names, and
// correcting a single subsystem actually changes that subsystem's seeded
// behaviour in the built simulation.
func TestDefectSetAxis(t *testing.T) {
	base, _ := ScenarioByNumber(1)
	f := Family{
		Base:       base,
		DefectSets: []DefectSet{{}, {CorrectCA: true}, {CorrectArbiter: true}},
	}
	jobs := f.Variants()
	if len(jobs) != 3 || f.Size() != 3 {
		t.Fatalf("defect axis produced %d variants (Size %d), want 3", len(jobs), f.Size())
	}
	if jobs[0].Options.Defects != (DefectSet{}) ||
		jobs[1].Options.Defects != (DefectSet{CorrectCA: true}) ||
		jobs[2].Options.Defects != (DefectSet{CorrectArbiter: true}) {
		t.Fatalf("defect axis did not override Options.Defects: %+v", jobs)
	}
	if jobs[0].Scenario.Name == jobs[1].Scenario.Name {
		t.Fatalf("defect variants share the name %q", jobs[0].Scenario.Name)
	}

	// CorrectDefects still wins over a partial set: the all-corrected run of
	// scenario 2 avoids the collision that the seeded system hits.
	sc2, _ := ScenarioByNumber(2)
	sc2.Duration = 20 * time.Second
	res := runJob(sc2, Options{CorrectDefects: true, Defects: DefectSet{CorrectCA: true}}, SummaryOnly)
	if res.Collision {
		t.Error("CorrectDefects must correct every subsystem regardless of Options.Defects")
	}
}

// TestDriverScheduleAxis checks the driver-perturbation axis: each variant
// runs a distinct schedule under a distinct name, and a shifted schedule
// actually shifts the run's behaviour.
func TestDriverScheduleAxis(t *testing.T) {
	base, _ := ScenarioByNumber(3)
	shifted := ShiftSchedule(base.Driver, 250*time.Millisecond)
	if shifted[1].At != base.Driver[1].At+250*time.Millisecond {
		t.Fatalf("ShiftSchedule moved action to %v, want %v", shifted[1].At, base.Driver[1].At+250*time.Millisecond)
	}
	if base.Driver[1].At == shifted[1].At {
		t.Fatal("ShiftSchedule must copy, not alias, the schedule")
	}

	f := Family{Base: base, Drivers: [][]vehicle.DriverAction{base.Driver, shifted}}
	jobs := f.Variants()
	if len(jobs) != 2 || f.Size() != 2 {
		t.Fatalf("driver axis produced %d variants (Size %d), want 2", len(jobs), f.Size())
	}
	if jobs[0].Scenario.Name == jobs[1].Scenario.Name {
		t.Fatalf("driver variants share the name %q", jobs[0].Scenario.Name)
	}
	if &jobs[1].Scenario.Driver[0] != &shifted[0] {
		t.Error("variant 1 should carry the shifted schedule")
	}

	// ShiftSchedule clamps at zero so a negative shift cannot schedule
	// actions before the start of the run.
	early := ShiftSchedule(base.Driver, -time.Hour)
	for _, a := range early {
		if a.At < 0 {
			t.Fatalf("negative shift produced action at %v", a.At)
		}
	}
}

// TestOptionsLabelCoversAllFields flips every Options field via reflection
// and asserts the label changes, so option sets differing in any current or
// future field can never produce colliding variant names.  Adding a field to
// Options without extending Label (and this test's flip table) fails here.
func TestOptionsLabelCoversAllFields(t *testing.T) {
	base := Options{}
	rt := reflect.TypeOf(base)
	flip := func(fv reflect.Value) bool {
		switch fv.Kind() {
		case reflect.Bool:
			fv.SetBool(!fv.Bool())
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			fv.SetInt(fv.Int() + 1)
		case reflect.Float32, reflect.Float64:
			fv.SetFloat(fv.Float() + 1)
		case reflect.String:
			fv.SetString(fv.String() + "x")
		default:
			return false
		}
		return true
	}
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		mod := base
		fv := reflect.ValueOf(&mod).Elem().Field(i)
		if fv.Kind() == reflect.Struct {
			// Struct-valued options (e.g. Defects): every leaf field must
			// independently change the label.
			for j := 0; j < fv.NumField(); j++ {
				sub := base
				sv := reflect.ValueOf(&sub).Elem().Field(i).Field(j)
				if !flip(sv) {
					t.Fatalf("Options field %s.%s has kind %s: extend this test's flip table",
						name, fv.Type().Field(j).Name, sv.Kind())
				}
				if sub.Label() == base.Label() {
					t.Errorf("Options.Label() ignores field %s.%s: label %q collides",
						name, fv.Type().Field(j).Name, base.Label())
				}
			}
			continue
		}
		if !flip(fv) {
			t.Fatalf("Options field %s has kind %s: extend this test's flip table", name, fv.Kind())
		}
		if mod.Label() == base.Label() {
			t.Errorf("Options.Label() ignores field %s: label %q collides", name, base.Label())
		}
	}
}

// TestSourceAdapters covers the SliceSource / ConcatSources plumbing.
func TestSourceAdapters(t *testing.T) {
	sc, _ := ScenarioByNumber(1)
	job := func(name string) Job {
		j := Job{Scenario: sc}
		j.Scenario.Name = name
		return j
	}
	src := ConcatSources(
		SliceSource(nil),
		SliceSource([]Job{job("a"), job("b")}),
		SliceSource(nil),
		SliceSource([]Job{job("c")}),
	)
	var got []string
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, j.Scenario.Name)
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("concat yielded %v, want [a b c]", got)
	}
	if _, ok := ConcatSources().Next(); ok {
		t.Error("empty concat should be exhausted")
	}
}

// TestTee checks fan-out order and first-error semantics.
func TestTee(t *testing.T) {
	var order []string
	mk := func(name string, err error) ResultSink {
		return SinkFunc(func(StreamResult) error {
			order = append(order, name)
			return err
		})
	}
	boom := errors.New("boom")
	if err := Tee(mk("a", nil), mk("b", boom), mk("c", nil)).Consume(StreamResult{}); !errors.Is(err, boom) {
		t.Fatalf("Tee returned %v, want the first sink error", err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("Tee called %v, want [a b] (stop at first error)", order)
	}
}

// TestEngineAccumulate covers the Accumulate convenience wrapper end to end
// against the batch bookkeeping.
func TestEngineAccumulate(t *testing.T) {
	sw := shortSweep(t)
	jobs := sw.Jobs()
	want := Collect(jobs, Runner{Workers: 2}.Run(jobs))

	acc, err := NewEngine(WithWorkers(2), WithRetention(SummaryOnly)).Accumulate(
		context.Background(), sw.Source())
	if err != nil {
		t.Fatalf("Accumulate: %v", err)
	}
	if acc.Runs() != len(jobs) {
		t.Errorf("Runs() = %d, want %d", acc.Runs(), len(jobs))
	}
	if acc.Summary() != want.Aggregate {
		t.Errorf("Summary() = %v, want %v", acc.Summary(), want.Aggregate)
	}
	if acc.Collisions() != want.Collisions || acc.EarlyTerminations() != want.EarlyTerminations {
		t.Errorf("counts = (%d,%d), want (%d,%d)",
			acc.Collisions(), acc.EarlyTerminations(), want.Collisions, want.EarlyTerminations)
	}
}

// TestEngineLargeSweepStreams is the acceptance check for the streaming
// redesign: a ≥1000-variant sweep evaluated through a lazy source with
// SummaryOnly retention, never materializing the job slice or retaining a
// trace.  Durations are shortened so the population runs in test time; the
// per-run cost is irrelevant here, only the streaming discipline.
func TestEngineLargeSweepStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("streams 1296 short scenario simulations")
	}
	sw := HugeSweep()
	for i := range sw.Families {
		sw.Families[i].Base.Duration = 20 * time.Millisecond
	}
	if sw.Size() < 1000 {
		t.Fatalf("huge sweep has %d variants, want >= 1000", sw.Size())
	}
	var maxRetained int
	acc, err := NewEngine(WithRetention(SummaryOnly), WithProgress(func(completed int) {
		// Nothing outside the Accumulator retains results; track that the
		// progress stream is monotone while the sweep is in flight.
		if completed > maxRetained {
			maxRetained = completed
		}
	})).Accumulate(context.Background(), sw.Source())
	if err != nil {
		t.Fatalf("Accumulate: %v", err)
	}
	if acc.Runs() != sw.Size() {
		t.Fatalf("streamed %d runs, want %d", acc.Runs(), sw.Size())
	}
	if maxRetained != sw.Size() {
		t.Errorf("progress reached %d, want %d", maxRetained, sw.Size())
	}
	if acc.Summary().Total() == 0 {
		t.Error("a huge-sweep population should classify at least one detection")
	}
}

// TestEngineCompletedStreamIgnoresLateCancel checks that a cancellation
// racing the tail of a fully-consumed source does not turn a complete stream
// into an error: every job was dispatched, completed and delivered, so
// Stream reports success.
func TestEngineCompletedStreamIgnoresLateCancel(t *testing.T) {
	sw := shortSweep(t)
	total := sw.Size()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	delivered := 0
	err := NewEngine(WithWorkers(2), WithRetention(SummaryOnly), WithProgress(func(completed int) {
		if completed == total {
			cancel() // fires after the last delivery, before Stream returns
		}
	})).Stream(ctx, sw.Source(), SinkFunc(func(StreamResult) error {
		delivered++
		return nil
	}))
	if err != nil {
		t.Fatalf("Stream over an exhausted source returned %v, want nil despite the late cancel", err)
	}
	if delivered != total {
		t.Fatalf("delivered %d of %d", delivered, total)
	}
}

// TestEngineOrderedBackpressure checks the ordered-mode window: when the
// first job is much slower than the rest, dispatch stalls instead of letting
// the out-of-order buffer grow O(completed).  With a window of 2*workers, at
// most 2*workers results can complete before the head of the line delivers.
//
// The engine runs at WithLanes(1): this test pins the scalar window bound,
// and lane batching deliberately holds a closed dynamics group back (waiting
// for equal-duration siblings to widen the batch), so under lanes the head
// group legitimately dispatches later and the window carries extra pending
// capacity (2*workers + lanes*maxGroupWidth).
func TestEngineOrderedBackpressure(t *testing.T) {
	base, ok := ScenarioByNumber(7)
	if !ok {
		t.Fatal("no scenario 7")
	}
	slow, fast := base, base
	slow.Duration = 2 * time.Second
	fast.Duration = 10 * time.Millisecond

	jobs := make([]Job, 64)
	jobs[0] = Job{Scenario: slow}
	for i := 1; i < len(jobs); i++ {
		jobs[i] = Job{Scenario: fast}
	}

	const workers = 4
	var pulled atomic.Int64
	inner := SliceSource(jobs)
	src := SourceFunc(func() (Job, bool) {
		j, ok := inner.Next()
		if ok {
			pulled.Add(1)
		}
		return j, ok
	})

	pulledAtHead := int64(-1)
	err := NewEngine(WithWorkers(workers), WithRetention(SummaryOnly), WithLanes(1)).Stream(
		context.Background(), src, SinkFunc(func(sr StreamResult) error {
			if sr.Index == 0 {
				// The head of the line delivers ~2 s in, long after every
				// fast job would have been pulled and completed were there
				// no backpressure.  The window must have held dispatch to
				// at most 2*workers jobs ahead.
				pulledAtHead = pulled.Load()
			}
			return nil
		}))
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	if pulledAtHead < 0 {
		t.Fatal("index 0 never delivered")
	}
	if max := int64(2*workers + 1); pulledAtHead > max {
		t.Errorf("dispatcher pulled %d jobs while the head of the line was running, want <= %d (window bound)", pulledAtHead, max)
	}
}
