package scenarios

// Zero-allocation regression gates for the evaluation hot path.  PR 5's
// contract is that the steady state of a summary-only sweep allocates
// nothing per simulation step — commits, typed handle traffic and the whole
// compiled-program observation run on the SoA register planes — and only
// O(1) bookkeeping per variant on a reused arena.  These tests pin that
// with testing.AllocsPerRun so a future change that reintroduces per-step
// allocation (a Value escaping to the heap, a plane copy growing, a monitor
// slice reallocating) fails loudly instead of showing up as a silent
// throughput regression.
//
// The gates are skipped under -short and under the race detector (whose
// instrumentation perturbs allocation counts).

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/temporal"
	"repro/internal/vehicle"
)

// skipIfAllocCountsUnreliable centralizes the -short / race-detector skips.
func skipIfAllocCountsUnreliable(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("allocation gate skipped with -short")
	}
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
}

// warmSimulation returns a scenario-1 simulation whose components have all
// stepped (every handle bound, every signal and enumeration interned).
func warmSimulation(t *testing.T) *sim.Simulation {
	t.Helper()
	sc, ok := ScenarioByNumber(1)
	if !ok {
		t.Fatal("scenario 1 missing")
	}
	s := NewSimulation(sc, Options{})
	s.RunDiscard(10 * time.Millisecond)
	return s
}

// TestZeroAllocBusCommit gates the per-step cost of making buffered writes
// visible on a vehicle-sized bus: handle writes of every kind plus the
// plane-memmove commit must not allocate.
func TestZeroAllocBusCommit(t *testing.T) {
	skipIfAllocCountsUnreliable(t)
	bus := warmSimulation(t).Bus
	speed := bus.NumVar(vehicle.SigVehicleSpeed)
	stopped := bus.BoolVar(vehicle.SigVehicleStopped)
	source := bus.StringVar(vehicle.SigAccelSource)

	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		speed.Write(float64(i))
		stopped.Write(i%2 == 0)
		source.Write(vehicle.SourceACC)
		bus.Commit()
	})
	if allocs != 0 {
		t.Errorf("Bus.Commit steady state allocates %v objects/op, want 0", allocs)
	}
}

// TestZeroAllocProgramObserve gates one observation of the full Table 5.3
// monitoring plan through the shared evaluation program: every atom read is
// a plane load and every verdict lands in a preallocated recorder.
func TestZeroAllocProgramObserve(t *testing.T) {
	skipIfAllocCountsUnreliable(t)
	state := temporal.NewState().
		SetBool(vehicle.SigAccelFromSubsystem, true).
		SetNumber(vehicle.SigVehicleAccel, 1.2).
		SetNumber(vehicle.SigVehicleJerk, 0.5).
		SetBool(vehicle.SigAccelSteeringAgreement, true).
		SetBool(vehicle.SigVehicleStopped, false).
		SetBool(vehicle.SigInForwardMotion, true).
		SetString(vehicle.SigAccelSource, vehicle.SourceACC).
		SetString(vehicle.SigSteerSource, vehicle.SourceNone)
	suite := BuildSuiteWithSchema(time.Millisecond, state.Schema())
	// Warm-up resolves lazy enumeration ids and settles the verdicts.
	for i := 0; i < 100; i++ {
		suite.Observe(state)
	}
	allocs := testing.AllocsPerRun(1000, func() { suite.Observe(state) })
	if allocs != 0 {
		t.Errorf("Program observe steady state allocates %v objects/op, want 0", allocs)
	}
}

// TestArenaVariantSteadyStateAllocs gates the arena-reused per-variant path:
// rewinding the arena, re-initialising the bus and simulating a 2 000-step
// variant end to end must cost O(1) allocations — the final bus snapshot and
// nothing proportional to the step count.  The bound of 16 objects per
// variant is ~0.008 per step; any per-step allocation would blow through it
// three orders of magnitude over.
func TestArenaVariantSteadyStateAllocs(t *testing.T) {
	skipIfAllocCountsUnreliable(t)
	sc, ok := ScenarioByNumber(1)
	if !ok {
		t.Fatal("scenario 1 missing")
	}
	sc.Duration = 2 * time.Second
	arena := newRunArena()
	// Warm-up: compile the suite, intern the vocabulary, grow the recorder
	// and scratch capacities to this variant's watermark.
	for i := 0; i < 2; i++ {
		arena.run(sc, Options{})
	}
	allocs := testing.AllocsPerRun(3, func() { arena.run(sc, Options{}) })
	if allocs > 16 {
		t.Errorf("arena-reused variant allocates %v objects/run over %d steps, want O(1) (<= 16)",
			allocs, int(sc.Duration/Period))
	}
}
