//go:build race

package scenarios

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation perturbs allocation counts; the
// zero-allocation gates skip themselves under it.
const raceEnabled = true
