package scenarios

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/monitor"
	"repro/internal/temporal"
)

// ---------------------------------------------------------------------------
// Streaming evaluation: job sources, result sinks, retention policies
// ---------------------------------------------------------------------------
//
// The thesis' emergent-safety claim is a population claim: residual emergence
// X/Y only shows up across many interconnected configurations.  The Engine is
// the evaluation path built for that population: jobs are pulled lazily from
// a JobSource (a 10k-variant grid never materializes a []Job), each Result is
// pushed to a ResultSink as it completes, and a trace-retention policy keeps
// sweep memory O(workers) instead of O(variants).

// Retention selects how much of each run's state a Result retains.
type Retention int

const (
	// KeepTrace retains the full state trace, monitor suite and detections
	// on every Result — today's Runner behaviour, required by the figure
	// extractors and the rendered Appendix D tables.
	KeepTrace Retention = iota
	// SummaryOnly retains only the scenario, step count, collision flag and
	// classification summary.  The simulation records no trace at all (the
	// monitors observe the live bus state), so a sweep's retained memory is
	// O(workers) instead of O(variants × steps).
	SummaryOnly
)

// String names the retention policy.
func (r Retention) String() string {
	if r == SummaryOnly {
		return "summary-only"
	}
	return "keep-trace"
}

// JobSource is a lazy, pull-based iterator of jobs.  Sources are consumed by
// a single goroutine; implementations need not be safe for concurrent use.
type JobSource interface {
	// Next returns the next job.  ok is false when the source is exhausted.
	Next() (job Job, ok bool)
}

// SourceFunc adapts a function to a JobSource.
type SourceFunc func() (Job, bool)

// Next implements JobSource.
func (f SourceFunc) Next() (Job, bool) { return f() }

// SliceSource returns a JobSource that yields the given jobs in order.
func SliceSource(jobs []Job) JobSource {
	i := 0
	return SourceFunc(func() (Job, bool) {
		if i >= len(jobs) {
			return Job{}, false
		}
		j := jobs[i]
		i++
		return j, true
	})
}

// ConcatSources chains sources, exhausting each before starting the next.
func ConcatSources(srcs ...JobSource) JobSource {
	i := 0
	return SourceFunc(func() (Job, bool) {
		for i < len(srcs) {
			if j, ok := srcs[i].Next(); ok {
				return j, true
			}
			i++
		}
		return Job{}, false
	})
}

// StreamResult pairs a completed run with the job that produced it and the
// job's input-order index.
type StreamResult struct {
	// Index is the zero-based position of the job in source order.
	Index int
	// Job is the executed job.
	Job Job
	// Result is the run outcome, after the Engine's retention policy has
	// been applied.
	Result Result
}

// ResultSink receives completed runs.  The Engine invokes Consume from a
// single goroutine, so implementations need no internal locking; a non-nil
// error cancels the stream and is returned from Engine.Stream.
type ResultSink interface {
	Consume(StreamResult) error
}

// SinkFunc adapts a function to a ResultSink.
type SinkFunc func(StreamResult) error

// Consume implements ResultSink.
func (f SinkFunc) Consume(sr StreamResult) error { return f(sr) }

// Tee returns a sink that forwards every result to each sink in order,
// stopping at the first error.
func Tee(sinks ...ResultSink) ResultSink {
	return SinkFunc(func(sr StreamResult) error {
		for _, s := range sinks {
			if err := s.Consume(sr); err != nil {
				return err
			}
		}
		return nil
	})
}

// Engine executes scenario jobs from a JobSource on a fixed-size worker pool
// and streams each Result to a ResultSink as it completes.  Construct it with
// NewEngine and functional options; the zero-value-equivalent NewEngine() is
// ready to use.
//
// Every job is fully isolated (each run owns its sim engine, bus and monitor
// suite), so jobs execute concurrently without synchronisation; the sink is
// invoked from a single collector goroutine.
type Engine struct {
	workers   int
	retention Retention
	ordered   bool
	grouping  bool
	lanes     int
	progress  func(completed int)
	cache     *variantCache

	statsMu   sync.Mutex
	stats     GroupStats
	laneStats LaneStats
}

// EngineOption configures an Engine.
type EngineOption func(*Engine)

// WithWorkers sets the worker-pool size.  Non-positive values default to
// runtime.GOMAXPROCS(0).
func WithWorkers(n int) EngineOption { return func(e *Engine) { e.workers = n } }

// WithRetention sets the trace-retention policy applied to every Result.
func WithRetention(r Retention) EngineOption { return func(e *Engine) { e.retention = r } }

// WithProgress registers a callback invoked from the collector goroutine
// after each result is delivered, with the number of results delivered so
// far.
func WithProgress(fn func(completed int)) EngineOption {
	return func(e *Engine) { e.progress = fn }
}

// WithResultCache memoizes summary-only Results keyed by the variant label
// (scenario name, scheduled duration and the full Options label), so a job
// whose label was already evaluated — a re-streamed sweep on the same Engine,
// or duplicate variants across concatenated sources — is served from the
// cache instead of being simulated again.  The cache lives for the Engine's
// lifetime and is shared by all workers; CacheStats surfaces its hit/miss
// counters.
//
// Only SummaryOnly runs are memoized (a KeepTrace Result owns its trace and
// suite, which must not be shared between results).  Callers are responsible
// for variant labels identifying configurations: every sweep generator's
// names do (variantName covers all axes and options), but hand-built jobs
// that reuse a name across different configurations must not enable the
// cache.
func WithResultCache() EngineOption {
	return func(e *Engine) { e.cache = newVariantCache() }
}

// WithGrouping enables or disables dynamics-grouped execution (enabled by
// default).  When enabled, consecutive jobs whose DynamicsKeys are equal —
// e.g. the K tolerance variants of one sweep family — are dispatched as one
// group and executed as a single simulation pass whose recorded trajectory
// is classified once per job at that job's own tolerance, so a K-tolerance
// sweep pays for ~1/K the simulation work.  Every job still produces its own
// StreamResult under its own index and Job.Key, in source order, so sinks,
// caches, sharding and the distributed merge observe byte-identical output
// either way (the grouped-vs-ungrouped differential tests are the proof).
// Grouping applies only under SummaryOnly retention; KeepTrace results own
// their suites and always run per job.
func WithGrouping(enabled bool) EngineOption { return func(e *Engine) { e.grouping = enabled } }

// defaultLaneWidth is the lane-batch width summary-only engines use unless
// WithLanes overrides it.  Four lanes amortize the per-tick commit, program
// step and observer dispatch well while keeping the widened register planes
// comfortably inside cache.
const defaultLaneWidth = 4

// WithLanes sets the lane-batch width: how many consecutive dynamics groups
// of equal scheduled duration are widened into one lockstep simulation whose
// register planes carry all of their trajectories side by side.  Unlike
// grouping — which only helps when neighbouring jobs share a DynamicsKey —
// lane batching accelerates sweeps whose every variant has a different
// trajectory (speed/distance/defect axes): N variants pay one commit, one
// lane-program step and one observer dispatch per tick between them.
//
// Lane batching rides on grouped dispatch and applies only under SummaryOnly
// retention, where it is ON by default at defaultLaneWidth; n <= 1 disables
// it (every group runs on the scalar arena path) and widths above
// temporal.MaxLanes are clamped.  Results stream under each job's original
// index and Job.Key either way, so sinks, caches, sharding and the
// distributed merge observe byte-identical output — the laned-vs-scalar
// differential tests are the proof.
func WithLanes(n int) EngineOption {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		if n > temporal.MaxLanes {
			n = temporal.MaxLanes
		}
		e.lanes = n
	}
}

// WithUnordered delivers results to the sink as they complete instead of in
// source order.  Unordered delivery never buffers completed runs, so a sink
// sees each result at the earliest possible moment; ordered delivery (the
// default) preserves the Runner's deterministic input-order guarantee at the
// cost of buffering at most O(workers) out-of-order results.
func WithUnordered() EngineOption { return func(e *Engine) { e.ordered = false } }

// NewEngine returns an Engine with the given options applied.  The defaults
// are GOMAXPROCS workers, KeepTrace retention, ordered delivery,
// dynamics-grouped execution and lane batching at defaultLaneWidth (active
// only under SummaryOnly retention).
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{ordered: true, grouping: true, lanes: defaultLaneWidth}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// workerCount resolves the effective pool size.
func (e *Engine) workerCount() int {
	if e.workers > 0 {
		return e.workers
	}
	return runtime.GOMAXPROCS(0)
}

// laneWidth resolves the effective lane-batch width: lane batching rides on
// grouped summary-only dispatch and is otherwise inert.
func (e *Engine) laneWidth() int {
	if e.lanes > 1 && e.grouping && e.retention == SummaryOnly {
		return e.lanes
	}
	return 1
}

// task is one dispatched unit of work.  A grouped task is a run of
// consecutive jobs sharing a DynamicsKey (one job when grouping is off or
// the stream's neighbours differ); a lane-batched task (groups != nil) is a
// run of consecutive dynamics groups with equal scheduled duration, executed
// as one lane-widened simulation.  idx is the source index of the first job;
// a task's jobs are contiguous in source order either way, so job i of the
// flattened task streams under index idx+i.
type task struct {
	idx    int
	jobs   []Job
	groups [][]Job
}

// scheduledDuration normalizes a scenario's run length the way every
// execution path does before simulating.
func scheduledDuration(sc Scenario) time.Duration {
	if sc.Duration <= 0 {
		return DefaultDuration
	}
	return sc.Duration
}

// maxGroupWidth bounds how many jobs one dynamics group may carry.  The
// bound keeps per-group memory O(1) and — because the ordered dispatcher
// holds one window token per undispatched grouped job — guarantees the
// window can never be exhausted by the pending group alone, whatever the
// worker count.
const maxGroupWidth = 16

// Stream pulls jobs from src until it is exhausted or ctx is cancelled,
// executes them on the worker pool, and delivers each Result to sink.  It
// returns nil once every job has been delivered; a cancellation that fires
// only after the source is fully consumed does not turn a complete stream
// into an error.
//
// Cancellation drains cleanly: in-flight jobs finish and their results are
// still delivered, no goroutine is leaked, and Stream returns ctx.Err() — so
// a sink such as an Accumulator holds a valid partial aggregate of every run
// that completed.  A sink error likewise stops dispatch, drains in-flight
// work without further deliveries, and is returned.
func (e *Engine) Stream(ctx context.Context, src JobSource, sink ResultSink) error {
	// stop cancels dispatch on sink errors without requiring callers to
	// pass a cancellable context.
	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() { stopOnce.Do(func() { close(stop) }) }
	defer cancel()

	workers := e.workerCount()
	tasks := make(chan task)
	results := make(chan StreamResult, workers)

	// In ordered mode the dispatcher additionally acquires a window token
	// per job, released when the job's result is delivered, so dispatch can
	// run at most window jobs ahead of in-order delivery.  Without it one
	// slow run would let faster workers race ahead and the out-of-order
	// buffer would grow O(completed), not O(workers).  The extra tokens
	// cover the dispatcher's pending work, whose jobs hold tokens before
	// they are dispatched — one dynamics group, or with lane batching up to
	// e.lanes groups accumulating toward one widened task: even if all of it
	// is pending, 2*workers tokens remain in circulation, so batching can
	// never starve the window.
	var window chan struct{}
	if e.ordered {
		pendingCap := maxGroupWidth
		if e.laneWidth() > 1 {
			pendingCap = e.laneWidth() * maxGroupWidth
		}
		window = make(chan struct{}, 2*workers+pendingCap)
	}

	// exhausted records that the dispatcher consumed the whole source AND
	// dispatched every job (including a final pending group).  The write is
	// ordered before close(tasks), which is ordered before close(results),
	// which is ordered before the collector's read below.
	exhausted := false

	// Dispatcher: the only goroutine that touches src.  With grouping
	// active it batches consecutive jobs whose DynamicsKeys match into one
	// group; a group closes when the key changes, the width bound is
	// reached, or the source ends.  With lane batching active, closed
	// groups additionally accumulate into a lane batch — up to laneWidth
	// consecutive groups with equal scheduled duration, dispatched as one
	// widened task; a duration change or the source's end flushes the
	// partial batch.  Dispatch order (and therefore result order) is
	// exactly source order in every mode.
	go func() {
		defer close(tasks)
		grouped := e.grouping && e.retention == SummaryOnly
		laneWidth := e.laneWidth()
		var (
			group    []Job
			groupKey string
			start    int

			batch      [][]Job
			batchStart int
			batchDur   time.Duration
		)
		send := func(t task) bool {
			select {
			case tasks <- t:
				return true
			case <-ctx.Done():
			case <-stop:
			}
			return false
		}
		// sendBatch dispatches the pending lane batch; the slices are handed
		// to the worker, never reused.
		sendBatch := func() bool {
			if len(batch) == 0 {
				return true
			}
			t := task{idx: batchStart, groups: batch}
			batch = nil
			return send(t)
		}
		// flush closes the pending group: dispatched directly in grouped
		// mode, folded into the lane batch (flushing it on a scheduled-
		// duration mismatch or at full width) in laned mode.
		flush := func() bool {
			if len(group) == 0 {
				return true
			}
			if laneWidth <= 1 {
				t := task{idx: start, jobs: group}
				group = nil
				return send(t)
			}
			d := scheduledDuration(group[0].Scenario)
			if len(batch) > 0 && d != batchDur {
				if !sendBatch() {
					return false
				}
			}
			if len(batch) == 0 {
				batchStart, batchDur = start, d
			}
			batch = append(batch, group)
			group = nil
			if len(batch) == laneWidth {
				return sendBatch()
			}
			return true
		}
		for idx := 0; ; idx++ {
			if e.ordered {
				select {
				case window <- struct{}{}:
				case <-ctx.Done():
					return
				case <-stop:
					return
				}
			} else {
				select {
				case <-ctx.Done():
					return
				case <-stop:
					return
				default:
				}
			}
			job, ok := src.Next()
			if !ok {
				if flush() && sendBatch() {
					exhausted = true
				}
				return
			}
			if !grouped {
				if !send(task{idx: idx, jobs: []Job{job}}) {
					return
				}
				continue
			}
			key := job.DynamicsKey()
			if len(group) > 0 && (key != groupKey || len(group) == maxGroupWidth) {
				if !flush() {
					return
				}
			}
			if len(group) == 0 {
				start, groupKey = idx, key
			}
			group = append(group, job)
		}
	}()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			e.runWorker(tasks, results)
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector: the only goroutine that touches the sink.  In ordered mode
	// out-of-order completions are buffered until the next source index
	// arrives; dispatched indices are contiguous and every dispatched job
	// completes, so the buffer always drains (and holds at most O(workers)
	// entries).
	var (
		sinkErr   error
		delivered int
		pending   map[int]StreamResult
		next      int
	)
	if e.ordered {
		pending = make(map[int]StreamResult, workers)
	}
	deliver := func(sr StreamResult) {
		if sinkErr != nil {
			return
		}
		if err := sink.Consume(sr); err != nil {
			sinkErr = err
			cancel()
			return
		}
		delivered++
		if e.progress != nil {
			e.progress(delivered)
		}
	}
	for sr := range results {
		if !e.ordered {
			deliver(sr)
			continue
		}
		pending[sr.Index] = sr
		for {
			buffered, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			deliver(buffered)
			// Release the delivered job's window token so the dispatcher
			// can pull the next one.  Every received result holds exactly
			// one token, so this never blocks.
			<-window
		}
	}

	if sinkErr != nil {
		return sinkErr
	}
	if exhausted {
		// Every job was dispatched, completed and delivered: the stream is
		// complete even if ctx was cancelled while the tail drained.
		return nil
	}
	return ctx.Err()
}

// arenaPool recycles run arenas across Stream calls and Engine lifetimes:
// an arena's schema, handle table and compiled programs depend on nothing
// job-specific, so a worker borrows one for the duration of a stream and
// returns it, and repeated sweeps (tests, benchmarks, a long-lived service
// evaluating batch after batch) skip the per-worker setup entirely.
var arenaPool = sync.Pool{New: func() any { return newRunArena() }}

// laneArenaPool recycles lane arenas the same way.  Widths can differ across
// Engines, so the pool is width-checked on borrow: a mismatched arena is
// dropped (for the GC) and a fresh one built at the requested width.
var laneArenaPool sync.Pool

// borrowLaneArena fetches a lane arena of the given width from the pool,
// building one when the pool is empty or holds a different width.
func borrowLaneArena(lanes int) *laneArena {
	if a, _ := laneArenaPool.Get().(*laneArena); a != nil && a.lanes == lanes {
		return a
	}
	return newLaneArena(lanes)
}

// runWorker executes dispatched jobs until the task channel closes.  Under
// SummaryOnly retention the worker borrows a run arena — one schema, bus,
// component set and compiled program per tolerance, rewound between variants
// — so the per-variant cost is the simulation itself, not its construction.
// KeepTrace runs build fresh state per job (the Result retains the trace and
// suite) and reuse only the compiled monitor suites via the suite cache.
func (e *Engine) runWorker(tasks <-chan task, results chan<- StreamResult) {
	if e.retention == SummaryOnly {
		arena := arenaPool.Get().(*runArena)
		defer arenaPool.Put(arena)
		// The lane arena is borrowed lazily on the first lane-batched task:
		// a stream whose batches all degenerate to scalar dispatch (lanes
		// disabled, ragged tails) never pays for one.
		var lanes *laneArena
		defer func() {
			if lanes != nil {
				laneArenaPool.Put(lanes)
			}
		}()
		for t := range tasks {
			if t.groups != nil {
				if lanes == nil {
					lanes = borrowLaneArena(e.laneWidth())
				}
				e.runLaneTask(arena, lanes, t, results)
				continue
			}
			e.runGroupTask(arena, t, results)
		}
		return
	}
	cache := make(suiteCache)
	for t := range tasks {
		for i, job := range t.jobs {
			res := runJobCached(job.Scenario, job.Options, e.retention, cache)
			results <- StreamResult{Index: t.idx + i, Job: job, Result: res}
		}
	}
}

// runGroupTask executes one dispatched dynamics group on the worker's arena.
// Cache hits are resolved per job first; the remaining jobs run as one
// simulation pass (arena.runGroup) and are stored back, and every job's
// result streams under its own index and key — the collector, the result
// cache and the distributed protocol never see grouping at all.
func (e *Engine) runGroupTask(arena *runArena, t task, results chan<- StreamResult) {
	if len(t.jobs) == 1 {
		// Width-1 groups (grouping off, or no equal-dynamics neighbour) take
		// the exact per-variant path of ungrouped execution.
		job := t.jobs[0]
		res, hit := e.cache.lookup(job)
		sims := 0
		if !hit {
			res = arena.run(job.Scenario, job.Options)
			e.cache.store(job, res)
			sims = 1
		}
		e.recordGroup(1, sims)
		results <- StreamResult{Index: t.idx, Job: job, Result: res}
		return
	}

	out := make([]Result, len(t.jobs))
	var missJobs []Job
	var missIdx []int
	for i, job := range t.jobs {
		if res, hit := e.cache.lookup(job); hit {
			out[i] = res
		} else {
			missJobs = append(missJobs, job)
			missIdx = append(missIdx, i)
		}
	}
	sims := 0
	if len(missJobs) > 0 {
		// The misses are a subset of one dynamics group, so they still share
		// a DynamicsKey and one pass serves them all.
		miss := make([]Result, len(missJobs))
		arena.runGroup(missJobs, miss)
		sims = 1
		for k, i := range missIdx {
			out[i] = miss[k]
			e.cache.store(missJobs[k], miss[k])
		}
	}
	e.recordGroup(len(t.jobs), sims)
	for i, job := range t.jobs {
		results <- StreamResult{Index: t.idx + i, Job: job, Result: out[i]}
	}
}

// runLaneTask executes one lane batch — consecutive dynamics groups with
// equal scheduled duration — on the worker's lane arena.  Cache hits are
// resolved per job first; a group whose jobs all hit drops out of the batch
// entirely.  The surviving groups' miss subsets (each still sharing its
// group's DynamicsKey) run as ONE lane-widened simulation, one group per
// lane; when at most one group survives, the batch falls back to the scalar
// arena path (a ragged batch — the lane harness would be stepping a single
// lane).  Every job's result streams under its own index and key, and
// GroupStats are recorded per group exactly as grouped dispatch records
// them, so laning is invisible to the collector, the cache, sharding and
// the distributed merge.
func (e *Engine) runLaneTask(arena *runArena, la *laneArena, t task, results chan<- StreamResult) {
	total := 0
	for _, g := range t.groups {
		total += len(g)
	}
	out := make([]Result, total)

	// Per-group cache resolution, preserving flat job order.
	var (
		live    [][]Job // miss subset per surviving group
		liveIdx [][]int // flat out-indices of those misses
		misses  int
	)
	flat := 0
	for _, g := range t.groups {
		var missJobs []Job
		var missIdx []int
		for _, job := range g {
			if res, hit := e.cache.lookup(job); hit {
				out[flat] = res
			} else {
				missJobs = append(missJobs, job)
				missIdx = append(missIdx, flat)
			}
			flat++
		}
		sims := 0
		if len(missJobs) > 0 {
			sims = 1
			live = append(live, missJobs)
			liveIdx = append(liveIdx, missIdx)
			misses += len(missJobs)
		}
		e.recordGroup(len(g), sims)
	}

	switch {
	case len(live) == 0:
		// Fully cached batch: nothing to simulate.
	case len(live) == 1:
		// Ragged: one surviving group widens nothing; the scalar grouped
		// path is the faster (and identical) execution.
		miss := make([]Result, len(live[0]))
		arena.runGroup(live[0], miss)
		for k, fi := range liveIdx[0] {
			out[fi] = miss[k]
			e.cache.store(live[0][k], miss[k])
		}
		e.recordLaneBatch(0, 0, 1)
	default:
		miss := make([]Result, misses)
		la.run(live, miss)
		mi := 0
		for gi := range live {
			for k := range live[gi] {
				out[liveIdx[gi][k]] = miss[mi]
				e.cache.store(live[gi][k], miss[mi])
				mi++
			}
		}
		e.recordLaneBatch(1, len(live), 0)
	}

	flat = 0
	for _, g := range t.groups {
		for _, job := range g {
			results <- StreamResult{Index: t.idx + flat, Job: job, Result: out[flat]}
			flat++
		}
	}
}

// recordGroup folds one executed group into the Engine's GroupStats.  Only
// grouped dispatch is recorded: with grouping disabled the stats stay zero,
// so they always describe what grouping did rather than counting plain
// per-job execution as width-1 groups.
func (e *Engine) recordGroup(jobs, sims int) {
	if !e.grouping {
		return
	}
	e.statsMu.Lock()
	e.stats.Groups++
	e.stats.Jobs += jobs
	e.stats.Sims += sims
	e.statsMu.Unlock()
}

// ---------------------------------------------------------------------------
// Per-variant result memoization (the ResultSink seam's cache)
// ---------------------------------------------------------------------------

// cachedSummary is the memoized, retention-independent part of a summary-only
// Result.  The Scenario itself is rebuilt from the incoming job, so a cache
// hit returns a Result indistinguishable from a fresh run of that job.
type cachedSummary struct {
	steps     int
	summary   monitor.Summary
	collision bool
}

// variantCache memoizes summary-only results keyed by variant label.  It is
// shared across an Engine's workers; a run costs milliseconds, so one mutex
// around the map is invisible next to the work it saves.
type variantCache struct {
	mu     sync.Mutex
	m      map[string]cachedSummary
	hits   int
	misses int
}

func newVariantCache() *variantCache { return &variantCache{m: make(map[string]cachedSummary)} }

// key identifies a variant.  It is the job's canonical variant key — the
// scenario name (which every sweep generator derives from the full parameter
// assignment), the effective duration and the options label — shared with
// distributed sharding and sink deduplication so "already proved" means the
// same thing everywhere.
func (c *variantCache) key(job Job) string { return job.Key() }

// lookup returns the memoized Result for the job's variant label.  A nil
// cache (the default Engine) never hits.
func (c *variantCache) lookup(job Job) (Result, bool) {
	if c == nil {
		return Result{}, false
	}
	key := c.key(job)
	c.mu.Lock()
	cs, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	if !ok {
		return Result{}, false
	}
	sc := job.Scenario
	if sc.Duration <= 0 {
		sc.Duration = DefaultDuration
	}
	return Result{Scenario: sc, Steps: cs.steps, Summary: cs.summary, Collision: cs.collision}, true
}

// store memoizes a freshly computed summary-only result.
func (c *variantCache) store(job Job, res Result) {
	if c == nil {
		return
	}
	key := c.key(job)
	c.mu.Lock()
	if _, ok := c.m[key]; !ok {
		c.m[key] = cachedSummary{steps: res.Steps, summary: res.Summary, collision: res.Collision}
	}
	c.mu.Unlock()
}

// SeedResult memoizes an already-proved summary-only result under the job's
// variant key, exactly as if this Engine had computed it: a later stream that
// reaches the same key replays the seeded summary instead of simulating.  It
// is the re-queue fast path of distributed execution — a replacement worker
// is seeded with every variant any worker already proved, so it only pays
// for the dead shard's genuinely unfinished work.  Seeding an Engine built
// without WithResultCache is a no-op, as is re-seeding a key that is already
// cached.
func (e *Engine) SeedResult(job Job, res Result) { e.cache.store(job, res) }

// CacheStats returns the result cache's hit and miss counts (zero when the
// Engine was built without WithResultCache).
func (e *Engine) CacheStats() (hits, misses int) {
	if e.cache == nil {
		return 0, 0
	}
	e.cache.mu.Lock()
	defer e.cache.mu.Unlock()
	return e.cache.hits, e.cache.misses
}

// GroupStats counts what dynamics-grouped execution did over an Engine's
// lifetime (accumulated across streams, like the cache counters): how many
// groups were dispatched, how many variants they carried, and how many
// simulation passes were actually executed.  With the default configuration
// (no result cache) Jobs - Sims is exactly the number of simulations that
// grouping avoided; with a result cache enabled, fully and partially cached
// groups skip passes too, so SimsSaved then counts both effects.
type GroupStats struct {
	// Groups is the number of dynamics groups dispatched to workers.
	Groups int
	// Jobs is the number of variants those groups carried.
	Jobs int
	// Sims is the number of simulation passes executed for them.
	Sims int
}

// SimsSaved returns how many simulation passes were not run: the variants
// carried minus the passes executed.
func (g GroupStats) SimsSaved() int { return g.Jobs - g.Sims }

// MeanWidth returns the mean number of variants per dispatched group (0
// before any group ran).
func (g GroupStats) MeanWidth() float64 {
	if g.Groups == 0 {
		return 0
	}
	return float64(g.Jobs) / float64(g.Groups)
}

// GroupStats returns the Engine's dynamics-grouping counters.  They stay
// zero when grouping is disabled (WithGrouping(false)) and under KeepTrace
// retention, where every job runs individually.  Sims counts per-trajectory
// simulations whether a group ran on the scalar arena or as one lane of a
// widened batch; LaneStats describes how those trajectories were batched.
func (e *Engine) GroupStats() GroupStats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.stats
}

// recordLaneBatch folds one lane-batched task's execution into the Engine's
// LaneStats: batches/lanes count widened runs and the dynamics groups they
// carried, ragged counts batches that fell back to the scalar path.
func (e *Engine) recordLaneBatch(batches, lanes, ragged int) {
	e.statsMu.Lock()
	e.laneStats.Batches += batches
	e.laneStats.Lanes += lanes
	e.laneStats.Ragged += ragged
	e.statsMu.Unlock()
}

// LaneStats counts what lane-batched execution did over an Engine's lifetime
// (accumulated across streams, like GroupStats and the cache counters).
type LaneStats struct {
	// Batches is the number of lane-widened simulations executed.
	Batches int
	// Lanes is the number of dynamics groups those batches carried — each a
	// trajectory that would otherwise have been its own scalar pass.
	Lanes int
	// Ragged is the number of dispatched lane batches that fell back to the
	// scalar path because at most one group survived cache resolution (or
	// the batch was dispatched at width 1: a ragged remainder of the
	// stream's grouping structure).
	Ragged int
}

// MeanWidth returns the mean number of lanes per widened batch (0 before any
// batch ran).
func (s LaneStats) MeanWidth() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Lanes) / float64(s.Batches)
}

// LaneStats returns the Engine's lane-batching counters.  They stay zero
// when lane batching is inert (WithLanes(1), grouping disabled, or KeepTrace
// retention).
func (e *Engine) LaneStats() LaneStats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.laneStats
}

// Accumulate streams src into a fresh Accumulator and returns it.  On
// cancellation the returned error is non-nil and the Accumulator holds the
// partial aggregate of every completed run.
func (e *Engine) Accumulate(ctx context.Context, src JobSource) (*Accumulator, error) {
	var acc Accumulator
	err := e.Stream(ctx, src, &acc)
	return &acc, err
}

// ---------------------------------------------------------------------------
// Online aggregation
// ---------------------------------------------------------------------------

// Accumulator folds results into the cross-variant aggregate online, one run
// at a time, so a sweep's bookkeeping never retains per-run state.  It
// implements ResultSink; the zero value is ready to use.  All methods are
// safe for concurrent use, so a partial aggregate can be read (e.g. by a
// progress reporter) while a stream is still running.
type Accumulator struct {
	mu         sync.Mutex
	runs       int
	collisions int
	early      int
	sum        monitor.Summary
}

// Add folds one result into the aggregate.
func (a *Accumulator) Add(r Result) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.runs++
	if r.Collision {
		a.collisions++
	}
	if r.TerminatedEarly() {
		a.early++
	}
	a.sum = a.sum.Add(r.Summary)
}

// Consume implements ResultSink.
func (a *Accumulator) Consume(sr StreamResult) error {
	a.Add(sr.Result)
	return nil
}

// Merge folds another accumulator's aggregate into this one, as if every
// result the other accumulated had been added here instead.  Addition over
// run, collision and early-termination counts and the classification summary
// is commutative and associative, so merging per-shard accumulators in any
// order yields exactly the aggregate a single accumulator over the union of
// their results would hold — the invariant distributed merging depends on
// (TestAccumulatorMergeEquivalence).  The other accumulator is read under
// its own lock and left unchanged; merging an accumulator into itself is a
// no-op rather than a double-count.
func (a *Accumulator) Merge(o *Accumulator) {
	if o == nil || o == a {
		return
	}
	o.mu.Lock()
	runs, collisions, early, sum := o.runs, o.collisions, o.early, o.sum
	o.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.runs += runs
	a.collisions += collisions
	a.early += early
	a.sum = a.sum.Add(sum)
}

// Runs returns the number of results folded so far.
func (a *Accumulator) Runs() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.runs
}

// Collisions returns the number of runs that terminated on a collision.
func (a *Accumulator) Collisions() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.collisions
}

// EarlyTerminations returns the number of runs that stopped before their
// scheduled duration.
func (a *Accumulator) EarlyTerminations() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.early
}

// Summary returns the aggregate hit / false-negative / false-positive
// classification — the sweep-level empirical estimate of the residual
// emergence X and Y of thesis §3.4.
func (a *Accumulator) Summary() monitor.Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sum
}

// SweepResult snapshots the aggregate as a SweepResult.  Jobs and Results are
// nil: an online accumulator never retains per-run state.
func (a *Accumulator) SweepResult() SweepResult {
	a.mu.Lock()
	defer a.mu.Unlock()
	return SweepResult{
		Aggregate:         a.sum,
		Collisions:        a.collisions,
		EarlyTerminations: a.early,
	}
}
