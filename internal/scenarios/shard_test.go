package scenarios

import (
	"context"
	"hash/fnv"
	"testing"
	"time"

	"repro/internal/monitor"
)

// TestJobKeyStable pins the variant key down to the exact string: the key is
// a cross-process wire contract (shard assignment, result-cache identity,
// dedup), so any drift in its format silently repartitions distributed
// sweeps.  If this test fails, the shard key contract has changed and every
// participant of a distributed sweep must change together.
func TestJobKeyStable(t *testing.T) {
	sc, ok := ScenarioByNumber(7)
	if !ok {
		t.Fatal("scenario 7 missing")
	}
	job := Job{Scenario: sc, Options: Options{CorrectDefects: true}}
	want := sc.Name + "|" + "20000000000" + "|" + job.Options.Label()
	if got := job.Key(); got != want {
		t.Errorf("Key() = %q, want %q", got, want)
	}

	// A zero duration keys identically to the explicit default: both run the
	// same evaluation, so they must be the same variant.
	explicit := job
	explicit.Scenario.Duration = DefaultDuration
	if job.Key() != explicit.Key() {
		t.Errorf("zero-duration key %q != explicit-default key %q", job.Key(), explicit.Key())
	}
	longer := job
	longer.Scenario.Duration = 30 * time.Second
	if longer.Key() == job.Key() {
		t.Error("different durations must produce different keys")
	}
}

// TestFNV1a64MatchesStdlib checks the written-out hash against hash/fnv: the
// constants are spelled inline to make the contract self-evident, but they
// must be the published FNV-1a parameters.
func TestFNV1a64MatchesStdlib(t *testing.T) {
	for _, s := range []string{"", "a", "scn7-v30-d20-seeded|20000000000|defects", "\x00\xff"} {
		h := fnv.New64a()
		h.Write([]byte(s))
		if got, want := fnv1a64(s), h.Sum64(); got != want {
			t.Errorf("fnv1a64(%q) = %d, want %d", s, got, want)
		}
	}
}

// TestShardPartition checks the three properties the distributed design rests
// on: every n-way split of a sweep is pairwise disjoint, covers the source
// exactly, and assigns each variant by pure function of its key — so
// re-enumerating (as a re-queued worker does) reproduces the partition.
func TestShardPartition(t *testing.T) {
	sweep := DefaultSweep()
	for _, n := range []int{1, 2, 3, 5, 8} {
		owner := make(map[string]int)
		total := 0
		for shard := 0; shard < n; shard++ {
			src := ShardSource(sweep.Source(), shard, n)
			for {
				j, ok := src.Next()
				if !ok {
					break
				}
				key := j.Key()
				if prev, dup := owner[key]; dup {
					t.Fatalf("n=%d: variant %q owned by shards %d and %d", n, key, prev, shard)
				}
				owner[key] = shard
				total++
			}
		}
		if want := sweep.Size(); total != want {
			t.Errorf("n=%d: shards cover %d variants, source has %d", n, total, want)
		}
		// Stability: a fresh enumeration agrees on every owner.
		src := sweep.Source()
		for {
			j, ok := src.Next()
			if !ok {
				break
			}
			if got := j.Shard(n); got != owner[j.Key()] {
				t.Fatalf("n=%d: variant %q owner changed between enumerations: %d then %d",
					n, j.Key(), owner[j.Key()], got)
			}
		}
	}
}

// TestShardSourcePreservesOrder checks shard sources yield their variants in
// source order — the property the coordinator's global reordering relies on.
func TestShardSourcePreservesOrder(t *testing.T) {
	sweep := ToleranceSweep()
	index := make(map[string]int)
	src := sweep.Source()
	for i := 0; ; i++ {
		j, ok := src.Next()
		if !ok {
			break
		}
		index[j.Key()] = i
	}
	const n = 3
	for shard := 0; shard < n; shard++ {
		last := -1
		src := ShardSource(sweep.Source(), shard, n)
		for {
			j, ok := src.Next()
			if !ok {
				break
			}
			if idx := index[j.Key()]; idx <= last {
				t.Fatalf("shard %d out of source order: index %d after %d", shard, idx, last)
			} else {
				last = idx
			}
		}
	}
}

// TestDedupByKey checks the idempotence layer: re-delivered variants are
// dropped, distinct variants pass through once each.
func TestDedupByKey(t *testing.T) {
	sc, _ := ScenarioByNumber(7)
	a := StreamResult{Index: 0, Job: Job{Scenario: sc}}
	b := StreamResult{Index: 1, Job: Job{Scenario: sc, Options: Options{CorrectDefects: true}}}
	var got []int
	sink := DedupByKey(SinkFunc(func(sr StreamResult) error {
		got = append(got, sr.Index)
		return nil
	}))
	for _, sr := range []StreamResult{a, b, a, b, a} {
		if err := sink.Consume(sr); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("dedup delivered %v, want [0 1]", got)
	}
}

// TestAccumulatorMergeEquivalence is the merge property test: partition the
// results of a real sweep into per-shard accumulators, merge them in several
// orders, and require every merged aggregate to equal the single-process
// accumulator that consumed the whole stream.
func TestAccumulatorMergeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 30-variant tolerance sweep")
	}
	engine := NewEngine(WithRetention(SummaryOnly))
	var single Accumulator
	const n = 4
	parts := make([]*Accumulator, n)
	for i := range parts {
		parts[i] = &Accumulator{}
	}
	err := engine.Stream(context.Background(), ToleranceSweep().Source(), SinkFunc(
		func(sr StreamResult) error {
			single.Add(sr.Result)
			parts[sr.Job.Shard(n)].Add(sr.Result)
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}

	orders := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}}
	for _, order := range orders {
		var merged Accumulator
		for _, i := range order {
			// Merge copies, so the parts survive for the next order.
			part := &Accumulator{}
			part.Merge(parts[i])
			merged.Merge(part)
		}
		if merged.Runs() != single.Runs() ||
			merged.Collisions() != single.Collisions() ||
			merged.EarlyTerminations() != single.EarlyTerminations() ||
			merged.Summary() != single.Summary() {
			t.Errorf("merge order %v: runs=%d collisions=%d early=%d sum=%+v, single: runs=%d collisions=%d early=%d sum=%+v",
				order, merged.Runs(), merged.Collisions(), merged.EarlyTerminations(), merged.Summary(),
				single.Runs(), single.Collisions(), single.EarlyTerminations(), single.Summary())
		}
	}

	// Tree-shaped merge (pairwise, then root) must also agree: merge is
	// associative, so a coordinator may fold partials however it likes.
	left, right, tree := &Accumulator{}, &Accumulator{}, &Accumulator{}
	left.Merge(parts[0])
	left.Merge(parts[1])
	right.Merge(parts[2])
	right.Merge(parts[3])
	tree.Merge(left)
	tree.Merge(right)
	if tree.Runs() != single.Runs() || tree.Summary() != single.Summary() {
		t.Errorf("tree merge diverges: runs=%d sum=%+v, single runs=%d sum=%+v",
			tree.Runs(), tree.Summary(), single.Runs(), single.Summary())
	}

	// Self-merge and nil-merge are no-ops, not double counting.
	runs := single.Runs()
	single.Merge(&single)
	single.Merge(nil)
	if single.Runs() != runs {
		t.Errorf("self/nil merge changed runs: %d -> %d", runs, single.Runs())
	}
}

// TestEngineSeedResult checks the re-queue fast path: a seeded variant
// replays from the cache — sentinel summary and all — without simulating.
func TestEngineSeedResult(t *testing.T) {
	sc, _ := ScenarioByNumber(7)
	job := Job{Scenario: sc, Options: Options{CorrectDefects: true}}
	sentinel := Result{
		Scenario:  job.Scenario,
		Steps:     42,
		Collision: true,
		Summary:   monitor.Summary{Hits: 7, FalseNegatives: 3, FalsePositives: 1},
	}
	sentinel.Scenario.Duration = DefaultDuration

	engine := NewEngine(WithRetention(SummaryOnly), WithResultCache())
	engine.SeedResult(job, sentinel)
	var got []Result
	err := engine.Stream(context.Background(), SliceSource([]Job{job}), SinkFunc(
		func(sr StreamResult) error {
			got = append(got, sr.Result)
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("expected 1 result, got %d", len(got))
	}
	if got[0].Steps != 42 || !got[0].Collision || got[0].Summary != sentinel.Summary {
		t.Errorf("seeded variant re-simulated instead of replaying: %+v", got[0])
	}
	if hits, misses := engine.CacheStats(); hits != 1 || misses != 0 {
		t.Errorf("cache stats = %d hits, %d misses; want 1 hit, 0 misses", hits, misses)
	}

	// Seeding a cache-less engine is a harmless no-op, so transports can seed
	// unconditionally.
	NewEngine().SeedResult(job, sentinel)
}
