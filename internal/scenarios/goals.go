// Package scenarios reproduces the thesis' Chapter 5 evaluation: the nine
// vehicle-level safety goals of Tables 5.1/5.2, the ICPA-derived subgoals
// and their monitoring locations (Table 5.3), the ten driving scenarios of
// Section 5.4, the per-scenario violation tables of Appendix D and the time
// series behind Figures 5.2–5.15.
package scenarios

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/goals"
	"repro/internal/monitor"
	"repro/internal/temporal"
	"repro/internal/vehicle"
)

// System safety goal names (Tables 5.1 and 5.2).
const (
	Goal1AutoAccel        = "Achieve[AutoAccelBelowThreshold]"
	Goal2AutoJerk         = "Achieve[AutoJerkBelowThreshold]"
	Goal3Agreement        = "Achieve[SubsystemAccelSteeringAgreement]"
	Goal4NoAccelFromStop  = "Achieve[NoAutoAccelFromStop]"
	Goal5ForwardOverride  = "Achieve[DriverForwardAccelOverride]"
	Goal6BackwardOverride = "Achieve[DriverBackwardAccelOverride]"
	Goal7SteeringOverride = "Achieve[DriverSteeringOverride]"
	Goal8ForwardBlock     = "Achieve[ForwardBlockAccelSteering]"
	Goal9BackwardBlock    = "Achieve[BackwardBlockAccelSteering]"
)

// GoalNames lists the nine system safety goals in thesis order.
var GoalNames = []string{
	Goal1AutoAccel, Goal2AutoJerk, Goal3Agreement, Goal4NoAccelFromStop,
	Goal5ForwardOverride, Goal6BackwardOverride, Goal7SteeringOverride,
	Goal8ForwardBlock, Goal9BackwardBlock,
}

// MonitorLocations lists the monitoring locations of Table 5.3 in column
// order.
var MonitorLocations = []string{"Vehicle", "Arbiter", "CA", "ACC", "RCA", "LCA", "PA"}

// stoppedLongEnough is the goal-4 antecedent fragment: the vehicle has been
// stopped for StoppedTime, where the initial state counts as "stopped since
// the beginning" (the thesis' monitors flagged Park Assist at simulation
// start).
func stoppedLongEnough() string {
	return fmt.Sprintf("(prevfor[%s](%s) | (initially(%s) & hist(%s) & %s))",
		vehicle.StoppedTime, vehicle.SigVehicleStopped,
		vehicle.SigVehicleStopped, vehicle.SigVehicleStopped, vehicle.SigVehicleStopped)
}

func noRecentThrottleOrGo() string {
	return fmt.Sprintf("!prevwithin[%s](%s) & !prevwithin[%s](%s)",
		vehicle.GoTime, vehicle.SigThrottlePedal, vehicle.GoTime, vehicle.SigHMIGo)
}

// VehicleGoals returns the nine system-level safety goals of Tables 5.1/5.2,
// expressed over the simulation's sensed signals.
func VehicleGoals() *goals.Registry {
	r := goals.NewRegistry()

	r.Add(goals.MustParse(Goal1AutoAccel,
		"Vehicle acceleration caused by autonomous vehicle control shall not exceed 2 m/s².",
		fmt.Sprintf("%s => %s <= %g",
			vehicle.SigAccelFromSubsystem, vehicle.SigVehicleAccel, vehicle.AutoAccelLimit)))

	r.Add(goals.MustParse(Goal2AutoJerk,
		"Vehicle jerk caused by autonomous vehicle control shall not exceed 2.5 m/s³.",
		fmt.Sprintf("%s => (%s <= %g & %s >= %g)",
			vehicle.SigAccelFromSubsystem, vehicle.SigVehicleJerk, vehicle.AutoJerkLimit,
			vehicle.SigVehicleJerk, -vehicle.AutoJerkLimit)))

	r.Add(goals.MustParse(Goal3Agreement,
		"If a subsystem requests control of acceleration and steering and is granted either, it shall control both.",
		vehicle.SigAccelSteeringAgreement))

	r.Add(goals.MustParse(Goal4NoAccelFromStop,
		"If the vehicle has been stopped, the throttle pedal has not been applied, a subsystem controls acceleration and no HMI go signal was sent, there shall be no vehicle acceleration.",
		fmt.Sprintf("(%s & %s & %s) => %s <= 0.05",
			stoppedLongEnough(), noRecentThrottleOrGo(), vehicle.SigAccelFromSubsystem,
			vehicle.SigVehicleAccel)))

	r.Add(goals.MustParse(Goal5ForwardOverride,
		"If the vehicle is moving forward, the driver is applying a pedal, and a subsystem is requesting a soft (not emergency) acceleration, the subsystem shall not control vehicle acceleration.",
		fmt.Sprintf("(%s & prev(%s)) => !%s",
			vehicle.SigInForwardMotion, vehicle.SigPedalApplied, vehicle.SigSelectedSoftRequestFwd)))

	r.Add(goals.MustParse(Goal6BackwardOverride,
		"If the vehicle is moving backward, the driver is applying a pedal, and a subsystem is requesting a soft (not emergency) acceleration, the subsystem shall not control vehicle acceleration.",
		fmt.Sprintf("(%s & prev(%s)) => !%s",
			vehicle.SigInBackwardMotion, vehicle.SigPedalApplied, vehicle.SigSelectedSoftRequestBwd)))

	r.Add(goals.MustParse(Goal7SteeringOverride,
		"If the driver is turning the steering wheel, no subsystem shall control vehicle steering.",
		fmt.Sprintf("prev(%s) => !%s", vehicle.SigSteeringActive, vehicle.SigSteerFromSubsystem)))

	r.Add(goals.MustParse(Goal8ForwardBlock,
		"If the vehicle is moving forward, the subsystem RCA shall not control vehicle acceleration or steering.",
		fmt.Sprintf("%s => !(%s == 'RCA' | %s == 'RCA')",
			vehicle.SigInForwardMotion, vehicle.SigAccelSource, vehicle.SigSteerSource)))

	r.Add(goals.MustParse(Goal9BackwardBlock,
		"If the vehicle is moving backward, the subsystems CA, ACC and LCA shall not control vehicle acceleration or steering.",
		fmt.Sprintf("%s => !(%s == 'CA' | %s == 'ACC' | %s == 'LCA' | %s == 'CA' | %s == 'ACC' | %s == 'LCA')",
			vehicle.SigInBackwardMotion,
			vehicle.SigAccelSource, vehicle.SigAccelSource, vehicle.SigAccelSource,
			vehicle.SigSteerSource, vehicle.SigSteerSource, vehicle.SigSteerSource)))

	return r
}

// arbiterSubgoal builds the Arbiter-level subgoal ("A" row of Table 5.3) for
// a system goal: the same constraint applied to the arbitrated command
// instead of the sensed vehicle response.
func arbiterSubgoal(goalName string) (goals.Goal, bool) {
	switch goalName {
	case Goal1AutoAccel:
		return goals.MustParse("Achieve[AutoAccelCommandBelowThreshold]",
			"The arbitrated acceleration command from a subsystem shall not exceed 2 m/s².",
			fmt.Sprintf("%s => %s <= %g",
				vehicle.SigAccelFromSubsystem, vehicle.SigAccelCommand, vehicle.AutoAccelLimit)), true
	case Goal2AutoJerk:
		return goals.MustParse("Achieve[AutoJerkCommandBelowThreshold]",
			"The rate of change of the arbitrated acceleration command from a subsystem shall not exceed 2.5 m/s³.",
			fmt.Sprintf("%s => (%s <= %g & %s >= %g)",
				vehicle.SigAccelFromSubsystem, vehicle.SigAccelCommandJerk, vehicle.AutoJerkLimit,
				vehicle.SigAccelCommandJerk, -vehicle.AutoJerkLimit)), true
	case Goal3Agreement:
		return goals.MustParse("Achieve[SubsystemAccelSteeringCommandAgreement]",
			"The Arbiter shall not grant acceleration and steering to different subsystems that request both.",
			vehicle.SigAccelSteeringAgreement), true
	case Goal4NoAccelFromStop:
		return goals.MustParse("Achieve[NoAutoAccelCommandFromStop]",
			"From a stop, without a throttle application or HMI go, the Arbiter shall not command acceleration on behalf of a subsystem.",
			fmt.Sprintf("(%s & %s & %s) => %s <= 0.05",
				stoppedLongEnough(), noRecentThrottleOrGo(), vehicle.SigAccelFromSubsystem,
				vehicle.SigAccelCommand)), true
	case Goal5ForwardOverride:
		return goals.MustParse("Achieve[DriverForwardAccelOverrideAccelCommand]",
			"With a pedal applied in forward motion, the Arbiter shall not select a subsystem's soft acceleration request.",
			fmt.Sprintf("(%s & prev(%s)) => !%s",
				vehicle.SigInForwardMotion, vehicle.SigPedalApplied, vehicle.SigSelectedSoftRequestFwd)), true
	case Goal6BackwardOverride:
		return goals.MustParse("Achieve[DriverBackwardAccelOverrideAccelCommand]",
			"With a pedal applied in backward motion, the Arbiter shall not select a subsystem's soft acceleration request.",
			fmt.Sprintf("(%s & prev(%s)) => !%s",
				vehicle.SigInBackwardMotion, vehicle.SigPedalApplied, vehicle.SigSelectedSoftRequestBwd)), true
	case Goal7SteeringOverride:
		return goals.MustParse("Achieve[DriverSteeringOverrideSteeringCommand]",
			"With the driver steering, the Arbiter shall not select a subsystem as the steering source.",
			fmt.Sprintf("prev(%s) => !%s", vehicle.SigSteeringActive, vehicle.SigSteerFromSubsystem)), true
	case Goal8ForwardBlock:
		return goals.MustParse("Achieve[ForwardBlockAccelSteeringCommand]",
			"In forward motion the Arbiter shall not select RCA for acceleration or steering.",
			fmt.Sprintf("%s => !(%s == 'RCA' | %s == 'RCA')",
				vehicle.SigInForwardMotion, vehicle.SigAccelSource, vehicle.SigSteerSource)), true
	case Goal9BackwardBlock:
		return goals.MustParse("Achieve[BackwardBlockAccelSteeringCommand]",
			"In backward motion the Arbiter shall not select CA, ACC or LCA for acceleration or steering.",
			fmt.Sprintf("%s => !(%s == 'CA' | %s == 'ACC' | %s == 'LCA' | %s == 'CA' | %s == 'ACC' | %s == 'LCA')",
				vehicle.SigInBackwardMotion,
				vehicle.SigAccelSource, vehicle.SigAccelSource, vehicle.SigAccelSource,
				vehicle.SigSteerSource, vehicle.SigSteerSource, vehicle.SigSteerSource)), true
	default:
		return goals.Goal{}, false
	}
}

// featureSubgoal builds the feature-level subgoal ("B" row of Table 5.3) for
// a system goal and feature, when Table 5.3 assigns one.  The subgoals are
// OR-reduced (restrictive): they constrain the feature's requests regardless
// of whether those requests are currently selected (thesis §5.3).
func featureSubgoal(goalName, feature string) (goals.Goal, bool) {
	req := vehicle.SigAccelRequest(feature)
	switch goalName {
	case Goal1AutoAccel:
		return goals.MustParse(
			fmt.Sprintf("Maintain[AutoAccelRequestBelowThreshold:%s]", feature),
			fmt.Sprintf("%s shall not request acceleration above 2 m/s².", feature),
			fmt.Sprintf("%s <= %g", req, vehicle.AutoAccelLimit)), true
	case Goal2AutoJerk:
		return goals.MustParse(
			fmt.Sprintf("Maintain[AutoJerkRequestBelowThreshold:%s]", feature),
			fmt.Sprintf("%s shall not change its acceleration request faster than 2.5 m/s³.", feature),
			fmt.Sprintf("(%s <= %g & %s >= %g)",
				vehicle.SigRequestJerk(feature), vehicle.AutoJerkLimit,
				vehicle.SigRequestJerk(feature), -vehicle.AutoJerkLimit)), true
	case Goal4NoAccelFromStop:
		return goals.MustParse(
			fmt.Sprintf("Achieve[NoAutoAccelRequestFromStop:%s]", feature),
			fmt.Sprintf("From a stop, without a throttle application or HMI go, %s shall not request acceleration.", feature),
			fmt.Sprintf("(%s & %s) => %s <= 0.05",
				stoppedLongEnough(), noRecentThrottleOrGo(), req)), true
	case Goal5ForwardOverride:
		return goals.MustParse(
			fmt.Sprintf("Achieve[DriverForwardAccelOverrideAccelRequest:%s]", feature),
			fmt.Sprintf("With a pedal applied in forward motion, %s shall not be selected while requesting a soft acceleration.", feature),
			fmt.Sprintf("(%s & prev(%s) & %s & %s > %g) => !%s",
				vehicle.SigInForwardMotion, vehicle.SigPedalApplied,
				vehicle.SigRequestingAccel(feature), req, vehicle.HardBrakeThreshold,
				vehicle.SigSelected(feature))), true
	case Goal6BackwardOverride:
		return goals.MustParse(
			fmt.Sprintf("Achieve[DriverBackwardAccelOverrideAccelRequest:%s]", feature),
			fmt.Sprintf("With a pedal applied in backward motion, %s shall not be selected while requesting a soft acceleration.", feature),
			fmt.Sprintf("(%s & prev(%s) & %s & %s < %g) => !%s",
				vehicle.SigInBackwardMotion, vehicle.SigPedalApplied,
				vehicle.SigRequestingAccel(feature), req, -vehicle.HardBrakeThreshold,
				vehicle.SigSelected(feature))), true
	case Goal7SteeringOverride:
		return goals.MustParse(
			fmt.Sprintf("Achieve[DriverSteeringOverrideSteeringRequest:%s]", feature),
			fmt.Sprintf("With the driver steering, %s shall not request steering control.", feature),
			fmt.Sprintf("prev(%s) => !%s", vehicle.SigSteeringActive, vehicle.SigRequestingSteer(feature))), true
	case Goal8ForwardBlock:
		return goals.MustParse(
			fmt.Sprintf("Achieve[ForwardBlockAccelSteeringRequest:%s]", feature),
			fmt.Sprintf("In forward motion %s shall not request acceleration or steering.", feature),
			fmt.Sprintf("%s => !(%s | %s)",
				vehicle.SigInForwardMotion, vehicle.SigRequestingAccel(feature),
				vehicle.SigRequestingSteer(feature))), true
	case Goal9BackwardBlock:
		return goals.MustParse(
			fmt.Sprintf("Achieve[BackwardBlockAccelSteeringRequest:%s]", feature),
			fmt.Sprintf("In backward motion %s shall not request acceleration or steering.", feature),
			fmt.Sprintf("%s => !(%s | %s)",
				vehicle.SigInBackwardMotion, vehicle.SigRequestingAccel(feature),
				vehicle.SigRequestingSteer(feature))), true
	default:
		return goals.Goal{}, false
	}
}

// featureSubgoalAssignments returns, for each system goal, the feature
// subsystems that carry a feature-level subgoal (the "B" columns of
// Table 5.3).
func featureSubgoalAssignments(goalName string) []string {
	switch goalName {
	case Goal1AutoAccel, Goal2AutoJerk, Goal4NoAccelFromStop, Goal5ForwardOverride, Goal6BackwardOverride:
		return []string{vehicle.SourceCA, vehicle.SourceACC, vehicle.SourceRCA, vehicle.SourceLCA, vehicle.SourcePA}
	case Goal7SteeringOverride:
		return []string{vehicle.SourceLCA, vehicle.SourcePA}
	case Goal8ForwardBlock:
		return []string{vehicle.SourceRCA}
	case Goal9BackwardBlock:
		return []string{vehicle.SourceCA, vehicle.SourceACC, vehicle.SourceLCA}
	case Goal3Agreement:
		return nil
	default:
		return nil
	}
}

// vehicleLevelMonitored reports whether the system goal can be monitored at
// the vehicle level separately from the Arbiter (thesis §5.3.1: goals 1, 2
// and 4 constrain sensed variables; goals 3 and 5–9 constrain variables
// directly controlled by the Arbiter, so the Arbiter-level monitor is the
// system-level monitor).
func vehicleLevelMonitored(goalName string) bool {
	switch goalName {
	case Goal1AutoAccel, Goal2AutoJerk, Goal4NoAccelFromStop:
		return true
	default:
		return false
	}
}

// MonitorSpec is one monitor placement: a goal or subgoal and the hierarchy
// level it is monitored at (one of MonitorLocations).  It is the same shape
// the monitor package consumes, so a plan feeds both the per-monitor and the
// compiled suite builders without conversion.
type MonitorSpec = monitor.GoalAt

// HierarchySpec is one row group of Table 5.3: a system safety goal with its
// Arbiter- and feature-level subgoal monitors.
type HierarchySpec struct {
	// GoalName is the system safety goal name.
	GoalName string
	// Parent is the system-level monitor placement.
	Parent MonitorSpec
	// Children are the subgoal monitor placements.
	Children []MonitorSpec
}

// planOnce / cachedPlan memoize the monitoring plan for the process: the
// goal catalogue and the plan are static, so their formula parsing and plan
// assembly run once instead of once per compiled suite (formula ASTs are
// immutable after construction, so sharing them across concurrently compiled
// suites is safe).  Suite builders read the cache through monitoringPlan.
var (
	planOnce   sync.Once
	cachedPlan []HierarchySpec
)

// monitoringPlan returns the process-wide cached plan.  Callers must treat
// it as read-only; the public MonitoringPlan returns a copy.
func monitoringPlan() []HierarchySpec {
	planOnce.Do(func() { cachedPlan = buildMonitoringPlan() })
	return cachedPlan
}

// MonitoringPlan returns the full Table 5.3 monitoring plan: for every
// system safety goal, where the goal and its subgoals are monitored.
func MonitoringPlan() []HierarchySpec {
	return append([]HierarchySpec(nil), monitoringPlan()...)
}

// buildMonitoringPlan assembles the plan from the goal catalogue.
func buildMonitoringPlan() []HierarchySpec {
	registry := VehicleGoals()
	var plan []HierarchySpec
	for _, name := range GoalNames {
		parentGoal := registry.MustGet(name)
		parentLocation := "Vehicle"
		if !vehicleLevelMonitored(name) {
			parentLocation = "Arbiter"
		}
		spec := HierarchySpec{
			GoalName: name,
			Parent:   MonitorSpec{Goal: parentGoal, Location: parentLocation},
		}
		if sub, ok := arbiterSubgoal(name); ok && vehicleLevelMonitored(name) {
			spec.Children = append(spec.Children, MonitorSpec{Goal: sub, Location: "Arbiter"})
		} else if ok && !vehicleLevelMonitored(name) {
			// The Arbiter-level formulation is the parent itself; the
			// subgoal row still exists in Table 5.3 but monitors the same
			// expression, so it is attached as a child for completeness.
			spec.Children = append(spec.Children, MonitorSpec{Goal: sub, Location: "Arbiter"})
		}
		for _, feature := range featureSubgoalAssignments(name) {
			if sub, ok := featureSubgoal(name, feature); ok {
				spec.Children = append(spec.Children, MonitorSpec{Goal: sub, Location: feature})
			}
		}
		plan = append(plan, spec)
	}
	return plan
}

// matchTolerance is the default hit-matching window in states: command-level
// and request-level violations may lead or lag the sensed vehicle response
// by the powertrain response time plus the arbitration delay (roughly one
// dominant time constant of the second-order response).  Sweeps can vary it
// through Options.MatchTolerance / Family.Tolerances.
const matchTolerance = 150

// BuildSuite instantiates the monitoring plan as individual per-monitor
// steppers with the default matching tolerance.  Monitor atoms resolve their
// state-variable slots on the first observed state.  It is the per-monitor
// reference implementation; the evaluation paths use BuildSuiteWithSchema,
// which compiles the whole plan into one shared program.
func BuildSuite(period time.Duration) *monitor.Suite {
	return buildSuite(period, nil, matchTolerance)
}

// BuildSuiteWithSchema compiles the full monitoring plan into one shared
// evaluation program (suite-level CSE over every goal and subgoal formula)
// against the scenario's symbol table (typically sim.Bus.Schema()): the ~30
// overlapping formulas of Table 5.3 are evaluated in a single pass per state,
// with each shared atom read once.  The returned suite is reusable across
// runs via Reset.
func BuildSuiteWithSchema(period time.Duration, schema *temporal.Schema) *monitor.CompiledSuite {
	return buildCompiledSuite(period, schema, matchTolerance)
}

// buildSuite instantiates the plan as individual monitors — the per-monitor
// reference the differential tests compare the compiled program against.
func buildSuite(period time.Duration, schema *temporal.Schema, tolerance int) *monitor.Suite {
	if tolerance <= 0 {
		tolerance = matchTolerance
	}
	suite := monitor.NewSuite()
	for _, spec := range monitoringPlan() {
		parent := monitor.MustNewWithSchema(spec.Parent.Goal, spec.Parent.Location, period, schema)
		children := make([]*monitor.Monitor, 0, len(spec.Children))
		for _, c := range spec.Children {
			children = append(children, monitor.MustNewWithSchema(c.Goal, c.Location, period, schema))
		}
		suite.Add(monitor.NewHierarchy(parent, tolerance, children...))
	}
	return suite
}

// buildCompiledSuite compiles the plan into one shared program with the given
// matching tolerance (non-positive selects the default).
func buildCompiledSuite(period time.Duration, schema *temporal.Schema, tolerance int) *monitor.CompiledSuite {
	if tolerance <= 0 {
		tolerance = matchTolerance
	}
	cs := monitor.NewCompiledSuite(period, schema)
	for _, spec := range monitoringPlan() {
		cs.MustAddHierarchy(spec.Parent, tolerance, spec.Children...)
	}
	return cs
}

// RenderTable5_3 renders the monitoring-location matrix of Table 5.3: one
// row per goal and subgoal, one column per monitoring location, with an X
// where the goal is monitored.
func RenderTable5_3() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-58s", "Goal/Subgoal")
	for _, loc := range MonitorLocations {
		fmt.Fprintf(&b, " %-8s", loc)
	}
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, strings.Repeat("-", 58+9*len(MonitorLocations)))

	writeRow := func(name string, marked map[string]bool) {
		fmt.Fprintf(&b, "%-58s", name)
		for _, loc := range MonitorLocations {
			mark := ""
			if marked[loc] {
				mark = "X"
			}
			fmt.Fprintf(&b, " %-8s", mark)
		}
		fmt.Fprintln(&b)
	}

	for _, spec := range monitoringPlan() {
		writeRow(spec.GoalName, map[string]bool{spec.Parent.Location: true})
		byName := make(map[string]map[string]bool)
		var order []string
		for _, c := range spec.Children {
			if _, ok := byName[c.Goal.Name]; !ok {
				byName[c.Goal.Name] = make(map[string]bool)
				order = append(order, c.Goal.Name)
			}
			byName[c.Goal.Name][c.Location] = true
		}
		// Feature subgoals share a display row per goal (the "B" row).
		featureRow := make(map[string]bool)
		featureRowName := ""
		for _, name := range order {
			locs := byName[name]
			if len(locs) == 1 && locs["Arbiter"] {
				writeRow("  "+name, locs)
				continue
			}
			if featureRowName == "" {
				featureRowName = "  " + genericFeatureSubgoalName(name)
			}
			for l := range locs {
				featureRow[l] = true
			}
		}
		if featureRowName != "" {
			writeRow(featureRowName, featureRow)
		}
	}
	return b.String()
}

// genericFeatureSubgoalName strips the ":FEATURE" suffix from a feature
// subgoal name for the shared Table 5.3 row.
func genericFeatureSubgoalName(name string) string {
	if i := strings.Index(name, ":"); i > 0 {
		return name[:i] + "]"
	}
	return name
}
