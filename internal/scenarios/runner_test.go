package scenarios

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/monitor"
)

// TestRunnerMatchesSequential runs the parallel Runner over all ten thesis
// scenarios and asserts the results are element-wise identical to the
// sequential path: same rendered summaries, detections, collision flags and
// trace lengths.  Together with -race this is the evidence that per-run
// isolation holds (each run owns its engine, bus and monitor suite).
func TestRunnerMatchesSequential(t *testing.T) {
	parallel := Runner{Workers: 4}.RunScenarios(Scenarios(), Options{})
	if len(parallel) != 10 {
		t.Fatalf("parallel runner returned %d results, want 10", len(parallel))
	}
	for i := range parallel {
		seq := cachedRun(t, i+1) // sequential reference, shared with the other tests
		par := parallel[i]
		if par.Scenario.Number != i+1 {
			t.Fatalf("result %d is scenario %d: parallel results must keep input order", i, par.Scenario.Number)
		}
		if par.Summary != seq.Summary {
			t.Errorf("scenario %d: parallel summary %v != sequential %v", i+1, par.Summary, seq.Summary)
		}
		if par.Collision != seq.Collision {
			t.Errorf("scenario %d: parallel collision %v != sequential %v", i+1, par.Collision, seq.Collision)
		}
		if par.Trace.Len() != seq.Trace.Len() {
			t.Errorf("scenario %d: parallel trace length %d != sequential %d", i+1, par.Trace.Len(), seq.Trace.Len())
		}
		if len(par.Detections) != len(seq.Detections) {
			t.Errorf("scenario %d: detection map sizes differ", i+1)
		}
		for goal, seqDs := range seq.Detections {
			parDs := par.Detections[goal]
			if fmt.Sprintf("%+v", parDs) != fmt.Sprintf("%+v", seqDs) {
				t.Errorf("scenario %d: detections for %s differ:\nparallel:   %+v\nsequential: %+v", i+1, goal, parDs, seqDs)
			}
		}
		if got, want := RenderViolationTable(par), RenderViolationTable(seq); got != want {
			t.Errorf("scenario %d: rendered violation tables differ", i+1)
		}
	}
	if got, want := RenderSummary(parallel), RenderSummary(sequentialResults(t)); got != want {
		t.Errorf("cross-scenario summaries differ:\n%s\n---\n%s", got, want)
	}
}

func sequentialResults(t *testing.T) []Result {
	t.Helper()
	out := make([]Result, 10)
	for i := range out {
		out[i] = cachedRun(t, i+1)
	}
	return out
}

func TestRunnerWorkerCount(t *testing.T) {
	if got := NewEngine(WithWorkers(8)).workerCount(); got != 8 {
		t.Errorf("explicit pool size must be honoured, got %d", got)
	}
	if got := NewEngine(WithWorkers(-1)).workerCount(); got < 1 {
		t.Errorf("defaulted pool size must be positive, got %d", got)
	}
	if out := (Runner{Workers: 4}).Run(nil); len(out) != 0 {
		t.Errorf("running no jobs should return no results, got %d", len(out))
	}
	if out := (Runner{Workers: -1}).Run(nil); len(out) != 0 {
		t.Errorf("running no jobs on a defaulted pool should return no results, got %d", len(out))
	}
}

// TestResultTerminatedEarlyDefaultDuration is the regression test for the
// duration-normalization bug: a scenario with an unset Duration runs with the
// 20 s default, and an early-collision run must report TerminatedEarly even
// though the scenario literal said 0.
func TestResultTerminatedEarlyDefaultDuration(t *testing.T) {
	sc, ok := ScenarioByNumber(7)
	if !ok {
		t.Fatal("no scenario 7")
	}
	sc.Duration = 0
	r := Run(sc)
	if !r.Collision {
		t.Fatal("scenario 7 should collide")
	}
	if r.Scenario.Duration != 20*time.Second {
		t.Errorf("Result.Scenario.Duration = %v, want the normalized 20s default", r.Scenario.Duration)
	}
	if !r.TerminatedEarly() {
		t.Error("an early-collision run with a defaulted duration must report TerminatedEarly")
	}
}

func TestFamilyVariants(t *testing.T) {
	base, _ := ScenarioByNumber(1)
	f := Family{
		Base:            base,
		InitialSpeeds:   []float64{4, 8},
		ObjectDistances: []float64{110, 80},
		OptionSets:      []Options{{}, {CorrectDefects: true}},
	}
	if f.Size() != 8 {
		t.Fatalf("family size = %d, want 8", f.Size())
	}
	jobs := f.Variants()
	if len(jobs) != 8 {
		t.Fatalf("variants = %d, want 8", len(jobs))
	}
	names := make(map[string]bool)
	for _, j := range jobs {
		if names[j.Scenario.Name] {
			t.Errorf("duplicate variant name %q", j.Scenario.Name)
		}
		names[j.Scenario.Name] = true
		if j.Scenario.Number != base.Number || j.Scenario.Duration != base.Duration {
			t.Errorf("variant %q lost base metadata", j.Scenario.Name)
		}
		if j.Scenario.ObjectSpeed != base.ObjectSpeed || j.Scenario.Gear != base.Gear {
			t.Errorf("variant %q changed an axis that was not swept", j.Scenario.Name)
		}
	}
	// The zero family yields exactly the base scenario.
	solo := Family{Base: base}.Variants()
	if len(solo) != 1 || solo[0].Scenario.InitialSpeed != base.InitialSpeed {
		t.Errorf("zero family should yield the base scenario, got %+v", solo)
	}
}

func TestDefaultSweepShape(t *testing.T) {
	sw := DefaultSweep()
	if len(sw.Families) != 10 {
		t.Fatalf("default sweep has %d families, want 10", len(sw.Families))
	}
	if sw.Size() < 100 {
		t.Errorf("default sweep generates %d variants, want >= 100", sw.Size())
	}
	jobs := sw.Jobs()
	if len(jobs) != sw.Size() {
		t.Errorf("Jobs() yields %d, Size() says %d", len(jobs), sw.Size())
	}
}

// TestRunSweep executes a small short-duration sweep through the parallel
// runner and checks the aggregate bookkeeping.
func TestRunSweep(t *testing.T) {
	base, _ := ScenarioByNumber(7)
	base.Duration = 2 * time.Second
	sw := Sweep{Families: []Family{{
		Base:            base,
		InitialSpeeds:   []float64{0, 1},
		ObjectDistances: []float64{-12, -9},
	}}}
	res := Runner{Workers: 4}.RunSweep(sw)
	if len(res.Jobs) != 4 || len(res.Results) != 4 {
		t.Fatalf("sweep ran %d jobs / %d results, want 4", len(res.Jobs), len(res.Results))
	}
	var want monitor.Summary
	collisions := 0
	for i, r := range res.Results {
		if r.Scenario.Name != res.Jobs[i].Scenario.Name {
			t.Errorf("result %d is %q, job is %q: order must be preserved", i, r.Scenario.Name, res.Jobs[i].Scenario.Name)
		}
		want = want.Add(r.Summary)
		if r.Collision {
			collisions++
		}
	}
	if res.Aggregate != want {
		t.Errorf("aggregate = %v, want %v", res.Aggregate, want)
	}
	if res.Collisions != collisions {
		t.Errorf("collisions = %d, want %d", res.Collisions, collisions)
	}
}
