package scenarios

// Differential tests for dynamics-grouped execution: an Engine with grouping
// enabled must produce byte-identical output — every StreamResult, in the
// same order, under the same index and Job.Key, folding to the same
// aggregate — as the same Engine with grouping disabled.  The grouped path
// shares one simulation pass across a dynamics group and classifies its
// recorded violation intervals once per job (FastSummaryAt), so these tests
// are the proof that the sharing is unobservable downstream.

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

// streamBytes runs src through an Engine built with opts and returns the
// deterministic NDJSON encoding of the full result stream (index, job key,
// marshalled Result per line) together with the marshalled aggregate.
func streamBytes(t *testing.T, src JobSource, opts ...EngineOption) ([]byte, []byte) {
	t.Helper()
	engine := NewEngine(opts...)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	var acc Accumulator
	err := engine.Stream(context.Background(), src, Tee(SinkFunc(func(sr StreamResult) error {
		return enc.Encode(struct {
			Index  int    `json:"index"`
			Key    string `json:"key"`
			Result Result `json:"result"`
		}{sr.Index, sr.Job.Key(), sr.Result})
	}), &acc))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := json.Marshal(acc.SweepResult())
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), agg
}

// assertGroupedMatchesUngrouped is the core differential: one sweep, two
// engines differing only in WithGrouping, byte-identical stream and
// aggregate.
func assertGroupedMatchesUngrouped(t *testing.T, sw Sweep, opts ...EngineOption) {
	t.Helper()
	base := append([]EngineOption{WithRetention(SummaryOnly)}, opts...)
	gotStream, gotAgg := streamBytes(t, sw.Source(), append(base, WithGrouping(true))...)
	wantStream, wantAgg := streamBytes(t, sw.Source(), append(base, WithGrouping(false))...)
	if !bytes.Equal(gotStream, wantStream) {
		t.Errorf("grouped result stream differs from ungrouped (%d vs %d bytes)",
			len(gotStream), len(wantStream))
	}
	if !bytes.Equal(gotAgg, wantAgg) {
		t.Errorf("grouped aggregate differs from ungrouped:\n grouped:   %s\n ungrouped: %s",
			gotAgg, wantAgg)
	}
}

// TestGroupedMatchesUngroupedTolerance proves grouped execution on the sweep
// it exists for: the tolerance axis is innermost, so every family forms one
// width-3 dynamics group and the grouped engine simulates each trajectory
// once instead of three times.
func TestGroupedMatchesUngroupedTolerance(t *testing.T) {
	sw := ToleranceSweep()
	for i := range sw.Families {
		sw.Families[i].Base.Duration = 1 * time.Second
	}
	assertGroupedMatchesUngrouped(t, sw)
}

// TestGroupedMatchesUngroupedSweeps extends the differential across sweeps
// whose innermost axes are NOT the tolerance — defect sets, driver
// schedules, speeds, gears — where consecutive jobs rarely share dynamics
// and grouped dispatch must degrade to width-1 groups without disturbing
// anything.
func TestGroupedMatchesUngroupedSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the defect and huge sweep presets twice each")
	}
	for _, preset := range []struct {
		name  string
		sweep Sweep
	}{
		{"defects", DefectSweep()},
		{"huge", HugeSweep()},
	} {
		preset := preset
		t.Run(preset.name, func(t *testing.T) {
			sw := preset.sweep
			for i := range sw.Families {
				sw.Families[i].Base.Duration = 500 * time.Millisecond
			}
			assertGroupedMatchesUngrouped(t, sw)
		})
	}
}

// TestGroupedMatchesUngroupedWithCache layers the result cache over grouped
// execution and re-streams the sweep, so partially and fully cached groups
// (the miss-subset path of runGroupTask) are exercised and still produce
// identical bytes.
func TestGroupedMatchesUngroupedWithCache(t *testing.T) {
	sw := ToleranceSweep()
	for i := range sw.Families {
		sw.Families[i].Base.Duration = 500 * time.Millisecond
	}
	grouped := NewEngine(WithRetention(SummaryOnly), WithResultCache(), WithGrouping(true))
	ungrouped := NewEngine(WithRetention(SummaryOnly), WithResultCache(), WithGrouping(false))
	collect := func(e *Engine) []byte {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		err := e.Stream(context.Background(), sw.Source(), SinkFunc(func(sr StreamResult) error {
			return enc.Encode(sr.Result)
		}))
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for pass := 0; pass < 2; pass++ {
		g, u := collect(grouped), collect(ungrouped)
		if !bytes.Equal(g, u) {
			t.Fatalf("pass %d: grouped+cache stream differs from ungrouped+cache", pass)
		}
	}
	if hits, misses := grouped.CacheStats(); hits != sw.Size() || misses != sw.Size() {
		t.Fatalf("grouped cache stats hits=%d misses=%d, want %d/%d", hits, misses, sw.Size(), sw.Size())
	}
}

// TestGroupStatsToleranceSweep pins the acceptance arithmetic of the grouped
// path: the 30-variant tolerance sweep (10 families x 3 tolerances) forms
// exactly 10 groups and executes exactly ceil(30/3) = 10 simulation passes —
// 20 saved, mean width 3.0.  A second cached pass re-dispatches the groups
// but simulates nothing.
func TestGroupStatsToleranceSweep(t *testing.T) {
	sw := ToleranceSweep()
	for i := range sw.Families {
		sw.Families[i].Base.Duration = 500 * time.Millisecond
	}
	engine := NewEngine(WithRetention(SummaryOnly), WithResultCache())
	if _, err := engine.Accumulate(context.Background(), sw.Source()); err != nil {
		t.Fatal(err)
	}
	gs := engine.GroupStats()
	width := len(sw.Families[0].Tolerances)
	wantSims := (sw.Size() + width - 1) / width // ceil(variants / K)
	if gs.Groups != 10 || gs.Jobs != sw.Size() || gs.Sims != wantSims {
		t.Fatalf("first pass stats = %+v, want Groups=10 Jobs=%d Sims=%d", gs, sw.Size(), wantSims)
	}
	if gs.SimsSaved() != sw.Size()-wantSims {
		t.Fatalf("SimsSaved = %d, want %d", gs.SimsSaved(), sw.Size()-wantSims)
	}
	if gs.MeanWidth() != float64(width) {
		t.Fatalf("MeanWidth = %v, want %d", gs.MeanWidth(), width)
	}

	// Second pass: every variant is cached, so the groups are dispatched and
	// counted but no further simulation passes run.
	if _, err := engine.Accumulate(context.Background(), sw.Source()); err != nil {
		t.Fatal(err)
	}
	gs = engine.GroupStats()
	if gs.Groups != 20 || gs.Jobs != 2*sw.Size() || gs.Sims != wantSims {
		t.Fatalf("second pass stats = %+v, want Groups=20 Jobs=%d Sims=%d", gs, 2*sw.Size(), wantSims)
	}
}

// TestGroupStatsZeroWhenInapplicable: disabling grouping (or running under
// KeepTrace, where grouping never applies) leaves the counters at zero, so
// GroupStats always describes what grouping did.
func TestGroupStatsZeroWhenInapplicable(t *testing.T) {
	sw := ToleranceSweep()
	for i := range sw.Families {
		sw.Families[i].Base.Duration = 200 * time.Millisecond
	}
	off := NewEngine(WithRetention(SummaryOnly), WithGrouping(false))
	if _, err := off.Accumulate(context.Background(), sw.Source()); err != nil {
		t.Fatal(err)
	}
	if gs := off.GroupStats(); gs != (GroupStats{}) {
		t.Fatalf("WithGrouping(false) recorded stats %+v, want zero", gs)
	}
	if gs := (GroupStats{}); gs.MeanWidth() != 0 {
		t.Fatalf("zero GroupStats MeanWidth = %v, want 0", gs.MeanWidth())
	}

	keep := NewEngine(WithRetention(KeepTrace))
	one := sw.Families[0]
	one.Base.Duration = 200 * time.Millisecond
	if _, err := keep.Accumulate(context.Background(), Sweep{Families: []Family{one}}.Source()); err != nil {
		t.Fatal(err)
	}
	if gs := keep.GroupStats(); gs != (GroupStats{}) {
		t.Fatalf("KeepTrace recorded stats %+v, want zero", gs)
	}
}

// TestGroupWidthBound streams 40 jobs sharing one DynamicsKey through a
// single-worker ordered engine.  The dispatcher must split them at
// maxGroupWidth (16/16/8), deliver all 40 results in source order, and —
// because the pending group holds window tokens before dispatch — never
// deadlock even though the group width exceeds 2*workers.
func TestGroupWidthBound(t *testing.T) {
	sc, ok := ScenarioByNumber(1)
	if !ok {
		t.Fatal("scenario 1 missing")
	}
	sc.Duration = 200 * time.Millisecond
	jobs := make([]Job, 40)
	for i := range jobs {
		j := Job{Scenario: sc}
		j.Scenario.Name = sc.Name + "#" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		jobs[i] = j
	}
	for _, j := range jobs[1:] {
		if j.DynamicsKey() != jobs[0].DynamicsKey() {
			t.Fatal("width-bound fixture jobs do not share a DynamicsKey")
		}
	}

	engine := NewEngine(WithWorkers(1), WithRetention(SummaryOnly))
	var idx []int
	var results []Result
	err := engine.Stream(context.Background(), SliceSource(jobs), SinkFunc(func(sr StreamResult) error {
		idx = append(idx, sr.Index)
		results = append(results, sr.Result)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != len(jobs) {
		t.Fatalf("delivered %d results, want %d", len(idx), len(jobs))
	}
	for i, got := range idx {
		if got != i {
			t.Fatalf("result %d delivered under index %d", i, got)
		}
	}
	for i, r := range results {
		if r.Summary != results[0].Summary || r.Steps != results[0].Steps {
			t.Errorf("identical-dynamics job %d produced a different result", i)
		}
		if r.Scenario.Name != jobs[i].Scenario.Name {
			t.Errorf("result %d carries scenario %q, want %q", i, r.Scenario.Name, jobs[i].Scenario.Name)
		}
	}
	gs := engine.GroupStats()
	if gs.Groups != 3 || gs.Jobs != 40 || gs.Sims != 3 {
		t.Fatalf("width bound stats = %+v, want Groups=3 Jobs=40 Sims=3 (16/16/8)", gs)
	}
}

// TestArenaGroupMatchesIsolated proves the two halves of grouped execution
// against each other and against fresh per-job runs, per tolerance family:
// runGroup (one suite observes, K classifications via FastSummaryAt) must
// equal runGroupIsolated (K compiled programs observe one pass, no tolerance
// override) must equal arena.run of each job on its own pass.
func TestArenaGroupMatchesIsolated(t *testing.T) {
	arena := newRunArena()
	for _, f := range ToleranceSweep().Families {
		f.Base.Duration = 1 * time.Second
		jobs := f.Variants()

		grouped := make([]Result, len(jobs))
		arena.runGroup(jobs, grouped)
		isolated := make([]Result, len(jobs))
		arena.runGroupIsolated(jobs, isolated)

		for i, j := range jobs {
			fresh := arena.run(j.Scenario, j.Options)
			for _, cmp := range []struct {
				path string
				got  Result
			}{{"runGroup", grouped[i]}, {"runGroupIsolated", isolated[i]}} {
				if cmp.got.Summary != fresh.Summary {
					t.Errorf("%s %s: %s summary %v != per-job summary %v",
						f.Base.Name, j.Options.Label(), cmp.path, cmp.got.Summary, fresh.Summary)
				}
				if cmp.got.Steps != fresh.Steps || cmp.got.Collision != fresh.Collision {
					t.Errorf("%s %s: %s steps/collision (%d,%v) != per-job (%d,%v)",
						f.Base.Name, j.Options.Label(), cmp.path,
						cmp.got.Steps, cmp.got.Collision, fresh.Steps, fresh.Collision)
				}
				if cmp.got.Scenario.Name != j.Scenario.Name {
					t.Errorf("%s: %s result %d carries scenario %q", f.Base.Name, cmp.path, i, cmp.got.Scenario.Name)
				}
				if cmp.got.Scenario.Duration != 1*time.Second {
					t.Errorf("%s: %s result %d duration %v not normalized", f.Base.Name, cmp.path, i, cmp.got.Scenario.Duration)
				}
			}
		}
	}
}
