package scenarios

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/temporal"
	"repro/internal/vehicle"
)

// AppendixCAnalyses builds one Indirect Control Path Analysis per system
// safety goal, reproducing the structure of the thesis' Appendix C
// (Figures C.1–C.38): the indirect control paths from the goal variables
// through the Arbiter to the feature subsystems and the driver, the numbered
// indirect-control relationships, the goal coverage strategy of §5.3
// (redundant responsibility with the Arbiter as primary for all goals except
// goal 3, which is single responsibility at the Arbiter), and the resulting
// Arbiter and feature subgoals of Table 5.3.
func AppendixCAnalyses() []*core.Analysis {
	model := vehicle.Model()
	out := make([]*core.Analysis, 0, len(GoalNames))
	for _, name := range GoalNames {
		out = append(out, buildVehicleICPA(name, model))
	}
	return out
}

// VehicleICPA builds the Appendix C analysis for one system safety goal.
func VehicleICPA(goalName string) (*core.Analysis, bool) {
	for _, name := range GoalNames {
		if name == goalName {
			return buildVehicleICPA(name, vehicle.Model()), true
		}
	}
	return nil, false
}

func buildVehicleICPA(goalName string, model *core.SystemModel) *core.Analysis {
	registry := VehicleGoals()
	a := core.NewAnalysis(registry.MustGet(goalName), model)
	a.TracePaths(0)

	// Indirect control relationships shared by all of the vehicle goals:
	// how the sensed motion relates to the arbitrated command, and how the
	// command relates to the selected request (Figure 4.4 applied to
	// Figure 5.1).
	relResponse := a.AddRelationship(vehicle.SigVehicleAccel,
		[]string{"Powertrain", "MotionSensors"},
		temporal.MustParse(fmt.Sprintf("prevfor[600ms](%s <= 2) => %s <= 2.4",
			vehicle.SigAccelCommand, vehicle.SigVehicleAccel)),
		"The achieved acceleration tracks the arbitrated command within the powertrain response time, with bounded overshoot")
	relSelection := a.AddRelationship(vehicle.SigAccelCommand,
		[]string{"Arbiter"},
		temporal.MustParse(fmt.Sprintf("%s => %s == %s",
			vehicle.SigAccelFromSubsystem, vehicle.SigAccelCommand, vehicle.SigSelectedRequestValue)),
		"When a subsystem is selected, the acceleration command equals that subsystem's request")
	relAttribution := a.AddRelationship(vehicle.SigAccelSource,
		[]string{"Arbiter"},
		temporal.MustParse(fmt.Sprintf("%s => (%s != 'Driver' & %s != 'None')",
			vehicle.SigAccelFromSubsystem, vehicle.SigAccelSource, vehicle.SigAccelSource)),
		"The source tag identifies the subsystem whose request was selected")
	relDriverPedals := a.AddRelationship(vehicle.SigAccelCommand,
		[]string{"Driver", "Arbiter"},
		temporal.MustParse(fmt.Sprintf("(prev(%s) & !%s) => %s == 'Driver'",
			vehicle.SigPedalApplied, vehicle.SigSelectedSoftRequestFwd, vehicle.SigAccelSource)),
		"A driver pedal application overrides any selected subsystem request that is not an emergency stop")
	relSteering := a.AddRelationship(vehicle.SigSteerCommand,
		[]string{"Arbiter"},
		temporal.MustParse(fmt.Sprintf("%s => (%s == 'LCA' | %s == 'PA' | %s == 'Driver')",
			vehicle.SigSteerFromSubsystem, vehicle.SigSteerSource, vehicle.SigSteerSource, vehicle.SigSteerSource)),
		"Only LCA, PA and the driver produce steering requests")

	// Coverage strategy (§5.3): the Arbiter carries primary responsibility
	// because it is the final source of the acceleration and steering
	// commands; the feature subsystems carry secondary (redundant)
	// responsibility, except for goal 3 where maintaining the arbitration
	// logic in every feature would be impractical.
	if goalName == Goal3Agreement {
		a.SetCoverage(core.CoverageStrategy{
			Assignment:  core.SingleResponsibility,
			Scope:       core.Restrictive,
			Responsible: []string{"Arbiter"},
			Note:        "Maintaining the arbitration logic in every feature subsystem is impractical in a distributed development environment.",
		})
	} else {
		a.SetCoverage(core.CoverageStrategy{
			Assignment:  core.RedundantResponsibility,
			Scope:       core.Restrictive,
			Responsible: []string{"Arbiter"},
			Secondary:   featureSubgoalAssignments(goalName),
			Note:        "Worst-case actuation delays assumed; feature subgoals are OR-reduced to constrain requests unconditionally.",
		})
	}

	a.AddElaboration(
		fmt.Sprintf("%s  <=  Arbiter command subgoal under the powertrain response assumption", goalName),
		core.TacticIntroduceActuation,
		[]int{relResponse, relSelection, relAttribution},
		"Introduce actuation goal: constrain the arbitrated command instead of the sensed response")
	if goalName != Goal3Agreement {
		a.AddElaboration(
			"Feature request subgoals obtained by OR-reduction: constrain every request, whether or not it is selected",
			core.TacticORReduction,
			[]int{relSelection, relDriverPedals, relSteering},
			"Redundant (secondary) coverage protects against arbiter selection faults earlier in the control flow")
	}

	if sub, ok := arbiterSubgoal(goalName); ok {
		a.AddSubgoal(core.SubsystemGoal{
			Subsystem:   "Arbiter",
			Goal:        sub,
			Controls:    []string{vehicle.SigAccelCommand, vehicle.SigSteerCommand, vehicle.SigAccelSource, vehicle.SigSteerSource},
			Observes:    featureRequestSignals(),
			Restrictive: true,
			MonitorAt:   "Arbiter",
		})
	}
	for _, feature := range featureSubgoalAssignments(goalName) {
		sub, ok := featureSubgoal(goalName, feature)
		if !ok {
			continue
		}
		controls := []string{vehicle.SigAccelRequest(feature)}
		if feature == vehicle.SourceLCA || feature == vehicle.SourcePA {
			controls = append(controls, vehicle.SigSteerRequest(feature))
		}
		a.AddSubgoal(core.SubsystemGoal{
			Subsystem:   feature,
			Goal:        sub,
			Controls:    controls,
			Observes:    sub.MonitoredVars(),
			Restrictive: true,
			Redundant:   true,
			MonitorAt:   feature,
		})
	}
	return a
}

func featureRequestSignals() []string {
	out := make([]string, 0, len(vehicle.FeatureNames)*2)
	for _, f := range vehicle.FeatureNames {
		out = append(out, vehicle.SigAccelRequest(f), vehicle.SigSteerRequest(f))
	}
	return out
}

// LessonsFromICPA returns the design insights the thesis reports from
// applying ICPA to the vehicle (§5.3.2), so that tools and examples can
// print them next to the analyses.
func LessonsFromICPA() []string {
	return []string{
		"Arbitration of feature control requests is divided between longitudinal acceleration and steering, which complicates actions that coordinate the two.",
		"Prioritisation of feature requests in steering arbitration is the reverse of the prioritisation in acceleration arbitration, which can produce feature-interaction problems when different subsystems are chosen for acceleration and steering.",
		"The Arbiter indicates control with separate 'selected' flags, so control actions can be attributed to multiple sources.",
		"ACC performs the longitudinal control for LCA, so subgoals limiting acceleration requests need not be monitored separately for LCA.",
		"Almost all safety subgoals are restrictive, usually because of jitter in monitored or controlled values.",
		"Some goals can only be monitored at the subsystem level: a goal that restricts a directly controlled variable cannot be monitored above the level of the subsystem that controls it.",
		"Goal redundancy between hierarchy levels only protects against defects in subsystems earlier in the control flow.",
	}
}
