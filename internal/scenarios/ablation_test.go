package scenarios

import (
	"testing"

	"repro/internal/vehicle"
)

// TestAblationCorrectedDefects runs representative scenarios with every
// seeded defect removed.  The ablation separates the monitoring approach
// from the defects it detects: with the defects corrected, the
// defect-specific violations disappear, while the restrictive-subgoal
// false positives that stem from the goal coverage strategy itself (e.g.
// hard braking inherently exceeding the jerk limit) may remain.
func TestAblationCorrectedDefects(t *testing.T) {
	t.Run("scenario 2 corrected: CA stops the vehicle", func(t *testing.T) {
		sc, _ := ScenarioByNumber(2)
		r := RunCorrected(sc)
		if r.Collision {
			t.Error("with the arbitration defect removed, CA's braking should prevent the collision")
		}
		// The defect signature — the command following a source other than
		// the one selected by the acceleration stage — is gone: whenever a
		// subsystem is in control, the command equals the selected request.
		for i := 0; i < r.Trace.Len(); i++ {
			st := r.Trace.At(i)
			if st.Bool(vehicle.SigAccelFromSubsystem) {
				if st.Number(vehicle.SigAccelCommand) != st.Number(vehicle.SigSelectedRequestValue) {
					t.Fatalf("at state %d the command does not match the selected request despite the corrected arbiter", i)
				}
			}
		}
		// Goals 1 and 3 may still be violated by the (legitimate) feature
		// interaction of engaging PA during a CA stop; the ablation isolates
		// the arbitration defect, not every hazard in the design.
	})

	t.Run("scenario 7 corrected: RCA engages", func(t *testing.T) {
		sc, _ := ScenarioByNumber(7)
		r := RunCorrected(sc)
		engaged := false
		for i := 0; i < r.Trace.Len(); i++ {
			if r.Trace.At(i).Bool(vehicle.SigActive(vehicle.SourceRCA)) {
				engaged = true
				break
			}
		}
		if !engaged {
			t.Error("with the defect removed, RCA should engage while reversing toward the object")
		}
		if r.Collision {
			t.Error("with RCA engaging, the rear collision should be avoided")
		}
	})

	t.Run("scenario 8 corrected: ACC rejects reverse engagement", func(t *testing.T) {
		sc, _ := ScenarioByNumber(8)
		r := RunCorrected(sc)
		if violated(r, Goal9BackwardBlock) {
			t.Error("goal 9 should not be violated once ACC checks the direction of travel")
		}
	})

	t.Run("scenario 9 corrected: PA silent and not mismatched", func(t *testing.T) {
		sc, _ := ScenarioByNumber(9)
		r := RunCorrected(sc)
		if violatedAt(r, "Achieve[NoAutoAccelRequestFromStop:PA]", "PA") {
			// PA still legitimately requests acceleration when engaged from
			// a stop; the goal-4 chain is a property of the feature design,
			// not of a seeded defect, so it is still reported.
			t.Log("PA still requests acceleration from a stop when engaged (expected)")
		}
		// The command now equals PA's request whenever PA is selected.
		for i := 0; i < r.Trace.Len(); i++ {
			st := r.Trace.At(i)
			if st.Bool(vehicle.SigSelected(vehicle.SourcePA)) && st.StringVal(vehicle.SigAccelSource) == vehicle.SourcePA {
				req := st.Number(vehicle.SigAccelRequest(vehicle.SourcePA))
				cmd := st.Number(vehicle.SigAccelCommand)
				if req != cmd {
					t.Fatalf("corrected arbiter should pass PA's request through unchanged: req=%v cmd=%v", req, cmd)
				}
			}
		}
	})

	t.Run("defect-specific false positives disappear", func(t *testing.T) {
		sc, _ := ScenarioByNumber(1)
		defective := cachedRun(t, 1)
		corrected := RunCorrected(sc)
		// The PA spurious-request subgoal violations are pure defect
		// artefacts and must vanish.
		if violatedAt(corrected, "Maintain[AutoJerkRequestBelowThreshold:PA]", "PA") {
			t.Error("PA jerk subgoal violations should disappear with the defect removed")
		}
		if !violatedAt(defective, "Maintain[AutoJerkRequestBelowThreshold:PA]", "PA") {
			t.Error("sanity: the defective run should show the PA jerk subgoal violations")
		}
	})
}
