package scenarios

import (
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/temporal"
	"repro/internal/vehicle"
)

// runArena is a fully reusable simulation run: one schema, one bus, one
// component set and one compiled evaluation program per tolerance, owned by a
// single Engine worker and rewound between sweep variants instead of being
// rebuilt.  A fresh run interns ~90 signal names, builds nine components and
// an ~80-handle table, and compiles (or resets) a ~50-formula monitor suite;
// the arena pays all of that once per worker, so the steady state of a
// summary-only sweep allocates nothing per step and only O(1) bookkeeping per
// variant (the final bus snapshot and the Result itself).
//
// The arena exists for SummaryOnly retention: a KeepTrace result hands its
// trace and suite to the caller, so those runs build fresh state per job
// (runJobCached).  An arena is not safe for concurrent use; workers own one
// each.
type runArena struct {
	sim *sim.Simulation
	set *vehicleSet

	// suites caches one compiled suite per hit-matching tolerance — the only
	// option that changes the monitoring plan's structure — compiled against
	// the arena's schema, so its atoms stay slot-resolved across variants.
	suites map[int]*monitor.CompiledSuite
	// suite is the current variant's suite, fed by the arena's single
	// registered observer.
	suite *monitor.CompiledSuite
	// collision is the stop-predicate slot, resolved once per arena.
	collision int
}

// newRunArena builds the reusable simulation: components constructed and
// bound once, the observer and stop predicate registered once.  The bus
// vocabulary is interned by the first prepare.
func newRunArena() *runArena {
	a := &runArena{
		set:    newVehicleSet(),
		suites: make(map[int]*monitor.CompiledSuite),
	}
	a.sim = sim.New(Period)
	components := a.set.components()
	vehicle.BindAll(a.sim.Bus, components...)
	a.sim.Add(components...)
	a.sim.Observe(a)
	a.collision = a.sim.Bus.Schema().Intern(vehicle.SigCollision)
	a.sim.StopWhen(func(_ time.Duration, st temporal.State) bool {
		return st.SlotBool(a.collision)
	})
	return a
}

// Observe implements sim.StateObserver by forwarding each committed state to
// the current variant's suite, so the simulation's observer list never grows
// across variants.
func (a *runArena) Observe(st temporal.State) { a.suite.Observe(st) }

// prepare rewinds the arena for one variant: bus planes cleared, components
// reset and reconfigured, signal vocabulary re-initialised (two plane stores
// per signal — every name is already interned after the first variant), and
// the tolerance's compiled suite selected and reset.
func (a *runArena) prepare(sc Scenario, opts Options) {
	a.sim.Reset()
	a.set.configure(sc, opts)
	initVehicleBus(a.sim.Bus, sc)

	tol := opts.tolerance()
	suite, ok := a.suites[tol]
	if ok {
		suite.Reset()
	} else {
		suite = buildCompiledSuite(Period, a.sim.Bus.Schema(), tol)
		a.suites[tol] = suite
	}
	a.suite = suite
}

// run executes one summary-only variant on the rewound arena and returns its
// Result.  It is the arena counterpart of runJobCached with
// retention == SummaryOnly.
func (a *runArena) run(sc Scenario, opts Options) Result {
	a.prepare(sc, opts)

	// Normalize the default duration into the scenario recorded on the
	// Result, so Result.TerminatedEarly compares the executed steps against
	// the duration that was actually scheduled.
	if sc.Duration <= 0 {
		sc.Duration = DefaultDuration
	}
	steps, last := a.sim.RunDiscard(sc.Duration)
	a.suite.Finish()

	return Result{
		Scenario:  sc,
		Steps:     steps,
		Summary:   a.suite.FastSummary(),
		Collision: last != nil && last.Bool(vehicle.SigCollision),
	}
}
