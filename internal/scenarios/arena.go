package scenarios

import (
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/temporal"
	"repro/internal/vehicle"
)

// runArena is a fully reusable simulation run: one schema, one bus, one
// component set and one compiled evaluation program per tolerance, owned by a
// single Engine worker and rewound between sweep variants instead of being
// rebuilt.  A fresh run interns ~90 signal names, builds nine components and
// an ~80-handle table, and compiles (or resets) a ~50-formula monitor suite;
// the arena pays all of that once per worker, so the steady state of a
// summary-only sweep allocates nothing per step and only O(1) bookkeeping per
// variant (the final bus snapshot and the Result itself).
//
// Beyond single variants, the arena executes dynamics groups (runGroup):
// jobs that share a DynamicsKey are run as ONE simulation pass, observed
// once, and classified once per job at that job's own tolerance — the
// "simulate once, observe many" path.  The registered observer fans each
// committed state out to every active suite, so the arena can also drive K
// independent compiled programs over one pass (runGroupIsolated, the
// reference the fast path is proven against).
//
// The arena exists for SummaryOnly retention: a KeepTrace result hands its
// trace and suite to the caller, so those runs build fresh state per job
// (runJobCached).  An arena is not safe for concurrent use; workers own one
// each.
type runArena struct {
	sim *sim.Simulation
	//lint:resetok configure reassigns every scenario parameter and defect flag absolutely before each run; the components themselves are reset through sim.Reset
	set *vehicleSet

	// suites caches one compiled suite per hit-matching tolerance — the only
	// option that changes the monitoring plan's structure — compiled against
	// the arena's schema, so its atoms stay slot-resolved across variants.
	//lint:resetok the compiled-suite pool deliberately survives Reset (compiling the ~50-formula plan is the cost the arena exists to amortize); each suite is rewound by activate before it observes a run
	suites map[int]*monitor.CompiledSuite
	// active are the compiled suites observing the current pass, fed by the
	// arena's single registered observer.  Single-variant runs activate one
	// suite; runGroupIsolated activates one per distinct tolerance.
	active []*monitor.CompiledSuite
	// collision is the stop-predicate slot, resolved once per arena.
	collision int
}

// newRunArena builds the reusable simulation: components constructed and
// bound once, the observer and stop predicate registered once.  The bus
// vocabulary is interned by the first prepare.
func newRunArena() *runArena {
	a := &runArena{
		set:    newVehicleSet(),
		suites: make(map[int]*monitor.CompiledSuite),
	}
	a.sim = sim.New(Period)
	components := a.set.components()
	vehicle.BindAll(a.sim.Bus, components...)
	a.sim.Add(components...)
	a.sim.Observe(a)
	a.collision = a.sim.Bus.Schema().Intern(vehicle.SigCollision)
	a.sim.StopWhen(func(_ time.Duration, st temporal.State) bool {
		return st.SlotBool(a.collision)
	})
	return a
}

// Observe implements sim.StateObserver by fanning each committed state out to
// every active suite, so the simulation's observer list never grows across
// variants and K compiled programs can share one pass.
func (a *runArena) Observe(st temporal.State) {
	for _, s := range a.active {
		s.Observe(st)
	}
}

// Reset implements sim.Resetter for the arena itself: the simulation (bus
// planes, component state, step clock) is rewound and the active-observer
// list cleared.  The compiled-suite pool and the component set survive —
// suites are rewound by activate when next used, and configure reassigns
// every component parameter absolutely before the next run.
func (a *runArena) Reset() {
	a.sim.Reset()
	a.active = a.active[:0]
}

// activate fetches (or compiles) the tolerance's suite from the pool, rewinds
// it and registers it with the observer fan-out for the current pass.
func (a *runArena) activate(tol int) *monitor.CompiledSuite {
	suite, ok := a.suites[tol]
	if ok {
		suite.Reset()
	} else {
		suite = buildCompiledSuite(Period, a.sim.Bus.Schema(), tol)
		a.suites[tol] = suite
	}
	a.active = append(a.active, suite)
	return suite
}

// prepare rewinds the arena for one variant: bus planes cleared, components
// reset and reconfigured, signal vocabulary re-initialised (two plane stores
// per signal — every name is already interned after the first variant), and
// the tolerance's compiled suite activated.
func (a *runArena) prepare(sc Scenario, opts Options) {
	a.Reset()
	a.set.configure(sc, opts)
	initVehicleBus(a.sim.Bus, sc)
	a.activate(opts.tolerance())
}

// run executes one summary-only variant on the rewound arena and returns its
// Result.  It is the arena counterpart of runJobCached with
// retention == SummaryOnly.
func (a *runArena) run(sc Scenario, opts Options) Result {
	a.prepare(sc, opts)

	// Normalize the default duration into the scenario recorded on the
	// Result, so Result.TerminatedEarly compares the executed steps against
	// the duration that was actually scheduled.
	if sc.Duration <= 0 {
		sc.Duration = DefaultDuration
	}
	steps, last := a.sim.RunDiscard(sc.Duration)
	suite := a.active[0]
	suite.Finish()

	return Result{
		Scenario:  sc,
		Steps:     steps,
		Summary:   suite.FastSummary(),
		Collision: last != nil && last.Bool(vehicle.SigCollision),
	}
}

// runGroup executes one dynamics group — jobs sharing a DynamicsKey — as a
// single simulation pass and fills out[i] with jobs[i]'s Result, exactly as
// arena.run would have produced it.  One suite observes the shared
// trajectory; each job's summary is then classified from the recorded
// violation intervals at that job's own tolerance (FastSummaryAt).  The
// override is sound because the tolerance parameterizes only the final
// interval matching, never which intervals a run records; the grouped-vs-
// ungrouped differential tests and runGroupIsolated prove it.
func (a *runArena) runGroup(jobs []Job, out []Result) {
	if len(jobs) == 1 {
		out[0] = a.run(jobs[0].Scenario, jobs[0].Options)
		return
	}
	lead := jobs[0]
	a.prepare(lead.Scenario, lead.Options)
	sc := lead.Scenario
	if sc.Duration <= 0 {
		sc.Duration = DefaultDuration
	}
	steps, last := a.sim.RunDiscard(sc.Duration)
	suite := a.active[0]
	suite.Finish()
	collision := last != nil && last.Bool(vehicle.SigCollision)

	for i, j := range jobs {
		jsc := j.Scenario
		if jsc.Duration <= 0 {
			jsc.Duration = DefaultDuration
		}
		out[i] = Result{
			Scenario:  jsc,
			Steps:     steps,
			Summary:   suite.FastSummaryAt(j.Options.tolerance()),
			Collision: collision,
		}
	}
}

// runGroupIsolated is the multi-program reference execution of a dynamics
// group: one compiled suite per distinct tolerance, all rewound and
// registered on the shared pass through the observer fan-out, each job
// classified by its own suite's recorders with no tolerance override.  It
// proves the two halves of grouped execution independently — K programs
// observing one pass record exactly what K separate passes would, and the
// production fast path (one observer, K classifications) matches the
// K-program semantics.  Engine workers use runGroup; this path exists for
// the differential tests, like temporal.CompileReference.
func (a *runArena) runGroupIsolated(jobs []Job, out []Result) {
	lead := jobs[0]
	a.Reset()
	a.set.configure(lead.Scenario, lead.Options)
	initVehicleBus(a.sim.Bus, lead.Scenario)

	byTol := make(map[int]*monitor.CompiledSuite, len(jobs))
	for _, j := range jobs {
		tol := j.Options.tolerance()
		if _, ok := byTol[tol]; !ok {
			byTol[tol] = a.activate(tol)
		}
	}

	sc := lead.Scenario
	if sc.Duration <= 0 {
		sc.Duration = DefaultDuration
	}
	steps, last := a.sim.RunDiscard(sc.Duration)
	for _, s := range a.active {
		s.Finish()
	}
	collision := last != nil && last.Bool(vehicle.SigCollision)

	for i, j := range jobs {
		jsc := j.Scenario
		if jsc.Duration <= 0 {
			jsc.Duration = DefaultDuration
		}
		out[i] = Result{
			Scenario:  jsc,
			Steps:     steps,
			Summary:   byTol[j.Options.tolerance()].FastSummary(),
			Collision: collision,
		}
	}
}
