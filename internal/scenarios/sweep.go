package scenarios

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/monitor"
)

// Family derives parameterized variants of a base scenario.  Each non-empty
// axis replaces the corresponding base field; the variants are the cartesian
// product of all axes.  An empty axis keeps the base value, so the zero
// Family yields exactly the base scenario under default options.
//
// Families widen the thesis' ten fixed scenarios into a scenario space: the
// same defect set and driver schedule evaluated across a grid of initial
// conditions, which is the kind of evidence an emergent-safety claim needs —
// behaviour across many interconnected configurations, not one.
type Family struct {
	// Base is the scenario the variants are derived from.
	Base Scenario
	// InitialSpeeds enumerates host start speeds in m/s.
	InitialSpeeds []float64
	// ObjectDistances enumerates target-vehicle placements in m (negative
	// for objects behind the host).
	ObjectDistances []float64
	// ObjectSpeeds enumerates target-vehicle speeds in m/s.
	ObjectSpeeds []float64
	// Gears enumerates transmission gears ("D" or "R").
	Gears []string
	// OptionSets enumerates run options (e.g. seeded defects in place
	// versus the corrected ablation).
	OptionSets []Options
	// Tolerances enumerates hit-matching windows in states (see
	// Options.MatchTolerance; 0 selects the default of 150).  The axis
	// cross-products with OptionSets, overriding each option set's
	// MatchTolerance, so one sweep can measure how the hit /
	// false-negative / false-positive classification shifts with the
	// assumed inter-level observation and actuation delays.
	Tolerances []int
}

// Size returns the number of variants the family generates.
func (f Family) Size() int {
	n := 1
	for _, axis := range []int{
		len(f.InitialSpeeds), len(f.ObjectDistances), len(f.ObjectSpeeds),
		len(f.Gears), len(f.OptionSets), len(f.Tolerances),
	} {
		if axis > 0 {
			n *= axis
		}
	}
	return n
}

// axes resolves every axis to its effective values, substituting the base
// value for empty axes.
func (f Family) axes() (speeds, distances, objSpeeds []float64, gears []string, optionSets []Options, tolerances []int) {
	speeds = f.InitialSpeeds
	if len(speeds) == 0 {
		speeds = []float64{f.Base.InitialSpeed}
	}
	distances = f.ObjectDistances
	if len(distances) == 0 {
		distances = []float64{f.Base.ObjectDistance}
	}
	objSpeeds = f.ObjectSpeeds
	if len(objSpeeds) == 0 {
		objSpeeds = []float64{f.Base.ObjectSpeed}
	}
	gears = f.Gears
	if len(gears) == 0 {
		gears = []string{f.Base.Gear}
	}
	optionSets = f.OptionSets
	if len(optionSets) == 0 {
		optionSets = []Options{{}}
	}
	tolerances = f.Tolerances
	if len(tolerances) == 0 {
		tolerances = []int{0}
	}
	return speeds, distances, objSpeeds, gears, optionSets, tolerances
}

// variantName builds the variant identifier for one parameter assignment.
// It runs once per variant in the sweep-setup hot path, so it is built with
// strconv and a strings.Builder rather than fmt.  The options label covers
// every Options field, so option sets differing in any field never collide.
func variantName(base string, speed, dist, objSpeed float64, gear string, opts Options) string {
	var b strings.Builder
	b.Grow(len(base) + len(gear) + 64)
	b.WriteString(base)
	b.WriteString("/speed=")
	b.WriteString(strconv.FormatFloat(speed, 'g', -1, 64))
	b.WriteString(",dist=")
	b.WriteString(strconv.FormatFloat(dist, 'g', -1, 64))
	b.WriteString(",objspeed=")
	b.WriteString(strconv.FormatFloat(objSpeed, 'g', -1, 64))
	b.WriteString(",gear=")
	b.WriteString(gear)
	b.WriteByte(',')
	b.WriteString(opts.Label())
	return b.String()
}

// variantAt materializes the variant for one axis-index assignment.  A
// positive tolerance overrides the option set's MatchTolerance; zero (the
// placeholder of an empty Tolerances axis) keeps it.
func (f Family) variantAt(speed, dist, objSpeed float64, gear string, opts Options, tol int) Job {
	if tol > 0 {
		opts.MatchTolerance = tol
	}
	sc := f.Base
	sc.InitialSpeed = speed
	sc.ObjectDistance = dist
	sc.ObjectSpeed = objSpeed
	sc.Gear = gear
	sc.Name = variantName(f.Base.Name, speed, dist, objSpeed, gear, opts)
	return Job{Scenario: sc, Options: opts}
}

// Variants expands the family into concrete jobs.  Variant names extend the
// base name with the parameter assignment so every job in a sweep is
// identifiable in reports and JSON output.  Large grids should prefer
// Source, which yields the same jobs in the same order without materializing
// the slice.
func (f Family) Variants() []Job {
	jobs := make([]Job, 0, f.Size())
	src := f.Source()
	for {
		j, ok := src.Next()
		if !ok {
			return jobs
		}
		jobs = append(jobs, j)
	}
}

// Source returns a lazy generator over the family's cartesian product,
// yielding the same jobs in the same order as Variants.  Each variant is
// built on demand — an odometer over the axis indices — so a sweep of any
// size holds O(1) jobs in memory.
func (f Family) Source() JobSource {
	speeds, distances, objSpeeds, gears, optionSets, tolerances := f.axes()
	// idx is the odometer, least-significant axis last (matching the
	// nesting order of the original expansion loop).
	var idx [6]int
	dims := [6]int{len(speeds), len(distances), len(objSpeeds), len(gears), len(optionSets), len(tolerances)}
	done := false
	return SourceFunc(func() (Job, bool) {
		if done {
			return Job{}, false
		}
		j := f.variantAt(
			speeds[idx[0]], distances[idx[1]], objSpeeds[idx[2]],
			gears[idx[3]], optionSets[idx[4]], tolerances[idx[5]],
		)
		for axis := len(idx) - 1; ; axis-- {
			idx[axis]++
			if idx[axis] < dims[axis] {
				break
			}
			idx[axis] = 0
			if axis == 0 {
				done = true
				break
			}
		}
		return j, true
	})
}

// Sweep is a batch of families evaluated together.
type Sweep struct {
	// Families are the scenario families to expand.
	Families []Family
}

// Size returns the total number of variants across all families.  The count
// is exact: Size() == len(Jobs()) and Source yields exactly Size() jobs,
// whatever mix of empty and partial axes the families use.
func (s Sweep) Size() int {
	n := 0
	for _, f := range s.Families {
		n += f.Size()
	}
	return n
}

// Jobs expands every family, in family order.  Large sweeps should prefer
// Source, which yields the same jobs in the same order lazily.
func (s Sweep) Jobs() []Job {
	jobs := make([]Job, 0, s.Size())
	for _, f := range s.Families {
		jobs = append(jobs, f.Variants()...)
	}
	return jobs
}

// Source returns a lazy generator over every family, in family order,
// yielding the same jobs in the same order as Jobs without materializing
// them.
func (s Sweep) Source() JobSource {
	srcs := make([]JobSource, len(s.Families))
	for i, f := range s.Families {
		srcs[i] = f.Source()
	}
	return ConcatSources(srcs...)
}

// SweepResult is the outcome of one sweep: the per-variant results in job
// order and the cross-variant aggregates.
type SweepResult struct {
	// Jobs are the executed variants, in order (nil when the sweep was
	// aggregated online, e.g. by Accumulator.SweepResult).
	Jobs []Job
	// Results are the per-variant outcomes, index-aligned with Jobs (nil
	// when the sweep was aggregated online).
	Results []Result
	// Aggregate is the hit / false-negative / false-positive classification
	// summed over every variant — the sweep-level empirical estimate of the
	// residual emergence X and Y of thesis §3.4.
	Aggregate monitor.Summary
	// Collisions counts variants that terminated early on a collision.
	Collisions int
	// EarlyTerminations counts variants that stopped before their
	// scheduled duration.
	EarlyTerminations int
}

// Collect assembles a SweepResult from executed jobs: the cross-variant
// aggregate summary and the collision / early-termination counts.  It is the
// batch form of the online Accumulator, shared by RunSweep and any front-end
// that runs jobs itself.
func Collect(jobs []Job, results []Result) SweepResult {
	var acc Accumulator
	for _, res := range results {
		acc.Add(res)
	}
	out := acc.SweepResult()
	out.Jobs = jobs
	out.Results = results
	return out
}

// RunSweep expands and executes a sweep on the runner's worker pool.  It
// materializes every job and retains every result; large sweeps should use
// Engine.Stream with Sweep.Source and SummaryOnly retention instead.
func (r Runner) RunSweep(s Sweep) SweepResult {
	jobs := s.Jobs()
	return Collect(jobs, r.Run(jobs))
}

// DefaultSweep derives the standard evaluation sweep from the ten thesis
// scenarios: for each base scenario a grid of three initial speeds, two
// object distances and both defect configurations — 120 monitored runs that
// bracket the thesis' ten.
//
// Speed offsets are additive so reverse-gear scenarios (which start at rest)
// stay meaningful; distances are scaled so objects stay on the same side of
// the host.
func DefaultSweep() Sweep {
	bases := Scenarios()
	families := make([]Family, 0, len(bases))
	for _, base := range bases {
		families = append(families, Family{
			Base: base,
			InitialSpeeds: []float64{
				base.InitialSpeed,
				base.InitialSpeed + 1,
				base.InitialSpeed + 2,
			},
			ObjectDistances: []float64{
				base.ObjectDistance,
				base.ObjectDistance * 0.8,
			},
			OptionSets: []Options{{}, {CorrectDefects: true}},
		})
	}
	return Sweep{Families: families}
}

// WideSweep widens DefaultSweep with an object-speed axis: each base
// scenario's object is also evaluated moving away from and toward the host —
// 360 variants.
func WideSweep() Sweep {
	sw := DefaultSweep()
	for i := range sw.Families {
		base := sw.Families[i].Base
		sw.Families[i].ObjectSpeeds = []float64{
			base.ObjectSpeed,
			base.ObjectSpeed + 1,
			base.ObjectSpeed - 1,
		}
	}
	return sw
}

// HugeSweep widens WideSweep further with a fourth initial speed, a third
// object distance and — where it is meaningful — the gear axis: 4×3×3×2
// variants per base scenario, doubled to 144 for scenarios whose driver
// schedule does not immediately override the starting gear (the reverse
// scenarios select "R" at t=0, so a gear axis there would only duplicate
// runs).  1296 variants in total.  It exists to exercise the streaming
// Engine at a scale where materializing jobs or retaining traces would be
// prohibitive; run it with Sweep.Source and SummaryOnly retention.
func HugeSweep() Sweep {
	sw := WideSweep()
	for i := range sw.Families {
		base := sw.Families[i].Base
		sw.Families[i].InitialSpeeds = append(sw.Families[i].InitialSpeeds, base.InitialSpeed+4)
		sw.Families[i].ObjectDistances = append(sw.Families[i].ObjectDistances, base.ObjectDistance*1.2)
		if !setsGearAtStart(base) {
			sw.Families[i].Gears = []string{"D", "R"}
		}
	}
	return sw
}

// setsGearAtStart reports whether the scenario's driver schedule selects a
// gear at t=0, which would override any value a Gears axis assigns.
func setsGearAtStart(sc Scenario) bool {
	for _, a := range sc.Driver {
		if a.At == 0 && a.Gear != nil {
			return true
		}
	}
	return false
}

// ToleranceSweep varies the hit-matching window across the ten thesis
// scenarios: the seeded-defect configuration evaluated at a tight (50
// states), the default (150) and a loose (450) matching tolerance — 30
// variants probing how sensitive the hit / false-negative / false-positive
// classification is to the assumed observation and actuation delays between
// hierarchy levels.
func ToleranceSweep() Sweep {
	bases := Scenarios()
	families := make([]Family, 0, len(bases))
	for _, base := range bases {
		families = append(families, Family{
			Base:       base,
			Tolerances: []int{50, matchTolerance, 450},
		})
	}
	return Sweep{Families: families}
}

// SweepBySize returns the named sweep preset: "default" (120 variants),
// "wide" (360), "huge" (1296) or "tolerance" (30, varying the hit-matching
// window).
func SweepBySize(name string) (Sweep, error) {
	switch name {
	case "", "default":
		return DefaultSweep(), nil
	case "wide":
		return WideSweep(), nil
	case "huge":
		return HugeSweep(), nil
	case "tolerance":
		return ToleranceSweep(), nil
	default:
		return Sweep{}, fmt.Errorf("unknown sweep size %q (want default, wide, huge or tolerance)", name)
	}
}
