package scenarios

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/monitor"
	"repro/internal/vehicle"
)

// Family derives parameterized variants of a base scenario.  Each non-empty
// axis replaces the corresponding base field; the variants are the cartesian
// product of all axes.  An empty axis keeps the base value, so the zero
// Family yields exactly the base scenario under default options.
//
// Families widen the thesis' ten fixed scenarios into a scenario space: the
// same defect set and driver schedule evaluated across a grid of initial
// conditions, which is the kind of evidence an emergent-safety claim needs —
// behaviour across many interconnected configurations, not one.
type Family struct {
	// Base is the scenario the variants are derived from.
	Base Scenario
	// InitialSpeeds enumerates host start speeds in m/s.
	InitialSpeeds []float64
	// ObjectDistances enumerates target-vehicle placements in m (negative
	// for objects behind the host).
	ObjectDistances []float64
	// ObjectSpeeds enumerates target-vehicle speeds in m/s.
	ObjectSpeeds []float64
	// Gears enumerates transmission gears ("D" or "R").
	Gears []string
	// OptionSets enumerates run options (e.g. seeded defects in place
	// versus the corrected ablation).
	OptionSets []Options
	// Tolerances enumerates hit-matching windows in states (see
	// Options.MatchTolerance; 0 selects the default of 150).  The axis
	// cross-products with OptionSets, overriding each option set's
	// MatchTolerance, so one sweep can measure how the hit /
	// false-negative / false-positive classification shifts with the
	// assumed inter-level observation and actuation delays.
	Tolerances []int
	// DefectSets enumerates per-feature defect-correction subsets (see
	// Options.Defects).  Like Tolerances it cross-products with OptionSets,
	// overriding each option set's Defects, so one sweep can attribute the
	// violation structure to individual subsystems rather than only the
	// all-or-nothing CorrectDefects ablation.
	DefectSets []DefectSet
	// Drivers enumerates driver/HMI input schedules replacing the base
	// scenario's Driver — e.g. time-shifted or pruned perturbations of the
	// original schedule (see ShiftSchedule).
	Drivers [][]vehicle.DriverAction
}

// Size returns the number of variants the family generates.
func (f Family) Size() int {
	n := 1
	for _, axis := range []int{
		len(f.InitialSpeeds), len(f.ObjectDistances), len(f.ObjectSpeeds),
		len(f.Gears), len(f.OptionSets), len(f.Tolerances),
		len(f.DefectSets), len(f.Drivers),
	} {
		if axis > 0 {
			n *= axis
		}
	}
	return n
}

// familyAxes is the resolved form of a Family: every axis substituted with
// its effective values, placeholders standing in for empty axes.
type familyAxes struct {
	speeds, distances, objSpeeds []float64
	gears                        []string
	optionSets                   []Options
	tolerances                   []int
	// defectSets entries override the option set's Defects; a nil entry (the
	// empty-axis placeholder) keeps it.  A pointer is needed because the zero
	// DefectSet is itself meaningful ("correct nothing").
	defectSets []*DefectSet
	// drivers holds indices into Family.Drivers; -1 (the empty-axis
	// placeholder) keeps the base schedule.
	drivers []int
}

// axes resolves every axis to its effective values, substituting the base
// value for empty axes.
func (f Family) axes() familyAxes {
	a := familyAxes{
		speeds:     f.InitialSpeeds,
		distances:  f.ObjectDistances,
		objSpeeds:  f.ObjectSpeeds,
		gears:      f.Gears,
		optionSets: f.OptionSets,
		tolerances: f.Tolerances,
	}
	if len(a.speeds) == 0 {
		a.speeds = []float64{f.Base.InitialSpeed}
	}
	if len(a.distances) == 0 {
		a.distances = []float64{f.Base.ObjectDistance}
	}
	if len(a.objSpeeds) == 0 {
		a.objSpeeds = []float64{f.Base.ObjectSpeed}
	}
	if len(a.gears) == 0 {
		a.gears = []string{f.Base.Gear}
	}
	if len(a.optionSets) == 0 {
		a.optionSets = []Options{{}}
	}
	if len(a.tolerances) == 0 {
		a.tolerances = []int{0}
	}
	if len(f.DefectSets) == 0 {
		a.defectSets = []*DefectSet{nil}
	} else {
		a.defectSets = make([]*DefectSet, len(f.DefectSets))
		for i := range f.DefectSets {
			a.defectSets[i] = &f.DefectSets[i]
		}
	}
	if len(f.Drivers) == 0 {
		a.drivers = []int{-1}
	} else {
		a.drivers = make([]int, len(f.Drivers))
		for i := range a.drivers {
			a.drivers[i] = i
		}
	}
	return a
}

// variantName builds the variant identifier for one parameter assignment.
// It runs once per variant in the sweep-setup hot path, so it is built with
// strconv and a strings.Builder rather than fmt.  The options label covers
// every Options field, so option sets differing in any field never collide;
// the driver-schedule index appears only when the family sweeps schedules.
func variantName(base string, speed, dist, objSpeed float64, gear string, driver int, opts Options) string {
	var b strings.Builder
	b.Grow(len(base) + len(gear) + 80)
	b.WriteString(base)
	b.WriteString("/speed=")
	b.WriteString(strconv.FormatFloat(speed, 'g', -1, 64))
	b.WriteString(",dist=")
	b.WriteString(strconv.FormatFloat(dist, 'g', -1, 64))
	b.WriteString(",objspeed=")
	b.WriteString(strconv.FormatFloat(objSpeed, 'g', -1, 64))
	b.WriteString(",gear=")
	b.WriteString(gear)
	if driver >= 0 {
		b.WriteString(",driver=")
		b.WriteString(strconv.Itoa(driver))
	}
	b.WriteByte(',')
	b.WriteString(opts.Label())
	return b.String()
}

// variantAt materializes the variant for one axis-index assignment.  A
// positive tolerance overrides the option set's MatchTolerance; zero (the
// placeholder of an empty Tolerances axis) keeps it.  A non-nil defect set
// overrides the option set's Defects, and a non-negative driver index
// replaces the base driver schedule.
func (f Family) variantAt(speed, dist, objSpeed float64, gear string, opts Options, tol int, defects *DefectSet, driver int) Job {
	if tol > 0 {
		opts.MatchTolerance = tol
	}
	if defects != nil {
		opts.Defects = *defects
	}
	sc := f.Base
	sc.InitialSpeed = speed
	sc.ObjectDistance = dist
	sc.ObjectSpeed = objSpeed
	sc.Gear = gear
	if driver >= 0 {
		sc.Driver = f.Drivers[driver]
	}
	sc.Name = variantName(f.Base.Name, speed, dist, objSpeed, gear, driver, opts)
	return Job{Scenario: sc, Options: opts}
}

// Variants expands the family into concrete jobs.  Variant names extend the
// base name with the parameter assignment so every job in a sweep is
// identifiable in reports and JSON output.  Large grids should prefer
// Source, which yields the same jobs in the same order without materializing
// the slice.
func (f Family) Variants() []Job {
	jobs := make([]Job, 0, f.Size())
	src := f.Source()
	for {
		j, ok := src.Next()
		if !ok {
			return jobs
		}
		jobs = append(jobs, j)
	}
}

// Source returns a lazy generator over the family's cartesian product,
// yielding the same jobs in the same order as Variants.  Each variant is
// built on demand — an odometer over the axis indices — so a sweep of any
// size holds O(1) jobs in memory.
func (f Family) Source() JobSource {
	a := f.axes()
	// idx is the odometer, least-significant axis last (matching the
	// nesting order of the original expansion loop).
	var idx [8]int
	dims := [8]int{
		len(a.speeds), len(a.distances), len(a.objSpeeds), len(a.gears),
		len(a.optionSets), len(a.tolerances), len(a.defectSets), len(a.drivers),
	}
	done := false
	return SourceFunc(func() (Job, bool) {
		if done {
			return Job{}, false
		}
		j := f.variantAt(
			a.speeds[idx[0]], a.distances[idx[1]], a.objSpeeds[idx[2]],
			a.gears[idx[3]], a.optionSets[idx[4]], a.tolerances[idx[5]],
			a.defectSets[idx[6]], a.drivers[idx[7]],
		)
		for axis := len(idx) - 1; ; axis-- {
			idx[axis]++
			if idx[axis] < dims[axis] {
				break
			}
			idx[axis] = 0
			if axis == 0 {
				done = true
				break
			}
		}
		return j, true
	})
}

// Sweep is a batch of families evaluated together.
type Sweep struct {
	// Families are the scenario families to expand.
	Families []Family
}

// Size returns the total number of variants across all families.  The count
// is exact: Size() == len(Jobs()) and Source yields exactly Size() jobs,
// whatever mix of empty and partial axes the families use.
func (s Sweep) Size() int {
	n := 0
	for _, f := range s.Families {
		n += f.Size()
	}
	return n
}

// Jobs expands every family, in family order.  Large sweeps should prefer
// Source, which yields the same jobs in the same order lazily.
func (s Sweep) Jobs() []Job {
	jobs := make([]Job, 0, s.Size())
	for _, f := range s.Families {
		jobs = append(jobs, f.Variants()...)
	}
	return jobs
}

// Source returns a lazy generator over every family, in family order,
// yielding the same jobs in the same order as Jobs without materializing
// them.
func (s Sweep) Source() JobSource {
	srcs := make([]JobSource, len(s.Families))
	for i, f := range s.Families {
		srcs[i] = f.Source()
	}
	return ConcatSources(srcs...)
}

// SweepResult is the outcome of one sweep: the per-variant results in job
// order and the cross-variant aggregates.
type SweepResult struct {
	// Jobs are the executed variants, in order (nil when the sweep was
	// aggregated online, e.g. by Accumulator.SweepResult).
	Jobs []Job
	// Results are the per-variant outcomes, index-aligned with Jobs (nil
	// when the sweep was aggregated online).
	Results []Result
	// Aggregate is the hit / false-negative / false-positive classification
	// summed over every variant — the sweep-level empirical estimate of the
	// residual emergence X and Y of thesis §3.4.
	Aggregate monitor.Summary
	// Collisions counts variants that terminated early on a collision.
	Collisions int
	// EarlyTerminations counts variants that stopped before their
	// scheduled duration.
	EarlyTerminations int
}

// Collect assembles a SweepResult from executed jobs: the cross-variant
// aggregate summary and the collision / early-termination counts.  It is the
// batch form of the online Accumulator, shared by RunSweep and any front-end
// that runs jobs itself.
func Collect(jobs []Job, results []Result) SweepResult {
	var acc Accumulator
	for _, res := range results {
		acc.Add(res)
	}
	out := acc.SweepResult()
	out.Jobs = jobs
	out.Results = results
	return out
}

// RunSweep expands and executes a sweep on the runner's worker pool.  It
// materializes every job and retains every result; large sweeps should use
// Engine.Stream with Sweep.Source and SummaryOnly retention instead.
func (r Runner) RunSweep(s Sweep) SweepResult {
	jobs := s.Jobs()
	return Collect(jobs, r.Run(jobs))
}

// DefaultSweep derives the standard evaluation sweep from the ten thesis
// scenarios: for each base scenario a grid of three initial speeds, two
// object distances and both defect configurations — 120 monitored runs that
// bracket the thesis' ten.
//
// Speed offsets are additive so reverse-gear scenarios (which start at rest)
// stay meaningful; distances are scaled so objects stay on the same side of
// the host.
func DefaultSweep() Sweep {
	bases := Scenarios()
	families := make([]Family, 0, len(bases))
	for _, base := range bases {
		families = append(families, Family{
			Base: base,
			InitialSpeeds: []float64{
				base.InitialSpeed,
				base.InitialSpeed + 1,
				base.InitialSpeed + 2,
			},
			ObjectDistances: []float64{
				base.ObjectDistance,
				base.ObjectDistance * 0.8,
			},
			OptionSets: []Options{{}, {CorrectDefects: true}},
		})
	}
	return Sweep{Families: families}
}

// WideSweep widens DefaultSweep with an object-speed axis: each base
// scenario's object is also evaluated moving away from and toward the host —
// 360 variants.
func WideSweep() Sweep {
	sw := DefaultSweep()
	for i := range sw.Families {
		base := sw.Families[i].Base
		sw.Families[i].ObjectSpeeds = []float64{
			base.ObjectSpeed,
			base.ObjectSpeed + 1,
			base.ObjectSpeed - 1,
		}
	}
	return sw
}

// HugeSweep widens WideSweep further with a fourth initial speed, a third
// object distance and — where it is meaningful — the gear axis: 4×3×3×2
// variants per base scenario, doubled to 144 for scenarios whose driver
// schedule does not immediately override the starting gear (the reverse
// scenarios select "R" at t=0, so a gear axis there would only duplicate
// runs).  1296 variants in total.  It exists to exercise the streaming
// Engine at a scale where materializing jobs or retaining traces would be
// prohibitive; run it with Sweep.Source and SummaryOnly retention.
func HugeSweep() Sweep {
	sw := WideSweep()
	for i := range sw.Families {
		base := sw.Families[i].Base
		sw.Families[i].InitialSpeeds = append(sw.Families[i].InitialSpeeds, base.InitialSpeed+4)
		sw.Families[i].ObjectDistances = append(sw.Families[i].ObjectDistances, base.ObjectDistance*1.2)
		if !setsGearAtStart(base) {
			sw.Families[i].Gears = []string{"D", "R"}
		}
	}
	return sw
}

// setsGearAtStart reports whether the scenario's driver schedule selects a
// gear at t=0, which would override any value a Gears axis assigns.
func setsGearAtStart(sc Scenario) bool {
	for _, a := range sc.Driver {
		if a.At == 0 && a.Gear != nil {
			return true
		}
	}
	return false
}

// ToleranceSweep varies the hit-matching window across the ten thesis
// scenarios: the seeded-defect configuration evaluated at a tight (50
// states), the default (150) and a loose (450) matching tolerance — 30
// variants probing how sensitive the hit / false-negative / false-positive
// classification is to the assumed observation and actuation delays between
// hierarchy levels.
func ToleranceSweep() Sweep {
	bases := Scenarios()
	families := make([]Family, 0, len(bases))
	for _, base := range bases {
		families = append(families, Family{
			Base:       base,
			Tolerances: []int{50, matchTolerance, 450},
		})
	}
	return Sweep{Families: families}
}

// ShiftSchedule returns a copy of a driver schedule with every action time
// shifted by delta (clamped at zero), for building driver-perturbation axes:
// the same inputs arriving earlier or later probe how sensitive the observed
// violation structure is to input timing relative to the seeded defects.
func ShiftSchedule(schedule []vehicle.DriverAction, delta time.Duration) []vehicle.DriverAction {
	out := make([]vehicle.DriverAction, len(schedule))
	copy(out, schedule)
	for i := range out {
		out[i].At += delta
		if out[i].At < 0 {
			out[i].At = 0
		}
	}
	return out
}

// DefectSweep evaluates per-feature defect subsets across the ten thesis
// scenarios: each scenario runs with all defects seeded and with each
// subsystem's defects corrected in isolation (CA, RCA, ACC, PA, Arbiter),
// under both the original driver schedule and a 250 ms-delayed perturbation
// of it — 120 variants attributing the hit / false-negative / false-positive
// structure to individual subsystems rather than the all-or-nothing
// CorrectDefects ablation.
func DefectSweep() Sweep {
	sets := []DefectSet{
		{},
		{CorrectCA: true},
		{CorrectRCA: true},
		{CorrectACC: true},
		{CorrectPA: true},
		{CorrectArbiter: true},
	}
	bases := Scenarios()
	families := make([]Family, 0, len(bases))
	for _, base := range bases {
		families = append(families, Family{
			Base:       base,
			DefectSets: sets,
			Drivers: [][]vehicle.DriverAction{
				base.Driver,
				ShiftSchedule(base.Driver, 250*time.Millisecond),
			},
		})
	}
	return Sweep{Families: families}
}

// SweepBySize returns the named sweep preset: "default" (120 variants),
// "wide" (360), "huge" (1296), "tolerance" (30, varying the hit-matching
// window) or "defects" (120, per-feature defect subsets under perturbed
// driver schedules).
func SweepBySize(name string) (Sweep, error) {
	switch name {
	case "", "default":
		return DefaultSweep(), nil
	case "wide":
		return WideSweep(), nil
	case "huge":
		return HugeSweep(), nil
	case "tolerance":
		return ToleranceSweep(), nil
	case "defects":
		return DefectSweep(), nil
	default:
		return Sweep{}, fmt.Errorf("unknown sweep size %q (want default, wide, huge, tolerance or defects)", name)
	}
}

// SweepSourceFor resolves the shared CLI sweep selection — a preset size,
// an optional single-family narrowing by thesis scenario number, and the
// optional corrected-only ablation — into a re-enumerable job source.
// cmd/scenarios, cmd/sweepd and cmd/sweepworker all build their grids
// through this one function: a distributed coordinator and its workers
// agree on the job stream exactly because they run the same selection
// through the same code, with no coordination protocol.
func SweepSourceFor(size string, number int, corrected bool) (func() JobSource, error) {
	sw, err := SweepBySize(size)
	if err != nil {
		return nil, err
	}
	if corrected {
		// Narrow to the ablation configuration instead of the preset's
		// seeded+corrected pairing.
		for i := range sw.Families {
			sw.Families[i].OptionSets = []Options{{CorrectDefects: true}}
		}
	}
	if number != 0 {
		var kept []Family
		for _, f := range sw.Families {
			if f.Base.Number == number {
				kept = append(kept, f)
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("no scenario numbered %d", number)
		}
		sw.Families = kept
	}
	return sw.Source, nil
}
