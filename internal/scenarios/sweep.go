package scenarios

import (
	"fmt"

	"repro/internal/monitor"
)

// Family derives parameterized variants of a base scenario.  Each non-empty
// axis replaces the corresponding base field; the variants are the cartesian
// product of all axes.  An empty axis keeps the base value, so the zero
// Family yields exactly the base scenario under default options.
//
// Families widen the thesis' ten fixed scenarios into a scenario space: the
// same defect set and driver schedule evaluated across a grid of initial
// conditions, which is the kind of evidence an emergent-safety claim needs —
// behaviour across many interconnected configurations, not one.
type Family struct {
	// Base is the scenario the variants are derived from.
	Base Scenario
	// InitialSpeeds enumerates host start speeds in m/s.
	InitialSpeeds []float64
	// ObjectDistances enumerates target-vehicle placements in m (negative
	// for objects behind the host).
	ObjectDistances []float64
	// ObjectSpeeds enumerates target-vehicle speeds in m/s.
	ObjectSpeeds []float64
	// Gears enumerates transmission gears ("D" or "R").
	Gears []string
	// OptionSets enumerates run options (e.g. seeded defects in place
	// versus the corrected ablation).
	OptionSets []Options
}

// Size returns the number of variants the family generates.
func (f Family) Size() int {
	n := 1
	for _, axis := range []int{
		len(f.InitialSpeeds), len(f.ObjectDistances), len(f.ObjectSpeeds),
		len(f.Gears), len(f.OptionSets),
	} {
		if axis > 0 {
			n *= axis
		}
	}
	return n
}

// Variants expands the family into concrete jobs.  Variant names extend the
// base name with the parameter assignment so every job in a sweep is
// identifiable in reports and JSON output.
func (f Family) Variants() []Job {
	speeds := f.InitialSpeeds
	if len(speeds) == 0 {
		speeds = []float64{f.Base.InitialSpeed}
	}
	distances := f.ObjectDistances
	if len(distances) == 0 {
		distances = []float64{f.Base.ObjectDistance}
	}
	objSpeeds := f.ObjectSpeeds
	if len(objSpeeds) == 0 {
		objSpeeds = []float64{f.Base.ObjectSpeed}
	}
	gears := f.Gears
	if len(gears) == 0 {
		gears = []string{f.Base.Gear}
	}
	optionSets := f.OptionSets
	if len(optionSets) == 0 {
		optionSets = []Options{{}}
	}

	jobs := make([]Job, 0, f.Size())
	for _, speed := range speeds {
		for _, dist := range distances {
			for _, objSpeed := range objSpeeds {
				for _, gear := range gears {
					for _, opts := range optionSets {
						sc := f.Base
						sc.InitialSpeed = speed
						sc.ObjectDistance = dist
						sc.ObjectSpeed = objSpeed
						sc.Gear = gear
						sc.Name = fmt.Sprintf("%s/speed=%g,dist=%g,objspeed=%g,gear=%s,corrected=%t",
							f.Base.Name, speed, dist, objSpeed, gear, opts.CorrectDefects)
						jobs = append(jobs, Job{Scenario: sc, Options: opts})
					}
				}
			}
		}
	}
	return jobs
}

// Sweep is a batch of families evaluated together.
type Sweep struct {
	// Families are the scenario families to expand.
	Families []Family
}

// Size returns the total number of variants across all families.
func (s Sweep) Size() int {
	n := 0
	for _, f := range s.Families {
		n += f.Size()
	}
	return n
}

// Jobs expands every family, in family order.
func (s Sweep) Jobs() []Job {
	jobs := make([]Job, 0, s.Size())
	for _, f := range s.Families {
		jobs = append(jobs, f.Variants()...)
	}
	return jobs
}

// SweepResult is the outcome of one sweep: the per-variant results in job
// order and the cross-variant aggregates.
type SweepResult struct {
	// Jobs are the executed variants, in order.
	Jobs []Job
	// Results are the per-variant outcomes, index-aligned with Jobs.
	Results []Result
	// Aggregate is the hit / false-negative / false-positive classification
	// summed over every variant — the sweep-level empirical estimate of the
	// residual emergence X and Y of thesis §3.4.
	Aggregate monitor.Summary
	// Collisions counts variants that terminated early on a collision.
	Collisions int
	// EarlyTerminations counts variants that stopped before their
	// scheduled duration.
	EarlyTerminations int
}

// Collect assembles a SweepResult from executed jobs: the cross-variant
// aggregate summary and the collision / early-termination counts.  It is the
// single place batch bookkeeping lives, shared by RunSweep and any front-end
// that runs jobs itself.
func Collect(jobs []Job, results []Result) SweepResult {
	out := SweepResult{Jobs: jobs, Results: results}
	summaries := make([]monitor.Summary, len(results))
	for i, res := range results {
		summaries[i] = res.Summary
		if res.Collision {
			out.Collisions++
		}
		if res.TerminatedEarly() {
			out.EarlyTerminations++
		}
	}
	out.Aggregate = monitor.Sum(summaries...)
	return out
}

// RunSweep expands and executes a sweep on the runner's worker pool.
func (r Runner) RunSweep(s Sweep) SweepResult {
	jobs := s.Jobs()
	return Collect(jobs, r.Run(jobs))
}

// DefaultSweep derives the standard evaluation sweep from the ten thesis
// scenarios: for each base scenario a grid of three initial speeds, two
// object distances and both defect configurations — 120 monitored runs that
// bracket the thesis' ten.
//
// Speed offsets are additive so reverse-gear scenarios (which start at rest)
// stay meaningful; distances are scaled so objects stay on the same side of
// the host.
func DefaultSweep() Sweep {
	var families []Family
	for _, base := range Scenarios() {
		families = append(families, Family{
			Base: base,
			InitialSpeeds: []float64{
				base.InitialSpeed,
				base.InitialSpeed + 1,
				base.InitialSpeed + 2,
			},
			ObjectDistances: []float64{
				base.ObjectDistance,
				base.ObjectDistance * 0.8,
			},
			OptionSets: []Options{{}, {CorrectDefects: true}},
		})
	}
	return Sweep{Families: families}
}
