package scenarios

import "strconv"

// ---------------------------------------------------------------------------
// Deterministic sharding: stable variant keys over any JobSource
// ---------------------------------------------------------------------------
//
// Distributed sweep execution (internal/dist) partitions a job stream across
// worker processes.  The partition must be a pure function of the variant
// itself — not of arrival order, worker count history or process identity —
// so that any two processes enumerating the same source agree on which shard
// owns which variant, a re-queued shard re-derives exactly the jobs its dead
// predecessor owned, and a duplicated result can be recognised wherever it
// surfaces.  Job.Key is that identity; Job.Shard hashes it with FNV-1a (a
// fixed published constant-defined hash, stable across processes, platforms
// and Go releases); ShardSource filters any JobSource down to one shard.

// fnv1a64 is the 64-bit FNV-1a hash.  It is written out rather than taken
// from hash/fnv to make the shard contract self-evident: the hash of a
// variant key is defined by these two published constants and nothing else,
// so any process — today's or a future Go version's — computes the same
// shard for the same key.
func fnv1a64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Key returns the job's canonical variant identity: the scenario name (which
// every sweep generator derives from the full parameter assignment), the
// effective scheduled duration in nanoseconds, and the full options label.
// Two jobs with equal keys denote the same evaluation — same dynamics, same
// monitoring configuration — so keys are the unit of idempotence for the
// result cache, distributed sharding and sink-level deduplication.  A zero
// Duration resolves to the default before keying, matching what the run
// itself executes.
//
// Hand-built jobs that reuse one scenario name across different
// configurations violate the contract and must not be sharded, cached or
// deduplicated by key.
func (j Job) Key() string {
	d := j.Scenario.Duration
	if d <= 0 {
		d = DefaultDuration
	}
	return j.Scenario.Name + "|" + strconv.FormatInt(int64(d), 10) + "|" + j.Options.Label()
}

// Shard returns the index of the shard that owns this job in an n-way
// partition: the FNV-1a hash of the variant key, reduced mod n.  It is a
// pure function of (Key, n): independent of source order, of which process
// computes it and of the Go version, so every participant in a distributed
// sweep derives the same owner for the same variant.  Non-positive n and
// n == 1 both yield the single shard 0.
func (j Job) Shard(n int) int {
	if n <= 1 {
		return 0
	}
	return int(fnv1a64(j.Key()) % uint64(n))
}

// ShardSource filters src down to the jobs owned by shard index in an
// total-way partition, preserving source order.  The union of the total
// shard sources over one source enumeration is exactly the source itself,
// pairwise disjoint, so n workers each wrapping their own enumeration of the
// same source collectively evaluate every variant exactly once.  A
// non-positive or single-shard total returns src unchanged.
func ShardSource(src JobSource, index, total int) JobSource {
	if total <= 1 {
		return src
	}
	return SourceFunc(func() (Job, bool) {
		for {
			j, ok := src.Next()
			if !ok {
				return Job{}, false
			}
			if j.Shard(total) == index {
				return j, true
			}
		}
	})
}

// DedupByKey wraps a sink so that only the first result per variant key is
// forwarded; later results with a key already seen are dropped.  It is the
// idempotence layer of distributed merging: a slow worker that recovers
// after its shard was re-queued may re-deliver variants the replacement has
// already proved, and the coordinator folds both streams through one dedup
// sink so every variant reaches the underlying sink exactly once.  The
// wrapper is as single-goroutine as any other sink; the retained state is
// one map entry per distinct key.
func DedupByKey(sink ResultSink) ResultSink {
	seen := make(map[string]struct{})
	return SinkFunc(func(sr StreamResult) error {
		key := sr.Job.Key()
		if _, dup := seen[key]; dup {
			return nil
		}
		seen[key] = struct{}{}
		return sink.Consume(sr)
	})
}
