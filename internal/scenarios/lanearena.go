package scenarios

import (
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/temporal"
	"repro/internal/vehicle"
)

// laneArena is the lane-batched counterpart of runArena: K independent
// vehicle component sets — one per lane, each bound to its own lane view of
// a shared lane-widened bus — stepped in lockstep by one sim.LaneSim and
// observed by one monitor.LaneSuite, whose lane program evaluates every
// goal formula for all lanes per tick.  A batch of up to `lanes` dynamics
// groups with equal scheduled duration runs as ONE widened simulation: one
// commit, one program step and one observer dispatch per tick instead of one
// per variant.  Lanes that collide are retired from the active mask
// individually (their intervals closed at their own step count), so an
// early-stopping variant never desynchronizes the batch.
//
// Like runArena, a laneArena is built once per worker and rewound between
// batches; it is not safe for concurrent use.
type laneArena struct {
	lanes int
	sim   *sim.LaneSim
	//lint:resetok configure reassigns every scenario parameter and defect flag absolutely before each batch; the components themselves are reset through LaneSim.Reset
	sets []*vehicleSet
	//lint:resetok the lane suite survives across batches (compiling the plan is the cost the arena amortizes); run rewinds it via LaneSuite.Reset before each batch
	suite *monitor.LaneSuite
	// collision is the stop-predicate slot (logical; lane l reads physical
	// index collision*lanes+l), resolved once per arena.
	collision int
}

// newLaneArena builds the reusable lane-batched simulation at the given
// width: per-lane components constructed and bound once, the lane suite
// compiled and sealed once, the per-lane stop predicate registered once.
func newLaneArena(lanes int) *laneArena {
	a := &laneArena{lanes: lanes}
	a.sim = sim.NewLaneSim(Period, lanes)
	a.sets = make([]*vehicleSet, lanes)
	for l := range a.sets {
		a.sets[l] = newVehicleSet()
		components := a.sets[l].components()
		vehicle.BindAll(a.sim.Bus.Lane(l), components...)
		a.sim.AddLane(l, components...)
	}
	a.suite = monitor.NewLaneSuite(Period, a.sim.Bus.Schema(), lanes)
	for _, spec := range monitoringPlan() {
		a.suite.MustAddHierarchy(spec.Parent, matchTolerance, spec.Children...)
	}
	if err := a.suite.Seal(); err != nil {
		// The vehicle plan contains no predicate atoms; failing to seal is a
		// programming error, not a data condition.
		panic(err)
	}
	a.sim.Observe(a.suite)
	a.collision = a.sim.Bus.Schema().Intern(vehicle.SigCollision)
	a.sim.StopLaneWhen(func(lane int, _ time.Duration, st temporal.State) bool {
		return st.SlotBool(a.collision*lanes + lane)
	})
	return a
}

// run executes a lane batch: groups[l] is one dynamics group (jobs sharing a
// DynamicsKey) assigned to lane l, every group scheduled for the same
// duration.  out receives one Result per job, in group order then job order —
// exactly what runArena.runGroup would have produced for each group on its
// own.  Groups beyond len(groups) lanes are the caller's problem; unused
// lanes stay inert for the batch.
func (a *laneArena) run(groups [][]Job, out []Result) {
	k := len(groups)
	a.sim.Reset()
	a.suite.Reset(k)
	for l := 0; l < k; l++ {
		lead := groups[l][0]
		a.sets[l].configure(lead.Scenario, lead.Options)
		initVehicleBus(a.sim.Bus.Lane(l), lead.Scenario)
	}
	d := groups[0][0].Scenario.Duration
	if d <= 0 {
		d = DefaultDuration
	}
	stopped := a.sim.Run(d, uint64(1)<<uint(k)-1)
	a.suite.Finish()

	idx := 0
	for l := 0; l < k; l++ {
		steps := a.sim.Steps(l)
		collision := stopped&(uint64(1)<<uint(l)) != 0
		for _, j := range groups[l] {
			jsc := j.Scenario
			if jsc.Duration <= 0 {
				jsc.Duration = DefaultDuration
			}
			out[idx] = Result{
				Scenario:  jsc,
				Steps:     steps,
				Summary:   a.suite.FastSummaryAt(l, j.Options.tolerance()),
				Collision: collision,
			}
			idx++
		}
	}
}
