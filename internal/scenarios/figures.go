package scenarios

import (
	"fmt"
	"strings"

	"repro/internal/temporal"
	"repro/internal/vehicle"
)

// Figure describes one of the thesis' scenario figures (Figures 5.2–5.15):
// the scenario it comes from and the signals it plots.
type Figure struct {
	// ID is the thesis figure number, e.g. "5.2".
	ID string
	// Title is the thesis caption (abridged).
	Title string
	// Scenario is the thesis scenario number the figure is taken from.
	Scenario int
	// Signals are the bus signals plotted over time.
	Signals []string
}

// Figures returns the catalogue of scenario figures and the signals that
// regenerate them.
func Figures() []Figure {
	return []Figure{
		{ID: "5.2", Title: "Scenario 1: CA begins a braking action, but cancels it briefly before beginning it again.",
			Scenario: 1, Signals: []string{vehicle.SigAccelRequest(vehicle.SourceCA), vehicle.SigActive(vehicle.SourceCA)}},
		{ID: "5.3", Title: "Scenario 1: PA requests acceleration without being enabled.",
			Scenario: 1, Signals: []string{vehicle.SigAccelRequest(vehicle.SourcePA), vehicle.SigPAEnabled}},
		{ID: "5.4", Title: "Scenario 2: CA is not the source of the acceleration command when PA is enabled, even though CA is selected.",
			Scenario: 2, Signals: []string{vehicle.SigAccelCommand, vehicle.SigAccelRequest(vehicle.SourceCA), vehicle.SigSelected(vehicle.SourceCA)}},
		{ID: "5.5", Title: "Scenario 3: CA engages to stop the host vehicle, but the braking action is intermittent and the vehicle is not stopped in time.",
			Scenario: 3, Signals: []string{vehicle.SigAccelRequest(vehicle.SourceCA), vehicle.SigVehicleSpeed, vehicle.SigObjectDistance}},
		{ID: "5.6", Title: "Scenario 3: ACC sends acceleration requests to control the vehicle to a set speed of 0 m/s even though ACC is not engaged.",
			Scenario: 3, Signals: []string{vehicle.SigAccelRequest(vehicle.SourceACC), vehicle.SigActive(vehicle.SourceACC)}},
		{ID: "5.7", Title: "Scenario 4: ACC acceleration request and jerk profile.",
			Scenario: 4, Signals: []string{vehicle.SigAccelRequest(vehicle.SourceACC), vehicle.SigRequestJerk(vehicle.SourceACC)}},
		{ID: "5.8", Title: "Scenario 4: ACC is engaged while the driver is applying the throttle pedal and briefly takes control of vehicle acceleration.",
			Scenario: 4, Signals: []string{vehicle.SigAccelSource, vehicle.SigThrottlePedal, vehicle.SigAccelCommand}},
		{ID: "5.9", Title: "Scenario 5: the driver releases the throttle pedal; control of acceleration is gained by ACC shortly afterwards.",
			Scenario: 5, Signals: []string{vehicle.SigThrottlePedal, vehicle.SigSelected(vehicle.SourceACC), vehicle.SigAccelSource}},
		{ID: "5.10", Title: "Scenario 6: LCA gains control of acceleration and steering, but the steering command remains unchanged.",
			Scenario: 6, Signals: []string{vehicle.SigSteerRequest(vehicle.SourceLCA), vehicle.SigSteerCommand, vehicle.SigSteerSource}},
		{ID: "5.11", Title: "Scenario 6: vehicle speed becomes negative while LCA and ACC are still active and selected.",
			Scenario: 6, Signals: []string{vehicle.SigVehicleSpeed, vehicle.SigActive(vehicle.SourceLCA), vehicle.SigActive(vehicle.SourceACC)}},
		{ID: "5.12", Title: "Scenario 7: RCA is enabled but never engages to stop the host vehicle before reaching the stopped vehicle behind it.",
			Scenario: 7, Signals: []string{vehicle.SigActive(vehicle.SourceRCA), vehicle.SigRearObjectDistance, vehicle.SigVehicleSpeed}},
		{ID: "5.13", Title: "Scenario 8: after ACC is engaged it is selected as the source of the acceleration command while the vehicle is in reverse.",
			Scenario: 8, Signals: []string{vehicle.SigSelected(vehicle.SourceACC), vehicle.SigVehicleSpeed, vehicle.SigAccelSource}},
		{ID: "5.14", Title: "Scenario 9: PA is selected as the source of the acceleration command, but the command is not equal to the PA request.",
			Scenario: 9, Signals: []string{vehicle.SigAccelRequest(vehicle.SourcePA), vehicle.SigAccelCommand, vehicle.SigSelected(vehicle.SourcePA)}},
		{ID: "5.15", Title: "Scenario 10: ACC does not become active or selected, but the vehicle begins to accelerate.",
			Scenario: 10, Signals: []string{vehicle.SigActive(vehicle.SourceACC), vehicle.SigVehicleSpeed, vehicle.SigVehicleAccel}},
	}
}

// FigureSeries extracts the numeric time series of a figure from a scenario
// result.  Boolean and string signals are encoded numerically (booleans as
// 0/1; source tags as the feature's arbitration priority index) so the
// output is directly plottable.
func FigureSeries(r Result, fig Figure) map[string][]float64 {
	out := make(map[string][]float64, len(fig.Signals)+1)
	n := r.Trace.Len()
	timeSeries := make([]float64, n)
	for i := 0; i < n; i++ {
		timeSeries[i] = float64(i) * Period.Seconds()
	}
	out["time_s"] = timeSeries
	for _, sig := range fig.Signals {
		series := make([]float64, n)
		for i := 0; i < n; i++ {
			v := r.Trace.At(i).Get(sig)
			if v.Kind() == temporal.KindString {
				series[i] = sourceIndex(v.AsString())
			} else {
				series[i] = v.AsNumber()
			}
		}
		series = sanitize(series)
		out[sig] = series
	}
	return out
}

// sourceIndex maps an arbitration source tag to a stable numeric code for
// plotting: 0 none, 1 driver, 2.. the features in priority order.
func sourceIndex(source string) float64 {
	switch source {
	case vehicle.SourceNone, "":
		return 0
	case vehicle.SourceDriver:
		return 1
	}
	for i, f := range vehicle.FeatureNames {
		if f == source {
			return float64(i + 2)
		}
	}
	return -1
}

func sanitize(series []float64) []float64 {
	for i, v := range series {
		if v != v { // NaN
			series[i] = 0
		}
	}
	return series
}

// RenderFigureCSV renders a figure's series as CSV with a time column.
func RenderFigureCSV(r Result, fig Figure) string {
	series := FigureSeries(r, fig)
	cols := append([]string{"time_s"}, fig.Signals...)
	var b strings.Builder
	fmt.Fprintf(&b, "# Figure %s: %s\n", fig.ID, fig.Title)
	fmt.Fprintln(&b, strings.Join(cols, ","))
	n := r.Trace.Len()
	// Down-sample to at most ~2000 rows to keep the CSV manageable.
	stride := n/2000 + 1
	for i := 0; i < n; i += stride {
		row := make([]string, len(cols))
		for j, c := range cols {
			row[j] = fmt.Sprintf("%.4f", series[c][i])
		}
		fmt.Fprintln(&b, strings.Join(row, ","))
	}
	return b.String()
}
