package scenarios

import (
	"strconv"
	"strings"
	"time"

	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/temporal"
	"repro/internal/vehicle"
)

// Period is the simulation state period used by the evaluation (1 ms, as in
// the thesis).
const Period = time.Millisecond

// DefaultDuration is the scheduled simulation time a zero-valued
// Scenario.Duration resolves to (20 s, as in the thesis).  It is exported so
// out-of-process consumers of results (internal/dist) can normalize a job's
// duration exactly the way the run itself does.
const DefaultDuration = 20 * time.Second

// Scenario is one of the ten evaluation scenarios of thesis Section 5.4.
//
// The JSON shape is part of the distributed wire contract (internal/dist):
// field order is declaration order and every value round-trips
// byte-identically through encoding/json, so a coordinator can re-emit a
// scenario it parsed without disturbing a byte-for-byte diff.
type Scenario struct {
	// Number is the thesis scenario number (1–10).
	Number int `json:"number"`
	// Name is a short identifier.
	Name string `json:"name"`
	// Description is the thesis' scenario description.
	Description string `json:"description,omitempty"`
	// Duration is the scheduled simulation time (20 s in the thesis); runs
	// terminate early on a collision, as the thesis' runs terminated early
	// on vehicle-model faults.
	Duration time.Duration `json:"duration"`

	// InitialSpeed is the host vehicle's speed at the start, in m/s
	// (negative for reverse motion).
	InitialSpeed float64 `json:"initial_speed"`
	// Gear is the transmission gear at the start ("D" or "R").
	Gear string `json:"gear"`
	// ObjectDistance and ObjectSpeed place a target vehicle relative to
	// the host (positive distance ahead, negative behind).
	ObjectDistance float64 `json:"object_distance"`
	ObjectSpeed    float64 `json:"object_speed"`

	// Driver is the driver/HMI input schedule.
	Driver []vehicle.DriverAction `json:"driver,omitempty"`

	// ACCDirectionCheck restores the gear check in ACC engagement (the
	// thesis implementation accepted engagement in reverse, so the check
	// is off by default).
	ACCDirectionCheck bool `json:"acc_direction_check,omitempty"`
}

// Result is the outcome of one monitored scenario run.
//
// A marshalled Result is the summary projection: the trace, suite and
// detections are excluded ("-") whatever the retention policy, so the JSON
// form is exactly the state a SummaryOnly run retains, and it survives
// marshal → unmarshal → marshal byte-identically — the diff-stability the
// distributed coordinator's re-emission and seed files depend on
// (TestResultJSONRoundTrip).
type Result struct {
	// Scenario is the configuration that was run.
	Scenario Scenario `json:"scenario"`
	// Steps is the number of simulation steps executed.  Unlike Trace, it
	// survives every retention policy.
	Steps int `json:"steps"`
	// Trace is the recorded state trace (nil under SummaryOnly retention).
	Trace *temporal.Trace `json:"-"`
	// Suite holds the goal and subgoal monitors after the run (nil under
	// SummaryOnly retention).  Its monitors are program-fed interval
	// recorders: classification and reporting work as always, but they
	// cannot Observe further states themselves.
	Suite *monitor.Suite `json:"-"`
	// Detections are the classified correspondences per system goal (nil
	// under SummaryOnly retention).
	Detections map[string][]monitor.Detection `json:"-"`
	// Summary aggregates the detections.
	Summary monitor.Summary `json:"summary"`
	// Collision reports whether the run terminated early on a collision.
	Collision bool `json:"collision"`
}

// TerminatedEarly reports whether the run stopped before its scheduled
// duration.
func (r Result) TerminatedEarly() bool {
	return r.Steps < int(r.Scenario.Duration/Period)
}

// Scenarios returns the ten evaluation scenarios of Section 5.4.
func Scenarios() []Scenario {
	enable := vehicle.Flag(true)
	return []Scenario{
		{
			Number: 1, Name: "s1-ca-acc-stopped-vehicle",
			Description:  "CA enabled, ACC enabled, stopped vehicle in path.",
			Duration:     20 * time.Second,
			InitialSpeed: 8, Gear: "D", ObjectDistance: 110, ObjectSpeed: 0,
			Driver: []vehicle.DriverAction{
				{At: 0, EnableCA: enable, EnableACC: enable},
			},
		},
		{
			Number: 2, Name: "s2-pa-engaged-during-braking",
			Description:  "CA engaged, ACC enabled, PA enabled: the driver engages PA just after CA begins a hard braking action.",
			Duration:     20 * time.Second,
			InitialSpeed: 8, Gear: "D", ObjectDistance: 110, ObjectSpeed: 0,
			Driver: []vehicle.DriverAction{
				{At: 0, EnableCA: enable, EnableACC: enable},
				{At: 12500 * time.Millisecond, EnablePA: enable, EngagePA: enable},
			},
		},
		{
			Number: 3, Name: "s3-throttle-vs-ca",
			Description:  "CA engaged, ACC enabled, throttle pedal applied, stopped vehicle in path: CA's intermittent braking fails to stop the host vehicle.",
			Duration:     20 * time.Second,
			InitialSpeed: 6, Gear: "D", ObjectDistance: 100, ObjectSpeed: 0,
			Driver: []vehicle.DriverAction{
				{At: 0, EnableCA: enable, EnableACC: enable},
				{At: 500 * time.Millisecond, Throttle: vehicle.Level(0.3)},
			},
		},
		{
			Number: 4, Name: "s4-acc-engaged-with-throttle",
			Description:  "Throttle pedal applied, ACC engaged, CA enabled, slow vehicle in path.",
			Duration:     20 * time.Second,
			InitialSpeed: 10, Gear: "D", ObjectDistance: 60, ObjectSpeed: 6,
			Driver: []vehicle.DriverAction{
				{At: 0, EnableCA: enable, EnableACC: enable},
				{At: 500 * time.Millisecond, Throttle: vehicle.Level(0.4)},
				{At: 2 * time.Second, EngageACC: enable, SetSpeed: vehicle.Level(20)},
				{At: 9 * time.Second, Throttle: vehicle.Level(0)},
			},
		},
		{
			Number: 5, Name: "s5-acc-throttle-then-brake",
			Description:  "Throttle pedal applied, ACC engaged, CA enabled, brake pedal applied, slow vehicle in path.",
			Duration:     20 * time.Second,
			InitialSpeed: 10, Gear: "D", ObjectDistance: 60, ObjectSpeed: 6,
			Driver: []vehicle.DriverAction{
				{At: 0, EnableCA: enable, EnableACC: enable},
				{At: 500 * time.Millisecond, Throttle: vehicle.Level(0.4)},
				{At: 2 * time.Second, EngageACC: enable, SetSpeed: vehicle.Level(12)},
				{At: 7 * time.Second, Throttle: vehicle.Level(0)},
				{At: 11 * time.Second, Brake: vehicle.Level(0.3)},
				{At: 13 * time.Second, Brake: vehicle.Level(0)},
			},
		},
		{
			Number: 6, Name: "s6-lca-engaged",
			Description:  "Throttle pedal applied, ACC engaged, CA enabled, LCA engaged, slow vehicle in path: vehicle speed becomes negative while LCA and ACC remain active.",
			Duration:     20 * time.Second,
			InitialSpeed: 10, Gear: "D", ObjectDistance: 60, ObjectSpeed: 6,
			Driver: []vehicle.DriverAction{
				{At: 0, EnableCA: enable, EnableACC: enable, EnableLCA: enable},
				{At: 500 * time.Millisecond, Throttle: vehicle.Level(0.4)},
				{At: 2 * time.Second, EngageACC: enable, SetSpeed: vehicle.Level(20)},
				{At: 4500 * time.Millisecond, Throttle: vehicle.Level(0)},
				{At: 5 * time.Second, EngageLCA: enable},
			},
		},
		{
			Number: 7, Name: "s7-reverse-rca",
			Description:  "In reverse, RCA enabled, stopped vehicle in path behind the host: RCA never engages.",
			Duration:     20 * time.Second,
			InitialSpeed: 0, Gear: "R", ObjectDistance: -12, ObjectSpeed: 0,
			Driver: []vehicle.DriverAction{
				{At: 0, EnableRCA: enable, Gear: vehicle.GearSel("R")},
				{At: 1 * time.Second, Throttle: vehicle.Level(0.25)},
			},
		},
		{
			Number: 8, Name: "s8-reverse-acc-engaged",
			Description:  "In reverse, ACC engaged, stopped vehicle in path: ACC is selected as the acceleration source while the vehicle moves backward.",
			Duration:     20 * time.Second,
			InitialSpeed: 0, Gear: "R", ObjectDistance: -15, ObjectSpeed: 0,
			Driver: []vehicle.DriverAction{
				{At: 0, EnableACC: enable, EnableRCA: enable, Gear: vehicle.GearSel("R")},
				{At: 500 * time.Millisecond, Throttle: vehicle.Level(0.4)},
				{At: 1800 * time.Millisecond, Throttle: vehicle.Level(0)},
				{At: 2 * time.Second, EngageACC: enable},
			},
		},
		{
			Number: 9, Name: "s9-pa-engaged-at-stop",
			Description:  "Stopped, PA engaged, stopped vehicle in path: PA is selected but the acceleration command does not equal the PA request.",
			Duration:     20 * time.Second,
			InitialSpeed: 0, Gear: "D", ObjectDistance: 12, ObjectSpeed: 0,
			Driver: []vehicle.DriverAction{
				{At: 0, EnableCA: enable, Brake: vehicle.Level(0.3)},
				{At: 2 * time.Second, EnablePA: enable, EngagePA: enable, Brake: vehicle.Level(0)},
			},
		},
		{
			Number: 10, Name: "s10-acc-engage-at-stop",
			Description:  "Stopped, ACC engaged, stopped vehicle in path: ACC does not become active, yet the vehicle begins to accelerate.",
			Duration:     20 * time.Second,
			InitialSpeed: 0, Gear: "D", ObjectDistance: 25, ObjectSpeed: 0,
			Driver: []vehicle.DriverAction{
				{At: 0, EnableCA: enable, EnableACC: enable, Brake: vehicle.Level(0.3)},
				{At: 2 * time.Second, EngageACC: enable, Brake: vehicle.Level(0)},
			},
		},
	}
}

// ScenarioByNumber returns the scenario with the given thesis number.
func ScenarioByNumber(n int) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Number == n {
			return sc, true
		}
	}
	return Scenario{}, false
}

// DefectSet selects which feature subsystems run with their seeded defects
// corrected.  The zero value corrects nothing — every thesis defect stays in
// place — and setting a field removes that subsystem's defects only, so a
// sweep can attribute the observed violation structure to individual
// subsystems instead of the all-or-nothing CorrectDefects ablation.
type DefectSet struct {
	// CorrectCA makes CA brake continuously instead of intermittently.
	CorrectCA bool `json:"correct_ca,omitempty"`
	// CorrectRCA lets RCA engage in reverse.
	CorrectRCA bool `json:"correct_rca,omitempty"`
	// CorrectACC restricts ACC to controlling only while engaged, only in
	// forward gear, and without the LCA-interaction deceleration defect.
	CorrectACC bool `json:"correct_acc,omitempty"`
	// CorrectPA silences Park Assist while it is disabled.
	CorrectPA bool `json:"correct_pa,omitempty"`
	// CorrectArbiter gives the Arbiter a single consistent priority order
	// with an immediate driver-override check and a faithful PA command.
	CorrectArbiter bool `json:"correct_arbiter,omitempty"`
}

// AllDefectsCorrected is the DefectSet equivalent of CorrectDefects.
var AllDefectsCorrected = DefectSet{
	CorrectCA: true, CorrectRCA: true, CorrectACC: true, CorrectPA: true, CorrectArbiter: true,
}

// label renders the corrected subsystems compactly for variant names.
func (d DefectSet) label() string {
	if d == (DefectSet{}) {
		return "none"
	}
	var parts []string
	for _, p := range []struct {
		on   bool
		name string
	}{
		{d.CorrectCA, "CA"}, {d.CorrectRCA, "RCA"}, {d.CorrectACC, "ACC"},
		{d.CorrectPA, "PA"}, {d.CorrectArbiter, "Arbiter"},
	} {
		if p.on {
			parts = append(parts, p.name)
		}
	}
	return strings.Join(parts, "+")
}

// Options configures a scenario run beyond the scenario definition itself.
type Options struct {
	// CorrectDefects removes every seeded defect from the feature
	// subsystems and the Arbiter: CA brakes continuously, RCA engages,
	// ACC only controls while engaged and only in forward gear, PA is
	// silent while disabled, and the Arbiter uses a single consistent
	// priority order with an immediate driver-override check.  Running the
	// scenarios in this configuration is the ablation that shows how much
	// of the observed goal-violation structure comes from the thesis'
	// documented defects rather than from the monitoring approach.
	CorrectDefects bool `json:"correct_defects,omitempty"`

	// Defects corrects individual subsystems' seeded defects (the zero
	// value corrects none).  CorrectDefects takes precedence: when it is
	// set, every subsystem is corrected regardless of this field.  Sweeps
	// vary it through Family.DefectSets.
	Defects DefectSet `json:"defects,omitempty"`

	// MatchTolerance overrides the hit-matching window, in states, used
	// when deciding whether a subgoal violation corresponds to a system
	// goal violation (0 uses the default of 150).  Sweeping it shows how
	// sensitive the hit / false-negative / false-positive classification is
	// to the assumed observation and actuation delays between hierarchy
	// levels.
	MatchTolerance int `json:"match_tolerance,omitempty"`
}

// defects resolves the effective per-subsystem correction set.
func (o Options) defects() DefectSet {
	if o.CorrectDefects {
		return AllDefectsCorrected
	}
	return o.Defects
}

// tolerance resolves the effective hit-matching window.
func (o Options) tolerance() int {
	if o.MatchTolerance > 0 {
		return o.MatchTolerance
	}
	return matchTolerance
}

// Label returns a short, stable identifier covering every Options field, used
// to build variant names.  Two distinct option values always produce distinct
// labels; TestOptionsLabelCoversAllFields enforces that any field added to
// Options is also added here, so sweep variant names can never collide on an
// unlabelled option.
func (o Options) Label() string {
	var b strings.Builder
	b.WriteString("corrected=")
	b.WriteString(strconv.FormatBool(o.CorrectDefects))
	b.WriteString(",tol=")
	b.WriteString(strconv.Itoa(o.MatchTolerance))
	b.WriteString(",fixed=")
	b.WriteString(o.Defects.label())
	return b.String()
}

// Run executes one scenario with the full Table 5.3 monitoring suite and the
// thesis' seeded defects in place.
func Run(sc Scenario) Result { return RunWithOptions(sc, Options{}) }

// RunCorrected executes one scenario with every seeded defect removed.
func RunCorrected(sc Scenario) Result { return RunWithOptions(sc, Options{CorrectDefects: true}) }

// RunWithOptions executes one scenario with explicit options, retaining the
// full trace and monitor suite on the Result.
func RunWithOptions(sc Scenario, opts Options) Result {
	return runJob(sc, opts, KeepTrace)
}

// vehicleSet is the typed component set of one vehicle simulation, kept so a
// run arena can reconfigure and reset the same components variant after
// variant instead of rebuilding them.
type vehicleSet struct {
	driver   *vehicle.Driver
	object   *vehicle.Object
	ca       *vehicle.CollisionAvoidance
	rca      *vehicle.RearCollisionAvoidance
	acc      *vehicle.AdaptiveCruiseControl
	lca      *vehicle.LaneChangeAssist
	pa       *vehicle.ParkAssist
	arbiter  *vehicle.Arbiter
	dynamics *vehicle.Dynamics
}

// newVehicleSet constructs the component set with the constructors' default
// (defect-seeded) configuration; configure applies a scenario on top.
func newVehicleSet() *vehicleSet {
	return &vehicleSet{
		driver:   &vehicle.Driver{},
		object:   &vehicle.Object{},
		ca:       vehicle.NewCollisionAvoidance(),
		rca:      vehicle.NewRearCollisionAvoidance(),
		acc:      vehicle.NewAdaptiveCruiseControl(),
		lca:      vehicle.NewLaneChangeAssist(),
		pa:       vehicle.NewParkAssist(),
		arbiter:  vehicle.NewArbiter(),
		dynamics: &vehicle.Dynamics{},
	}
}

// components returns the component set in the simulation's step order.
func (vs *vehicleSet) components() []sim.Component {
	return []sim.Component{
		vs.driver, vs.object, vs.ca, vs.rca, vs.acc, vs.lca, vs.pa, vs.arbiter, vs.dynamics,
	}
}

// configure applies one scenario's parameters and defect corrections.  Every
// flag is assigned absolutely — enabled or disabled, never left as-is — so
// reconfiguring a reused component set for the next sweep variant re-seeds
// defects a previous variant corrected.
func (vs *vehicleSet) configure(sc Scenario, opts Options) {
	vs.driver.Schedule = sc.Driver
	vs.driver.InitialGear = sc.Gear
	vs.object.InitialDistance = sc.ObjectDistance
	vs.object.Speed = sc.ObjectSpeed
	vs.dynamics.InitialSpeed = sc.InitialSpeed

	correct := opts.defects()
	vs.ca.IntermittentBraking = !correct.CorrectCA
	vs.rca.NeverEngages = !correct.CorrectRCA
	vs.acc.ControlWhenNotEngaged = !correct.CorrectACC
	vs.acc.DecelWhileLCA = !correct.CorrectACC
	vs.acc.EngageWithoutChecks = !sc.ACCDirectionCheck && !correct.CorrectACC
	vs.pa.SpuriousRequests = !correct.CorrectPA
	arbiterDefects := !correct.CorrectArbiter
	vs.arbiter.ReversedSteeringPriority = arbiterDefects
	vs.arbiter.SteeringStageOverridesAccel = arbiterDefects
	vs.arbiter.EnabledFeaturesJoinSteering = arbiterDefects
	vs.arbiter.PACommandMismatch = arbiterDefects
	if arbiterDefects {
		vs.arbiter.OverrideCheckDelay = vehicle.DefaultOverrideCheckDelay
	} else {
		vs.arbiter.OverrideCheckDelay = 0
	}
}

// initVehicleBus (re)initialises the scenario's signal vocabulary on the bus
// so every signal is visible from the very first step.  On a fresh bus it
// interns the full vocabulary into the run's schema; on a reset arena bus
// every name is already interned and each Init is two plane stores.
func initVehicleBus(bus *sim.Bus, sc Scenario) {
	bus.InitNumber(vehicle.SigPeriodSeconds, Period.Seconds())
	bus.InitString(vehicle.SigGear, sc.Gear)
	bus.InitString(vehicle.SigAccelSource, vehicle.SourceNone)
	bus.InitString(vehicle.SigSteerSource, vehicle.SourceNone)
	bus.InitNumber(vehicle.SigAccelCommand, 0)
	bus.InitNumber(vehicle.SigSteerCommand, 0)
	bus.InitNumber(vehicle.SigVehicleSpeed, sc.InitialSpeed)
	bus.InitNumber(vehicle.SigVehicleAccel, 0)
	bus.InitNumber(vehicle.SigVehicleJerk, 0)
	bus.InitNumber(vehicle.SigVehiclePosition, 0)
	bus.InitBool(vehicle.SigVehicleStopped, sc.InitialSpeed == 0)
	bus.InitBool(vehicle.SigInForwardMotion, sc.InitialSpeed > 0)
	bus.InitBool(vehicle.SigInBackwardMotion, sc.InitialSpeed < 0)
	bus.InitBool(vehicle.SigAccelFromSubsystem, false)
	bus.InitBool(vehicle.SigSteerFromSubsystem, false)
	bus.InitBool(vehicle.SigAccelSteeringAgreement, true)
	bus.InitNumber(vehicle.SigObjectDistance, 1e9)
	bus.InitNumber(vehicle.SigRearObjectDistance, 1e9)
	for _, f := range vehicle.FeatureNames {
		bus.InitBool(vehicle.SigActive(f), false)
		bus.InitNumber(vehicle.SigAccelRequest(f), 0)
		bus.InitBool(vehicle.SigRequestingAccel(f), false)
		bus.InitNumber(vehicle.SigSteerRequest(f), 0)
		bus.InitBool(vehicle.SigRequestingSteer(f), false)
		bus.InitNumber(vehicle.SigRequestJerk(f), 0)
		bus.InitBool(vehicle.SigSelected(f), false)
	}
}

// NewSimulation builds the simulation for one scenario: the initialised bus
// (which interns the full signal vocabulary into the run's schema) and the
// component set with the configured defects, sharing one resolved handle
// table.  It is the setup half of runJob, exposed for callers that attach
// their own observers — the differential tests and the substrate benchmarks.
// Sweep workers reuse one simulation across variants through a runArena
// instead.
func NewSimulation(sc Scenario, opts Options) *sim.Simulation {
	s := sim.New(Period)
	initVehicleBus(s.Bus, sc)
	vs := newVehicleSet()
	vs.configure(sc, opts)
	components := vs.components()
	// One shared handle table for the whole run instead of one per component.
	vehicle.BindAll(s.Bus, components...)
	s.Add(components...)
	return s
}

// suiteCache reuses compiled monitor suites across the runs executed by one
// worker, keyed by the effective hit-matching tolerance (the only option that
// changes the suite's structure).  A sweep worker therefore compiles the
// ~30-formula monitoring plan once per tolerance instead of once per variant;
// each reuse Resets the program and re-resolves its atoms against the next
// run's schema on the first observation.  A cache is owned by a single
// goroutine and must never be shared.
type suiteCache map[int]*monitor.CompiledSuite

// runJob executes one scenario under the given trace-retention policy,
// compiling a fresh monitor suite for the run.
func runJob(sc Scenario, opts Options, retention Retention) Result {
	return runJobCached(sc, opts, retention, nil)
}

// runJobCached is runJob with an optional per-worker suite cache.  It is the
// single execution path shared by RunWithOptions and the streaming Engine;
// under SummaryOnly the simulation records no trace at all (the suite
// observes the live bus state), so a run allocates O(1) retained state
// instead of O(steps).  The whole monitoring plan is evaluated as one shared
// program (suite-level CSE across every goal and subgoal formula), registered
// with the simulation as a single observer.
func runJobCached(sc Scenario, opts Options, retention Retention, cache suiteCache) Result {
	s := NewSimulation(sc, opts)

	tol := opts.tolerance()
	var suite *monitor.CompiledSuite
	// Reuse is only sound when the Result does not retain the suite: a
	// KeepTrace result hands its suite to the caller, so a later run must
	// not Reset it.
	if cache != nil && retention == SummaryOnly {
		if cached, ok := cache[tol]; ok {
			cached.Reset()
			suite = cached
		}
	}
	if suite == nil {
		suite = buildCompiledSuite(Period, s.Bus.Schema(), tol)
		if cache != nil && retention == SummaryOnly {
			cache[tol] = suite
		}
	}
	s.Observe(suite)
	collision := s.Bus.Schema().Intern(vehicle.SigCollision)
	s.StopWhen(func(_ time.Duration, st temporal.State) bool {
		return st.Slot(collision).AsBool()
	})

	// Normalize the default duration into the scenario recorded on the
	// Result, so Result.TerminatedEarly compares the executed steps against
	// the duration that was actually scheduled.
	if sc.Duration <= 0 {
		sc.Duration = DefaultDuration
	}

	var (
		trace *temporal.Trace
		steps int
		last  temporal.State
	)
	if retention == SummaryOnly {
		steps, last = s.RunDiscard(sc.Duration)
	} else {
		trace = s.Run(sc.Duration)
		steps, last = trace.Len(), trace.Last()
	}
	suite.Finish()

	out := Result{
		Scenario:  sc,
		Steps:     steps,
		Collision: last != nil && last.Bool(vehicle.SigCollision),
	}
	if retention == SummaryOnly {
		// Only the counts survive this retention policy, so classify without
		// materializing detections (identical summary, zero retained state).
		out.Summary = suite.FastSummary()
	} else {
		detections, summary := suite.ClassifyAll()
		out.Summary = summary
		out.Trace = trace
		out.Suite = suite.Suite()
		out.Detections = detections
	}
	return out
}
