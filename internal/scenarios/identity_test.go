package scenarios

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/vehicle"
)

// flipField mutates one reflect-addressable field to a distinct value,
// returning false for kinds the table does not cover.  Slices (the driver
// schedule) grow by one zero element, which changes their canonical JSON
// encoding.
func flipField(fv reflect.Value) bool {
	switch fv.Kind() {
	case reflect.Bool:
		fv.SetBool(!fv.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fv.SetInt(fv.Int() + 1)
	case reflect.Float32, reflect.Float64:
		fv.SetFloat(fv.Float() + 1)
	case reflect.String:
		fv.SetString(fv.String() + "x")
	case reflect.Slice:
		fv.Set(reflect.Append(fv, reflect.Zero(fv.Type().Elem())))
	default:
		return false
	}
	return true
}

// checkKeys asserts how a mutated job's keys moved relative to the base job
// for the declared field class: dynamics fields must change DynamicsKey and
// leave MonitorKey alone, monitor fields the inverse, identity fields
// neither.
func checkKeys(t *testing.T, where string, class fieldClass, base, mod Job) {
	t.Helper()
	dynChanged := mod.DynamicsKey() != base.DynamicsKey()
	monChanged := mod.MonitorKey() != base.MonitorKey()
	switch class {
	case dynamicsField:
		if !dynChanged {
			t.Errorf("%s: classified dynamics but DynamicsKey ignores it (key %q)", where, base.DynamicsKey())
		}
		if monChanged {
			t.Errorf("%s: classified dynamics but flipping it changed MonitorKey", where)
		}
	case monitorField:
		if dynChanged {
			t.Errorf("%s: classified monitor-only but flipping it changed DynamicsKey", where)
		}
		if !monChanged {
			t.Errorf("%s: classified monitor-only but MonitorKey ignores it (key %q)", where, base.MonitorKey())
		}
	case identityField:
		if dynChanged || monChanged {
			t.Errorf("%s: classified identity/metadata but flipping it changed a key (dynamics %v, monitor %v)",
				where, dynChanged, monChanged)
		}
	default:
		t.Errorf("%s: unknown field class %d", where, class)
	}
}

// TestScenarioFieldsClassified walks every Scenario field by reflection and
// asserts it is classified in scenarioFieldClass AND that the keys respect
// the classification.  A scenario parameter added without a classification —
// or classified dynamics but forgotten in DynamicsKey — fails here instead of
// silently grouping jobs whose trajectories differ.
func TestScenarioFieldsClassified(t *testing.T) {
	base := Job{Scenario: Scenario{
		Number:       7,
		Name:         "base",
		Duration:     2 * time.Second,
		InitialSpeed: 8,
		Gear:         "D",
		Driver:       []vehicle.DriverAction{{At: time.Second}},
	}}
	rt := reflect.TypeOf(base.Scenario)
	if len(scenarioFieldClass) != rt.NumField() {
		t.Errorf("scenarioFieldClass has %d entries for %d Scenario fields: remove stale entries",
			len(scenarioFieldClass), rt.NumField())
	}
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		class, ok := scenarioFieldClass[name]
		if !ok {
			t.Errorf("Scenario field %s is not classified in scenarioFieldClass: decide whether it affects the simulated trajectory", name)
			continue
		}
		mod := base
		fv := reflect.ValueOf(&mod.Scenario).Elem().Field(i)
		if !flipField(fv) {
			t.Fatalf("Scenario field %s has kind %s: extend flipField", name, fv.Kind())
		}
		checkKeys(t, "Scenario."+name, class, base, mod)
	}
}

// TestOptionsFieldsClassified is the Options counterpart: every field must be
// classified dynamics vs monitor-only, and the keys must respect the split.
// Struct-valued options (Defects) are flipped per leaf field.
func TestOptionsFieldsClassified(t *testing.T) {
	base := Job{Scenario: Scenario{Name: "base", Duration: 2 * time.Second}}
	rt := reflect.TypeOf(base.Options)
	if len(optionsFieldClass) != rt.NumField() {
		t.Errorf("optionsFieldClass has %d entries for %d Options fields: remove stale entries",
			len(optionsFieldClass), rt.NumField())
	}
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		class, ok := optionsFieldClass[name]
		if !ok {
			t.Errorf("Options field %s is not classified in optionsFieldClass: decide whether it affects the simulated trajectory", name)
			continue
		}
		mod := base
		fv := reflect.ValueOf(&mod.Options).Elem().Field(i)
		if fv.Kind() == reflect.Struct {
			for j := 0; j < fv.NumField(); j++ {
				sub := base
				sv := reflect.ValueOf(&sub.Options).Elem().Field(i).Field(j)
				if !flipField(sv) {
					t.Fatalf("Options field %s.%s has kind %s: extend flipField",
						name, fv.Type().Field(j).Name, sv.Kind())
				}
				checkKeys(t, "Options."+name+"."+fv.Type().Field(j).Name, class, base, sub)
			}
			continue
		}
		if !flipField(fv) {
			t.Fatalf("Options field %s has kind %s: extend flipField", name, fv.Kind())
		}
		checkKeys(t, "Options."+name, class, base, mod)
	}
}

// TestDynamicsKeyCanonical pins the canonicalizations DynamicsKey promises:
// naming metadata is excluded, a zero duration equals the default duration
// explicitly spelled out, and CorrectDefects equals the equivalent explicit
// DefectSet.
func TestDynamicsKeyCanonical(t *testing.T) {
	sc, ok := ScenarioByNumber(7)
	if !ok {
		t.Fatal("scenario 7 missing")
	}
	base := Job{Scenario: sc}

	renamed := base
	renamed.Scenario.Name = "renamed"
	renamed.Scenario.Number = 99
	renamed.Scenario.Description = "different words"
	if renamed.DynamicsKey() != base.DynamicsKey() {
		t.Error("scenario naming metadata leaked into DynamicsKey")
	}

	zero, def := base, base
	zero.Scenario.Duration = 0
	def.Scenario.Duration = DefaultDuration
	if zero.DynamicsKey() != def.DynamicsKey() {
		t.Errorf("zero duration and DefaultDuration produce different DynamicsKeys:\n%q\n%q",
			zero.DynamicsKey(), def.DynamicsKey())
	}

	flag, explicit := base, base
	flag.Options.CorrectDefects = true
	explicit.Options.Defects = AllDefectsCorrected
	if flag.DynamicsKey() != explicit.DynamicsKey() {
		t.Error("CorrectDefects and the equivalent explicit DefectSet produce different DynamicsKeys")
	}

	zeroTol, defTol := base, base
	zeroTol.Options.MatchTolerance = 0
	defTol.Options.MatchTolerance = matchTolerance
	if zeroTol.MonitorKey() != defTol.MonitorKey() {
		t.Errorf("zero MatchTolerance and the explicit default produce different MonitorKeys: %q vs %q",
			zeroTol.MonitorKey(), defTol.MonitorKey())
	}
}

// TestToleranceVariantsShareDynamics asserts the identity split on the sweep
// the grouped path exists for: every tolerance-axis variant of one family
// shares its siblings' DynamicsKey while keeping a distinct MonitorKey and a
// distinct Job.Key — groupable for simulation, still individually identified
// for sharding, caching and dedup.
func TestToleranceVariantsShareDynamics(t *testing.T) {
	for _, f := range ToleranceSweep().Families {
		jobs := f.Variants()
		if len(jobs) != 3 {
			t.Fatalf("family %q: %d variants, want 3", f.Base.Name, len(jobs))
		}
		seenMon := make(map[string]bool)
		seenKey := make(map[string]bool)
		for _, j := range jobs {
			if got, want := j.DynamicsKey(), jobs[0].DynamicsKey(); got != want {
				t.Errorf("family %q: tolerance variant split the DynamicsKey:\n%q\n%q", f.Base.Name, got, want)
			}
			if seenMon[j.MonitorKey()] {
				t.Errorf("family %q: duplicate MonitorKey %q", f.Base.Name, j.MonitorKey())
			}
			seenMon[j.MonitorKey()] = true
			if seenKey[j.Key()] {
				t.Errorf("family %q: duplicate Job.Key %q", f.Base.Name, j.Key())
			}
			seenKey[j.Key()] = true
		}
	}
}
