package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/goals"
)

// miniElevatorModel builds a reduced version of the Figure 4.5 distributed
// elevator control system, sufficient to exercise path tracing.
func miniElevatorModel() *SystemModel {
	m := NewSystemModel("distributed elevator (partial)")

	m.AddAgent(goals.NewAgent("ElevatorSpeedSensor", goals.KindSensor,
		[]string{"DriveSpeed"}, []string{"ElevatorSpeed"}))
	m.AddAgent(goals.NewAgent("DoorClosedSensor", goals.KindSensor,
		[]string{"DoorPosition"}, []string{"DoorClosed"}))
	m.AddAgent(goals.NewAgent("Drive", goals.KindActuator,
		[]string{"DriveCommand"}, []string{"DriveSpeed"}))
	m.AddAgent(goals.NewAgent("DoorMotor", goals.KindActuator,
		[]string{"DoorMotorCommand", "DoorBlocked"}, []string{"DoorPosition"}))
	// The base functional design of Figure 4.5: DriveController acts on
	// dispatch requests only; the cross-monitoring of DoorClosed and
	// DriveCommand is introduced later by the Table 4.4 subgoals.
	m.AddAgent(goals.NewAgent("DriveController", goals.KindSoftware,
		[]string{"DispatchRequest"}, []string{"DriveCommand"}))
	m.AddAgent(goals.NewAgent("DoorController", goals.KindSoftware,
		[]string{"DispatchRequest", "DoorBlocked"}, []string{"DoorMotorCommand"}))
	m.AddAgent(goals.NewAgent("DispatchController", goals.KindSoftware,
		[]string{"HallCall", "CarCall"}, []string{"DispatchRequest"}))
	m.AddAgent(goals.NewAgent("CarButtonController", goals.KindSoftware,
		[]string{"CarButtonPress"}, []string{"CarCall"}))
	m.AddAgent(goals.NewAgent("HallButtonController", goals.KindSoftware,
		[]string{"HallButtonPress"}, []string{"HallCall"}))
	m.AddAgent(goals.NewAgent("Passenger", goals.KindEnvironment,
		nil, []string{"DoorBlocked", "CarButtonPress", "HallButtonPress", "ElevatorWeight"}))

	m.AddVariable(Variable{Name: "ElevatorSpeed", Kind: VarSensed, Description: "sensed elevator speed"})
	m.AddVariable(Variable{Name: "DoorClosed", Kind: VarSensed, Description: "sensed door-closed state"})
	m.AddVariable(Variable{Name: "DriveCommand", Kind: VarCommand, Description: "drive actuation signal"})
	return m
}

func TestVariableKindString(t *testing.T) {
	for k, want := range map[VariableKind]string{
		VarSensed: "sensed", VarActuated: "actuated", VarCommand: "command",
		VarShared: "shared", VarEnvironmental: "environmental", VariableKind(0): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("VariableKind.String() = %q, want %q", got, want)
		}
	}
}

func TestSystemModelAgentsAndVariables(t *testing.T) {
	m := miniElevatorModel()
	if got := len(m.Agents()); got != 10 {
		t.Errorf("Agents() len = %d, want 10", got)
	}
	if _, ok := m.Agent("DriveController"); !ok {
		t.Error("DriveController should be registered")
	}
	if _, ok := m.Agent("Nobody"); ok {
		t.Error("unknown agent lookup should fail")
	}
	v, ok := m.Variable("ElevatorSpeed")
	if !ok || v.Kind != VarSensed {
		t.Errorf("Variable(ElevatorSpeed) = %+v, ok=%v", v, ok)
	}
	if len(m.Variables()) == 0 {
		t.Error("Variables() should not be empty")
	}
	// Re-adding an agent replaces rather than duplicates.
	m.AddAgent(goals.NewAgent("Passenger", goals.KindEnvironment, nil, []string{"DoorBlocked"}))
	if got := len(m.Agents()); got != 10 {
		t.Errorf("after re-add, Agents() len = %d, want 10", got)
	}
}

func TestDirectControllersAndObservers(t *testing.T) {
	m := miniElevatorModel()
	dc := m.DirectControllers("DriveCommand")
	if len(dc) != 1 || dc[0].Name != "DriveController" {
		t.Errorf("DirectControllers(DriveCommand) = %v", dc)
	}
	obs := m.Observers("DriveCommand")
	names := make([]string, len(obs))
	for i, a := range obs {
		names[i] = a.Name
	}
	want := []string{"Drive"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("Observers(DriveCommand) = %v, want %v", names, want)
	}
	if got := m.DirectControllers("NoSuchVariable"); len(got) != 0 {
		t.Errorf("DirectControllers(NoSuchVariable) = %v", got)
	}
}

func TestIndirectControlPathElevatorSpeed(t *testing.T) {
	// Thesis §4.4.1: the control path of ElevatorSpeed contains Drive,
	// DriveController, DispatchController, CarButtonController and
	// HallButtonController (plus the sensor that produces the variable).
	m := miniElevatorModel()
	p := m.IndirectControlPath("ElevatorSpeed", 0)

	if p.Variable != "ElevatorSpeed" {
		t.Errorf("Variable = %q", p.Variable)
	}
	got := p.AgentNames()
	want := []string{
		"CarButtonController", "DispatchController", "Drive", "DriveController",
		"ElevatorSpeedSensor", "HallButtonController", "Passenger",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AgentNames() = %v, want %v", got, want)
	}

	// Levels: sensor at 1, Drive at 2, DriveController at 3,
	// DispatchController at 4, button controllers at 5, Passenger at 6.
	levelOf := func(agent string) int {
		for _, s := range p.Sources {
			if s.Agent == agent {
				return s.Level
			}
		}
		return -1
	}
	for agent, level := range map[string]int{
		"ElevatorSpeedSensor":  1,
		"Drive":                2,
		"DriveController":      3,
		"DispatchController":   4,
		"CarButtonController":  5,
		"HallButtonController": 5,
		"Passenger":            6,
	} {
		if got := levelOf(agent); got != level {
			t.Errorf("level of %s = %d, want %d", agent, got, level)
		}
	}
	if p.MaxLevel() != 6 {
		t.Errorf("MaxLevel() = %d, want 6", p.MaxLevel())
	}
	if got := len(p.SourcesAtLevel(5)); got != 2 {
		t.Errorf("SourcesAtLevel(5) = %d sources, want 2", got)
	}
	if !strings.Contains(p.String(), "ElevatorSpeed:") {
		t.Errorf("String() = %q", p.String())
	}
}

func TestIndirectControlPathBranching(t *testing.T) {
	// DoorClosed has a branched path: DoorMotor/DoorController on one
	// branch and the Passenger (via DoorBlocked) on another.
	m := miniElevatorModel()
	p := m.IndirectControlPath("DoorClosed", 0)
	agents := p.AgentNames()
	for _, want := range []string{"DoorClosedSensor", "DoorMotor", "DoorController", "Passenger", "DispatchController"} {
		found := false
		for _, a := range agents {
			if a == want {
				found = true
			}
		}
		if !found {
			t.Errorf("path of DoorClosed should include %s, got %v", want, agents)
		}
	}
	// The Passenger is reached at level 3 (sensor -> door motor -> passenger
	// via DoorBlocked), before the button-press branch would reach it again;
	// each agent appears exactly once at its shallowest level.
	count := 0
	for _, s := range p.Sources {
		if s.Agent == "Passenger" {
			count++
			if s.Level != 3 {
				t.Errorf("Passenger level = %d, want 3", s.Level)
			}
		}
	}
	if count != 1 {
		t.Errorf("Passenger should appear exactly once, got %d", count)
	}
}

func TestIndirectControlPathMaxDepth(t *testing.T) {
	m := miniElevatorModel()
	p := m.IndirectControlPath("ElevatorSpeed", 2)
	if p.MaxLevel() != 2 {
		t.Errorf("MaxLevel() = %d, want 2 when maxDepth=2", p.MaxLevel())
	}
	if len(p.SourcesAtLevel(3)) != 0 {
		t.Error("no sources should be recorded beyond maxDepth")
	}
}

func TestIndirectControlPathUnknownVariable(t *testing.T) {
	m := miniElevatorModel()
	p := m.IndirectControlPath("NotAVariable", 0)
	if len(p.Sources) != 0 {
		t.Errorf("unknown variable should have an empty path, got %v", p.Sources)
	}
	if p.MaxLevel() != 0 {
		t.Errorf("MaxLevel() = %d, want 0", p.MaxLevel())
	}
}

func TestIndirectControlPathsForGoal(t *testing.T) {
	m := miniElevatorModel()
	g := goals.MustParse("Maintain[DoorClosedOrElevatorStopped]",
		"At all times the door shall be closed or the elevator speed shall be STOPPED.",
		"DoorClosed | ElevatorSpeed == 0")
	paths := m.IndirectControlPaths(g, 0)
	if len(paths) != 2 {
		t.Fatalf("expected 2 paths (one per goal variable), got %d", len(paths))
	}
	agents := m.InfluencingAgents(g, 0)
	if len(agents) < 8 {
		t.Errorf("InfluencingAgents() = %v, expected most of the system", agents)
	}
}

func TestControlRelationshipString(t *testing.T) {
	r := ControlRelationship{
		ID:       4,
		Variable: "dc",
		Formula:  goals.MustParse("", "", "prev(db) => !dc").Formal,
		Comment:  "a blocked door shall not be closed",
	}
	s := r.String()
	if !strings.Contains(s, "04") || !strings.Contains(s, "blocked door") {
		t.Errorf("String() = %q", s)
	}
}

func TestDefaultKindFor(t *testing.T) {
	m := NewSystemModel("kinds")
	m.AddAgent(goals.NewAgent("S", goals.KindSensor, nil, []string{"sv"}))
	m.AddAgent(goals.NewAgent("A", goals.KindActuator, nil, []string{"av"}))
	m.AddAgent(goals.NewAgent("E", goals.KindEnvironment, nil, []string{"ev"}))
	m.AddAgent(goals.NewAgent("C", goals.KindSoftware, []string{"in"}, []string{"cv"}))
	for name, kind := range map[string]VariableKind{
		"sv": VarSensed, "av": VarActuated, "ev": VarEnvironmental, "cv": VarCommand, "in": VarShared,
	} {
		v, ok := m.Variable(name)
		if !ok || v.Kind != kind {
			t.Errorf("Variable(%s).Kind = %v, want %v", name, v.Kind, kind)
		}
	}
}
