package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/temporal"
)

func caps(vals ...Capability) map[string]Capability {
	names := []string{"A", "B", "C"}
	m := make(map[string]Capability, len(vals))
	for i, v := range vals {
		m[names[i]] = v
	}
	return m
}

func TestCapabilityAndShapeStrings(t *testing.T) {
	for v, want := range map[Capability]string{
		CapNone: "none", CapObservable: "observable", CapControllable: "controllable",
	} {
		if got := v.String(); got != want {
			t.Errorf("Capability.String() = %q, want %q", got, want)
		}
	}
	for v, want := range map[PatternShape]string{
		ShapeSimple: "A => B", ShapeOrAntecedent: "A | B => C", ShapeAndAntecedent: "A & B => C",
		ShapeAndConsequent: "A => B & C", ShapeOrConsequent: "A => B | C", PatternShape(0): "unknown",
	} {
		if got := v.String(); got != want {
			t.Errorf("PatternShape.String() = %q, want %q", got, want)
		}
	}
	for v, want := range map[TemporalMark]string{
		MarkNone: "same state", MarkPrevAntecedent: "prev antecedent",
		MarkPrevConsequent: "prev consequent", TemporalMark(0): "unknown",
	} {
		if got := v.String(); got != want {
			t.Errorf("TemporalMark.String() = %q, want %q", got, want)
		}
	}
}

func TestPatternCaseFormula(t *testing.T) {
	tests := []struct {
		c    PatternCase
		want string
	}{
		{PatternCase{Shape: ShapeSimple, Mark: MarkNone}, "(A) => (B)"},
		{PatternCase{Shape: ShapeSimple, Mark: MarkPrevAntecedent}, "(prev(A)) => (B)"},
		{PatternCase{Shape: ShapeSimple, Mark: MarkPrevConsequent}, "(A) => (prev(B))"},
		{PatternCase{Shape: ShapeOrAntecedent, Mark: MarkNone}, "((A) | (B)) => (C)"},
		{PatternCase{Shape: ShapeAndAntecedent, Mark: MarkPrevAntecedent}, "((prev(A)) & (prev(B))) => (C)"},
		{PatternCase{Shape: ShapeAndConsequent, Mark: MarkNone}, "(A) => ((B) & (C))"},
		{PatternCase{Shape: ShapeOrConsequent, Mark: MarkPrevConsequent}, "(A) => ((prev(B)) | (prev(C)))"},
	}
	for _, tt := range tests {
		if got := tt.c.Formula().String(); got != tt.want {
			t.Errorf("Formula() = %q, want %q", got, tt.want)
		}
	}
}

// TestTable4_5_Realizability checks the key rows of thesis Table 4.5: goal
// controllability and observability requirements for goals of the form
// A => B, prev(A) => B and A => prev(B).
func TestTable4_5_Realizability(t *testing.T) {
	tests := []struct {
		name        string
		c           PatternCase
		realizable  bool
		restrictive bool
		feasible    bool
		altContains string
	}{
		{
			name:       "A=>B both controllable",
			c:          PatternCase{Shape: ShapeSimple, Mark: MarkNone, Caps: caps(CapControllable, CapControllable)},
			realizable: true, feasible: true,
		},
		{
			name:        "A=>B A observable only: reference to future, restrict to B",
			c:           PatternCase{Shape: ShapeSimple, Mark: MarkNone, Caps: caps(CapObservable, CapControllable)},
			restrictive: true, feasible: true, altContains: "B",
		},
		{
			name:        "A=>B A unknown: restrict to B",
			c:           PatternCase{Shape: ShapeSimple, Mark: MarkNone, Caps: caps(CapNone, CapControllable)},
			restrictive: true, feasible: true, altContains: "B",
		},
		{
			name:        "A=>B B not controllable, A controllable: prevent A",
			c:           PatternCase{Shape: ShapeSimple, Mark: MarkNone, Caps: caps(CapControllable, CapObservable)},
			restrictive: true, feasible: true, altContains: "!(A)",
		},
		{
			name:     "A=>B neither controllable: infeasible",
			c:        PatternCase{Shape: ShapeSimple, Mark: MarkNone, Caps: caps(CapObservable, CapObservable)},
			feasible: false,
		},
		{
			name:       "prev(A)=>B A observable B controllable: realizable",
			c:          PatternCase{Shape: ShapeSimple, Mark: MarkPrevAntecedent, Caps: caps(CapObservable, CapControllable)},
			realizable: true, feasible: true,
		},
		{
			name:       "prev(A)=>B both controllable: realizable",
			c:          PatternCase{Shape: ShapeSimple, Mark: MarkPrevAntecedent, Caps: caps(CapControllable, CapControllable)},
			realizable: true, feasible: true,
		},
		{
			name:        "prev(A)=>B A unknown: restrict to B",
			c:           PatternCase{Shape: ShapeSimple, Mark: MarkPrevAntecedent, Caps: caps(CapNone, CapControllable)},
			restrictive: true, feasible: true, altContains: "B",
		},
		{
			name:       "A=>prev(B) A controllable B observable: contrapositive rewrite",
			c:          PatternCase{Shape: ShapeSimple, Mark: MarkPrevConsequent, Caps: caps(CapControllable, CapObservable)},
			realizable: true, feasible: true, altContains: "!(prev(B))",
		},
		{
			name:        "A=>prev(B) only B controllable: keep B invariantly true",
			c:           PatternCase{Shape: ShapeSimple, Mark: MarkPrevConsequent, Caps: caps(CapObservable, CapControllable)},
			restrictive: true, feasible: true, altContains: "B",
		},
		{
			name:        "A=>prev(B) only A controllable, B unknown: prevent A",
			c:           PatternCase{Shape: ShapeSimple, Mark: MarkPrevConsequent, Caps: caps(CapControllable, CapNone)},
			restrictive: true, feasible: true, altContains: "!(A)",
		},
		{
			name:     "A=>prev(B) nothing controllable: infeasible",
			c:        PatternCase{Shape: ShapeSimple, Mark: MarkPrevConsequent, Caps: caps(CapObservable, CapObservable)},
			feasible: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out := AnalyzeRealizabilityPattern(tt.c)
			if out.Realizable != tt.realizable {
				t.Errorf("Realizable = %v, want %v (%s)", out.Realizable, tt.realizable, out)
			}
			if out.Feasible != tt.feasible {
				t.Errorf("Feasible = %v, want %v (%s)", out.Feasible, tt.feasible, out)
			}
			if !tt.realizable && tt.feasible && out.Restrictive != tt.restrictive {
				t.Errorf("Restrictive = %v, want %v (%s)", out.Restrictive, tt.restrictive, out)
			}
			if tt.altContains != "" {
				if out.Alternative == nil || !strings.Contains(out.Alternative.String(), tt.altContains) {
					t.Errorf("Alternative = %v, want it to contain %q", out.Alternative, tt.altContains)
				}
			}
		})
	}
}

func TestCompoundPatternOutcomes(t *testing.T) {
	tests := []struct {
		name        string
		c           PatternCase
		realizable  bool
		feasible    bool
		altContains string
	}{
		{
			name: "A&B=>C with unknowable conjunct drops it",
			c: PatternCase{Shape: ShapeAndAntecedent, Mark: MarkPrevAntecedent,
				Caps: map[string]Capability{"A": CapObservable, "B": CapNone, "C": CapControllable}},
			feasible: true, altContains: "(prev(A)) => (C)",
		},
		{
			name: "A|B=>C with unknowable disjunct guarantees C",
			c: PatternCase{Shape: ShapeOrAntecedent, Mark: MarkPrevAntecedent,
				Caps: map[string]Capability{"A": CapObservable, "B": CapNone, "C": CapControllable}},
			feasible: true, altContains: "C",
		},
		{
			name: "A=>B|C with one controllable disjunct restricts to it",
			c: PatternCase{Shape: ShapeOrConsequent, Mark: MarkPrevAntecedent,
				Caps: map[string]Capability{"A": CapObservable, "B": CapControllable, "C": CapNone}},
			feasible: true, altContains: "(prev(A)) => (B)",
		},
		{
			name: "A=>B&C with uncontrollable conjunct and controllable antecedent prevents A",
			c: PatternCase{Shape: ShapeAndConsequent, Mark: MarkNone,
				Caps: map[string]Capability{"A": CapControllable, "B": CapControllable, "C": CapObservable}},
			feasible: true, altContains: "!(A)",
		},
		{
			name: "A=>B&C fully controllable is realizable",
			c: PatternCase{Shape: ShapeAndConsequent, Mark: MarkNone,
				Caps: map[string]Capability{"A": CapControllable, "B": CapControllable, "C": CapControllable}},
			realizable: true, feasible: true,
		},
		{
			name: "A&B=>C nothing knowable or controllable is infeasible",
			c: PatternCase{Shape: ShapeAndAntecedent, Mark: MarkNone,
				Caps: map[string]Capability{"A": CapObservable, "B": CapNone, "C": CapObservable}},
			feasible: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out := AnalyzeRealizabilityPattern(tt.c)
			if out.Realizable != tt.realizable {
				t.Errorf("Realizable = %v, want %v (%s)", out.Realizable, tt.realizable, out)
			}
			if out.Feasible != tt.feasible {
				t.Errorf("Feasible = %v, want %v (%s)", out.Feasible, tt.feasible, out)
			}
			if tt.altContains != "" {
				if out.Alternative == nil || !strings.Contains(out.Alternative.String(), tt.altContains) {
					t.Errorf("Alternative = %v, want it to contain %q", out.Alternative, tt.altContains)
				}
			}
		})
	}
}

func TestTable4_5Generation(t *testing.T) {
	tables := Table4_5()
	if len(tables) != 3 {
		t.Fatalf("Table 4.5 should have the three temporal variants, got %d", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) != 9 {
			t.Errorf("table %q should enumerate 9 capability combinations, got %d", tab.Title, len(tab.Rows))
		}
		if !strings.Contains(tab.Render(), "|") {
			t.Errorf("Render() of %q looks empty", tab.Title)
		}
	}
}

func TestAppendixBPatterns(t *testing.T) {
	tables := AppendixBTables()
	if len(tables) != 15 {
		t.Fatalf("Appendix B should produce 15 tables (B.1 split in three), got %d", len(tables))
	}
	totalRows := 0
	for _, tab := range tables {
		totalRows += len(tab.Rows)
		for _, r := range tab.Rows {
			// Every row must have a definite outcome: realizable, an
			// alternative goal, or explicitly infeasible.
			if !r.Outcome.Realizable && r.Outcome.Feasible && r.Outcome.Alternative == nil {
				t.Errorf("row %s has no outcome", r.Case)
			}
			if r.Case.String() == "" {
				t.Error("row case should render")
			}
		}
	}
	if totalRows < 200 {
		t.Errorf("expected exhaustive capability enumeration, got %d rows", totalRows)
	}
}

// TestAlternativeGoalsEntailOriginal verifies the soundness property of the
// realizability catalogue: every restrictive alternative, interpreted as an
// invariant held in every state (the thesis' entailment reading of safety
// goals), guarantees the original pattern.  Checked over all two-state
// boolean traces, at index 1 so that prev() has a defined previous state.
func TestAlternativeGoalsEntailOriginal(t *testing.T) {
	vars := []string{"A", "B", "C"}
	traces := allTwoStateTraces(vars)
	for _, tab := range AppendixBTables() {
		for _, row := range tab.Rows {
			alt := row.Outcome.Alternative
			if alt == nil || row.Outcome.Realizable {
				continue
			}
			orig := row.Case.Formula()
			for _, tr := range traces {
				if temporal.HoldsThroughout(alt, tr) && !orig.Eval(tr, 1) {
					t.Fatalf("alternative %s (held throughout) does not entail original %s for case %s",
						alt, orig, row.Case)
				}
			}
		}
	}
}

// TestContrapositiveEquivalence verifies that the non-restrictive rewrite for
// A => prev(B) is genuinely equivalent, not just an entailment.
func TestContrapositiveEquivalence(t *testing.T) {
	c := PatternCase{Shape: ShapeSimple, Mark: MarkPrevConsequent, Caps: caps(CapControllable, CapObservable)}
	out := AnalyzeRealizabilityPattern(c)
	if !out.Realizable || out.Alternative == nil || out.Restrictive {
		t.Fatalf("unexpected outcome: %s", out)
	}
	orig := c.Formula()
	for _, tr := range allTwoStateTraces([]string{"A", "B"}) {
		if out.Alternative.Eval(tr, 1) != orig.Eval(tr, 1) {
			t.Fatalf("contrapositive rewrite is not equivalent on trace %v", tr.At(0))
		}
	}
}

// allTwoStateTraces enumerates every trace of length two over boolean
// variables.
func allTwoStateTraces(vars []string) []*temporal.Trace {
	nStates := 1 << len(vars)
	var out []*temporal.Trace
	for s0 := 0; s0 < nStates; s0++ {
		for s1 := 0; s1 < nStates; s1++ {
			tr := temporal.NewTrace(time.Millisecond)
			for _, mask := range []int{s0, s1} {
				st := temporal.NewState()
				for i, v := range vars {
					st.SetBool(v, mask&(1<<i) != 0)
				}
				tr.Append(st)
			}
			out = append(out, tr)
		}
	}
	return out
}

func TestPatternOutcomeString(t *testing.T) {
	if got := (PatternOutcome{Realizable: true, Feasible: true}).String(); got != "realizable" {
		t.Errorf("String() = %q", got)
	}
	if got := (PatternOutcome{Feasible: false, Note: "nope"}).String(); !strings.Contains(got, "nope") {
		t.Errorf("String() = %q", got)
	}
	alt := PatternOutcome{Feasible: true, Restrictive: true, Alternative: temporal.Var("B")}
	if !strings.Contains(alt.String(), "restrictive") {
		t.Errorf("String() = %q", alt.String())
	}
	eq := PatternOutcome{Feasible: true, Alternative: temporal.Var("B")}
	if !strings.Contains(eq.String(), "equivalent") {
		t.Errorf("String() = %q", eq.String())
	}
}
