package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/goals"
	"repro/internal/temporal"
)

// VariableKind classifies a system state variable by how it is produced,
// which determines where an indirect control path continues (thesis §4.2,
// Figure 4.4).
type VariableKind int

// Variable kinds.
const (
	// VarSensed is produced by a sensor observing the physical system
	// (e.g. ElevatorSpeed, DoorClosed, VehicleAcceleration).
	VarSensed VariableKind = iota + 1
	// VarActuated is a physical quantity changed by an actuator after an
	// actuation delay (e.g. DriveSpeed, door position).
	VarActuated
	// VarCommand is an actuation signal or set point produced by a
	// software agent (e.g. DriveCommand, AccelerationCommand).
	VarCommand
	// VarShared is a shared variable or network message between software
	// agents (e.g. DispatchRequest, AccelerationRequest).
	VarShared
	// VarEnvironmental is controlled by an environmental agent outside the
	// design (e.g. ThrottlePedal, DoorBlocked).
	VarEnvironmental
)

// String names the variable kind.
func (k VariableKind) String() string {
	switch k {
	case VarSensed:
		return "sensed"
	case VarActuated:
		return "actuated"
	case VarCommand:
		return "command"
	case VarShared:
		return "shared"
	case VarEnvironmental:
		return "environmental"
	default:
		return "unknown"
	}
}

// Variable is a named system state variable with its kind and description.
type Variable struct {
	// Name is the variable name as used in goal formulas.
	Name string
	// Kind classifies how the variable is produced.
	Kind VariableKind
	// Description is free text shown in ICPA tables.
	Description string
}

// SystemModel is the functional decomposition an ICPA runs against: the
// agents (subsystems, actuators, sensors, environmental agents), the state
// variables they monitor and control, and the formally defined
// indirect-control relationships among those variables.
type SystemModel struct {
	// Name identifies the modelled system.
	Name string

	agents     map[string]goals.Agent
	agentOrder []string
	vars       map[string]Variable
	varOrder   []string
}

// NewSystemModel returns an empty system model.
func NewSystemModel(name string) *SystemModel {
	return &SystemModel{
		Name:   name,
		agents: make(map[string]goals.Agent),
		vars:   make(map[string]Variable),
	}
}

// AddAgent registers an agent (replacing any previous agent with the same
// name) and implicitly registers its variables if they are unknown.
func (m *SystemModel) AddAgent(a goals.Agent) {
	if _, ok := m.agents[a.Name]; !ok {
		m.agentOrder = append(m.agentOrder, a.Name)
	}
	m.agents[a.Name] = a
	for _, v := range a.Controls {
		m.ensureVariable(v, defaultKindFor(a.Kind))
	}
	for _, v := range a.Monitors {
		m.ensureVariable(v, VarShared)
	}
}

func defaultKindFor(k goals.AgentKind) VariableKind {
	switch k {
	case goals.KindSensor:
		return VarSensed
	case goals.KindActuator:
		return VarActuated
	case goals.KindEnvironment:
		return VarEnvironmental
	default:
		return VarCommand
	}
}

func (m *SystemModel) ensureVariable(name string, kind VariableKind) {
	if _, ok := m.vars[name]; ok {
		return
	}
	m.vars[name] = Variable{Name: name, Kind: kind}
	m.varOrder = append(m.varOrder, name)
}

// AddVariable registers (or refines) a variable's kind and description.
func (m *SystemModel) AddVariable(v Variable) {
	if _, ok := m.vars[v.Name]; !ok {
		m.varOrder = append(m.varOrder, v.Name)
	}
	m.vars[v.Name] = v
}

// Agent returns the named agent.
func (m *SystemModel) Agent(name string) (goals.Agent, bool) {
	a, ok := m.agents[name]
	return a, ok
}

// Agents returns all agents in registration order.
func (m *SystemModel) Agents() []goals.Agent {
	out := make([]goals.Agent, 0, len(m.agentOrder))
	for _, n := range m.agentOrder {
		out = append(out, m.agents[n])
	}
	return out
}

// Variable returns metadata for a variable.
func (m *SystemModel) Variable(name string) (Variable, bool) {
	v, ok := m.vars[name]
	return v, ok
}

// Variables returns all known variables in registration order.
func (m *SystemModel) Variables() []Variable {
	out := make([]Variable, 0, len(m.varOrder))
	for _, n := range m.varOrder {
		out = append(out, m.vars[n])
	}
	return out
}

// DirectControllers returns the agents that directly control the variable.
// Unlike strict KAOS controllability, more than one agent may directly
// control a variable (thesis §4.2): e.g. every hall-button controller sends
// the same hall-call message type.
func (m *SystemModel) DirectControllers(variable string) []goals.Agent {
	var out []goals.Agent
	for _, n := range m.agentOrder {
		a := m.agents[n]
		if a.CanControl(variable) {
			out = append(out, a)
		}
	}
	return out
}

// Observers returns the agents that monitor the variable.
func (m *SystemModel) Observers(variable string) []goals.Agent {
	var out []goals.Agent
	for _, n := range m.agentOrder {
		a := m.agents[n]
		if a.CanMonitor(variable) {
			out = append(out, a)
		}
	}
	return out
}

// ControlSource is one stop along an indirect control path: an agent that
// influences the root variable, the level of indirection at which it was
// found (1 = nearest the root variable) and the on-path variables it
// directly controls.
type ControlSource struct {
	// Agent is the influencing agent's name.
	Agent string
	// Kind is the agent's kind.
	Kind goals.AgentKind
	// Level is the indirection distance from the root variable (1 is the
	// direct/nearest control source).
	Level int
	// Controls lists the on-path variables this agent directly controls.
	Controls []string
	// Inputs lists the variables this agent monitors, i.e. where the path
	// continues outward.
	Inputs []string
}

// ControlPath is the indirect control path of one goal variable: every
// agent that directly or indirectly influences it, by level.
type ControlPath struct {
	// Variable is the root state variable from the system safety goal.
	Variable string
	// Sources are the agents along the path, ordered by level then name.
	Sources []ControlSource
}

// SourcesAtLevel returns the path's control sources at the given level.
func (p ControlPath) SourcesAtLevel(level int) []ControlSource {
	var out []ControlSource
	for _, s := range p.Sources {
		if s.Level == level {
			out = append(out, s)
		}
	}
	return out
}

// MaxLevel returns the deepest indirection level on the path (0 when empty).
func (p ControlPath) MaxLevel() int {
	max := 0
	for _, s := range p.Sources {
		if s.Level > max {
			max = s.Level
		}
	}
	return max
}

// AgentNames returns the names of all agents on the path, sorted.
func (p ControlPath) AgentNames() []string {
	out := make([]string, 0, len(p.Sources))
	for _, s := range p.Sources {
		out = append(out, s.Agent)
	}
	sort.Strings(out)
	return out
}

// String renders the path compactly.
func (p ControlPath) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", p.Variable)
	for _, s := range p.Sources {
		fmt.Fprintf(&b, " [L%d %s -> %s]", s.Level, s.Agent, strings.Join(s.Controls, ","))
	}
	return b.String()
}

// IndirectControlPath traces the indirect control path of one variable
// (ICPA step 2, thesis §4.4.1): the direct controllers of the variable form
// level 1; the controllers of those agents' monitored variables form level
// 2; and so on outward, up to maxDepth levels (0 means unlimited).  Cycles
// are cut by visiting each agent at most once, at its shallowest level.
func (m *SystemModel) IndirectControlPath(variable string, maxDepth int) ControlPath {
	path := ControlPath{Variable: variable}
	visitedAgents := make(map[string]bool)
	frontier := map[string]bool{variable: true}
	level := 0

	for len(frontier) > 0 {
		level++
		if maxDepth > 0 && level > maxDepth {
			break
		}
		// Collect agents controlling any frontier variable.
		type hit struct {
			agent    goals.Agent
			controls map[string]bool
		}
		hits := make(map[string]*hit)
		for _, name := range m.agentOrder {
			a := m.agents[name]
			if visitedAgents[name] {
				continue
			}
			for v := range frontier {
				if a.CanControl(v) {
					h, ok := hits[name]
					if !ok {
						h = &hit{agent: a, controls: make(map[string]bool)}
						hits[name] = h
					}
					h.controls[v] = true
				}
			}
		}
		if len(hits) == 0 {
			break
		}
		names := make([]string, 0, len(hits))
		for n := range hits {
			names = append(names, n)
		}
		sort.Strings(names)

		next := make(map[string]bool)
		for _, n := range names {
			h := hits[n]
			visitedAgents[n] = true
			controls := make([]string, 0, len(h.controls))
			for v := range h.controls {
				controls = append(controls, v)
			}
			sort.Strings(controls)
			src := ControlSource{
				Agent:    n,
				Kind:     h.agent.Kind,
				Level:    level,
				Controls: controls,
				Inputs:   append([]string(nil), h.agent.Monitors...),
			}
			path.Sources = append(path.Sources, src)
			for _, v := range h.agent.Monitors {
				next[v] = true
			}
		}
		frontier = next
	}
	return path
}

// IndirectControlPaths traces the indirect control paths of every state
// variable referenced by the goal's formal definition.
func (m *SystemModel) IndirectControlPaths(g goals.Goal, maxDepth int) []ControlPath {
	var out []ControlPath
	for _, v := range g.Vars() {
		out = append(out, m.IndirectControlPath(v, maxDepth))
	}
	return out
}

// InfluencingAgents returns the names of every agent that directly or
// indirectly influences any variable of the goal, sorted.
func (m *SystemModel) InfluencingAgents(g goals.Goal, maxDepth int) []string {
	seen := make(map[string]struct{})
	for _, p := range m.IndirectControlPaths(g, maxDepth) {
		for _, s := range p.Sources {
			seen[s.Agent] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ControlRelationship is one numbered, formally defined indirect control
// relationship recorded during ICPA step 3 (thesis §4.4.2).  Relationships
// become critical assumptions of the decomposition when referenced by the
// goal elaboration.
type ControlRelationship struct {
	// ID is the relationship number used to reference it from the goal
	// elaboration section of the ICPA table.
	ID int
	// Variable is the parent-goal variable whose path this relationship
	// belongs to.
	Variable string
	// Subsystems are the agents whose variables the relationship relates.
	Subsystems []string
	// Formula is the formal definition of the relationship.
	Formula temporal.Formula
	// Comment is the natural-language reading shown in the ICPA table.
	Comment string
}

// String renders the relationship as an ICPA table row.
func (r ControlRelationship) String() string {
	return fmt.Sprintf("%02d  %s\n    %% %s", r.ID, r.Formula, r.Comment)
}
