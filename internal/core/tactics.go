package core

import (
	"fmt"
	"time"

	"repro/internal/goals"
	"repro/internal/temporal"
)

// TacticResult is the outcome of applying an elaboration tactic: the derived
// subgoals and, where applicable, the domain property (critical assumption)
// the derivation relies on.
type TacticResult struct {
	// Tactic identifies the applied tactic.
	Tactic Tactic
	// Subgoals are the derived subgoals.
	Subgoals []goals.Goal
	// Assumption is the domain property the derivation relies on, nil when
	// none is needed.
	Assumption temporal.Formula
	// Restrictive reports whether the derived subgoals restrict behaviour
	// beyond the parent goal.
	Restrictive bool
}

// SplitByChaining applies the split-lack-of-monitorability/controllability
// by chaining tactic (thesis Figure 4.2) to a goal of the form P ⇒ Q: given
// an intermediate condition M, it produces the subgoals P ⇒ M and M ⇒ Q,
// each potentially realizable by a different agent.
func SplitByChaining(parent goals.Goal, middle temporal.Formula) (TacticResult, error) {
	ant, con := temporal.Antecedent(parent.Formal), temporal.Consequent(parent.Formal)
	if ant == nil || con == nil {
		return TacticResult{}, fmt.Errorf("core: split by chaining requires an implication goal, got %q", parent.Formal)
	}
	return TacticResult{
		Tactic: TacticSplitByChaining,
		Subgoals: []goals.Goal{
			{
				Name:        parent.Name + "/chain-1",
				InformalDef: "First link of the chained decomposition of " + parent.Name + ".",
				Formal:      temporal.Implies(ant, middle),
			},
			{
				Name:        parent.Name + "/chain-2",
				InformalDef: "Second link of the chained decomposition of " + parent.Name + ".",
				Formal:      temporal.Implies(middle, con),
			},
		},
	}, nil
}

// SplitByCase applies the split-by-case tactic (thesis Figure 4.3) to a goal
// P ⇒ Q: each case predicate f_i yields the subgoal (P ∧ f_i) ⇒ Q, and the
// case-coverage condition P ⇒ (f_1 ∨ … ∨ f_n) is returned as the critical
// assumption that the cases are exhaustive.
func SplitByCase(parent goals.Goal, cases []temporal.Formula) (TacticResult, error) {
	ant, con := temporal.Antecedent(parent.Formal), temporal.Consequent(parent.Formal)
	if ant == nil || con == nil {
		return TacticResult{}, fmt.Errorf("core: split by case requires an implication goal, got %q", parent.Formal)
	}
	if len(cases) == 0 {
		return TacticResult{}, fmt.Errorf("core: split by case requires at least one case")
	}
	res := TacticResult{Tactic: TacticSplitByCase}
	for i, c := range cases {
		res.Subgoals = append(res.Subgoals, goals.Goal{
			Name:        fmt.Sprintf("%s/case-%d", parent.Name, i+1),
			InformalDef: fmt.Sprintf("Case %d of the case split of %s.", i+1, parent.Name),
			Formal:      temporal.Implies(temporal.And(ant, c), con),
		})
	}
	res.Assumption = temporal.Implies(ant, temporal.Or(cases...))
	return res, nil
}

// IntroduceActuationGoal applies the introduce-accuracy/actuation-goal
// tactic (thesis Figure 4.1): the uncontrollable (or unmonitorable) variable
// `original` in the parent goal is related to a controllable/observable
// variable `replacement` by an equivalence domain property, and the parent
// goal is restated over the replacement variable.  The rewritten goal is
// supplied by the caller because substitution depends on the goal's
// structure; the tactic packages the pair with the equivalence assumption.
func IntroduceActuationGoal(parent, rewritten goals.Goal, equivalence temporal.Formula, accuracy bool) TacticResult {
	tactic := TacticIntroduceActuation
	if accuracy {
		tactic = TacticIntroduceAccuracy
	}
	return TacticResult{
		Tactic:     tactic,
		Subgoals:   []goals.Goal{rewritten},
		Assumption: equivalence,
	}
}

// InterlockSubgoals generates the coordinated-responsibility interlock
// pattern of thesis Eqs. 4.14–4.15 for a safety goal of the form q(A ∨ B)
// where A is indirectly controlled by agent agA and B by agent agB: each
// agent may only negate its own condition when, in the previous state, its
// interlock variable was set and the other agent's interlock variable was
// not.
//
// The returned subgoals constrain the agents' conditions A and B using the
// interlock variables lockA and lockB.
func InterlockSubgoals(parentName string, condA, condB, lockA, lockB string) TacticResult {
	a := temporal.Var(condA)
	b := temporal.Var(condB)
	la := temporal.Var(lockA)
	lb := temporal.Var(lockB)
	return TacticResult{
		Tactic: TacticInterlock,
		Subgoals: []goals.Goal{
			{
				Name:        parentName + "/interlock-A",
				InformalDef: fmt.Sprintf("%s may be negated only when %s was set and %s was clear.", condA, lockA, lockB),
				Formal:      temporal.Implies(temporal.Prev(temporal.Or(temporal.Not(la), lb)), a),
			},
			{
				Name:        parentName + "/interlock-B",
				InformalDef: fmt.Sprintf("%s may be negated only when %s was set and %s was clear.", condB, lockB, lockA),
				Formal:      temporal.Implies(temporal.Prev(temporal.Or(temporal.Not(lb), la)), b),
			},
		},
		Restrictive: true,
	}
}

// LockoutSubgoals generates the lockout pattern of thesis Eqs. 4.27–4.30: a
// lockout agent agB is added so that the hazardous condition C requires both
// A (the primary agent's command) and B (the lockout permission); both
// agents receive the subgoal of dropping their output within the reaction
// window after the triggering condition D is observed.
func LockoutSubgoals(parentName string, trigger, condA, condB string, window time.Duration) TacticResult {
	d := temporal.Var(trigger)
	return TacticResult{
		Tactic: TacticLockout,
		Subgoals: []goals.Goal{
			{
				Name:        parentName + "/lockout-primary",
				InformalDef: fmt.Sprintf("If %s was observed within the reaction window, %s shall be withdrawn.", trigger, condA),
				Formal:      temporal.Implies(temporal.PrevWithin(d, window), temporal.Not(temporal.Var(condA))),
			},
			{
				Name:        parentName + "/lockout-guard",
				InformalDef: fmt.Sprintf("If %s was observed within the reaction window, the lockout %s shall be withdrawn.", trigger, condB),
				Formal:      temporal.Implies(temporal.PrevWithin(d, window), temporal.Not(temporal.Var(condB))),
			},
		},
		// The shared indirect control relationship: C requires both A and B.
		Assumption: temporal.Iff(
			//lint:slotbindok synthesized per-goal condition variable, namespaced under C:, not a bus signal
			temporal.Var("C:"+parentName),
			temporal.And(temporal.Prev(temporal.Var(condA)), temporal.Prev(temporal.Var(condB))),
		),
		Restrictive: true,
	}
}

// SafetyMargin applies the safety-margin restriction (thesis Eq. 4.31): a
// goal of the form q(v ≤ limit) is met by the subgoal q(req ≤ limit −
// margin) on the requesting variable.  It returns false when the goal is not
// a recognisable threshold goal.
func SafetyMargin(parent goals.Goal, requestVar string, margin float64) (TacticResult, bool) {
	sub, ok := SafetyEnvelope(parent, requestVar, margin)
	if !ok {
		return TacticResult{}, false
	}
	return TacticResult{
		Tactic:      TacticSafetyMargin,
		Subgoals:    []goals.Goal{sub},
		Restrictive: margin > 0,
	}, true
}

// ORReduction applies OR-reduction (thesis §3.3.5, §4.5.2) keeping only the
// sub-formulas for which keep returns true, producing a single more
// restrictive subgoal.  It returns false when no reduction applies.
func ORReduction(parent goals.Goal, keep func(temporal.Formula) bool) (TacticResult, bool) {
	sub, ok := ORReduceGoal(parent, keep)
	if !ok {
		return TacticResult{}, false
	}
	return TacticResult{
		Tactic:      TacticORReduction,
		Subgoals:    []goals.Goal{sub},
		Restrictive: true,
	}, true
}
