package core

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/goals"
	"repro/internal/temporal"
)

func mustGoal(name, formal string) goals.Goal {
	return goals.MustParse(name, "", formal)
}

func TestComposabilityStrings(t *testing.T) {
	for c, want := range map[Composability]string{
		Emergent:                          "emergent",
		PartiallyComposable:               "emergent but partially composable",
		PartiallyComposableWithRedundancy: "emergent but partially composable with redundancy",
		FullyComposable:                   "fully composable",
		FullyComposableWithRedundancy:     "fully composable with redundancy",
		Composability(0):                  "unknown",
	} {
		if got := c.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

// TestComposabilityClasses reproduces the classification structure of
// Figures 3.3-3.6 on the thesis' ObjectInPath => StopVehicle example.
func TestComposabilityClasses(t *testing.T) {
	parent := mustGoal("G", "ObjectInPath => StopVehicle")

	t.Run("fully composable (Fig 3.3, Eq 3.5-3.6)", func(t *testing.T) {
		// Subgoals: ObjectInPath <=> CA.StopVehicle and CA.StopVehicle => StopVehicle.
		// Exactness (Eq 3.1) additionally needs the domain properties that
		// the vehicle stops only via CA and CA stops only in reaction to an
		// object — the "other and-reductions are prohibited" clause of §3.2.1.
		d := Decomposition{
			Parent: parent,
			Reductions: [][]goals.Goal{{
				mustGoal("G1", "ObjectInPath <=> CAStop"),
				mustGoal("G2", "CAStop => StopVehicle"),
			}},
			Assumptions: []temporal.Formula{
				temporal.MustParse("StopVehicle => CAStop"),
				temporal.MustParse("CAStop => ObjectInPath"),
			},
		}
		space := goals.BooleanStateSpace("ObjectInPath", "CAStop", "StopVehicle")
		res := Classify(d, space)
		if res.Class != FullyComposable {
			t.Fatalf("Class = %v (%s)", res.Class, res)
		}
		if !res.SubgoalsSufficient || !res.SubgoalsNecessary {
			t.Errorf("expected sufficient and necessary, got %s", res)
		}
	})

	t.Run("fully composable with redundancy (Fig 3.4, Eq 3.12-3.13)", func(t *testing.T) {
		d := Decomposition{
			Parent: parent,
			Reductions: [][]goals.Goal{
				{
					mustGoal("G1a", "ObjectInPath => CAStop"),
					mustGoal("G1b", "CAStop => StopVehicle"),
				},
				{
					mustGoal("G2a", "ObjectInPath => ACCStop"),
					mustGoal("G2b", "ACCStop => StopVehicle"),
				},
			},
			Assumptions: []temporal.Formula{
				temporal.MustParse("StopVehicle => (CAStop | ACCStop)"),
				temporal.MustParse("CAStop => ObjectInPath"),
				temporal.MustParse("ACCStop => ObjectInPath"),
			},
		}
		space := goals.BooleanStateSpace("ObjectInPath", "CAStop", "ACCStop", "StopVehicle")
		res := Classify(d, space)
		if res.Class != FullyComposableWithRedundancy {
			t.Fatalf("Class = %v (%s)", res.Class, res)
		}
	})

	t.Run("emergent but partially composable (Fig 3.5, Eq 3.17-3.20)", func(t *testing.T) {
		// Only detected objects are handled; undetected objects are the
		// hidden goal X, so the subgoals are necessary but not sufficient.
		d := Decomposition{
			Parent: parent,
			Reductions: [][]goals.Goal{{
				mustGoal("G1", "Detected => StopVehicle"),
			}},
			Assumptions: []temporal.Formula{
				// Stopping happens only in reaction to a detection, and a
				// detection only occurs when an object is in the path, so a
				// subgoal violation always implies a parent violation.
				temporal.MustParse("Detected => ObjectInPath"),
				temporal.MustParse("StopVehicle => Detected"),
			},
		}
		space := goals.BooleanStateSpace("ObjectInPath", "Detected", "StopVehicle")
		res := Classify(d, space)
		if res.Class != PartiallyComposable {
			t.Fatalf("Class = %v (%s)", res.Class, res)
		}
		if res.DemonState == nil {
			t.Error("expected a demon state witnessing the hidden goal X")
		}
	})

	t.Run("partially composable with redundancy: angelic emergence (Eq 3.31)", func(t *testing.T) {
		// The defined reduction is sufficient, but the vehicle may also be
		// stopped by unknown behaviour Y, so it is not necessary.
		d := Decomposition{
			Parent: parent,
			Reductions: [][]goals.Goal{{
				mustGoal("G1", "ObjectInPath => CAStop"),
				mustGoal("G2", "CAStop => StopVehicle"),
			}},
		}
		space := goals.BooleanStateSpace("ObjectInPath", "CAStop", "StopVehicle")
		res := Classify(d, space)
		if res.Class != PartiallyComposableWithRedundancy {
			t.Fatalf("Class = %v (%s)", res.Class, res)
		}
		if res.AngelState == nil {
			t.Error("expected an angel state witnessing emergent behaviour Y")
		}
	})

	t.Run("emergent", func(t *testing.T) {
		d := Decomposition{
			Parent: parent,
			Reductions: [][]goals.Goal{{
				mustGoal("G1", "Unrelated => AlsoUnrelated"),
			}},
		}
		space := goals.BooleanStateSpace("ObjectInPath", "StopVehicle", "Unrelated", "AlsoUnrelated")
		res := Classify(d, space)
		if res.Class != Emergent {
			t.Fatalf("Class = %v (%s)", res.Class, res)
		}
	})
}

func TestClassifyDegenerateInputs(t *testing.T) {
	parent := mustGoal("G", "A => B")
	if got := Classify(Decomposition{Parent: parent}, goals.BooleanStateSpace("A", "B")); got.Class != Emergent {
		t.Errorf("no reductions should classify as emergent, got %v", got.Class)
	}
	d := Decomposition{Parent: parent, Reductions: [][]goals.Goal{{mustGoal("G1", "B")}}}
	if got := Classify(d, nil); got.Class != Emergent {
		t.Errorf("empty state space should classify as emergent, got %v", got.Class)
	}
}

func TestClassifyNilParentFormula(t *testing.T) {
	d := Decomposition{
		Parent:     goals.Goal{Name: "G"},
		Reductions: [][]goals.Goal{{mustGoal("G1", "A")}},
	}
	res := Classify(d, goals.BooleanStateSpace("A"))
	// A nil parent formula is treated as vacuously true, so the subgoals are
	// sufficient but not necessary.
	if !res.SubgoalsSufficient {
		t.Error("nil parent formula should be treated as vacuously true")
	}
}

func TestDecompositionSubgoals(t *testing.T) {
	d := Decomposition{
		Reductions: [][]goals.Goal{
			{mustGoal("A", "A"), mustGoal("B", "B")},
			{mustGoal("C", "C")},
		},
	}
	if got := len(d.Subgoals()); got != 3 {
		t.Errorf("Subgoals() len = %d, want 3", got)
	}
}

func TestClassificationResultString(t *testing.T) {
	r := ClassificationResult{Class: FullyComposable, SubgoalsSufficient: true, SubgoalsNecessary: true}
	if !strings.Contains(r.String(), "fully composable") {
		t.Errorf("String() = %q", r.String())
	}
}

func TestSplitConjunctiveGoal(t *testing.T) {
	t.Run("conjunction body", func(t *testing.T) {
		g := mustGoal("G", "A & X")
		subs, ok := SplitConjunctiveGoal(g)
		if !ok || len(subs) != 2 {
			t.Fatalf("split failed: ok=%v len=%d", ok, len(subs))
		}
		if subs[0].Formal.String() != "A" || subs[1].Formal.String() != "X" {
			t.Errorf("unexpected split: %v / %v", subs[0].Formal, subs[1].Formal)
		}
	})
	t.Run("disjunctive antecedent (Eq 3.35-3.38)", func(t *testing.T) {
		g := mustGoal("G", "(InPathDetected | InPathNotDetected) => StopVehicle")
		subs, ok := SplitConjunctiveGoal(g)
		if !ok || len(subs) != 2 {
			t.Fatalf("split failed: ok=%v len=%d", ok, len(subs))
		}
		// Each case subgoal entails nothing alone, but their conjunction is
		// equivalent to the parent.
		space := goals.BooleanStateSpace("InPathDetected", "InPathNotDetected", "StopVehicle")
		d := Decomposition{Parent: g, Reductions: [][]goals.Goal{subs}}
		if res := Classify(d, space); res.Class != FullyComposable {
			t.Errorf("case split should be fully composable, got %s", res)
		}
	})
	t.Run("not splittable", func(t *testing.T) {
		if _, ok := SplitConjunctiveGoal(mustGoal("G", "A => B")); ok {
			t.Error("simple implication should not split")
		}
		if _, ok := SplitConjunctiveGoal(mustGoal("G", "A | B")); ok {
			t.Error("disjunction body should not split conjunctively")
		}
		if _, ok := SplitConjunctiveGoal(goals.Goal{}); ok {
			t.Error("nil formula should not split")
		}
	})
}

func TestORReduceGoal(t *testing.T) {
	keepVar := func(name string) func(temporal.Formula) bool {
		return func(f temporal.Formula) bool { return f.String() == name }
	}

	t.Run("disjunction body (Eq 3.42-3.43)", func(t *testing.T) {
		g := mustGoal("G", "A | X")
		sub, ok := ORReduceGoal(g, keepVar("A"))
		if !ok {
			t.Fatal("OR-reduction should apply")
		}
		if sub.Formal.String() != "A" {
			t.Errorf("reduced formula = %q", sub.Formal)
		}
		// The reduction is more restrictive: it entails the parent.
		for _, s := range goals.BooleanStateSpace("A", "X") {
			tr := temporal.NewTrace(0)
			tr.Append(s)
			if sub.Formal.Eval(tr, 0) && !g.Formal.Eval(tr, 0) {
				t.Error("OR-reduced goal must entail the parent goal")
			}
		}
	})
	t.Run("conjunctive antecedent (Eq 3.44-3.46)", func(t *testing.T) {
		g := mustGoal("G", "(A & X) => B")
		sub, ok := ORReduceGoal(g, keepVar("A"))
		if !ok {
			t.Fatal("OR-reduction should apply")
		}
		if sub.Formal.String() != "(A) => (B)" {
			t.Errorf("reduced formula = %q", sub.Formal)
		}
	})
	t.Run("no reduction", func(t *testing.T) {
		if _, ok := ORReduceGoal(mustGoal("G", "A => B"), keepVar("A")); ok {
			t.Error("simple implication should not OR-reduce")
		}
		if _, ok := ORReduceGoal(mustGoal("G", "A & B"), keepVar("A")); ok {
			t.Error("conjunction body should not OR-reduce")
		}
		if _, ok := ORReduceGoal(goals.Goal{}, keepVar("A")); ok {
			t.Error("nil formula should not OR-reduce")
		}
		// Keeping everything is not a reduction.
		if _, ok := ORReduceGoal(mustGoal("G", "A | B"), func(temporal.Formula) bool { return true }); ok {
			t.Error("keeping all disjuncts is not a reduction")
		}
		// Keeping nothing is not allowed either.
		if _, ok := ORReduceGoal(mustGoal("G", "A | B"), func(temporal.Formula) bool { return false }); ok {
			t.Error("dropping all disjuncts is not a reduction")
		}
	})
}

func TestSafetyEnvelope(t *testing.T) {
	g := mustGoal("Achieve[AutoAccelBelowThreshold]", "VehicleAcceleration <= 2")
	sub, ok := SafetyEnvelope(g, "AccelerationRequest", 0.5)
	if !ok {
		t.Fatal("SafetyEnvelope should apply to a threshold goal")
	}
	if sub.Formal.String() != "AccelerationRequest <= 1.5" {
		t.Errorf("envelope formula = %q", sub.Formal)
	}

	// Works on the consequent of an implication too.
	g2 := mustGoal("G", "IsSubsystem => VehicleAcceleration < 2")
	sub2, ok := SafetyEnvelope(g2, "Request", 0.25)
	if !ok {
		t.Fatal("SafetyEnvelope should apply to the consequent threshold")
	}
	if sub2.Formal.String() != "Request < 1.75" {
		t.Errorf("envelope formula = %q", sub2.Formal)
	}

	// Not a threshold goal.
	if _, ok := SafetyEnvelope(mustGoal("G", "A | B"), "x", 1); ok {
		t.Error("non-threshold goal should not produce an envelope")
	}
	if _, ok := SafetyEnvelope(goals.Goal{}, "x", 1); ok {
		t.Error("nil formula should not produce an envelope")
	}
}

func TestPropORReductionEntailsParent(t *testing.T) {
	// Any OR-reduction of q(A ∨ B ∨ C) to a subset entails the original.
	f := func(keepA, keepB, keepC, a, b, c bool) bool {
		if !keepA && !keepB && !keepC {
			return true
		}
		g := mustGoal("G", "A | B | C")
		keepSet := map[string]bool{"A": keepA, "B": keepB, "C": keepC}
		sub, ok := ORReduceGoal(g, func(f temporal.Formula) bool { return keepSet[f.String()] })
		if !ok {
			return true // keeping everything: nothing to check
		}
		s := temporal.NewState().SetBool("A", a).SetBool("B", b).SetBool("C", c)
		tr := temporal.NewTrace(0)
		tr.Append(s)
		if sub.Formal.Eval(tr, 0) && !g.Formal.Eval(tr, 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropSafetyEnvelopeMonotone(t *testing.T) {
	// A larger envelope is never less restrictive: if the enveloped goal
	// holds with margin m2 >= m1, it holds with margin m1.
	f := func(x float64, m1, m2 uint8) bool {
		g := mustGoal("G", "v <= 2")
		lo, hi := float64(m1%10)/10, float64(m2%10)/10
		if lo > hi {
			lo, hi = hi, lo
		}
		subLo, ok1 := SafetyEnvelope(g, "req", lo)
		subHi, ok2 := SafetyEnvelope(g, "req", hi)
		if !ok1 || !ok2 {
			return false
		}
		s := temporal.NewState().SetNumber("req", x)
		tr := temporal.NewTrace(0)
		tr.Append(s)
		// Satisfying the tighter (hi) envelope implies satisfying the looser (lo).
		if subHi.Formal.Eval(tr, 0) && !subLo.Formal.Eval(tr, 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
