package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/goals"
	"repro/internal/temporal"
)

// GoalAssignment is the goal-assignment dimension of a goal coverage
// strategy (thesis §4.5.1).
type GoalAssignment int

// Goal assignments.
const (
	// SingleResponsibility assigns the safety goal to one agent.
	SingleResponsibility GoalAssignment = iota + 1
	// RedundantResponsibility assigns primary responsibility to one group
	// of agents and secondary responsibility to another; satisfying either
	// satisfies the parent goal.
	RedundantResponsibility
	// SharedResponsibility requires coordinated subgoals of two or more
	// agents to be met together to satisfy the parent goal.
	SharedResponsibility
)

// String names the goal assignment.
func (a GoalAssignment) String() string {
	switch a {
	case SingleResponsibility:
		return "Single Responsibility"
	case RedundantResponsibility:
		return "Redundant Responsibility"
	case SharedResponsibility:
		return "Shared Responsibility"
	default:
		return "Unassigned"
	}
}

// GoalScope is the goal-scope dimension of a goal coverage strategy (thesis
// §4.5.2).
type GoalScope int

// Goal scopes.
const (
	// Nonrestrictive subgoals meet the parent goal with no additional
	// limitation on functional behaviour.
	Nonrestrictive GoalScope = iota + 1
	// Restrictive subgoals meet the parent goal but prohibit some
	// behaviour the parent goal would allow (safety margins, OR-reduction,
	// worst-case actuation delays).
	Restrictive
)

// String names the goal scope.
func (s GoalScope) String() string {
	switch s {
	case Nonrestrictive:
		return "Nonrestrictive"
	case Restrictive:
		return "Restrictive"
	default:
		return "Unspecified"
	}
}

// CoverageStrategy is a plan for allocating subgoals to ensure a high-level
// goal is met: a goal assignment plus a goal scope (thesis §4.5).
type CoverageStrategy struct {
	// Assignment is the goal-assignment dimension.
	Assignment GoalAssignment
	// Scope is the goal-scope dimension.
	Scope GoalScope
	// Responsible lists the agents given (primary) responsibility.
	Responsible []string
	// Secondary lists agents with secondary (redundant) responsibility.
	Secondary []string
	// Note documents why the strategy was chosen (e.g. "assumes worst-case
	// actuator response times").
	Note string
}

// String renders the coverage strategy for the ICPA table.
func (c CoverageStrategy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Goal Assignment: %s", c.Assignment)
	if len(c.Responsible) > 0 {
		fmt.Fprintf(&b, " (%s", strings.Join(c.Responsible, " & "))
		if len(c.Secondary) > 0 {
			fmt.Fprintf(&b, "; secondary: %s", strings.Join(c.Secondary, " & "))
		}
		fmt.Fprintf(&b, ")")
	}
	fmt.Fprintf(&b, "\nGoal Scope: %s", c.Scope)
	if c.Note != "" {
		fmt.Fprintf(&b, " (%s)", c.Note)
	}
	return b.String()
}

// Tactic identifies a goal elaboration or realizability tactic (thesis
// §4.1.2, §4.5.1, §4.5.2).
type Tactic int

// Tactics.
const (
	// TacticNone marks an elaboration step that records reasoning without
	// a named tactic.
	TacticNone Tactic = iota
	// TacticIntroduceActuation introduces an actuation goal on a variable
	// or predicate (Letier & van Lamsweerde, Figure 4.1).
	TacticIntroduceActuation
	// TacticIntroduceAccuracy introduces an accuracy (sensing) goal.
	TacticIntroduceAccuracy
	// TacticSplitByChaining splits lack of monitorability/controllability
	// by chaining through an intermediate variable (Figure 4.2).
	TacticSplitByChaining
	// TacticSplitByCase splits by case (Figure 4.3).
	TacticSplitByCase
	// TacticInterlock coordinates agents with interlock variables
	// (Eqs. 4.14–4.23).
	TacticInterlock
	// TacticLockout adds a lockout agent that prevents an action
	// (Eqs. 4.27–4.30).
	TacticLockout
	// TacticSafetyMargin restricts a threshold by a safety margin
	// (Eq. 4.31).
	TacticSafetyMargin
	// TacticORReduction applies OR-reduction to a disjunctive goal
	// (§3.3.5, §4.5.2).
	TacticORReduction
	// TacticInitialState discharges the initial-state case from the
	// specified initial conditions.
	TacticInitialState
)

// String names the tactic.
func (t Tactic) String() string {
	switch t {
	case TacticIntroduceActuation:
		return "Introduce actuation goal"
	case TacticIntroduceAccuracy:
		return "Introduce accuracy goal"
	case TacticSplitByChaining:
		return "Split lack of monitorability/controllability by chaining"
	case TacticSplitByCase:
		return "Split lack of monitorability/controllability by case"
	case TacticInterlock:
		return "Interlock"
	case TacticLockout:
		return "Lockout"
	case TacticSafetyMargin:
		return "Safety margin"
	case TacticORReduction:
		return "OR-reduction"
	case TacticInitialState:
		return "Initial state"
	default:
		return "(none)"
	}
}

// ElaborationStep is one row of the goal-elaboration section of an ICPA
// table: a derived formula or argument, the tactic used, and the numbered
// indirect-control relationships it relies on (the critical assumptions).
type ElaborationStep struct {
	// Derivation is the derived expression or argument, rendered as text.
	Derivation string
	// Tactic is the named tactic applied at this step.
	Tactic Tactic
	// UsesRelationships lists the IDs of indirect-control relationships
	// relied on; they become critical assumptions of the decomposition.
	UsesRelationships []int
	// Note is a free-text comment shown next to the step.
	Note string
}

// SubsystemGoal is a subsystem safety subgoal produced by ICPA, together
// with the capability and monitoring information the thesis records for it.
type SubsystemGoal struct {
	// Subsystem is the agent the subgoal is assigned to.
	Subsystem string
	// Goal is the subgoal itself.
	Goal goals.Goal
	// Controls lists the variables the subsystem controls to meet the
	// subgoal.
	Controls []string
	// Observes lists the variables the subsystem observes to meet the
	// subgoal.
	Observes []string
	// MonitorAt names the hierarchy level at which the subgoal is
	// monitored at run time (Table 5.3); empty means the subsystem itself.
	MonitorAt string
	// Redundant marks subgoals that provide redundant (secondary)
	// coverage of the parent goal.
	Redundant bool
	// Restrictive marks subgoals that are more restrictive than the
	// parent goal.
	Restrictive bool
}

// Analysis is one Indirect Control Path Analysis: the parent system safety
// goal, the traced indirect control paths, the numbered indirect-control
// relationships, the chosen goal coverage strategy, the goal elaboration and
// the resulting subsystem subgoals (thesis Figure 4.7).
type Analysis struct {
	// Goal is the system safety goal under analysis.
	Goal goals.Goal
	// Model is the functional decomposition analysed.
	Model *SystemModel
	// Paths are the indirect control paths of the goal's variables.
	Paths []ControlPath
	// Relationships are the numbered indirect-control relationships.
	Relationships []ControlRelationship
	// Coverage is the chosen goal coverage strategy.
	Coverage CoverageStrategy
	// Elaboration is the recorded goal elaboration.
	Elaboration []ElaborationStep
	// Subgoals are the resulting subsystem safety subgoals.
	Subgoals []SubsystemGoal

	nextRelationshipID int
}

// NewAnalysis starts an ICPA for the goal against the system model
// (step 1 of Figure 1.2: the goal is already formally defined).
func NewAnalysis(g goals.Goal, model *SystemModel) *Analysis {
	return &Analysis{Goal: g, Model: model, nextRelationshipID: 1}
}

// TracePaths performs step 2: identify the direct and indirect control
// sources of every state variable in the parent goal, up to maxDepth levels
// of indirection (0 = unlimited).
func (a *Analysis) TracePaths(maxDepth int) []ControlPath {
	a.Paths = a.Model.IndirectControlPaths(a.Goal, maxDepth)
	return a.Paths
}

// AddRelationship performs step 3 for one relationship: record a formally
// defined indirect control relationship for the named parent-goal variable,
// returning its assigned ID.
func (a *Analysis) AddRelationship(variable string, subsystems []string, formula temporal.Formula, comment string) int {
	id := a.nextRelationshipID
	a.nextRelationshipID++
	a.Relationships = append(a.Relationships, ControlRelationship{
		ID:         id,
		Variable:   variable,
		Subsystems: append([]string(nil), subsystems...),
		Formula:    formula,
		Comment:    comment,
	})
	return id
}

// Relationship returns the relationship with the given ID.
func (a *Analysis) Relationship(id int) (ControlRelationship, bool) {
	for _, r := range a.Relationships {
		if r.ID == id {
			return r, true
		}
	}
	return ControlRelationship{}, false
}

// SetCoverage performs step 4: choose the goal coverage strategy.
func (a *Analysis) SetCoverage(c CoverageStrategy) { a.Coverage = c }

// AddElaboration performs step 5 for one step: record a derivation, the
// tactic applied and the relationship IDs it relies on.
func (a *Analysis) AddElaboration(derivation string, tactic Tactic, relationshipIDs []int, note string) {
	a.Elaboration = append(a.Elaboration, ElaborationStep{
		Derivation:        derivation,
		Tactic:            tactic,
		UsesRelationships: append([]int(nil), relationshipIDs...),
		Note:              note,
	})
}

// AddSubgoal performs step 6 for one subgoal: record a resulting subsystem
// safety subgoal.
func (a *Analysis) AddSubgoal(sg SubsystemGoal) { a.Subgoals = append(a.Subgoals, sg) }

// CriticalAssumptions returns the indirect control relationships referenced
// by the goal elaboration; together with the subgoals they form the
// decomposition of the parent goal.
func (a *Analysis) CriticalAssumptions() []ControlRelationship {
	used := make(map[int]bool)
	for _, e := range a.Elaboration {
		for _, id := range e.UsesRelationships {
			used[id] = true
		}
	}
	var out []ControlRelationship
	for _, r := range a.Relationships {
		if used[r.ID] {
			out = append(out, r)
		}
	}
	return out
}

// SubgoalsFor returns the subgoals assigned to the named subsystem.
func (a *Analysis) SubgoalsFor(subsystem string) []SubsystemGoal {
	var out []SubsystemGoal
	for _, sg := range a.Subgoals {
		if sg.Subsystem == subsystem {
			out = append(out, sg)
		}
	}
	return out
}

// AssignedSubsystems returns the sorted set of subsystems that received
// subgoals.
func (a *Analysis) AssignedSubsystems() []string {
	seen := make(map[string]struct{})
	for _, sg := range a.Subgoals {
		seen[sg.Subsystem] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Decomposition converts the analysis into a Chapter 3 decomposition: the
// subgoals grouped into reductions (primary and, when redundant
// responsibility is used, secondary), with the critical assumptions attached.
func (a *Analysis) Decomposition() Decomposition {
	var primary, secondary []goals.Goal
	for _, sg := range a.Subgoals {
		if sg.Redundant {
			secondary = append(secondary, sg.Goal)
		} else {
			primary = append(primary, sg.Goal)
		}
	}
	d := Decomposition{Parent: a.Goal}
	if len(primary) > 0 {
		d.Reductions = append(d.Reductions, primary)
	}
	if len(secondary) > 0 {
		d.Reductions = append(d.Reductions, secondary)
	}
	for _, r := range a.CriticalAssumptions() {
		if r.Formula != nil {
			d.Assumptions = append(d.Assumptions, r.Formula)
		}
	}
	return d
}

// Verify classifies the analysis' decomposition over a finite state space
// (exact for propositional goals): it reports whether the derived subgoals
// fully or partially compose the parent goal under the critical assumptions.
func (a *Analysis) Verify(space goals.StateSpace) ClassificationResult {
	return Classify(a.Decomposition(), space)
}

// CheckRealizability checks each derived subgoal against the capability sets
// of its assigned subsystem in the model, returning a map from subgoal name
// to the result.  Subgoals assigned to agents absent from the model are
// reported as unrealizable with a lack-of-control cause.
func (a *Analysis) CheckRealizability() map[string]goals.Realizability {
	out := make(map[string]goals.Realizability, len(a.Subgoals))
	for _, sg := range a.Subgoals {
		ag, ok := a.Model.Agent(sg.Subsystem)
		if !ok {
			out[sg.Goal.Name] = goals.Realizability{
				Causes:            []goals.UnrealizabilityCause{goals.CauseLackOfControl},
				MissingControlled: sg.Goal.ControlledVars(),
			}
			continue
		}
		g := sg.Goal
		if len(sg.Observes) > 0 || len(sg.Controls) > 0 {
			g = g.WithVars(sg.Observes, sg.Controls)
		}
		out[sg.Goal.Name] = goals.CheckRealizability(g, ag)
	}
	return out
}

// Render produces the plain-text ICPA table (thesis Figure 4.7 layout):
// system safety goal, indirect control paths with numbered relationships,
// goal coverage strategy, goal elaboration and resulting subgoals.
func (a *Analysis) Render() string {
	var b strings.Builder
	line := strings.Repeat("=", 78)
	thin := strings.Repeat("-", 78)

	fmt.Fprintln(&b, line)
	fmt.Fprintln(&b, "INDIRECT CONTROL PATH ANALYSIS")
	fmt.Fprintln(&b, line)
	fmt.Fprintln(&b, "System Safety Goal")
	fmt.Fprintln(&b, thin)
	fmt.Fprintln(&b, a.Goal.String())
	fmt.Fprintln(&b)

	fmt.Fprintln(&b, "Indirect Control Paths")
	fmt.Fprintln(&b, thin)
	for _, p := range a.Paths {
		fmt.Fprintf(&b, "Variable: %s\n", p.Variable)
		for _, s := range p.Sources {
			fmt.Fprintf(&b, "  L%d %-22s (%s) controls: %s\n",
				s.Level, s.Agent, s.Kind, strings.Join(s.Controls, ", "))
		}
	}
	fmt.Fprintln(&b)

	fmt.Fprintln(&b, "Indirect Control Relationships")
	fmt.Fprintln(&b, thin)
	for _, r := range a.Relationships {
		fmt.Fprintf(&b, "%02d [%s | %s]\n    %s\n    %% %s\n",
			r.ID, r.Variable, strings.Join(r.Subsystems, ", "), formulaText(r.Formula), r.Comment)
	}
	fmt.Fprintln(&b)

	fmt.Fprintln(&b, "Goal Coverage Strategy")
	fmt.Fprintln(&b, thin)
	fmt.Fprintln(&b, a.Coverage.String())
	fmt.Fprintln(&b)

	fmt.Fprintln(&b, "Goal Elaboration")
	fmt.Fprintln(&b, thin)
	for _, e := range a.Elaboration {
		refs := make([]string, len(e.UsesRelationships))
		for i, id := range e.UsesRelationships {
			refs[i] = fmt.Sprintf("%02d", id)
		}
		fmt.Fprintf(&b, "%s\n    Tactic: %s", e.Derivation, e.Tactic)
		if len(refs) > 0 {
			fmt.Fprintf(&b, "   Uses: %s", strings.Join(refs, ", "))
		}
		if e.Note != "" {
			fmt.Fprintf(&b, "\n    %% %s", e.Note)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintln(&b)

	fmt.Fprintln(&b, "Subsystem Safety Goals")
	fmt.Fprintln(&b, thin)
	for _, sg := range a.Subgoals {
		fmt.Fprintf(&b, "Subsystem: %s\n", sg.Subsystem)
		if len(sg.Controls) > 0 {
			fmt.Fprintf(&b, "Controls: %s\n", strings.Join(sg.Controls, ", "))
		}
		if len(sg.Observes) > 0 {
			fmt.Fprintf(&b, "Observes: %s\n", strings.Join(sg.Observes, ", "))
		}
		fmt.Fprintln(&b, sg.Goal.String())
		var marks []string
		if sg.Redundant {
			marks = append(marks, "redundant coverage")
		}
		if sg.Restrictive {
			marks = append(marks, "restrictive scope")
		}
		if sg.MonitorAt != "" {
			marks = append(marks, "monitored at "+sg.MonitorAt)
		}
		if len(marks) > 0 {
			fmt.Fprintf(&b, "[%s]\n", strings.Join(marks, "; "))
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintln(&b, line)
	return b.String()
}

func formulaText(f temporal.Formula) string {
	if f == nil {
		return "(informal)"
	}
	return f.String()
}
