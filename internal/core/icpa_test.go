package core

import (
	"strings"
	"testing"

	"repro/internal/goals"
	"repro/internal/temporal"
)

// buildDoorDriveAnalysis reproduces (in reduced form) the ICPA of the goal
// Maintain[DoorClosedOrElevatorStopped] from Tables 4.1-4.4.
func buildDoorDriveAnalysis() *Analysis {
	m := miniElevatorModel()
	// After ICPA the controllers cross-monitor each other's commands
	// (Table 4.4 Observes rows).
	m.AddAgent(goals.NewAgent("DriveController", goals.KindSoftware,
		[]string{"DispatchRequest", "DoorClosed", "DoorMotorCommand"}, []string{"DriveCommand"}))
	m.AddAgent(goals.NewAgent("DoorController", goals.KindSoftware,
		[]string{"DispatchRequest", "ElevatorSpeed", "DriveCommand", "DoorBlocked"}, []string{"DoorMotorCommand"}))

	parent := goals.MustParse("Maintain[DoorClosedOrElevatorStopped]",
		"At all times the door shall be closed or the elevator speed shall be STOPPED.",
		"DoorClosed | IsStopped_es")

	a := NewAnalysis(parent, m)
	a.TracePaths(0)

	relInit := a.AddRelationship("DoorClosed", []string{"DoorController", "DoorMotor"},
		temporal.MustParse("initially(DoorClosed & DoorMotorCommand == 'OPEN')"),
		"In the initial state the door is open and commanded OPEN")
	relDoorClose := a.AddRelationship("DoorClosed", []string{"DoorController", "DoorMotor"},
		temporal.MustParse("prevfor[200ms](!DoorBlocked & DoorMotorCommand == 'CLOSE') => DoorClosed"),
		"An unblocked door commanded CLOSE for the maximum close delay will be closed")
	relDoorReversal := a.AddRelationship("DoorClosed", []string{"Passenger"},
		temporal.MustParse("prev(DoorBlocked) => DoorMotorCommand == 'OPEN'"),
		"If the door is blocked, the door shall be commanded OPEN (door reversal safety goal)")
	relDriveEq := a.AddRelationship("ElevatorSpeed", []string{"Drive"},
		temporal.MustParse("IsStopped_drs <=> IsStopped_es"),
		"If the drive is stopped, the elevator is stopped, and vice versa")
	relDriveStop := a.AddRelationship("ElevatorSpeed", []string{"DriveController", "Drive"},
		temporal.MustParse("prevfor[500ms](DriveCommand == 'STOP') => IsStopped_drs"),
		"A drive commanded STOP for the maximum stop delay will be stopped")

	a.SetCoverage(CoverageStrategy{
		Assignment:  SharedResponsibility,
		Scope:       Restrictive,
		Responsible: []string{"DoorController", "DriveController"},
		Note:        "Assumes worst-case actuator response times; real response may be slower.",
	})

	a.AddElaboration("(dc | IsStopped(es)) <= (IsStopped(es) => dc) & (dc => IsStopped(es)) split by case on the initial state",
		TacticSplitByCase, []int{relInit, relDriveEq}, "Goal satisfied in the initial state")
	a.AddElaboration("IsStopped(es) => dc covered by the DoorController subgoal",
		TacticIntroduceAccuracy, []int{relDoorClose, relDoorReversal}, "Minimum delay to open the door")
	a.AddElaboration("dc => IsStopped(es) covered by the DriveController subgoal",
		TacticIntroduceActuation, []int{relDriveEq, relDriveStop}, "Minimum delay to move the elevator")

	a.AddSubgoal(SubsystemGoal{
		Subsystem: "DoorController",
		Goal: goals.MustParse("Achieve[CloseDoorWhenElevatorMovingOrMoved]",
			"If the door is not blocked and the elevator is moving or has been commanded to move, the door shall be commanded to CLOSE.",
			"(prev(!IsStopped_es | DriveCommand == 'GO') & prev(!DoorBlocked)) => DoorMotorCommand == 'CLOSE'"),
		Controls:    []string{"DoorMotorCommand"},
		Observes:    []string{"ElevatorSpeed", "DriveCommand", "DoorBlocked"},
		Restrictive: true,
	})
	a.AddSubgoal(SubsystemGoal{
		Subsystem: "DriveController",
		Goal: goals.MustParse("Achieve[StopElevatorWhenDoorOpenOrOpened]",
			"If the doors are not closed or have been commanded open, the drive shall be commanded to STOP.",
			"prev(!DoorClosed | DoorMotorCommand == 'OPEN') => DriveCommand == 'STOP'"),
		Controls:    []string{"DriveCommand"},
		Observes:    []string{"DoorClosed", "DoorMotorCommand"},
		Restrictive: true,
	})
	return a
}

func TestAnalysisWorkflow(t *testing.T) {
	a := buildDoorDriveAnalysis()

	if len(a.Paths) != 2 {
		t.Fatalf("TracePaths should trace both goal variables, got %d", len(a.Paths))
	}
	if len(a.Relationships) != 5 {
		t.Fatalf("expected 5 relationships, got %d", len(a.Relationships))
	}
	if r, ok := a.Relationship(3); !ok || !strings.Contains(r.Comment, "blocked") {
		t.Errorf("Relationship(3) = %+v, ok=%v", r, ok)
	}
	if _, ok := a.Relationship(99); ok {
		t.Error("Relationship(99) should not exist")
	}
	if got := a.CriticalAssumptions(); len(got) != 5 {
		t.Errorf("all 5 relationships are referenced by the elaboration, got %d", len(got))
	}
	if got := a.AssignedSubsystems(); len(got) != 2 || got[0] != "DoorController" {
		t.Errorf("AssignedSubsystems() = %v", got)
	}
	if got := a.SubgoalsFor("DriveController"); len(got) != 1 {
		t.Errorf("SubgoalsFor(DriveController) = %d subgoals", len(got))
	}
	if got := a.SubgoalsFor("Arbiter"); len(got) != 0 {
		t.Errorf("SubgoalsFor(Arbiter) = %d subgoals, want 0", len(got))
	}
}

func TestAnalysisRealizabilityOfTable4_4Subgoals(t *testing.T) {
	a := buildDoorDriveAnalysis()
	results := a.CheckRealizability()
	if len(results) != 2 {
		t.Fatalf("expected 2 realizability results, got %d", len(results))
	}
	for name, r := range results {
		if !r.Realizable {
			t.Errorf("subgoal %s should be realizable after cross-monitoring is added: %s", name, r)
		}
	}
}

func TestAnalysisRealizabilityMissingAgent(t *testing.T) {
	m := NewSystemModel("empty")
	parent := goals.MustParse("G", "", "A => B")
	a := NewAnalysis(parent, m)
	a.AddSubgoal(SubsystemGoal{
		Subsystem: "Ghost",
		Goal:      goals.MustParse("G1", "", "prev(A) => B"),
	})
	res := a.CheckRealizability()
	if r := res["G1"]; r.Realizable {
		t.Error("subgoal assigned to an unknown agent must be unrealizable")
	}
}

func TestAnalysisDecompositionAndVerify(t *testing.T) {
	// A propositional mock of the shared-responsibility decomposition:
	// under the critical assumption that a moving elevator implies a GO
	// command and a non-closed door implies an OPEN command (worst-case
	// actuation abstracted away), the two subgoals compose the parent.
	m := NewSystemModel("abstract door/drive")
	m.AddAgent(goals.NewAgent("DoorController", goals.KindSoftware, []string{"Moving"}, []string{"DoorClosed"}))
	m.AddAgent(goals.NewAgent("DriveController", goals.KindSoftware, []string{"DoorClosed"}, []string{"Moving"}))

	parent := goals.MustParse("Maintain[DoorClosedOrElevatorStopped]", "", "DoorClosed | !Moving")
	a := NewAnalysis(parent, m)
	a.TracePaths(0)
	relGo := a.AddRelationship("Moving", []string{"DriveController"},
		temporal.MustParse("Moving => GoCommanded"), "the elevator moves only when commanded to move")
	relOpen := a.AddRelationship("DoorClosed", []string{"DoorController"},
		temporal.MustParse("!DoorClosed => OpenCommanded"), "the door is open only when commanded open")
	a.SetCoverage(CoverageStrategy{Assignment: SharedResponsibility, Scope: Restrictive,
		Responsible: []string{"DoorController", "DriveController"}})
	a.AddElaboration("coordination via command observation", TacticInterlock, []int{relGo, relOpen}, "")
	a.AddSubgoal(SubsystemGoal{
		Subsystem:   "DoorController",
		Goal:        goals.MustParse("Achieve[CloseDoorWhenMoving]", "", "GoCommanded => DoorClosed"),
		Restrictive: true,
	})
	a.AddSubgoal(SubsystemGoal{
		Subsystem:   "DriveController",
		Goal:        goals.MustParse("Achieve[StopWhenDoorOpen]", "", "OpenCommanded => !Moving"),
		Restrictive: true,
	})

	d := a.Decomposition()
	if len(d.Reductions) != 1 || len(d.Reductions[0]) != 2 {
		t.Fatalf("Decomposition reductions = %+v", d.Reductions)
	}
	if len(d.Assumptions) != 2 {
		t.Fatalf("Decomposition assumptions = %d, want 2", len(d.Assumptions))
	}

	space := goals.BooleanStateSpace("DoorClosed", "Moving", "GoCommanded", "OpenCommanded")
	res := a.Verify(space)
	if !res.SubgoalsSufficient {
		t.Errorf("subgoals + assumptions should be sufficient for the parent: %s", res)
	}
	// The subgoals are restrictive (they constrain commands, not just the
	// hazardous state), so the parent can hold while a subgoal is violated:
	// partial composability with hidden Y, not full composability.
	if res.SubgoalsNecessary {
		t.Errorf("restrictive subgoals should not be necessary for the parent: %s", res)
	}
	if res.Class != PartiallyComposableWithRedundancy {
		t.Errorf("Class = %v, want partially composable with redundancy", res.Class)
	}
}

func TestDecompositionSecondaryReduction(t *testing.T) {
	a := NewAnalysis(goals.MustParse("G", "", "A => B"), NewSystemModel("x"))
	a.AddSubgoal(SubsystemGoal{Subsystem: "P", Goal: goals.MustParse("G1", "", "A => B")})
	a.AddSubgoal(SubsystemGoal{Subsystem: "S", Goal: goals.MustParse("G2", "", "B"), Redundant: true})
	d := a.Decomposition()
	if len(d.Reductions) != 2 {
		t.Fatalf("expected primary and secondary reductions, got %d", len(d.Reductions))
	}
}

func TestAnalysisRender(t *testing.T) {
	a := buildDoorDriveAnalysis()
	out := a.Render()
	for _, want := range []string{
		"INDIRECT CONTROL PATH ANALYSIS",
		"System Safety Goal",
		"Maintain[DoorClosedOrElevatorStopped]",
		"Indirect Control Paths",
		"Variable: DoorClosed",
		"Variable: IsStopped_es",
		"Indirect Control Relationships",
		"Goal Coverage Strategy",
		"Shared Responsibility",
		"Restrictive",
		"Goal Elaboration",
		"Split lack of monitorability/controllability by case",
		"Subsystem Safety Goals",
		"Subsystem: DoorController",
		"Subsystem: DriveController",
		"restrictive scope",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q", want)
		}
	}
}

func TestCoverageStrategyString(t *testing.T) {
	c := CoverageStrategy{
		Assignment:  RedundantResponsibility,
		Scope:       Restrictive,
		Responsible: []string{"Arbiter"},
		Secondary:   []string{"CA", "ACC"},
		Note:        "worst-case delays",
	}
	s := c.String()
	for _, want := range []string{"Redundant Responsibility", "Arbiter", "secondary: CA & ACC", "Restrictive", "worst-case delays"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in %q", want, s)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	for v, want := range map[GoalAssignment]string{
		SingleResponsibility: "Single Responsibility", RedundantResponsibility: "Redundant Responsibility",
		SharedResponsibility: "Shared Responsibility", GoalAssignment(0): "Unassigned",
	} {
		if got := v.String(); got != want {
			t.Errorf("GoalAssignment(%d) = %q, want %q", v, got, want)
		}
	}
	for v, want := range map[GoalScope]string{
		Nonrestrictive: "Nonrestrictive", Restrictive: "Restrictive", GoalScope(0): "Unspecified",
	} {
		if got := v.String(); got != want {
			t.Errorf("GoalScope(%d) = %q, want %q", v, got, want)
		}
	}
	tactics := map[Tactic]string{
		TacticIntroduceActuation: "Introduce actuation goal",
		TacticIntroduceAccuracy:  "Introduce accuracy goal",
		TacticSplitByChaining:    "Split lack of monitorability/controllability by chaining",
		TacticSplitByCase:        "Split lack of monitorability/controllability by case",
		TacticInterlock:          "Interlock",
		TacticLockout:            "Lockout",
		TacticSafetyMargin:       "Safety margin",
		TacticORReduction:        "OR-reduction",
		TacticInitialState:       "Initial state",
		TacticNone:               "(none)",
	}
	for v, want := range tactics {
		if got := v.String(); got != want {
			t.Errorf("Tactic(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestRenderNilFormulaRelationship(t *testing.T) {
	a := NewAnalysis(goals.MustParse("G", "", "A => B"), NewSystemModel("x"))
	a.AddRelationship("A", []string{"X"}, nil, "informally specified relationship")
	out := a.Render()
	if !strings.Contains(out, "(informal)") {
		t.Error("nil relationship formulas should render as (informal)")
	}
}
