// Package core implements the primary contributions of the thesis "System
// Safety as an Emergent Property in Composite Systems" (Black, 2009):
//
//   - the formal framework for composable and emergent goals of Chapter 3
//     (fully composable, fully composable with redundancy, emergent,
//     emergent-but-partially-composable, conjunctive and disjunctive
//     reduction, restriction tactics), and
//   - Indirect Control Path Analysis (ICPA) of Chapter 4: the system control
//     model, indirect-control-path search, indirect-control relationships,
//     goal coverage strategies, goal elaboration tactics, realizability
//     pattern tables (Table 4.5 and Appendix B) and the ICPA table itself.
//
// The run-time counterpart (hierarchical monitoring, hit/false-positive/
// false-negative classification) lives in package monitor.
package core

import (
	"fmt"
	"strings"

	"repro/internal/goals"
	"repro/internal/temporal"
)

// Composability classifies a decomposition of a parent goal per Chapter 3.
type Composability int

// Composability classes (thesis §3.2–§3.3).
const (
	// Emergent: the subgoals are neither sufficient nor necessary for the
	// parent goal; the decomposition says nothing definite about G.
	Emergent Composability = iota + 1
	// PartiallyComposable (emergent but partially composable, Eq. 3.14):
	// every subgoal is necessary for the parent goal — a subgoal violation
	// implies a parent violation — but satisfying all subgoals does not
	// guarantee the parent because a hidden goal X remains.
	PartiallyComposable
	// PartiallyComposableWithRedundancy (Eq. 3.23): satisfying any one
	// defined and-reduction guarantees the parent goal, but the parent can
	// also be satisfied by undefined behaviour Y (and each reduction may
	// carry hidden assumptions X_i).
	PartiallyComposableWithRedundancy
	// FullyComposable (Eq. 3.1): the conjunction of the subgoals is
	// materially equivalent to the parent goal.
	FullyComposable
	// FullyComposableWithRedundancy (Eq. 3.9): the disjunction of the
	// chosen and-reductions is materially equivalent to the parent goal.
	FullyComposableWithRedundancy
)

// String names the composability class.
func (c Composability) String() string {
	switch c {
	case Emergent:
		return "emergent"
	case PartiallyComposable:
		return "emergent but partially composable"
	case PartiallyComposableWithRedundancy:
		return "emergent but partially composable with redundancy"
	case FullyComposable:
		return "fully composable"
	case FullyComposableWithRedundancy:
		return "fully composable with redundancy"
	default:
		return "unknown"
	}
}

// Decomposition is a chosen decomposition of a parent goal into one or more
// and-reductions (more than one reduction expresses goal redundancy), plus
// the critical assumptions (domain properties such as indirect-control
// relationships) the decomposition relies on.
type Decomposition struct {
	// Parent is the system-level goal being decomposed.
	Parent goals.Goal
	// Reductions holds one subgoal set per and-reduction.  A single
	// reduction is the non-redundant case of §3.2.1; multiple reductions
	// express redundant goal coverage (§3.2.2).
	Reductions [][]goals.Goal
	// Assumptions are domain properties conjoined with the subgoals when
	// checking entailment (the "critical assumptions" recorded by ICPA).
	Assumptions []temporal.Formula
}

// Subgoals returns all subgoals across all reductions, in order.
func (d Decomposition) Subgoals() []goals.Goal {
	var out []goals.Goal
	for _, r := range d.Reductions {
		out = append(out, r...)
	}
	return out
}

// ClassificationResult is the outcome of classifying a decomposition over a
// finite state space.
type ClassificationResult struct {
	// Class is the composability classification.
	Class Composability
	// SubgoalsSufficient reports whether satisfying the decomposition
	// (any reduction, under the assumptions) guarantees the parent goal.
	SubgoalsSufficient bool
	// SubgoalsNecessary reports whether the parent goal guarantees the
	// decomposition (so any subgoal violation implies a parent violation).
	SubgoalsNecessary bool
	// DemonState, when non-nil, is a state in which all subgoals and
	// assumptions hold but the parent goal does not — evidence of a hidden
	// goal X (a "demon", thesis §3.3.2).
	DemonState temporal.State
	// AngelState, when non-nil, is a state in which the parent goal holds
	// but no reduction is satisfied — evidence of emergent behaviour Y
	// (an "angel").
	AngelState temporal.State
}

// String summarises the classification.
func (r ClassificationResult) String() string {
	return fmt.Sprintf("%s (sufficient=%v, necessary=%v)", r.Class, r.SubgoalsSufficient, r.SubgoalsNecessary)
}

// Classify determines the composability class of a decomposition over a
// finite state space.  For the propositional goals of Chapter 3 the result
// is exact; temporal operators are evaluated state-wise.
//
// The decomposition is:
//
//   - fully composable (with redundancy when more than one reduction is
//     given) when the disjunction of the reductions' conjunctions is
//     materially equivalent to the parent goal under the assumptions,
//   - partially composable when it is necessary but not sufficient (hidden
//     X remains), or sufficient but not necessary with redundancy (hidden Y
//     remains),
//   - emergent otherwise.
func Classify(d Decomposition, space goals.StateSpace) ClassificationResult {
	var res ClassificationResult
	if len(space) == 0 || len(d.Reductions) == 0 {
		res.Class = Emergent
		return res
	}

	res.SubgoalsSufficient = true
	res.SubgoalsNecessary = true

	for _, s := range space {
		if !assumptionsHold(d.Assumptions, s) {
			// States excluded by the critical assumptions are outside the
			// decomposition's domain (the assumptions must themselves be
			// assured in the system; ICPA records them for that purpose).
			continue
		}
		parent := evalOnState(d.Parent.Formal, s)
		satisfied := anyReductionSatisfied(d.Reductions, s)
		allSubgoals := allSubgoalsSatisfied(d.Reductions, s)

		if satisfied && !parent {
			res.SubgoalsSufficient = false
			if res.DemonState == nil {
				res.DemonState = s
			}
		}
		if parent && !satisfied {
			// With a single reduction, necessity in the thesis' sense
			// (Eq. 3.16: any subgoal violation implies a parent violation)
			// is about the individual subgoals.
			if !allSubgoals {
				res.SubgoalsNecessary = false
				if res.AngelState == nil {
					res.AngelState = s
				}
			}
		}
	}

	redundant := len(d.Reductions) > 1
	switch {
	case res.SubgoalsSufficient && res.SubgoalsNecessary:
		if redundant {
			res.Class = FullyComposableWithRedundancy
		} else {
			res.Class = FullyComposable
		}
	case res.SubgoalsNecessary && !res.SubgoalsSufficient:
		// Hidden X: subgoal satisfaction does not guarantee the parent.
		res.Class = PartiallyComposable
	case res.SubgoalsSufficient && !res.SubgoalsNecessary:
		// Hidden Y: the parent can be satisfied without any defined
		// reduction (Eq. 3.23).
		res.Class = PartiallyComposableWithRedundancy
	default:
		res.Class = Emergent
	}
	return res
}

func assumptionsHold(assumptions []temporal.Formula, s temporal.State) bool {
	for _, a := range assumptions {
		if !evalOnState(a, s) {
			return false
		}
	}
	return true
}

func anyReductionSatisfied(reductions [][]goals.Goal, s temporal.State) bool {
	for _, red := range reductions {
		ok := true
		for _, g := range red {
			if !evalOnState(g.Formal, s) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func allSubgoalsSatisfied(reductions [][]goals.Goal, s temporal.State) bool {
	for _, red := range reductions {
		for _, g := range red {
			if !evalOnState(g.Formal, s) {
				return false
			}
		}
	}
	return true
}

func evalOnState(f temporal.Formula, s temporal.State) bool {
	if f == nil {
		return true
	}
	tr := temporal.NewTrace(0)
	tr.Append(s)
	return f.Eval(tr, 0)
}

// ---------------------------------------------------------------------------
// Conjunctive and disjunctive goal handling (thesis §3.3.4, §3.3.5)
// ---------------------------------------------------------------------------

// SplitConjunctiveGoal splits a goal whose body is a conjunction, or whose
// antecedent is a disjunction, into independently assurable subgoals
// (thesis §3.3.4):
//
//	q(A ∧ X)        →  qA, qX
//	(A ∨ X) ⇒ B     →  A ⇒ B, X ⇒ B
//
// The returned subgoals can be pursued even when some of them are
// unrealizable; assuring a subset still prevents the corresponding hazards.
// The boolean result reports whether a split was possible.
func SplitConjunctiveGoal(g goals.Goal) ([]goals.Goal, bool) {
	if g.Formal == nil {
		return nil, false
	}
	if ant, con := temporal.Antecedent(g.Formal), temporal.Consequent(g.Formal); ant != nil {
		// (A ∨ X) ⇒ B  →  A ⇒ B and X ⇒ B.
		parts := disjuncts(ant)
		if len(parts) > 1 {
			out := make([]goals.Goal, 0, len(parts))
			for i, p := range parts {
				out = append(out, goals.Goal{
					Name:        fmt.Sprintf("%s/case-%d", g.Name, i+1),
					InformalDef: fmt.Sprintf("Case %d of the disjunctive antecedent of %s.", i+1, g.Name),
					Formal:      temporal.Implies(p, con),
				})
			}
			return out, true
		}
		return nil, false
	}
	parts := conjuncts(g.Formal)
	if len(parts) > 1 {
		out := make([]goals.Goal, 0, len(parts))
		for i, p := range parts {
			out = append(out, goals.Goal{
				Name:        fmt.Sprintf("%s/part-%d", g.Name, i+1),
				InformalDef: fmt.Sprintf("Conjunct %d of %s.", i+1, g.Name),
				Formal:      p,
			})
		}
		return out, true
	}
	return nil, false
}

// ORReduceGoal applies OR-reduction to a disjunctive goal (thesis §3.3.5):
//
//	q(A ∨ X)       →  qA
//	(A ∧ X) ⇒ B    →  A ⇒ B
//
// keeping only the disjunct (or dropping the conjunct of the antecedent)
// indicated by keep, where keep selects variables that remain in the reduced
// goal.  The resulting goal is more restrictive than the original: it
// prohibits some behaviour the original would allow, which is the price of
// handling an unknown or unrealizable X.  The boolean result reports whether
// a reduction applied.
func ORReduceGoal(g goals.Goal, keep func(temporal.Formula) bool) (goals.Goal, bool) {
	if g.Formal == nil {
		return g, false
	}
	if ant, con := temporal.Antecedent(g.Formal), temporal.Consequent(g.Formal); ant != nil {
		// (A ∧ X) ⇒ B: drop antecedent conjuncts not kept — the antecedent
		// becomes weaker, hence the goal more restrictive.
		parts := conjuncts(ant)
		if len(parts) > 1 {
			var kept []temporal.Formula
			for _, p := range parts {
				if keep(p) {
					kept = append(kept, p)
				}
			}
			if len(kept) > 0 && len(kept) < len(parts) {
				return goals.Goal{
					Name:        g.Name + "/or-reduced",
					InformalDef: "OR-reduction of " + g.Name + " (more restrictive).",
					Formal:      temporal.Implies(temporal.And(kept...), con),
				}, true
			}
		}
		return g, false
	}
	parts := disjuncts(g.Formal)
	if len(parts) > 1 {
		var kept []temporal.Formula
		for _, p := range parts {
			if keep(p) {
				kept = append(kept, p)
			}
		}
		if len(kept) > 0 && len(kept) < len(parts) {
			return goals.Goal{
				Name:        g.Name + "/or-reduced",
				InformalDef: "OR-reduction of " + g.Name + " (more restrictive).",
				Formal:      temporal.Or(kept...),
			}, true
		}
	}
	return g, false
}

// SafetyEnvelope produces the restrictive subgoal of §3.3.5 for a threshold
// goal: a goal of the form q(v ≤ limit) (or <) on the sensed variable is
// met by constraining the requesting variable to limit − envelope.  The
// returned goal constrains reqVar instead of the original variable.
func SafetyEnvelope(g goals.Goal, reqVar string, envelope float64) (goals.Goal, bool) {
	cmp, ok := thresholdOf(g.Formal)
	if !ok {
		return g, false
	}
	reduced := goals.Goal{
		Name: g.Name + "/envelope",
		InformalDef: fmt.Sprintf("%s restricted by a safety envelope of %g on %s.",
			g.Name, envelope, reqVar),
		Formal: temporal.Compare(reqVar, cmp.op, temporal.Number(cmp.limit-envelope)),
	}
	return reduced, true
}

type threshold struct {
	variable string
	op       temporal.CompareOp
	limit    float64
}

// thresholdOf recognises goals of the form "v <= limit" or "v < limit"
// (optionally as the consequent of an implication) and extracts the bound.
func thresholdOf(f temporal.Formula) (threshold, bool) {
	if f == nil {
		return threshold{}, false
	}
	if con := temporal.Consequent(f); con != nil {
		return thresholdOf(con)
	}
	s := f.String()
	for _, op := range []struct {
		text string
		op   temporal.CompareOp
	}{{" <= ", temporal.OpLe}, {" < ", temporal.OpLt}} {
		if idx := strings.Index(s, op.text); idx > 0 {
			variable := strings.TrimSpace(s[:idx])
			var limit float64
			if _, err := fmt.Sscanf(strings.TrimSpace(s[idx+len(op.text):]), "%g", &limit); err == nil {
				if !strings.ContainsAny(variable, "()!&|") {
					return threshold{variable: variable, op: op.op, limit: limit}, true
				}
			}
		}
	}
	return threshold{}, false
}

// conjuncts flattens top-level conjunctions of a formula.
func conjuncts(f temporal.Formula) []temporal.Formula { return temporal.Conjuncts(f) }

// disjuncts flattens top-level disjunctions of a formula.
func disjuncts(f temporal.Formula) []temporal.Formula { return temporal.Disjuncts(f) }
