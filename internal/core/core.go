package core
