package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/goals"
	"repro/internal/temporal"
)

func TestSplitByChaining(t *testing.T) {
	parent := mustGoal("G", "P => Q")
	res, err := SplitByChaining(parent, temporal.Var("M"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tactic != TacticSplitByChaining || len(res.Subgoals) != 2 {
		t.Fatalf("unexpected result: %+v", res)
	}
	if res.Subgoals[0].Formal.String() != "(P) => (M)" || res.Subgoals[1].Formal.String() != "(M) => (Q)" {
		t.Errorf("chained subgoals = %v / %v", res.Subgoals[0].Formal, res.Subgoals[1].Formal)
	}
	// The chained subgoals form a complete and-reduction of the parent.
	space := goals.BooleanStateSpace("P", "Q", "M")
	check := goals.CheckAndReduction(goals.AndReduction{Parent: parent, Subgoals: res.Subgoals}, space)
	if !check.Complete() {
		t.Errorf("chained decomposition should be a complete and-reduction: %s", check)
	}

	if _, err := SplitByChaining(mustGoal("G", "P & Q"), temporal.Var("M")); err == nil {
		t.Error("chaining a non-implication goal should fail")
	}
}

func TestSplitByCase(t *testing.T) {
	parent := mustGoal("G", "P => Q")
	cases := []temporal.Formula{temporal.Var("F1"), temporal.Var("F2")}
	res, err := SplitByCase(parent, cases)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subgoals) != 2 {
		t.Fatalf("expected 2 case subgoals, got %d", len(res.Subgoals))
	}
	if res.Assumption == nil {
		t.Fatal("case split must produce the case-coverage assumption")
	}
	// Under the coverage assumption, the case subgoals entail the parent.
	space := goals.BooleanStateSpace("P", "Q", "F1", "F2")
	d := Decomposition{
		Parent:      parent,
		Reductions:  [][]goals.Goal{res.Subgoals},
		Assumptions: []temporal.Formula{res.Assumption},
	}
	if cls := Classify(d, space); !cls.SubgoalsSufficient {
		t.Errorf("case subgoals with the coverage assumption must be sufficient: %s", cls)
	}

	if _, err := SplitByCase(parent, nil); err == nil {
		t.Error("case split with no cases should fail")
	}
	if _, err := SplitByCase(mustGoal("G", "P | Q"), cases); err == nil {
		t.Error("case split of a non-implication should fail")
	}
}

func TestIntroduceActuationGoal(t *testing.T) {
	parent := mustGoal("Maintain[ElevatorStopped]", "IsStopped_es")
	rewritten := mustGoal("Maintain[DriveStopped]", "IsStopped_drs")
	equivalence := temporal.MustParse("IsStopped_drs <=> IsStopped_es")

	res := IntroduceActuationGoal(parent, rewritten, equivalence, false)
	if res.Tactic != TacticIntroduceActuation {
		t.Errorf("Tactic = %v", res.Tactic)
	}
	res2 := IntroduceActuationGoal(parent, rewritten, equivalence, true)
	if res2.Tactic != TacticIntroduceAccuracy {
		t.Errorf("Tactic = %v", res2.Tactic)
	}
	// Under the equivalence assumption, the rewritten goal entails the parent.
	space := goals.BooleanStateSpace("IsStopped_es", "IsStopped_drs")
	d := Decomposition{
		Parent:      parent,
		Reductions:  [][]goals.Goal{res.Subgoals},
		Assumptions: []temporal.Formula{res.Assumption},
	}
	if cls := Classify(d, space); !cls.SubgoalsSufficient {
		t.Errorf("actuation-goal rewrite must be sufficient under the equivalence: %s", cls)
	}
}

func TestInterlockSubgoals(t *testing.T) {
	res := InterlockSubgoals("Maintain[DoorClosedOrElevatorStopped]", "DoorClosed", "Stopped", "LockDoor", "LockDrive")
	if res.Tactic != TacticInterlock || len(res.Subgoals) != 2 || !res.Restrictive {
		t.Fatalf("unexpected interlock result: %+v", res)
	}
	for _, sg := range res.Subgoals {
		if !strings.Contains(sg.Formal.String(), "prev(") {
			t.Errorf("interlock subgoal should reference the previous state: %s", sg.Formal)
		}
	}
	// The interlock subgoals keep the protected conditions true unless the
	// opposite lock was observed: check on a short trace that honouring the
	// locks maintains the parent invariant DoorClosed | Stopped.
	period := time.Millisecond
	tr := temporal.NewTrace(period)
	states := []struct{ dc, st, la, lb bool }{
		{true, true, false, false},
		{true, true, true, false},  // door controller sets its lock
		{false, true, true, false}, // then opens: drive stays stopped
		{false, true, true, false},
	}
	for _, s := range states {
		tr.Append(temporal.NewState().
			SetBool("DoorClosed", s.dc).SetBool("Stopped", s.st).
			SetBool("LockDoor", s.la).SetBool("LockDrive", s.lb))
	}
	parent := temporal.MustParse("DoorClosed | Stopped")
	if !temporal.HoldsThroughout(parent, tr) {
		t.Error("trace construction error: parent should hold")
	}
	for _, sg := range res.Subgoals {
		// Subgoal B (drive side) must hold throughout this trace: the drive
		// lock was never set while the door lock was.
		if sg.Name == "Maintain[DoorClosedOrElevatorStopped]/interlock-B" {
			if !temporal.HoldsThroughout(sg.Formal, tr) {
				t.Errorf("drive-side interlock subgoal should hold on the compliant trace")
			}
		}
	}
}

func TestLockoutSubgoals(t *testing.T) {
	res := LockoutSubgoals("Avoid[Transmit]", "FaultDetected", "NodeTransmit", "GuardianEnable", 50*time.Millisecond)
	if res.Tactic != TacticLockout || len(res.Subgoals) != 2 || !res.Restrictive {
		t.Fatalf("unexpected lockout result: %+v", res)
	}
	if res.Assumption == nil {
		t.Error("lockout must record the shared control relationship assumption")
	}
	// Both subgoals react to the trigger within the window.
	tr := temporal.NewTrace(10 * time.Millisecond)
	tr.Append(temporal.NewState().SetBool("FaultDetected", true).SetBool("NodeTransmit", true).SetBool("GuardianEnable", true))
	tr.Append(temporal.NewState().SetBool("FaultDetected", false).SetBool("NodeTransmit", true).SetBool("GuardianEnable", false))
	// At index 1, the fault was observed within 50ms, so NodeTransmit must be
	// withdrawn: the primary subgoal is violated on this trace.
	primary := res.Subgoals[0]
	if primary.Formal.Eval(tr, 1) {
		t.Error("primary lockout subgoal should be violated when transmit continues after a fault")
	}
	guard := res.Subgoals[1]
	if !guard.Formal.Eval(tr, 1) {
		t.Error("guard lockout subgoal should hold when the guardian withdrew its enable")
	}
}

func TestSafetyMargin(t *testing.T) {
	parent := mustGoal("Achieve[AutoAccelBelowThreshold]", "VehicleAcceleration <= 2")
	res, ok := SafetyMargin(parent, "AccelerationRequest", 0.5)
	if !ok {
		t.Fatal("SafetyMargin should apply")
	}
	if res.Tactic != TacticSafetyMargin || !res.Restrictive {
		t.Errorf("unexpected result: %+v", res)
	}
	if res.Subgoals[0].Formal.String() != "AccelerationRequest <= 1.5" {
		t.Errorf("margin subgoal = %s", res.Subgoals[0].Formal)
	}
	// Zero margin is allowed but not restrictive.
	res0, ok := SafetyMargin(parent, "AccelerationRequest", 0)
	if !ok || res0.Restrictive {
		t.Errorf("zero margin should be non-restrictive: %+v", res0)
	}
	if _, ok := SafetyMargin(mustGoal("G", "A | B"), "x", 1); ok {
		t.Error("SafetyMargin should not apply to non-threshold goals")
	}
}

func TestORReductionTactic(t *testing.T) {
	parent := mustGoal("G", "A | X")
	res, ok := ORReduction(parent, func(f temporal.Formula) bool { return f.String() == "A" })
	if !ok {
		t.Fatal("ORReduction should apply")
	}
	if res.Tactic != TacticORReduction || !res.Restrictive || len(res.Subgoals) != 1 {
		t.Errorf("unexpected result: %+v", res)
	}
	if _, ok := ORReduction(mustGoal("G", "A => B"), func(temporal.Formula) bool { return true }); ok {
		t.Error("ORReduction should not apply to a simple implication")
	}
}
