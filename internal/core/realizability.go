package core

import (
	"fmt"
	"strings"

	"repro/internal/temporal"
)

// Capability is an agent's relationship to one abstract pattern variable in
// the realizability tables (thesis Table 4.5 and Appendix B).
type Capability int

// Capabilities.
const (
	// CapNone: the agent can neither observe nor control the variable.
	CapNone Capability = iota
	// CapObservable: the agent can observe (monitor) the variable.
	CapObservable
	// CapControllable: the agent can control the variable (control implies
	// the ability to know its own output).
	CapControllable
)

// String renders the capability as used in the pattern tables.
func (c Capability) String() string {
	switch c {
	case CapObservable:
		return "observable"
	case CapControllable:
		return "controllable"
	default:
		return "none"
	}
}

// PatternShape is the propositional shape of a goal pattern in the
// realizability catalogue.
type PatternShape int

// Pattern shapes.
const (
	// ShapeSimple is A ⇒ B.
	ShapeSimple PatternShape = iota + 1
	// ShapeOrAntecedent is A ∨ B ⇒ C.
	ShapeOrAntecedent
	// ShapeAndAntecedent is A ∧ B ⇒ C.
	ShapeAndAntecedent
	// ShapeAndConsequent is A ⇒ B ∧ C.
	ShapeAndConsequent
	// ShapeOrConsequent is A ⇒ B ∨ C.
	ShapeOrConsequent
)

// String names the shape.
func (s PatternShape) String() string {
	switch s {
	case ShapeSimple:
		return "A => B"
	case ShapeOrAntecedent:
		return "A | B => C"
	case ShapeAndAntecedent:
		return "A & B => C"
	case ShapeAndConsequent:
		return "A => B & C"
	case ShapeOrConsequent:
		return "A => B | C"
	default:
		return "unknown"
	}
}

// TemporalMark is the temporal decoration of the pattern (where the l
// operator sits), matching the three variants of each Appendix B table.
type TemporalMark int

// Temporal marks.
const (
	// MarkNone: antecedent and consequent refer to the same state.
	MarkNone TemporalMark = iota + 1
	// MarkPrevAntecedent: the antecedent is observed one state earlier
	// (lA ⇒ B).
	MarkPrevAntecedent
	// MarkPrevConsequent: the consequent refers to the previous state
	// (A ⇒ lB).
	MarkPrevConsequent
)

// String names the mark.
func (m TemporalMark) String() string {
	switch m {
	case MarkNone:
		return "same state"
	case MarkPrevAntecedent:
		return "prev antecedent"
	case MarkPrevConsequent:
		return "prev consequent"
	default:
		return "unknown"
	}
}

// PatternCase is one row input of a realizability table: a goal pattern
// (shape + temporal mark) together with the agent's capability for each
// abstract variable.
type PatternCase struct {
	// Shape is the propositional shape.
	Shape PatternShape
	// Mark is the temporal decoration.
	Mark TemporalMark
	// Caps maps each abstract variable ("A", "B", and "C" for three-
	// variable shapes) to the agent's capability.
	Caps map[string]Capability
}

// AntecedentVars returns the abstract antecedent variables of the shape.
func (c PatternCase) AntecedentVars() []string {
	switch c.Shape {
	case ShapeOrAntecedent, ShapeAndAntecedent:
		return []string{"A", "B"}
	default:
		return []string{"A"}
	}
}

// ConsequentVars returns the abstract consequent variables of the shape.
func (c PatternCase) ConsequentVars() []string {
	switch c.Shape {
	case ShapeAndConsequent, ShapeOrConsequent:
		return []string{"B", "C"}
	case ShapeOrAntecedent, ShapeAndAntecedent:
		return []string{"C"}
	default:
		return []string{"B"}
	}
}

// Formula builds the abstract goal formula of the pattern case.
func (c PatternCase) Formula() temporal.Formula {
	ant := c.antecedentFormula(false)
	con := c.consequentFormula(false)
	switch c.Mark {
	case MarkPrevAntecedent:
		ant = c.antecedentFormula(true)
	case MarkPrevConsequent:
		con = c.consequentFormula(true)
	}
	return temporal.Implies(ant, con)
}

func (c PatternCase) antecedentFormula(prev bool) temporal.Formula {
	wrap := func(v string) temporal.Formula {
		if prev {
			return temporal.Prev(temporal.Var(v))
		}
		return temporal.Var(v)
	}
	switch c.Shape {
	case ShapeOrAntecedent:
		return temporal.Or(wrap("A"), wrap("B"))
	case ShapeAndAntecedent:
		return temporal.And(wrap("A"), wrap("B"))
	default:
		return wrap("A")
	}
}

func (c PatternCase) consequentFormula(prev bool) temporal.Formula {
	wrap := func(v string) temporal.Formula {
		if prev {
			return temporal.Prev(temporal.Var(v))
		}
		return temporal.Var(v)
	}
	switch c.Shape {
	case ShapeAndConsequent:
		return temporal.And(wrap("B"), wrap("C"))
	case ShapeOrConsequent:
		return temporal.Or(wrap("B"), wrap("C"))
	case ShapeOrAntecedent, ShapeAndAntecedent:
		return wrap("C")
	default:
		return wrap("B")
	}
}

// String renders the pattern case.
func (c PatternCase) String() string {
	parts := make([]string, 0, len(c.Caps))
	for _, v := range append(c.AntecedentVars(), c.ConsequentVars()...) {
		parts = append(parts, fmt.Sprintf("%s:%s", v, c.Caps[v]))
	}
	return fmt.Sprintf("%s [%s] (%s)", c.Shape, c.Mark, strings.Join(parts, ", "))
}

// PatternOutcome is the result of analysing a pattern case: whether the goal
// is strictly realizable by a single agent with those capabilities, and if
// not, the alternative (possibly restrictive) goal that is realizable, or a
// statement that no single-agent alternative exists (shared responsibility or
// a design change is required).
type PatternOutcome struct {
	// Realizable reports whether the goal is realizable as stated.
	Realizable bool
	// Alternative is the alternative goal (equivalent rewriting or a more
	// restrictive goal); nil when the goal is realizable as stated or when
	// no single-agent alternative exists.
	Alternative temporal.Formula
	// Restrictive reports whether the alternative restricts behaviour
	// beyond the original goal.
	Restrictive bool
	// Feasible is false when neither the goal nor any single-agent
	// alternative is realizable with the given capabilities; shared
	// responsibility or a design change (new sensor/actuator) is needed.
	Feasible bool
	// Note explains the outcome.
	Note string
}

// String summarises the outcome.
func (o PatternOutcome) String() string {
	switch {
	case o.Realizable:
		return "realizable"
	case !o.Feasible:
		return "not realizable by a single agent: " + o.Note
	case o.Restrictive:
		return fmt.Sprintf("alternative (restrictive): %s", o.Alternative)
	default:
		return fmt.Sprintf("alternative (equivalent): %s", o.Alternative)
	}
}

// AnalyzeRealizabilityPattern analyses one pattern case following the
// thesis' controllability/observability rules (§4.5.3):
//
//   - A goal is realizable as stated when all consequent variables are
//     controllable and every antecedent variable is either controllable or
//     (when the antecedent is observed in a previous state) observable.
//   - When the antecedent refers to the same state and is only observable,
//     the goal is unrealizable (reference to the future); a restrictive
//     alternative guarantees the consequent unconditionally.
//   - When an antecedent variable is unknowable, OR-reduction drops the
//     unknowable conjunct (conjunctive antecedent) or falls back to the
//     unconditional consequent (simple/disjunctive antecedent).
//   - When a consequent variable is uncontrollable, a disjunctive consequent
//     is restricted to its controllable disjuncts; otherwise the fallback is
//     to prevent the antecedent, which requires the antecedent to be fully
//     controllable.
//   - A ⇒ lB is realizable without restriction when A is controllable and
//     B observable, via the equivalent contrapositive ¬lB ⇒ ¬A.
//
// Every returned alternative either is equivalent to the original pattern or
// entails it (restrictive); this is verified by the package tests.
func AnalyzeRealizabilityPattern(c PatternCase) PatternOutcome {
	capOf := func(v string) Capability { return c.Caps[v] }
	ctrl := func(v string) bool { return capOf(v) == CapControllable }
	know := func(v string) bool { return capOf(v) != CapNone }

	antVars := c.AntecedentVars()
	conVars := c.ConsequentVars()

	allCtrl := func(vs []string) bool {
		for _, v := range vs {
			if !ctrl(v) {
				return false
			}
		}
		return true
	}

	if c.Mark == MarkPrevConsequent {
		return analyzePrevConsequent(c, ctrl, know, antVars, conVars, allCtrl)
	}

	// Reactive forms: the agent controls the consequent in the current
	// state, reacting to the antecedent.
	antKnowable := func(v string) bool {
		if ctrl(v) {
			return true
		}
		if c.Mark == MarkPrevAntecedent {
			return know(v)
		}
		// Same-state observation of a merely observable variable is a
		// reference to the future.
		return false
	}

	// Step 1: consequent controllability.
	consequentOK := allCtrl(conVars)
	restrictedConsequent := c.consequentFormula(false)
	consequentRestricted := false
	if !consequentOK {
		switch c.Shape {
		case ShapeOrConsequent:
			var kept []temporal.Formula
			for _, v := range conVars {
				if ctrl(v) {
					kept = append(kept, temporal.Var(v))
				}
			}
			if len(kept) > 0 {
				restrictedConsequent = temporal.Or(kept...)
				consequentOK = true
				consequentRestricted = true
			}
		default:
			// Conjunctive or simple consequent with an uncontrollable part
			// cannot be achieved; fall back to preventing the antecedent.
		}
		if !consequentOK {
			if allCtrl(antVars) {
				alt := temporal.Not(c.antecedentFormula(false))
				return PatternOutcome{
					Alternative: alt,
					Restrictive: true,
					Feasible:    true,
					Note:        "consequent not controllable; prevent the antecedent instead",
				}
			}
			return PatternOutcome{
				Feasible: false,
				Note:     "consequent not controllable and antecedent cannot be prevented; requires shared responsibility or a design change",
			}
		}
	}

	// Step 2: antecedent knowability.
	var unknowable []string
	for _, v := range antVars {
		if !antKnowable(v) {
			unknowable = append(unknowable, v)
		}
	}

	if len(unknowable) == 0 {
		if consequentRestricted {
			alt := temporal.Implies(c.markedAntecedent(), restrictedConsequent)
			return PatternOutcome{
				Alternative: alt,
				Restrictive: true,
				Feasible:    true,
				Note:        "uncontrollable consequent disjunct dropped by OR-reduction",
			}
		}
		return PatternOutcome{Realizable: true, Feasible: true, Note: "all controllability and observability requirements met"}
	}

	// Some antecedent variables cannot be known in time.
	switch c.Shape {
	case ShapeAndAntecedent:
		// Drop the unknowable conjunct: a weaker antecedent yields a more
		// restrictive goal that still entails the original.
		var kept []temporal.Formula
		for _, v := range antVars {
			if antKnowable(v) {
				kept = append(kept, c.markedVar(v))
			}
		}
		if len(kept) > 0 {
			alt := temporal.Implies(temporal.And(kept...), restrictedConsequent)
			return PatternOutcome{
				Alternative: alt,
				Restrictive: true,
				Feasible:    true,
				Note:        "unknowable antecedent conjunct dropped by OR-reduction",
			}
		}
		fallthrough
	default:
		// Simple or disjunctive antecedent with an unknowable term: the
		// agent must guarantee the consequent unconditionally.
		return PatternOutcome{
			Alternative: restrictedConsequent,
			Restrictive: true,
			Feasible:    true,
			Note:        "antecedent not knowable in time; guarantee the consequent unconditionally",
		}
	}
}

func (c PatternCase) markedVar(v string) temporal.Formula {
	if c.Mark == MarkPrevAntecedent {
		return temporal.Prev(temporal.Var(v))
	}
	return temporal.Var(v)
}

func (c PatternCase) markedAntecedent() temporal.Formula {
	return c.antecedentFormula(c.Mark == MarkPrevAntecedent)
}

func analyzePrevConsequent(c PatternCase, ctrl, know func(string) bool,
	antVars, conVars []string, allCtrl func([]string) bool) PatternOutcome {

	consequentKnowable := true
	for _, v := range conVars {
		if !know(v) {
			consequentKnowable = false
		}
	}

	switch {
	case allCtrl(antVars) && (consequentKnowable || allCtrl(conVars)):
		// Equivalent contrapositive: ¬lB ⇒ ¬A, realizable without
		// restriction because the agent observes B one state earlier and
		// controls A now.
		alt := temporal.Implies(
			temporal.Not(c.consequentFormula(true)),
			temporal.Not(c.antecedentFormula(false)),
		)
		return PatternOutcome{
			Realizable:  true,
			Alternative: alt,
			Restrictive: false,
			Feasible:    true,
			Note:        "realizable via the equivalent contrapositive form",
		}
	case allCtrl(conVars):
		// The agent can keep the consequent always true.
		return PatternOutcome{
			Alternative: c.consequentFormula(false),
			Restrictive: true,
			Feasible:    true,
			Note:        "antecedent not controllable; keep the consequent invariantly true",
		}
	case allCtrl(antVars):
		// The agent can keep the antecedent always false.
		return PatternOutcome{
			Alternative: temporal.Not(c.antecedentFormula(false)),
			Restrictive: true,
			Feasible:    true,
			Note:        "consequent not observable; prevent the antecedent",
		}
	default:
		return PatternOutcome{
			Feasible: false,
			Note:     "neither the antecedent nor the consequent is controllable; requires shared responsibility or a design change",
		}
	}
}

// PatternRow is one row of a generated realizability table.
type PatternRow struct {
	// Case is the pattern case analysed.
	Case PatternCase
	// Outcome is the analysis result.
	Outcome PatternOutcome
}

// PatternTable is one realizability table (Table 4.5 or one of Appendix B's
// tables): a goal shape and temporal mark with one row per capability
// combination.
type PatternTable struct {
	// Title identifies the table.
	Title string
	// Shape and Mark identify the pattern.
	Shape PatternShape
	Mark  TemporalMark
	// Rows are the capability combinations and their outcomes.
	Rows []PatternRow
}

// capabilityCombos enumerates all capability assignments for the variables.
func capabilityCombos(vars []string) []map[string]Capability {
	caps := []Capability{CapNone, CapObservable, CapControllable}
	var out []map[string]Capability
	total := 1
	for range vars {
		total *= len(caps)
	}
	for idx := 0; idx < total; idx++ {
		m := make(map[string]Capability, len(vars))
		rem := idx
		for _, v := range vars {
			m[v] = caps[rem%len(caps)]
			rem /= len(caps)
		}
		out = append(out, m)
	}
	return out
}

// buildTable generates a realizability table for a shape and mark by
// enumerating every capability combination.
func buildTable(title string, shape PatternShape, mark TemporalMark) PatternTable {
	sample := PatternCase{Shape: shape, Mark: mark}
	vars := append(sample.AntecedentVars(), sample.ConsequentVars()...)
	t := PatternTable{Title: title, Shape: shape, Mark: mark}
	for _, caps := range capabilityCombos(vars) {
		c := PatternCase{Shape: shape, Mark: mark, Caps: caps}
		t.Rows = append(t.Rows, PatternRow{Case: c, Outcome: AnalyzeRealizabilityPattern(c)})
	}
	return t
}

// Table4_5 generates the goal controllability and observability table for
// goals of the form A ⇒ B (thesis Table 4.5): the three temporal variants of
// the simple pattern, one row per capability combination of A and B.
func Table4_5() []PatternTable {
	return []PatternTable{
		buildTable("A => B", ShapeSimple, MarkNone),
		buildTable("prev(A) => B", ShapeSimple, MarkPrevAntecedent),
		buildTable("A => prev(B)", ShapeSimple, MarkPrevConsequent),
	}
}

// AppendixBTables generates the goal realizability pattern catalogue of
// thesis Appendix B (Tables B.1–B.13): every combination of propositional
// shape and temporal mark, with one row per capability combination.
func AppendixBTables() []PatternTable {
	specs := []struct {
		title string
		shape PatternShape
		mark  TemporalMark
	}{
		{"B.1a  A => B", ShapeSimple, MarkNone},
		{"B.1b  prev(A) => B", ShapeSimple, MarkPrevAntecedent},
		{"B.1c  A => prev(B)", ShapeSimple, MarkPrevConsequent},
		{"B.2   A | B => C", ShapeOrAntecedent, MarkNone},
		{"B.3   prev(A) | prev(B) => C", ShapeOrAntecedent, MarkPrevAntecedent},
		{"B.4   A | B => prev(C)", ShapeOrAntecedent, MarkPrevConsequent},
		{"B.5   A & B => C", ShapeAndAntecedent, MarkNone},
		{"B.6   prev(A) & prev(B) => C", ShapeAndAntecedent, MarkPrevAntecedent},
		{"B.7   A & B => prev(C)", ShapeAndAntecedent, MarkPrevConsequent},
		{"B.8   A => B & C", ShapeAndConsequent, MarkNone},
		{"B.9   prev(A) => B & C", ShapeAndConsequent, MarkPrevAntecedent},
		{"B.10  A => prev(B) & prev(C)", ShapeAndConsequent, MarkPrevConsequent},
		{"B.11  A => B | C", ShapeOrConsequent, MarkNone},
		{"B.12  prev(A) => B | C", ShapeOrConsequent, MarkPrevAntecedent},
		{"B.13  A => prev(B) | prev(C)", ShapeOrConsequent, MarkPrevConsequent},
	}
	out := make([]PatternTable, 0, len(specs))
	for _, s := range specs {
		out = append(out, buildTable(s.title, s.shape, s.mark))
	}
	return out
}

// Render renders the pattern table as text.
func (t PatternTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (%s, %s)\n", t.Title, t.Shape, t.Mark)
	fmt.Fprintln(&b, strings.Repeat("-", 100))
	for _, r := range t.Rows {
		caps := make([]string, 0, len(r.Case.Caps))
		for _, v := range append(r.Case.AntecedentVars(), r.Case.ConsequentVars()...) {
			caps = append(caps, fmt.Sprintf("%s=%-12s", v, r.Case.Caps[v]))
		}
		fmt.Fprintf(&b, "%-46s | %s\n", strings.Join(caps, " "), r.Outcome)
	}
	return b.String()
}
