package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/scenarios"
)

// runScenario7 evaluates the fixed scenario 7 once with the given retention
// and returns the StreamResult.
func runScenario7(t *testing.T, retention scenarios.Retention) scenarios.StreamResult {
	t.Helper()
	sc, ok := scenarios.ScenarioByNumber(7)
	if !ok {
		t.Fatal("scenario 7 missing")
	}
	engine := scenarios.NewEngine(scenarios.WithRetention(retention))
	var got scenarios.StreamResult
	err := engine.Stream(context.Background(),
		scenarios.SliceSource([]scenarios.Job{{Scenario: sc}}),
		scenarios.SinkFunc(func(sr scenarios.StreamResult) error {
			got = sr
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestResultJSONRoundTrip is the NDJSON wire-contract test: a marshalled
// Result survives unmarshal → marshal byte-identically (field order, float
// formatting), and the trace-bearing fields never leak into the JSON even
// when the in-memory Result retains them.
func TestResultJSONRoundTrip(t *testing.T) {
	sr := runScenario7(t, scenarios.KeepTrace)
	if sr.Result.Trace == nil {
		t.Fatal("KeepTrace run should retain the trace; the leak check below would be vacuous")
	}

	first, err := json.Marshal(sr.Result)
	if err != nil {
		t.Fatal(err)
	}
	for _, leak := range []string{"trace", "suite", "detections", "Trace", "Suite", "Detections"} {
		if bytes.Contains(first, []byte(`"`+leak+`"`)) {
			t.Errorf("marshalled Result leaks retention-dependent field %q: %s", leak, first)
		}
	}

	var back scenarios.Result
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("Result does not round-trip byte-identically:\nfirst:  %s\nsecond: %s", first, second)
	}
}

// TestRunReportRoundTrip checks the per-run protocol line round-trips
// byte-identically and that Result() is NewRunReport's inverse: the rebuilt
// result re-marshals to the same line the worker emitted.
func TestRunReportRoundTrip(t *testing.T) {
	sr := runScenario7(t, scenarios.SummaryOnly)
	rep := NewRunReport(sr)

	first, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("RunReport does not round-trip byte-identically:\nfirst:  %s\nsecond: %s", first, second)
	}

	rebuilt := back.Result(sr.Job)
	again := NewRunReport(scenarios.StreamResult{Index: sr.Index, Job: sr.Job, Result: rebuilt})
	if again != rep {
		t.Errorf("rebuilt result reports differently:\noriginal: %+v\nrebuilt:  %+v", rep, again)
	}
}

// TestProvedResultRoundTrip checks the seed-file format: write → read
// preserves every proved result and Job() reassembles the original variant
// key, which is what the cache seeds under.
func TestProvedResultRoundTrip(t *testing.T) {
	sr := runScenario7(t, scenarios.SummaryOnly)
	proved := []ProvedResult{
		{Options: sr.Job.Options, Result: sr.Result},
		{Options: scenarios.Options{CorrectDefects: true}, Result: sr.Result},
	}
	var buf bytes.Buffer
	if err := WriteProved(&buf, proved); err != nil {
		t.Fatal(err)
	}
	withBlanks := "\n" + strings.Replace(buf.String(), "\n", "\n\n", 1)
	back, err := ReadProved(strings.NewReader(withBlanks))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(proved) {
		t.Fatalf("read %d proved results, wrote %d", len(back), len(proved))
	}
	for i := range proved {
		if back[i].Job().Key() != proved[i].Job().Key() {
			t.Errorf("proved result %d: key %q != original %q", i, back[i].Job().Key(), proved[i].Job().Key())
		}
		if back[i].Result.Summary != proved[i].Result.Summary {
			t.Errorf("proved result %d: summary %+v != original %+v", i, back[i].Result.Summary, proved[i].Result.Summary)
		}
	}

	if _, err := ReadProved(strings.NewReader("not json\n")); err == nil {
		t.Error("corrupt seed files must be an error")
	}
}

// TestParseResultLine checks stream-line classification: run lines parse with
// ok=true, aggregate trailers and blanks are skipped, garbage is an error.
func TestParseResultLine(t *testing.T) {
	sr := runScenario7(t, scenarios.SummaryOnly)
	runLine, _ := json.Marshal(NewRunReport(sr))
	var acc scenarios.Accumulator
	acc.Add(sr.Result)
	trailer, _ := json.Marshal(NewAggregateReport(&acc))

	rep, ok, err := ParseResultLine(runLine)
	if err != nil || !ok {
		t.Fatalf("run line: ok=%v err=%v", ok, err)
	}
	if rep.Name != sr.Job.Scenario.Name {
		t.Errorf("run line parsed name %q, want %q", rep.Name, sr.Job.Scenario.Name)
	}
	if _, ok, err := ParseResultLine(trailer); err != nil || ok {
		t.Errorf("trailer: ok=%v err=%v, want skipped", ok, err)
	}
	if _, ok, err := ParseResultLine([]byte("  \n")); err != nil || ok {
		t.Errorf("blank line: ok=%v err=%v, want skipped", ok, err)
	}
	if _, _, err := ParseResultLine([]byte("not json at all")); err == nil {
		t.Error("garbage must be an error")
	}
	if _, _, err := ParseResultLine([]byte(`{"neither":"run nor trailer"}`)); err == nil {
		t.Error("unrecognized JSON must be an error")
	}
}

// TestParseShard pins the -shard syntax validation.
func TestParseShard(t *testing.T) {
	i, n, err := ParseShard("2/5")
	if err != nil || i != 2 || n != 5 {
		t.Errorf("ParseShard(2/5) = %d,%d,%v", i, n, err)
	}
	for _, bad := range []string{"", "2", "a/b", "5/5", "-1/5", "0/0", "1/-3"} {
		if _, _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) should fail", bad)
		}
	}
	if got := (ShardSpec{Index: 2, Total: 5}).String(); got != "2/5" {
		t.Errorf("ShardSpec.String() = %q, want 2/5", got)
	}
}

// TestParseResultLineHardening pins satellite guarantees of the protocol
// decoder: no input panics, every rejection quotes the offending line, and
// the quote is bounded so a megabyte of garbage does not become a megabyte of
// error message.
func TestParseResultLineHardening(t *testing.T) {
	hostile := [][]byte{
		[]byte("null"),
		[]byte("true"),
		[]byte("42"),
		[]byte(`"just a string"`),
		[]byte(`[1,2,3]`),
		[]byte(`{}`),
		[]byte(`{"name":null,"runs":null}`),
		[]byte(`{"name":7}`),                        // wrong type for the discriminator
		[]byte(`{"name":"x","steps":"not an int"}`), // run line with a mistyped field
		[]byte(`{"runs":"not an int"}`),             // trailer with a mistyped field
		[]byte(`{"name":"veh`),                      // truncated mid-string
		[]byte(`{"name":"x"`),                       // truncated mid-object
		bytes.Repeat([]byte("x"), 4096),
	}
	for _, line := range hostile {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("ParseResultLine(%.40q) panicked: %v", line, r)
				}
			}()
			rep, ok, err := ParseResultLine(line)
			if err == nil && ok {
				t.Errorf("hostile line %.40q was accepted as run report %+v", line, rep)
			}
		}()
	}

	// A rejected line is quoted in the error so the operator can see what the
	// worker actually sent...
	_, _, err := ParseResultLine([]byte(`{"name":"veh`))
	if err == nil || !strings.Contains(err.Error(), "malformed result line") || !strings.Contains(err.Error(), "veh") {
		t.Errorf("the offending line should be quoted in the error, got: %v", err)
	}
	// ...but bounded: a huge line must not be quoted whole.
	huge := append([]byte(`{"name":"`), bytes.Repeat([]byte("A"), 1<<16)...)
	_, _, err = ParseResultLine(huge)
	if err == nil {
		t.Fatal("an unterminated huge line must be rejected")
	}
	if len(err.Error()) > 512 {
		t.Errorf("error quoting a %d-byte line is %d bytes long; the quote must be truncated", len(huge), len(err.Error()))
	}
}
