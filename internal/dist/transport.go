package dist

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ShardSpec addresses one unit of distributed work: the Index-th of Total
// deterministic variant shards, plus the already-proved results the worker
// should seed its result cache with (empty on a first attempt, the proved
// prefix on a re-queue).
// The JSON form is the body of an HTTPTransport shard request.
type ShardSpec struct {
	// Index is the 0-based shard index.
	Index int `json:"index"`
	// Total is the shard count; every worker of one sweep shares it.
	Total int `json:"total"`
	// Seed holds variants any worker already proved, so a replacement
	// worker replays them from cache instead of re-simulating.
	Seed []ProvedResult `json:"seed,omitempty"`
}

// String renders the spec in the -shard flag syntax.
func (s ShardSpec) String() string { return strconv.Itoa(s.Index) + "/" + strconv.Itoa(s.Total) }

// ParseShard parses the -shard flag syntax "i/n" (0-based index, 1-based
// total) into a validated index/total pair.
func ParseShard(s string) (index, total int, err error) {
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("shard %q: want i/n (e.g. 0/3)", s)
	}
	index, err = strconv.Atoi(strings.TrimSpace(i))
	if err != nil {
		return 0, 0, fmt.Errorf("shard %q: index: %w", s, err)
	}
	total, err = strconv.Atoi(strings.TrimSpace(n))
	if err != nil {
		return 0, 0, fmt.Errorf("shard %q: total: %w", s, err)
	}
	if total < 1 {
		return 0, 0, fmt.Errorf("shard %q: total must be at least 1", s)
	}
	if index < 0 || index >= total {
		return 0, 0, fmt.Errorf("shard %q: index must be in [0,%d)", s, total)
	}
	return index, total, nil
}

// Worker is one running constituent of a distributed sweep, however the
// Transport realizes it (child process, goroutine, remote host).
type Worker interface {
	// Output is the worker's NDJSON result stream.  It yields EOF when the
	// worker finishes or dies; the reader must drain it before Wait.
	Output() io.Reader
	// Wait blocks until the worker has terminated and returns its terminal
	// error, if any.  A non-nil error with the shard complete is ignorable;
	// the coordinator decides from its own bookkeeping, not the exit code.
	Wait() error
	// Kill forcibly terminates the worker (SIGKILL for process workers).
	// The coordinator uses it for stalled workers and for cancellation;
	// killing an already-dead worker is harmless.
	Kill() error
}

// Transport spawns workers.  It is deliberately small — spawn and stream —
// so that process-local execution (ExecTransport), in-process execution
// (LocalTransport) and a future HTTP/socket transport are interchangeable
// under the same Coordinator.  Start must not block on the worker finishing;
// the context cancels the worker's whole lifetime.
type Transport interface {
	Start(ctx context.Context, spec ShardSpec) (Worker, error)
}
