package dist

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
)

// ExecTransport runs each shard as a local child process: the ordinary
// scenarios binary with `-shard i/n` appended, streaming NDJSON on stdout.
// It is the "local os/exec first" transport of the dist design; anything
// that can spawn-and-stream the same protocol can replace it.
type ExecTransport struct {
	// Argv is the worker command line producing a full (unsharded) NDJSON
	// stream, e.g. ["./scenarios", "-sweep", "-sweep-size", "huge",
	// "-stream"].  The transport appends -shard and, on re-queues,
	// -seed-results.
	Argv []string
	// Dir is the working directory for workers ("" inherits the
	// coordinator's).
	Dir string
	// Stderr receives the workers' stderr (nil discards it): worker
	// diagnostics must never interleave with the protocol on stdout.
	Stderr io.Writer
}

// Start implements Transport.
func (t *ExecTransport) Start(ctx context.Context, spec ShardSpec) (Worker, error) {
	if len(t.Argv) == 0 {
		return nil, fmt.Errorf("dist: ExecTransport needs a worker command")
	}
	args := make([]string, 0, len(t.Argv)+3)
	args = append(args, t.Argv[1:]...)
	args = append(args, "-shard", spec.String())

	seedFile := ""
	if len(spec.Seed) > 0 {
		f, err := os.CreateTemp("", "sweep-seed-*.ndjson")
		if err != nil {
			return nil, fmt.Errorf("dist: seed file: %w", err)
		}
		seedFile = f.Name()
		err = WriteProved(f, spec.Seed)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(seedFile)
			return nil, fmt.Errorf("dist: writing seed file: %w", err)
		}
		args = append(args, "-seed-results", seedFile)
	}

	cmd := exec.CommandContext(ctx, t.Argv[0], args...)
	cmd.Dir = t.Dir
	cmd.Stderr = t.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		removeIfSet(seedFile)
		return nil, fmt.Errorf("dist: worker stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		removeIfSet(seedFile)
		return nil, fmt.Errorf("dist: starting worker shard %s: %w", spec, err)
	}
	return &execWorker{cmd: cmd, out: stdout, seedFile: seedFile}, nil
}

// removeIfSet deletes a temp seed file if one was created.
func removeIfSet(path string) {
	if path != "" {
		os.Remove(path)
	}
}

// execWorker wraps one child process.
type execWorker struct {
	cmd      *exec.Cmd
	out      io.ReadCloser
	seedFile string
}

// Output implements Worker.
func (w *execWorker) Output() io.Reader { return w.out }

// Wait implements Worker.  The seed file lives until the process has
// terminated: the worker reads it at startup, but only Wait proves startup
// is over.
func (w *execWorker) Wait() error {
	err := w.cmd.Wait()
	removeIfSet(w.seedFile)
	return err
}

// Kill implements Worker, delivering SIGKILL: worker death must look exactly
// like the crash it simulates, with no chance for a graceful flush.
func (w *execWorker) Kill() error {
	if w.cmd.Process == nil {
		return nil
	}
	return w.cmd.Process.Kill()
}
