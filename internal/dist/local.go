package dist

import (
	"context"
	"encoding/json"
	"errors"
	"io"

	"repro/internal/scenarios"
)

// LocalTransport runs each shard as an in-process streaming Engine writing
// the worker protocol into a pipe.  It exercises every coordinator code path
// — sharded enumeration, seeded caches, kills, re-queues — without spawning
// processes, so coordinator logic is testable (and benchmarkable) at full
// fidelity; ExecTransport is the same contract with a process boundary.
type LocalTransport struct {
	// Source returns a fresh enumeration of the full job stream, exactly as
	// each worker process would enumerate it itself.
	Source func() scenarios.JobSource
	// Workers sizes each in-process engine's pool (non-positive defaults to
	// GOMAXPROCS).
	Workers int
}

// errWorkerKilled is the terminal error of a killed local worker.
var errWorkerKilled = errors.New("dist: local worker killed")

// Start implements Transport.
func (t *LocalTransport) Start(ctx context.Context, spec ShardSpec) (Worker, error) {
	if t.Source == nil {
		return nil, errors.New("dist: LocalTransport needs a Source")
	}
	wctx, cancel := context.WithCancel(ctx)
	pr, pw := io.Pipe()
	w := &localWorker{out: pr, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(w.done)
		engine := scenarios.NewEngine(
			scenarios.WithWorkers(t.Workers),
			scenarios.WithRetention(scenarios.SummaryOnly),
			scenarios.WithResultCache(),
		)
		for _, p := range spec.Seed {
			engine.SeedResult(p.Job(), p.Result)
		}
		enc := json.NewEncoder(pw)
		src := scenarios.ShardSource(t.Source(), spec.Index, spec.Total)
		w.err = engine.Stream(wctx, src, scenarios.SinkFunc(func(sr scenarios.StreamResult) error {
			return enc.Encode(NewRunReport(sr))
		}))
		pw.Close()
	}()
	return w, nil
}

// localWorker is one in-process shard evaluation.
type localWorker struct {
	out    *io.PipeReader
	cancel context.CancelFunc
	done   chan struct{}
	err    error
}

// Output implements Worker.
func (w *localWorker) Output() io.Reader { return w.out }

// Wait implements Worker.
func (w *localWorker) Wait() error {
	<-w.done
	return w.err
}

// Kill implements Worker: the stream stops abruptly — the reader sees the
// kill error instead of a clean EOF, and any in-flight write fails — which
// is as close to SIGKILL as an in-process worker gets.
func (w *localWorker) Kill() error {
	w.cancel()
	return w.out.CloseWithError(errWorkerKilled)
}
