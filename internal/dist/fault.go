package dist

// Seeded, deterministic fault injection for the distributed layer.  The
// paper's composite-safety argument (and Kopetz's system-of-systems framing)
// says the interesting failures live between constituents — partitions,
// silence, corruption — so this file makes those failures a first-class,
// replayable input: FaultTransport wraps any inner Transport and sabotages
// attempts from a menu of network-shaped faults, each drawn from a
// per-attempt seeded RNG, so every chaos run is reproducible by (seed,
// menu) alone.
//
//lint:deterministic — fault choice must be a pure function of
// seed/shard/attempt (injected-seed RNG only, no global rand, no clock), or
// chaos runs stop being replayable.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// FaultKind names one injectable network fault.
type FaultKind uint8

const (
	// FaultSpawnRefusal makes Transport.Start itself fail — the remote host
	// is down, the connection is refused.
	FaultSpawnRefusal FaultKind = iota
	// FaultDrop severs the stream abruptly after N good lines, like a
	// connection reset mid-sweep.
	FaultDrop
	// FaultCorrupt mangles the bytes of one NDJSON line into non-JSON.
	FaultCorrupt
	// FaultTruncate ends the stream in the middle of a line — the classic
	// partial write of a dying peer — with no trailing newline.
	FaultTruncate
	// FaultDuplicate delivers one line twice.  Unlike the others this fault
	// must be absorbed without any retry: dedup-by-key is the defense.
	FaultDuplicate
	// FaultStall stops the stream after N lines and never closes it; only
	// the coordinator's stall timeout can reclaim the shard.
	FaultStall
	// FaultSlow drips the stream out with a delay before every line.  The
	// run must still succeed (slowness is not failure) as long as the drip
	// stays under the stall timeout.
	FaultSlow

	faultKindCount
)

// faultKindNames maps kinds to their CLI/flag names.
var faultKindNames = [faultKindCount]string{
	FaultSpawnRefusal: "spawn-refusal",
	FaultDrop:         "drop",
	FaultCorrupt:      "corrupt",
	FaultTruncate:     "truncate",
	FaultDuplicate:    "duplicate",
	FaultStall:        "stall",
	FaultSlow:         "slow",
}

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	if int(k) < len(faultKindNames) {
		return faultKindNames[k]
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// AllFaultKinds returns the full fault menu, in declaration order.
func AllFaultKinds() []FaultKind {
	kinds := make([]FaultKind, 0, faultKindCount)
	for k := FaultKind(0); k < faultKindCount; k++ {
		kinds = append(kinds, k)
	}
	return kinds
}

// ParseFaultKind resolves a fault name ("drop", "stall", ...) to its kind.
func ParseFaultKind(name string) (FaultKind, error) {
	for k, n := range faultKindNames {
		if n == name {
			return FaultKind(k), nil
		}
	}
	return 0, fmt.Errorf("dist: unknown fault kind %q (want one of %s)",
		name, strings.Join(faultKindNames[:], ", "))
}

// FaultTransport wraps an inner Transport in deterministic chaos.  Each
// shard's first FaultyAttempts spawns are sabotaged with a fault drawn from
// Menu by a per-attempt rand.New(rand.NewSource(Seed ^ shard<<32 ^ attempt))
// — the shard index is shifted up so distinct (shard, attempt) pairs never
// collide — and later attempts pass through untouched, so a coordinator with
// budget to spare always recovers.  Replaying with the same Seed and Menu
// reproduces the exact same fault at the exact same point, which is what
// turns "it failed under chaos" into a debuggable artifact.
type FaultTransport struct {
	// Inner is the sabotaged transport.  Required.
	Inner Transport
	// Seed drives every fault decision.
	Seed int64
	// Menu restricts the injectable kinds; empty means AllFaultKinds().
	Menu []FaultKind
	// FaultyAttempts is how many attempts per shard get a fault before the
	// transport turns honest (default 1: only each shard's first attempt).
	FaultyAttempts int
	// Drip is the FaultSlow inter-line delay (default 10ms).
	Drip time.Duration
	// OnFault observes each injection: shard, attempt, the chosen kind and
	// the 1-based line the fault strikes at.  May be nil.
	OnFault func(shard, attempt int, kind FaultKind, line int)

	mu       sync.Mutex
	attempts map[int]int
}

// errFaultKilled is the terminal error of a killed fault worker.
var errFaultKilled = errors.New("dist: fault worker killed")

// Start implements Transport.
func (t *FaultTransport) Start(ctx context.Context, spec ShardSpec) (Worker, error) {
	if t.Inner == nil {
		return nil, errors.New("dist: FaultTransport needs an Inner transport")
	}
	t.mu.Lock()
	if t.attempts == nil {
		t.attempts = make(map[int]int)
	}
	attempt := t.attempts[spec.Index]
	t.attempts[spec.Index]++
	t.mu.Unlock()

	faulty := t.FaultyAttempts
	if faulty <= 0 {
		faulty = 1
	}
	if attempt >= faulty {
		return t.Inner.Start(ctx, spec)
	}

	rng := rand.New(rand.NewSource(t.Seed ^ int64(spec.Index)<<32 ^ int64(attempt)))
	menu := t.Menu
	if len(menu) == 0 {
		menu = AllFaultKinds()
	}
	kind := menu[rng.Intn(len(menu))]
	line := 1 + rng.Intn(6)
	if t.OnFault != nil {
		t.OnFault(spec.Index, attempt, kind, line)
	}
	if kind == FaultSpawnRefusal {
		return nil, fmt.Errorf("dist: fault: refusing to spawn shard %s (seed %d, attempt %d)", spec, t.Seed, attempt)
	}

	inner, err := t.Inner.Start(ctx, spec)
	if err != nil {
		return nil, err
	}
	drip := t.Drip
	if drip <= 0 {
		drip = 10 * time.Millisecond
	}
	pr, pw := io.Pipe()
	fw := &faultWorker{
		inner: inner,
		out:   pr,
		kind:  kind,
		line:  line,
		drip:  drip,
		done:  make(chan struct{}),
		killc: make(chan struct{}),
	}
	// The pump is transport plumbing, not simulation: it moves bytes between
	// two streams and cannot influence what any variant computes.
	go fw.pump(pw) //lint:detok stream filter between worker and coordinator, outside the simulation
	return fw, nil
}

// faultWorker filters one inner worker's stream through the chosen fault.
type faultWorker struct {
	inner Worker
	out   *io.PipeReader
	kind  FaultKind
	line  int // 1-based line the fault strikes at
	drip  time.Duration

	done     chan struct{}
	killc    chan struct{}
	killOnce sync.Once

	mu  sync.Mutex
	err error // the injected fault, surfaced by Wait
}

// setErr records the injected fault for Wait.
func (w *faultWorker) setErr(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

// pump copies the inner stream to the pipe, applying the fault at its chosen
// line.  Terminal faults (drop, corrupt, truncate) kill the inner worker so
// Wait never blocks on a producer nobody is reading.
func (w *faultWorker) pump(pw *io.PipeWriter) {
	defer close(w.done)
	sc := bufio.NewScanner(w.inner.Output())
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	n := 0
	for sc.Scan() {
		line := append([]byte(nil), sc.Bytes()...)
		line = append(line, '\n')
		n++
		if n == w.line {
			switch w.kind {
			case FaultDrop:
				err := fmt.Errorf("dist: fault: connection dropped after %d line(s)", n-1)
				w.setErr(err)
				w.inner.Kill()
				pw.CloseWithError(err)
				return
			case FaultCorrupt:
				corrupt := append(line[:len(line)/2:len(line)/2], "<<<fault: corrupted bytes>>>\n"...)
				pw.Write(corrupt)
				w.setErr(fmt.Errorf("dist: fault: corrupted line %d", n))
				w.inner.Kill()
				pw.Close() // clean EOF after the poison: the parse error is the signal
				return
			case FaultTruncate:
				pw.Write(line[:len(line)/2]) // half a line, no newline, then EOF
				w.setErr(fmt.Errorf("dist: fault: stream truncated mid-line at line %d", n))
				w.inner.Kill()
				pw.Close()
				return
			case FaultDuplicate:
				if _, err := pw.Write(append(line, line...)); err != nil {
					w.inner.Kill()
					return
				}
				continue
			case FaultStall:
				w.setErr(fmt.Errorf("dist: fault: stalled after %d line(s)", n-1))
				<-w.killc // only the coordinator's stall kill frees us
				return
			}
		}
		if w.kind == FaultSlow {
			select {
			case <-time.After(w.drip):
			case <-w.killc:
				return
			}
		}
		if _, err := pw.Write(line); err != nil {
			w.inner.Kill() // reader gone; stop the producer too
			return
		}
	}
	pw.CloseWithError(sc.Err())
}

// Output implements Worker.
func (w *faultWorker) Output() io.Reader { return w.out }

// Wait implements Worker: the injected fault, if any, is the terminal error;
// otherwise the inner worker's own exit is.
func (w *faultWorker) Wait() error {
	<-w.done
	innerErr := w.inner.Wait()
	w.mu.Lock()
	ferr := w.err
	w.mu.Unlock()
	if ferr != nil {
		return ferr
	}
	return innerErr
}

// Kill implements Worker: kill the producer, free a stalled pump, and fail
// any reader still blocked on the pipe.
func (w *faultWorker) Kill() error {
	w.killOnce.Do(func() { close(w.killc) })
	w.inner.Kill()
	return w.out.CloseWithError(errFaultKilled)
}
